(* The chaos engine itself: fault plans round-trip through their compact
   string form, identical seeds and plans replay bit-identically, healthy
   sweeps audit clean, and a deliberately broken recovery is both caught
   by the fault-aware audit and shrunk to a small repro. *)

open Tpc.Types
module F = Faultlab
module M = Tpc.Mixer

let chaos_config protocol =
  {
    default_config with
    protocol;
    retry_interval = 25.0;
    max_retries = 8;
    prepare_retries = 2;
    retry_backoff = 2.0;
  }

let tree () =
  Tree
    ( member "coord",
      [
        Tree (member "sub0", []);
        Tree (member "sub1", []);
        Tree (member "sub2", []);
      ] )

let mixer_cfg ?(txns = 60) ?(seed = 11) () =
  { M.default_cfg with txns; concurrency = 6; seed }

(* --- plan serialization ----------------------------------------------- *)

let test_plan_round_trip () =
  let nodes = F.tree_nodes (tree ()) in
  for seed = 1 to 20 do
    let plan = F.gen ~seed ~nodes F.default_gen in
    let s = F.to_string plan in
    Alcotest.(check string)
      (Printf.sprintf "seed %d round-trips" seed)
      s
      (F.to_string (F.of_string s))
  done

let test_plan_forms_parse () =
  let s = "crash@10:sub0:+25.5,crash@20:sub1:-,part@30:coord|sub2:+8,part@40:sub0|sub1:-,drop@50:coord>sub0:3,jit@60:sub1>coord:2.75" in
  Alcotest.(check string) "every event form parses and reprints" s
    (F.to_string (F.of_string s));
  Alcotest.(check int) "six events" 6 (List.length (F.of_string s))

(* --- determinism ------------------------------------------------------- *)

let test_identical_replay () =
  (* same seed, same plan: the aggregate must be bit-identical across two
     fresh runs - the property the shrinker and seed replay depend on *)
  let t = tree () in
  let plan = F.gen ~seed:7 ~nodes:(F.tree_nodes t) F.default_gen in
  let run () =
    F.run_case ~config:(chaos_config Presumed_abort) (mixer_cfg ()) t plan
  in
  let agg1, v1 = run () in
  let agg2, v2 = run () in
  Alcotest.(check string) "bit-identical aggregate JSON"
    (Tpc.Metrics.Agg.to_json agg1)
    (Tpc.Metrics.Agg.to_json agg2);
  Alcotest.(check (list (pair string int))) "identical verdict"
    (F.verdict_fields v1) (F.verdict_fields v2)

(* --- healthy sweeps audit clean ---------------------------------------- *)

let test_sweep_clean protocol () =
  for seed = 1 to 8 do
    let t = tree () in
    let plan = F.gen ~seed ~nodes:(F.tree_nodes t) F.default_gen in
    let _agg, v =
      F.run_case ~config:(chaos_config protocol) (mixer_cfg ~seed ()) t plan
    in
    if not (F.ok v) then
      Alcotest.failf "seed %d (%s) violated: %s" seed
        (protocol_to_string protocol)
        (String.concat ", "
           (List.map
              (fun (k, n) -> Printf.sprintf "%s=%d" k n)
              (F.verdict_fields v)))
  done

(* --- broken recovery is caught and shrunk ------------------------------ *)

let test_broken_recovery_caught_and_shrunk () =
  let t = tree () in
  (* a mid-workload crash+restart buried in irrelevant noise events *)
  let plan =
    [
      F.Drop { at = 20.0; src = "coord"; dst = "sub2"; nth = 3 };
      F.Jitter { at = 40.0; src = "sub1"; dst = "coord"; amp = 2.0 };
      F.Crash { at = 150.0; node = "sub0"; restart_after = Some 60.0 };
      F.Drop { at = 200.0; src = "sub2"; dst = "sub1"; nth = 1 };
      F.Partition { at = 260.0; a = "sub1"; b = "sub2"; heal_after = Some 30.0 };
    ]
  in
  let fails p =
    let _agg, v =
      F.run_case
        ~config:(chaos_config Presumed_abort)
        ~broken_recovery:true (mixer_cfg ()) t p
    in
    not (F.ok v)
  in
  Alcotest.(check bool) "amnesiac restart violates the audit" true (fails plan);
  let small = F.shrink ~check:fails plan in
  Alcotest.(check bool)
    (Printf.sprintf "shrunk to <= 3 events (got %d)" (List.length small))
    true
    (List.length small <= 3);
  Alcotest.(check bool) "minimized plan still reproduces" true (fails small);
  (* with recovery intact the very same schedule audits clean *)
  let _agg, v =
    F.run_case ~config:(chaos_config Presumed_abort) (mixer_cfg ()) t plan
  in
  Alcotest.(check bool) "correct recovery passes the same schedule" true
    (F.ok v)

(* --- adversarial fault vocabulary -------------------------------------- *)

let adversarial_gen =
  {
    F.default_gen with
    F.equivocations = 2;
    vote_flips = 2;
    forgeries = 2;
    forced_heuristics = 2;
  }

let test_adversarial_forms_parse () =
  let s =
    "equiv@10:coord:2,flip@20:sub0>coord:1,forge@30:sub1>coord:prepare,forge@40:coord>sub2:commit,forge@50:coord>sub0:abort,heur@60:sub1:commit,heur@70:sub2:abort"
  in
  Alcotest.(check string)
    "every adversarial event form parses and reprints" s
    (F.to_string (F.of_string s));
  Alcotest.(check int) "seven events" 7 (List.length (F.of_string s));
  Alcotest.(check bool) "recognized as adversarial" true
    (F.is_adversarial (F.of_string s));
  Alcotest.(check bool) "benign plans stay benign" false
    (F.is_adversarial (F.of_string "crash@10:sub0:+25.5"))

let test_adversarial_gen_round_trip () =
  let nodes = F.tree_nodes (tree ()) in
  for seed = 0 to 15 do
    let plan = F.gen ~seed ~nodes adversarial_gen in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d generates adversarial events" seed)
      true (F.is_adversarial plan);
    Alcotest.(check string)
      (Printf.sprintf "seed %d adversarial plan round-trips" seed)
      (F.to_string plan)
      (F.to_string (F.of_string (F.to_string plan)))
  done

let test_adversarial_draws_dont_disturb_benign () =
  (* with the adversarial counts at zero the generator must reproduce the
     pre-adversary plans byte for byte - the CI byte-identity guarantee *)
  let nodes = F.tree_nodes (tree ()) in
  for seed = 0 to 15 do
    let benign = F.gen ~seed ~nodes F.default_gen in
    let adv = F.gen ~seed ~nodes adversarial_gen in
    Alcotest.(check string)
      (Printf.sprintf "seed %d benign prefix identical" seed)
      (F.to_string benign)
      (F.to_string (List.filter (fun e -> not (F.is_adversarial_event e)) adv))
  done

let test_adversarial_replay_identical () =
  let t = tree () in
  let plan = F.gen ~seed:5 ~nodes:(F.tree_nodes t) adversarial_gen in
  let run () =
    let agg, v, acc, _w =
      F.run_case_adversarial
        ~config:(chaos_config Presumed_abort)
        (mixer_cfg ()) t plan
    in
    (Tpc.Metrics.Agg.to_json agg, F.verdict_fields v, F.accounting_fields acc)
  in
  let agg1, v1, a1 = run () in
  let agg2, v2, a2 = run () in
  Alcotest.(check string) "bit-identical aggregate JSON" agg1 agg2;
  Alcotest.(check (list (pair string int))) "identical verdict" v1 v2;
  Alcotest.(check (list (pair string int))) "identical damage accounting" a1 a2

let test_adversarial_sweep_classified protocol () =
  (* every seed must classify cleanly: atomicity violations and reported
     damage are the measurement; silent damage and broken worlds are not
     tolerated under any protocol *)
  let t = tree () in
  for seed = 0 to 11 do
    let plan = F.gen ~seed ~nodes:(F.tree_nodes t) adversarial_gen in
    let _agg, v, acc, _w =
      F.run_case_adversarial ~config:(chaos_config protocol) (mixer_cfg ()) t
        plan
    in
    if not (F.adversarial_ok v acc) then
      Alcotest.failf "seed %d (%s) silent damage or broken world: %s / %s" seed
        (protocol_to_string protocol)
        (String.concat ","
           (List.map (fun (k, c) -> Printf.sprintf "%s=%d" k c)
              (F.verdict_fields v)))
        (String.concat ","
           (List.map (fun (k, c) -> Printf.sprintf "%s=%d" k c)
              (F.accounting_fields acc)))
  done

let test_adversarial_shrink_deterministic () =
  (* an adversarial schedule that fails the adversarial audit (broken
     recovery under an adversarial mix) shrinks, and the minimized plan
     replays bit-identically - the repro-paste guarantee *)
  let t = tree () in
  let plan = F.gen ~seed:42 ~nodes:(F.tree_nodes t) adversarial_gen in
  let case p =
    let _agg, v, acc, _w =
      F.run_case_adversarial
        ~config:(chaos_config Presumed_abort)
        ~broken_recovery:true (mixer_cfg ()) t p
    in
    (v, acc)
  in
  let fails p =
    let v, acc = case p in
    not (F.adversarial_ok v acc)
  in
  Alcotest.(check bool) "broken recovery fails the adversarial audit" true
    (fails plan);
  let small = F.shrink ~check:fails plan in
  Alcotest.(check bool) "shrinking kept the violation" true (fails small);
  Alcotest.(check bool)
    (Printf.sprintf "shrunk below the full plan (%d < %d)" (List.length small)
       (List.length plan))
    true
    (List.length small < List.length plan);
  (* the minimized plan round-trips through its string form and replays
     identically, verdict and accounting both *)
  let reparsed = F.of_string (F.to_string small) in
  let v1, a1 = case small in
  let v2, a2 = case reparsed in
  Alcotest.(check (list (pair string int)))
    "reparsed repro: identical verdict" (F.verdict_fields v1)
    (F.verdict_fields v2);
  Alcotest.(check (list (pair string int)))
    "reparsed repro: identical accounting" (F.accounting_fields a1)
    (F.accounting_fields a2)

(* --- replay faults and the BFT adversary budget ------------------------ *)

let bft_gen =
  {
    adversarial_gen with
    F.replays = 2;
    corruptions = 1;
    corrupt_domain = 3 (* 2f+1 with f=1 *);
  }

let test_replay_forms_parse () =
  let s = "replay@10:coord>sub0:2,replay@20:sub1>sub2:1,corrupt@30:0:-,corrupt@40:2:-" in
  Alcotest.(check string) "replay and corrupt forms parse and reprint" s
    (F.to_string (F.of_string s));
  Alcotest.(check bool) "recognized as adversarial" true
    (F.is_adversarial (F.of_string s));
  Alcotest.(check int) "two distinct corrupted replicas" 2
    (F.corrupted_replicas (F.of_string s));
  Alcotest.(check int) "duplicates count once" 1
    (F.corrupted_replicas (F.of_string "corrupt@5:1:-,corrupt@9:1:-"))

let test_replay_draws_after_legacy () =
  (* replays and corruptions are drawn after every PR7 draw, so both the
     benign prefix and the legacy adversarial wave stay byte-identical *)
  let nodes = F.tree_nodes (tree ()) in
  let second_wave = function
    | F.Replay _ | F.Corrupt_replica _ -> true
    | _ -> false
  in
  for seed = 0 to 15 do
    let legacy = F.gen ~seed ~nodes adversarial_gen in
    let extended = F.gen ~seed ~nodes bft_gen in
    Alcotest.(check string)
      (Printf.sprintf "seed %d legacy plan is a sub-plan" seed)
      (F.to_string legacy)
      (F.to_string (List.filter (fun e -> not (second_wave e)) extended));
    Alcotest.(check bool)
      (Printf.sprintf "seed %d drew the second wave" seed)
      true
      (List.exists second_wave extended)
  done

let test_replays_absorbed protocol () =
  (* genuine stale payloads re-delivered on live links: every legacy
     protocol must refuse or idempotently absorb them *)
  let t = tree () in
  let gen = { F.default_gen with F.replays = 3 } in
  for seed = 0 to 7 do
    let plan = F.gen ~seed ~nodes:(F.tree_nodes t) gen in
    let _agg, v, acc, _w =
      F.run_case_adversarial ~config:(chaos_config protocol) (mixer_cfg ()) t
        plan
    in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d (%s) replays absorbed" seed
         (protocol_to_string protocol))
      true
      (F.adversarial_ok v acc && acc.F.a_atomicity = 0)
  done

let test_gc_align_is_pure_retiming () =
  let nodes = F.tree_nodes (tree ()) in
  let aligned_gen = { bft_gen with F.gc_align = Some 4.0 } in
  let at = function
    | F.Crash { at; _ }
    | F.Partition { at; _ }
    | F.Drop { at; _ }
    | F.Jitter { at; _ }
    | F.Equivocate { at; _ }
    | F.Flip_vote { at; _ }
    | F.Forge { at; _ }
    | F.Force_heuristic { at; _ }
    | F.Replay { at; _ }
    | F.Corrupt_replica { at; _ } ->
        at
  in
  for seed = 0 to 15 do
    let plain = F.gen ~seed ~nodes bft_gen in
    let aligned = F.gen ~seed ~nodes aligned_gen in
    Alcotest.(check int)
      (Printf.sprintf "seed %d same event count" seed)
      (List.length plain) (List.length aligned);
    Alcotest.(check string)
      (Printf.sprintf "seed %d benign events untouched" seed)
      (F.to_string (List.filter (fun e -> not (F.is_adversarial_event e)) plain))
      (F.to_string
         (List.filter (fun e -> not (F.is_adversarial_event e)) aligned));
    List.iter
      (fun e ->
        if F.is_adversarial_event e then
          Alcotest.(check bool)
            (Printf.sprintf "seed %d event at %.3f on a force boundary" seed
               (at e))
            true
            (at e >= 4.0 && Float.rem (at e) 4.0 = 0.0))
      aligned
  done

let bft_config () = chaos_config (Custom "bft") (* default_config has f=1 *)

let test_bft_sub_threshold_guarantee () =
  (* the tentpole claim: with at most f corrupted replicas, the full
     adversarial mix plus replays achieves zero atomicity violations and
     zero silent damage - certificates hold the commit tree together *)
  let t = tree () in
  for seed = 0 to 9 do
    let plan = F.gen ~seed ~nodes:(F.tree_nodes t) bft_gen in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d stays below threshold" seed)
      true
      (F.corrupted_replicas plan <= 1);
    let _agg, v, acc, _w =
      F.run_case_adversarial ~config:(bft_config ()) (mixer_cfg ()) t plan
    in
    if not (F.adversarial_ok v acc && acc.F.a_atomicity = 0) then
      Alcotest.failf "seed %d broke the sub-threshold guarantee: %s" seed
        (String.concat ","
           (List.map
              (fun (k, c) -> Printf.sprintf "%s=%d" k c)
              (F.accounting_fields acc)))
  done

let test_bft_above_threshold_violates () =
  (* the gate isn't vacuous: hand the adversary the whole ensemble (3 > f)
     and some schedule in the range does inflict an atomicity violation *)
  let t = tree () in
  let gen = { bft_gen with F.corruptions = 3 } in
  let violations = ref 0 in
  for seed = 0 to 19 do
    let plan = F.gen ~seed ~nodes:(F.tree_nodes t) gen in
    if F.corrupted_replicas plan > 1 then begin
      let _agg, _v, acc, _w =
        F.run_case_adversarial ~config:(bft_config ()) (mixer_cfg ()) t plan
      in
      violations := !violations + acc.F.a_atomicity
    end
  done;
  Alcotest.(check bool)
    (Printf.sprintf "above-threshold corruption violated somewhere (%d)"
       !violations)
    true (!violations > 0)

let suite =
  [
    Alcotest.test_case "plan round-trips" `Quick test_plan_round_trip;
    Alcotest.test_case "all event forms parse" `Quick test_plan_forms_parse;
    Alcotest.test_case "identical seed+plan replays bit-identically" `Quick
      test_identical_replay;
    Alcotest.test_case "PA sweep audits clean" `Quick
      (test_sweep_clean Presumed_abort);
    Alcotest.test_case "PN sweep audits clean" `Quick
      (test_sweep_clean Presumed_nothing);
    Alcotest.test_case "broken recovery caught and shrunk" `Quick
      test_broken_recovery_caught_and_shrunk;
    Alcotest.test_case "adversarial event forms parse" `Quick
      test_adversarial_forms_parse;
    Alcotest.test_case "adversarial plans generate and round-trip" `Quick
      test_adversarial_gen_round_trip;
    Alcotest.test_case "adversarial draws leave benign plans untouched" `Quick
      test_adversarial_draws_dont_disturb_benign;
    Alcotest.test_case "adversarial run replays bit-identically" `Quick
      test_adversarial_replay_identical;
    Alcotest.test_case "Basic adversarial sweep classifies cleanly" `Quick
      (test_adversarial_sweep_classified Basic);
    Alcotest.test_case "PA adversarial sweep classifies cleanly" `Quick
      (test_adversarial_sweep_classified Presumed_abort);
    Alcotest.test_case "PN adversarial sweep classifies cleanly" `Quick
      (test_adversarial_sweep_classified Presumed_nothing);
    Alcotest.test_case "adversarial shrink is deterministic and replayable"
      `Quick test_adversarial_shrink_deterministic;
    Alcotest.test_case "replay and corrupt forms parse" `Quick
      test_replay_forms_parse;
    Alcotest.test_case "second-wave draws leave legacy plans untouched" `Quick
      test_replay_draws_after_legacy;
    Alcotest.test_case "Basic absorbs replays" `Quick
      (test_replays_absorbed Basic);
    Alcotest.test_case "PA absorbs replays" `Quick
      (test_replays_absorbed Presumed_abort);
    Alcotest.test_case "PN absorbs replays" `Quick
      (test_replays_absorbed Presumed_nothing);
    Alcotest.test_case "gc alignment retimes only adversarial events" `Quick
      test_gc_align_is_pure_retiming;
    Alcotest.test_case "bft sub-threshold guarantee holds" `Quick
      test_bft_sub_threshold_guarantee;
    Alcotest.test_case "bft above-threshold corruption violates" `Quick
      test_bft_above_threshold_violates;
  ]
