(* The chaos engine itself: fault plans round-trip through their compact
   string form, identical seeds and plans replay bit-identically, healthy
   sweeps audit clean, and a deliberately broken recovery is both caught
   by the fault-aware audit and shrunk to a small repro. *)

open Tpc.Types
module F = Faultlab
module M = Tpc.Mixer

let chaos_config protocol =
  {
    default_config with
    protocol;
    retry_interval = 25.0;
    max_retries = 8;
    prepare_retries = 2;
    retry_backoff = 2.0;
  }

let tree () =
  Tree
    ( member "coord",
      [
        Tree (member "sub0", []);
        Tree (member "sub1", []);
        Tree (member "sub2", []);
      ] )

let mixer_cfg ?(txns = 60) ?(seed = 11) () =
  { M.default_cfg with txns; concurrency = 6; seed }

(* --- plan serialization ----------------------------------------------- *)

let test_plan_round_trip () =
  let nodes = F.tree_nodes (tree ()) in
  for seed = 1 to 20 do
    let plan = F.gen ~seed ~nodes F.default_gen in
    let s = F.to_string plan in
    Alcotest.(check string)
      (Printf.sprintf "seed %d round-trips" seed)
      s
      (F.to_string (F.of_string s))
  done

let test_plan_forms_parse () =
  let s = "crash@10:sub0:+25.5,crash@20:sub1:-,part@30:coord|sub2:+8,part@40:sub0|sub1:-,drop@50:coord>sub0:3,jit@60:sub1>coord:2.75" in
  Alcotest.(check string) "every event form parses and reprints" s
    (F.to_string (F.of_string s));
  Alcotest.(check int) "six events" 6 (List.length (F.of_string s))

(* --- determinism ------------------------------------------------------- *)

let test_identical_replay () =
  (* same seed, same plan: the aggregate must be bit-identical across two
     fresh runs - the property the shrinker and seed replay depend on *)
  let t = tree () in
  let plan = F.gen ~seed:7 ~nodes:(F.tree_nodes t) F.default_gen in
  let run () =
    F.run_case ~config:(chaos_config Presumed_abort) (mixer_cfg ()) t plan
  in
  let agg1, v1 = run () in
  let agg2, v2 = run () in
  Alcotest.(check string) "bit-identical aggregate JSON"
    (Tpc.Metrics.Agg.to_json agg1)
    (Tpc.Metrics.Agg.to_json agg2);
  Alcotest.(check (list (pair string int))) "identical verdict"
    (F.verdict_fields v1) (F.verdict_fields v2)

(* --- healthy sweeps audit clean ---------------------------------------- *)

let test_sweep_clean protocol () =
  for seed = 1 to 8 do
    let t = tree () in
    let plan = F.gen ~seed ~nodes:(F.tree_nodes t) F.default_gen in
    let _agg, v =
      F.run_case ~config:(chaos_config protocol) (mixer_cfg ~seed ()) t plan
    in
    if not (F.ok v) then
      Alcotest.failf "seed %d (%s) violated: %s" seed
        (protocol_to_string protocol)
        (String.concat ", "
           (List.map
              (fun (k, n) -> Printf.sprintf "%s=%d" k n)
              (F.verdict_fields v)))
  done

(* --- broken recovery is caught and shrunk ------------------------------ *)

let test_broken_recovery_caught_and_shrunk () =
  let t = tree () in
  (* a mid-workload crash+restart buried in irrelevant noise events *)
  let plan =
    [
      F.Drop { at = 20.0; src = "coord"; dst = "sub2"; nth = 3 };
      F.Jitter { at = 40.0; src = "sub1"; dst = "coord"; amp = 2.0 };
      F.Crash { at = 150.0; node = "sub0"; restart_after = Some 60.0 };
      F.Drop { at = 200.0; src = "sub2"; dst = "sub1"; nth = 1 };
      F.Partition { at = 260.0; a = "sub1"; b = "sub2"; heal_after = Some 30.0 };
    ]
  in
  let fails p =
    let _agg, v =
      F.run_case
        ~config:(chaos_config Presumed_abort)
        ~broken_recovery:true (mixer_cfg ()) t p
    in
    not (F.ok v)
  in
  Alcotest.(check bool) "amnesiac restart violates the audit" true (fails plan);
  let small = F.shrink ~check:fails plan in
  Alcotest.(check bool)
    (Printf.sprintf "shrunk to <= 3 events (got %d)" (List.length small))
    true
    (List.length small <= 3);
  Alcotest.(check bool) "minimized plan still reproduces" true (fails small);
  (* with recovery intact the very same schedule audits clean *)
  let _agg, v =
    F.run_case ~config:(chaos_config Presumed_abort) (mixer_cfg ()) t plan
  in
  Alcotest.(check bool) "correct recovery passes the same schedule" true
    (F.ok v)

let suite =
  [
    Alcotest.test_case "plan round-trips" `Quick test_plan_round_trip;
    Alcotest.test_case "all event forms parse" `Quick test_plan_forms_parse;
    Alcotest.test_case "identical seed+plan replays bit-identically" `Quick
      test_identical_replay;
    Alcotest.test_case "PA sweep audits clean" `Quick
      (test_sweep_clean Presumed_abort);
    Alcotest.test_case "PN sweep audits clean" `Quick
      (test_sweep_clean Presumed_nothing);
    Alcotest.test_case "broken recovery caught and shrunk" `Quick
      test_broken_recovery_caught_and_shrunk;
  ]
