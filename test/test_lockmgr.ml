(* Tests of the lock manager: compatibility, queueing, fairness, deadlock
   detection, hold-time statistics. *)

module E = Simkernel.Engine
module L = Lockmgr

let mk () =
  let e = E.create () in
  (e, L.create e)

let test_shared_compatible () =
  let _e, l = mk () in
  Alcotest.(check bool) "t1 S" true (L.try_acquire l ~txn:"t1" ~key:"k" L.Shared);
  Alcotest.(check bool) "t2 S" true (L.try_acquire l ~txn:"t2" ~key:"k" L.Shared)

let test_exclusive_conflicts () =
  let _e, l = mk () in
  Alcotest.(check bool) "t1 X" true (L.try_acquire l ~txn:"t1" ~key:"k" L.Exclusive);
  Alcotest.(check bool) "t2 X blocked" false
    (L.try_acquire l ~txn:"t2" ~key:"k" L.Exclusive);
  Alcotest.(check bool) "t2 S blocked" false
    (L.try_acquire l ~txn:"t2" ~key:"k" L.Shared)

let test_shared_blocks_exclusive () =
  let _e, l = mk () in
  Alcotest.(check bool) "t1 S" true (L.try_acquire l ~txn:"t1" ~key:"k" L.Shared);
  Alcotest.(check bool) "t2 X blocked" false
    (L.try_acquire l ~txn:"t2" ~key:"k" L.Exclusive)

let test_reacquire_held () =
  let _e, l = mk () in
  ignore (L.try_acquire l ~txn:"t1" ~key:"k" L.Exclusive);
  Alcotest.(check bool) "re-acquire X" true
    (L.try_acquire l ~txn:"t1" ~key:"k" L.Exclusive);
  Alcotest.(check bool) "weaker S over X" true
    (L.try_acquire l ~txn:"t1" ~key:"k" L.Shared);
  Alcotest.(check (option bool)) "still exclusive"
    (Some true)
    (Option.map (fun m -> m = L.Exclusive) (L.holds l ~txn:"t1" ~key:"k"))

let test_upgrade_sole_holder () =
  let _e, l = mk () in
  ignore (L.try_acquire l ~txn:"t1" ~key:"k" L.Shared);
  Alcotest.(check bool) "sole-holder upgrade" true
    (L.try_acquire l ~txn:"t1" ~key:"k" L.Exclusive)

let test_upgrade_blocked_by_other_reader () =
  let _e, l = mk () in
  ignore (L.try_acquire l ~txn:"t1" ~key:"k" L.Shared);
  ignore (L.try_acquire l ~txn:"t2" ~key:"k" L.Shared);
  Alcotest.(check bool) "upgrade blocked" false
    (L.try_acquire l ~txn:"t1" ~key:"k" L.Exclusive)

let test_release_wakes_waiter () =
  let _e, l = mk () in
  ignore (L.try_acquire l ~txn:"t1" ~key:"k" L.Exclusive);
  let granted = ref false in
  L.acquire l ~txn:"t2" ~key:"k" L.Exclusive ~granted:(fun () -> granted := true);
  Alcotest.(check bool) "queued" false !granted;
  Alcotest.(check int) "one waiting" 1 (L.waiting l);
  L.release_all l ~txn:"t1";
  Alcotest.(check bool) "granted after release" true !granted;
  Alcotest.(check int) "no waiters" 0 (L.waiting l)

let test_fifo_queue_order () =
  let _e, l = mk () in
  ignore (L.try_acquire l ~txn:"t1" ~key:"k" L.Exclusive);
  let order = ref [] in
  L.acquire l ~txn:"t2" ~key:"k" L.Exclusive ~granted:(fun () ->
      order := "t2" :: !order;
      L.release_all l ~txn:"t2");
  L.acquire l ~txn:"t3" ~key:"k" L.Exclusive ~granted:(fun () ->
      order := "t3" :: !order;
      L.release_all l ~txn:"t3");
  L.release_all l ~txn:"t1";
  Alcotest.(check (list string)) "waiters wake FIFO" [ "t2"; "t3" ]
    (List.rev !order)

let test_no_barging_past_queue () =
  let _e, l = mk () in
  ignore (L.try_acquire l ~txn:"t1" ~key:"k" L.Shared);
  L.acquire l ~txn:"t2" ~key:"k" L.Exclusive ~granted:(fun () -> ());
  (* t3's shared request is compatible with t1's grant but must not barge
     past t2's queued exclusive request *)
  Alcotest.(check bool) "shared cannot barge" false
    (L.try_acquire l ~txn:"t3" ~key:"k" L.Shared)

let test_shared_waiters_wake_together () =
  let _e, l = mk () in
  ignore (L.try_acquire l ~txn:"t1" ~key:"k" L.Exclusive);
  let woke = ref 0 in
  L.acquire l ~txn:"t2" ~key:"k" L.Shared ~granted:(fun () -> incr woke);
  L.acquire l ~txn:"t3" ~key:"k" L.Shared ~granted:(fun () -> incr woke);
  L.release_all l ~txn:"t1";
  Alcotest.(check int) "both shared waiters granted" 2 !woke

let test_release_all_multiple_keys () =
  let _e, l = mk () in
  ignore (L.try_acquire l ~txn:"t1" ~key:"k1" L.Exclusive);
  ignore (L.try_acquire l ~txn:"t1" ~key:"k2" L.Exclusive);
  L.release_all l ~txn:"t1";
  Alcotest.(check bool) "k1 free" true (L.try_acquire l ~txn:"t2" ~key:"k1" L.Exclusive);
  Alcotest.(check bool) "k2 free" true (L.try_acquire l ~txn:"t2" ~key:"k2" L.Exclusive)

let test_holders () =
  let _e, l = mk () in
  ignore (L.try_acquire l ~txn:"t1" ~key:"k" L.Shared);
  ignore (L.try_acquire l ~txn:"t2" ~key:"k" L.Shared);
  let hs = L.holders l ~key:"k" |> List.map fst |> List.sort compare in
  Alcotest.(check (list string)) "both holders listed" [ "t1"; "t2" ] hs

let test_hold_time_statistics () =
  let e, l = mk () in
  ignore (L.try_acquire l ~txn:"t1" ~key:"k" L.Exclusive);
  ignore (E.schedule e ~delay:4.0 (fun () -> L.release_all l ~txn:"t1"));
  E.run e;
  let s = L.stats l in
  Alcotest.(check int) "one acquisition" 1 s.L.acquisitions;
  Alcotest.(check (float 1e-9)) "held for 4.0" 4.0 s.L.total_hold_time;
  Alcotest.(check (float 1e-9)) "max is 4.0" 4.0 s.L.max_hold_time;
  Alcotest.(check (float 1e-9)) "per-txn time" 4.0 (L.txn_lock_time l ~txn:"t1")

let test_wait_for_cycle_detection () =
  let _e, l = mk () in
  ignore (L.try_acquire l ~txn:"t1" ~key:"a" L.Exclusive);
  ignore (L.try_acquire l ~txn:"t2" ~key:"b" L.Exclusive);
  L.acquire l ~txn:"t1" ~key:"b" L.Exclusive ~granted:(fun () -> ());
  L.acquire l ~txn:"t2" ~key:"a" L.Exclusive ~granted:(fun () -> ());
  match L.wait_for_cycles l with
  | [ cycle ] ->
      Alcotest.(check (list string)) "t1/t2 deadlock" [ "t1"; "t2" ]
        (List.sort compare cycle)
  | cycles ->
      Alcotest.failf "expected one cycle, got %d" (List.length cycles)

let test_no_false_deadlock () =
  let _e, l = mk () in
  ignore (L.try_acquire l ~txn:"t1" ~key:"a" L.Exclusive);
  L.acquire l ~txn:"t2" ~key:"a" L.Exclusive ~granted:(fun () -> ());
  Alcotest.(check int) "simple wait is not a deadlock" 0
    (List.length (L.wait_for_cycles l))

let test_three_way_cycle () =
  let _e, l = mk () in
  ignore (L.try_acquire l ~txn:"t1" ~key:"a" L.Exclusive);
  ignore (L.try_acquire l ~txn:"t2" ~key:"b" L.Exclusive);
  ignore (L.try_acquire l ~txn:"t3" ~key:"c" L.Exclusive);
  L.acquire l ~txn:"t1" ~key:"b" L.Exclusive ~granted:(fun () -> ());
  L.acquire l ~txn:"t2" ~key:"c" L.Exclusive ~granted:(fun () -> ());
  L.acquire l ~txn:"t3" ~key:"a" L.Exclusive ~granted:(fun () -> ());
  Alcotest.(check int) "one three-way cycle" 1 (List.length (L.wait_for_cycles l))

let test_reset_stats () =
  let e, l = mk () in
  ignore (L.try_acquire l ~txn:"t1" ~key:"k" L.Exclusive);
  ignore (E.schedule e ~delay:1.0 (fun () -> L.release_all l ~txn:"t1"));
  E.run e;
  L.reset_stats l;
  Alcotest.(check int) "acquisitions reset" 0 (L.stats l).L.acquisitions;
  Alcotest.(check (float 1e-9)) "hold time reset" 0.0 (L.stats l).L.total_hold_time

let suite =
  [
    Alcotest.test_case "shared compatible" `Quick test_shared_compatible;
    Alcotest.test_case "exclusive conflicts" `Quick test_exclusive_conflicts;
    Alcotest.test_case "shared blocks exclusive" `Quick test_shared_blocks_exclusive;
    Alcotest.test_case "re-acquire held" `Quick test_reacquire_held;
    Alcotest.test_case "upgrade sole holder" `Quick test_upgrade_sole_holder;
    Alcotest.test_case "upgrade blocked by other reader" `Quick
      test_upgrade_blocked_by_other_reader;
    Alcotest.test_case "release wakes waiter" `Quick test_release_wakes_waiter;
    Alcotest.test_case "FIFO queue order" `Quick test_fifo_queue_order;
    Alcotest.test_case "no barging past queue" `Quick test_no_barging_past_queue;
    Alcotest.test_case "shared waiters wake together" `Quick
      test_shared_waiters_wake_together;
    Alcotest.test_case "release_all multiple keys" `Quick
      test_release_all_multiple_keys;
    Alcotest.test_case "holders" `Quick test_holders;
    Alcotest.test_case "hold time statistics" `Quick test_hold_time_statistics;
    Alcotest.test_case "wait-for cycle detection" `Quick test_wait_for_cycle_detection;
    Alcotest.test_case "no false deadlock" `Quick test_no_false_deadlock;
    Alcotest.test_case "three-way cycle" `Quick test_three_way_cycle;
    Alcotest.test_case "reset stats" `Quick test_reset_stats;
  ]
