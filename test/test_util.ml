(* Shared helpers for the protocol-level test suites. *)

open Tpc.Types

let counts = Alcotest.of_pp Tpc.Cost_model.pp_counts

let outcome =
  Alcotest.of_pp (fun ppf o -> Format.pp_print_string ppf (outcome_to_string o))

let cfg ?(protocol = Presumed_abort) ?(opts = no_opts) ?(latency = 1.0)
    ?(faults = []) ?(retry_interval = 25.0) ?(max_retries = 40) ?group_commit ()
    =
  {
    default_config with
    protocol;
    opts;
    latency;
    faults;
    retry_interval;
    max_retries;
    group_commit;
  }

(* A two-member tree: coordinator [c] over subordinate [s]. *)
let two ?(c = member "C") ?(s = member "S") () = Tree (c, [ Tree (s, []) ])

(* Chain of three: C -> M -> S. *)
let three ?(c = member "C") ?(m = member "M") ?(s = member "S") () =
  Tree (c, [ Tree (m, [ Tree (s, []) ]) ])

let run ?config ?txn tree = Tpc.Run.commit_tree ?config ?txn tree

let check_outcome name expected (metrics : Tpc.Metrics.t) =
  Alcotest.check (Alcotest.option outcome) name expected metrics.Tpc.Metrics.outcome

let check_counts name expected (metrics : Tpc.Metrics.t) =
  Alcotest.check counts name expected (Tpc.Metrics.counts metrics)

let check_consistent name w ~txn ~outcome =
  Alcotest.(check bool) name true (Tpc.Run.consistent w ~txn ~outcome)

(* Per-side counters for Table 2 style checks. *)
let side_counts (w : Tpc.Run.world) node =
  ( Tpc.Trace.node_flows w.Tpc.Run.trace node,
    Tpc.Trace.node_writes w.Tpc.Run.trace node,
    Tpc.Trace.node_writes ~forced_only:true w.Tpc.Run.trace node )

let check_side name expected w node =
  Alcotest.(check (triple int int int)) name expected (side_counts w node)
