(* Differential kernel tests: the timing-wheel agenda and the binary-heap
   oracle must be observationally identical.  Random op schedules (near and
   far horizons, same-time bursts, interleaved cancels, run_until horizons,
   flat and closure events) drive one engine of each kind; fire order,
   clocks and stats counters must match exactly.  Plus the Negative_delay /
   cancel-after-fire edge cases and the Engine.reset reuse guarantees. *)

module E = Simkernel.Engine
module Q = QCheck

let qtest = QCheck_alcotest.to_alcotest
let check = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

(* --- random op schedules --------------------------------------------- *)

type op =
  | Sched of float  (* closure event after a near-future delay *)
  | Sched_far of float  (* beyond the wheel's direct horizon *)
  | Sched_flat of float  (* flat event, registered kind *)
  | Burst of int * float  (* same-instant FIFO group *)
  | Cancel of int  (* cancel the i-th handle issued so far (mod count) *)
  | Run_until of float  (* advance by a horizon *)
  | Step  (* fire exactly one event *)

let op_print = function
  | Sched d -> Printf.sprintf "sched %g" d
  | Sched_far d -> Printf.sprintf "far %g" d
  | Sched_flat d -> Printf.sprintf "flat %g" d
  | Burst (k, d) -> Printf.sprintf "burst %d@%g" k d
  | Cancel i -> Printf.sprintf "cancel #%d" i
  | Run_until h -> Printf.sprintf "run_until +%g" h
  | Step -> "step"

let gen_op =
  Q.Gen.(
    frequency
      [
        (4, map (fun d -> Sched (float_of_int d /. 8.0)) (int_range 0 160));
        (1, map (fun d -> Sched_far (float_of_int d)) (int_range 2000 60_000));
        (3, map (fun d -> Sched_flat (float_of_int d /. 4.0)) (int_range 0 64));
        ( 2,
          map2
            (fun k d -> Burst (k, float_of_int d /. 2.0))
            (int_range 2 6) (int_range 0 30) );
        (2, map (fun i -> Cancel i) (int_range 0 1000));
        (1, map (fun h -> Run_until (float_of_int h /. 2.0)) (int_range 0 100));
        (1, return Step);
      ])

let gen_ops =
  Q.make
    ~print:(fun ops -> String.concat "; " (List.map op_print ops))
    Q.Gen.(list_size (int_range 1 200) gen_op)

(* Drive one engine through [ops] and return everything observable: the
   exact fire log (event id @ clock), final clock, and the stats counters. *)
let apply agenda ops =
  let e = E.create ~agenda () in
  let log = Buffer.create 512 in
  let n = ref 0 in
  let handles = ref [] in
  (* newest first *)
  let fired id = Buffer.add_string log (Printf.sprintf "%d@%h;" id (E.now e)) in
  let kind =
    E.register_kind e ~name:"diff.flat" (fun a0 _ _ _ -> fired a0)
  in
  let sched_closure delay =
    let id = !n in
    incr n;
    handles := E.schedule e ~delay (fun () -> fired id) :: !handles
  in
  List.iter
    (fun op ->
      match op with
      | Sched d | Sched_far d -> sched_closure d
      | Sched_flat d ->
          let id = !n in
          incr n;
          handles := E.schedule_flat e ~delay:d ~kind ~a0:id ~a1:0 ~a2:0 :: !handles
      | Burst (k, d) ->
          for _ = 1 to k do
            sched_closure d
          done
      | Cancel i -> (
          match !handles with
          | [] -> ()
          | hs -> E.cancel e (List.nth hs (i mod List.length hs)))
      | Run_until h -> E.run_until e (E.now e +. h)
      | Step -> ignore (E.step e))
    ops;
  E.run e;
  let s = E.stats e in
  ( Buffer.contents log,
    E.now e,
    ( s.E.events_processed,
      s.E.events_scheduled,
      s.E.events_cancelled,
      s.E.max_queue_depth ),
    E.pending e )

let prop_wheel_matches_heap =
  Q.Test.make ~count:300 ~name:"wheel and heap agendas are indistinguishable"
    gen_ops (fun ops ->
      let wl, wt, ws, wp = apply `Wheel ops in
      let hl, ht, hs, hp = apply `Heap ops in
      if wl <> hl then Q.Test.fail_reportf "fire logs differ:\n%s\nvs\n%s" wl hl;
      if wt <> ht then Q.Test.fail_reportf "clocks differ: %h vs %h" wt ht;
      (if ws <> hs then
         let wa, wb, wc, wd = ws and ha, hb, hc, hd = hs in
         Q.Test.fail_reportf "stats differ: (%d,%d,%d,%d) vs (%d,%d,%d,%d)" wa
           wb wc wd ha hb hc hd);
      if wp <> hp then Q.Test.fail_reportf "pending differ: %d vs %d" wp hp;
      true)

(* --- edge cases, run on both agendas --------------------------------- *)

let on_both f () =
  f `Wheel;
  f `Heap

let test_negative_delay agenda =
  let e = E.create ~agenda () in
  (match E.schedule e ~delay:(-1.5) (fun () -> ()) with
  | exception E.Negative_delay d ->
      Alcotest.(check (float 0.0)) "payload is the offending delay" (-1.5) d
  | _ -> Alcotest.fail "negative delay accepted");
  ignore (E.schedule e ~delay:5.0 (fun () -> ()));
  E.run e;
  match E.schedule_at e ~time:2.0 (fun () -> ()) with
  | exception E.Negative_delay d ->
      Alcotest.(check (float 0.0)) "payload is time - now" (-3.0) d
  | _ -> Alcotest.fail "past absolute time accepted"

let test_cancel_after_fire agenda =
  let e = E.create ~agenda () in
  let hits = ref 0 in
  let h = E.schedule e ~delay:1.0 (fun () -> incr hits) in
  ignore (E.schedule e ~delay:2.0 (fun () -> incr hits));
  E.run e;
  check "both fired" 2 !hits;
  E.cancel e h;
  (* no-op: the slot may have been recycled, the stamp protects it *)
  let s = E.stats e in
  check "cancel after fire not counted" 0 s.E.events_cancelled;
  ignore (E.schedule e ~delay:1.0 (fun () -> incr hits));
  E.cancel e h;
  E.run e;
  check "recycled slot unharmed by stale cancel" 3 !hits

let test_self_cancel_in_handler agenda =
  let e = E.create ~agenda () in
  let fired = ref false in
  let h = ref None in
  h :=
    Some
      (E.schedule e ~delay:1.0 (fun () ->
           (* cancelling yourself while firing must be a no-op *)
           Option.iter (E.cancel e) !h;
           fired := true));
  E.run e;
  Alcotest.(check bool) "handler ran" true !fired;
  check "self-cancel not counted" 0 (E.stats e).E.events_cancelled

(* --- flat events ------------------------------------------------------ *)

let test_flat_args agenda =
  let e = E.create ~agenda () in
  let seen = ref [] in
  let k =
    E.register_kind e ~name:"args" (fun a0 a1 a2 _ -> seen := (a0, a1, a2) :: !seen)
  in
  ignore (E.schedule_flat e ~delay:1.0 ~kind:k ~a0:7 ~a1:(-3) ~a2:max_int);
  ignore (E.schedule_flat_at e ~time:2.0 ~kind:k ~a0:1 ~a1:2 ~a2:3);
  E.run e;
  Alcotest.(check (list (triple int int int)))
    "arg slots delivered verbatim"
    [ (7, -3, max_int); (1, 2, 3) ]
    (List.rev !seen)

let test_flat_fn_payload agenda =
  let e = E.create ~agenda () in
  let got = ref 0 in
  let k = E.register_kind e ~name:"guard" (fun a0 _ _ f -> if a0 = 1 then f ()) in
  ignore (E.schedule_flat_fn e ~delay:1.0 ~kind:k ~a0:1 (fun () -> got := !got + 1));
  ignore (E.schedule_flat_fn e ~delay:2.0 ~kind:k ~a0:0 (fun () -> got := !got + 10));
  E.run e;
  check "closure payload gated by the int slot" 1 !got

let test_kind_names agenda =
  let e = E.create ~agenda () in
  ignore (E.register_kind e ~name:"alpha" (fun _ _ _ _ -> ()));
  ignore (E.register_kind e ~name:"beta" (fun _ _ _ _ -> ()));
  Alcotest.(check (list string))
    "closure pseudo-kind first, then registration order"
    [ "closure"; "alpha"; "beta" ] (E.kind_names e)

(* --- reset / reuse ---------------------------------------------------- *)

let test_reset_restores_fresh_state agenda =
  let e = E.create ~agenda () in
  for i = 0 to 499 do
    ignore (E.schedule e ~delay:(float_of_int i) (fun () -> ()))
  done;
  E.run e;
  let cap = E.arena_capacity e in
  Alcotest.(check bool) "arena grew" true (cap > 256);
  E.reset e;
  checkf "clock back to zero" 0.0 (E.now e);
  check "no pending" 0 (E.pending e);
  check "counters zeroed" 0 (E.stats e).E.events_processed;
  check "kinds cleared" 1 (List.length (E.kind_names e));
  Alcotest.(check bool)
    "capacity kept across reset" true
    (E.arena_capacity e = cap)

let test_reset_defuses_old_handles agenda =
  let e = E.create ~agenda () in
  let h = E.schedule e ~delay:5.0 (fun () -> Alcotest.fail "stale event fired") in
  E.reset e;
  E.cancel e h;
  (* defused: neither cancels a live slot nor counts *)
  check "stale cancel not counted" 0 (E.stats e).E.events_cancelled;
  let hits = ref 0 in
  ignore (E.schedule e ~delay:1.0 (fun () -> incr hits));
  E.cancel e h;
  E.run e;
  check "post-reset events unaffected by stale handles" 1 !hits

(* A run on a recycled engine must be byte-identical to a run on a fresh
   one: same event order, same clocks, same stats.  This is the driver's
   per-domain world-recycling guarantee (Run.setup ~scratch). *)
let test_reused_engine_byte_identical agenda =
  (* the same little self-rescheduling world, fresh vs recycled *)
  let build e =
    let log = Buffer.create 256 in
    let kref = ref None in
    let k =
      E.register_kind e ~name:"trace" (fun a0 _ _ _ ->
          Buffer.add_string log (Printf.sprintf "%d@%h;" a0 (E.now e));
          if a0 < 40 then
            Option.iter
              (fun k ->
                ignore
                  (E.schedule_flat e
                     ~delay:(float_of_int (1 + (a0 mod 5)))
                     ~kind:k ~a0:(a0 + 1) ~a1:0 ~a2:0))
              !kref)
    in
    kref := Some k;
    ignore (E.schedule_flat e ~delay:0.5 ~kind:k ~a0:0 ~a1:0 ~a2:0);
    ignore (E.schedule e ~delay:3.25 (fun () -> Buffer.add_string log "c;"));
    E.run e;
    let s = E.stats e in
    ( Buffer.contents log,
      E.now e,
      (s.E.events_processed, s.E.events_scheduled, s.E.events_cancelled,
       s.E.max_queue_depth) )
  in
  let fresh = E.create ~agenda () in
  let first = build fresh in
  (* dirty the engine further, then recycle it *)
  ignore (E.schedule fresh ~delay:99.0 (fun () -> ()));
  E.reset fresh;
  let reused = build fresh in
  let fresh2 = build (E.create ~agenda ()) in
  Alcotest.(check bool) "recycled run = its own fresh run" true (reused = first);
  Alcotest.(check bool) "fresh engine agrees too" true (fresh2 = first)

(* A full simulation world on a recycled engine produces the identical
   aggregate JSON line and engine counters. *)
let test_reused_world_byte_identical () =
  let tree = Workload.mixer_tree ~n:3 ~opts:[] () in
  let cfg = { Tpc.Mixer.default_cfg with Tpc.Mixer.txns = 25 } in
  let line w agg =
    ( Tpc.Json.to_string (Tpc.Metrics.Agg.to_json_value agg),
      (let s = Simkernel.Engine.stats w.Tpc.Run.engine in
       ( s.Simkernel.Engine.events_processed,
         s.Simkernel.Engine.events_scheduled,
         s.Simkernel.Engine.events_cancelled,
         s.Simkernel.Engine.max_queue_depth )) )
  in
  let agg1, w1 = Tpc.Mixer.run cfg tree in
  let fresh = line w1 agg1 in
  (* recycle the first world's engine for a second, identical world *)
  let agg2, w2 = Tpc.Mixer.run ~scratch:w1.Tpc.Run.engine cfg tree in
  let reused = line w2 agg2 in
  Alcotest.(check bool)
    "world on recycled engine is byte-identical to fresh" true (fresh = reused)

let suite =
  [
    qtest prop_wheel_matches_heap;
    Alcotest.test_case "negative delay (both agendas)" `Quick
      (on_both test_negative_delay);
    Alcotest.test_case "cancel after fire (both agendas)" `Quick
      (on_both test_cancel_after_fire);
    Alcotest.test_case "self-cancel inside handler (both agendas)" `Quick
      (on_both test_self_cancel_in_handler);
    Alcotest.test_case "flat events carry int args (both agendas)" `Quick
      (on_both test_flat_args);
    Alcotest.test_case "flat-fn closure payload (both agendas)" `Quick
      (on_both test_flat_fn_payload);
    Alcotest.test_case "kind names (both agendas)" `Quick
      (on_both test_kind_names);
    Alcotest.test_case "reset restores fresh state (both agendas)" `Quick
      (on_both test_reset_restores_fresh_state);
    Alcotest.test_case "reset defuses outstanding handles (both agendas)"
      `Quick
      (on_both test_reset_defuses_old_handles);
    Alcotest.test_case "recycled engine byte-identical (both agendas)" `Quick
      (on_both test_reused_engine_byte_identical);
    Alcotest.test_case "recycled world byte-identical" `Quick
      test_reused_world_byte_identical;
  ]
