(* The trace module: counting conventions and diagram rendering. *)

module T = Tpc.Trace

let send ?(protocol = true) ~time src dst label =
  T.Send { time; src; dst; label; protocol }

let log_write ?(rm = false) ~time node kind forced =
  T.Log_write { time; node; kind; forced; rm }

let sample () =
  let t = T.create () in
  T.record t (send ~time:0.0 "a" "b" "Prepare");
  T.record t (log_write ~time:1.0 "b" Wal.Log_record.Prepared true);
  T.record t (send ~time:1.5 "b" "a" "Vote yes");
  T.record t (log_write ~time:2.5 "a" Wal.Log_record.Committed true);
  T.record t (send ~time:3.0 "a" "b" "Commit");
  T.record t (log_write ~time:4.0 "b" Wal.Log_record.Committed true);
  T.record t (log_write ~time:4.0 "b" Wal.Log_record.End false);
  T.record t (send ~time:4.5 "b" "a" "Ack");
  T.record t (log_write ~time:5.5 "a" Wal.Log_record.End false);
  T.record t
    (T.Complete { time = 5.5; node = "a"; outcome = Tpc.Types.Committed; pending = false });
  t

let test_flow_counting () =
  let t = sample () in
  Alcotest.(check int) "four protocol flows" 4 (T.flows t);
  T.record t (send ~protocol:false ~time:6.0 "a" "b" "Data");
  Alcotest.(check int) "data flows not counted" 4 (T.flows t)

let test_write_counting () =
  let t = sample () in
  Alcotest.(check int) "five TM writes" 5 (T.tm_writes t);
  Alcotest.(check int) "three forced" 3 (T.tm_forced_writes t);
  (* resource-manager records are excluded from the paper's counts *)
  T.record t (log_write ~rm:true ~time:6.0 "b" Wal.Log_record.Rm_update false);
  Alcotest.(check int) "rm writes excluded" 5 (T.tm_writes t);
  Alcotest.(check int) "but included on demand" 6
    (T.count_log_writes ~include_rm:true t)

let test_per_node_counting () =
  let t = sample () in
  Alcotest.(check int) "a sent two flows" 2 (T.node_flows t "a");
  Alcotest.(check int) "b wrote three records" 3 (T.node_writes t "b");
  Alcotest.(check int) "b forced two" 2 (T.node_writes ~forced_only:true t "b");
  (* the paper counts protocol flows only: per-node data sends are excluded *)
  T.record t (send ~protocol:false ~time:6.0 "a" "b" "Data:txn-2");
  Alcotest.(check int) "data sends excluded per node" 2 (T.node_flows t "a")

let test_forced_only_rm_interplay () =
  let t = sample () in
  T.record t (log_write ~rm:true ~time:6.0 "b" Wal.Log_record.Rm_update true);
  (* rm:true records stay excluded even when they were forced *)
  Alcotest.(check int) "forced TM writes" 3
    (T.count_log_writes ~forced_only:true t);
  Alcotest.(check int) "forced including rm" 4
    (T.count_log_writes ~include_rm:true ~forced_only:true t);
  Alcotest.(check int) "per-node forced unaffected by rm" 2
    (T.node_writes ~forced_only:true t "b")

let test_deliver_events_neutral () =
  (* Deliver events feed the telemetry spans; none of the paper-convention
     counters may move when they are recorded *)
  let t = sample () in
  let flows = T.flows t and writes = T.tm_writes t in
  T.record t (T.Deliver { time = 1.0; src = "a"; dst = "b"; label = "Prepare" });
  Alcotest.(check int) "flows unchanged" flows (T.flows t);
  Alcotest.(check int) "writes unchanged" writes (T.tm_writes t);
  Alcotest.(check int) "node flows unchanged" 2 (T.node_flows t "a")

let test_completion_time () =
  let t = sample () in
  Alcotest.(check (option (float 1e-9))) "completion recorded" (Some 5.5)
    (T.completion_time t "a");
  Alcotest.(check (option (float 1e-9))) "no completion for b" None
    (T.completion_time t "b")

let test_events_in_order () =
  let t = sample () in
  let times = List.map T.event_time (T.events t) in
  Alcotest.(check bool) "events returned oldest first" true
    (List.sort compare times = times)

let test_clear () =
  let t = sample () in
  T.clear t;
  Alcotest.(check int) "cleared" 0 (List.length (T.events t));
  Alcotest.(check int) "flows reset" 0 (T.flows t)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_diagram_rendering () =
  let t = sample () in
  let d = T.sequence_diagram t ~nodes:[ "a"; "b" ] in
  Alcotest.(check bool) "header row" true (contains d "a");
  Alcotest.(check bool) "prepare arrow" true (contains d "Prepare");
  Alcotest.(check bool) "rightward arrow head" true (contains d ">");
  Alcotest.(check bool) "leftward arrow head" true (contains d "<");
  Alcotest.(check bool) "forced write marker" true (contains d "*log committed");
  Alcotest.(check bool) "non-forced write marker" true (contains d "log end")

let test_diagram_unknown_node_ignored () =
  let t = T.create () in
  T.record t (send ~time:0.0 "ghost" "b" "Prepare");
  (* rendering with a node list that lacks "ghost" must not raise *)
  let d = T.sequence_diagram t ~nodes:[ "a"; "b" ] in
  Alcotest.(check bool) "renders without the unknown arrow" true
    (not (contains d "Prepare"))

let test_diagram_from_real_run () =
  (* end to end: a default three-member commit renders with every member's
     column and the protocol's message labels *)
  let tree = Workload.flat ~n:3 () in
  let _, world = Tpc.Run.commit_tree tree in
  let nodes = List.map (fun p -> p.Tpc.Types.p_name) (Tpc.Types.tree_members tree) in
  let d = T.sequence_diagram world.Tpc.Run.trace ~nodes in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " column present") true (contains d n))
    nodes;
  List.iter
    (fun label ->
      Alcotest.(check bool) (label ^ " arrow present") true (contains d label))
    [ "Prepare"; "Vote"; "Commit"; "Ack" ];
  Alcotest.(check bool) "forces marked" true (contains d "*log")

let test_to_string_lines () =
  let t = sample () in
  let lines = String.split_on_char '\n' (T.to_string t) in
  Alcotest.(check int) "one line per event" 10 (List.length lines)

let suite =
  [
    Alcotest.test_case "flow counting" `Quick test_flow_counting;
    Alcotest.test_case "write counting" `Quick test_write_counting;
    Alcotest.test_case "per-node counting" `Quick test_per_node_counting;
    Alcotest.test_case "forced-only with rm records" `Quick
      test_forced_only_rm_interplay;
    Alcotest.test_case "deliver events don't move counters" `Quick
      test_deliver_events_neutral;
    Alcotest.test_case "diagram from a real run" `Quick
      test_diagram_from_real_run;
    Alcotest.test_case "completion time" `Quick test_completion_time;
    Alcotest.test_case "events in order" `Quick test_events_in_order;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "diagram rendering" `Quick test_diagram_rendering;
    Alcotest.test_case "diagram ignores unknown nodes" `Quick
      test_diagram_unknown_node_ignored;
    Alcotest.test_case "to_string lines" `Quick test_to_string_lines;
  ]
