(* The figure scenarios: each canned run must carry the flow/force schedule
   the corresponding figure shows. *)

module S = Tpc.Scenarios

let flows sc = Tpc.Trace.flows sc.S.sc_trace
let tm_writes sc = Tpc.Trace.tm_writes sc.S.sc_trace
let forced sc = Tpc.Trace.tm_forced_writes sc.S.sc_trace

let outcome sc =
  Option.bind sc.S.sc_metrics (fun m -> m.Tpc.Metrics.outcome)

let test_figure1 () =
  let sc = S.figure1 () in
  Alcotest.(check int) "4 flows" 4 (flows sc);
  Alcotest.(check int) "3 forced writes" 3 (forced sc);
  Alcotest.(check (option bool)) "commits" (Some true)
    (Option.map (fun o -> o = Tpc.Types.Committed) (outcome sc))

let test_figure2 () =
  let sc = S.figure2 () in
  Alcotest.(check int) "two edges, 8 flows" 8 (flows sc);
  Alcotest.(check int) "3n-1 writes" 8 (tm_writes sc)

let test_figure3 () =
  let sc = S.figure3 () in
  (* PN over a 3-chain: +1 commit-pending at root, +1 at the cascaded
     coordinator, +1 agent record at each subordinate *)
  Alcotest.(check int) "8 flows" 8 (flows sc);
  Alcotest.(check int) "writes: 8 + 2 CP + 2 agent" 12 (tm_writes sc);
  Alcotest.(check int) "forced: 5 + 4" 9 (forced sc)

let test_figure4 () =
  let sc = S.figure4 () in
  (* updater edge 4 flows + read-only edge 2 flows *)
  Alcotest.(check int) "6 flows" 6 (flows sc)

let test_figure5 () =
  let sc = S.figure5 () in
  (* dual initiation: both initiators decide abort; the common member
     detects the conflict *)
  let events = Tpc.Trace.events sc.S.sc_trace in
  let aborts =
    List.filter
      (function
        | Tpc.Trace.Decide { outcome = Tpc.Types.Aborted; _ } -> true
        | _ -> false)
      events
  in
  Alcotest.(check bool) "everyone aborts" true (List.length aborts >= 2);
  let detection =
    List.exists
      (function
        | Tpc.Trace.Note { text; _ } ->
            String.length text >= 4 && String.sub text 0 4 = "dual"
        | _ -> false)
      events
  in
  Alcotest.(check bool) "dual initiation detected" true detection;
  let commits =
    List.exists
      (function
        | Tpc.Trace.Decide { outcome = Tpc.Types.Committed; _ } -> true
        | _ -> false)
      events
  in
  Alcotest.(check bool) "nobody commits" false commits

let test_figure6 () =
  let sc = S.figure6 () in
  Alcotest.(check int) "2 flows on the delegation edge" 2 (flows sc);
  Alcotest.(check int) "coordinator 3 + agent 2 writes" 5 (tm_writes sc)

let test_figure7 () =
  let sc = S.figure7 () in
  (* two chained long-locks transactions: 3 protocol flows each *)
  Alcotest.(check int) "6 protocol flows" 6 (flows sc)

let test_figure8 () =
  let sc = S.figure8 () in
  (* 4 flows coordinator<->cascaded + 3 on the reliable leaf's edge *)
  Alcotest.(check int) "7 flows as drawn" 7 (flows sc)

let test_all_returns_eight () =
  let all = S.all () in
  Alcotest.(check int) "eight figures" 8 (List.length all);
  Alcotest.(check (list string)) "ids in order"
    [ "figure-1"; "figure-2"; "figure-3"; "figure-4"; "figure-5"; "figure-6";
      "figure-7"; "figure-8" ]
    (List.map (fun sc -> sc.S.sc_id) all)

let test_render_contains_diagram () =
  let sc = S.figure1 () in
  let rendered = S.render sc in
  let contains needle =
    let nl = String.length needle and hl = String.length rendered in
    let rec go i = i + nl <= hl && (String.sub rendered i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions the title" true
    (contains "Simple Two-Phase Commit");
  Alcotest.(check bool) "shows a Prepare arrow" true (contains "Prepare");
  Alcotest.(check bool) "shows a forced log write" true (contains "*log")

let suite =
  [
    Alcotest.test_case "figure 1 schedule" `Quick test_figure1;
    Alcotest.test_case "figure 2 schedule" `Quick test_figure2;
    Alcotest.test_case "figure 3 schedule (PN)" `Quick test_figure3;
    Alcotest.test_case "figure 4 schedule (read-only)" `Quick test_figure4;
    Alcotest.test_case "figure 5 dual-initiation abort" `Quick test_figure5;
    Alcotest.test_case "figure 6 schedule (last agent)" `Quick test_figure6;
    Alcotest.test_case "figure 7 schedule (long locks)" `Quick test_figure7;
    Alcotest.test_case "figure 8 schedule (vote reliable)" `Quick test_figure8;
    Alcotest.test_case "all eight figures" `Quick test_all_returns_eight;
    Alcotest.test_case "rendering" `Quick test_render_contains_diagram;
  ]
