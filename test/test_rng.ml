(* Tests of the deterministic RNG. *)

module R = Simkernel.Det_rng

let test_determinism () =
  let a = R.create ~seed:42 and b = R.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same seed, same stream" (R.int a 1000) (R.int b 1000)
  done

let test_seed_sensitivity () =
  let a = R.create ~seed:1 and b = R.create ~seed:2 in
  let xs = List.init 20 (fun _ -> R.int a 1_000_000) in
  let ys = List.init 20 (fun _ -> R.int b 1_000_000) in
  Alcotest.(check bool) "different seeds diverge" true (xs <> ys)

let test_int_bounds () =
  let r = R.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = R.int r 17 in
    Alcotest.(check bool) "0 <= v < 17" true (v >= 0 && v < 17)
  done

let test_int_covers_range () =
  let r = R.create ~seed:3 in
  let seen = Array.make 8 false in
  for _ = 1 to 1000 do
    seen.(R.int r 8) <- true
  done;
  Alcotest.(check bool) "all 8 buckets hit" true (Array.for_all (fun x -> x) seen)

let test_float_bounds () =
  let r = R.create ~seed:9 in
  for _ = 1 to 1000 do
    let v = R.float r 2.5 in
    Alcotest.(check bool) "0 <= v < 2.5" true (v >= 0.0 && v < 2.5)
  done

let test_split_independence () =
  let parent = R.create ~seed:5 in
  let child = R.split parent in
  let xs = List.init 20 (fun _ -> R.int parent 1_000_000) in
  let ys = List.init 20 (fun _ -> R.int child 1_000_000) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_exponential_positive () =
  let r = R.create ~seed:11 in
  for _ = 1 to 200 do
    Alcotest.(check bool) "exponential sample > 0" true
      (R.exponential r ~mean:3.0 > 0.0)
  done

let test_exponential_mean () =
  let r = R.create ~seed:13 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. R.exponential r ~mean:4.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "sample mean %.2f close to 4.0" mean)
    true
    (abs_float (mean -. 4.0) < 0.2)

let test_shuffle_is_permutation () =
  let r = R.create ~seed:17 in
  let arr = Array.init 50 (fun i -> i) in
  R.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "shuffle preserves elements"
    (Array.init 50 (fun i -> i))
    sorted

let test_pick_member () =
  let r = R.create ~seed:19 in
  let arr = [| "a"; "b"; "c" |] in
  for _ = 1 to 100 do
    let v = R.pick r arr in
    Alcotest.(check bool) "pick returns a member" true
      (Array.exists (fun x -> x = v) arr)
  done

let test_bool_both_values () =
  let r = R.create ~seed:23 in
  let t = ref false and f = ref false in
  for _ = 1 to 200 do
    if R.bool r then t := true else f := true
  done;
  Alcotest.(check bool) "both booleans occur" true (!t && !f)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int covers range" `Quick test_int_covers_range;
    Alcotest.test_case "float bounds" `Quick test_float_bounds;
    Alcotest.test_case "split independence" `Quick test_split_independence;
    Alcotest.test_case "exponential positive" `Quick test_exponential_positive;
    Alcotest.test_case "exponential mean" `Slow test_exponential_mean;
    Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_is_permutation;
    Alcotest.test_case "pick returns a member" `Quick test_pick_member;
    Alcotest.test_case "bool takes both values" `Quick test_bool_both_values;
  ]
