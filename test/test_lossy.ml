(* 2PC behaviour over a lossy network: single lost messages must never
   break atomicity - the protocol either retransmits its way to the
   outcome or aborts consistently via timeouts and presumptions. *)

open Tpc.Types
open Test_util
module R = Tpc.Run

(* Set up a two-member world, lose the [nth] message in one direction,
   run the commit bounded, and return metrics + world. *)
let lossy_run ?(protocol = Presumed_abort) ~src ~dst ~nth () =
  let config = cfg ~protocol ~retry_interval:25.0 () in
  let w = R.setup ~config (two ()) in
  Tpc.Net.drop_nth w.R.net ~src ~dst ~nth;
  R.perform_work w ~txn:"txn-1";
  Tpc.Participant.begin_commit (R.participant w "C") ~txn:"txn-1";
  Simkernel.Engine.run_until w.R.engine 3_000.0;
  w

let test_lost_prepare_aborts () =
  (* the Prepare never arrives: the coordinator's vote timeout presumes NO *)
  let w = lossy_run ~src:"C" ~dst:"S" ~nth:1 () in
  Alcotest.(check (option outcome)) "aborts" (Some Aborted) w.R.outcome;
  Alcotest.(check (option string)) "S never updated durably" None
    (Kvstore.committed_value (R.kv w "S") "acct-S")

let test_lost_vote_aborts () =
  (* S prepared and voted, the vote is lost: the coordinator aborts on
     timeout; the in-doubt S learns the abort (inquiry or abort message) *)
  let w = lossy_run ~src:"S" ~dst:"C" ~nth:1 () in
  Alcotest.(check (option outcome)) "aborts" (Some Aborted) w.R.outcome;
  Alcotest.(check (option string)) "S rolled back" None
    (Kvstore.committed_value (R.kv w "S") "acct-S")

let test_lost_commit_retransmitted () =
  (* the Commit decision is lost: the coordinator retransmits until acked *)
  let w = lossy_run ~src:"C" ~dst:"S" ~nth:2 () in
  Alcotest.(check (option outcome)) "commits" (Some Committed) w.R.outcome;
  Alcotest.(check (option string)) "S applied the update"
    (Some "upd-by-txn-1")
    (Kvstore.committed_value (R.kv w "S") "acct-S");
  (* at least two Commit sends are in the trace *)
  let commits =
    List.filter
      (function
        | Tpc.Trace.Send { src = "C"; label = "Commit"; _ } -> true
        | _ -> false)
      (Tpc.Trace.events w.R.trace)
  in
  Alcotest.(check bool) "commit retransmitted" true (List.length commits >= 2)

let test_lost_ack_reacknowledged () =
  (* the Ack is lost: the coordinator retransmits the decision and the
     finished subordinate re-acknowledges from its ended-transaction memory *)
  let w = lossy_run ~src:"S" ~dst:"C" ~nth:2 () in
  Alcotest.(check (option outcome)) "commits" (Some Committed) w.R.outcome;
  let acks =
    List.filter
      (function
        | Tpc.Trace.Send { src = "S"; label = "Ack"; _ } -> true
        | _ -> false)
      (Tpc.Trace.events w.R.trace)
  in
  Alcotest.(check bool) "second ack sent" true (List.length acks >= 2);
  Alcotest.(check (option string)) "applied exactly once"
    (Some "upd-by-txn-1")
    (Kvstore.committed_value (R.kv w "S") "acct-S")

let test_lost_commit_basic_protocol () =
  let w = lossy_run ~protocol:Basic ~src:"C" ~dst:"S" ~nth:2 () in
  Alcotest.(check (option outcome)) "basic also recovers" (Some Committed)
    w.R.outcome;
  Alcotest.(check (option string)) "consistent" (Some "upd-by-txn-1")
    (Kvstore.committed_value (R.kv w "S") "acct-S")

let test_lost_commit_pn_protocol () =
  let w = lossy_run ~protocol:Presumed_nothing ~src:"C" ~dst:"S" ~nth:2 () in
  Alcotest.(check (option outcome)) "PN also recovers" (Some Committed)
    w.R.outcome;
  Alcotest.(check (option string)) "consistent" (Some "upd-by-txn-1")
    (Kvstore.committed_value (R.kv w "S") "acct-S")

(* Property: losing any single protocol message in either direction of a
   three-member chain never yields divergent decided states. *)
let prop_any_single_loss_safe =
  let gen =
    QCheck.make
      ~print:(fun (p, src, dst, nth) ->
        Printf.sprintf "(%s, drop %s->%s #%d)" (protocol_to_string p) src dst nth)
      QCheck.Gen.(
        oneofl [ Basic; Presumed_abort; Presumed_nothing ] >>= fun p ->
        oneofl [ ("C", "M"); ("M", "C"); ("M", "S"); ("S", "M") ]
        >>= fun (src, dst) ->
        int_range 1 3 >>= fun nth -> return (p, src, dst, nth))
  in
  QCheck.Test.make ~name:"any single message loss preserves atomicity"
    ~count:80 gen (fun (protocol, src, dst, nth) ->
      let config = cfg ~protocol ~retry_interval:25.0 () in
      let w =
        R.setup ~config
          (Tree (member "C", [ Tree (member "M", [ Tree (member "S", []) ]) ]))
      in
      Tpc.Net.drop_nth w.R.net ~src ~dst ~nth;
      R.perform_work w ~txn:"txn-1";
      Tpc.Participant.begin_commit (R.participant w "C") ~txn:"txn-1";
      Simkernel.Engine.run_until w.R.engine 10_000.0;
      (* decided members (not in doubt) must agree *)
      let decided =
        List.filter_map
          (fun (name, n) ->
            if Kvstore.in_doubt n.R.kv <> [] then None
            else Some (Kvstore.committed_value n.R.kv ("acct-" ^ name) <> None))
          w.R.nodes
      in
      match decided with
      | [] -> true
      | x :: rest -> List.for_all (fun y -> y = x) rest)

let suite =
  [
    Alcotest.test_case "lost Prepare aborts" `Quick test_lost_prepare_aborts;
    Alcotest.test_case "lost Vote aborts" `Quick test_lost_vote_aborts;
    Alcotest.test_case "lost Commit retransmitted" `Quick
      test_lost_commit_retransmitted;
    Alcotest.test_case "lost Ack re-acknowledged" `Quick test_lost_ack_reacknowledged;
    Alcotest.test_case "lost Commit (basic)" `Quick test_lost_commit_basic_protocol;
    Alcotest.test_case "lost Commit (PN)" `Quick test_lost_commit_pn_protocol;
    QCheck_alcotest.to_alcotest prop_any_single_loss_safe;
  ]
