(* Protocol-level tests of the normal (non-failure) case: outcomes,
   atomicity, and exact conformance of the simulated flow/log counts to the
   paper's Table 2, side by side for coordinator and subordinate. *)

open Tpc.Types
open Test_util

(* ------------------------------------------------------------------ *)
(* Outcomes and atomicity                                              *)
(* ------------------------------------------------------------------ *)

let test_commit_all_protocols () =
  List.iter
    (fun protocol ->
      let m, w = run ~config:(cfg ~protocol ()) (two ()) in
      check_outcome (protocol_to_string protocol) (Some Committed) m;
      check_consistent
        (protocol_to_string protocol ^ " consistent")
        w ~txn:"txn-1" ~outcome:Committed)
    [ Basic; Presumed_abort; Presumed_nothing ]

let test_abort_all_protocols () =
  List.iter
    (fun protocol ->
      let tree = two ~s:(member ~vote_no:true "S") () in
      let m, w = run ~config:(cfg ~protocol ()) tree in
      check_outcome (protocol_to_string protocol ^ " aborts") (Some Aborted) m;
      check_consistent
        (protocol_to_string protocol ^ " abort consistent")
        w ~txn:"txn-1" ~outcome:Aborted)
    [ Basic; Presumed_abort; Presumed_nothing ]

let test_coordinator_vote_no_aborts () =
  let m, w = run ~config:(cfg ()) (two ~c:(member ~vote_no:true "C") ()) in
  check_outcome "local NO aborts" (Some Aborted) m;
  check_consistent "abort consistent" w ~txn:"txn-1" ~outcome:Aborted

let test_one_no_among_many_aborts () =
  let tree =
    Tree
      ( member "C",
        [
          Tree (member "S1", []);
          Tree (member ~vote_no:true "S2", []);
          Tree (member "S3", []);
        ] )
  in
  let m, w = run ~config:(cfg ()) tree in
  check_outcome "one NO vote aborts" (Some Aborted) m;
  check_consistent "no partial commit" w ~txn:"txn-1" ~outcome:Aborted

let test_deep_chain_commits () =
  let rec chain n = if n = 0 then [] else [ Tree (member (Printf.sprintf "n%d" n), chain (n - 1)) ] in
  let m, w = run ~config:(cfg ()) (Tree (member "C", chain 6)) in
  check_outcome "six-deep chain commits" (Some Committed) m;
  check_consistent "chain consistent" w ~txn:"txn-1" ~outcome:Committed;
  check_counts "chain matches n=7 formula" (Tpc.Cost_model.basic ~n:7) m

let test_no_deep_in_chain_aborts_everywhere () =
  let tree =
    Tree
      ( member "C",
        [ Tree (member "M", [ Tree (member ~vote_no:true "S", []) ]) ] )
  in
  let m, w = run ~config:(cfg ()) tree in
  check_outcome "leaf NO propagates" (Some Aborted) m;
  check_consistent "all rolled back" w ~txn:"txn-1" ~outcome:Aborted

let test_single_member_degenerate () =
  let m, _w = run ~config:(cfg ()) (Tree (member "C", [])) in
  check_outcome "n=1 commits" (Some Committed) m;
  check_counts "n=1 counts" { Tpc.Cost_model.flows = 0; writes = 2; forced = 1 } m

let test_bushy_tree_commits () =
  let tree = Workload.random_tree ~seed:99 ~n:15 () in
  let m, w = run ~config:(cfg ()) tree in
  check_outcome "random 15-member tree commits" (Some Committed) m;
  check_consistent "random tree consistent" w ~txn:"txn-1" ~outcome:Committed;
  check_counts "shape-independent counts" (Tpc.Cost_model.basic ~n:15) m

let test_locks_released_everywhere_after_commit () =
  let _m, w = run ~config:(cfg ()) (three ()) in
  List.iter
    (fun (name, _) ->
      Alcotest.(check bool)
        (name ^ " released its locks")
        true
        (Tpc.Trace.locks_released_time w.Tpc.Run.trace name <> None))
    w.Tpc.Run.nodes

let test_subordinates_release_before_root_completes () =
  let _m, w = run ~config:(cfg ()) (two ()) in
  let t_sub = Option.get (Tpc.Trace.locks_released_time w.Tpc.Run.trace "S") in
  let t_done = Option.get (Tpc.Trace.completion_time w.Tpc.Run.trace "C") in
  Alcotest.(check bool) "S unlocked before C completed (late ack)" true
    (t_sub < t_done)

(* ------------------------------------------------------------------ *)
(* Table 2 conformance, coordinator and subordinate sides              *)
(* ------------------------------------------------------------------ *)

let test_table2_basic () =
  let _m, w = run ~config:(cfg ~protocol:Basic ()) (two ()) in
  check_side "basic coordinator (2 flows; 2 writes, 1 forced)" (2, 2, 1) w "C";
  check_side "basic subordinate (2 flows; 3 writes, 2 forced)" (2, 3, 2) w "S"

let test_table2_pn () =
  let _m, w = run ~config:(cfg ~protocol:Presumed_nothing ()) (two ()) in
  check_side "PN coordinator (2; 3, 2)" (2, 3, 2) w "C";
  check_side "PN subordinate (2; 4, 3)" (2, 4, 3) w "S"

let test_table2_pa_commit () =
  let _m, w = run ~config:(cfg ()) (two ()) in
  check_side "PA commit coordinator" (2, 2, 1) w "C";
  check_side "PA commit subordinate" (2, 3, 2) w "S"

let test_table2_pa_abort () =
  let _m, w = run ~config:(cfg ()) (two ~s:(member ~vote_no:true "S") ()) in
  check_side "PA abort coordinator (2; 0, 0)" (2, 0, 0) w "C";
  check_side "PA abort subordinate (1; 0, 0)" (1, 0, 0) w "S"

let test_table2_pa_read_only () =
  let tree = two ~c:(member ~updated:false "C") ~s:(member ~updated:false "S") () in
  let _m, w = run ~config:(cfg ~opts:{ no_opts with read_only = true } ()) tree in
  check_side "PA read-only coordinator (1; 0, 0)" (1, 0, 0) w "C";
  check_side "PA read-only subordinate (1; 0, 0)" (1, 0, 0) w "S"

let test_table2_pa_last_agent () =
  let _m, w = run ~config:(cfg ~opts:{ no_opts with last_agent = true } ()) (two ()) in
  check_side "PA last-agent coordinator (1; 3, 2)" (1, 3, 2) w "C";
  check_side "PA last-agent subordinate (1; 2, 1)" (1, 2, 1) w "S"

let test_table2_pa_unsolicited () =
  let tree = two ~s:(member ~unsolicited:true "S") () in
  let _m, w =
    run ~config:(cfg ~opts:{ no_opts with unsolicited_vote = true } ()) tree
  in
  check_side "PA unsolicited coordinator (1; 2, 1)" (1, 2, 1) w "C";
  check_side "PA unsolicited subordinate (2; 3, 2)" (2, 3, 2) w "S"

let test_table2_pa_leave_out () =
  let tree =
    two
      ~c:(member ~updated:false "C")
      ~s:(member ~left_out:true ~leave_out_ok:true "S")
      ()
  in
  let _m, w =
    run
      ~config:(cfg ~opts:{ no_opts with leave_out = true; read_only = true } ())
      tree
  in
  check_side "PA leave-out coordinator (0; 0, 0)" (0, 0, 0) w "C";
  check_side "PA leave-out subordinate (0; 0, 0)" (0, 0, 0) w "S"

let test_table2_pa_vote_reliable () =
  let tree = two ~s:(member ~reliable:true "S") () in
  let _m, w =
    run ~config:(cfg ~opts:{ no_opts with vote_reliable = true } ()) tree
  in
  check_side "PA vote-reliable coordinator (2; 2, 1)" (2, 2, 1) w "C";
  check_side "PA vote-reliable subordinate (1; 3, 2)" (1, 3, 2) w "S"

let test_table2_pa_shared_log () =
  let tree = two ~s:(member ~shares_parent_log:true "S") () in
  let _m, w = run ~config:(cfg ~opts:{ no_opts with shared_log = true } ()) tree in
  check_side "PA shared-log coordinator (2; 2, 1)" (2, 2, 1) w "C";
  check_side "PA shared-log subordinate (2; 3, 0)" (2, 3, 0) w "S"

let test_table2_pa_long_locks () =
  let tree = two ~s:(member ~long_locks:true "S") () in
  let m, w = run ~config:(cfg ~opts:{ no_opts with long_locks = true } ()) tree in
  check_side "PA long-locks coordinator (2; 2, 1)" (2, 2, 1) w "C";
  check_side "PA long-locks subordinate (1; 3, 2)" (1, 3, 2) w "S";
  Alcotest.(check int) "the deferred ack rides one data flow" 1
    m.Tpc.Metrics.data_flows

let test_table2_pa_wait_for_outcome_normal_case () =
  let _m, w =
    run ~config:(cfg ~opts:{ no_opts with wait_for_outcome = true } ()) (two ())
  in
  check_side "WFO normal-case coordinator = basic" (2, 2, 1) w "C";
  check_side "WFO normal-case subordinate = basic" (2, 3, 2) w "S"

(* The whole Table 2, sides summed, against the cost-model rows. *)
let test_table2_totals_against_model () =
  let scenarios =
    [
      ("Basic 2PC", cfg ~protocol:Basic (), two ());
      ("PN", cfg ~protocol:Presumed_nothing (), two ());
      ("PA, Commit case", cfg (), two ());
      ("PA, Abort case", cfg (), two ~s:(member ~vote_no:true "S") ());
      ( "PA, Read-Only case",
        cfg ~opts:{ no_opts with read_only = true } (),
        two ~c:(member ~updated:false "C") ~s:(member ~updated:false "S") () );
      ("PA & Last-Agent", cfg ~opts:{ no_opts with last_agent = true } (), two ());
      ( "PA & Unsolicited Vote",
        cfg ~opts:{ no_opts with unsolicited_vote = true } (),
        two ~s:(member ~unsolicited:true "S") () );
      ( "PA & Leave-Out",
        cfg ~opts:{ no_opts with leave_out = true; read_only = true } (),
        two
          ~c:(member ~updated:false "C")
          ~s:(member ~left_out:true ~leave_out_ok:true "S")
          () );
      ( "PA & Vote Reliable",
        cfg ~opts:{ no_opts with vote_reliable = true } (),
        two ~s:(member ~reliable:true "S") () );
      ( "PA & Wait For Outcome",
        cfg ~opts:{ no_opts with wait_for_outcome = true } (),
        two () );
      ( "PA & Shared Logs",
        cfg ~opts:{ no_opts with shared_log = true } (),
        two ~s:(member ~shares_parent_log:true "S") () );
      ( "PA & Long Locks",
        cfg ~opts:{ no_opts with long_locks = true } (),
        two ~s:(member ~long_locks:true "S") () );
    ]
  in
  List.iter
    (fun (label, config, tree) ->
      let row =
        List.find (fun r -> r.Tpc.Cost_model.t2_label = label) Tpc.Cost_model.table2
      in
      let expected =
        {
          Tpc.Cost_model.flows =
            row.Tpc.Cost_model.coordinator.Tpc.Cost_model.s_flows
            + row.Tpc.Cost_model.subordinate.Tpc.Cost_model.s_flows;
          writes =
            row.Tpc.Cost_model.coordinator.Tpc.Cost_model.s_writes
            + row.Tpc.Cost_model.subordinate.Tpc.Cost_model.s_writes;
          forced =
            row.Tpc.Cost_model.coordinator.Tpc.Cost_model.s_forced
            + row.Tpc.Cost_model.subordinate.Tpc.Cost_model.s_forced;
        }
      in
      let m, _w = run ~config tree in
      check_counts label expected m)
    scenarios

(* ------------------------------------------------------------------ *)
(* Structural details of the message schedule                         *)
(* ------------------------------------------------------------------ *)

let sends_of w =
  List.filter_map
    (function
      | Tpc.Trace.Send { src; dst; label; protocol; _ } ->
          Some (src, dst, label, protocol)
      | _ -> None)
    (Tpc.Trace.events w.Tpc.Run.trace)

let test_message_schedule_basic () =
  let _m, w = run ~config:(cfg ~protocol:Basic ()) (two ()) in
  let labels = List.map (fun (_, _, l, _) -> l) (sends_of w) in
  Alcotest.(check (list string)) "Prepare, Vote, Commit, Ack"
    [ "Prepare"; "Vote yes"; "Commit"; "Ack" ] labels

let test_pn_logs_commit_pending_before_prepare () =
  let _m, w = run ~config:(cfg ~protocol:Presumed_nothing ()) (two ()) in
  let events = Tpc.Trace.events w.Tpc.Run.trace in
  let idx p =
    let rec go i = function
      | [] -> -1
      | e :: rest -> if p e then i else go (i + 1) rest
    in
    go 0 events
  in
  let pending_idx =
    idx (function
      | Tpc.Trace.Log_write { node = "C"; kind = Wal.Log_record.Commit_pending; _ } ->
          true
      | _ -> false)
  in
  let prepare_idx =
    idx (function
      | Tpc.Trace.Send { src = "C"; label = "Prepare"; _ } -> true
      | _ -> false)
  in
  Alcotest.(check bool) "commit-pending logged" true (pending_idx >= 0);
  Alcotest.(check bool) "before any Prepare flow" true (pending_idx < prepare_idx)

let test_read_only_member_excluded_from_phase_two () =
  let tree =
    Tree (member "C", [ Tree (member "U", []); Tree (member ~updated:false "R", []) ])
  in
  let _m, w = run ~config:(cfg ~opts:{ no_opts with read_only = true } ()) tree in
  let to_reader =
    List.filter (fun (_, dst, _, _) -> dst = "R") (sends_of w)
  in
  Alcotest.(check int) "reader receives only the Prepare" 1 (List.length to_reader)

let test_unsolicited_member_receives_no_prepare () =
  let tree = two ~s:(member ~unsolicited:true "S") () in
  let _m, w =
    run ~config:(cfg ~opts:{ no_opts with unsolicited_vote = true } ()) tree
  in
  let prepares_to_s =
    List.filter
      (fun (_, dst, l, _) -> dst = "S" && String.length l >= 7 && String.sub l 0 7 = "Prepare")
      (sends_of w)
  in
  Alcotest.(check int) "no Prepare flow to the unsolicited voter" 0
    (List.length prepares_to_s)

let test_left_out_member_completely_silent () =
  let tree =
    two
      ~c:(member "C")
      ~s:(member ~left_out:true ~leave_out_ok:true "S")
      ()
  in
  let _m, w = run ~config:(cfg ~opts:{ no_opts with leave_out = true } ()) tree in
  let touching_s =
    List.filter (fun (src, dst, _, _) -> src = "S" || dst = "S") (sends_of w)
  in
  Alcotest.(check int) "no flow touches the left-out member" 0
    (List.length touching_s)

let test_reliable_member_sends_no_ack () =
  let tree = two ~s:(member ~reliable:true "S") () in
  let _m, w = run ~config:(cfg ~opts:{ no_opts with vote_reliable = true } ()) tree in
  let acks =
    List.filter
      (fun (src, _, l, _) -> src = "S" && String.length l >= 3 && String.sub l 0 3 = "Ack")
      (sends_of w)
  in
  Alcotest.(check int) "reliable voter's ack elided" 0 (List.length acks)

let test_commit_before_ack_everywhere () =
  (* sanity of the schedule: a subordinate's ack never precedes its own
     committed log force *)
  let _m, w = run ~config:(cfg ()) (three ()) in
  let events = Tpc.Trace.events w.Tpc.Run.trace in
  let time_of p = List.find_map p events in
  let committed node =
    time_of (function
      | Tpc.Trace.Log_write
          { time; node = n; kind = Wal.Log_record.Committed; forced = true; _ }
        when n = node ->
          Some time
      | _ -> None)
  in
  let ack node =
    time_of (function
      | Tpc.Trace.Send { time; src; label = "Ack"; _ } when src = node -> Some time
      | _ -> None)
  in
  List.iter
    (fun n ->
      match (committed n, ack n) with
      | Some tc, Some ta ->
          Alcotest.(check bool) (n ^ " commits before acking") true (tc <= ta)
      | _ -> Alcotest.fail (n ^ " missing commit or ack"))
    [ "M"; "S" ]

let suite =
  [
    Alcotest.test_case "commit under all protocols" `Quick test_commit_all_protocols;
    Alcotest.test_case "abort under all protocols" `Quick test_abort_all_protocols;
    Alcotest.test_case "coordinator NO aborts" `Quick test_coordinator_vote_no_aborts;
    Alcotest.test_case "one NO among many aborts" `Quick test_one_no_among_many_aborts;
    Alcotest.test_case "deep chain commits" `Quick test_deep_chain_commits;
    Alcotest.test_case "deep NO aborts everywhere" `Quick
      test_no_deep_in_chain_aborts_everywhere;
    Alcotest.test_case "single-member degenerate" `Quick test_single_member_degenerate;
    Alcotest.test_case "bushy random tree" `Quick test_bushy_tree_commits;
    Alcotest.test_case "locks released everywhere" `Quick
      test_locks_released_everywhere_after_commit;
    Alcotest.test_case "subordinate unlocks before root completes" `Quick
      test_subordinates_release_before_root_completes;
    Alcotest.test_case "Table 2: basic" `Quick test_table2_basic;
    Alcotest.test_case "Table 2: PN" `Quick test_table2_pn;
    Alcotest.test_case "Table 2: PA commit" `Quick test_table2_pa_commit;
    Alcotest.test_case "Table 2: PA abort" `Quick test_table2_pa_abort;
    Alcotest.test_case "Table 2: PA read-only" `Quick test_table2_pa_read_only;
    Alcotest.test_case "Table 2: PA last-agent" `Quick test_table2_pa_last_agent;
    Alcotest.test_case "Table 2: PA unsolicited" `Quick test_table2_pa_unsolicited;
    Alcotest.test_case "Table 2: PA leave-out" `Quick test_table2_pa_leave_out;
    Alcotest.test_case "Table 2: PA vote-reliable" `Quick test_table2_pa_vote_reliable;
    Alcotest.test_case "Table 2: PA shared-log" `Quick test_table2_pa_shared_log;
    Alcotest.test_case "Table 2: PA long-locks" `Quick test_table2_pa_long_locks;
    Alcotest.test_case "Table 2: WFO normal case" `Quick
      test_table2_pa_wait_for_outcome_normal_case;
    Alcotest.test_case "Table 2 totals vs cost model" `Quick
      test_table2_totals_against_model;
    Alcotest.test_case "message schedule (basic)" `Quick test_message_schedule_basic;
    Alcotest.test_case "PN: commit-pending precedes Prepare" `Quick
      test_pn_logs_commit_pending_before_prepare;
    Alcotest.test_case "read-only member out of phase 2" `Quick
      test_read_only_member_excluded_from_phase_two;
    Alcotest.test_case "unsolicited member gets no Prepare" `Quick
      test_unsolicited_member_receives_no_prepare;
    Alcotest.test_case "left-out member silent" `Quick
      test_left_out_member_completely_silent;
    Alcotest.test_case "reliable member sends no ack" `Quick
      test_reliable_member_sends_no_ack;
    Alcotest.test_case "commit precedes ack" `Quick test_commit_before_ack_everywhere;
  ]
