(* Timeout/retransmission recovery under deterministic message loss: the
   chaos engine's drop_nth primitive exercised at protocol level.  Each
   test pins one of Section 2's presumption rules: Presumed Abort never
   needs abort acknowledgments (no information = abort), Presumed Nothing
   must deliver and get an acknowledgment for an abort sent to a member
   that may hold a forced prepare record, read-only voters leave phase two
   entirely, and a lost last-agent delegation is re-sent rather than
   aborting the transaction. *)

open Tpc.Types
open Test_util
module R = Tpc.Run

(* Count protocol sends from [src] whose label satisfies [p] (and, when
   given, that go to [dst]). *)
let sends ?dst w ~src p =
  List.length
    (List.filter
       (function
         | Tpc.Trace.Send { src = s; dst = d; label; _ } ->
             s = src && p label && (match dst with None -> true | Some d' -> d = d')
         | _ -> false)
       (Tpc.Trace.events w.R.trace))

let is l = String.equal l

let has sub l =
  let n = String.length sub and m = String.length l in
  let rec go i = i + n <= m && (String.sub l i n = sub || go (i + 1)) in
  go 0

(* Set up a world from [tree], register the requested nth-message drops,
   run one transaction to quiescence. *)
let drop_run ?(protocol = Presumed_abort) ?(opts = no_opts) ~drops tree =
  let config = cfg ~protocol ~opts ~retry_interval:25.0 () in
  let config = { config with prepare_retries = 2 } in
  let w = R.setup ~config tree in
  List.iter (fun (src, dst, nth) -> Tpc.Net.drop_nth w.R.net ~src ~dst ~nth) drops;
  R.perform_work w ~txn:"txn-1";
  Tpc.Participant.begin_commit (R.participant w "C") ~txn:"txn-1";
  Simkernel.Engine.run_until w.R.engine 5_000.0;
  w

let test_pa_lost_commit_retransmitted () =
  (* PA commit: the YES voter's acknowledgment is required (it lets the
     coordinator forget), so a lost Commit is retransmitted until acked *)
  let w = drop_run ~drops:[ ("C", "S", 2) ] (two ()) in
  Alcotest.(check (option outcome)) "commits" (Some Committed) w.R.outcome;
  Alcotest.(check bool) "Commit retransmitted" true
    (sends w ~src:"C" (is "Commit") >= 2);
  Alcotest.(check (option string)) "S applied" (Some "upd-by-txn-1")
    (Kvstore.committed_value (R.kv w "S") "acct-S")

let test_pa_lost_vote_abort_fire_and_forget () =
  (* S prepares and votes YES but the vote is lost; after the Prepare
     retries run out the coordinator presumes NO and aborts.  Presumed
     Abort needs no abort acknowledgment - the Abort goes out exactly once
     and the coordinator forgets; the in-doubt S resolves via the message
     or, failing that, by inquiry drawing "no information = abort".
     Five drops: three (re)votes plus the two in-doubt inquiries
     interleaved with them on the same link *)
  let w =
    drop_run
      ~drops:(List.map (fun nth -> ("S", "C", nth)) [ 1; 2; 3; 4; 5 ])
      (two ())
  in
  Alcotest.(check (option outcome)) "aborts" (Some Aborted) w.R.outcome;
  Alcotest.(check int) "Abort sent once, never retried" 1
    (sends w ~src:"C" (is "Abort"));
  Alcotest.(check (option string)) "S rolled back" None
    (Kvstore.committed_value (R.kv w "S") "acct-S");
  Alcotest.(check (list string)) "S not in doubt" []
    (Kvstore.in_doubt (R.kv w "S"))

let test_pn_lost_abort_retransmitted () =
  (* same lost-vote abort under Presumed Nothing: the silent member may be
     crashed holding a forced prepare record, and PN has no presumption to
     fall back on - the abort must be delivered and acknowledged.  We also
     lose the first Abort, so the coordinator's acknowledgment retries must
     carry the decision through *)
  let w =
    drop_run ~protocol:Presumed_nothing
      ~drops:
        (List.map (fun nth -> ("S", "C", nth)) [ 1; 2; 3; 4; 5 ]
        @ [ ("C", "S", 4) ])
      (two ())
  in
  Alcotest.(check (option outcome)) "aborts" (Some Aborted) w.R.outcome;
  Alcotest.(check bool) "Abort retransmitted until acked" true
    (sends w ~src:"C" (is "Abort") >= 2);
  Alcotest.(check (option string)) "S rolled back" None
    (Kvstore.committed_value (R.kv w "S") "acct-S");
  Alcotest.(check (list string)) "S not in doubt" []
    (Kvstore.in_doubt (R.kv w "S"))

let test_pa_read_only_excluded_from_retransmission () =
  (* a read-only voter leaves the protocol after phase one: even while the
     updated sibling's Commit is being retransmitted, the read-only member
     sees exactly one message (the Prepare) and no phase two at all *)
  let tree =
    Tree
      ( member "C",
        [ Tree (member "S", []); Tree (member ~updated:false "RO", []) ] )
  in
  let w =
    drop_run
      ~opts:{ no_opts with read_only = true }
      ~drops:[ ("C", "S", 2) ]
      tree
  in
  Alcotest.(check (option outcome)) "commits" (Some Committed) w.R.outcome;
  Alcotest.(check bool) "Commit to S retransmitted" true
    (sends w ~src:"C" ~dst:"S" (is "Commit") >= 2);
  Alcotest.(check int) "RO saw only the Prepare" 1
    (sends w ~src:"C" ~dst:"RO" (fun _ -> true));
  Alcotest.(check (option string)) "S applied" (Some "upd-by-txn-1")
    (Kvstore.committed_value (R.kv w "S") "acct-S")

let test_last_agent_delegation_retransmitted () =
  (* the delegation (YES-with-you-decide) to the last agent is lost: the
     coordinator is not in doubt - it re-sends the delegation until the
     agent's decision report arrives instead of aborting *)
  let w =
    drop_run
      ~opts:{ no_opts with last_agent = true }
      ~drops:[ ("C", "S", 1) ]
      (two ())
  in
  Alcotest.(check (option outcome)) "commits" (Some Committed) w.R.outcome;
  Alcotest.(check bool) "delegation re-sent" true
    (sends w ~src:"C" (has "(you decide)") >= 2);
  Alcotest.(check (option string)) "both applied" (Some "upd-by-txn-1")
    (Kvstore.committed_value (R.kv w "S") "acct-S");
  Alcotest.(check (option string)) "coordinator applied" (Some "upd-by-txn-1")
    (Kvstore.committed_value (R.kv w "C") "acct-C")

let test_lost_prepare_survives_with_retries () =
  (* with prepare_retries > 0 a lost Prepare no longer dooms the
     transaction: the vote timeout re-sends it and the commit goes through *)
  let w = drop_run ~drops:[ ("C", "S", 1) ] (two ()) in
  Alcotest.(check (option outcome)) "commits despite lost Prepare"
    (Some Committed) w.R.outcome;
  Alcotest.(check bool) "Prepare retransmitted" true
    (sends w ~src:"C" (is "Prepare") >= 2)

let suite =
  [
    Alcotest.test_case "PA: lost Commit retransmitted" `Quick
      test_pa_lost_commit_retransmitted;
    Alcotest.test_case "PA: abort is fire-and-forget" `Quick
      test_pa_lost_vote_abort_fire_and_forget;
    Alcotest.test_case "PN: abort retransmitted until acked" `Quick
      test_pn_lost_abort_retransmitted;
    Alcotest.test_case "PA read-only: no phase-two retransmission" `Quick
      test_pa_read_only_excluded_from_retransmission;
    Alcotest.test_case "last-agent: delegation retransmitted" `Quick
      test_last_agent_delegation_retransmitted;
    Alcotest.test_case "lost Prepare survives with retries" `Quick
      test_lost_prepare_survives_with_retries;
  ]
