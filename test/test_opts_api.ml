(* The list-based options API and config builders. *)

open Tpc.Types

let test_opts_of_list_round_trip () =
  List.iter
    (fun o ->
      let opts = opts_of_list [ o ] in
      Alcotest.(check bool)
        (Printf.sprintf "%s enabled" (opt_to_string o))
        true (opt_enabled opts o);
      Alcotest.(check bool)
        (Printf.sprintf "%s round-trips" (opt_to_string o))
        true
        (opts_to_list opts = [ o ]))
    all_opts

let test_opts_to_list_full () =
  let opts = opts_of_list all_opts in
  Alcotest.(check bool) "all switches survive" true (opts_to_list opts = all_opts);
  Alcotest.(check bool) "early ack selected" true (opts.ack = Early_ack);
  Alcotest.(check bool) "empty list is no_opts" true (opts_of_list [] = no_opts);
  Alcotest.(check bool) "no_opts lists empty" true (opts_to_list no_opts = [])

let test_opt_of_string_inverse () =
  List.iter
    (fun o ->
      Alcotest.(check bool)
        (Printf.sprintf "parse %s" (opt_to_string o))
        true
        (opt_of_string (opt_to_string o) = Some o))
    all_opts;
  Alcotest.(check bool) "alias readonly" true
    (opt_of_string "readonly" = Some `Read_only);
  Alcotest.(check bool) "alias unsolicited-vote" true
    (opt_of_string "unsolicited-vote" = Some `Unsolicited_vote);
  Alcotest.(check bool) "case-insensitive" true
    (opt_of_string "Shared-Log" = Some `Shared_log);
  Alcotest.(check bool) "unknown rejected" true (opt_of_string "warp-speed" = None)

let test_config_builders () =
  let cfg =
    default_config
    |> with_protocol Presumed_nothing
    |> with_opts [ `Read_only; `Last_agent ]
    |> with_latency 2.5
    |> with_io_latency 0.25
    |> with_group_commit ~size:8 ~timeout:3.0
    |> with_retries ~interval:99.0 ~max:7
    |> with_implied_ack_delay 4.0
  in
  Alcotest.(check bool) "protocol" true (cfg.protocol = Presumed_nothing);
  Alcotest.(check bool) "opts" true
    (cfg.opts = opts_of_list [ `Read_only; `Last_agent ]);
  Alcotest.(check (float 0.0)) "latency" 2.5 cfg.latency;
  Alcotest.(check (float 0.0)) "io latency" 0.25 cfg.io_latency;
  (match cfg.group_commit with
  | Some g ->
      Alcotest.(check int) "group size" 8 g.Wal.Log.size;
      Alcotest.(check (float 0.0)) "group timeout" 3.0 g.Wal.Log.timeout
  | None -> Alcotest.fail "group commit not set");
  Alcotest.(check bool) "group commit removable" true
    ((cfg |> without_group_commit).group_commit = None);
  Alcotest.(check (float 0.0)) "retry interval" 99.0 cfg.retry_interval;
  Alcotest.(check int) "max retries" 7 cfg.max_retries;
  Alcotest.(check (float 0.0)) "implied ack delay" 4.0 cfg.implied_ack_delay

(* a run configured through the new API behaves exactly like the record *)
let test_builders_equivalent_to_records () =
  let tree () = Workload.flat ~decorate:(Workload.read_only_mix ~m:2) ~n:4 () in
  let old_school =
    { default_config with opts = { no_opts with read_only = true; last_agent = true } }
  in
  let new_school = default_config |> with_opts [ `Read_only; `Last_agent ] in
  let m1, _ = Tpc.Run.commit_tree ~config:old_school (tree ()) in
  let m2, _ = Tpc.Run.commit_tree ~config:new_school (tree ()) in
  Alcotest.(check string) "identical runs" (Tpc.Metrics.to_json m1)
    (Tpc.Metrics.to_json m2)

let test_metrics_json_round_trips () =
  let m, _ = Tpc.Run.commit_tree (Workload.flat ~n:3 ()) in
  let line = Tpc.Metrics.to_json m in
  let parsed = Tpc.Json.parse line in
  (match Tpc.Json.member "outcome" parsed with
  | Some (Tpc.Json.String s) -> Alcotest.(check string) "outcome" "commit" s
  | _ -> Alcotest.fail "outcome field missing");
  (match Tpc.Json.member "flows" parsed with
  | Some (Tpc.Json.Int f) -> Alcotest.(check int) "flows" m.Tpc.Metrics.flows f
  | _ -> Alcotest.fail "flows field missing");
  Alcotest.(check string) "fixpoint" line (Tpc.Json.to_string parsed)

let test_json_parser_rejects_garbage () =
  List.iter
    (fun s ->
      Alcotest.(check bool) (Printf.sprintf "reject %S" s) true
        (Tpc.Json.parse_opt s = None))
    [ ""; "{"; "[1,"; "{\"a\":}"; "tru"; "1 2"; "{\"a\":1,}" ]

let suite =
  [
    Alcotest.test_case "opts_of_list round-trips each switch" `Quick
      test_opts_of_list_round_trip;
    Alcotest.test_case "all switches compose" `Quick test_opts_to_list_full;
    Alcotest.test_case "opt_of_string inverts opt_to_string" `Quick
      test_opt_of_string_inverse;
    Alcotest.test_case "config builders set every field" `Quick
      test_config_builders;
    Alcotest.test_case "builders equivalent to record updates" `Quick
      test_builders_equivalent_to_records;
    Alcotest.test_case "Metrics.to_json round-trips" `Quick
      test_metrics_json_round_trips;
    Alcotest.test_case "JSON parser rejects garbage" `Quick
      test_json_parser_rejects_garbage;
  ]
