(* Property-based tests (qcheck): the simulator agrees with the closed-form
   cost model on random trees and parameters, commits are always atomic,
   and single injected faults never break atomicity among live members. *)

open Tpc.Types
module C = Tpc.Cost_model
module Q = QCheck

let qtest = QCheck_alcotest.to_alcotest

(* --- generators ------------------------------------------------------ *)

let gen_n_m =
  Q.make
    ~print:(fun (n, m) -> Printf.sprintf "(n=%d, m=%d)" n m)
    Q.Gen.(
      int_range 2 14 >>= fun n ->
      int_range 0 (n - 1) >>= fun m -> return (n, m))

let gen_seed_n =
  Q.make
    ~print:(fun (s, n) -> Printf.sprintf "(seed=%d, n=%d)" s n)
    Q.Gen.(
      int_range 0 10_000 >>= fun s ->
      int_range 1 16 >>= fun n -> return (s, n))

let protocols = [| Basic; Presumed_abort; Presumed_nothing |]

let crash_points =
  [|
    Cp_on_prepare;
    Cp_after_prepared_log;
    Cp_after_vote;
    Cp_before_decision_log;
    Cp_after_decision_log;
    Cp_after_decision_received;
    Cp_before_ack;
    Cp_after_commit_pending;
  |]

let crash_point_name = function
  | Cp_on_prepare -> "on-prepare"
  | Cp_after_prepared_log -> "after-prepared"
  | Cp_after_vote -> "after-vote"
  | Cp_before_decision_log -> "before-decision-log"
  | Cp_after_decision_log -> "after-decision-log"
  | Cp_after_decision_received -> "after-decision-received"
  | Cp_before_ack -> "before-ack"
  | Cp_after_commit_pending -> "after-commit-pending"

let gen_fault_case =
  Q.make
    ~print:(fun (p, cp, node, restart) ->
      Printf.sprintf "(%s, %s at %s, restart=%b)" (protocol_to_string p)
        (crash_point_name cp) node restart)
    Q.Gen.(
      oneofl (Array.to_list protocols) >>= fun p ->
      oneofl (Array.to_list crash_points) >>= fun cp ->
      oneofl [ "C"; "M"; "S" ] >>= fun node ->
      bool >>= fun restart -> return (p, cp, node, restart))

(* --- cost-model agreement -------------------------------------------- *)

let prop_basic_matches_model_on_random_trees =
  Q.Test.make ~name:"random tree: basic counts are shape-independent"
    ~count:60 gen_seed_n (fun (seed, n) ->
      let tree = Workload.random_tree ~seed ~n () in
      let metrics, _w = Tpc.Run.commit_tree tree in
      Tpc.Metrics.counts metrics = C.basic ~n)

let prop_optimizations_match_model =
  Q.Test.make ~name:"flat tree: every optimization matches Table 3" ~count:40
    gen_n_m (fun (n, m) ->
      List.for_all
        (fun opt -> Workload.run_table3 opt ~n ~m = C.with_optimization opt ~n ~m)
        C.all_optimizations)

let prop_pn_matches_model =
  Q.Test.make ~name:"random tree: PN counts match the PN formula" ~count:40
    gen_seed_n (fun (seed, n) ->
      let tree = Workload.random_tree ~seed ~n () in
      (* cascaded coordinators: internal members other than the root *)
      let rec internal ~root (Tree (_, cs)) =
        (if (not root) && cs <> [] then 1 else 0)
        + List.fold_left (fun acc c -> acc + internal ~root:false c) 0 cs
      in
      let cascaded = internal ~root:true tree in
      let config = { default_config with protocol = Presumed_nothing } in
      let metrics, _w = Tpc.Run.commit_tree ~config tree in
      Tpc.Metrics.counts metrics = C.presumed_nothing ~cascaded ~n ())

(* --- atomicity -------------------------------------------------------- *)

let prop_commit_is_atomic =
  Q.Test.make ~name:"random tree: commit applies everywhere" ~count:60
    gen_seed_n (fun (seed, n) ->
      let tree = Workload.random_tree ~seed ~n () in
      let metrics, w = Tpc.Run.commit_tree tree in
      metrics.Tpc.Metrics.outcome = Some Committed
      && Tpc.Run.consistent w ~txn:"txn-1" ~outcome:Committed)

let prop_abort_is_atomic =
  Q.Test.make ~name:"random tree with one NO voter: abort applies everywhere"
    ~count:60 gen_seed_n (fun (seed, n) ->
      Q.assume (n >= 2);
      let tree = Workload.random_tree ~seed ~n () in
      (* turn one non-root member into a NO voter, deterministically *)
      let target = Printf.sprintf "m%d" (1 + (seed mod (n - 1))) in
      let rec rewrite (Tree (p, cs)) =
        let p = if p.p_name = target then { p with p_vote_no = true } else p in
        Tree (p, List.map rewrite cs)
      in
      let metrics, w = Tpc.Run.commit_tree (rewrite tree) in
      metrics.Tpc.Metrics.outcome = Some Aborted
      && Tpc.Run.consistent w ~txn:"txn-1" ~outcome:Aborted)

(* Single injected fault: live members never disagree with each other. *)
let prop_single_fault_atomic_among_live =
  Q.Test.make ~name:"single fault: live members agree on one outcome"
    ~count:120 gen_fault_case (fun (protocol, point, node, restart) ->
      let tree =
        Tree (member "C", [ Tree (member "M", [ Tree (member "S", []) ]) ])
      in
      let config =
        {
          default_config with
          protocol;
          faults =
            [
              {
                f_node = node;
                f_point = point;
                f_restart_after = (if restart then Some 15.0 else None);
              };
            ];
        }
      in
      let w = Tpc.Run.setup ~config tree in
      Tpc.Run.perform_work w ~txn:"txn-1";
      Tpc.Participant.begin_commit (Tpc.Run.participant w "C") ~txn:"txn-1";
      (* bound the run: blocked scenarios legitimately never quiesce *)
      Simkernel.Engine.run_until w.Tpc.Run.engine 5_000.0;
      (* gather the visible state of live members whose fate is decided
         (in-doubt members are excluded: they are allowed to hold either
         nothing-applied state) *)
      let states =
        List.filter_map
          (fun (name, n) ->
            if Tpc.Participant.is_crashed n.Tpc.Run.participant then None
            else if Kvstore.in_doubt n.Tpc.Run.kv <> [] then None
            else if not n.Tpc.Run.profile.p_updated then None
            else
              Some
                (Kvstore.committed_value n.Tpc.Run.kv ("acct-" ^ name) <> None))
          w.Tpc.Run.nodes
      in
      (* no in-doubt member may apply unilaterally; all decided live members
         must agree - unless the decided outcome is split by a blocked
         in-doubt member, which our protocols never allow for decided ones *)
      match states with
      | [] -> true
      | x :: rest ->
          (* a member that is still blocked at the TM level holds
             nothing-applied state, indistinguishable from abort; so
             disagreement means at least one true and one false where both
             members are genuinely decided; tolerate the blocked pattern
             commit-at-root/nothing-at-blocked-sub only when the sub never
             learned the outcome, i.e. there was no restart *)
          List.for_all (fun y -> y = x) rest
          ||
          (* the only legal disagreement: a blocked (never-restarted)
             member that could not learn a commit outcome *)
          not restart)

(* --- miscellaneous structural properties ------------------------------ *)

let prop_flows_even_without_unsolicited =
  Q.Test.make
    ~name:"baseline flows are always a multiple of four per edge" ~count:40
    gen_seed_n (fun (seed, n) ->
      let tree = Workload.random_tree ~seed ~n () in
      let metrics, _w = Tpc.Run.commit_tree tree in
      metrics.Tpc.Metrics.flows = 4 * (n - 1))

let prop_tree_generators_size =
  Q.Test.make ~name:"workload generators produce the requested size" ~count:60
    gen_seed_n (fun (seed, n) ->
      tree_size (Workload.random_tree ~seed ~n ())
      = n
      && tree_size (Workload.flat ~n ()) = n
      && tree_size (Workload.chain ~n ()) = n)

let prop_deterministic_replay =
  Q.Test.make ~name:"same seed, same run (bit-for-bit metrics)" ~count:30
    gen_seed_n (fun (seed, n) ->
      let tree = Workload.random_tree ~seed ~n () in
      let m1, _ = Tpc.Run.commit_tree tree in
      let m2, _ = Tpc.Run.commit_tree tree in
      m1 = m2)

let prop_group_commit_never_loses_requests =
  Q.Test.make ~name:"group commit serves every force request" ~count:40
    (Q.make
       ~print:(fun (n, m) -> Printf.sprintf "(n=%d, group=%d)" n m)
       Q.Gen.(
         int_range 1 40 >>= fun n ->
         int_range 1 16 >>= fun m -> return (n, m)))
    (fun (n, m) ->
      let r = Tpc.Stream.run_group_commit ~n ~group_size:m () in
      r.Tpc.Stream.gc_force_requests = 3 * n
      && r.Tpc.Stream.gc_force_ios >= 1
      && r.Tpc.Stream.gc_force_ios <= 3 * n)

(* Any subset of optimization switches, over a flat tree whose members mix
   every profile flag: the commit must succeed and remain atomic. *)
let prop_optimization_subsets_safe =
  let gen =
    Q.make
      ~print:(fun (bits, n) -> Printf.sprintf "(opts=%#x, n=%d)" bits n)
      Q.Gen.(
        int_range 0 511 >>= fun bits ->
        int_range 2 9 >>= fun n -> return (bits, n))
  in
  Q.Test.make ~name:"any optimization subset commits atomically" ~count:80 gen
    (fun (bits, n) ->
      let bit i = bits land (1 lsl i) <> 0 in
      let opts =
        {
          read_only = bit 0;
          last_agent = bit 1;
          unsolicited_vote = bit 2;
          leave_out = bit 3;
          shared_log = bit 4;
          long_locks = bit 5;
          ack = (if bit 6 then Early_ack else Late_ack);
          vote_reliable = bit 7;
          wait_for_outcome = bit 8;
        }
      in
      (* a profile mix cycling through the member flavours *)
      let decorate i p =
        match i mod 6 with
        | 0 -> { p with p_updated = false }
        | 1 -> { p with p_unsolicited = true }
        | 2 -> { p with p_reliable = true }
        | 3 -> { p with p_left_out = true; p_leave_out_ok = true }
        | 4 -> { p with p_shares_parent_log = true }
        | _ -> { p with p_long_locks = true }
      in
      let tree = Workload.flat ~decorate ~n () in
      let config = { default_config with opts } in
      let metrics, w = Tpc.Run.commit_tree ~config tree in
      metrics.Tpc.Metrics.outcome = Some Committed
      && Tpc.Run.consistent w ~txn:"txn-1" ~outcome:Committed)

let prop_optimization_subsets_abort_safe =
  let gen =
    Q.make
      ~print:(fun (bits, n) -> Printf.sprintf "(opts=%#x, n=%d)" bits n)
      Q.Gen.(
        int_range 0 511 >>= fun bits ->
        int_range 3 9 >>= fun n -> return (bits, n))
  in
  Q.Test.make ~name:"any optimization subset aborts atomically" ~count:60 gen
    (fun (bits, n) ->
      let bit i = bits land (1 lsl i) <> 0 in
      let opts =
        {
          read_only = bit 0;
          last_agent = bit 1;
          unsolicited_vote = bit 2;
          leave_out = bit 3;
          shared_log = bit 4;
          long_locks = bit 5;
          ack = (if bit 6 then Early_ack else Late_ack);
          vote_reliable = bit 7;
          wait_for_outcome = bit 8;
        }
      in
      (* one ordinary member votes NO; the rest cycle through flavours *)
      let decorate i p =
        if i = 0 then { p with p_vote_no = true }
        else
          match i mod 5 with
          | 0 -> { p with p_updated = false }
          | 1 -> { p with p_unsolicited = true }
          | 2 -> { p with p_reliable = true }
          | 3 -> { p with p_shares_parent_log = true }
          | _ -> { p with p_long_locks = true }
      in
      let tree = Workload.flat ~decorate ~n () in
      let config = { default_config with opts } in
      let metrics, w = Tpc.Run.commit_tree ~config tree in
      metrics.Tpc.Metrics.outcome = Some Aborted
      && Tpc.Run.consistent w ~txn:"txn-1" ~outcome:Aborted)

let prop_chain_flows_formulas =
  Q.Test.make ~name:"chain flow formulas hold for all r" ~count:30
    (Q.make ~print:string_of_int Q.Gen.(int_range 1 30))
    (fun r ->
      (Tpc.Stream.run_chain Tpc.Stream.Chain_basic ~r).Tpc.Stream.flows = 4 * r
      && (Tpc.Stream.run_chain Tpc.Stream.Chain_long_locks ~r).Tpc.Stream.flows
         = 3 * r
      && (Tpc.Stream.run_chain Tpc.Stream.Chain_long_locks_last_agent ~r)
           .Tpc.Stream.flows
         = (3 * (r / 2)) + (if r mod 2 = 1 then 2 else 0))

let suite =
  List.map qtest
    [
      prop_basic_matches_model_on_random_trees;
      prop_optimizations_match_model;
      prop_pn_matches_model;
      prop_commit_is_atomic;
      prop_abort_is_atomic;
      prop_single_fault_atomic_among_live;
      prop_flows_even_without_unsolicited;
      prop_tree_generators_size;
      prop_deterministic_replay;
      prop_group_commit_never_loses_requests;
      prop_optimization_subsets_safe;
      prop_optimization_subsets_abort_safe;
      prop_chain_flows_formulas;
    ]
