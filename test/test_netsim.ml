(* Tests of the virtual network: delivery, latency, partitions, crashes,
   flow statistics. *)

module E = Simkernel.Engine

module N = Netsim.Make (struct
  type t = string
end)

let mk ?default_latency () =
  let e = E.create () in
  (e, N.create e ?default_latency ())

let inbox () = ref []

let listen net name box =
  N.add_node net name (fun ~src payloads ->
      box := (src, payloads) :: !box)

let test_basic_delivery () =
  let e, net = mk () in
  let box = inbox () in
  N.add_node net "a" (fun ~src:_ _ -> ());
  listen net "b" box;
  Alcotest.(check bool) "send accepted" true (N.send net ~src:"a" ~dst:"b" [ "hello" ]);
  E.run e;
  Alcotest.(check (list (pair string (list string)))) "delivered"
    [ ("a", [ "hello" ]) ]
    !box

let test_default_latency () =
  let e, net = mk ~default_latency:2.5 () in
  let at = ref nan in
  N.add_node net "a" (fun ~src:_ _ -> ());
  N.add_node net "b" (fun ~src:_ _ -> at := E.now e);
  ignore (N.send net ~src:"a" ~dst:"b" [ "x" ]);
  E.run e;
  Alcotest.(check (float 1e-9)) "arrives after default latency" 2.5 !at

let test_latency_override_symmetric () =
  let e, net = mk () in
  let at = ref nan in
  N.add_node net "a" (fun ~src:_ _ -> at := E.now e);
  N.add_node net "b" (fun ~src:_ _ -> ());
  N.set_latency net "a" "b" 7.0;
  Alcotest.(check (float 1e-9)) "override visible both ways" 7.0
    (N.latency net "b" "a");
  ignore (N.send net ~src:"b" ~dst:"a" [ "x" ]);
  E.run e;
  Alcotest.(check (float 1e-9)) "arrives after override" 7.0 !at

let test_fifo_per_pair () =
  let e, net = mk () in
  let box = inbox () in
  N.add_node net "a" (fun ~src:_ _ -> ());
  listen net "b" box;
  ignore (N.send net ~src:"a" ~dst:"b" [ "1" ]);
  ignore (N.send net ~src:"a" ~dst:"b" [ "2" ]);
  ignore (N.send net ~src:"a" ~dst:"b" [ "3" ]);
  E.run e;
  Alcotest.(check (list string)) "FIFO delivery" [ "1"; "2"; "3" ]
    (List.rev_map (fun (_, p) -> List.hd p) !box)

let test_flow_counting () =
  let e, net = mk () in
  N.add_node net "a" (fun ~src:_ _ -> ());
  N.add_node net "b" (fun ~src:_ _ -> ());
  ignore (N.send net ~src:"a" ~dst:"b" [ "x"; "y"; "z" ]);
  ignore (N.send net ~src:"b" ~dst:"a" [ "w" ]);
  E.run e;
  Alcotest.(check int) "bundle counts one flow" 2 (N.flows net);
  Alcotest.(check int) "sent by a" 1 (N.sent_by net "a");
  Alcotest.(check int) "received by a" 1 (N.received_by net "a")

let test_partition_blocks_send () =
  let e, net = mk () in
  let box = inbox () in
  N.add_node net "a" (fun ~src:_ _ -> ());
  listen net "b" box;
  N.partition net "a" "b";
  Alcotest.(check bool) "send rejected" false (N.send net ~src:"a" ~dst:"b" [ "x" ]);
  E.run e;
  Alcotest.(check int) "nothing delivered" 0 (List.length !box);
  Alcotest.(check int) "partitioned send is not a flow" 0 (N.flows net)

let test_heal_restores () =
  let e, net = mk () in
  let box = inbox () in
  N.add_node net "a" (fun ~src:_ _ -> ());
  listen net "b" box;
  N.partition net "a" "b";
  N.heal net "a" "b";
  Alcotest.(check bool) "send accepted after heal" true
    (N.send net ~src:"a" ~dst:"b" [ "x" ]);
  E.run e;
  Alcotest.(check int) "delivered" 1 (List.length !box)

let test_partition_is_symmetric () =
  let _e, net = mk () in
  N.add_node net "a" (fun ~src:_ _ -> ());
  N.add_node net "b" (fun ~src:_ _ -> ());
  N.partition net "a" "b";
  Alcotest.(check bool) "b->a blocked too" false (N.send net ~src:"b" ~dst:"a" [ "x" ])

let test_crashed_destination_drops_in_flight () =
  let e, net = mk () in
  let box = inbox () in
  N.add_node net "a" (fun ~src:_ _ -> ());
  listen net "b" box;
  Alcotest.(check bool) "sent while up" true (N.send net ~src:"a" ~dst:"b" [ "x" ]);
  N.crash_node net "b";
  E.run e;
  Alcotest.(check int) "dropped at delivery" 0 (List.length !box);
  Alcotest.(check int) "still counted as a flow" 1 (N.flows net)

let test_crashed_source_cannot_send () =
  let _e, net = mk () in
  N.add_node net "a" (fun ~src:_ _ -> ());
  N.add_node net "b" (fun ~src:_ _ -> ());
  N.crash_node net "a";
  Alcotest.(check bool) "crashed source send fails" false
    (N.send net ~src:"a" ~dst:"b" [ "x" ])

let test_restart_receives_again () =
  let e, net = mk () in
  let box = inbox () in
  N.add_node net "a" (fun ~src:_ _ -> ());
  listen net "b" box;
  N.crash_node net "b";
  N.restart_node net "b";
  Alcotest.(check bool) "node is up" true (N.is_up net "b");
  ignore (N.send net ~src:"a" ~dst:"b" [ "x" ]);
  E.run e;
  Alcotest.(check int) "delivered after restart" 1 (List.length !box)

let test_set_handler_replaces () =
  let e, net = mk () in
  let first = ref 0 and second = ref 0 in
  N.add_node net "a" (fun ~src:_ _ -> ());
  N.add_node net "b" (fun ~src:_ _ -> incr first);
  N.set_handler net "b" (fun ~src:_ _ -> incr second);
  ignore (N.send net ~src:"a" ~dst:"b" [ "x" ]);
  E.run e;
  Alcotest.(check int) "old handler silent" 0 !first;
  Alcotest.(check int) "new handler fired" 1 !second

let test_duplicate_node_rejected () =
  let _e, net = mk () in
  N.add_node net "a" (fun ~src:_ _ -> ());
  Alcotest.check_raises "duplicate registration"
    (Invalid_argument "netsim: duplicate node \"a\"") (fun () ->
      N.add_node net "a" (fun ~src:_ _ -> ()))

let test_unknown_node_rejected () =
  let _e, net = mk () in
  N.add_node net "a" (fun ~src:_ _ -> ());
  Alcotest.check_raises "unknown destination"
    (Invalid_argument "netsim: unknown node \"ghost\"") (fun () ->
      ignore (N.send net ~src:"a" ~dst:"ghost" [ "x" ]))

let test_reset_stats () =
  let e, net = mk () in
  N.add_node net "a" (fun ~src:_ _ -> ());
  N.add_node net "b" (fun ~src:_ _ -> ());
  ignore (N.send net ~src:"a" ~dst:"b" [ "x" ]);
  E.run e;
  N.reset_stats net;
  Alcotest.(check int) "flows reset" 0 (N.flows net);
  Alcotest.(check int) "per-node reset" 0 (N.sent_by net "a")

let suite =
  [
    Alcotest.test_case "basic delivery" `Quick test_basic_delivery;
    Alcotest.test_case "default latency" `Quick test_default_latency;
    Alcotest.test_case "latency override symmetric" `Quick
      test_latency_override_symmetric;
    Alcotest.test_case "FIFO per pair" `Quick test_fifo_per_pair;
    Alcotest.test_case "flow counting" `Quick test_flow_counting;
    Alcotest.test_case "partition blocks send" `Quick test_partition_blocks_send;
    Alcotest.test_case "heal restores" `Quick test_heal_restores;
    Alcotest.test_case "partition symmetric" `Quick test_partition_is_symmetric;
    Alcotest.test_case "crashed destination drops in-flight" `Quick
      test_crashed_destination_drops_in_flight;
    Alcotest.test_case "crashed source cannot send" `Quick
      test_crashed_source_cannot_send;
    Alcotest.test_case "restart receives again" `Quick test_restart_receives_again;
    Alcotest.test_case "set_handler replaces" `Quick test_set_handler_replaces;
    Alcotest.test_case "duplicate node rejected" `Quick test_duplicate_node_rejected;
    Alcotest.test_case "unknown node rejected" `Quick test_unknown_node_rejected;
    Alcotest.test_case "reset stats" `Quick test_reset_stats;
  ]
