(* Heuristic decisions and damage reporting: Section 1's "practical
   necessity", PN's reliable reporting to the root, PA/R*'s
   immediate-coordinator-only reporting, and the vote-reliable window in
   which reports are lost (Table 1). *)

open Tpc.Types
open Test_util

let fault node point ?restart () =
  { f_node = node; f_point = point; f_restart_after = restart }

(* An in-doubt S loses patience while C is down, then C recovers and
   re-drives [outcome]. *)
let heuristic_scenario ?(protocol = Presumed_abort) ~policy ~coord_fault () =
  let tree = two ~s:(member ~heuristic:policy "S") () in
  let config =
    cfg ~protocol ~retry_interval:100.0 (* keep inquiries out of the window *)
      ~faults:[ coord_fault ] ()
  in
  run ~config tree

let test_heuristic_matching_outcome_no_damage () =
  (* C crashes after logging commit, restarts; S heuristically committed in
     the meantime: same outcome, no damage *)
  let m, w =
    heuristic_scenario
      ~policy:(Heuristic_commit_after 5.0)
      ~coord_fault:(fault "C" Cp_after_decision_log ~restart:60.0 ())
      ()
  in
  check_outcome "commit" (Some Committed) m;
  Alcotest.(check int) "one heuristic decision" 1 m.Tpc.Metrics.heuristics;
  Alcotest.(check int) "no damage" 0 (List.length m.Tpc.Metrics.damage_reports);
  check_consistent "states agree" w ~txn:"txn-1" ~outcome:Committed

let test_heuristic_commit_vs_abort_damage () =
  (* PN: C crashes after commit-pending; recovery aborts; S had
     heuristically committed: damage, reported to the root *)
  let m, w =
    (* the coordinator fails after collecting votes (commit-pending durable,
       outcome not yet logged): PN recovery aborts while S, prepared and
       impatient, heuristically commits *)
    heuristic_scenario ~protocol:Presumed_nothing
      ~policy:(Heuristic_commit_after 5.0)
      ~coord_fault:(fault "C" Cp_before_decision_log ~restart:60.0 ())
      ()
  in
  check_outcome "PN recovery aborts" (Some Aborted) m;
  Alcotest.(check int) "one heuristic decision" 1 m.Tpc.Metrics.heuristics;
  Alcotest.(check (list (pair string string)))
    "damage at S reported to the root coordinator"
    [ ("S", "C") ]
    m.Tpc.Metrics.damage_reports;
  (* the damaged member kept its heuristic commit: global state diverged *)
  Alcotest.(check (option string)) "S retains heuristically committed data"
    (Some "upd-by-txn-1")
    (Kvstore.committed_value (Tpc.Run.kv w "S") "acct-S");
  Alcotest.(check (option string)) "C rolled back" None
    (Kvstore.committed_value (Tpc.Run.kv w "C") "acct-C")

let test_heuristic_abort_vs_commit_damage () =
  let m, w =
    heuristic_scenario ~protocol:Presumed_nothing
      ~policy:(Heuristic_abort_after 5.0)
      ~coord_fault:(fault "C" Cp_after_decision_log ~restart:60.0 ())
      ()
  in
  check_outcome "commit" (Some Committed) m;
  Alcotest.(check (list (pair string string))) "heuristic abort vs commit damage"
    [ ("S", "C") ]
    m.Tpc.Metrics.damage_reports;
  Alcotest.(check (option string)) "S lost the update" None
    (Kvstore.committed_value (Tpc.Run.kv w "S") "acct-S")

let test_pn_damage_propagates_to_root_through_intermediate () =
  (* damage deep in the tree reaches the root under PN (late ack) *)
  let tree =
    three ~s:(member ~heuristic:(Heuristic_abort_after 5.0) "S") ()
  in
  let config =
    cfg ~protocol:Presumed_nothing ~retry_interval:100.0
      ~faults:[ fault "C" Cp_after_decision_log ~restart:60.0 () ]
      ()
  in
  let m, _w = run ~config tree in
  check_outcome "commit" (Some Committed) m;
  Alcotest.(check (list (pair string string))) "root hears about S's damage"
    [ ("S", "C") ]
    m.Tpc.Metrics.damage_reports

let test_pa_damage_stops_at_immediate_coordinator () =
  (* the same scenario under PA: the intermediate consumes the report (R*
     semantics); the root sees no damage *)
  let tree =
    three ~s:(member ~heuristic:(Heuristic_abort_after 5.0) "S") ()
  in
  let config =
    cfg ~protocol:Presumed_abort ~retry_interval:100.0
      ~faults:[ fault "C" Cp_after_decision_log ~restart:60.0 () ]
      ()
  in
  let m, _w = run ~config tree in
  check_outcome "commit" (Some Committed) m;
  Alcotest.(check (list (pair string string)))
    "damage reported to the intermediate only"
    [ ("S", "M") ]
    m.Tpc.Metrics.damage_reports

let test_vote_reliable_damage_lost () =
  (* Table 1's vote-reliable disadvantage: a reliable resource that does
     take a heuristic decision has no acknowledgment channel to report
     damage through - the report is lost *)
  let tree =
    two ~s:(member ~reliable:true ~heuristic:(Heuristic_abort_after 5.0) "S") ()
  in
  let config =
    cfg
      ~opts:{ no_opts with vote_reliable = true }
      ~retry_interval:100.0
      ~faults:[ fault "C" Cp_after_decision_log ~restart:60.0 () ]
      ()
  in
  let m, _w = run ~config tree in
  check_outcome "commit" (Some Committed) m;
  Alcotest.(check int) "heuristic decision happened" 1 m.Tpc.Metrics.heuristics;
  Alcotest.(check (list (pair string string)))
    "the damage report went nowhere"
    [ ("S", "") ]
    m.Tpc.Metrics.damage_reports

let test_no_heuristic_when_decision_timely () =
  (* a generous patience never fires in a healthy run *)
  let tree = two ~s:(member ~heuristic:(Heuristic_commit_after 1000.0) "S") () in
  let m, _w = run ~config:(cfg ()) tree in
  check_outcome "commit" (Some Committed) m;
  Alcotest.(check int) "no heuristic decision" 0 m.Tpc.Metrics.heuristics

let test_heuristic_releases_locks_early () =
  (* the whole point of a heuristic decision: stop holding locks *)
  let tree = two ~s:(member ~heuristic:(Heuristic_commit_after 5.0) "S") () in
  let config =
    cfg ~retry_interval:300.0
      ~faults:[ fault "C" Cp_after_decision_log ~restart:200.0 () ]
      ()
  in
  let m, w = run ~config tree in
  ignore m;
  let t_release = Option.get (Tpc.Trace.locks_released_time w.Tpc.Run.trace "S") in
  Alcotest.(check bool)
    (Printf.sprintf "locks released at %.1f, long before recovery at 200" t_release)
    true (t_release < 50.0)

let test_heuristic_is_logged_durably () =
  let tree = two ~s:(member ~heuristic:(Heuristic_commit_after 5.0) "S") () in
  let config =
    cfg ~retry_interval:100.0
      ~faults:[ fault "C" Cp_after_decision_log ~restart:60.0 () ]
      ()
  in
  let _m, w = run ~config tree in
  let s_log = (Tpc.Run.node w "S").Tpc.Run.wal in
  Alcotest.(check bool) "heuristic-commit record durable" true
    (List.exists
       (fun (r : Wal.Log_record.t) -> r.kind = Wal.Log_record.Heuristic_commit)
       (Wal.Log.durable s_log))

let test_heuristic_decision_acknowledged_normally_when_matching () =
  (* after a matching heuristic decision the ack still flows so the
     coordinator can forget the transaction *)
  let tree = two ~s:(member ~heuristic:(Heuristic_commit_after 5.0) "S") () in
  let config =
    cfg ~retry_interval:100.0
      ~faults:[ fault "C" Cp_after_decision_log ~restart:60.0 () ]
      ()
  in
  let m, w = run ~config tree in
  check_outcome "completes" (Some Committed) m;
  let acks =
    List.filter
      (function
        | Tpc.Trace.Send { src = "S"; label; _ } ->
            String.length label >= 3 && String.sub label 0 3 = "Ack"
        | _ -> false)
      (Tpc.Trace.events w.Tpc.Run.trace)
  in
  Alcotest.(check bool) "S acknowledged" true (List.length acks >= 1)

let suite =
  [
    Alcotest.test_case "matching heuristic: no damage" `Quick
      test_heuristic_matching_outcome_no_damage;
    Alcotest.test_case "heuristic commit vs abort: damage (PN)" `Quick
      test_heuristic_commit_vs_abort_damage;
    Alcotest.test_case "heuristic abort vs commit: damage" `Quick
      test_heuristic_abort_vs_commit_damage;
    Alcotest.test_case "PN damage reaches root" `Quick
      test_pn_damage_propagates_to_root_through_intermediate;
    Alcotest.test_case "PA damage stops at immediate coordinator" `Quick
      test_pa_damage_stops_at_immediate_coordinator;
    Alcotest.test_case "vote-reliable damage lost" `Quick test_vote_reliable_damage_lost;
    Alcotest.test_case "no heuristic in healthy run" `Quick
      test_no_heuristic_when_decision_timely;
    Alcotest.test_case "heuristic releases locks early" `Quick
      test_heuristic_releases_locks_early;
    Alcotest.test_case "heuristic decision logged durably" `Quick
      test_heuristic_is_logged_durably;
    Alcotest.test_case "matching heuristic still acknowledged" `Quick
      test_heuristic_decision_acknowledged_normally_when_matching;
  ]
