(* The multicore driver: sweep and chaos fan-outs must be byte-identical
   whatever the job count — lines, event JSONL, repro hints, and the
   merged telemetry registry alike. *)

open Tpc.Types
module F = Faultlab

let sweep_params ~events =
  {
    Driver.sw_config = default_config;
    sw_sets = [ []; [ `Read_only ]; [ `Last_agent; `Early_ack ] ];
    sw_concurrencies = [ 1; 4 ];
    sw_n = 4;
    sw_mixer = { Tpc.Mixer.default_cfg with Tpc.Mixer.txns = 80 };
    sw_events = events;
    sw_blocking = false;
  }

let chaos_params ?(broken = false) ?plan ~seeds () =
  let config =
    {
      default_config with
      retry_interval = 25.0;
      max_retries = 8;
      prepare_retries = 2;
      retry_backoff = 2.0;
    }
  in
  let tree =
    Tree
      ( member "coord",
        [
          Tree (member "sub0", []);
          Tree (member "sub1", []);
          Tree (member "sub2", []);
        ] )
  in
  {
    Driver.ch_config = config;
    ch_tree = tree;
    ch_mixer = { Tpc.Mixer.default_cfg with Tpc.Mixer.txns = 60; concurrency = 6 };
    ch_seed0 = 11;
    ch_seeds = seeds;
    ch_gen = F.default_gen;
    ch_plan = plan;
    ch_broken = broken;
    ch_shrink = true;
    ch_protocol_flag = "pa";
    ch_n = 4;
    ch_adversary = false;
    ch_blocking = false;
  }

(* a mid-workload crash+restart that the amnesiac restart turns into a
   reliable, shrinkable violation (same fixture as the chaos tests) *)
let violating_plan =
  [
    F.Drop { at = 20.0; src = "coord"; dst = "sub2"; nth = 3 };
    F.Jitter { at = 40.0; src = "sub1"; dst = "coord"; amp = 2.0 };
    F.Crash { at = 150.0; node = "sub0"; restart_after = Some 60.0 };
    F.Drop { at = 200.0; src = "sub2"; dst = "sub1"; nth = 1 };
    F.Partition { at = 260.0; a = "sub1"; b = "sub2"; heal_after = Some 30.0 };
  ]

let registry_fingerprint reg =
  let counters =
    List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) (Obs.Registry.counters reg)
  in
  let gauges =
    List.map (fun (k, v) -> Printf.sprintf "%s=%.9g" k v) (Obs.Registry.gauges reg)
  in
  let hists =
    List.map
      (fun (k, h) ->
        Printf.sprintf "%s:n=%d,sum=%.9g,max=%.9g" k (Obs.Histogram.count h)
          (Obs.Histogram.sum h) (Obs.Histogram.max_value h))
      (Obs.Registry.histograms reg)
  in
  String.concat "\n" (counters @ gauges @ hists)

let check_lines = Alcotest.(check (list string))

let test_sweep_byte_identical () =
  let run jobs =
    Driver.sweep_cells ~jobs (sweep_params ~events:true)
  in
  let cells1, reg1 = run 1 in
  let cells4, reg4 = run 4 in
  check_lines "cell lines identical"
    (List.map (fun c -> c.Driver.sc_line) cells1)
    (List.map (fun c -> c.Driver.sc_line) cells4);
  check_lines "event JSONL identical"
    (List.map (fun c -> c.Driver.sc_events) cells1)
    (List.map (fun c -> c.Driver.sc_events) cells4);
  Alcotest.(check string) "merged registry identical"
    (registry_fingerprint reg1) (registry_fingerprint reg4);
  Alcotest.(check int) "grid size" 6 (List.length cells1)

let test_sweep_counter_mode_same_lines () =
  (* dropping the event timeline must not change any reported metric *)
  let lines events =
    let cells, _ = Driver.sweep_cells ~jobs:1 (sweep_params ~events) in
    List.map (fun c -> c.Driver.sc_line) cells
  in
  check_lines "counter-only trace mode reports the same metrics"
    (lines true) (lines false)

let test_chaos_byte_identical () =
  let run jobs = Driver.chaos_cells ~jobs (chaos_params ~seeds:10 ()) in
  let cells1, reg1 = run 1 in
  let cells4, reg4 = run 4 in
  check_lines "verdict lines identical"
    (List.map (fun c -> c.Driver.cc_line) cells1)
    (List.map (fun c -> c.Driver.cc_line) cells4);
  Alcotest.(check (list int)) "seed order is canonical"
    (List.init 10 (fun i -> 11 + i))
    (List.map (fun c -> c.Driver.cc_seed) cells1);
  Alcotest.(check string) "merged registry identical"
    (registry_fingerprint reg1) (registry_fingerprint reg4)

let test_chaos_violation_identical () =
  (* a violating seed must produce the same verdict, minimized plan and
     repro hint whatever the job count *)
  let params =
    chaos_params ~broken:true ~plan:violating_plan ~seeds:4 ()
  in
  let run jobs = fst (Driver.chaos_cells ~jobs params) in
  let cells1 = run 1 and cells4 = run 4 in
  Alcotest.(check bool) "fixture violates" true
    (List.exists (fun c -> c.Driver.cc_violated) cells1);
  List.iter2
    (fun c1 c4 ->
      Alcotest.(check string) "line" c1.Driver.cc_line c4.Driver.cc_line;
      Alcotest.(check (option string)) "repro hint"
        c1.Driver.cc_repro c4.Driver.cc_repro;
      if c1.Driver.cc_violated then
        Alcotest.(check bool) "violating cell carries a repro hint" true
          (c1.Driver.cc_repro <> None))
    cells1 cells4

let test_blocking_block_identical_across_jobs () =
  (* the per-cell blocking summaries come from per-world registries merged
     at fan-in, so the emitted block must not depend on the job count, and
     switching it on must only append — never perturb — the line *)
  let chaos jobs =
    let cells, _ =
      Driver.chaos_cells ~jobs
        { (chaos_params ~seeds:6 ()) with Driver.ch_blocking = true }
    in
    List.map (fun c -> c.Driver.cc_line) cells
  in
  let lines1 = chaos 1 in
  check_lines "chaos blocking lines identical" lines1 (chaos 2);
  List.iter
    (fun line ->
      Alcotest.(check bool) "verdict line carries the blocking block" true
        (match Tpc.Json.member "blocking" (Tpc.Json.parse line) with
        | Some _ -> true
        | None -> false))
    lines1;
  let sweep jobs =
    let cells, _ =
      Driver.sweep_cells ~jobs
        { (sweep_params ~events:false) with Driver.sw_blocking = true }
    in
    List.map (fun c -> c.Driver.sc_line) cells
  in
  check_lines "sweep blocking lines identical" (sweep 1) (sweep 2)

let suite =
  [
    Alcotest.test_case "sweep jobs=4 byte-identical to jobs=1" `Quick
      test_sweep_byte_identical;
    Alcotest.test_case "blocking block identical across jobs" `Quick
      test_blocking_block_identical_across_jobs;
    Alcotest.test_case "counter-only trace mode same metrics" `Quick
      test_sweep_counter_mode_same_lines;
    Alcotest.test_case "chaos jobs=4 byte-identical to jobs=1" `Quick
      test_chaos_byte_identical;
    Alcotest.test_case "chaos violation identical across jobs" `Quick
      test_chaos_violation_identical;
  ]
