(* Tests of the chained-transaction streams (Table 4, Figure 7) and of the
   group-commit log-manager analysis. *)

module S = Tpc.Stream
module C = Tpc.Cost_model

let run mode r = S.run_chain mode ~r

let test_basic_chain_counts () =
  List.iter
    (fun r ->
      let res = run S.Chain_basic r in
      Alcotest.(check int) (Printf.sprintf "4r flows (r=%d)" r) (4 * r) res.S.flows;
      Alcotest.(check int) "5r writes" (5 * r) res.S.writes;
      Alcotest.(check int) "3r forced" (3 * r) res.S.forced;
      Alcotest.(check int) "no data flows" 0 res.S.data_flows)
    [ 1; 2; 5; 12 ]

let test_long_locks_chain_counts () =
  List.iter
    (fun r ->
      let res = run S.Chain_long_locks r in
      Alcotest.(check int) (Printf.sprintf "3r flows (r=%d)" r) (3 * r) res.S.flows;
      Alcotest.(check int) "5r writes" (5 * r) res.S.writes;
      Alcotest.(check int) "3r forced" (3 * r) res.S.forced;
      Alcotest.(check int) "one data flow per txn carries the ack" r
        res.S.data_flows)
    [ 1; 2; 5; 12 ]

let test_ll_last_agent_chain_counts_even () =
  List.iter
    (fun r ->
      let res = run S.Chain_long_locks_last_agent r in
      Alcotest.(check int)
        (Printf.sprintf "3r/2 flows (r=%d)" r)
        (3 * r / 2) res.S.flows;
      Alcotest.(check int) "5r writes" (5 * r) res.S.writes;
      Alcotest.(check int) "3r forced" (3 * r) res.S.forced)
    [ 2; 4; 12; 20 ]

let test_ll_last_agent_chain_odd_tail () =
  (* an odd stream ends with a lone delegated transaction: 2 flows for it *)
  let res = run S.Chain_long_locks_last_agent 5 in
  Alcotest.(check int) "2 pairs * 3 + tail * 2" 8 res.S.flows;
  Alcotest.(check int) "writes unchanged" 25 res.S.writes

let test_table4_paper_row () =
  (* the exact r=12 example printed in Table 4 *)
  let expected = C.table4 ~r:12 in
  let basic = run S.Chain_basic 12 in
  let ll = run S.Chain_long_locks 12 in
  let lla = run S.Chain_long_locks_last_agent 12 in
  let check label (res : S.result) =
    let model = List.assoc label expected in
    Alcotest.(check (triple int int int)) label
      (model.C.flows, model.C.writes, model.C.forced)
      (res.S.flows, res.S.writes, res.S.forced)
  in
  check "Basic 2PC" basic;
  check "PA & Long Locks (not last agent)" ll;
  check "PA & Long Locks (last agent)" lla

let test_long_locks_holds_coordinator_locks_longer () =
  (* Table 1 / Figure 7: the flow saving costs coordinator lock time *)
  let basic = run S.Chain_basic 10 in
  let ll = run S.Chain_long_locks 10 in
  Alcotest.(check bool)
    (Printf.sprintf "long locks hold time %.2f > basic %.2f"
       ll.S.mean_coordinator_lock_time basic.S.mean_coordinator_lock_time)
    true
    (ll.S.mean_coordinator_lock_time > basic.S.mean_coordinator_lock_time)

let test_chains_commit_every_transaction () =
  (* every transaction of every mode leaves commit records at both members *)
  List.iter
    (fun mode ->
      let res = run mode 6 in
      let committed_txns =
        List.filter_map
          (function
            | Tpc.Trace.Log_write
                { node; kind = Wal.Log_record.Committed; _ } ->
                Some node
            | _ -> None)
          (Tpc.Trace.events res.S.trace)
      in
      Alcotest.(check int)
        (S.mode_to_string mode ^ ": 2 commit records per txn")
        12
        (List.length committed_txns))
    [ S.Chain_basic; S.Chain_long_locks; S.Chain_long_locks_last_agent ]

(* --- group commit ----------------------------------------------------- *)

let test_group_commit_reduces_ios () =
  let solo = S.run_group_commit ~n:24 ~group_size:1 () in
  let grouped = S.run_group_commit ~n:24 ~group_size:4 () in
  Alcotest.(check int) "same force requests" solo.S.gc_force_requests
    grouped.S.gc_force_requests;
  Alcotest.(check bool)
    (Printf.sprintf "fewer I/Os (%d < %d)" grouped.S.gc_force_ios
       solo.S.gc_force_ios)
    true
    (grouped.S.gc_force_ios < solo.S.gc_force_ios)

let test_group_commit_request_count_is_3n () =
  (* three forced writes per two-member transaction *)
  let r = S.run_group_commit ~n:10 ~group_size:2 () in
  Alcotest.(check int) "3n force requests" 30 r.S.gc_force_requests

let test_group_commit_saving_grows_with_group_size () =
  let ios m = (S.run_group_commit ~n:32 ~group_size:m ()).S.gc_force_ios in
  let i1 = ios 1 and i4 = ios 4 and i8 = ios 8 in
  Alcotest.(check bool)
    (Printf.sprintf "monotone: %d >= %d >= %d" i1 i4 i8)
    true
    (i1 >= i4 && i4 >= i8)

let test_group_commit_latency_cost () =
  (* Table 1's disadvantage: longer lock holding / commit latency *)
  let solo = S.run_group_commit ~n:16 ~group_size:1 () in
  let grouped = S.run_group_commit ~n:16 ~group_size:8 ~timeout:10.0 () in
  Alcotest.(check bool)
    (Printf.sprintf "grouped commits wait (%.2f >= %.2f)"
       grouped.S.gc_mean_commit_latency solo.S.gc_mean_commit_latency)
    true
    (grouped.S.gc_mean_commit_latency >= solo.S.gc_mean_commit_latency)

let test_group_commit_timeout_bounds_delay () =
  (* a batch that never fills still flushes within the timeout *)
  let r = S.run_group_commit ~n:3 ~group_size:64 ~timeout:2.0 () in
  Alcotest.(check int) "all transactions complete" 3 r.S.gc_transactions;
  Alcotest.(check bool) "every force request served" true
    (r.S.gc_force_requests = 9 && r.S.gc_force_ios >= 1)

let test_group_commit_paper_formula_reported () =
  let r = S.run_group_commit ~n:24 ~group_size:4 () in
  Alcotest.(check (float 1e-9)) "paper saving column is 3n/2m" 9.0
    r.S.gc_paper_saving

let suite =
  [
    Alcotest.test_case "basic chain counts" `Quick test_basic_chain_counts;
    Alcotest.test_case "long-locks chain counts" `Quick test_long_locks_chain_counts;
    Alcotest.test_case "long-locks+last-agent counts (even r)" `Quick
      test_ll_last_agent_chain_counts_even;
    Alcotest.test_case "long-locks+last-agent odd tail" `Quick
      test_ll_last_agent_chain_odd_tail;
    Alcotest.test_case "Table 4 paper row (r=12)" `Quick test_table4_paper_row;
    Alcotest.test_case "long locks hold coordinator locks longer" `Quick
      test_long_locks_holds_coordinator_locks_longer;
    Alcotest.test_case "chains commit every transaction" `Quick
      test_chains_commit_every_transaction;
    Alcotest.test_case "group commit reduces I/Os" `Quick test_group_commit_reduces_ios;
    Alcotest.test_case "group commit 3n requests" `Quick
      test_group_commit_request_count_is_3n;
    Alcotest.test_case "group commit saving monotone" `Quick
      test_group_commit_saving_grows_with_group_size;
    Alcotest.test_case "group commit latency cost" `Quick test_group_commit_latency_cost;
    Alcotest.test_case "group commit timeout bound" `Quick
      test_group_commit_timeout_bounds_delay;
    Alcotest.test_case "group commit paper formula" `Quick
      test_group_commit_paper_formula_reported;
  ]
