(* Unit tests of the vocabulary modules: tree helpers, profiles, message
   labels, metrics pretty-printing. *)

open Tpc.Types

let test_tree_size () =
  Alcotest.(check int) "singleton" 1 (tree_size (Tree (member "a", [])));
  Alcotest.(check int) "flat 5" 5 (tree_size (Workload.flat ~n:5 ()));
  Alcotest.(check int) "chain 7" 7 (tree_size (Workload.chain ~n:7 ()))

let test_tree_members () =
  let t = Tree (member "a", [ Tree (member "b", []); Tree (member "c", []) ]) in
  Alcotest.(check (list string)) "preorder names" [ "a"; "b"; "c" ]
    (List.map (fun p -> p.p_name) (tree_members t))

let test_member_defaults () =
  let p = member "x" in
  Alcotest.(check bool) "updated by default" true p.p_updated;
  Alcotest.(check bool) "not reliable" false p.p_reliable;
  Alcotest.(check bool) "not left out" false p.p_left_out;
  Alcotest.(check bool) "not unsolicited" false p.p_unsolicited;
  Alcotest.(check bool) "votes normally" false p.p_vote_no;
  Alcotest.(check bool) "own log" false p.p_shares_parent_log;
  Alcotest.(check bool) "no heuristics" true (p.p_heuristic = Heuristic_never)

let test_to_string_helpers () =
  Alcotest.(check string) "protocol" "presumed-abort"
    (protocol_to_string Presumed_abort);
  Alcotest.(check string) "outcome" "abort" (outcome_to_string Aborted);
  Alcotest.(check string) "plain yes" "yes"
    (vote_to_string (Vote_yes { reliable = false; leave_out_ok = false }));
  Alcotest.(check string) "decorated yes" "yes+reliable+leave-out-ok"
    (vote_to_string (Vote_yes { reliable = true; leave_out_ok = true }));
  Alcotest.(check string) "read-only" "read-only" (vote_to_string Vote_read_only)

let test_payload_txn () =
  let payloads =
    [
      Tpc.Msg.Prepare { txn = "t"; long_locks = false };
      Tpc.Msg.Decision_msg { txn = "t"; outcome = Committed; cert = None };
      Tpc.Msg.Ack_msg { txn = "t"; damage = []; pending = false };
      Tpc.Msg.Data { txn = "t"; info = "" };
      Tpc.Msg.Inquiry { txn = "t" };
      Tpc.Msg.Inquiry_reply { txn = "t"; outcome = None; cert = None };
    ]
  in
  List.iter
    (fun p -> Alcotest.(check string) "txn extracted" "t" (Tpc.Msg.payload_txn p))
    payloads

let test_payload_labels () =
  let lbl p = Tpc.Msg.payload_label p in
  Alcotest.(check string) "prepare" "Prepare"
    (lbl (Tpc.Msg.Prepare { txn = "t"; long_locks = false }));
  Alcotest.(check string) "prepare long-locks" "Prepare(long-locks)"
    (lbl (Tpc.Msg.Prepare { txn = "t"; long_locks = true }));
  Alcotest.(check string) "commit" "Commit"
    (lbl (Tpc.Msg.Decision_msg { txn = "t"; outcome = Committed; cert = None }));
  Alcotest.(check string) "abort" "Abort"
    (lbl (Tpc.Msg.Decision_msg { txn = "t"; outcome = Aborted; cert = None }));
  Alcotest.(check string) "pending ack" "Ack(pending)"
    (lbl (Tpc.Msg.Ack_msg { txn = "t"; damage = []; pending = true }));
  Alcotest.(check string) "no info" "NoInformation"
    (lbl (Tpc.Msg.Inquiry_reply { txn = "t"; outcome = None; cert = None }));
  let vote =
    Tpc.Msg.Vote_msg
      {
        txn = "t";
        vote = Vote_yes { reliable = true; leave_out_ok = false };
        delegation = true;
        unsolicited = false;
        implied_ack = true;
        tag = "";
      }
  in
  Alcotest.(check string) "decorated vote"
    "Vote yes+reliable (you decide) (ack implied)" (lbl vote)

let test_bundle_label () =
  let bundle =
    [
      Tpc.Msg.Data { txn = "t"; info = "x" };
      Tpc.Msg.Ack_msg { txn = "t"; damage = []; pending = false };
    ]
  in
  Alcotest.(check string) "piggyback join" "Data:x + Ack"
    (Tpc.Msg.bundle_label bundle)

let test_damage_ack_label () =
  let d =
    { Tpc.Msg.d_node = "s"; d_action = Committed; d_outcome = Aborted }
  in
  Alcotest.(check string) "damage count shown" "Ack(1 damaged)"
    (Tpc.Msg.payload_label
       (Tpc.Msg.Ack_msg { txn = "t"; damage = [ d ]; pending = false }))

let test_metrics_pp_smoke () =
  let m, _w = Tpc.Run.commit_tree (Tree (member "a", [ Tree (member "b", []) ])) in
  let s = Format.asprintf "%a" Tpc.Metrics.pp m in
  Alcotest.(check bool) "mentions outcome" true
    (String.length s > 0
    &&
    let rec contains i =
      i + 6 <= String.length s && (String.sub s i 6 = "commit" || contains (i + 1))
    in
    contains 0)

let suite =
  [
    Alcotest.test_case "tree size" `Quick test_tree_size;
    Alcotest.test_case "tree members preorder" `Quick test_tree_members;
    Alcotest.test_case "member defaults" `Quick test_member_defaults;
    Alcotest.test_case "to_string helpers" `Quick test_to_string_helpers;
    Alcotest.test_case "payload txn extraction" `Quick test_payload_txn;
    Alcotest.test_case "payload labels" `Quick test_payload_labels;
    Alcotest.test_case "bundle label" `Quick test_bundle_label;
    Alcotest.test_case "damage ack label" `Quick test_damage_ack_label;
    Alcotest.test_case "metrics pretty-print" `Quick test_metrics_pp_smoke;
  ]
