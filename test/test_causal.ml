(* The causal recorder: chain/edge construction, send-deliver matching,
   binding-cause critical paths, and the telescoping guarantee that the
   per-class attribution sums exactly to end-to-end latency — both on
   hand-built graphs and on a real fixed-seed mixer run. *)

module C = Obs.Causal

let ids nodes = List.map (fun n -> n.C.cn_id) nodes
let labels hops = List.map (fun h -> h.C.h_node.C.cn_label) hops

(* -- off mode ------------------------------------------------------- *)

let test_off_records_nothing () =
  let c = C.create () in
  Alcotest.(check bool) "disabled" false (C.enabled c);
  C.record c ~txn:"t1" ~who:"a" ~time:0.0 ~seg:C.Compute "e1";
  C.send c ~txn:"t1" ~src:"a" ~dst:"b" ~time:1.0 ~label:"m";
  C.deliver c ~txn:"t1" ~src:"a" ~dst:"b" ~time:2.0 ~label:"m";
  Alcotest.(check int) "no nodes" 0 (C.node_count c);
  Alcotest.(check bool) "no path" true (C.critical_path c ~txn:"t1" = None)

(* -- chains and edges ----------------------------------------------- *)

let test_chain_edges () =
  let c = C.create ~mode:C.Graph () in
  C.record c ~txn:"t1" ~who:"a" ~time:0.0 ~seg:C.Compute "first";
  C.record c ~txn:"t1" ~who:"a" ~time:1.0 ~seg:C.Compute "second";
  C.record c ~txn:"t1" ~who:"b" ~time:2.0 ~seg:C.Compute "other chain";
  match C.txn_nodes c ~txn:"t1" with
  | [ n0; n1; n2 ] ->
      Alcotest.(check (list int)) "chain head has no cause" [] n0.C.cn_causes;
      Alcotest.(check (list int))
        "second caused by first" [ n0.C.cn_id ] n1.C.cn_causes;
      Alcotest.(check (list int))
        "chains are per (txn, who)" [] n2.C.cn_causes
  | nodes -> Alcotest.failf "expected 3 nodes, got %d" (List.length nodes)

let test_link_from () =
  let c = C.create ~mode:C.Graph () in
  C.record c ~txn:"t1" ~who:"root" ~time:0.0 ~seg:C.Compute "trigger";
  C.record c ~txn:"t1" ~who:"sub" ~time:1.0 ~link_from:"root" ~seg:C.Compute
    "unsolicited";
  match C.txn_nodes c ~txn:"t1" with
  | [ root; sub ] ->
      Alcotest.(check (list int))
        "cross-chain edge from root" [ root.C.cn_id ] sub.C.cn_causes
  | _ -> Alcotest.fail "expected 2 nodes"

let test_txn_isolation () =
  let c = C.create ~mode:C.Graph () in
  C.record c ~txn:"t1" ~who:"a" ~time:0.0 ~seg:C.Compute "t1 event";
  C.record c ~txn:"t2" ~who:"a" ~time:1.0 ~seg:C.Compute "t2 event";
  (match C.txn_nodes c ~txn:"t2" with
  | [ n ] -> Alcotest.(check (list int)) "no cross-txn cause" [] n.C.cn_causes
  | _ -> Alcotest.fail "expected 1 node");
  Alcotest.(check int) "t1 unpolluted" 1
    (List.length (C.txn_nodes c ~txn:"t1"))

(* -- send/deliver matching ------------------------------------------ *)

let test_send_deliver_match () =
  let c = C.create ~mode:C.Graph () in
  C.send c ~txn:"t1" ~src:"a" ~dst:"b" ~time:0.0 ~label:"Prepare";
  C.deliver c ~txn:"t1" ~src:"a" ~dst:"b" ~time:2.0 ~label:"Prepare";
  match C.txn_nodes c ~txn:"t1" with
  | [ s; d ] ->
      Alcotest.(check (list int))
        "delivery caused by its send" [ s.C.cn_id ] d.C.cn_causes
  | _ -> Alcotest.fail "expected 2 nodes"

let test_retransmit_matches_newest_send () =
  let c = C.create ~mode:C.Graph () in
  C.send c ~txn:"t1" ~src:"a" ~dst:"b" ~time:0.0 ~label:"Commit";
  C.send c ~txn:"t1" ~src:"a" ~dst:"b" ~time:5.0 ~label:"Commit";
  C.deliver c ~txn:"t1" ~src:"a" ~dst:"b" ~time:7.0 ~label:"Commit";
  let nodes = C.txn_nodes c ~txn:"t1" in
  match nodes with
  | [ _s0; s1; d ] ->
      (* the retransmitted copy, not the original, is the message edge;
         the chain edge from s1 to itself-prev also lands in causes *)
      Alcotest.(check bool)
        "newest send is a cause" true
        (List.mem s1.C.cn_id d.C.cn_causes)
  | _ -> Alcotest.failf "expected 3 nodes, got %d" (List.length nodes)

let test_deliver_never_matches_future_send () =
  let c = C.create ~mode:C.Graph () in
  C.send c ~txn:"t1" ~src:"a" ~dst:"b" ~time:9.0 ~label:"Commit";
  C.deliver c ~txn:"t1" ~src:"a" ~dst:"b" ~time:3.0 ~label:"Commit";
  match C.txn_nodes c ~txn:"t1" with
  | [ _; _ ] ->
      let d =
        List.find (fun n -> n.C.cn_time = 3.0) (C.txn_nodes c ~txn:"t1")
      in
      Alcotest.(check (list int)) "no acausal edge" [] d.C.cn_causes
  | _ -> Alcotest.fail "expected 2 nodes"

let test_forged_delivery_has_no_message_edge () =
  let c = C.create ~mode:C.Graph () in
  C.deliver c ~txn:"t1" ~src:"a" ~dst:"b" ~time:1.0 ~label:"Commit";
  match C.txn_nodes c ~txn:"t1" with
  | [ d ] -> Alcotest.(check (list int)) "no causes" [] d.C.cn_causes
  | _ -> Alcotest.fail "expected 1 node"

(* -- critical path -------------------------------------------------- *)

(* A two-member commit shape: root computes, sends, sub logs and votes,
   root completes.  The binding chain must route through the message
   path even though a faster local step exists on the root's chain. *)
let build_diamond () =
  let c = C.create ~mode:C.Graph () in
  C.record c ~txn:"t1" ~who:"root" ~time:0.0 ~seg:C.Compute "arrival";
  C.send c ~txn:"t1" ~src:"root" ~dst:"sub" ~time:1.0 ~label:"Prepare";
  C.deliver c ~txn:"t1" ~src:"root" ~dst:"sub" ~time:2.0 ~label:"Prepare";
  C.record c ~txn:"t1" ~who:"sub" ~time:4.0 ~seg:C.Log_wait "prepared durable";
  C.send c ~txn:"t1" ~src:"sub" ~dst:"root" ~time:4.0 ~label:"Vote";
  C.record c ~txn:"t1" ~who:"root" ~time:1.5 ~seg:C.Compute "local step";
  C.deliver c ~txn:"t1" ~src:"sub" ~dst:"root" ~time:5.0 ~label:"Vote";
  C.record c ~terminal:true ~txn:"t1" ~who:"root" ~time:5.5 ~seg:C.Compute
    "completed";
  c

let test_critical_path_follows_binding_cause () =
  let c = build_diamond () in
  match C.critical_path c ~txn:"t1" with
  | None -> Alcotest.fail "expected a path"
  | Some hops ->
      Alcotest.(check (list string))
        "binding chain routes through the subordinate"
        [
          "arrival";
          "send Prepare -> sub";
          "deliver Prepare from root";
          "prepared durable";
          "send Vote -> root";
          "deliver Vote from sub";
          "completed";
        ]
        (labels hops);
      (match hops with
      | head :: _ -> Alcotest.(check (float 0.0)) "head dt" 0.0 head.C.h_dt
      | [] -> Alcotest.fail "empty path");
      let segs = C.path_segments hops in
      Alcotest.(check (float 1e-9))
        "telescoping: buckets sum to end-to-end" 5.5 (C.segments_total segs);
      Alcotest.(check (float 1e-9)) "log-wait bucket" 2.0 segs.C.sg_log;
      Alcotest.(check (float 1e-9)) "msg-wait bucket" 2.0 segs.C.sg_msg;
      Alcotest.(check (float 1e-9)) "compute bucket" 1.5 segs.C.sg_compute

let test_terminal_preferred_over_latest () =
  let c = C.create ~mode:C.Graph () in
  C.record c ~txn:"t1" ~who:"a" ~time:0.0 ~seg:C.Compute "arrival";
  C.record c ~terminal:true ~txn:"t1" ~who:"a" ~time:2.0 ~seg:C.Compute
    "terminal";
  C.record c ~txn:"t1" ~who:"a" ~time:9.0 ~seg:C.In_doubt "late cleanup";
  match C.critical_path c ~txn:"t1" with
  | Some hops ->
      Alcotest.(check string)
        "path ends at the marked terminal" "terminal"
        (List.nth hops (List.length hops - 1)).C.h_node.C.cn_label
  | None -> Alcotest.fail "expected a path"

let test_empty_txn_has_no_path () =
  let c = C.create ~mode:C.Graph () in
  Alcotest.(check bool) "no path" true (C.critical_path c ~txn:"ghost" = None);
  Alcotest.(check (list int)) "no nodes" [] (ids (C.txn_nodes c ~txn:"ghost"))

(* -- integration: attribution accounts for all latency -------------- *)

(* The PR's acceptance criterion: on a real run, every committed
   transaction's critical-path buckets sum exactly to its end-to-end
   latency (completion - arrival). *)
let test_mixer_attribution_sums_to_latency () =
  let cfg =
    { Tpc.Mixer.default_cfg with Tpc.Mixer.txns = 30; concurrency = 6; seed = 11 }
  in
  let tree = Workload.mixer_tree ~n:4 ~opts:[] () in
  let _agg, w, summaries =
    Tpc.Mixer.run_full ~causal:C.Graph cfg tree
  in
  let checked = ref 0 in
  List.iter
    (fun s ->
      match s.Tpc.Mixer.ts_completed with
      | None -> ()
      | Some done_at ->
          let expect = done_at -. s.Tpc.Mixer.ts_arrival in
          (match C.critical_path w.Tpc.Run.causal ~txn:s.Tpc.Mixer.ts_txn with
          | None ->
              Alcotest.failf "txn %s completed but has no causal path"
                s.Tpc.Mixer.ts_txn
          | Some hops ->
              let total = C.segments_total (C.path_segments hops) in
              if Float.abs (total -. expect) > 1e-6 then
                Alcotest.failf
                  "txn %s: attribution %.9f <> end-to-end %.9f"
                  s.Tpc.Mixer.ts_txn total expect;
              incr checked))
    summaries;
  Alcotest.(check bool)
    (Printf.sprintf "checked %d completed transactions" !checked)
    true
    (!checked >= 25)

let test_mixer_graph_deterministic () =
  let cfg =
    { Tpc.Mixer.default_cfg with Tpc.Mixer.txns = 20; concurrency = 4; seed = 5 }
  in
  let tree = Workload.mixer_tree ~n:4 ~opts:[] () in
  let narrative () =
    let _, w, _ = Tpc.Mixer.run_full ~causal:C.Graph cfg tree in
    List.concat_map
      (fun i ->
        let txn = Printf.sprintf "mx-%d" i in
        List.map
          (fun n ->
            Printf.sprintf "%d %s %s %.6f %s" n.C.cn_id n.C.cn_txn n.C.cn_who
              n.C.cn_time n.C.cn_label)
          (C.txn_nodes w.Tpc.Run.causal ~txn))
      (List.init 20 (fun i -> i + 1))
  in
  Alcotest.(check (list string))
    "same seed, same graph" (narrative ()) (narrative ())

let test_mixer_off_mode_records_nothing () =
  let cfg =
    { Tpc.Mixer.default_cfg with Tpc.Mixer.txns = 10; concurrency = 2; seed = 3 }
  in
  let tree = Workload.mixer_tree ~n:4 ~opts:[] () in
  let _, w, _ = Tpc.Mixer.run_full cfg tree in
  Alcotest.(check int) "off by default" 0 (C.node_count w.Tpc.Run.causal)

let suite =
  [
    Alcotest.test_case "off mode records nothing" `Quick test_off_records_nothing;
    Alcotest.test_case "chain edges" `Quick test_chain_edges;
    Alcotest.test_case "cross-chain link_from" `Quick test_link_from;
    Alcotest.test_case "transactions are isolated" `Quick test_txn_isolation;
    Alcotest.test_case "send/deliver matching" `Quick test_send_deliver_match;
    Alcotest.test_case "retransmission matches newest send" `Quick
      test_retransmit_matches_newest_send;
    Alcotest.test_case "no acausal message edge" `Quick
      test_deliver_never_matches_future_send;
    Alcotest.test_case "forged delivery has no message edge" `Quick
      test_forged_delivery_has_no_message_edge;
    Alcotest.test_case "critical path follows binding cause" `Quick
      test_critical_path_follows_binding_cause;
    Alcotest.test_case "marked terminal preferred" `Quick
      test_terminal_preferred_over_latest;
    Alcotest.test_case "empty transaction has no path" `Quick
      test_empty_txn_has_no_path;
    Alcotest.test_case "attribution sums to end-to-end latency" `Quick
      test_mixer_attribution_sums_to_latency;
    Alcotest.test_case "graph is deterministic" `Quick
      test_mixer_graph_deterministic;
    Alcotest.test_case "mixer defaults to off" `Quick
      test_mixer_off_mode_records_nothing;
  ]
