(* The obs library: streaming histograms, the metrics registry, spans --
   and the acceptance criterion tying them to the simulator: histogram
   quantiles track the exact Metrics.percentile within one bucket on a
   >= 10k-transaction mixer run, with memory independent of the
   transaction count. *)

module H = Obs.Histogram
module R = Obs.Registry

let check_float = Alcotest.(check (float 1e-9))

(* relative error tolerance from the acceptance criterion; the histogram's
   own bound at the default resolution is sqrt(gamma) - 1 ~ 4% *)
let tolerance = 0.10

let rel_err exact approx =
  if exact = 0.0 then Float.abs approx else Float.abs (approx -. exact) /. exact

let check_quantiles_against_exact ~msg samples h =
  let sorted = Tpc.Metrics.sorted_samples samples in
  List.iter
    (fun p ->
      let exact = Tpc.Metrics.percentile_of_sorted sorted p in
      let approx = H.quantile h p in
      if rel_err exact approx > tolerance then
        Alcotest.failf "%s: p%.0f exact %.6f vs histogram %.6f (err %.1f%%)"
          msg p exact approx
          (100.0 *. rel_err exact approx))
    [ 50.0; 90.0; 95.0; 99.0 ]

(* --- histogram ------------------------------------------------------- *)

let test_quantile_accuracy () =
  (* three deterministic streams with different shapes and dynamic ranges *)
  let streams =
    [
      ( "exponential",
        let rng = Simkernel.Det_rng.create ~seed:11 in
        List.init 20_000 (fun _ -> Simkernel.Det_rng.exponential rng ~mean:7.5)
      );
      ( "uniform",
        let rng = Simkernel.Det_rng.create ~seed:13 in
        List.init 20_000 (fun _ -> 0.5 +. Simkernel.Det_rng.float rng 99.5) );
      ( "heavy-tail",
        let rng = Simkernel.Det_rng.create ~seed:17 in
        List.init 20_000 (fun _ ->
            let u = Simkernel.Det_rng.float rng 1.0 in
            0.1 /. (1.0 -. (0.999 *. u))) );
    ]
  in
  List.iter
    (fun (msg, samples) ->
      let h = H.create () in
      List.iter (H.record h) samples;
      check_quantiles_against_exact ~msg samples h)
    streams

let test_exact_side_stats () =
  let h = H.create () in
  List.iter (H.record h) [ 3.0; 1.0; 4.0; 1.5; 9.0 ];
  Alcotest.(check int) "count" 5 (H.count h);
  check_float "sum" 18.5 (H.sum h);
  check_float "mean" 3.7 (H.mean h);
  check_float "min exact" 1.0 (H.min_value h);
  check_float "max exact" 9.0 (H.max_value h)

let test_single_value_clamps () =
  let h = H.create () in
  for _ = 1 to 100 do
    H.record h 5.5
  done;
  (* clamping to the observed min/max makes a constant stream exact *)
  List.iter
    (fun p -> check_float (Printf.sprintf "p%.0f" p) 5.5 (H.quantile h p))
    [ 0.0; 50.0; 99.0; 100.0 ]

let test_empty_and_nan () =
  let h = H.create () in
  Alcotest.(check bool) "empty quantile is nan" true
    (Float.is_nan (H.quantile h 50.0));
  H.record h Float.nan;
  Alcotest.(check int) "nan ignored" 0 (H.count h)

let test_low_bucket () =
  let h = H.create () in
  List.iter (H.record h) [ 0.0; -2.0; 0.0 ];
  Alcotest.(check int) "low values counted" 3 (H.count h);
  check_float "quantile reports the observed min" (-2.0) (H.quantile h 50.0)

let test_memory_independent_of_samples () =
  let record_n n =
    let rng = Simkernel.Det_rng.create ~seed:23 in
    let h = H.create () in
    for _ = 1 to n do
      H.record h (Simkernel.Det_rng.exponential rng ~mean:42.0)
    done;
    h
  in
  let small = record_n 1_000 and big = record_n 100_000 in
  (* memory is bounded by the data's dynamic range (resolution * decades
     spanned), never by the sample count *)
  let range_bound h =
    let decades = Float.log10 (H.max_value h /. H.min_value h) in
    int_of_float (ceil (float_of_int (H.resolution h) *. decades)) + 2
  in
  Alcotest.(check bool) "within the dynamic-range bound" true
    (H.bucket_count small <= range_bound small
    && H.bucket_count big <= range_bound big);
  Alcotest.(check bool) "footprint does not scale with count" true
    (H.bucket_count big <= H.count big / 100
    && H.bucket_count big < 2 * H.bucket_count small)

let test_merge_matches_combined () =
  let rng = Simkernel.Det_rng.create ~seed:29 in
  let xs = List.init 5_000 (fun _ -> Simkernel.Det_rng.exponential rng ~mean:3.0) in
  let ys = List.init 5_000 (fun _ -> Simkernel.Det_rng.exponential rng ~mean:30.0) in
  let hx = H.create () and hy = H.create () and hboth = H.create () in
  List.iter (H.record hx) xs;
  List.iter (H.record hy) ys;
  List.iter (H.record hboth) (xs @ ys);
  H.merge ~into:hx hy;
  Alcotest.(check int) "merged count" (H.count hboth) (H.count hx);
  List.iter
    (fun p ->
      check_float
        (Printf.sprintf "merged p%.0f equals combined" p)
        (H.quantile hboth p) (H.quantile hx p))
    [ 50.0; 95.0; 99.0 ]

let test_empty_percentile_extremes () =
  let h = H.create () in
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "empty p%.0f is nan" p)
        true
        (Float.is_nan (H.quantile h p)))
    [ 0.0; 50.0; 99.0; 100.0 ];
  Alcotest.(check int) "empty count" 0 (H.count h);
  check_float "empty sum" 0.0 (H.sum h);
  Alcotest.(check bool) "empty mean is nan" true (Float.is_nan (H.mean h))

let test_single_sample () =
  let h = H.create () in
  H.record h 7.25;
  Alcotest.(check int) "one sample" 1 (H.count h);
  check_float "mean is the sample" 7.25 (H.mean h);
  check_float "min is the sample" 7.25 (H.min_value h);
  check_float "max is the sample" 7.25 (H.max_value h);
  (* every quantile of a one-sample stream clamps to that sample *)
  List.iter
    (fun p ->
      check_float (Printf.sprintf "p%.0f is the sample" p) 7.25
        (H.quantile h p))
    [ 0.0; 1.0; 50.0; 99.0; 100.0 ]

let test_merge_associative () =
  let rng = Simkernel.Det_rng.create ~seed:31 in
  let stream n mean =
    List.init n (fun _ -> Simkernel.Det_rng.exponential rng ~mean)
  in
  let xs = stream 1_000 2.0
  and ys = stream 1_000 20.0
  and zs = stream 1_000 200.0 in
  let fill s =
    let h = H.create () in
    List.iter (H.record h) s;
    h
  in
  (* merge(a, merge(b, c)) *)
  let right = fill ys in
  H.merge ~into:right (fill zs);
  let a_bc = fill xs in
  H.merge ~into:a_bc right;
  (* merge(merge(a, b), c) *)
  let ab_c = fill xs in
  H.merge ~into:ab_c (fill ys);
  H.merge ~into:ab_c (fill zs);
  Alcotest.(check int) "counts agree" (H.count a_bc) (H.count ab_c);
  check_float "sums agree" (H.sum a_bc) (H.sum ab_c);
  check_float "mins agree" (H.min_value a_bc) (H.min_value ab_c);
  check_float "maxes agree" (H.max_value a_bc) (H.max_value ab_c);
  List.iter
    (fun p ->
      check_float
        (Printf.sprintf "p%.0f agrees either grouping" p)
        (H.quantile a_bc p) (H.quantile ab_c p))
    [ 0.0; 25.0; 50.0; 95.0; 99.0; 100.0 ]

let test_merge_resolution_mismatch () =
  let a = H.create ~buckets_per_decade:10 () in
  let b = H.create ~buckets_per_decade:30 () in
  Alcotest.check_raises "resolutions must match"
    (Invalid_argument "Histogram.merge: resolution mismatch") (fun () ->
      H.merge ~into:a b)

let test_summary () =
  let h = H.create () in
  List.iter (H.record h) [ 2.0; 2.0; 2.0; 2.0 ];
  let s = H.summary h in
  Alcotest.(check int) "count" 4 s.H.s_count;
  check_float "mean" 2.0 s.H.s_mean;
  check_float "p50" 2.0 s.H.s_p50;
  check_float "p99" 2.0 s.H.s_p99

(* --- registry -------------------------------------------------------- *)

let test_registry_counters_gauges () =
  let r = R.create () in
  R.incr r "commits";
  R.incr r ~by:4 "commits";
  Alcotest.(check int) "counter" 5 (R.counter_value r "commits");
  Alcotest.(check int) "missing counter reads 0" 0 (R.counter_value r "nope");
  R.set_gauge r "depth" 3.0;
  R.set_gauge r "depth" 1.0;
  Alcotest.(check (option (float 1e-9))) "set overwrites" (Some 1.0)
    (R.gauge_value r "depth");
  R.max_gauge r "hwm" 3.0;
  R.max_gauge r "hwm" 1.0;
  Alcotest.(check (option (float 1e-9))) "max keeps hwm" (Some 3.0)
    (R.gauge_value r "hwm")

let test_registry_histograms () =
  let r = R.create () in
  R.observe r "lat" 1.0;
  R.observe r "lat" 2.0;
  let h = R.histogram r "lat" in
  Alcotest.(check int) "observe find-or-creates" 2 (H.count h);
  Alcotest.(check bool) "find_histogram" true (R.find_histogram r "lat" <> None);
  Alcotest.(check bool) "unknown name" true (R.find_histogram r "x" = None);
  R.observe r "b" 1.0;
  R.observe r "a" 1.0;
  Alcotest.(check (list string)) "name-sorted listing" [ "a"; "b"; "lat" ]
    (List.map fst (R.histograms r))

let test_registry_merge () =
  let a = R.create () and b = R.create () in
  R.incr a ~by:2 "n";
  R.incr b ~by:3 "n";
  R.max_gauge a "g" 1.0;
  R.max_gauge b "g" 5.0;
  R.observe a "h" 1.0;
  R.observe b "h" 10.0;
  R.merge ~into:a b;
  Alcotest.(check int) "counters add" 5 (R.counter_value a "n");
  Alcotest.(check (option (float 1e-9))) "gauges keep max" (Some 5.0)
    (R.gauge_value a "g");
  Alcotest.(check int) "histograms merge" 2 (H.count (R.histogram a "h"))

(* --- span ------------------------------------------------------------ *)

let test_span_clamps () =
  let s = Obs.Span.make ~node:"n" ~start:4.0 ~stop:3.0 "x" in
  check_float "negative duration clamps to zero" 0.0 s.Obs.Span.sp_dur;
  check_float "stop" 4.0 (Obs.Span.stop s)

(* --- acceptance: histogram vs exact on a 10k-transaction mixer run --- *)

(* Uncontended baseline mix: every transaction's 2PC is identical, so the
   per-commit multiset of voting-phase residencies is known exactly from
   the default timeline (latency 1.0, io 0.5): the coordinator sits in
   voting from Prepare send (0.0) to decision (2.5); each of the two
   subordinates from Prepare delivery (1.0) to Vote send (1.5). *)
let mixer_cfg txns =
  {
    Tpc.Mixer.default_cfg with
    txns;
    concurrency = 1;
    keyspace = 64;
    seed = 7;
  }

let run_mixer txns =
  let tree = Workload.mixer_tree ~n:3 ~opts:[] () in
  Tpc.Mixer.run (mixer_cfg txns) tree

let test_mixer_histogram_matches_exact () =
  let agg, w = run_mixer 10_000 in
  Alcotest.(check int) "all 10k committed" 10_000 agg.Tpc.Metrics.Agg.committed;
  let h =
    match R.find_histogram w.Tpc.Run.registry "phase/voting" with
    | Some h -> h
    | None -> Alcotest.fail "no phase/voting histogram"
  in
  Alcotest.(check int) "one sample per member per transaction" 30_000
    (H.count h);
  let exact_per_commit = [ 2.5; 0.5; 0.5 ] in
  let exact =
    List.concat_map (fun _ -> exact_per_commit) (List.init 10_000 Fun.id)
  in
  check_quantiles_against_exact ~msg:"mixer phase/voting" exact h;
  (* the aggregate's summaries come from the same histograms *)
  let s = List.assoc "voting" agg.Tpc.Metrics.Agg.phase_latency in
  Alcotest.(check int) "agg summary count" 30_000 s.H.s_count;
  check_float "agg summary p50" (H.quantile h 50.0) s.H.s_p50

let test_mixer_histogram_memory_bound () =
  let _, w1 = run_mixer 1_000 and _, w10 = run_mixer 10_000 in
  let buckets w name =
    match R.find_histogram w.Tpc.Run.registry name with
    | Some h -> H.bucket_count h
    | None -> Alcotest.failf "no %s histogram" name
  in
  List.iter
    (fun name ->
      let b1 = buckets w1 name and b10 = buckets w10 name in
      Alcotest.(check bool)
        (name ^ ": memory independent of transaction count")
        true
        (b10 <= b1 + 10 && b10 <= 150))
    [ "mixer/commit_latency"; "mixer/lock_hold"; "phase/voting" ]

let suite =
  [
    Alcotest.test_case "quantiles track exact percentiles" `Quick
      test_quantile_accuracy;
    Alcotest.test_case "exact side statistics" `Quick test_exact_side_stats;
    Alcotest.test_case "constant stream is exact" `Quick
      test_single_value_clamps;
    Alcotest.test_case "empty and NaN handling" `Quick test_empty_and_nan;
    Alcotest.test_case "low bucket" `Quick test_low_bucket;
    Alcotest.test_case "memory independent of sample count" `Quick
      test_memory_independent_of_samples;
    Alcotest.test_case "merge equals combined stream" `Quick
      test_merge_matches_combined;
    Alcotest.test_case "empty percentile extremes" `Quick
      test_empty_percentile_extremes;
    Alcotest.test_case "single sample" `Quick test_single_sample;
    Alcotest.test_case "merge is associative" `Quick test_merge_associative;
    Alcotest.test_case "merge rejects mixed resolutions" `Quick
      test_merge_resolution_mismatch;
    Alcotest.test_case "summary" `Quick test_summary;
    Alcotest.test_case "registry counters and gauges" `Quick
      test_registry_counters_gauges;
    Alcotest.test_case "registry histograms" `Quick test_registry_histograms;
    Alcotest.test_case "registry merge" `Quick test_registry_merge;
    Alcotest.test_case "span clamps negative durations" `Quick
      test_span_clamps;
    Alcotest.test_case "10k-txn mixer: histogram vs exact percentile" `Slow
      test_mixer_histogram_matches_exact;
    Alcotest.test_case "10k-txn mixer: bounded histogram memory" `Slow
      test_mixer_histogram_memory_bound;
  ]
