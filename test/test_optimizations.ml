(* Tests of each optimization's behaviour and its Table 3 cost conformance
   over whole trees, including combinations of optimizations. *)

open Tpc.Types
open Test_util
module C = Tpc.Cost_model

(* Table 3 conformance for several (n, m) points per optimization. *)
let test_table3_conformance () =
  List.iter
    (fun opt ->
      List.iter
        (fun (n, m) ->
          let sim = Workload.run_table3 opt ~n ~m in
          let model = C.with_optimization opt ~n ~m in
          Alcotest.check counts
            (Printf.sprintf "%s n=%d m=%d" (C.optimization_to_string opt) n m)
            model sim)
        [ (2, 1); (5, 2); (11, 4); (8, 7) ])
    C.all_optimizations

let test_table3_paper_point () =
  (* the exact n=11, m=4 example printed in the paper *)
  List.iter
    (fun opt ->
      Alcotest.check counts
        (C.optimization_to_string opt ^ " paper example")
        (C.with_optimization opt ~n:11 ~m:4)
        (Workload.run_table3 opt ~n:11 ~m:4))
    C.all_optimizations

(* --- read only ----------------------------------------------------- *)

let test_read_only_needs_opt_enabled () =
  (* without the optimization a read-only member votes YES and logs *)
  let tree = two ~s:(member ~updated:false "S") () in
  let m, _w = run ~config:(cfg ()) tree in
  check_counts "read-only member pays full price without the optimization"
    (C.basic ~n:2) m

let test_read_only_cascaded_all_ro_subtree () =
  (* an intermediate votes read-only only when its whole subtree is *)
  let tree =
    Tree
      ( member "C",
        [
          Tree
            ( member ~updated:false "M",
              [ Tree (member ~updated:false "S", []) ] );
        ] )
  in
  let m, w = run ~config:(cfg ~opts:{ no_opts with read_only = true } ()) tree in
  check_outcome "commits" (Some Committed) m;
  (* M propagates the Prepare and votes read-only upward: two sends, no
     logs; S sends only its read-only vote *)
  check_side "M: Prepare down + RO vote up, no logs" (2, 0, 0) w "M";
  check_side "S: RO vote only, no logs" (1, 0, 0) w "S"

let test_read_only_cascaded_mixed_subtree () =
  (* a read-only intermediate over an updater must vote YES and log *)
  let tree =
    Tree
      ( member "C",
        [ Tree (member ~updated:false "M", [ Tree (member "S", []) ]) ] )
  in
  let m, w = run ~config:(cfg ~opts:{ no_opts with read_only = true } ()) tree in
  check_outcome "commits" (Some Committed) m;
  check_consistent "updater's write lands" w ~txn:"txn-1" ~outcome:Committed;
  let _, m_writes, _ = side_counts w "M" in
  Alcotest.(check bool) "mixed-subtree intermediate logs" true (m_writes > 0)

let test_read_only_all_members () =
  (* all-read-only transaction: one flow per edge, zero log writes (the PA
     read-only case of Table 2 generalized) *)
  let tree = Workload.flat ~decorate:(fun _ p -> { p with p_updated = false }) ~n:6 () in
  let tree = match tree with Tree (c, subs) -> Tree ({ c with p_updated = false }, subs) in
  let m, _w = run ~config:(cfg ~opts:{ no_opts with read_only = true } ()) tree in
  check_counts "2(n-1) flows, no writes"
    { C.flows = 10; writes = 0; forced = 0 }
    m

let test_read_only_early_lock_release () =
  (* Table 1: early release of locks - the read-only member's locks free
     before the root completes, and before updaters' locks free *)
  let tree =
    Tree (member "C", [ Tree (member "U", []); Tree (member ~updated:false "R", []) ])
  in
  let _m, w = run ~config:(cfg ~opts:{ no_opts with read_only = true } ()) tree in
  let t_r = Option.get (Tpc.Trace.locks_released_time w.Tpc.Run.trace "R") in
  let t_u = Option.get (Tpc.Trace.locks_released_time w.Tpc.Run.trace "U") in
  Alcotest.(check bool) "reader released before updater" true (t_r < t_u)

let test_read_only_2pl_hazard_window () =
  (* The paper's caveat: "use of the read-only optimization prior to global
     termination of a transaction may violate two-phase locking".  The
     read-only voter releases its locks while the distributed transaction
     is still in flight; an unrelated transaction can slip in, lock the
     same resource and change it before the global commit completes. *)
  let tree =
    Tree (member "C", [ Tree (member "U", []); Tree (member ~updated:false "R", []) ])
  in
  let config = cfg ~opts:{ no_opts with read_only = true } () in
  let w = Tpc.Run.setup ~config tree in
  Tpc.Run.perform_work w ~txn:"txn-1";
  Tpc.Participant.begin_commit (Tpc.Run.participant w "C") ~txn:"txn-1";
  (* run just past R's read-only vote but before the global decision *)
  Simkernel.Engine.run_until w.Tpc.Run.engine 2.0;
  Alcotest.(check bool) "txn-1 still in flight" true
    (Tpc.Trace.completion_time w.Tpc.Run.trace "C" = None);
  (* an unrelated transaction takes R's just-released lock and updates *)
  Alcotest.(check bool) "intruder locks the resource txn-1 read" true
    (Kvstore.put (Tpc.Run.kv w "R") ~txn:"intruder" ~key:"acct-R"
       ~value:"changed-under-txn-1");
  Kvstore.commit (Tpc.Run.kv w "R") ~txn:"intruder" ~force:true (fun () -> ());
  Simkernel.Engine.run w.Tpc.Run.engine;
  (* the global transaction commits anyway: the schedule is not
     two-phase-locking serializable *)
  Alcotest.(check bool) "global transaction committed regardless" true
    (w.Tpc.Run.outcome = Some Committed);
  Alcotest.(check (option string)) "the resource changed mid-transaction"
    (Some "changed-under-txn-1")
    (Kvstore.committed_value (Tpc.Run.kv w "R") "acct-R")

(* --- last agent ---------------------------------------------------- *)

let test_last_agent_abort_reaches_agent () =
  (* a NO from a normal subordinate aborts before delegation; the last
     agent must still hear the abort to release its resources *)
  let tree =
    Tree
      ( member "C",
        [ Tree (member ~vote_no:true "S1", []); Tree (member "LA", []) ] )
  in
  let m, w = run ~config:(cfg ~opts:{ no_opts with last_agent = true } ()) tree in
  check_outcome "aborted" (Some Aborted) m;
  check_consistent "last agent rolled back too" w ~txn:"txn-1" ~outcome:Aborted

let test_last_agent_votes_no () =
  (* the delegated decision maker itself may abort *)
  let tree = two ~s:(member ~vote_no:true "S") () in
  let m, w = run ~config:(cfg ~opts:{ no_opts with last_agent = true } ()) tree in
  check_outcome "last agent aborts" (Some Aborted) m;
  check_consistent "consistent" w ~txn:"txn-1" ~outcome:Aborted

let test_last_agent_with_other_subordinates () =
  (* phase-one with the others completes before the delegation flow *)
  let tree =
    Tree
      (member "C", [ Tree (member "S1", []); Tree (member "S2", []); Tree (member "LA", []) ])
  in
  let m, w = run ~config:(cfg ~opts:{ no_opts with last_agent = true } ()) tree in
  check_outcome "commits" (Some Committed) m;
  (* n=4, one last agent: 4(n-1) - 2 = 10 flows *)
  check_counts "one delegation edge saves two flows"
    { C.flows = 10; writes = 11; forced = 7 }
    m;
  check_consistent "consistent" w ~txn:"txn-1" ~outcome:Committed

let test_last_agent_delegation_chain () =
  (* each last agent may pick one of its own subordinates as its last
     agent: m cascading delegations *)
  let tree = Workload.flat_with_delegation_chain ~n:5 ~m:3 () in
  let m, _w = run ~config:(cfg ~opts:{ no_opts with last_agent = true } ()) tree in
  check_counts "three delegation edges" (C.with_optimization C.Last_agent_opt ~n:5 ~m:3) m

let test_last_agent_high_latency_saving () =
  (* the motivating case: a satellite-linked partner as last agent halves
     the slow round trips *)
  let config_plain = cfg () in
  let config_la = cfg ~opts:{ no_opts with last_agent = true } () in
  let tree = two () in
  let m_plain, w_plain = run ~config:config_plain tree in
  let m_la, w_la = run ~config:config_la tree in
  ignore w_plain;
  ignore w_la;
  Alcotest.(check bool) "last agent completes no later than baseline" true
    (Option.get m_la.Tpc.Metrics.completion_time
    <= Option.get m_plain.Tpc.Metrics.completion_time)

(* --- unsolicited vote ---------------------------------------------- *)

let test_unsolicited_multiple () =
  let tree =
    Tree
      ( member "C",
        [
          Tree (member ~unsolicited:true "U1", []);
          Tree (member ~unsolicited:true "U2", []);
          Tree (member "S", []);
        ] )
  in
  let m, w =
    run ~config:(cfg ~opts:{ no_opts with unsolicited_vote = true } ()) tree
  in
  check_outcome "commits" (Some Committed) m;
  check_counts "two unsolicited members save two flows"
    (C.with_optimization C.Unsolicited_vote_opt ~n:4 ~m:2)
    m;
  check_consistent "consistent" w ~txn:"txn-1" ~outcome:Committed

let test_unsolicited_ignored_without_opt () =
  (* with the optimization disabled the coordinator prepares everyone *)
  let tree = two ~s:(member ~unsolicited:true "S") () in
  let m, _w = run ~config:(cfg ()) tree in
  check_counts "profile flag alone changes nothing" (C.basic ~n:2) m

(* --- leave out ------------------------------------------------------ *)

let test_leave_out_keeps_other_members () =
  let tree =
    Tree
      ( member "C",
        [
          Tree (member "S", []);
          Tree (member ~left_out:true ~leave_out_ok:true "idle", []);
        ] )
  in
  let m, w = run ~config:(cfg ~opts:{ no_opts with leave_out = true } ()) tree in
  check_outcome "commits without the idle server" (Some Committed) m;
  check_counts "counts as a two-member tree" (C.basic ~n:2) m;
  check_consistent "active members consistent" w ~txn:"txn-1" ~outcome:Committed

let test_leave_out_subtree () =
  (* a left-out intermediate suspends its whole subtree *)
  let tree =
    Tree
      ( member "C",
        [
          Tree (member "S", []);
          Tree
            ( member ~left_out:true ~leave_out_ok:true "idle",
              [ Tree (member "deep", []) ] );
        ] )
  in
  let m, w = run ~config:(cfg ~opts:{ no_opts with leave_out = true } ()) tree in
  check_outcome "commits" (Some Committed) m;
  let touching =
    List.filter
      (function
        | Tpc.Trace.Send { src; dst; _ } ->
            src = "idle" || dst = "idle" || src = "deep" || dst = "deep"
        | _ -> false)
      (Tpc.Trace.events w.Tpc.Run.trace)
  in
  Alcotest.(check int) "whole left-out subtree silent" 0 (List.length touching)

let test_leave_out_requires_opt () =
  let tree =
    two ~s:(member ~left_out:true ~leave_out_ok:true "S") ()
  in
  let m, _w = run ~config:(cfg ()) tree in
  check_counts "without the optimization the member participates"
    (C.basic ~n:2) m

(* --- vote reliable --------------------------------------------------- *)

let test_vote_reliable_intermediate_early_ack () =
  (* Figure 8: with an all-reliable subtree the intermediate acks before
     collecting subordinate acknowledgments *)
  let tree =
    three ~m:(member ~reliable:true "M") ~s:(member ~reliable:true "S") ()
  in
  let m, w = run ~config:(cfg ~opts:{ no_opts with vote_reliable = true } ()) tree in
  check_outcome "commits" (Some Committed) m;
  (* Figure 8: the reliable leaf's ack is implied (one flow saved); the
     reliable cascaded coordinator still acknowledges, merely early *)
  check_counts "one implied ack (the reliable leaf's)"
    (C.with_optimization C.Vote_reliable_opt ~n:3 ~m:1)
    m;
  check_consistent "consistent" w ~txn:"txn-1" ~outcome:Committed;
  (* early acknowledgment: the root completes before the leaf's committed
     record is even forced - verify the intermediate acked early *)
  let events = Tpc.Trace.events w.Tpc.Run.trace in
  let ack_time =
    List.find_map
      (function
        | Tpc.Trace.Send { time; src = "M"; label = "Ack"; _ } -> Some time
        | _ -> None)
      events
  in
  let s_commit_time =
    List.find_map
      (function
        | Tpc.Trace.Log_write
            { time; node = "S"; kind = Wal.Log_record.Committed; _ } ->
            Some time
        | _ -> None)
      events
  in
  match (ack_time, s_commit_time) with
  | Some ta, Some ts ->
      Alcotest.(check bool) "intermediate acked before leaf committed" true
        (ta < ts)
  | _ -> Alcotest.fail "missing ack or leaf commit"

let test_unreliable_member_forces_late_ack () =
  (* one unreliable LRM in the subtree and the intermediate must wait *)
  let tree = three ~m:(member ~reliable:true "M") ~s:(member "S") () in
  let m, _w = run ~config:(cfg ~opts:{ no_opts with vote_reliable = true } ()) tree in
  (* only the intermediate's vote is not reliable (its subtree isn't);
     nobody's ack is elided *)
  check_counts "no elided acks" (C.basic ~n:3) m

(* --- shared log ------------------------------------------------------ *)

let test_shared_log_uses_parent_wal () =
  let tree = two ~s:(member ~shares_parent_log:true "S") () in
  let _m, w = run ~config:(cfg ~opts:{ no_opts with shared_log = true } ()) tree in
  let c = Tpc.Run.node w "C" and s = Tpc.Run.node w "S" in
  Alcotest.(check bool) "same physical log" true (c.Tpc.Run.wal == s.Tpc.Run.wal)

let test_shared_log_durability_rides_tm_force () =
  let tree = two ~s:(member ~shares_parent_log:true "S") () in
  let m, w = run ~config:(cfg ~opts:{ no_opts with shared_log = true } ()) tree in
  check_outcome "commits" (Some Committed) m;
  (* the subordinate's prepared record became durable when the coordinator
     forced its commit record; the later committed/end records stay
     buffered until the *next* force (that is the optimization) *)
  let durable_s =
    List.filter
      (fun (r : Wal.Log_record.t) -> r.node = "S" && Wal.Log_record.is_tm_record r)
      (Wal.Log.durable (Tpc.Run.node w "C").Tpc.Run.wal)
  in
  Alcotest.(check bool) "subordinate prepared record on stable storage" true
    (List.exists
       (fun (r : Wal.Log_record.t) -> r.kind = Wal.Log_record.Prepared)
       durable_s);
  let all_s =
    List.filter
      (fun (r : Wal.Log_record.t) -> r.node = "S" && Wal.Log_record.is_tm_record r)
      (Wal.Log.all_records (Tpc.Run.node w "C").Tpc.Run.wal)
  in
  Alcotest.(check int) "three subordinate records written in total" 3
    (List.length all_s)

let test_shared_log_multiple_members () =
  let tree =
    Tree
      ( member "C",
        [
          Tree (member ~shares_parent_log:true "L1", []);
          Tree (member ~shares_parent_log:true "L2", []);
        ] )
  in
  let m, _w = run ~config:(cfg ~opts:{ no_opts with shared_log = true } ()) tree in
  check_counts "two forced writes saved per sharing LRM"
    (C.with_optimization C.Shared_log_opt ~n:3 ~m:2)
    m

(* --- long locks ------------------------------------------------------ *)

let test_long_locks_coordinator_holds_longer () =
  let plain, w_plain = run ~config:(cfg ()) (two ()) in
  let ll, w_ll =
    run
      ~config:(cfg ~opts:{ no_opts with long_locks = true } ())
      (two ~s:(member ~long_locks:true "S") ())
  in
  ignore plain;
  ignore ll;
  let done_plain = Option.get (Tpc.Trace.completion_time w_plain.Tpc.Run.trace "C") in
  let done_ll = Option.get (Tpc.Trace.completion_time w_ll.Tpc.Run.trace "C") in
  Alcotest.(check bool)
    (Printf.sprintf "deferred ack delays coordinator completion (%.1f > %.1f)"
       done_ll done_plain)
    true (done_ll > done_plain)

let test_long_locks_partial_membership () =
  let tree =
    Tree
      ( member "C",
        [ Tree (member ~long_locks:true "L", []); Tree (member "S", []) ] )
  in
  let m, _w = run ~config:(cfg ~opts:{ no_opts with long_locks = true } ()) tree in
  check_counts "only the flagged member defers its ack"
    (C.with_optimization C.Long_locks_opt ~n:3 ~m:1)
    m

(* --- combinations ----------------------------------------------------- *)

let test_read_only_plus_last_agent () =
  (* the paper: a read-only initiator can delegate without the extra
     prepared force... here: RO members plus a last agent in one tree *)
  let tree =
    Tree
      ( member "C",
        [ Tree (member ~updated:false "R", []); Tree (member "LA", []) ] )
  in
  let m, w =
    run
      ~config:(cfg ~opts:{ no_opts with read_only = true; last_agent = true } ())
      tree
  in
  check_outcome "commits" (Some Committed) m;
  check_consistent "consistent" w ~txn:"txn-1" ~outcome:Committed;
  (* RO edge: 2 flows; delegation edge: 2 flows *)
  Alcotest.(check int) "four flows total" 4 m.Tpc.Metrics.flows

let test_unsolicited_plus_vote_reliable () =
  let tree = two ~s:(member ~unsolicited:true ~reliable:true "S") () in
  let m, _w =
    run
      ~config:
        (cfg ~opts:{ no_opts with unsolicited_vote = true; vote_reliable = true } ())
      tree
  in
  check_outcome "commits" (Some Committed) m;
  (* vote (unsolicited) + commit, no prepare, no ack: 2 flows *)
  Alcotest.(check int) "two flows" 2 m.Tpc.Metrics.flows

let test_all_optimizations_together () =
  let tree =
    Tree
      ( member "C",
        [
          Tree (member ~updated:false "R", []);
          Tree (member ~unsolicited:true "U", []);
          Tree (member ~reliable:true "V", []);
          Tree (member ~left_out:true ~leave_out_ok:true "O", []);
          Tree (member ~shares_parent_log:true "G", []);
          Tree (member ~long_locks:true "L", []);
          Tree (member "LA", []);
        ] )
  in
  let opts =
    {
      read_only = true;
      last_agent = true;
      unsolicited_vote = true;
      leave_out = true;
      shared_log = true;
      long_locks = true;
      ack = Late_ack;
      vote_reliable = true;
      wait_for_outcome = true;
    }
  in
  let m, w = run ~config:(cfg ~opts ()) tree in
  check_outcome "everything at once still commits" (Some Committed) m;
  check_consistent "and stays consistent" w ~txn:"txn-1" ~outcome:Committed;
  (* edges: R (2 flows), U (3), V (3), O (0), G (4), L (3), LA (2) = 17 *)
  Alcotest.(check int) "flow total matches per-edge sum" 17 m.Tpc.Metrics.flows

let test_early_ack_policy () =
  (* generic early acknowledgment: the intermediate acks right after its
     own commit force, so the root can complete before the leaf acks *)
  let late, w_late = run ~config:(cfg ()) (three ()) in
  let early, w_early = run ~config:(cfg ~opts:{ no_opts with ack = Early_ack } ()) (three ()) in
  ignore w_late;
  ignore w_early;
  Alcotest.(check bool) "early ack completes sooner" true
    (Option.get early.Tpc.Metrics.completion_time
    < Option.get late.Tpc.Metrics.completion_time)

let suite =
  [
    Alcotest.test_case "Table 3 conformance grid" `Quick test_table3_conformance;
    Alcotest.test_case "Table 3 paper point (n=11, m=4)" `Quick
      test_table3_paper_point;
    Alcotest.test_case "read-only needs the optimization" `Quick
      test_read_only_needs_opt_enabled;
    Alcotest.test_case "read-only cascaded all-RO subtree" `Quick
      test_read_only_cascaded_all_ro_subtree;
    Alcotest.test_case "read-only cascaded mixed subtree" `Quick
      test_read_only_cascaded_mixed_subtree;
    Alcotest.test_case "all-read-only transaction" `Quick test_read_only_all_members;
    Alcotest.test_case "read-only early lock release" `Quick
      test_read_only_early_lock_release;
    Alcotest.test_case "read-only lock release breaks 2PL window" `Quick
      test_read_only_2pl_hazard_window;
    Alcotest.test_case "last agent hears aborts" `Quick test_last_agent_abort_reaches_agent;
    Alcotest.test_case "last agent votes no" `Quick test_last_agent_votes_no;
    Alcotest.test_case "last agent with other subordinates" `Quick
      test_last_agent_with_other_subordinates;
    Alcotest.test_case "delegation chain" `Quick test_last_agent_delegation_chain;
    Alcotest.test_case "last agent completion time" `Quick
      test_last_agent_high_latency_saving;
    Alcotest.test_case "multiple unsolicited voters" `Quick test_unsolicited_multiple;
    Alcotest.test_case "unsolicited ignored without opt" `Quick
      test_unsolicited_ignored_without_opt;
    Alcotest.test_case "leave-out keeps other members" `Quick
      test_leave_out_keeps_other_members;
    Alcotest.test_case "leave-out suspends subtree" `Quick test_leave_out_subtree;
    Alcotest.test_case "leave-out requires opt" `Quick test_leave_out_requires_opt;
    Alcotest.test_case "vote-reliable early ack (Figure 8)" `Quick
      test_vote_reliable_intermediate_early_ack;
    Alcotest.test_case "unreliable member forces late ack" `Quick
      test_unreliable_member_forces_late_ack;
    Alcotest.test_case "shared log uses parent WAL" `Quick test_shared_log_uses_parent_wal;
    Alcotest.test_case "shared log durability rides TM force" `Quick
      test_shared_log_durability_rides_tm_force;
    Alcotest.test_case "shared log multiple members" `Quick
      test_shared_log_multiple_members;
    Alcotest.test_case "long locks delay coordinator" `Quick
      test_long_locks_coordinator_holds_longer;
    Alcotest.test_case "long locks partial membership" `Quick
      test_long_locks_partial_membership;
    Alcotest.test_case "read-only + last agent" `Quick test_read_only_plus_last_agent;
    Alcotest.test_case "unsolicited + vote reliable" `Quick
      test_unsolicited_plus_vote_reliable;
    Alcotest.test_case "all optimizations together" `Quick
      test_all_optimizations_together;
    Alcotest.test_case "early ack policy" `Quick test_early_ack_policy;
  ]
