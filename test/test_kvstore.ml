(* Tests of the key-value resource manager: transactional visibility,
   prepare/commit/abort, crash recovery, shared-log behaviour. *)

module E = Simkernel.Engine
module K = Kvstore
module L = Wal.Log

let mk () =
  let e = E.create () in
  let wal = L.create e ~node:"rm" () in
  (e, wal, K.create e ~name:"rm" ~wal ())

let vote = Alcotest.of_pp (fun ppf v ->
    Format.pp_print_string ppf
      (match v with
      | K.Vote_yes -> "yes"
      | K.Vote_read_only -> "read-only"
      | K.Vote_no -> "no"))

let test_put_get_own_write () =
  let _e, _w, kv = mk () in
  Alcotest.(check bool) "put ok" true (K.put kv ~txn:"t1" ~key:"k" ~value:"v");
  Alcotest.(check (option string)) "sees own write" (Some "v") (K.get kv ~txn:"t1" "k")

let test_uncommitted_invisible_after_abort () =
  let e, _w, kv = mk () in
  ignore (K.put kv ~txn:"t1" ~key:"k" ~value:"v");
  K.abort kv ~txn:"t1" (fun () -> ());
  E.run e;
  Alcotest.(check (option string)) "write rolled back" None (K.committed_value kv "k")

let test_commit_applies () =
  let e, _w, kv = mk () in
  ignore (K.put kv ~txn:"t1" ~key:"k" ~value:"v");
  K.commit kv ~txn:"t1" ~force:true (fun () -> ());
  E.run e;
  Alcotest.(check (option string)) "committed" (Some "v") (K.committed_value kv "k")

let test_delete () =
  let e, _w, kv = mk () in
  ignore (K.put kv ~txn:"t1" ~key:"k" ~value:"v");
  K.commit kv ~txn:"t1" ~force:true (fun () -> ());
  E.run e;
  Alcotest.(check bool) "delete ok" true (K.delete kv ~txn:"t2" ~key:"k");
  Alcotest.(check (option string)) "own delete visible" None (K.get kv ~txn:"t2" "k");
  Alcotest.(check (option string)) "still committed for others" (Some "v")
    (K.committed_value kv "k");
  K.commit kv ~txn:"t2" ~force:true (fun () -> ());
  E.run e;
  Alcotest.(check (option string)) "delete committed" None (K.committed_value kv "k")

let test_last_write_wins_within_txn () =
  let e, _w, kv = mk () in
  ignore (K.put kv ~txn:"t1" ~key:"k" ~value:"v1");
  ignore (K.put kv ~txn:"t1" ~key:"k" ~value:"v2");
  Alcotest.(check (option string)) "latest uncommitted wins" (Some "v2")
    (K.get kv ~txn:"t1" "k");
  K.commit kv ~txn:"t1" ~force:true (fun () -> ());
  E.run e;
  Alcotest.(check (option string)) "latest committed" (Some "v2")
    (K.committed_value kv "k")

let test_write_conflict_blocked () =
  let _e, _w, kv = mk () in
  ignore (K.put kv ~txn:"t1" ~key:"k" ~value:"v");
  Alcotest.(check bool) "conflicting put refused" false
    (K.put kv ~txn:"t2" ~key:"k" ~value:"w")

let test_read_only_vote () =
  let e, _w, kv = mk () in
  ignore (K.get kv ~txn:"t1" "k");
  let v = ref None in
  K.prepare kv ~txn:"t1" ~force:true (fun x -> v := Some x);
  E.run e;
  Alcotest.(check (option vote)) "read-only vote" (Some K.Vote_read_only) !v;
  Alcotest.(check int) "no log writes for read-only" 0 (L.stats (K.wal kv)).L.writes

let test_read_only_releases_locks () =
  let e, _w, kv = mk () in
  ignore (K.get kv ~txn:"t1" "k");
  K.prepare kv ~txn:"t1" ~force:true (fun _ -> ());
  E.run e;
  Alcotest.(check bool) "lock released at read-only vote" true
    (K.put kv ~txn:"t2" ~key:"k" ~value:"v")

let test_prepare_votes_yes_and_forces () =
  let e, _w, kv = mk () in
  ignore (K.put kv ~txn:"t1" ~key:"k" ~value:"v");
  let v = ref None in
  K.prepare kv ~txn:"t1" ~force:true (fun x -> v := Some x);
  Alcotest.(check (option vote)) "vote waits for force" None !v;
  E.run e;
  Alcotest.(check (option vote)) "yes" (Some K.Vote_yes) !v;
  Alcotest.(check int) "prepared forced" 1 (L.stats (K.wal kv)).L.forced_writes

let test_prepare_shared_log_no_force () =
  let _e, _w, kv = mk () in
  ignore (K.put kv ~txn:"t1" ~key:"k" ~value:"v");
  let v = ref None in
  K.prepare kv ~txn:"t1" ~force:false (fun x -> v := Some x);
  Alcotest.(check (option vote)) "immediate yes without force" (Some K.Vote_yes) !v;
  Alcotest.(check int) "no forced writes" 0 (L.stats (K.wal kv)).L.forced_writes

let test_commit_releases_locks () =
  let e, _w, kv = mk () in
  ignore (K.put kv ~txn:"t1" ~key:"k" ~value:"v");
  K.commit kv ~txn:"t1" ~force:true (fun () -> ());
  E.run e;
  Alcotest.(check bool) "lock free after commit" true
    (K.put kv ~txn:"t2" ~key:"k" ~value:"w")

let test_crash_wipes_unforced_state () =
  let e, _w, kv = mk () in
  ignore (K.put kv ~txn:"t1" ~key:"k" ~value:"v");
  K.commit kv ~txn:"t1" ~force:false (fun () -> ());
  E.run e;
  (* commit applied in memory but never forced: a crash must lose it *)
  L.crash (K.wal kv);
  K.crash kv;
  K.recover kv;
  Alcotest.(check (option string)) "unforced commit lost" None
    (K.committed_value kv "k")

let test_recovery_redoes_committed () =
  let e, _w, kv = mk () in
  ignore (K.put kv ~txn:"t1" ~key:"a" ~value:"1");
  ignore (K.put kv ~txn:"t1" ~key:"b" ~value:"2");
  K.commit kv ~txn:"t1" ~force:true (fun () -> ());
  E.run e;
  K.crash kv;
  K.recover kv;
  Alcotest.(check (list (pair string string))) "state rebuilt from log"
    [ ("a", "1"); ("b", "2") ]
    (K.committed_bindings kv)

let test_recovery_in_doubt () =
  let e, _w, kv = mk () in
  ignore (K.put kv ~txn:"t1" ~key:"k" ~value:"v");
  K.prepare kv ~txn:"t1" ~force:true (fun _ -> ());
  E.run e;
  K.crash kv;
  K.recover kv;
  Alcotest.(check (list string)) "prepared txn in doubt" [ "t1" ] (K.in_doubt kv);
  Alcotest.(check (option string)) "write not applied" None (K.committed_value kv "k");
  (* the TM resolves it with commit: the retained write set applies *)
  K.commit kv ~txn:"t1" ~force:true (fun () -> ());
  E.run e;
  Alcotest.(check (option string)) "in-doubt write applied on commit" (Some "v")
    (K.committed_value kv "k");
  Alcotest.(check (list string)) "no longer in doubt" [] (K.in_doubt kv)

let test_recovery_in_doubt_abort () =
  let e, _w, kv = mk () in
  ignore (K.put kv ~txn:"t1" ~key:"k" ~value:"v");
  K.prepare kv ~txn:"t1" ~force:true (fun _ -> ());
  E.run e;
  K.crash kv;
  K.recover kv;
  K.abort kv ~txn:"t1" (fun () -> ());
  Alcotest.(check (option string)) "in-doubt write dropped on abort" None
    (K.committed_value kv "k");
  Alcotest.(check (list string)) "resolved" [] (K.in_doubt kv)

let test_recovery_ignores_aborted () =
  let e, _w, kv = mk () in
  ignore (K.put kv ~txn:"t1" ~key:"k" ~value:"v");
  K.abort kv ~txn:"t1" (fun () -> ());
  L.force (K.wal kv) (Wal.Log_record.make ~txn:"x" ~node:"rm" Wal.Log_record.End)
    (fun () -> ());
  E.run e;
  K.crash kv;
  K.recover kv;
  Alcotest.(check (option string)) "aborted write not redone" None
    (K.committed_value kv "k");
  Alcotest.(check (list string)) "nothing in doubt" [] (K.in_doubt kv)

let test_payload_roundtrip_special_chars () =
  let e, _w, kv = mk () in
  let key = "k:with=strange 1:chars" and value = "v:1:2=3\nnewline" in
  ignore (K.put kv ~txn:"t1" ~key ~value);
  K.commit kv ~txn:"t1" ~force:true (fun () -> ());
  E.run e;
  K.crash kv;
  K.recover kv;
  Alcotest.(check (option string)) "length-prefixed payload survives recovery"
    (Some value) (K.committed_value kv key)

let test_is_updated () =
  let _e, _w, kv = mk () in
  Alcotest.(check bool) "fresh txn not updated" false (K.is_updated kv ~txn:"t1");
  ignore (K.get kv ~txn:"t1" "k");
  Alcotest.(check bool) "reads don't count" false (K.is_updated kv ~txn:"t1");
  ignore (K.put kv ~txn:"t1" ~key:"k" ~value:"v");
  Alcotest.(check bool) "writes count" true (K.is_updated kv ~txn:"t1")

let test_two_txns_isolated () =
  let e, _w, kv = mk () in
  ignore (K.put kv ~txn:"t1" ~key:"a" ~value:"1");
  ignore (K.put kv ~txn:"t2" ~key:"b" ~value:"2");
  K.abort kv ~txn:"t1" (fun () -> ());
  K.commit kv ~txn:"t2" ~force:true (fun () -> ());
  E.run e;
  Alcotest.(check (option string)) "t1 aborted" None (K.committed_value kv "a");
  Alcotest.(check (option string)) "t2 committed" (Some "2") (K.committed_value kv "b")

let suite =
  [
    Alcotest.test_case "put/get own write" `Quick test_put_get_own_write;
    Alcotest.test_case "abort rolls back" `Quick test_uncommitted_invisible_after_abort;
    Alcotest.test_case "commit applies" `Quick test_commit_applies;
    Alcotest.test_case "delete" `Quick test_delete;
    Alcotest.test_case "last write wins in txn" `Quick test_last_write_wins_within_txn;
    Alcotest.test_case "write conflict blocked" `Quick test_write_conflict_blocked;
    Alcotest.test_case "read-only vote" `Quick test_read_only_vote;
    Alcotest.test_case "read-only releases locks" `Quick test_read_only_releases_locks;
    Alcotest.test_case "prepare votes yes and forces" `Quick
      test_prepare_votes_yes_and_forces;
    Alcotest.test_case "shared-log prepare skips force" `Quick
      test_prepare_shared_log_no_force;
    Alcotest.test_case "commit releases locks" `Quick test_commit_releases_locks;
    Alcotest.test_case "crash wipes unforced state" `Quick
      test_crash_wipes_unforced_state;
    Alcotest.test_case "recovery redoes committed" `Quick test_recovery_redoes_committed;
    Alcotest.test_case "recovery leaves prepared in doubt" `Quick
      test_recovery_in_doubt;
    Alcotest.test_case "in-doubt abort drops writes" `Quick
      test_recovery_in_doubt_abort;
    Alcotest.test_case "recovery ignores aborted" `Quick test_recovery_ignores_aborted;
    Alcotest.test_case "payload roundtrip special chars" `Quick
      test_payload_roundtrip_special_chars;
    Alcotest.test_case "is_updated" `Quick test_is_updated;
    Alcotest.test_case "two txns isolated" `Quick test_two_txns_isolated;
  ]
