(* Lock contention and checkpointing: the throughput-side claims of
   Section 1 and the log-manager substrate. *)

open Tpc.Types
open Test_util
module W = Workload

(* --- contention -------------------------------------------------------- *)

let victim_tree ~victim_updated =
  Tree (member "C", [ Tree (member ~updated:victim_updated "S", []) ])

let test_intruders_wait_for_commit () =
  let r =
    W.contention_experiment ~config:(cfg ()) ~victim:"S"
      (victim_tree ~victim_updated:true)
  in
  Alcotest.(check int) "all intruders eventually served" 3 r.W.ct_intruders;
  Alcotest.(check (option outcome)) "commit went through" (Some Committed)
    r.W.ct_commit_outcome;
  (* the first intruder arrived at 0.5 and could not proceed before S's
     local commit (~4.5 at default latencies) *)
  Alcotest.(check bool)
    (Printf.sprintf "intruders waited (max %.2f)" r.W.ct_max_wait)
    true (r.W.ct_max_wait > 2.0)

let test_read_only_reduces_wait () =
  (* when S is read-only and the optimization is on, S releases at its vote
     (phase one): intruders wait far less *)
  let baseline =
    W.contention_experiment ~config:(cfg ()) ~victim:"S"
      (victim_tree ~victim_updated:true)
  in
  let ro =
    W.contention_experiment
      ~config:(cfg ~opts:{ no_opts with read_only = true } ())
      ~victim:"S"
      (victim_tree ~victim_updated:false)
  in
  Alcotest.(check bool)
    (Printf.sprintf "read-only wait %.2f < baseline %.2f" ro.W.ct_max_wait
       baseline.W.ct_max_wait)
    true
    (ro.W.ct_max_wait < baseline.W.ct_max_wait)

let test_higher_latency_longer_waits () =
  let near =
    W.contention_experiment ~config:(cfg ~latency:1.0 ()) ~victim:"S"
      (victim_tree ~victim_updated:true)
  in
  let far =
    W.contention_experiment ~config:(cfg ~latency:10.0 ()) ~victim:"S"
      (victim_tree ~victim_updated:true)
  in
  Alcotest.(check bool) "distribution amplifies lock waits" true
    (far.W.ct_mean_wait > near.W.ct_mean_wait)

let test_contention_fifo () =
  (* intruders are served in arrival order: waits decrease strictly with
     later arrival (same release point) *)
  let r =
    W.contention_experiment ~config:(cfg ())
      ~arrivals:[ 0.2; 0.4; 0.6 ] ~victim:"S"
      (victim_tree ~victim_updated:true)
  in
  Alcotest.(check int) "three served" 3 r.W.ct_intruders

(* --- kvstore checkpointing --------------------------------------------- *)

module E = Simkernel.Engine
module K = Kvstore
module L = Wal.Log

let mk () =
  let e = E.create () in
  let wal = L.create e ~node:"rm" () in
  (e, wal, K.create e ~name:"rm" ~wal ())

let commit_one e kv txn key value =
  ignore (K.put kv ~txn ~key ~value);
  K.commit kv ~txn ~force:true (fun () -> ());
  E.run e

let test_checkpoint_roundtrip () =
  let e, _w, kv = mk () in
  commit_one e kv "t1" "a" "1";
  commit_one e kv "t2" "b" "2";
  K.checkpoint kv (fun () -> ());
  E.run e;
  K.crash kv;
  K.recover kv;
  Alcotest.(check (list (pair string string))) "state restored from snapshot"
    [ ("a", "1"); ("b", "2") ]
    (K.committed_bindings kv)

let test_checkpoint_compacts_log () =
  let e, wal, kv = mk () in
  for i = 1 to 20 do
    commit_one e kv (Printf.sprintf "t%d" i) (Printf.sprintf "k%d" i) "v"
  done;
  let before = List.length (L.durable wal) in
  K.checkpoint kv (fun () -> ());
  E.run e;
  let after = List.length (L.durable wal) in
  Alcotest.(check bool)
    (Printf.sprintf "log shrank (%d -> %d)" before after)
    true
    (after < before);
  (* and recovery still yields all twenty keys *)
  K.crash kv;
  K.recover kv;
  Alcotest.(check int) "all data survives compaction" 20
    (List.length (K.committed_bindings kv))

let test_checkpoint_preserves_in_flight () =
  let e, _w, kv = mk () in
  commit_one e kv "t1" "a" "1";
  (* t2 is prepared but unresolved when the checkpoint happens *)
  ignore (K.put kv ~txn:"t2" ~key:"b" ~value:"2");
  K.prepare kv ~txn:"t2" ~force:true (fun _ -> ());
  E.run e;
  K.checkpoint kv (fun () -> ());
  E.run e;
  K.crash kv;
  K.recover kv;
  Alcotest.(check (list string)) "t2 still in doubt after compaction"
    [ "t2" ] (K.in_doubt kv);
  (* resolving it applies the retained write set *)
  K.commit kv ~txn:"t2" ~force:true (fun () -> ());
  E.run e;
  Alcotest.(check (option string)) "in-flight data intact" (Some "2")
    (K.committed_value kv "b")

let test_updates_after_checkpoint_replay () =
  let e, _w, kv = mk () in
  commit_one e kv "t1" "a" "1";
  K.checkpoint kv (fun () -> ());
  E.run e;
  commit_one e kv "t2" "a" "2";
  commit_one e kv "t3" "c" "3";
  K.crash kv;
  K.recover kv;
  Alcotest.(check (option string)) "post-checkpoint update wins" (Some "2")
    (K.committed_value kv "a");
  Alcotest.(check (option string)) "post-checkpoint insert present" (Some "3")
    (K.committed_value kv "c")

let test_second_checkpoint_supersedes () =
  let e, wal, kv = mk () in
  commit_one e kv "t1" "a" "1";
  K.checkpoint kv (fun () -> ());
  E.run e;
  commit_one e kv "t2" "b" "2";
  K.checkpoint kv (fun () -> ());
  E.run e;
  let checkpoints =
    List.filter
      (fun (r : Wal.Log_record.t) -> r.kind = Wal.Log_record.Checkpoint)
      (L.durable wal)
  in
  Alcotest.(check int) "only the newest checkpoint kept" 1
    (List.length checkpoints);
  K.crash kv;
  K.recover kv;
  Alcotest.(check (list (pair string string))) "full state from the newest"
    [ ("a", "1"); ("b", "2") ]
    (K.committed_bindings kv)

let test_put_async_grants_when_free () =
  let _e, _w, kv = mk () in
  let granted = ref false in
  K.put_async kv ~txn:"t1" ~key:"k" ~value:"v" ~granted:(fun () -> granted := true);
  Alcotest.(check bool) "uncontended put_async immediate" true !granted;
  Alcotest.(check (option string)) "write buffered" (Some "v")
    (K.get kv ~txn:"t1" "k")

let test_put_async_waits_for_release () =
  let e, _w, kv = mk () in
  ignore (K.put kv ~txn:"t1" ~key:"k" ~value:"v1");
  let granted = ref false in
  K.put_async kv ~txn:"t2" ~key:"k" ~value:"v2" ~granted:(fun () -> granted := true);
  Alcotest.(check bool) "blocked behind t1" false !granted;
  K.commit kv ~txn:"t1" ~force:true (fun () -> ());
  E.run e;
  Alcotest.(check bool) "granted after t1 commit" true !granted

let suite =
  [
    Alcotest.test_case "intruders wait for commit" `Quick
      test_intruders_wait_for_commit;
    Alcotest.test_case "read-only reduces intruder wait" `Quick
      test_read_only_reduces_wait;
    Alcotest.test_case "latency amplifies waits" `Quick
      test_higher_latency_longer_waits;
    Alcotest.test_case "contention FIFO service" `Quick test_contention_fifo;
    Alcotest.test_case "checkpoint roundtrip" `Quick test_checkpoint_roundtrip;
    Alcotest.test_case "checkpoint compacts the log" `Quick
      test_checkpoint_compacts_log;
    Alcotest.test_case "checkpoint preserves in-flight txns" `Quick
      test_checkpoint_preserves_in_flight;
    Alcotest.test_case "updates after checkpoint replay" `Quick
      test_updates_after_checkpoint_replay;
    Alcotest.test_case "second checkpoint supersedes" `Quick
      test_second_checkpoint_supersedes;
    Alcotest.test_case "put_async immediate when free" `Quick
      test_put_async_grants_when_free;
    Alcotest.test_case "put_async waits for release" `Quick
      test_put_async_waits_for_release;
  ]
