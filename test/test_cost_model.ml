(* Tests of the closed-form cost model against the numbers printed in the
   paper (Tables 2, 3, 4, corrected for OCR noise as documented in
   DESIGN.md section 3). *)

module C = Tpc.Cost_model

let counts = Alcotest.of_pp C.pp_counts

let test_basic_formula () =
  Alcotest.check counts "n=11 baseline (Table 3 row 1)"
    { C.flows = 40; writes = 32; forced = 21 }
    (C.basic ~n:11);
  Alcotest.check counts "n=2 baseline (Table 2 row 1 totals)"
    { C.flows = 4; writes = 5; forced = 3 }
    (C.basic ~n:2);
  Alcotest.check counts "n=1 degenerate"
    { C.flows = 0; writes = 2; forced = 1 }
    (C.basic ~n:1)

let test_pn_formula () =
  Alcotest.check counts "PN n=2 (Table 2 row 2 totals)"
    { C.flows = 4; writes = 7; forced = 5 }
    (C.presumed_nothing ~n:2 ())

let table3_expected =
  (* (optimization, n=11 m=4 triplet from Table 3, OCR-corrected) *)
  [
    (C.Read_only_opt, (32, 20, 13));
    (C.Last_agent_opt, (32, 32, 21));
    (C.Unsolicited_vote_opt, (36, 32, 21));
    (C.Leave_out_opt, (24, 20, 13));
    (C.Vote_reliable_opt, (36, 32, 21));
    (C.Wait_for_outcome_opt, (40, 32, 21));
    (C.Shared_log_opt, (40, 32, 13));
    (C.Long_locks_opt, (36, 32, 21));
  ]

let test_table3_paper_example () =
  List.iter
    (fun (opt, (f, w, forced)) ->
      Alcotest.check counts
        (C.optimization_to_string opt ^ " n=11 m=4")
        { C.flows = f; writes = w; forced }
        (C.with_optimization opt ~n:11 ~m:4))
    table3_expected

let test_table3_zero_members_is_baseline () =
  List.iter
    (fun opt ->
      Alcotest.check counts
        (C.optimization_to_string opt ^ " with m=0 is baseline")
        (C.basic ~n:7)
        (C.with_optimization opt ~n:7 ~m:0))
    C.all_optimizations

let test_table2_rows () =
  let row label = List.find (fun r -> r.C.t2_label = label) C.table2 in
  let side = Alcotest.(triple int int int) in
  let chk label (cf, cw, cfo) (sf, sw, sfo) =
    let r = row label in
    Alcotest.check side (label ^ " coordinator") (cf, cw, cfo)
      (r.C.coordinator.C.s_flows, r.C.coordinator.C.s_writes, r.C.coordinator.C.s_forced);
    Alcotest.check side (label ^ " subordinate") (sf, sw, sfo)
      (r.C.subordinate.C.s_flows, r.C.subordinate.C.s_writes, r.C.subordinate.C.s_forced)
  in
  chk "Basic 2PC" (2, 2, 1) (2, 3, 2);
  chk "PN" (2, 3, 2) (2, 4, 3);
  chk "PA, Commit case" (2, 2, 1) (2, 3, 2);
  chk "PA, Abort case" (2, 0, 0) (1, 0, 0);
  chk "PA, Read-Only case" (1, 0, 0) (1, 0, 0);
  chk "PA & Last-Agent" (1, 3, 2) (1, 2, 1);
  chk "PA & Unsolicited Vote" (1, 2, 1) (2, 3, 2);
  chk "PA & Leave-Out" (0, 0, 0) (0, 0, 0);
  chk "PA & Shared Logs" (2, 2, 1) (2, 3, 0)

let test_table4 () =
  let rows = C.table4 ~r:12 in
  let get label = List.assoc label rows in
  Alcotest.check counts "basic r=12" { C.flows = 48; writes = 60; forced = 36 }
    (get "Basic 2PC");
  Alcotest.check counts "long locks r=12"
    { C.flows = 36; writes = 60; forced = 36 }
    (get "PA & Long Locks (not last agent)");
  Alcotest.check counts "long locks + last agent r=12"
    { C.flows = 18; writes = 60; forced = 36 }
    (get "PA & Long Locks (last agent)")

let test_long_locks_flow_helpers () =
  Alcotest.(check int) "3r" 36 (C.long_locks_flows ~r:12);
  Alcotest.(check int) "3r/2" 18 (C.long_locks_last_agent_flows ~r:12)

let test_group_commit_saving () =
  Alcotest.(check (float 1e-9)) "3n/2m for n=24 m=4" 9.0
    (C.group_commit_saving ~n:24 ~m:4);
  Alcotest.(check (float 1e-9)) "3n/2m for n=100 m=10" 15.0
    (C.group_commit_saving ~n:100 ~m:10)

let test_savings_never_negative_counts () =
  (* the per-member savings never drive a legal tree's totals negative *)
  List.iter
    (fun opt ->
      for n = 2 to 12 do
        for m = 0 to n - 1 do
          let c = C.with_optimization opt ~n ~m in
          Alcotest.(check bool)
            (Printf.sprintf "%s n=%d m=%d non-negative"
               (C.optimization_to_string opt) n m)
            true
            (c.C.flows >= 0 && c.C.writes >= 0 && c.C.forced >= 0)
        done
      done)
    C.all_optimizations

let test_table1_covers_all_optimizations () =
  Alcotest.(check int) "nine qualitative rows" 9 (List.length C.table1);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (r.C.t1_optimization ^ " has at least one advantage")
        true
        (List.length r.C.advantages > 0))
    C.table1

let suite =
  [
    Alcotest.test_case "basic formula" `Quick test_basic_formula;
    Alcotest.test_case "PN formula" `Quick test_pn_formula;
    Alcotest.test_case "Table 3 paper example (n=11, m=4)" `Quick
      test_table3_paper_example;
    Alcotest.test_case "m=0 reduces to baseline" `Quick
      test_table3_zero_members_is_baseline;
    Alcotest.test_case "Table 2 rows" `Quick test_table2_rows;
    Alcotest.test_case "Table 4 (r=12)" `Quick test_table4;
    Alcotest.test_case "long-locks flow helpers" `Quick test_long_locks_flow_helpers;
    Alcotest.test_case "group commit saving formula" `Quick test_group_commit_saving;
    Alcotest.test_case "savings never negative" `Quick
      test_savings_never_negative_counts;
    Alcotest.test_case "Table 1 coverage" `Quick test_table1_covers_all_optimizations;
  ]
