(* Tests of the discrete-event engine: ordering, determinism, cancellation. *)

module E = Simkernel.Engine

let check = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

let test_initial_time () =
  let e = E.create () in
  checkf "clock starts at zero" 0.0 (E.now e)

let test_schedule_and_run () =
  let e = E.create () in
  let hits = ref [] in
  ignore (E.schedule e ~delay:2.0 (fun () -> hits := 2 :: !hits));
  ignore (E.schedule e ~delay:1.0 (fun () -> hits := 1 :: !hits));
  ignore (E.schedule e ~delay:3.0 (fun () -> hits := 3 :: !hits));
  E.run e;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !hits);
  checkf "clock at last event" 3.0 (E.now e)

let test_fifo_ties () =
  let e = E.create () in
  let hits = ref [] in
  for i = 1 to 5 do
    ignore (E.schedule e ~delay:1.0 (fun () -> hits := i :: !hits))
  done;
  E.run e;
  Alcotest.(check (list int)) "same-time events run FIFO" [ 1; 2; 3; 4; 5 ]
    (List.rev !hits)

let test_nested_scheduling () =
  let e = E.create () in
  let hits = ref [] in
  ignore
    (E.schedule e ~delay:1.0 (fun () ->
         hits := "a" :: !hits;
         ignore (E.schedule e ~delay:1.0 (fun () -> hits := "c" :: !hits))));
  ignore (E.schedule e ~delay:1.5 (fun () -> hits := "b" :: !hits));
  E.run e;
  Alcotest.(check (list string)) "nested events interleave by time"
    [ "a"; "b"; "c" ] (List.rev !hits)

let test_cancel () =
  let e = E.create () in
  let fired = ref false in
  let ev = E.schedule e ~delay:1.0 (fun () -> fired := true) in
  E.cancel e ev;
  E.run e;
  Alcotest.(check bool) "cancelled event does not fire" false !fired

let test_cancel_is_idempotent () =
  let e = E.create () in
  let ev = E.schedule e ~delay:1.0 (fun () -> ()) in
  E.cancel e ev;
  E.cancel e ev;
  check "pending zero after double cancel" 0 (E.pending e)

let test_cancel_one_of_many () =
  let e = E.create () in
  let hits = ref 0 in
  let _ = E.schedule e ~delay:1.0 (fun () -> incr hits) in
  let ev = E.schedule e ~delay:1.0 (fun () -> incr hits) in
  let _ = E.schedule e ~delay:1.0 (fun () -> incr hits) in
  E.cancel e ev;
  E.run e;
  check "two of three fire" 2 !hits

let test_pending () =
  let e = E.create () in
  check "empty agenda" 0 (E.pending e);
  ignore (E.schedule e ~delay:1.0 (fun () -> ()));
  ignore (E.schedule e ~delay:2.0 (fun () -> ()));
  check "two pending" 2 (E.pending e);
  ignore (E.step e);
  check "one left after step" 1 (E.pending e)

let test_run_until () =
  let e = E.create () in
  let hits = ref 0 in
  ignore (E.schedule e ~delay:1.0 (fun () -> incr hits));
  ignore (E.schedule e ~delay:5.0 (fun () -> incr hits));
  E.run_until e 3.0;
  check "only early event ran" 1 !hits;
  checkf "clock advanced to horizon" 3.0 (E.now e);
  E.run e;
  check "late event runs afterwards" 2 !hits

let test_run_until_boundary_inclusive () =
  let e = E.create () in
  let hits = ref 0 in
  ignore (E.schedule e ~delay:3.0 (fun () -> incr hits));
  E.run_until e 3.0;
  check "event exactly at horizon runs" 1 !hits

let test_step_empty () =
  let e = E.create () in
  Alcotest.(check bool) "step on empty returns false" false (E.step e)

let test_negative_delay_rejected () =
  let e = E.create () in
  Alcotest.check_raises "negative delay" (E.Negative_delay (-1.0)) (fun () ->
      ignore (E.schedule e ~delay:(-1.0) (fun () -> ())))

let test_schedule_at_past_rejected () =
  let e = E.create () in
  ignore (E.schedule e ~delay:5.0 (fun () -> ()));
  E.run e;
  Alcotest.check_raises "past absolute time" (E.Negative_delay (-2.0)) (fun () ->
      ignore (E.schedule_at e ~time:3.0 (fun () -> ())))

let test_zero_delay_runs_now_not_reentrant () =
  let e = E.create () in
  let hits = ref [] in
  ignore
    (E.schedule e ~delay:0.0 (fun () ->
         ignore (E.schedule e ~delay:0.0 (fun () -> hits := "inner" :: !hits));
         hits := "outer" :: !hits));
  E.run e;
  Alcotest.(check (list string)) "zero-delay events are deferred, not reentrant"
    [ "outer"; "inner" ] (List.rev !hits)

let test_many_events_heap_growth () =
  let e = E.create () in
  let count = ref 0 in
  for i = 0 to 999 do
    ignore (E.schedule e ~delay:(float_of_int (999 - i)) (fun () -> incr count))
  done;
  E.run e;
  check "all thousand events fired" 1000 !count;
  checkf "clock at max delay" 999.0 (E.now e)

let suite =
  [
    Alcotest.test_case "initial time" `Quick test_initial_time;
    Alcotest.test_case "schedule and run in time order" `Quick test_schedule_and_run;
    Alcotest.test_case "FIFO on equal timestamps" `Quick test_fifo_ties;
    Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
    Alcotest.test_case "cancel" `Quick test_cancel;
    Alcotest.test_case "cancel idempotent" `Quick test_cancel_is_idempotent;
    Alcotest.test_case "cancel one of many at same time" `Quick test_cancel_one_of_many;
    Alcotest.test_case "pending count" `Quick test_pending;
    Alcotest.test_case "run_until horizon" `Quick test_run_until;
    Alcotest.test_case "run_until inclusive boundary" `Quick test_run_until_boundary_inclusive;
    Alcotest.test_case "step on empty agenda" `Quick test_step_empty;
    Alcotest.test_case "negative delay rejected" `Quick test_negative_delay_rejected;
    Alcotest.test_case "absolute time in past rejected" `Quick test_schedule_at_past_rejected;
    Alcotest.test_case "zero delay not reentrant" `Quick test_zero_delay_runs_now_not_reentrant;
    Alcotest.test_case "heap growth under load" `Quick test_many_events_heap_growth;
  ]
