(* Telemetry: phase spans derived from the trace, the Chrome trace-event
   export and the structured-event JSONL sink. *)

module T = Tpc.Telemetry
module Json = Tpc.Json

let check_float = Alcotest.(check (float 1e-9))

(* default PA commit over the three-member flat tree: the timeline other
   tests pin down (completion at 5.5 with latency 1.0, io 0.5) *)
let default_run () =
  let tree = Workload.flat ~n:3 () in
  let _metrics, world = Tpc.Run.commit_tree tree in
  (tree, world)

let span spans node name =
  match
    List.find_opt
      (fun s -> s.Obs.Span.sp_node = node && s.Obs.Span.sp_name = name)
      spans
  with
  | Some s -> s
  | None -> Alcotest.failf "no %s span for %s" name node

let test_all_phases_all_nodes () =
  let tree, world = default_run () in
  let spans = T.spans world.Tpc.Run.trace ~tree in
  let nodes = List.map (fun p -> p.Tpc.Types.p_name) (Tpc.Types.tree_members tree) in
  Alcotest.(check int) "five spans per node"
    (5 * List.length nodes)
    (List.length spans);
  List.iter
    (fun node ->
      (* contiguous, non-negative, inside the run *)
      let ss = List.map (span spans node) T.phase_names in
      List.iter
        (fun s ->
          Alcotest.(check bool) "non-negative duration" true
            (s.Obs.Span.sp_dur >= 0.0);
          Alcotest.(check bool) "within the run" true
            (s.Obs.Span.sp_start >= 0.0 && Obs.Span.stop s <= 5.5))
        ss;
      (* monotone and non-overlapping; a gap is legitimate (a subordinate
         is in-doubt between sending its vote and learning the outcome) *)
      List.iter2
        (fun a b ->
          Alcotest.(check bool) "phases in protocol order" true
            (b.Obs.Span.sp_start >= Obs.Span.stop a -. 1e-9))
        (List.filteri (fun i _ -> i < 4) ss)
        (List.tl ss))
    nodes

let test_parent_links_mirror_tree () =
  let tree, world = default_run () in
  let spans = T.spans world.Tpc.Run.trace ~tree in
  List.iter
    (fun (s : Obs.Span.t) ->
      if s.Obs.Span.sp_node = "coord" then
        Alcotest.(check bool) "root has no parent" true
          (s.Obs.Span.sp_parent = None)
      else
        Alcotest.(check (option string)) "subordinate's parent is the root"
          (Some "coord") s.Obs.Span.sp_parent)
    spans

(* boundary times agree with the trace: the coordinator decides at 2.5 and
   has released locks by 3.0; subordinates get Prepare at 1.0, vote at 1.5,
   learn the decision at 4.0 and are done at 4.5 *)
let test_durations_consistent_with_trace () =
  let tree, world = default_run () in
  let trace = world.Tpc.Run.trace in
  let spans = T.spans trace ~tree in
  let coord_decision = span spans "coord" "decision" in
  check_float "coord decision starts at the Decide event" 2.5
    coord_decision.Obs.Span.sp_start;
  check_float "coord decision ends at lock release"
    (Option.get (Tpc.Trace.locks_released_time trace "coord"))
    (Obs.Span.stop coord_decision);
  let coord_p2 = span spans "coord" "phase-two" in
  check_float "coord phase-two runs to the last ack"
    (Option.get (Tpc.Trace.completion_time trace "coord"))
    (Obs.Span.stop coord_p2);
  let sub_voting = span spans "sub0" "voting" in
  check_float "sub voting from Prepare delivery" 1.0
    sub_voting.Obs.Span.sp_start;
  check_float "sub voting to the Vote send" 1.5 (Obs.Span.stop sub_voting);
  let sub_decision = span spans "sub0" "decision" in
  check_float "sub decision from Commit delivery" 4.0
    sub_decision.Obs.Span.sp_start;
  check_float "sub decision to lock release"
    (Option.get (Tpc.Trace.locks_released_time trace "sub0"))
    (Obs.Span.stop sub_decision)

let test_absent_node_has_no_spans () =
  Alcotest.(check bool) "empty trace yields no spans" true
    (T.node_spans [] "ghost" = None)

(* --- Chrome trace-event export --------------------------------------- *)

let members = function Json.Obj fields -> fields | _ -> []

let str_member name j =
  match Json.member name j with Some (Json.String s) -> Some s | _ -> None

let test_chrome_trace_shape () =
  let tree, world = default_run () in
  let j = T.chrome_trace world.Tpc.Run.trace ~tree in
  (* survives a serialization round trip through the repo's own parser *)
  let j = Json.parse (Json.to_string j) in
  let events =
    match Json.member "traceEvents" j with
    | Some (Json.List l) -> l
    | _ -> Alcotest.fail "no traceEvents list"
  in
  Alcotest.(check (option string)) "displayTimeUnit" (Some "ms")
    (Option.bind (Json.member "displayTimeUnit" j) Json.to_string_opt);
  let complete =
    List.filter (fun e -> str_member "ph" e = Some "X") events
  in
  Alcotest.(check int) "one X event per phase per node" 15
    (List.length complete);
  let threads =
    List.filter_map
      (fun e ->
        if str_member "name" e = Some "thread_name" then
          Option.bind (Json.member "args" e) (str_member "name")
        else None)
      events
  in
  Alcotest.(check (list string)) "one named track per node"
    [ "coord"; "sub0"; "sub1" ] (List.sort compare threads);
  List.iter
    (fun e ->
      let num name =
        match Option.bind (Json.member name e) Json.to_float_opt with
        | Some v -> v
        | None -> Alcotest.failf "X event lacks %s" name
      in
      Alcotest.(check bool) "ts/dur in scaled microseconds" true
        (num "ts" >= 0.0
        && num "dur" >= 0.0
        && num "ts" +. num "dur" <= 5.5 *. T.default_time_scale);
      Alcotest.(check bool) "args carry the node" true
        (Option.bind (Json.member "args" e) (str_member "node") <> None))
    complete

let test_chrome_trace_span_times_scale () =
  let tree, world = default_run () in
  let j = T.chrome_trace world.Tpc.Run.trace ~tree in
  let spans = T.spans world.Tpc.Run.trace ~tree in
  let events =
    match Json.member "traceEvents" j with Some (Json.List l) -> l | _ -> []
  in
  (* every span appears with ts = sp_start * scale on the right track *)
  List.iter
    (fun (s : Obs.Span.t) ->
      let found =
        List.exists
          (fun e ->
            str_member "ph" e = Some "X"
            && str_member "name" e = Some s.Obs.Span.sp_name
            && Option.bind (Json.member "args" e) (str_member "node")
               = Some s.Obs.Span.sp_node
            && Option.bind (Json.member "ts" e) Json.to_float_opt
               = Some (s.Obs.Span.sp_start *. T.default_time_scale))
          events
      in
      Alcotest.(check bool)
        (Printf.sprintf "span %s/%s exported" s.Obs.Span.sp_node
           s.Obs.Span.sp_name)
        true found)
    spans

(* --- structured events (JSONL) --------------------------------------- *)

let test_events_jsonl () =
  let _tree, world = default_run () in
  let trace = world.Tpc.Run.trace in
  let jsonl = T.events_to_jsonl trace in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' jsonl)
  in
  Alcotest.(check int) "one line per event"
    (List.length (Tpc.Trace.events trace))
    (List.length lines);
  List.iter
    (fun line ->
      let j = Json.parse line in
      Alcotest.(check bool) "every line has type and time" true
        (str_member "type" j <> None
        && Option.bind (Json.member "time" j) Json.to_float_opt <> None))
    lines;
  let first = Json.parse (List.hd lines) in
  Alcotest.(check (option string)) "first event is the Prepare send"
    (Some "send") (str_member "type" first);
  Alcotest.(check (option string)) "with its label" (Some "Prepare")
    (str_member "label" first)

let test_event_to_json_fields () =
  let e =
    Tpc.Trace.Log_write
      { time = 1.0; node = "n"; kind = Wal.Log_record.Prepared; forced = true;
        rm = false }
  in
  let j = T.event_to_json e in
  Alcotest.(check (option string)) "kind" (Some "prepared")
    (str_member "kind" j);
  Alcotest.(check bool) "forced flag survives" true
    (Json.member "forced" j = Some (Json.Bool true));
  ignore (members j)

let test_empty_trace_jsonl () =
  let t = Tpc.Trace.create () in
  Alcotest.(check string) "empty trace, empty output" ""
    (T.events_to_jsonl t)

let suite =
  [
    Alcotest.test_case "all phases on all nodes" `Quick
      test_all_phases_all_nodes;
    Alcotest.test_case "parent links mirror the tree" `Quick
      test_parent_links_mirror_tree;
    Alcotest.test_case "durations consistent with the trace" `Quick
      test_durations_consistent_with_trace;
    Alcotest.test_case "absent node has no spans" `Quick
      test_absent_node_has_no_spans;
    Alcotest.test_case "chrome trace shape" `Quick test_chrome_trace_shape;
    Alcotest.test_case "chrome trace span times" `Quick
      test_chrome_trace_span_times_scale;
    Alcotest.test_case "events JSONL" `Quick test_events_jsonl;
    Alcotest.test_case "event field mapping" `Quick test_event_to_json_fields;
    Alcotest.test_case "empty trace" `Quick test_empty_trace_jsonl;
  ]
