(* Tests of the write-ahead log: force semantics, crash behaviour, group
   commit batching, statistics. *)

module E = Simkernel.Engine
module L = Wal.Log
module R = Wal.Log_record

let rec_kinds log = List.map (fun (r : R.t) -> r.kind) (L.durable log)

let mk ?(config = L.default_config) () =
  let e = E.create () in
  (e, L.create e ~node:"n" ~config ())

let record kind = R.make ~txn:"t1" ~node:"n" kind

let test_append_is_volatile () =
  let _e, log = mk () in
  L.append log (record R.End);
  Alcotest.(check int) "nothing durable yet" 0 (List.length (L.durable log));
  Alcotest.(check int) "but visible in all_records" 1
    (List.length (L.all_records log))

let test_force_hardens () =
  let e, log = mk () in
  let done_ = ref false in
  L.force log (record R.Committed) (fun () -> done_ := true);
  Alcotest.(check bool) "continuation waits for the I/O" false !done_;
  E.run e;
  Alcotest.(check bool) "continuation ran" true !done_;
  Alcotest.(check (list string)) "record durable" [ "committed" ]
    (rec_kinds log |> List.map R.kind_to_string)

let test_force_covers_earlier_appends () =
  let e, log = mk () in
  L.append log (record R.Prepared);
  L.force log (record R.Committed) (fun () -> ());
  E.run e;
  Alcotest.(check int) "both records durable after one force" 2
    (List.length (L.durable log))

let test_crash_loses_buffer () =
  let e, log = mk () in
  L.force log (record R.Prepared) (fun () -> ());
  E.run e;
  L.append log (record R.Committed);
  L.crash log;
  Alcotest.(check (list string)) "only forced record survives" [ "prepared" ]
    (rec_kinds log |> List.map R.kind_to_string);
  Alcotest.(check int) "volatile tail gone from all_records" 1
    (List.length (L.all_records log))

let test_crash_drops_inflight_force () =
  let e, log = mk () in
  let done_ = ref false in
  L.force log (record R.Committed) (fun () -> done_ := true);
  L.crash log;
  E.run e;
  Alcotest.(check bool) "in-flight continuation dropped" false !done_;
  Alcotest.(check int) "record not durable" 0 (List.length (L.durable log))

let test_io_latency () =
  let e, log = mk () in
  let at = ref nan in
  L.force log (record R.Committed) (fun () -> at := E.now e);
  E.run e;
  Alcotest.(check (float 1e-9)) "force completes after io_latency" 0.5 !at

let test_stats_counts () =
  let e, log = mk () in
  L.append log (record R.Prepared);
  L.force log (record R.Committed) (fun () -> ());
  L.append log (record R.End);
  E.run e;
  let s = L.stats log in
  Alcotest.(check int) "three writes" 3 s.L.writes;
  Alcotest.(check int) "one forced write" 1 s.L.forced_writes;
  Alcotest.(check int) "one physical I/O" 1 s.L.force_ios

let test_reset_stats () =
  let e, log = mk () in
  L.force log (record R.Committed) (fun () -> ());
  E.run e;
  L.reset_stats log;
  let s = L.stats log in
  Alcotest.(check int) "writes reset" 0 s.L.writes;
  Alcotest.(check int) "ios reset" 0 s.L.force_ios;
  Alcotest.(check int) "durable records kept" 1 (List.length (L.durable log))

let test_records_for_filters_by_txn () =
  let e, log = mk () in
  L.force log (R.make ~txn:"a" ~node:"n" R.Committed) (fun () -> ());
  L.force log (R.make ~txn:"b" ~node:"n" R.Committed) (fun () -> ());
  E.run e;
  Alcotest.(check int) "one record for txn a" 1
    (List.length (L.records_for log ~txn:"a"))

let test_flush_without_record () =
  let e, log = mk () in
  L.append log (record R.Prepared);
  let done_ = ref false in
  L.flush log (fun () -> done_ := true);
  E.run e;
  Alcotest.(check bool) "flush continuation ran" true !done_;
  Alcotest.(check int) "appended record durable" 1 (List.length (L.durable log))

let test_flush_on_clean_log_is_immediate () =
  let _e, log = mk () in
  let done_ = ref false in
  L.flush log (fun () -> done_ := true);
  Alcotest.(check bool) "nothing to flush: immediate" true !done_

let group_config size timeout =
  { L.io_latency = 0.5; group = Some { L.size; timeout } }

let test_group_commit_batches_by_size () =
  let e, log = mk ~config:(group_config 3 100.0) () in
  let done_count = ref 0 in
  for _ = 1 to 3 do
    L.force log (record R.Committed) (fun () -> incr done_count)
  done;
  E.run e;
  Alcotest.(check int) "all three continuations ran" 3 !done_count;
  Alcotest.(check int) "one physical I/O for the batch" 1 (L.stats log).L.force_ios;
  Alcotest.(check int) "three forced writes recorded" 3
    (L.stats log).L.forced_writes

let test_group_commit_timeout_flushes_partial_batch () =
  let e, log = mk ~config:(group_config 10 2.0) () in
  let done_ = ref false in
  L.force log (record R.Committed) (fun () -> done_ := true);
  E.run_until e 1.0;
  Alcotest.(check bool) "still waiting for the group" false !done_;
  E.run e;
  Alcotest.(check bool) "timer flushed the partial batch" true !done_;
  Alcotest.(check int) "one I/O" 1 (L.stats log).L.force_ios

let test_group_commit_multiple_batches () =
  let e, log = mk ~config:(group_config 2 100.0) () in
  for _ = 1 to 6 do
    L.force log (record R.Committed) (fun () -> ())
  done;
  E.run e;
  Alcotest.(check int) "six requests, three I/Os" 3 (L.stats log).L.force_ios

let test_group_commit_crash_drops_batch () =
  let e, log = mk ~config:(group_config 5 100.0) () in
  let done_ = ref false in
  L.force log (record R.Committed) (fun () -> done_ := true);
  L.crash log;
  E.run e;
  Alcotest.(check bool) "batched continuation dropped on crash" false !done_;
  Alcotest.(check int) "record lost" 0 (List.length (L.durable log))

let test_group_commit_delays_commit () =
  (* Table 1's group-commit disadvantage: individual transactions wait. *)
  let e1, solo = mk () in
  let t_solo = ref nan in
  L.force solo (record R.Committed) (fun () -> t_solo := E.now e1);
  E.run e1;
  let e2, grouped = mk ~config:(group_config 8 4.0) () in
  let t_grouped = ref nan in
  L.force grouped (record R.Committed) (fun () -> t_grouped := E.now e2);
  E.run e2;
  Alcotest.(check bool)
    (Printf.sprintf "grouped commit (%.1f) waits longer than solo (%.1f)"
       !t_grouped !t_solo)
    true (!t_grouped > !t_solo)

let test_order_preserved () =
  let e, log = mk () in
  L.append log (record R.Prepared);
  L.force log (record R.Committed) (fun () -> ());
  L.append log (record R.End);
  L.force log (record R.Agent) (fun () -> ());
  E.run e;
  Alcotest.(check (list string)) "log order is append order"
    [ "prepared"; "committed"; "end"; "agent" ]
    (List.map R.kind_to_string (rec_kinds log))

let suite =
  [
    Alcotest.test_case "append is volatile" `Quick test_append_is_volatile;
    Alcotest.test_case "force hardens" `Quick test_force_hardens;
    Alcotest.test_case "force covers earlier appends" `Quick
      test_force_covers_earlier_appends;
    Alcotest.test_case "crash loses buffer" `Quick test_crash_loses_buffer;
    Alcotest.test_case "crash drops in-flight force" `Quick
      test_crash_drops_inflight_force;
    Alcotest.test_case "io latency" `Quick test_io_latency;
    Alcotest.test_case "stats counts" `Quick test_stats_counts;
    Alcotest.test_case "reset stats" `Quick test_reset_stats;
    Alcotest.test_case "records_for filters" `Quick test_records_for_filters_by_txn;
    Alcotest.test_case "flush without record" `Quick test_flush_without_record;
    Alcotest.test_case "flush on clean log immediate" `Quick
      test_flush_on_clean_log_is_immediate;
    Alcotest.test_case "group commit batches by size" `Quick
      test_group_commit_batches_by_size;
    Alcotest.test_case "group commit timeout flush" `Quick
      test_group_commit_timeout_flushes_partial_batch;
    Alcotest.test_case "group commit multiple batches" `Quick
      test_group_commit_multiple_batches;
    Alcotest.test_case "group commit crash drops batch" `Quick
      test_group_commit_crash_drops_batch;
    Alcotest.test_case "group commit delays individual commit" `Quick
      test_group_commit_delays_commit;
    Alcotest.test_case "order preserved" `Quick test_order_preserved;
  ]
