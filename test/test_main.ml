let () =
  Alcotest.run "tpc"
    [
      ("engine", Test_engine.suite);
      ("kernel-diff", Test_kernel_diff.suite);
      ("types-msg", Test_types_msg.suite);
      ("rng", Test_rng.suite);
      ("wal", Test_wal.suite);
      ("netsim", Test_netsim.suite);
      ("lockmgr", Test_lockmgr.suite);
      ("kvstore", Test_kvstore.suite);
      ("cost-model", Test_cost_model.suite);
      ("trace", Test_trace.suite);
      ("protocol", Test_protocol.suite);
      ("conformance", Test_conformance.suite);
      ("optimizations", Test_optimizations.suite);
      ("failures", Test_failures.suite);
      ("heuristics", Test_heuristics.suite);
      ("crash-matrix", Test_crash_matrix.suite);
      ("sequences", Test_sequences.suite);
      ("lossy", Test_lossy.suite);
      ("retransmit", Test_retransmit.suite);
      ("chaos", Test_chaos.suite);
      ("scenarios", Test_scenarios.suite);
      ("contention", Test_contention.suite);
      ("stream", Test_stream.suite);
      ("properties", Test_properties.suite);
      ("opts-api", Test_opts_api.suite);
      ("mixer", Test_mixer.suite);
      ("obs", Test_obs.suite);
      ("causal", Test_causal.suite);
      ("telemetry", Test_telemetry.suite);
      ("parallel", Test_parallel.suite);
      ("driver", Test_driver.suite);
    ]
