(* Multi-transaction sequences through one complex: the dynamic
   OK-TO-LEAVE-OUT protocol (Section 4, "Leaving Inactive Partners Out"),
   repeated commits, and cross-transaction state. *)

open Tpc.Types
open Test_util
module R = Tpc.Run

let server name = member ~leave_out_ok:true name

(* coordinator with one always-active member and one pure server *)
let tree = Tree (member "C", [ Tree (member "A", []); Tree (server "S", []) ])

let work_plan plan ~txn ~node =
  match List.assoc_opt (txn, node) plan with
  | Some w -> w
  | None -> R.Work_update

let leave_out_cfg = cfg ~opts:{ no_opts with leave_out = true } ()

let test_idle_suspended_member_left_out () =
  (* txn-1: everyone works, S's YES carries OK-TO-LEAVE-OUT and commits;
     txn-2: S has nothing to do and is left out entirely *)
  let plan = [ (("t2", "S"), R.Work_none) ] in
  let results, w =
    R.commit_sequence ~config:leave_out_cfg ~work:(work_plan plan)
      ~txns:[ "t1"; "t2" ] tree
  in
  let m1 = List.assoc "t1" results and m2 = List.assoc "t2" results in
  Alcotest.(check (option outcome)) "t1 commits" (Some Committed)
    m1.Tpc.Metrics.outcome;
  Alcotest.(check (option outcome)) "t2 commits" (Some Committed)
    m2.Tpc.Metrics.outcome;
  (* t1: 3 members = 8 flows; t2: S left out = 4 flows *)
  Alcotest.(check int) "t1 engages everyone" 8 m1.Tpc.Metrics.flows;
  Alcotest.(check int) "t2 leaves S out" 4 m2.Tpc.Metrics.flows;
  (* S saw no message at all in t2 *)
  let to_s =
    List.filter
      (function
        | Tpc.Trace.Send { dst = "S"; _ } | Tpc.Trace.Send { src = "S"; _ } ->
            true
        | _ -> false)
      (Tpc.Trace.events w.R.trace)
  in
  Alcotest.(check int) "no flow touches S in t2" 0 (List.length to_s)

let test_active_member_never_left_out () =
  (* a suspended member that receives work again is re-engaged *)
  let plan = [ (("t2", "S"), R.Work_none) ] in
  let results, _w =
    R.commit_sequence ~config:leave_out_cfg ~work:(work_plan plan)
      ~txns:[ "t1"; "t2"; "t3" ] tree
  in
  let m3 = List.assoc "t3" results in
  Alcotest.(check int) "t3 gives S work again: full tree" 8
    m3.Tpc.Metrics.flows;
  Alcotest.(check (option outcome)) "t3 commits" (Some Committed)
    m3.Tpc.Metrics.outcome

let test_suspension_is_a_protected_variable () =
  (* the OK-TO-LEAVE-OUT indication takes effect only if the transaction
     commits: after an aborted t1, an idle S must still be engaged in t2 *)
  let abort_tree =
    Tree (member "C", [ Tree (member ~vote_no:true "A", []); Tree (server "S", []) ])
  in
  let plan = [ (("t2", "S"), R.Work_none) ] in
  let results, _w =
    R.commit_sequence ~config:leave_out_cfg ~work:(work_plan plan)
      ~txns:[ "t1"; "t2" ] abort_tree
  in
  let m1 = List.assoc "t1" results and m2 = List.assoc "t2" results in
  Alcotest.(check (option outcome)) "t1 aborts" (Some Aborted)
    m1.Tpc.Metrics.outcome;
  (* S was not suspended (t1 aborted), so t2 must contact it *)
  Alcotest.(check bool) "t2 still engages S" true (m2.Tpc.Metrics.flows > 4)

let test_non_server_member_never_suspended () =
  (* A (no leave_out_ok declaration) idle in t2: still engaged *)
  let plan = [ (("t2", "A"), R.Work_none) ] in
  let results, _w =
    R.commit_sequence ~config:leave_out_cfg ~work:(work_plan plan)
      ~txns:[ "t1"; "t2" ] tree
  in
  let m2 = List.assoc "t2" results in
  Alcotest.(check int) "A engaged despite being idle" 8 m2.Tpc.Metrics.flows

let test_leave_out_requires_opt_in_sequences () =
  let plan = [ (("t2", "S"), R.Work_none) ] in
  let results, _w =
    R.commit_sequence ~config:(cfg ()) ~work:(work_plan plan)
      ~txns:[ "t1"; "t2" ] tree
  in
  let m2 = List.assoc "t2" results in
  Alcotest.(check int) "without the optimization S is engaged" 8
    m2.Tpc.Metrics.flows

let test_whole_subtree_must_be_idle () =
  (* a suspended intermediate server over an active member cannot be left
     out: "all resources subordinate to the partner are similarly
     suspended" *)
  let deep =
    Tree
      ( member "C",
        [ Tree (server "mid", [ Tree (server "leaf", []) ]) ] )
  in
  let plan = [ (("t2", "mid"), R.Work_none) (* leaf still works *) ] in
  let results, _w =
    R.commit_sequence ~config:leave_out_cfg ~work:(work_plan plan)
      ~txns:[ "t1"; "t2" ] deep
  in
  let m2 = List.assoc "t2" results in
  Alcotest.(check (option outcome)) "t2 commits" (Some Committed)
    m2.Tpc.Metrics.outcome;
  Alcotest.(check int) "mid engaged because its leaf has work" 8
    m2.Tpc.Metrics.flows

let test_fully_idle_subtree_left_out () =
  let deep =
    Tree
      ( member "C",
        [
          Tree (member "A", []);
          Tree (server "mid", [ Tree (server "leaf", []) ]);
        ] )
  in
  let plan = [ (("t2", "mid"), R.Work_none); (("t2", "leaf"), R.Work_none) ] in
  let results, _w =
    R.commit_sequence ~config:leave_out_cfg ~work:(work_plan plan)
      ~txns:[ "t1"; "t2" ] deep
  in
  let m1 = List.assoc "t1" results and m2 = List.assoc "t2" results in
  Alcotest.(check int) "t1 engages all four members" 12 m1.Tpc.Metrics.flows;
  Alcotest.(check int) "t2 leaves the whole idle subtree out" 4
    m2.Tpc.Metrics.flows

let test_repeated_commits_accumulate_state () =
  (* three commits through the same complex: all data lands, counts are
     identical per transaction *)
  let results, w =
    R.commit_sequence ~config:(cfg ())
      ~work:(fun ~txn:_ ~node:_ -> R.Work_update)
      ~txns:[ "t1"; "t2"; "t3" ] tree
  in
  List.iter
    (fun (txn, m) ->
      Alcotest.(check (option outcome)) (txn ^ " commits") (Some Committed)
        m.Tpc.Metrics.outcome;
      Alcotest.(check int) (txn ^ " costs 8 flows") 8 m.Tpc.Metrics.flows)
    results;
  (* the last writer wins on each member's account *)
  Alcotest.(check (option string)) "final state is t3's"
    (Some "upd-by-t3")
    (Kvstore.committed_value (R.kv w "A") "acct-A")

let test_read_only_changes_per_transaction () =
  (* the same member can be an updater in one transaction and a read-only
     voter in the next - the optimization is per-transaction, not static *)
  let plan = [ (("t2", "S"), R.Work_read) ] in
  let results, _w =
    R.commit_sequence
      ~config:(cfg ~opts:{ no_opts with read_only = true } ())
      ~work:(work_plan plan) ~txns:[ "t1"; "t2" ] tree
  in
  let m1 = List.assoc "t1" results and m2 = List.assoc "t2" results in
  Alcotest.(check int) "t1: full participation" 8 m1.Tpc.Metrics.flows;
  Alcotest.(check int) "t2: S votes read-only (-2 flows)" 6 m2.Tpc.Metrics.flows

let test_crash_forgets_suspension () =
  (* suspension is conversation state: a parent crash kills the sessions,
     so a restarted coordinator conservatively re-engages the previously
     suspended server even if it is idle *)
  let plan = [ (("t2", "S"), R.Work_none) ] in
  let w = R.setup ~config:leave_out_cfg tree in
  (* t1: normal commit suspends S *)
  R.perform_work w ~txn:"t1";
  Tpc.Participant.begin_commit (R.participant w "C") ~txn:"t1";
  Simkernel.Engine.run w.R.engine;
  Alcotest.(check bool) "S suspended after t1" true
    (Tpc.Participant.is_suspended (R.participant w "C") ~child:"S");
  (* the coordinator crashes and restarts between transactions *)
  Tpc.Participant.force_crash (R.participant w "C");
  Tpc.Participant.force_restart (R.participant w "C");
  Simkernel.Engine.run w.R.engine;
  Alcotest.(check bool) "suspension forgotten after crash" false
    (Tpc.Participant.is_suspended (R.participant w "C") ~child:"S");
  (* t2 with S idle: S is engaged anyway *)
  Tpc.Trace.clear w.R.trace;
  Tpc.Participant.clear_idle_children (R.participant w "C") ~txn:"t2";
  (match work_plan plan ~txn:"t2" ~node:"S" with
  | R.Work_none ->
      Tpc.Participant.note_idle_child (R.participant w "C") ~txn:"t2" ~child:"S"
  | _ -> ());
  R.perform_work w ~txn:"t2";
  Tpc.Participant.begin_commit (R.participant w "C") ~txn:"t2";
  Simkernel.Engine.run w.R.engine;
  Alcotest.(check int) "t2 re-engages S despite idleness" 8
    (Tpc.Trace.flows w.R.trace)

let suite =
  [
    Alcotest.test_case "idle suspended member left out" `Quick
      test_idle_suspended_member_left_out;
    Alcotest.test_case "re-engaged when given work" `Quick
      test_active_member_never_left_out;
    Alcotest.test_case "suspension is a protected variable" `Quick
      test_suspension_is_a_protected_variable;
    Alcotest.test_case "non-server member never suspended" `Quick
      test_non_server_member_never_suspended;
    Alcotest.test_case "leave-out requires the optimization" `Quick
      test_leave_out_requires_opt_in_sequences;
    Alcotest.test_case "whole subtree must be idle" `Quick
      test_whole_subtree_must_be_idle;
    Alcotest.test_case "fully idle subtree left out" `Quick
      test_fully_idle_subtree_left_out;
    Alcotest.test_case "repeated commits accumulate state" `Quick
      test_repeated_commits_accumulate_state;
    Alcotest.test_case "read-only is per-transaction" `Quick
      test_read_only_changes_per_transaction;
    Alcotest.test_case "crash forgets suspension" `Quick
      test_crash_forgets_suspension;
  ]
