(* Protocol-conformance suite: every protocol in the registry - the
   paper's three families and anything registered later - must satisfy the
   contract {!Tpc.Protocol_intf} documents, and the registry lookups the
   CLI depends on must round-trip.  A custom protocol registered here
   end-to-end proves the pluggability claim: behavior flows entirely
   through the record, with no participant special-casing. *)

open Tpc.Types
open Test_util
module P = Tpc.Protocol

let all () = P.all ()

(* ------------------------------------------------------------------ *)
(* Registry round-trips                                                *)
(* ------------------------------------------------------------------ *)

let test_roundtrip_flag () =
  List.iter
    (fun (impl : P.t) ->
      Alcotest.(check bool)
        (impl.P.p_flag ^ " parses to its own id")
        true
        (P.of_string impl.P.p_flag = Some impl.P.p_id))
    (all ())

let test_roundtrip_canonical_name () =
  List.iter
    (fun (impl : P.t) ->
      let name = protocol_to_string impl.P.p_id in
      Alcotest.(check bool)
        (name ^ " parses to its own id")
        true
        (P.of_string name = Some impl.P.p_id))
    (all ())

let test_case_insensitive () =
  List.iter
    (fun (impl : P.t) ->
      let shout = String.uppercase_ascii impl.P.p_flag in
      Alcotest.(check bool)
        (shout ^ " resolves case-insensitively")
        true
        (P.of_string shout = Some impl.P.p_id))
    (all ())

let test_resolve_is_identity () =
  List.iter
    (fun (impl : P.t) ->
      Alcotest.(check bool)
        (impl.P.p_flag ^ " resolve returns the registered value")
        true
        (P.resolve impl.P.p_id == impl);
      Alcotest.(check string)
        (impl.P.p_flag ^ " flag round-trips")
        impl.P.p_flag (P.flag impl.P.p_id))
    (all ())

let test_builtins_listed () =
  let flags = P.flags () in
  List.iter
    (fun f ->
      Alcotest.(check bool) (f ^ " registered") true (List.mem f flags))
    [ "basic"; "pa"; "pn" ]

let test_unknown_name () =
  Alcotest.(check bool)
    "unknown spelling rejected" true
    (P.of_string "no-such-protocol" = None);
  Alcotest.check_raises "unregistered Custom rejected"
    (Invalid_argument
       "Protocol.resolve: no implementation registered for \"no-such-protocol\"")
    (fun () -> ignore (P.resolve (Custom "no-such-protocol")))

let test_conflicting_registration () =
  let impostor = { Tpc.Protocol_pa.protocol with P.p_id = Custom "impostor" } in
  (try
     P.register impostor;
     Alcotest.fail "registering a second protocol under \"pa\" must raise"
   with Invalid_argument _ -> ());
  (* re-registering the same value is a no-op *)
  P.register Tpc.Protocol_pa.protocol;
  Alcotest.(check bool)
    "registry unchanged" true
    (P.resolve Presumed_abort == Tpc.Protocol_pa.protocol)

(* ------------------------------------------------------------------ *)
(* Interface-contract invariants, checked for every registered protocol *)
(* ------------------------------------------------------------------ *)

let forces_committed name = function
  | P.Log_force k ->
      Alcotest.(check bool)
        (name ^ " forces the committed record")
        true
        (k = Wal.Log_record.Committed)
  | P.Log_append _ | P.Log_none ->
      Alcotest.fail (name ^ ": a commit decision must be forced before acks")

let test_vote_is_durable () =
  List.iter
    (fun (impl : P.t) ->
      let log = impl.P.p_voter_log in
      Alcotest.(check bool)
        (impl.P.p_flag ^ " voter forces at least one record")
        true (log <> []);
      Alcotest.(check bool)
        (impl.P.p_flag ^ " voter log ends with prepared")
        true
        (List.nth log (List.length log - 1) = Wal.Log_record.Prepared))
    (all ())

let test_commit_decision_is_forced () =
  List.iter
    (fun (impl : P.t) ->
      forces_committed
        (impl.P.p_flag ^ " coordinator")
        (impl.P.p_decision_log Committed);
      forces_committed
        (impl.P.p_flag ^ " subordinate")
        (impl.P.p_subordinate_decision_log Committed))
    (all ())

let test_abort_presumption_consistent () =
  (* a protocol that writes nothing on abort is presuming abort; it must
     not then wait for abort acknowledgments nobody owes it *)
  List.iter
    (fun (impl : P.t) ->
      match impl.P.p_decision_log Aborted with
      | P.Log_none ->
          Alcotest.(check bool)
            (impl.P.p_flag ^ " logless abort implies no abort acks")
            false impl.P.p_ack_on_abort
      | P.Log_force _ | P.Log_append _ -> ())
    (all ())

let test_recovery_table () =
  let open Wal.Log_record in
  List.iter
    (fun (impl : P.t) ->
      let f = impl.P.p_flag in
      let recover = impl.P.p_recover in
      Alcotest.(check bool)
        (f ^ " empty log recovers to nothing")
        true
        (recover [] = P.Rec_none);
      Alcotest.(check bool)
        (f ^ " end record closes the transaction")
        true
        (recover [ End; Committed; Prepared ] = P.Rec_none);
      Alcotest.(check bool)
        (f ^ " committed outcome is redriven")
        true
        (recover [ Committed; Prepared ] = P.Rec_redrive Committed);
      Alcotest.(check bool)
        (f ^ " aborted outcome is redriven")
        true
        (recover [ Aborted; Prepared ] = P.Rec_redrive Aborted);
      Alcotest.(check bool)
        (f ^ " bare prepared record is in doubt")
        true
        (recover [ Prepared ] = P.Rec_in_doubt))
    (all ())

(* ------------------------------------------------------------------ *)
(* Live-run conformance: every registered protocol commits and aborts   *)
(* atomically on the same trees                                         *)
(* ------------------------------------------------------------------ *)

let test_every_protocol_commits () =
  List.iter
    (fun (impl : P.t) ->
      let config = default_config |> with_protocol impl.P.p_id in
      let m, w = run ~config (three ()) in
      check_outcome (impl.P.p_flag ^ " commits") (Some Committed) m;
      check_consistent
        (impl.P.p_flag ^ " commit consistent")
        w ~txn:"txn-1" ~outcome:Committed)
    (all ())

let test_every_protocol_aborts () =
  List.iter
    (fun (impl : P.t) ->
      let config = default_config |> with_protocol impl.P.p_id in
      let tree = three ~s:(member ~vote_no:true "S") () in
      let m, w = run ~config tree in
      check_outcome (impl.P.p_flag ^ " aborts on NO") (Some Aborted) m;
      check_consistent
        (impl.P.p_flag ^ " abort consistent")
        w ~txn:"txn-1" ~outcome:Aborted)
    (all ())

(* ------------------------------------------------------------------ *)
(* Regression: the CLI's --protocol pn spelling is the pre-refactor     *)
(* Presumed_nothing, byte for byte                                      *)
(* ------------------------------------------------------------------ *)

let trace_of config tree =
  let _m, w = run ~config tree in
  Tpc.Trace.to_string w.Tpc.Run.trace

let test_pn_flag_matches_variant () =
  let via_flag =
    match P.of_string "pn" with
    | Some p -> default_config |> with_protocol p
    | None -> Alcotest.fail "pn not registered"
  in
  let via_variant = default_config |> with_protocol Presumed_nothing in
  List.iter
    (fun tree ->
      Alcotest.(check string)
        "--protocol pn trace identical to Presumed_nothing"
        (trace_of via_variant tree) (trace_of via_flag tree))
    [ two (); three (); three ~s:(member ~vote_no:true "S") () ]

let test_pn_counts_match_cost_model () =
  let config =
    match P.of_string "pn" with
    | Some p -> default_config |> with_protocol p
    | None -> Alcotest.fail "pn not registered"
  in
  let m, _w = run ~config (two ()) in
  check_counts "--protocol pn matches Table 2"
    (Tpc.Cost_model.presumed_nothing ~n:2 ()) m

(* ------------------------------------------------------------------ *)
(* Pluggability end to end: a protocol registered by a client shows up  *)
(* in the CLI surface and runs through the whole stack unchanged        *)
(* ------------------------------------------------------------------ *)

let demo : P.t =
  {
    Tpc.Protocol_pa.protocol with
    P.p_id = Custom "conformance-demo";
    p_flag = "confdemo";
    p_aliases = [ "demo" ];
    p_description = "test-registered PA clone";
  }

let () = P.register demo

let test_custom_protocol_runs () =
  let id =
    match P.of_string "demo" with
    | Some p -> p
    | None -> Alcotest.fail "alias lookup failed"
  in
  Alcotest.(check bool)
    "alias and flag resolve to the same id" true
    (P.of_string "confdemo" = Some id);
  Alcotest.(check string) "flag printed for JSONL" "confdemo" (P.flag id);
  let config = default_config |> with_protocol id in
  let pa = default_config |> with_protocol Presumed_abort in
  List.iter
    (fun tree ->
      Alcotest.(check string)
        "PA clone behaves byte-identically to PA"
        (trace_of pa tree) (trace_of config tree))
    [ two (); three (); three ~s:(member ~vote_no:true "S") () ];
  let m, w = run ~config (three ()) in
  check_outcome "custom protocol commits" (Some Committed) m;
  check_consistent "custom protocol consistent" w ~txn:"txn-1"
    ~outcome:Committed

(* ------------------------------------------------------------------ *)
(* Adversary hardening: forged payloads an honest node can detect from  *)
(* topology and its own durable state are rejected, in every family     *)
(* ------------------------------------------------------------------ *)

(* Run a commit to completion, deliver [payloads] claiming to be from
   [src] at [dst], drive the engine again, and return how many were
   rejected there (every test world starts at zero). *)
let forge ~config ~src ~dst payloads =
  let m, w = run ~config (three ()) in
  check_outcome "baseline commit succeeds" (Some Committed) m;
  Tpc.Net.inject w.Tpc.Run.net ~src ~dst payloads;
  Simkernel.Engine.run w.Tpc.Run.engine;
  (Tpc.Participant.rejected_forgeries (Tpc.Run.participant w dst), w)

let test_forged_conflicting_decision_rejected () =
  List.iter
    (fun (impl : P.t) ->
      let config = default_config |> with_protocol impl.P.p_id in
      (* S durably committed txn-1; a retransmitted ABORT - even from its
         real parent M - contradicts that and must be refused *)
      let rejected, w =
        forge ~config ~src:"M" ~dst:"S"
          [ Tpc.Msg.Decision_msg { txn = "txn-1"; outcome = Aborted; cert = None } ]
      in
      Alcotest.(check int)
        (impl.P.p_flag ^ " conflicting decision rejected")
        1 rejected;
      check_consistent
        (impl.P.p_flag ^ " state unchanged after forgery")
        w ~txn:"txn-1" ~outcome:Committed)
    (all ())

let test_forged_stranger_payloads_rejected () =
  List.iter
    (fun (impl : P.t) ->
      let config = default_config |> with_protocol impl.P.p_id in
      (* in the C -> M -> S chain, S is a topology stranger to C *)
      let yes = Vote_yes { reliable = false; leave_out_ok = false } in
      let rejected, _w =
        forge ~config ~src:"S" ~dst:"C"
          [
            Tpc.Msg.Decision_msg
              { txn = "ghost-1"; outcome = Committed; cert = None };
            Tpc.Msg.Vote_msg
              {
                txn = "ghost-2";
                vote = yes;
                delegation = false;
                unsolicited = true;
                implied_ack = false;
                tag = "";
              };
            Tpc.Msg.Inquiry_reply
              { txn = "ghost-3"; outcome = Some Committed; cert = None };
          ]
      in
      Alcotest.(check int)
        (impl.P.p_flag ^ " stranger decision/vote/reply all rejected")
        3 rejected)
    (all ())

let test_forged_ack_and_downward_vote_rejected () =
  List.iter
    (fun (impl : P.t) ->
      let config = default_config |> with_protocol impl.P.p_id in
      (* M is S's parent: acks only travel upward, and the only legal
         downward vote is a delegation handoff *)
      let yes = Vote_yes { reliable = false; leave_out_ok = false } in
      let rejected, _w =
        forge ~config ~src:"M" ~dst:"S"
          [
            Tpc.Msg.Ack_msg { txn = "ghost-4"; damage = []; pending = false };
            Tpc.Msg.Vote_msg
              {
                txn = "ghost-5";
                vote = yes;
                delegation = false;
                unsolicited = false;
                implied_ack = false;
                tag = "";
              };
          ]
      in
      Alcotest.(check int)
        (impl.P.p_flag ^ " forged ack and downward vote rejected")
        2 rejected)
    (all ())

let test_pn_rejects_inquiries () =
  (* PN recovery is coordinator-owned: subordinates never inquire, so an
     Inquiry is a protocol violation under PN - and legal under PA, where
     the same message must still be admitted *)
  let inquiry = [ Tpc.Msg.Inquiry { txn = "txn-1" } ] in
  let rejected_pn, _ =
    forge
      ~config:(default_config |> with_protocol Presumed_nothing)
      ~src:"S" ~dst:"M" inquiry
  in
  Alcotest.(check int) "PN refuses a subordinate inquiry" 1 rejected_pn;
  let rejected_pa, _ =
    forge
      ~config:(default_config |> with_protocol Presumed_abort)
      ~src:"S" ~dst:"M" inquiry
  in
  Alcotest.(check int) "PA admits the same inquiry" 0 rejected_pa

(* ------------------------------------------------------------------ *)
(* Byzantine tolerance: a decision is only actionable under an f+1      *)
(* endorsement certificate, and recovery re-validates durable ones      *)
(* ------------------------------------------------------------------ *)

let bft_id () =
  match P.of_string "bft" with
  | Some p -> p
  | None -> Alcotest.fail "bft not registered"

let mk_cert ~quorum ~txn ~outcome ~votes =
  {
    Tpc.Msg.c_endorsements =
      List.init quorum (fun r -> Tpc.Msg.endorse ~replica:r ~txn ~outcome ~votes);
  }

let test_bft_registry_round_trip () =
  let id = bft_id () in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " resolves to bft") true
        (P.of_string name = Some id))
    [ "bft"; "BFT"; "byzantine"; "bft-2pc" ];
  Alcotest.(check string) "flag printed for JSONL" "bft" (P.flag id);
  Alcotest.(check bool) "bft is a certified protocol" true
    ((P.resolve id).P.p_certify <> None);
  List.iter
    (fun (impl : P.t) ->
      if impl.P.p_id <> id then
        Alcotest.(check bool)
          (impl.P.p_flag ^ " stays uncertified")
          true
          (impl.P.p_certify = None))
    (all ())

let test_bft_certificate_validity () =
  let valid f c ~txn ~outcome =
    Tpc.Msg.certificate_valid ~f ~txn ~outcome c
  in
  let c = mk_cert ~quorum:2 ~txn:"t" ~outcome:Committed ~votes:"v" in
  Alcotest.(check bool) "f+1 matching endorsements valid" true
    (valid 1 c ~txn:"t" ~outcome:Committed);
  Alcotest.(check bool) "below a larger quorum invalid" false
    (valid 2 c ~txn:"t" ~outcome:Committed);
  Alcotest.(check bool) "wrong outcome invalid" false
    (valid 1 c ~txn:"t" ~outcome:Aborted);
  Alcotest.(check bool) "wrong transaction invalid" false
    (valid 1 c ~txn:"u" ~outcome:Committed);
  let e = Tpc.Msg.endorse ~replica:0 ~txn:"t" ~outcome:Committed ~votes:"v" in
  Alcotest.(check bool) "duplicate replicas don't reach quorum" false
    (valid 1 { Tpc.Msg.c_endorsements = [ e; e ] } ~txn:"t" ~outcome:Committed);
  let e' = Tpc.Msg.endorse ~replica:1 ~txn:"t" ~outcome:Committed ~votes:"w" in
  Alcotest.(check bool) "endorsements over different vote sets invalid" false
    (valid 1
       { Tpc.Msg.c_endorsements = [ e; e' ] }
       ~txn:"t" ~outcome:Committed);
  Alcotest.(check bool) "out-of-ensemble replica index doesn't count" false
    (valid 1
       {
         Tpc.Msg.c_endorsements =
           [ e; Tpc.Msg.endorse ~replica:7 ~txn:"t" ~outcome:Committed ~votes:"v" ];
       }
       ~txn:"t" ~outcome:Committed)

let test_bft_cert_string_round_trip () =
  List.iter
    (fun (quorum, outcome) ->
      let c = mk_cert ~quorum ~txn:"txn-9" ~outcome ~votes:"a=yes|b=yes" in
      match Tpc.Msg.cert_of_string (Tpc.Msg.cert_to_string c) with
      | Some c' ->
          Alcotest.(check bool) "certificate round-trips its WAL form" true
            (c = c')
      | None -> Alcotest.fail "certificate string failed to parse")
    [ (1, Committed); (2, Aborted); (4, Committed) ]

let test_bft_refuses_uncertified_decision () =
  let config = default_config |> with_protocol (bft_id ()) in
  let rejected, w =
    forge ~config ~src:"M" ~dst:"S"
      [ Tpc.Msg.Decision_msg { txn = "txn-1"; outcome = Committed; cert = None } ]
  in
  Alcotest.(check int) "uncertified duplicate decision refused" 1 rejected;
  Alcotest.(check int) "counted as a certificate refusal" 1
    (Tpc.Participant.rejected_certs (Tpc.Run.participant w "S"));
  (* a certificate below the f+1 quorum is just as dead *)
  let low = mk_cert ~quorum:1 ~txn:"txn-1" ~outcome:Committed ~votes:"v" in
  Tpc.Net.inject w.Tpc.Run.net ~src:"M" ~dst:"S"
    [ Tpc.Msg.Decision_msg { txn = "txn-1"; outcome = Committed; cert = Some low } ];
  Simkernel.Engine.run w.Tpc.Run.engine;
  Alcotest.(check int) "sub-quorum certificate refused" 2
    (Tpc.Participant.rejected_certs (Tpc.Run.participant w "S"));
  (* the above-threshold sanity case at message level: an adversary
     holding f+1 replica keys mints a valid certificate and the honest
     node admits the decision - tolerance is conditional, not absolute *)
  let full = mk_cert ~quorum:2 ~txn:"txn-1" ~outcome:Committed ~votes:"stolen" in
  Tpc.Net.inject w.Tpc.Run.net ~src:"M" ~dst:"S"
    [ Tpc.Msg.Decision_msg { txn = "txn-1"; outcome = Committed; cert = Some full } ];
  Simkernel.Engine.run w.Tpc.Run.engine;
  Alcotest.(check int) "f+1 forged endorsements defeat the check" 2
    (Tpc.Participant.rejected_certs (Tpc.Run.participant w "S"));
  check_consistent "state still consistent throughout" w ~txn:"txn-1"
    ~outcome:Committed

let test_bft_refuses_uncertified_outcome_reply () =
  let config = default_config |> with_protocol (bft_id ()) in
  let rejected, _w =
    forge ~config ~src:"M" ~dst:"S"
      [
        Tpc.Msg.Inquiry_reply
          { txn = "txn-1"; outcome = Some Committed; cert = None };
      ]
  in
  Alcotest.(check int) "uncertified outcome reply refused" 1 rejected

let test_bft_refuses_mis_signed_vote () =
  let config = default_config |> with_protocol (bft_id ()) in
  let yes = Vote_yes { reliable = false; leave_out_ok = false } in
  let rejected, _w =
    forge ~config ~src:"S" ~dst:"M"
      [
        Tpc.Msg.Vote_msg
          {
            txn = "txn-1";
            vote = yes;
            delegation = false;
            unsolicited = true;
            implied_ack = false;
            tag = "not-the-signature";
          };
      ]
  in
  Alcotest.(check int) "vote with a wrong signature refused" 1 rejected

let test_bft_counts_match_cost_model () =
  let config = default_config |> with_protocol (bft_id ()) in
  let m, _w = run ~config (two ()) in
  check_counts "--protocol bft matches the tolerance cost row"
    (Tpc.Cost_model.bft ~f:1 ~n:2) m

let test_bft_restart_revalidates_certs () =
  let config = default_config |> with_protocol (bft_id ()) in
  let m, w = run ~config (three ()) in
  check_outcome "bft commits" (Some Committed) m;
  let s = Tpc.Run.participant w "S" in
  (* plant a corrupted durable certificate record, then crash/restart:
     recovery must refuse it (counted) while replaying the genuine ones *)
  let bogus =
    Wal.Log_record.make ~txn:"txn-1" ~node:"S" ~payload:"garbage"
      Wal.Log_record.Certificate
  in
  Wal.Log.force (Tpc.Participant.log s) bogus (fun () -> ());
  Simkernel.Engine.run w.Tpc.Run.engine;
  Tpc.Participant.force_crash s;
  Tpc.Participant.force_restart s;
  Simkernel.Engine.run w.Tpc.Run.engine;
  Alcotest.(check int) "corrupted durable certificate refused at recovery" 1
    (Tpc.Participant.rejected_certs s);
  check_consistent "recovered state consistent" w ~txn:"txn-1"
    ~outcome:Committed

let suite =
  [
    Alcotest.test_case "flag spellings round-trip" `Quick test_roundtrip_flag;
    Alcotest.test_case "canonical names round-trip" `Quick
      test_roundtrip_canonical_name;
    Alcotest.test_case "lookups are case-insensitive" `Quick
      test_case_insensitive;
    Alcotest.test_case "resolve returns registered values" `Quick
      test_resolve_is_identity;
    Alcotest.test_case "paper's three families registered" `Quick
      test_builtins_listed;
    Alcotest.test_case "unknown names rejected" `Quick test_unknown_name;
    Alcotest.test_case "name conflicts rejected" `Quick
      test_conflicting_registration;
    Alcotest.test_case "votes are durable before YES" `Quick
      test_vote_is_durable;
    Alcotest.test_case "commit decisions are forced" `Quick
      test_commit_decision_is_forced;
    Alcotest.test_case "abort presumption is consistent" `Quick
      test_abort_presumption_consistent;
    Alcotest.test_case "recovery table honours the log" `Quick
      test_recovery_table;
    Alcotest.test_case "every protocol commits atomically" `Quick
      test_every_protocol_commits;
    Alcotest.test_case "every protocol aborts atomically" `Quick
      test_every_protocol_aborts;
    Alcotest.test_case "--protocol pn equals Presumed_nothing" `Quick
      test_pn_flag_matches_variant;
    Alcotest.test_case "--protocol pn matches the cost model" `Quick
      test_pn_counts_match_cost_model;
    Alcotest.test_case "custom protocol plugs in end to end" `Quick
      test_custom_protocol_runs;
    Alcotest.test_case "forged conflicting decision rejected" `Quick
      test_forged_conflicting_decision_rejected;
    Alcotest.test_case "stranger payloads rejected" `Quick
      test_forged_stranger_payloads_rejected;
    Alcotest.test_case "forged ack and downward vote rejected" `Quick
      test_forged_ack_and_downward_vote_rejected;
    Alcotest.test_case "PN rejects subordinate inquiries" `Quick
      test_pn_rejects_inquiries;
    Alcotest.test_case "bft registry round-trip" `Quick
      test_bft_registry_round_trip;
    Alcotest.test_case "bft certificate validity rules" `Quick
      test_bft_certificate_validity;
    Alcotest.test_case "bft certificate WAL form round-trips" `Quick
      test_bft_cert_string_round_trip;
    Alcotest.test_case "bft refuses uncertified decisions" `Quick
      test_bft_refuses_uncertified_decision;
    Alcotest.test_case "bft refuses uncertified outcome replies" `Quick
      test_bft_refuses_uncertified_outcome_reply;
    Alcotest.test_case "bft refuses mis-signed votes" `Quick
      test_bft_refuses_mis_signed_vote;
    Alcotest.test_case "bft matches the tolerance cost model" `Quick
      test_bft_counts_match_cost_model;
    Alcotest.test_case "bft restart re-validates durable certificates" `Quick
      test_bft_restart_revalidates_certs;
  ]
