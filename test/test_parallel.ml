(* The Parallel combinator: ordered fan-in, deterministic exception
   choice, in-caller jobs=1 fallback, pool reuse. *)

let check_ints = Alcotest.(check (list int))

let test_map_ordering () =
  let xs = List.init 100 Fun.id in
  let expect = List.map (fun x -> x * x) xs in
  check_ints "jobs=4 preserves input order" expect
    (Parallel.map ~jobs:4 (fun x -> x * x) xs);
  check_ints "jobs=1 matches" expect (Parallel.map ~jobs:1 (fun x -> x * x) xs)

let test_empty_and_singleton () =
  check_ints "empty list" [] (Parallel.map ~jobs:4 (fun x -> x) []);
  check_ints "singleton" [ 7 ] (Parallel.map ~jobs:4 (fun x -> x + 1) [ 6 ])

exception Boom of int

let test_exception_lowest_index () =
  (* several items fail; the re-raised exception must always be the one
     from the lowest failing index, whatever domain got there first *)
  let run () =
    Parallel.map ~jobs:4
      (fun x -> if x mod 3 = 2 then raise (Boom x) else x)
      (List.init 32 Fun.id)
  in
  for _ = 1 to 5 do
    match run () with
    | _ -> Alcotest.fail "expected Boom"
    | exception Boom i -> Alcotest.(check int) "lowest failing index" 2 i
  done

let test_jobs1_in_calling_domain () =
  let self = Domain.self () in
  let domains = Parallel.map ~jobs:1 (fun _ -> Domain.self ()) [ 1; 2; 3 ] in
  List.iter
    (fun d ->
      Alcotest.(check bool) "jobs=1 runs in the calling domain" true (d = self))
    domains

let test_pool_reuse () =
  let pool = Parallel.create ~jobs:3 in
  Alcotest.(check int) "pool job count" 3 (Parallel.jobs pool);
  let a = Parallel.map_pool pool (fun x -> x + 1) [ 1; 2; 3 ] in
  let b = Parallel.map_pool pool string_of_int [ 4; 5 ] in
  (* a batch that raises must not poison the pool for the next batch *)
  (try ignore (Parallel.map_pool pool (fun _ -> raise Exit) [ 0 ])
   with Exit -> ());
  let c = Parallel.map_pool pool (fun x -> x * 10) [ 6; 7 ] in
  Parallel.shutdown pool;
  check_ints "first batch" [ 2; 3; 4 ] a;
  Alcotest.(check (list string)) "second batch" [ "4"; "5" ] b;
  check_ints "post-exception batch" [ 60; 70 ] c

let test_jobs_clamped () =
  let pool = Parallel.create ~jobs:0 in
  Alcotest.(check int) "jobs clamped to 1" 1 (Parallel.jobs pool);
  Parallel.shutdown pool;
  Alcotest.(check bool) "recommended_jobs positive" true
    (Parallel.recommended_jobs () >= 1)

let suite =
  [
    Alcotest.test_case "map ordering" `Quick test_map_ordering;
    Alcotest.test_case "empty and singleton" `Quick test_empty_and_singleton;
    Alcotest.test_case "lowest-index exception" `Quick
      test_exception_lowest_index;
    Alcotest.test_case "jobs=1 in calling domain" `Quick
      test_jobs1_in_calling_domain;
    Alcotest.test_case "pool reuse" `Quick test_pool_reuse;
    Alcotest.test_case "jobs clamping" `Quick test_jobs_clamped;
  ]
