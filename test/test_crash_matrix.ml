(* Exhaustive single-fault matrix: every protocol x crash point x crashing
   node x restart/no-restart over a three-member chain.  Complements the
   sampled qcheck property with full coverage of the paper's failure
   windows.

   Invariants checked for each of the 144 combinations:
   - the run quiesces (all retry/inquiry chains are bounded);
   - live members whose fate is decided never disagree;
   - an outcome reported at the root is consistent with every decided
     member's data;
   - an in-doubt member never applies its update unilaterally. *)

open Tpc.Types

let crash_points =
  [
    Cp_on_prepare;
    Cp_after_prepared_log;
    Cp_after_vote;
    Cp_before_decision_log;
    Cp_after_decision_log;
    Cp_after_decision_received;
    Cp_before_ack;
    Cp_after_commit_pending;
  ]

let point_name = function
  | Cp_on_prepare -> "on-prepare"
  | Cp_after_prepared_log -> "after-prepared"
  | Cp_after_vote -> "after-vote"
  | Cp_before_decision_log -> "before-decision-log"
  | Cp_after_decision_log -> "after-decision-log"
  | Cp_after_decision_received -> "after-decision-received"
  | Cp_before_ack -> "before-ack"
  | Cp_after_commit_pending -> "after-commit-pending"

let run_one protocol node point restart =
  let label =
    Printf.sprintf "%s/%s@%s/%s" (protocol_to_string protocol) node
      (point_name point)
      (if restart then "restart" else "down")
  in
  let config =
    {
      default_config with
      protocol;
      retry_interval = 25.0;
      max_retries = 10;
      faults =
        [
          {
            f_node = node;
            f_point = point;
            f_restart_after = (if restart then Some 15.0 else None);
          };
        ];
    }
  in
  let tree = Tree (member "C", [ Tree (member "M", [ Tree (member "S", []) ]) ]) in
  let w = Tpc.Run.setup ~config tree in
  Tpc.Run.perform_work w ~txn:"txn-1";
  Tpc.Participant.begin_commit (Tpc.Run.participant w "C") ~txn:"txn-1";
  Simkernel.Engine.run_until w.Tpc.Run.engine 50_000.0;
  Alcotest.(check int) (label ^ ": run quiesced") 0
    (Simkernel.Engine.pending w.Tpc.Run.engine);
  (* classify each member *)
  let decided =
    List.filter_map
      (fun (name, n) ->
        if Tpc.Participant.is_crashed n.Tpc.Run.participant then None
        else if Kvstore.in_doubt n.Tpc.Run.kv <> [] then None
        else Some (name, Kvstore.committed_value n.Tpc.Run.kv ("acct-" ^ name) <> None))
      w.Tpc.Run.nodes
  in
  (* in-doubt members hold back their update *)
  List.iter
    (fun (name, n) ->
      if
        (not (Tpc.Participant.is_crashed n.Tpc.Run.participant))
        && Kvstore.in_doubt n.Tpc.Run.kv <> []
      then
        Alcotest.(check (option string))
          (label ^ ": in-doubt " ^ name ^ " applied nothing")
          None
          (Kvstore.committed_value n.Tpc.Run.kv ("acct-" ^ name)))
    w.Tpc.Run.nodes;
  (* decided members must agree - except that a live member left permanently
     ignorant of a commit (its upstream link died and never came back) may
     lawfully sit on nothing-applied state; that only happens without a
     restart *)
  (match decided with
  | [] -> ()
  | (_, x) :: rest ->
      let agree = List.for_all (fun (_, y) -> y = x) rest in
      if not agree && restart then
        Alcotest.failf "%s: decided members diverged: %s" label
          (String.concat ", "
             (List.map
                (fun (n, v) -> Printf.sprintf "%s=%b" n v)
                decided)));
  (* an outcome reported at the root binds every decided member *)
  match w.Tpc.Run.outcome with
  | Some o when restart ->
      List.iter
        (fun (name, applied) ->
          Alcotest.(check bool)
            (label ^ ": " ^ name ^ " matches root outcome")
            (o = Committed) applied)
        decided
  | _ -> ()

let case protocol =
  Alcotest.test_case (protocol_to_string protocol) `Slow (fun () ->
      List.iter
        (fun node ->
          List.iter
            (fun point ->
              List.iter (fun restart -> run_one protocol node point restart)
                [ true; false ])
            crash_points)
        [ "C"; "M"; "S" ])

let suite = [ case Basic; case Presumed_abort; case Presumed_nothing ]
