(* Crash/recovery tests: the failure matrix of DESIGN.md section 5.
   Crashes are injected at every protocol step, with and without restart,
   under each protocol; tests assert outcome, atomicity among live members,
   and the protocol-specific recovery behaviours (PA presumption, PN
   coordinator-driven recovery, wait-for-outcome). *)

open Tpc.Types
open Test_util

let fault node point ?restart () =
  { f_node = node; f_point = point; f_restart_after = restart }

(* After a run with faults, every *live* updated member must agree with the
   outcome; crashed-forever members are unobservable. *)
let live_consistent w ~txn ~outcome =
  List.for_all
    (fun (name, n) ->
      Tpc.Participant.is_crashed n.Tpc.Run.participant
      || (not n.Tpc.Run.profile.p_updated)
      ||
      let v = Kvstore.committed_value n.Tpc.Run.kv ("acct-" ^ name) in
      match outcome with
      | Committed -> v = Some ("upd-by-" ^ txn)
      | Aborted -> v = None)
    w.Tpc.Run.nodes

let check_live name w ~outcome =
  Alcotest.(check bool) name true (live_consistent w ~txn:"txn-1" ~outcome)

(* --- subordinate crashes -------------------------------------------- *)

let test_sub_crash_on_prepare_no_restart () =
  (* the silent member is treated as a NO vote after the timeout *)
  List.iter
    (fun protocol ->
      let config = cfg ~protocol ~faults:[ fault "S" Cp_on_prepare () ] () in
      let m, w = run ~config (two ()) in
      check_outcome (protocol_to_string protocol ^ ": silent vote aborts")
        (Some Aborted) m;
      check_live (protocol_to_string protocol ^ ": live members rolled back") w
        ~outcome:Aborted)
    [ Basic; Presumed_abort; Presumed_nothing ]

let test_sub_crash_after_prepared_before_vote () =
  (* prepared durable but vote unsent: coordinator aborts on timeout; the
     restarted subordinate finds itself in doubt and learns the abort *)
  let config =
    cfg ~faults:[ fault "S" Cp_after_prepared_log ~restart:40.0 () ] ()
  in
  let m, w = run ~config (two ()) in
  check_outcome "aborts" (Some Aborted) m;
  check_live "restarted sub rolled back by presumption" w ~outcome:Aborted;
  Alcotest.(check (list string)) "no transaction left in doubt" []
    (Kvstore.in_doubt (Tpc.Run.kv w "S"))

let test_sub_crash_in_doubt_with_restart () =
  (* the classic in-doubt window: S restarts and inquires (PA) *)
  let config = cfg ~faults:[ fault "S" Cp_after_vote ~restart:10.0 () ] () in
  let m, w = run ~config (two ()) in
  check_outcome "commit completes" (Some Committed) m;
  check_live "restarted sub commits after inquiry" w ~outcome:Committed;
  Alcotest.(check (list string)) "in-doubt resolved" []
    (Kvstore.in_doubt (Tpc.Run.kv w "S"))

let test_sub_crash_in_doubt_basic () =
  let config =
    cfg ~protocol:Basic ~faults:[ fault "S" Cp_after_vote ~restart:10.0 () ] ()
  in
  let m, w = run ~config (two ()) in
  check_outcome "basic also completes" (Some Committed) m;
  check_live "consistent" w ~outcome:Committed

let test_sub_crash_in_doubt_pn () =
  (* PN: the coordinator keeps re-driving the decision until acked *)
  let config =
    cfg ~protocol:Presumed_nothing
      ~faults:[ fault "S" Cp_after_vote ~restart:30.0 () ]
      ()
  in
  let m, w = run ~config (two ()) in
  check_outcome "PN completes after re-drive" (Some Committed) m;
  check_live "consistent" w ~outcome:Committed

let test_sub_crash_after_decision_received () =
  (* S crashes with the commit decision known but not durable; prepared is
     durable, so restart leaves it in doubt and recovery commits it *)
  let config =
    cfg ~faults:[ fault "S" Cp_after_decision_received ~restart:10.0 () ] ()
  in
  let m, w = run ~config (two ()) in
  check_outcome "commits" (Some Committed) m;
  check_live "re-delivered decision applied" w ~outcome:Committed

let test_sub_crash_before_ack_with_restart () =
  (* S committed durably but the ack was lost with the crash: the
     coordinator retries, the restarted S re-acknowledges from its log *)
  let config = cfg ~faults:[ fault "S" Cp_before_ack ~restart:30.0 () ] () in
  let m, w = run ~config (two ()) in
  check_outcome "completes" (Some Committed) m;
  check_live "consistent" w ~outcome:Committed

let test_cascaded_crash_in_doubt () =
  (* the intermediate crashes in doubt; on restart it inquires upward and
     re-drives its own subtree *)
  let config = cfg ~faults:[ fault "M" Cp_after_vote ~restart:10.0 () ] () in
  let m, w = run ~config (three ()) in
  check_outcome "three-level tree completes" (Some Committed) m;
  check_live "whole chain consistent" w ~outcome:Committed

(* --- coordinator crashes -------------------------------------------- *)

let test_coord_crash_before_decision_pa () =
  (* PA: no durable state at the coordinator; the prepared subordinate
     inquires, gets "no information" and aborts by presumption *)
  let config = cfg ~faults:[ fault "C" Cp_before_decision_log () ] () in
  let m, w = run ~config (two ()) in
  check_outcome "root never completes" None m;
  Simkernel.Engine.run w.Tpc.Run.engine;
  Alcotest.(check (list string)) "S resolved by presumed abort" []
    (Kvstore.in_doubt (Tpc.Run.kv w "S"));
  check_live "S rolled back" w ~outcome:Aborted

let test_coord_crash_before_decision_basic_blocks () =
  (* the baseline protocol can block: with the coordinator gone forever the
     prepared subordinate stays in doubt until its own inquiry is answered;
     our basic variant answers inquiries with the abort presumption after
     restart only, so without restart S eventually aborts via inquiry to a
     dead node... it must at least never commit unilaterally *)
  let config =
    cfg ~protocol:Basic ~max_retries:3
      ~faults:[ fault "C" Cp_before_decision_log () ]
      ()
  in
  let m, w = run ~config (two ()) in
  check_outcome "no outcome at root" None m;
  Alcotest.(check (option string)) "S never applied the update" None
    (Kvstore.committed_value (Tpc.Run.kv w "S") "acct-S")

let test_coord_crash_after_commit_log_restart () =
  (* commit record durable: recovery re-drives commit to all children *)
  List.iter
    (fun protocol ->
      let config =
        cfg ~protocol ~faults:[ fault "C" Cp_after_decision_log ~restart:10.0 () ] ()
      in
      let m, w = run ~config (two ()) in
      check_outcome (protocol_to_string protocol ^ ": commit survives crash")
        (Some Committed) m;
      check_live (protocol_to_string protocol ^ ": consistent") w
        ~outcome:Committed)
    [ Basic; Presumed_abort; Presumed_nothing ]

let test_coord_crash_after_commit_log_no_restart () =
  (* coordinator never returns: the in-doubt subordinate blocks (PA keeps
     inquiring a dead node) - it must not heuristically decide on its own
     without a policy *)
  let config =
    cfg ~max_retries:3 ~faults:[ fault "C" Cp_after_decision_log () ] ()
  in
  let m, w = run ~config (two ()) in
  check_outcome "root gone" None m;
  (* S stays blocked in doubt: the update is neither applied nor rolled
     back, and its exclusive lock is still held *)
  Alcotest.(check (option string)) "update not applied" None
    (Kvstore.committed_value (Tpc.Run.kv w "S") "acct-S");
  Alcotest.(check bool) "lock still held by the blocked transaction" false
    (Kvstore.can_lock (Tpc.Run.kv w "S") ~txn:"other" ~key:"acct-S"
       Lockmgr.Exclusive)

let test_pn_coord_crash_after_commit_pending () =
  (* PN: commit-pending durable but no outcome: recovery aborts and drives
     the subordinates to abort *)
  let config =
    cfg ~protocol:Presumed_nothing
      ~faults:[ fault "C" Cp_after_commit_pending ~restart:10.0 () ]
      ()
  in
  let m, w = run ~config (two ()) in
  check_outcome "PN recovery aborts" (Some Aborted) m;
  check_live "subordinates aborted by coordinator recovery" w ~outcome:Aborted;
  Alcotest.(check (list string)) "nothing in doubt" []
    (Kvstore.in_doubt (Tpc.Run.kv w "S"))

let test_pn_sub_waits_for_coordinator () =
  (* PN subordinates do not inquire: with the coordinator down between
     commit-pending and decision, a prepared subordinate stays in doubt
     until the coordinator recovers *)
  let config =
    cfg ~protocol:Presumed_nothing
      ~faults:[ fault "C" Cp_after_commit_pending ~restart:120.0 () ]
      ()
  in
  let m, w = run ~config (two ()) in
  check_outcome "resolved only after coordinator recovery" (Some Aborted) m;
  Alcotest.(check bool) "resolution happened after restart at t=120" true
    (m.Tpc.Metrics.quiesce_time > 120.0);
  check_live "consistent" w ~outcome:Aborted

(* --- retransmission ------------------------------------------------- *)

let test_decision_retransmitted_until_acked () =
  let config =
    cfg ~retry_interval:20.0
      ~faults:[ fault "S" Cp_after_decision_received ~restart:50.0 () ]
      ()
  in
  let m, w = run ~config (two ()) in
  check_outcome "commit completes despite lost decision" (Some Committed) m;
  (* the coordinator must have sent the Commit decision more than once *)
  let commits_to_s =
    List.filter
      (function
        | Tpc.Trace.Send { src = "C"; dst = "S"; label = "Commit"; _ } -> true
        | _ -> false)
      (Tpc.Trace.events w.Tpc.Run.trace)
  in
  Alcotest.(check bool) "decision retransmitted" true (List.length commits_to_s >= 2)

let test_duplicate_decision_is_idempotent () =
  (* deliver an extra Commit after the transaction finished: the
     subordinate must re-acknowledge without reapplying anything *)
  let m, w = run ~config:(cfg ()) (two ()) in
  check_outcome "commits" (Some Committed) m;
  ignore
    (Tpc.Net.send w.Tpc.Run.net ~src:"C" ~dst:"S"
       [ Tpc.Msg.Decision_msg { txn = "txn-1"; outcome = Committed; cert = None } ]);
  Simkernel.Engine.run w.Tpc.Run.engine;
  Alcotest.(check (option string)) "value applied exactly once"
    (Some "upd-by-txn-1")
    (Kvstore.committed_value (Tpc.Run.kv w "S") "acct-S");
  (* and the duplicate was answered so the sender can forget *)
  let acks_from_s =
    List.filter
      (function
        | Tpc.Trace.Send { src = "S"; label = "Ack"; _ } -> true
        | _ -> false)
      (Tpc.Trace.events w.Tpc.Run.trace)
  in
  Alcotest.(check int) "duplicate re-acknowledged" 2 (List.length acks_from_s)

(* --- wait for outcome ------------------------------------------------ *)

let test_wait_for_outcome_returns_pending () =
  let config =
    cfg
      ~opts:{ no_opts with wait_for_outcome = true }
      ~faults:[ fault "S" Cp_before_ack () ]
      ()
  in
  let m, _w = run ~config (two ()) in
  check_outcome "commit reported" (Some Committed) m;
  Alcotest.(check bool) "with outcome-pending indication" true
    m.Tpc.Metrics.pending

let test_wait_for_outcome_background_resolution () =
  (* one attempt, then pending; the subordinate restarts later and the
     background retries resolve the transaction *)
  let config =
    cfg
      ~opts:{ no_opts with wait_for_outcome = true }
      ~faults:[ fault "S" Cp_before_ack ~restart:80.0 () ]
      ()
  in
  let m, w = run ~config (two ()) in
  check_outcome "commit reported" (Some Committed) m;
  Alcotest.(check bool) "reported pending first" true m.Tpc.Metrics.pending;
  Alcotest.(check bool) "root completed long before the restart" true
    (Option.get m.Tpc.Metrics.completion_time < 80.0);
  check_live "background recovery converged" w ~outcome:Committed

let test_without_wfo_root_blocks_on_lost_ack () =
  (* late acknowledgment without wait-for-outcome: the root cannot complete
     until the acknowledgment arrives *)
  let config =
    cfg ~max_retries:3 ~faults:[ fault "S" Cp_before_ack () ] ()
  in
  let m, _w = run ~config (two ()) in
  check_outcome "root blocked" None m

let test_wfo_completion_faster_than_blocking () =
  let faults = [ fault "S" Cp_before_ack ~restart:200.0 () ] in
  let m_wfo, _ =
    run ~config:(cfg ~opts:{ no_opts with wait_for_outcome = true } ~faults ()) (two ())
  in
  let m_blk, _ = run ~config:(cfg ~faults ()) (two ()) in
  Alcotest.(check bool) "wait-for-outcome completes much earlier" true
    (Option.get m_wfo.Tpc.Metrics.completion_time
    < Option.get m_blk.Tpc.Metrics.completion_time)

(* --- multiple faults -------------------------------------------------- *)

let test_two_subordinates_crash () =
  let tree =
    Tree (member "C", [ Tree (member "S1", []); Tree (member "S2", []) ])
  in
  let config =
    cfg
      ~faults:
        [
          fault "S1" Cp_after_vote ~restart:10.0 ();
          fault "S2" Cp_after_decision_received ~restart:20.0 ();
        ]
      ()
  in
  let m, w = run ~config tree in
  check_outcome "both recover, commit completes" (Some Committed) m;
  check_live "consistent" w ~outcome:Committed

let test_coordinator_and_subordinate_crash () =
  let config =
    cfg
      ~faults:
        [
          fault "C" Cp_after_decision_log ~restart:15.0 ();
          fault "S" Cp_after_vote ~restart:30.0 ();
        ]
      ()
  in
  let m, w = run ~config (two ()) in
  check_outcome "double crash still commits" (Some Committed) m;
  check_live "consistent" w ~outcome:Committed

let suite =
  [
    Alcotest.test_case "sub crash on prepare (all protocols)" `Quick
      test_sub_crash_on_prepare_no_restart;
    Alcotest.test_case "sub crash after prepared, before vote" `Quick
      test_sub_crash_after_prepared_before_vote;
    Alcotest.test_case "sub crash in doubt, restart (PA)" `Quick
      test_sub_crash_in_doubt_with_restart;
    Alcotest.test_case "sub crash in doubt (basic)" `Quick test_sub_crash_in_doubt_basic;
    Alcotest.test_case "sub crash in doubt (PN)" `Quick test_sub_crash_in_doubt_pn;
    Alcotest.test_case "sub crash after decision received" `Quick
      test_sub_crash_after_decision_received;
    Alcotest.test_case "sub crash before ack, restart" `Quick
      test_sub_crash_before_ack_with_restart;
    Alcotest.test_case "cascaded crash in doubt" `Quick test_cascaded_crash_in_doubt;
    Alcotest.test_case "coord crash before decision (PA presumption)" `Quick
      test_coord_crash_before_decision_pa;
    Alcotest.test_case "coord crash before decision (basic blocks)" `Quick
      test_coord_crash_before_decision_basic_blocks;
    Alcotest.test_case "coord crash after commit log, restart" `Quick
      test_coord_crash_after_commit_log_restart;
    Alcotest.test_case "coord crash after commit, no restart blocks sub" `Quick
      test_coord_crash_after_commit_log_no_restart;
    Alcotest.test_case "PN commit-pending recovery aborts" `Quick
      test_pn_coord_crash_after_commit_pending;
    Alcotest.test_case "PN subordinate waits for coordinator" `Quick
      test_pn_sub_waits_for_coordinator;
    Alcotest.test_case "decision retransmission" `Quick
      test_decision_retransmitted_until_acked;
    Alcotest.test_case "duplicate decision idempotent" `Quick
      test_duplicate_decision_is_idempotent;
    Alcotest.test_case "wait-for-outcome returns pending" `Quick
      test_wait_for_outcome_returns_pending;
    Alcotest.test_case "wait-for-outcome background resolution" `Quick
      test_wait_for_outcome_background_resolution;
    Alcotest.test_case "late ack blocks without WFO" `Quick
      test_without_wfo_root_blocks_on_lost_ack;
    Alcotest.test_case "WFO completes faster than blocking" `Quick
      test_wfo_completion_faster_than_blocking;
    Alcotest.test_case "two subordinates crash" `Quick test_two_subordinates_crash;
    Alcotest.test_case "coordinator and subordinate crash" `Quick
      test_coordinator_and_subordinate_crash;
  ]
