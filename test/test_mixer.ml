(* The concurrent throughput engine: determinism, contention behaviour,
   cross-transaction group commit amortization, piggybacked acks. *)

open Tpc.Types
module M = Tpc.Mixer
module Agg = Tpc.Metrics.Agg

let small_tree ~opts = Workload.mixer_tree ~n:4 ~opts ()

let run_cfg ?(config = default_config) cfg =
  fst (M.run ~config cfg (small_tree ~opts:(opts_to_list config.opts)))

(* -- determinism ---------------------------------------------------- *)

let test_fixed_seed_identical () =
  let cfg = { M.default_cfg with M.txns = 60; concurrency = 4; seed = 7 } in
  let a = run_cfg cfg in
  let b = run_cfg cfg in
  Alcotest.(check string) "identical aggregates" (Agg.to_json a) (Agg.to_json b)

let test_different_seeds_differ () =
  let cfg = { M.default_cfg with M.txns = 60; concurrency = 4; seed = 7 } in
  let a = run_cfg cfg in
  let b = run_cfg { cfg with M.seed = 8 } in
  Alcotest.(check bool) "different seeds, different runs" true
    (Agg.to_json a <> Agg.to_json b)

(* -- liveness and sanity -------------------------------------------- *)

let test_all_transactions_resolve () =
  let cfg = { M.default_cfg with M.txns = 80; concurrency = 8; seed = 3 } in
  let agg = run_cfg cfg in
  Alcotest.(check int) "all resolved" cfg.M.txns (agg.Agg.committed + agg.Agg.aborted);
  Alcotest.(check bool) "some commits" true (agg.Agg.committed > 0);
  Alcotest.(check int) "consistent" 0 agg.Agg.consistency_violations;
  Alcotest.(check bool) "positive throughput" true (agg.Agg.throughput > 0.0);
  Alcotest.(check bool) "latency percentiles ordered" true
    (agg.Agg.commit_latency_p50 <= agg.Agg.commit_latency_p95
    && agg.Agg.commit_latency_p95 <= agg.Agg.commit_latency_p99)

(* -- contention ----------------------------------------------------- *)

let contended_cfg =
  {
    M.concurrency = 16;
    txns = 80;
    keyspace = 2;
    update_prob = 0.9;
    read_prob = 0.1;
    base_interarrival = 16.0;
    lock_timeout = 40.0;
    seed = 11;
  }

let test_contention_aborts_stay_consistent () =
  let agg = run_cfg contended_cfg in
  Alcotest.(check bool) "nonzero aborts under contention" true
    (agg.Agg.aborted > 0);
  Alcotest.(check bool) "still commits" true (agg.Agg.committed > 0);
  Alcotest.(check bool) "locks actually queued" true (agg.Agg.lock_waits > 0);
  Alcotest.(check int) "every committed txn consistent" 0
    agg.Agg.consistency_violations

let test_uncontended_no_aborts () =
  let cfg =
    {
      M.default_cfg with
      M.txns = 40;
      concurrency = 1;
      keyspace = 64;
      update_prob = 0.5;
      seed = 5;
    }
  in
  let agg = run_cfg cfg in
  Alcotest.(check int) "no aborts when uncontended" 0 agg.Agg.aborted;
  Alcotest.(check int) "consistent" 0 agg.Agg.consistency_violations

(* -- group commit across transactions ------------------------------- *)

let test_group_commit_amortizes_across_concurrency () =
  let config =
    default_config |> with_group_commit ~size:16 ~timeout:2.0
  in
  let base = { M.default_cfg with M.txns = 80; keyspace = 32; seed = 9 } in
  let solo = run_cfg ~config { base with M.concurrency = 1 } in
  let packed = run_cfg ~config { base with M.concurrency = 16 } in
  Alcotest.(check bool) "both runs commit" true
    (solo.Agg.committed > 0 && packed.Agg.committed > 0);
  Alcotest.(check int) "solo consistent" 0 solo.Agg.consistency_violations;
  Alcotest.(check int) "packed consistent" 0 packed.Agg.consistency_violations;
  Alcotest.(check bool)
    (Printf.sprintf "fewer force I/Os per commit at 16x (%.3f < %.3f)"
       packed.Agg.force_ios_per_commit solo.Agg.force_ios_per_commit)
    true
    (packed.Agg.force_ios_per_commit < solo.Agg.force_ios_per_commit)

(* -- long-locks acks ride real next transactions -------------------- *)

let test_long_locks_piggyback_on_arrivals () =
  let config =
    default_config
    |> with_opts [ `Long_locks ]
    |> with_implied_ack_delay 500.0
  in
  let cfg =
    { M.default_cfg with M.txns = 40; concurrency = 8; seed = 13 }
  in
  let agg, w = M.run ~config cfg (small_tree ~opts:[ `Long_locks ]) in
  Alcotest.(check int) "all resolved" cfg.M.txns
    (agg.Agg.committed + agg.Agg.aborted);
  Alcotest.(check int) "consistent" 0 agg.Agg.consistency_violations;
  Alcotest.(check bool) "data messages carried the deferred acks" true
    (agg.Agg.data_flows > 0);
  (* with think time at 500 and mean inter-arrival ~2, most commits must
     have been released by a real arrival long before the timer *)
  Alcotest.(check bool)
    (Printf.sprintf "p50 commit latency %.1f beats the think-time timer"
       agg.Agg.commit_latency_p50)
    true
    (agg.Agg.commit_latency_p50 < 500.0);
  ignore w

(* -- JSON round-trip ------------------------------------------------ *)

let test_agg_json_round_trips () =
  let agg = run_cfg { M.default_cfg with M.txns = 30; concurrency = 4 } in
  let line = Agg.to_json agg in
  let parsed = Tpc.Json.parse line in
  let get_f name =
    match Option.map Tpc.Json.to_float_opt (Tpc.Json.member name parsed) with
    | Some (Some f) -> f
    | _ -> Alcotest.failf "missing field %s in %s" name line
  in
  let get_i name =
    match Option.map Tpc.Json.to_int_opt (Tpc.Json.member name parsed) with
    | Some (Some i) -> i
    | _ -> Alcotest.failf "missing field %s in %s" name line
  in
  Alcotest.(check int) "committed" agg.Agg.committed (get_i "committed");
  Alcotest.(check (float 1e-9)) "throughput" agg.Agg.throughput (get_f "throughput");
  Alcotest.(check (float 1e-9)) "p99" agg.Agg.commit_latency_p99
    (get_f "commit_latency_p99");
  Alcotest.(check (float 1e-9)) "abort rate" agg.Agg.abort_rate (get_f "abort_rate");
  (* print -> parse -> print is a fixpoint *)
  Alcotest.(check string) "fixpoint" line (Tpc.Json.to_string parsed)

let suite =
  [
    Alcotest.test_case "fixed seed: identical aggregates" `Quick
      test_fixed_seed_identical;
    Alcotest.test_case "different seeds differ" `Quick
      test_different_seeds_differ;
    Alcotest.test_case "all transactions resolve" `Quick
      test_all_transactions_resolve;
    Alcotest.test_case "contention aborts, stays consistent" `Quick
      test_contention_aborts_stay_consistent;
    Alcotest.test_case "no contention, no aborts" `Quick
      test_uncontended_no_aborts;
    Alcotest.test_case "group commit amortizes across transactions" `Quick
      test_group_commit_amortizes_across_concurrency;
    Alcotest.test_case "long-locks acks ride real arrivals" `Quick
      test_long_locks_piggyback_on_arrivals;
    Alcotest.test_case "aggregate JSON round-trips" `Quick
      test_agg_json_round_trips;
  ]
