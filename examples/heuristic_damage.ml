(* Heuristic decisions and damage reporting - the reliability axis of the
   paper's evaluation.  An operator at a blocked participant gives up
   waiting ("intolerable delays"; valuable locks held) and heuristically
   commits; the transaction actually aborts.  The example contrasts how
   Presumed Nothing and Presumed Abort report the resulting damage:

   - PN collects acknowledgments all the way to the root, so the root
     coordinator learns exactly which participant diverged;
   - PA (following R-star) reports only to the immediate coordinator - the
     root believes everything went fine.

   Run with: dune exec examples/heuristic_damage.exe *)

open Tpc.Types

let tree =
  Tree
    ( member "root",
      [
        Tree
          ( member "regional-tm",
            [
              Tree
                ( member
                    ~heuristic:(Heuristic_commit_after 8.0)
                    "impatient-db",
                  [] );
            ] );
      ] )

(* The root crashes after collecting the votes but before the decision is
   durable; recovery aborts the transaction (no outcome was logged under
   PN's commit-pending).  While the root is down, the in-doubt database
   loses patience and heuristically commits. *)
let run protocol =
  let config =
    default_config
    |> with_protocol protocol
    |> with_retries ~interval:300.0 ~max:default_config.max_retries
    |> with_faults
         [
           {
             f_node = "root";
             f_point = Cp_before_decision_log;
             f_restart_after = Some 60.0;
           };
         ]
  in
  let metrics, world = Tpc.Run.commit_tree ~config tree in
  Format.printf "=== %s ===@." (protocol_to_string protocol);
  Format.printf "outcome: %s, heuristic decisions: %d@."
    (match metrics.Tpc.Metrics.outcome with
    | Some o -> outcome_to_string o
    | None -> "(root never completed)")
    metrics.Tpc.Metrics.heuristics;
  (match metrics.Tpc.Metrics.damage_reports with
  | [] -> Format.printf "damage reports: none reached anyone@."
  | reports ->
      List.iter
        (fun (damaged, reported_to) ->
          Format.printf "damage at %s reported to %s@." damaged
            (if reported_to = "" then "(nobody - report lost)" else reported_to))
        reports);
  Format.printf "data after the dust settles:@.";
  List.iter
    (fun (node, bindings) ->
      Format.printf "  %-14s %s@." node
        (if bindings = [] then "(clean - abort applied)"
         else
           String.concat ", "
             (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) bindings)))
    (Tpc.Run.committed_states world);
  Format.printf "@."

let () =
  Format.printf
    "A blocked participant heuristically commits while the transaction \
     aborts: who finds out?@.@.";
  run Presumed_nothing;
  run Presumed_abort;
  Format.printf
    "PN's commit-pending record let the recovered root drive the abort, \
     collect acknowledgments, and learn exactly where the heuristic damage \
     sits.  Under PA the root logged nothing before crashing, so the \
     transaction simply evaporated at the root: the subordinate aborted by \
     presumption, aborts are not acknowledged, and the damage report died \
     with them.  (In a commit-outcome scenario PA reports damage one level \
     up, to the immediate coordinator only - in R-star that was acceptable \
     because 'real customers did not have real data involved'.)@."
