(* The paper's long-locks case study (Section 4, "Long Locks"): banks
   reconciling their accounts at the end of the day - "a large number of
   short transactions with small delays between them" over an expensive
   network link.

   This example runs the same 240-transaction reconciliation stream three
   ways and shows the paper's Table 4 tradeoff: long locks (and long locks
   combined with last agent) cut network flows by 25% and 62.5%, at the
   price of the initiating bank's records staying locked longer.

   Run with: dune exec examples/banking_reconciliation.exe *)

module S = Tpc.Stream

let reconcile mode =
  (* an expensive inter-bank link: 4 time units each way *)
  S.run_chain ~latency:4.0 mode ~r:240

let () =
  let basic = reconcile S.Chain_basic in
  let long_locks = reconcile S.Chain_long_locks in
  let combined = reconcile S.Chain_long_locks_last_agent in

  Format.printf
    "End-of-day reconciliation: 240 chained transactions between two banks@.@.";
  Format.printf "%-28s %10s %10s %10s %14s@." "variant" "flows" "writes"
    "forced" "lock-time/txn";
  let row label (r : S.result) =
    Format.printf "%-28s %10d %10d %10d %14.1f@." label r.S.flows r.S.writes
      r.S.forced r.S.mean_coordinator_lock_time
  in
  row "basic 2PC" basic;
  row "long locks" long_locks;
  row "long locks + last agent" combined;

  let saved a b = 100.0 *. float_of_int (a - b) /. float_of_int a in
  Format.printf
    "@.Long locks saves %.1f%% of the flows; adding last agent saves %.1f%%.@."
    (saved basic.S.flows long_locks.S.flows)
    (saved basic.S.flows combined.S.flows);
  Format.printf
    "The price (Table 1): the initiating bank's records stay locked %.1fx \
     longer under long locks than under basic 2PC.@."
    (long_locks.S.mean_coordinator_lock_time
    /. basic.S.mean_coordinator_lock_time);

  (* Table 4's published example is r = 12; regenerate it for reference. *)
  Format.printf "@.Paper's Table 4 (r = 12):@.";
  List.iter
    (fun (label, c) ->
      Format.printf "  %-36s %a@." label Tpc.Cost_model.pp_counts c)
    (Tpc.Cost_model.table4 ~r:12)
