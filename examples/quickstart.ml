(* Quickstart: commit one distributed transaction across three nodes and
   look at everything the library gives you back - the outcome, the
   message/log counts the paper tabulates, and the full message-sequence
   trace.

   Run with: dune exec examples/quickstart.exe *)

open Tpc.Types

let () =
  (* A commit tree: "store" coordinates, with a warehouse below it and a
     payments service below the warehouse (a cascaded coordinator). *)
  let tree =
    Tree
      ( member "store",
        [ Tree (member "warehouse", [ Tree (member "payments", []) ]) ] )
  in

  (* Run a presumed-abort two-phase commit over a simulated network
     (1 time-unit latency) and write-ahead logs (0.5 per forced write). *)
  let metrics, world = Tpc.Run.commit_tree tree in

  Format.printf "== Outcome ==@.%a@.@." Tpc.Metrics.pp metrics;

  (* Each member ran a real key-value resource manager; the committed data
     is visible after the commit: *)
  Format.printf "== Committed data ==@.";
  List.iter
    (fun (node, bindings) ->
      Format.printf "  %-10s %s@." node
        (String.concat ", "
           (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) bindings)))
    (Tpc.Run.committed_states world);

  (* The trace renders as a sequence diagram in the style of the paper's
     figures: *)
  Format.printf "@.== Message sequence ==@.%s@."
    (Tpc.Trace.sequence_diagram world.Tpc.Run.trace
       ~nodes:[ "store"; "warehouse"; "payments" ]);

  (* And the counts match the paper's baseline formula: 4(n-1) flows,
     3n-1 log writes, 2n-1 forced. *)
  let model = Tpc.Cost_model.basic ~n:3 in
  Format.printf "== Cost model check ==@.simulated %a, formula %a@."
    Tpc.Cost_model.pp_counts
    (Tpc.Metrics.counts metrics)
    Tpc.Cost_model.pp_counts model
