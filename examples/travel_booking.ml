(* A read-only-dominated distributed transaction, the environment where
   the paper says the read-only optimization "provides enormous savings":
   a travel-booking monitor checks seven services, but a typical
   transaction only updates two of them (the booked flight and the card
   charge); the rest were only consulted.

   The example also shows the restricted leave-out optimization: the
   loyalty-points server did no work at all this time and had declared
   OK-TO-LEAVE-OUT on the previous commit, so it is not contacted.

   Run with: dune exec examples/travel_booking.exe *)

open Tpc.Types

let booking_tree =
  Tree
    ( member "booking-monitor",
      [
        Tree (member "flights", []) (* seat actually sold: updates *);
        Tree (member "payments", []) (* card charged: updates *);
        Tree (member ~updated:false "hotels", []);
        Tree (member ~updated:false "cars", []);
        Tree (member ~updated:false "trains", []);
        Tree (member ~updated:false "insurance", []);
        Tree (member ~left_out:true ~leave_out_ok:true "loyalty", []);
      ] )

let run_with label opts =
  let config = default_config |> with_opts opts in
  let metrics, world = Tpc.Run.commit_tree ~config booking_tree in
  Format.printf "%-34s %a  (mean lock release at t=%.2f)@." label
    Tpc.Cost_model.pp_counts
    (Tpc.Metrics.counts metrics)
    (Option.value ~default:nan metrics.Tpc.Metrics.mean_lock_release);
  (metrics, world)

let () =
  Format.printf
    "Travel booking: 8 members, 2 updaters, 4 read-only services, 1 idle \
     server@.@.";
  let baseline, _ = run_with "no optimizations" [] in
  let ro, _ = run_with "read-only" [ `Read_only ] in
  let both, world =
    run_with "read-only + leave-out" [ `Read_only; `Leave_out ]
  in
  let saved =
    100.0
    *. float_of_int (baseline.Tpc.Metrics.flows - both.Tpc.Metrics.flows)
    /. float_of_int baseline.Tpc.Metrics.flows
  in
  Format.printf
    "@.The read-only voters drop out of phase two (%d -> %d flows) and the \
     idle server is never contacted (-> %d flows): %.0f%% of the network \
     traffic gone, and the read-only services released their locks the \
     moment they voted.@."
    baseline.Tpc.Metrics.flows ro.Tpc.Metrics.flows both.Tpc.Metrics.flows
    saved;
  Format.printf "@.Decision-phase view (who was contacted at all):@.%s@."
    (Tpc.Trace.sequence_diagram ~width:13 world.Tpc.Run.trace
       ~nodes:
         [
           "booking-monitor"; "flights"; "payments"; "hotels"; "loyalty";
         ]);
  (* The paper's caveat (Section 4): read-only voting before global
     termination can violate two-phase locking - serialization hazard. *)
  Format.printf
    "Caveat from the paper: a read-only voter releases locks before the \
     transaction terminates globally; in a peer-to-peer environment another \
     member may still be working, so early release can break \
     serializability (see test_optimizations for the mechanics).@."
