(* The dynamic OK-TO-LEAVE-OUT protocol across a working day (Section 4,
   "Leaving Inactive Partners Out").

   A point-of-sale coordinator talks to an inventory service on every
   sale and to a fraud-screening service only for card payments.  The
   fraud service is a pure server: its YES votes carry OK-TO-LEAVE-OUT, so
   after each committed transaction it is suspended, and cash sales that
   give it nothing to do leave it out of the commit entirely - no flows,
   no log writes at that member.

   Run with: dune exec examples/chained_store.exe *)

open Tpc.Types
module R = Tpc.Run

let tree =
  Tree
    ( member "pos",
      [
        Tree (member "inventory", []);
        Tree (member ~leave_out_ok:true "fraud-screen", []);
      ] )

(* the day's sales: cash sales give the fraud screen nothing to do *)
let sales =
  [
    ("sale-1", `Card);
    ("sale-2", `Cash);
    ("sale-3", `Cash);
    ("sale-4", `Card);
    ("sale-5", `Cash);
  ]

let work ~txn ~node =
  match (node, List.assoc txn sales) with
  | "fraud-screen", `Cash -> R.Work_none
  | _ -> R.Work_update

let () =
  let config = default_config |> with_opts [ `Leave_out ] in
  let results, w =
    R.commit_sequence ~config ~work ~txns:(List.map fst sales) tree
  in
  Format.printf
    "Five sales through one complex; the fraud screen only participates \
     when a card is involved:@.@.";
  Format.printf "%-10s %-8s %-8s %-30s@." "sale" "kind" "flows" "fraud screen";
  List.iter
    (fun (txn, m) ->
      let kind = match List.assoc txn sales with `Card -> "card" | `Cash -> "cash" in
      Format.printf "%-10s %-8s %-8d %-30s@." txn kind m.Tpc.Metrics.flows
        (if m.Tpc.Metrics.flows = 4 then "left out (suspended)"
         else "engaged")
    )
    results;
  let total = List.fold_left (fun acc (_, m) -> acc + m.Tpc.Metrics.flows) 0 results in
  Format.printf
    "@.Total: %d flows.  Without the optimization every sale would cost 8 \
     flows (40 total): the suspended pure server saved %d flows and all of \
     its log writes on the cash sales.@."
    total (40 - total);
  Format.printf
    "@.The suspension is a *protected variable*: it only took effect \
     because the preceding transaction committed.  Had sale-1 aborted, \
     sale-2 would still have engaged the fraud screen (see the \
     'sequences' test suite).@.";
  ignore w
