(* The paper's motivating case for the last-agent optimization: "if
   messages to one of the remote partners involve long network delays
   (i.e., connection through satellite) the last-agent optimization
   provides significant savings... it is preferable to prepare the closest
   located partners (fast first phase) and reduce the communication with
   the faraway partner to one slow round-trip message exchange."

   Two local branch offices commit in a fast first phase; the overseas
   office behind a satellite link is engaged last, with the commit
   decision delegated to it: one slow round trip instead of two.  The
   third variant additionally lets the LAN branches vote unsolicited (they
   are servers that know when their work is done), removing their Prepare
   flows as well.

   Run with: dune exec examples/satellite_link.exe *)

open Tpc.Types

let tree ~branches_unsolicited =
  Tree
    ( member "hq",
      [
        Tree (member ~unsolicited:branches_unsolicited "branch-east", []);
        Tree (member ~unsolicited:branches_unsolicited "branch-west", []);
        Tree (member "overseas", []) (* the satellite-linked last agent *);
      ] )

let satellite_delay = 40.0

let run label ?(branches_unsolicited = false) opts =
  let config = default_config |> with_opts opts in
  let world = Tpc.Run.setup ~config (tree ~branches_unsolicited) in
  (* the satellite link: two orders of magnitude slower than the LAN *)
  Tpc.Net.set_latency world.Tpc.Run.net "hq" "overseas" satellite_delay;
  let metrics = Tpc.Run.commit world in
  Format.printf "%-26s completes at t=%-8.1f with %d flows@." label
    (Option.value ~default:nan metrics.Tpc.Metrics.completion_time)
    metrics.Tpc.Metrics.flows;
  metrics

let () =
  Format.printf
    "Commit across two LAN branches (latency 1) and one satellite partner \
     (latency %.0f)@.@." satellite_delay;
  let baseline = run "baseline 2PC" [] in
  let last_agent = run "last agent" [ `Last_agent ] in
  let _combined =
    run "last agent + unsolicited" ~branches_unsolicited:true
      [ `Last_agent; `Unsolicited_vote ]
  in
  let speedup =
    Option.value ~default:nan baseline.Tpc.Metrics.completion_time
    /. Option.value ~default:nan last_agent.Tpc.Metrics.completion_time
  in
  Format.printf
    "@.Baseline pays two satellite round trips (prepare/vote, then \
     commit/ack); the last-agent variant pays one (the YES-with-delegation \
     down, the decision back, the ack implied by later data): %.2fx faster \
     commit completion.@."
    speedup
