(** Log-bucketed streaming histogram.

    Values are assigned to geometrically-spaced buckets: bucket [i] covers
    [(gamma^i, gamma^(i+1)]] with [gamma = 10^(1/buckets_per_decade)].
    Memory is proportional to the number of {e occupied} buckets — the
    dynamic range of the data — never to the number of recorded samples,
    so a histogram over ten million commit latencies costs the same few
    hundred words as one over a thousand.

    Quantile queries answer with the geometric midpoint of the bucket the
    nearest-rank sample falls in, so the relative error is bounded by
    [sqrt gamma - 1] (about 4% at the default resolution; the acceptance
    bound is one bucket, i.e. [gamma - 1] ≈ 8%). *)

type t = {
  buckets_per_decade : int;
  log_gamma : float;  (** log (10^(1/buckets_per_decade)) *)
  counts : (int, int) Hashtbl.t;  (** bucket index -> occupancy *)
  mutable low : int;  (** values <= low_cutoff (zeros, negatives) *)
  mutable count : int;
  mutable sum : float;
  mutable min : float;
  mutable max : float;
}

(* Below this magnitude a sample lands in the dedicated low bucket: commit
   latencies of exactly zero (same-instant phases) are common and must not
   produce a bucket index of -infinity. *)
let low_cutoff = 1e-9

let create ?(buckets_per_decade = 30) () =
  if buckets_per_decade < 1 then
    invalid_arg "Histogram.create: buckets_per_decade must be positive";
  {
    buckets_per_decade;
    log_gamma = log 10.0 /. float_of_int buckets_per_decade;
    counts = Hashtbl.create 64;
    low = 0;
    count = 0;
    sum = 0.0;
    min = infinity;
    max = neg_infinity;
  }

let gamma t = exp t.log_gamma
let resolution t = t.buckets_per_decade
let bucket_index t v = int_of_float (Float.floor (log v /. t.log_gamma))

(* geometric midpoint of bucket [i]: sqrt (gamma^i * gamma^(i+1)) *)
let bucket_mid t i = exp ((float_of_int i +. 0.5) *. t.log_gamma)

let record t v =
  if Float.is_nan v then ()
  else begin
    t.count <- t.count + 1;
    t.sum <- t.sum +. v;
    if v < t.min then t.min <- v;
    if v > t.max then t.max <- v;
    if v <= low_cutoff then t.low <- t.low + 1
    else
      let i = bucket_index t v in
      Hashtbl.replace t.counts i
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.counts i))
  end

let count t = t.count
let sum t = t.sum
let mean t = if t.count = 0 then nan else t.sum /. float_of_int t.count
let min_value t = if t.count = 0 then nan else t.min
let max_value t = if t.count = 0 then nan else t.max

let bucket_count t = Hashtbl.length t.counts + if t.low > 0 then 1 else 0

let sorted_buckets t =
  List.sort compare (Hashtbl.fold (fun i n acc -> (i, n) :: acc) t.counts [])

(* Nearest-rank quantile over the bucket occupancies, mirroring the exact
   reference [Metrics.percentile]: rank = ceil (p/100 * n), 1-based. *)
let quantile t p =
  if t.count = 0 then nan
  else begin
    let rank =
      let r = int_of_float (ceil (p /. 100.0 *. float_of_int t.count)) in
      Stdlib.min t.count (Stdlib.max 1 r)
    in
    if rank <= t.low then (if t.min < 0.0 then t.min else 0.0)
    else begin
      let seen = ref t.low in
      let result = ref t.max in
      (try
         List.iter
           (fun (i, n) ->
             seen := !seen + n;
             if !seen >= rank then begin
               result := bucket_mid t i;
               raise Exit
             end)
           (sorted_buckets t)
       with Exit -> ());
      (* clamp to the observed range: the top bucket's midpoint can
         overshoot the true maximum *)
      Float.min (Float.max !result t.min) t.max
    end
  end

let merge ~into src =
  if into.buckets_per_decade <> src.buckets_per_decade then
    invalid_arg "Histogram.merge: resolution mismatch";
  Hashtbl.iter
    (fun i n ->
      Hashtbl.replace into.counts i
        (n + Option.value ~default:0 (Hashtbl.find_opt into.counts i)))
    src.counts;
  into.low <- into.low + src.low;
  into.count <- into.count + src.count;
  into.sum <- into.sum +. src.sum;
  if src.min < into.min then into.min <- src.min;
  if src.max > into.max then into.max <- src.max

let clear t =
  Hashtbl.reset t.counts;
  t.low <- 0;
  t.count <- 0;
  t.sum <- 0.0;
  t.min <- infinity;
  t.max <- neg_infinity

(** Fixed summary used by the sweep's JSON stanzas. *)
type summary = {
  s_count : int;
  s_mean : float;
  s_min : float;
  s_max : float;
  s_p50 : float;
  s_p95 : float;
  s_p99 : float;
}

let summary t =
  {
    s_count = t.count;
    s_mean = mean t;
    s_min = min_value t;
    s_max = max_value t;
    s_p50 = quantile t 50.0;
    s_p95 = quantile t 95.0;
    s_p99 = quantile t 99.0;
  }
