(** A named interval on one node's timeline.

    Spans are the exportable unit of the telemetry subsystem: phase spans
    derived from a protocol trace, with parent links mirroring the commit
    tree.  The type lives here (below the protocol layer) so both the
    deriving side ([Tpc.Telemetry]) and generic sinks can share it; times
    are in simulation units, conversion to Perfetto microseconds happens
    at export. *)

type t = {
  sp_name : string;  (** phase name, e.g. ["voting"] *)
  sp_cat : string;  (** category, e.g. ["2pc"] *)
  sp_node : string;  (** the node (rendered as one track/thread) *)
  sp_start : float;  (** simulation time *)
  sp_dur : float;  (** simulation time units; 0 for instantaneous *)
  sp_parent : string option;  (** parent node in the commit tree *)
  sp_args : (string * string) list;  (** extra key/value annotations *)
}

let make ?(cat = "2pc") ?parent ?(args = []) ~node ~start ~stop name =
  {
    sp_name = name;
    sp_cat = cat;
    sp_node = node;
    sp_start = start;
    sp_dur = Float.max 0.0 (stop -. start);
    sp_parent = parent;
    sp_args = args;
  }

let stop t = t.sp_start +. t.sp_dur

let compare_by_time a b =
  match compare a.sp_start b.sp_start with
  | 0 -> compare (a.sp_node, a.sp_name) (b.sp_node, b.sp_name)
  | c -> c

let to_string t =
  Printf.sprintf "%s/%s [%.2f, %.2f]%s" t.sp_node t.sp_name t.sp_start (stop t)
    (match t.sp_parent with None -> "" | Some p -> " parent=" ^ p)
