(** Named metrics registry: counters, gauges and streaming histograms.

    One registry travels with one simulation world; components record into
    it by name ("engine/events", "phase/voting", "mixer/commit_latency")
    and the driver snapshots it after the run.  All operations find-or-
    create, so recording a metric never needs prior declaration. *)

type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  histograms : (string, Histogram.t) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
  }

let incr t ?(by = 1) name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.replace t.counters name (ref by)

let set_gauge t name v =
  match Hashtbl.find_opt t.gauges name with
  | Some r -> r := v
  | None -> Hashtbl.replace t.gauges name (ref v)

let max_gauge t name v =
  match Hashtbl.find_opt t.gauges name with
  | Some r -> if v > !r then r := v
  | None -> Hashtbl.replace t.gauges name (ref v)

let histogram t ?buckets_per_decade name =
  match Hashtbl.find_opt t.histograms name with
  | Some h -> h
  | None ->
      let h = Histogram.create ?buckets_per_decade () in
      Hashtbl.replace t.histograms name h;
      h

let observe t ?buckets_per_decade name v =
  Histogram.record (histogram t ?buckets_per_decade name) v

let counter_value t name =
  Option.value ~default:0 (Option.map ( ! ) (Hashtbl.find_opt t.counters name))

let gauge_value t name = Option.map ( ! ) (Hashtbl.find_opt t.gauges name)
let find_histogram t name = Hashtbl.find_opt t.histograms name

let sorted_bindings tbl f =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl [])

let counters t = sorted_bindings t.counters ( ! )
let gauges t = sorted_bindings t.gauges ( ! )
let histograms t = sorted_bindings t.histograms Fun.id

let merge ~into src =
  List.iter (fun (name, v) -> incr into ~by:v name) (counters src);
  List.iter (fun (name, v) -> max_gauge into name v) (gauges src);
  List.iter
    (fun (name, h) ->
      let dst = histogram into ~buckets_per_decade:(Histogram.resolution h) name in
      Histogram.merge ~into:dst h)
    (histograms src)

let clear t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.gauges;
  Hashtbl.reset t.histograms
