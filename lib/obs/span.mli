(** A named interval on one node's timeline — the exportable unit of the
    telemetry subsystem.  Times are in simulation units; conversion to
    Perfetto microseconds happens at export ([Tpc.Telemetry]). *)

type t = {
  sp_name : string;  (** phase name, e.g. ["voting"] *)
  sp_cat : string;  (** category, e.g. ["2pc"] *)
  sp_node : string;  (** the node (rendered as one track/thread) *)
  sp_start : float;  (** simulation time *)
  sp_dur : float;  (** simulation time units; 0 for instantaneous *)
  sp_parent : string option;  (** parent node in the commit tree *)
  sp_args : (string * string) list;  (** extra key/value annotations *)
}

val make :
  ?cat:string ->
  ?parent:string ->
  ?args:(string * string) list ->
  node:string ->
  start:float ->
  stop:float ->
  string ->
  t
(** [make ~node ~start ~stop name]; a [stop] before [start] clamps the
    duration to zero. *)

val stop : t -> float
val compare_by_time : t -> t -> int
val to_string : t -> string
