(** Deterministic per-transaction causal event graph.

    Every interesting step of a distributed commit — a log force
    completing, a message send and its delivery, a lock grant, a vote, a
    decision, a retransmission timer firing — becomes a node tagged with
    the transaction, the acting member, the virtual time, and the
    {e wait class} ({!seg}) of the interval that ended at it.  Edges are
    cause candidates: the previous event of the same [(txn, who)] process
    chain, the matching send for a delivery, and any explicit cross-chain
    link the recorder was given.

    On top of the graph, {!critical_path} extracts the binding causal
    chain from the transaction's arrival to its terminal event — at every
    node it walks back through the cause that finished {e last}, i.e. the
    dependency actually waited for — and {!path_segments} buckets the
    chain's hop durations into log-wait / msg-wait / lock-wait /
    in-doubt / compute.  Because consecutive hops share their endpoints,
    the bucketed durations telescope: their sum is exactly the terminal
    time minus the arrival time, which is what lets a test assert that
    the attribution accounts for every unit of end-to-end latency.

    With the mode [Off] (the default) every recording entry point is an
    O(1) no-op that allocates nothing: harnesses that only need aggregate
    counters (chaos, sweeps) pay nothing and stay byte-identical.  The
    recorder is pure observation — nothing in the simulation ever reads
    the graph back. *)

(** Wait class of the interval that ended at an event. *)
type seg =
  | Compute  (** same-instant protocol step *)
  | Log_wait  (** a forced log write's I/O completed *)
  | Msg_wait  (** a message arrived over the network *)
  | Lock_wait  (** a queued lock was granted *)
  | In_doubt  (** a blocked-window timer fired (retransmit, inquiry, heuristic) *)

val seg_name : seg -> string

type mode = Off | Graph

type node = {
  cn_id : int;  (** assigned in record order; deterministic *)
  cn_txn : string;
  cn_who : string;  (** acting member (or the client chain's node) *)
  cn_time : float;  (** virtual sim-time *)
  cn_seg : seg;
  cn_label : string;
  cn_causes : int list;  (** candidate causes; binding one picked per path *)
}

type t

val create : ?mode:mode -> unit -> t
(** A fresh recorder; [mode] defaults to [Off]. *)

val mode : t -> mode
val set_mode : t -> mode -> unit

val enabled : t -> bool
(** [true] unless the mode is [Off]; callers may use it to skip building
    labels for events that would be dropped anyway. *)

val record :
  ?terminal:bool ->
  ?link_from:string ->
  t ->
  txn:string ->
  who:string ->
  time:float ->
  seg:seg ->
  string ->
  unit
(** [record t ~txn ~who ~time ~seg label] appends an event to the
    [(txn, who)] process chain, caused by the chain's previous event (if
    any).  [link_from] adds the last event of [(txn, link_from)] as a
    second cause candidate — the cross-chain edge for work triggered on
    another member without a message (e.g. an unsolicited-vote trigger).
    [terminal] marks the event as the transaction's end point for
    {!critical_path} (e.g. the application learning the outcome). *)

val send :
  t -> txn:string -> src:string -> dst:string -> time:float -> label:string -> unit
(** Record a message send on the [(txn, src)] chain and remember it as
    in-flight toward [dst] so the matching {!deliver} can take it as a
    cause. *)

val deliver :
  t -> txn:string -> src:string -> dst:string -> time:float -> label:string -> unit
(** Record a delivery on the [(txn, dst)] chain, caused by both the
    chain's previous event and the matching send.  The match is the
    {e newest} unmatched send of the same [(txn, src, dst, label)] not in
    the delivery's future: under retransmission the delivered copy is most
    plausibly the latest one.  A delivery with no recorded send (a forged
    message) simply gets no message edge. *)

val node_count : t -> int

val txn_nodes : t -> txn:string -> node list
(** All events of one transaction, in (time, id) order — the narrative. *)

(** One step of a critical path: the node and the duration of the interval
    between its binding cause and itself (0 for the chain head). *)
type hop = { h_node : node; h_dt : float }

val critical_path : t -> txn:string -> hop list option
(** The binding causal chain ending at the transaction's terminal event
    (the explicitly-marked one, else the newest), oldest first.  [None]
    when the transaction recorded nothing. *)

(** Per-class totals of a path's hop durations. *)
type segments = {
  sg_log : float;
  sg_msg : float;
  sg_lock : float;
  sg_in_doubt : float;
  sg_compute : float;
}

val zero_segments : segments
val path_segments : hop list -> segments

val segments_total : segments -> float
(** Sum of all five buckets; equals [terminal time - head time] for a path
    returned by {!critical_path}. *)

val segments_list : segments -> (string * float) list
(** Stable (name, seconds) pairs for rendering, log-wait first. *)
