(** Log-bucketed streaming histogram with bounded memory.

    Samples stream in one at a time; memory grows with the {e dynamic
    range} of the data (occupied geometric buckets), never with the number
    of samples.  Quantiles answer with the geometric midpoint of the
    nearest-rank bucket, so the relative error is bounded by
    [sqrt gamma - 1] where [gamma = 10^(1/buckets_per_decade)] — about 4%
    at the default resolution of 30 buckets per decade.

    The exact reference this approximates (and is tested against) is
    [Tpc.Metrics.percentile]. *)

type t

val create : ?buckets_per_decade:int -> unit -> t
(** Default resolution: 30 buckets per decade ([gamma] ≈ 1.08).
    @raise Invalid_argument if [buckets_per_decade < 1]. *)

val record : t -> float -> unit
(** Add one sample.  NaN is ignored; zeros and negatives land in a
    dedicated low bucket. *)

val count : t -> int
val sum : t -> float

val mean : t -> float
(** Exact (tracked outside the buckets); [nan] when empty. *)

val min_value : t -> float
(** Exact; [nan] when empty. *)

val max_value : t -> float
(** Exact; [nan] when empty. *)

val quantile : t -> float -> float
(** [quantile t p] for [p] in percent ([0.] to [100.]), nearest-rank over
    the bucket occupancies; [nan] when empty.  Results are clamped to the
    observed [min]/[max]. *)

val bucket_count : t -> int
(** Occupied buckets: the memory footprint, independent of {!count}. *)

val gamma : t -> float
(** The bucket growth factor: one bucket spans [(x, gamma * x]]. *)

val resolution : t -> int
(** The [buckets_per_decade] the histogram was created with. *)

val merge : into:t -> t -> unit
(** Pointwise sum of occupancies.
    @raise Invalid_argument when resolutions differ. *)

val clear : t -> unit

(** Fixed summary for serialization. *)
type summary = {
  s_count : int;
  s_mean : float;
  s_min : float;
  s_max : float;
  s_p50 : float;
  s_p95 : float;
  s_p99 : float;
}

val summary : t -> summary
