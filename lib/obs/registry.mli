(** Named metrics registry: counters, gauges and streaming histograms.

    One registry travels with one simulation world.  All recording
    operations find-or-create, so no metric needs prior declaration;
    listing operations return name-sorted bindings so snapshots are
    deterministic. *)

type t

val create : unit -> t

(** {2 Recording} *)

val incr : t -> ?by:int -> string -> unit
(** Bump a counter ([by] defaults to 1). *)

val set_gauge : t -> string -> float -> unit

val max_gauge : t -> string -> float -> unit
(** Keep the maximum of the values seen (high-water marks). *)

val observe : t -> ?buckets_per_decade:int -> string -> float -> unit
(** Record one sample into the named {!Histogram}.  [buckets_per_decade]
    only applies when the observation creates the histogram. *)

val histogram : t -> ?buckets_per_decade:int -> string -> Histogram.t
(** Find-or-create the named histogram. *)

(** {2 Reading} *)

val counter_value : t -> string -> int
(** 0 for a counter never incremented. *)

val gauge_value : t -> string -> float option
val find_histogram : t -> string -> Histogram.t option

val counters : t -> (string * int) list
(** Name-sorted. *)

val gauges : t -> (string * float) list
val histograms : t -> (string * Histogram.t) list

(** {2 Lifecycle} *)

val merge : into:t -> t -> unit
(** Counters add, gauges keep the maximum, histograms merge pointwise
    (per-worker registries folding into a global one). *)

val clear : t -> unit
