(* Deterministic per-transaction causal event graph; see causal.mli.

   Everything here is driven by the simulator's virtual clock: node ids
   are assigned in record order and the simulation itself is
   deterministic, so the graph — and every path extracted from it — is
   reproducible bit-for-bit for a given seed.

   The recorder never feeds anything back into the simulation: with the
   mode [Off] every entry point returns immediately without allocating,
   which is what keeps counter-only harnesses (chaos, sweeps) byte-
   identical whether or not this module is linked in. *)

type seg = Compute | Log_wait | Msg_wait | Lock_wait | In_doubt

let seg_name = function
  | Compute -> "compute"
  | Log_wait -> "log-wait"
  | Msg_wait -> "msg-wait"
  | Lock_wait -> "lock-wait"
  | In_doubt -> "in-doubt"

type mode = Off | Graph

type node = {
  cn_id : int;
  cn_txn : string;
  cn_who : string;
  cn_time : float;
  cn_seg : seg;
  cn_label : string;
  cn_causes : int list;  (** candidate causes; binding one picked per path *)
}

type t = {
  mutable mode : mode;
  mutable next_id : int;
  by_id : (int, node) Hashtbl.t;
  (* last node of each (txn, who) process chain *)
  chains : (string * string, int) Hashtbl.t;
  (* unmatched sends per (txn, src, dst, label), newest first *)
  inflight : (string * string * string * string, int list) Hashtbl.t;
  (* newest node per txn, and the explicitly-marked terminal *)
  latest : (string, int) Hashtbl.t;
  terminals : (string, int) Hashtbl.t;
}

let create ?(mode = Off) () =
  {
    mode;
    next_id = 0;
    by_id = Hashtbl.create 64;
    chains = Hashtbl.create 16;
    inflight = Hashtbl.create 16;
    latest = Hashtbl.create 16;
    terminals = Hashtbl.create 16;
  }

let mode t = t.mode
let set_mode t m = t.mode <- m
let enabled t = t.mode <> Off

let add t ~txn ~who ~time ~seg ~label ~causes =
  let id = t.next_id in
  t.next_id <- id + 1;
  let n =
    {
      cn_id = id;
      cn_txn = txn;
      cn_who = who;
      cn_time = time;
      cn_seg = seg;
      cn_label = label;
      cn_causes = causes;
    }
  in
  Hashtbl.replace t.by_id id n;
  Hashtbl.replace t.chains (txn, who) id;
  Hashtbl.replace t.latest txn id;
  id

let chain_last t ~txn ~who = Hashtbl.find_opt t.chains (txn, who)

let record ?(terminal = false) ?link_from t ~txn ~who ~time ~seg label =
  if t.mode <> Off then begin
    let causes =
      (match chain_last t ~txn ~who with Some i -> [ i ] | None -> [])
      @
      match link_from with
      | Some from when from <> who -> (
          match chain_last t ~txn ~who:from with Some i -> [ i ] | None -> [])
      | _ -> []
    in
    let id = add t ~txn ~who ~time ~seg ~label ~causes in
    if terminal then Hashtbl.replace t.terminals txn id
  end

let send t ~txn ~src ~dst ~time ~label =
  if t.mode <> Off then begin
    let causes =
      match chain_last t ~txn ~who:src with Some i -> [ i ] | None -> []
    in
    let id =
      add t ~txn ~who:src ~time ~seg:Compute
        ~label:(Printf.sprintf "send %s -> %s" label dst)
        ~causes
    in
    let key = (txn, src, dst, label) in
    let q = Option.value ~default:[] (Hashtbl.find_opt t.inflight key) in
    Hashtbl.replace t.inflight key (id :: q)
  end

(* Match a delivery to the newest unmatched send not in its future: under
   retransmission the delivered copy is most plausibly the latest one, and
   a dropped older copy must not soak up the match a younger send owns. *)
let take_matching_send t ~txn ~src ~dst ~time ~label =
  let key = (txn, src, dst, label) in
  match Hashtbl.find_opt t.inflight key with
  | None -> None
  | Some q ->
      let rec pick acc = function
        | [] -> (None, List.rev acc)
        | id :: rest ->
            let n = Hashtbl.find t.by_id id in
            if n.cn_time <= time then (Some id, List.rev_append acc rest)
            else pick (id :: acc) rest
      in
      let found, rest = pick [] q in
      (match rest with
      | [] -> Hashtbl.remove t.inflight key
      | _ -> Hashtbl.replace t.inflight key rest);
      found

let deliver t ~txn ~src ~dst ~time ~label =
  if t.mode <> Off then begin
    let sent = take_matching_send t ~txn ~src ~dst ~time ~label in
    let causes =
      (match chain_last t ~txn ~who:dst with Some i -> [ i ] | None -> [])
      @ (match sent with Some i -> [ i ] | None -> [])
    in
    ignore
      (add t ~txn ~who:dst ~time ~seg:Msg_wait
         ~label:(Printf.sprintf "deliver %s from %s" label src)
         ~causes)
  end

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let node_count t = t.next_id

let txn_nodes t ~txn =
  let nodes =
    Hashtbl.fold
      (fun _ n acc -> if n.cn_txn = txn then n :: acc else acc)
      t.by_id []
  in
  List.sort
    (fun a b ->
      match compare a.cn_time b.cn_time with
      | 0 -> compare a.cn_id b.cn_id
      | c -> c)
    nodes

type hop = { h_node : node; h_dt : float }

(* The binding cause of a node is the candidate that finished last: the
   dependency the node actually waited for.  Ties break toward the higher
   id (recorded later at the same instant), deterministically. *)
let binding_cause t n =
  List.fold_left
    (fun acc id ->
      let c = Hashtbl.find t.by_id id in
      match acc with
      | None -> Some c
      | Some best ->
          if
            c.cn_time > best.cn_time
            || (c.cn_time = best.cn_time && c.cn_id > best.cn_id)
          then Some c
          else Some best)
    None n.cn_causes

let terminal_node t ~txn =
  match Hashtbl.find_opt t.terminals txn with
  | Some id -> Some (Hashtbl.find t.by_id id)
  | None -> (
      match Hashtbl.find_opt t.latest txn with
      | Some id -> Some (Hashtbl.find t.by_id id)
      | None -> None)

let critical_path t ~txn =
  match terminal_node t ~txn with
  | None -> None
  | Some last ->
      let rec walk acc n =
        match binding_cause t n with
        | None -> { h_node = n; h_dt = 0.0 } :: acc
        | Some c -> walk ({ h_node = n; h_dt = n.cn_time -. c.cn_time } :: acc) c
      in
      Some (walk [] last)

type segments = {
  sg_log : float;
  sg_msg : float;
  sg_lock : float;
  sg_in_doubt : float;
  sg_compute : float;
}

let zero_segments =
  { sg_log = 0.0; sg_msg = 0.0; sg_lock = 0.0; sg_in_doubt = 0.0; sg_compute = 0.0 }

let path_segments hops =
  List.fold_left
    (fun s { h_node; h_dt } ->
      match h_node.cn_seg with
      | Log_wait -> { s with sg_log = s.sg_log +. h_dt }
      | Msg_wait -> { s with sg_msg = s.sg_msg +. h_dt }
      | Lock_wait -> { s with sg_lock = s.sg_lock +. h_dt }
      | In_doubt -> { s with sg_in_doubt = s.sg_in_doubt +. h_dt }
      | Compute -> { s with sg_compute = s.sg_compute +. h_dt })
    zero_segments hops

let segments_total s =
  s.sg_log +. s.sg_msg +. s.sg_lock +. s.sg_in_doubt +. s.sg_compute

let segments_list s =
  [
    ("log-wait", s.sg_log);
    ("msg-wait", s.sg_msg);
    ("lock-wait", s.sg_lock);
    ("in-doubt", s.sg_in_doubt);
    ("compute", s.sg_compute);
  ]
