(** Multicore experiment driver for the sweep and chaos subcommands.

    Each cell (one optimization-set × concurrency point, or one chaos
    seed) owns an independent simulation world — engine, RNG streams,
    trace, telemetry registry — so cells parallelize with no shared
    mutable state.  The driver fans cells out over a {!Parallel} domain
    pool and fans results in {e by index}, so everything it returns
    (JSON lines, verdicts, minimized repros, the merged registry) is
    byte-identical whatever [jobs] was.  Workers never print; rendering
    to channels is the caller's job, at fan-in.

    The [progress] callback is invoked as cells complete, serialized
    under an internal lock (safe to mutate caller state inside), but in
    {e completion} order, which under [jobs > 1] is not deterministic —
    it is for stderr progress reporting only. *)

(** {2 Throughput sweep} *)

type sweep_params = {
  sw_config : Tpc.Types.config;
      (** base config; each set's options are applied on top *)
  sw_sets : Tpc.Types.opt list list;
      (** cells are [sw_sets × sw_concurrencies], row-major *)
  sw_concurrencies : int list;
  sw_n : int;  (** members in each cell's mixer tree *)
  sw_mixer : Tpc.Mixer.cfg;  (** [concurrency] is overridden per cell *)
  sw_events : bool;
      (** keep full traces and render the per-cell event JSONL; [false]
          runs the cells in counter-only trace mode *)
  sw_blocking : bool;
      (** append the per-cell ["blocking"] window block
          ({!Faultlab.blocking_json}) to each JSON line; off by default so
          pre-existing sweep output stays byte-identical *)
}

type sweep_cell = {
  sc_label : string;
  sc_concurrency : int;
  sc_line : string;
      (** the cell's JSON line: metrics aggregate plus the deterministic
          engine-profile [meta] stanza *)
  sc_events : string;  (** per-cell event JSONL; [""] unless [sw_events] *)
  sc_stats : Simkernel.Engine.stats;
      (** includes the nondeterministic wall-clock profile, which is kept
          out of [sc_line] so output stays byte-identical across runs *)
}

val sweep_cells :
  ?progress:(string -> unit) ->
  jobs:int ->
  sweep_params ->
  sweep_cell list * Obs.Registry.t
(** Run every cell; cells in canonical (row-major, input) order, plus all
    per-cell telemetry registries folded into one with
    {!Obs.Registry.merge} in that same order. *)

(** {2 Chaos sweep} *)

type chaos_params = {
  ch_config : Tpc.Types.config;  (** fully built (protocol, retries, …) *)
  ch_tree : Tpc.Types.tree;
  ch_mixer : Tpc.Mixer.cfg;  (** [seed] is overridden per seed *)
  ch_seed0 : int;
  ch_seeds : int;
  ch_gen : Faultlab.gen_cfg;
  ch_plan : Faultlab.plan option;  (** replay this plan for every seed *)
  ch_broken : bool;  (** substitute the amnesiac restart (self-test) *)
  ch_shrink : bool;  (** shrink violating schedules *)
  ch_protocol_flag : string;  (** CLI spelling, for the replay hint *)
  ch_n : int;  (** CLI [-n], for the replay hint *)
  ch_adversary : bool;
      (** run the damage-accounting audit and emit its classification
          fields on every JSONL line; a seed then fails on
          {!Faultlab.adversarial_ok} (silent damage / broken world)
          instead of the benign {!Faultlab.ok}.  Forced on when [ch_plan]
          contains adversarial events, so pasted repros replay under the
          audit that produced them. *)
  ch_blocking : bool;
      (** append the per-seed ["blocking"] window block
          ({!Faultlab.blocking_json}) to each JSONL verdict line; off by
          default so pre-existing chaos output stays byte-identical *)
}

type chaos_cell = {
  cc_seed : int;
  cc_violated : bool;
  cc_line : string;  (** the seed's JSONL verdict *)
  cc_repro : string option;
      (** the stderr replay hint, when the violation was shrunk *)
  cc_stats : Simkernel.Engine.stats;
  cc_accounting : Faultlab.accounting option;
      (** the damage classification, in adversary mode only - the CLI
          folds these into the per-protocol verdict matrix *)
  cc_cert_refusals : int;
      (** decisions refused for certificate violations across the seed's
          nodes ({!Tpc.Participant.rejected_certs} summed); 0 under
          uncertified protocols *)
  cc_corrupted : int;
      (** distinct coordinator replicas the seed's plan corrupted - the
          adversary budget the sub-threshold guarantee is conditioned
          on *)
}

val chaos_cells :
  ?progress:(string -> unit) ->
  jobs:int ->
  chaos_params ->
  chaos_cell list * Obs.Registry.t
(** Run every seed; cells in seed order (canonical), registries merged in
    that order.  Chaos cells always run in counter-only trace mode:
    nothing reads the timeline, and dropping it measurably cheapens each
    of the hundreds of simulations a sweep performs. *)
