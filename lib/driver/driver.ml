(* Multicore experiment driver; see driver.mli for the contract.

   Domain-safety invariant: a cell body touches only (a) the immutable
   parameter records captured by its closure and (b) the fresh world it
   builds itself.  The tpc libraries hold no module-level mutable state
   that is written after startup (audited: the cost_model/scenarios lookup
   tables are immutable lists built at module initialization in the main
   domain, and the Protocol registry is populated at module initialization
   / before any world is built, then only read), so sharing the code
   read-only across domains is safe.  The one shared structure per batch
   is the results array, and each worker writes only its own index. *)

open Tpc.Types

type sweep_params = {
  sw_config : Tpc.Types.config;
  sw_sets : Tpc.Types.opt list list;
  sw_concurrencies : int list;
  sw_n : int;
  sw_mixer : Tpc.Mixer.cfg;
  sw_events : bool;
  sw_blocking : bool;
}

type sweep_cell = {
  sc_label : string;
  sc_concurrency : int;
  sc_line : string;
  sc_events : string;
  sc_stats : Simkernel.Engine.stats;
}

(* Only the deterministic engine counters go on the cell's stdout line;
   the wall-clock profile lives in [sc_stats] (stderr progress, bench
   reports) so that identical arguments always produce identical bytes. *)
let meta_json (s : Simkernel.Engine.stats) =
  let open Simkernel.Engine in
  Tpc.Json.Obj
    [
      ("events_processed", Tpc.Json.Int s.events_processed);
      ("events_scheduled", Tpc.Json.Int s.events_scheduled);
      ("events_cancelled", Tpc.Json.Int s.events_cancelled);
      ("max_queue_depth", Tpc.Json.Int s.max_queue_depth);
    ]

let with_meta agg_json stats =
  match agg_json with
  | Tpc.Json.Obj fields ->
      Tpc.Json.Obj (fields @ [ ("meta", meta_json stats) ])
  | other -> other

(* The blocking-window block is opt-in per harness invocation so that
   output produced before it existed stays byte-identical. *)
let with_blocking enabled reg json =
  if not enabled then json
  else
    match json with
    | Tpc.Json.Obj fields ->
        Tpc.Json.Obj (fields @ [ ("blocking", Faultlab.blocking_json reg) ])
    | other -> other

(* Per-domain scratch engine: each worker domain keeps one engine alive and
   [Engine.reset]s it between cells, so small cells stop re-paying arena and
   agenda warm-up on every world.  Safe because a cell drives its world to
   quiescence before the thunk returns (only the immutable stats snapshot
   and the per-world registry outlive it), and reset restores the exact
   fresh-create observable state.  The shrink path deliberately does NOT use
   the scratch engine: it re-runs candidate schedules while the primary
   world's engine stats are still to be read. *)
let scratch_key : Simkernel.Engine.t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let scratch_engine () =
  let r = Domain.DLS.get scratch_key in
  match !r with
  | Some e -> e
  | None ->
      let e = Simkernel.Engine.create () in
      r := Some e;
      e

(* Fan a list of cell thunks out over the pool, reporting completions
   through [progress] under one lock so callers may mutate state inside. *)
let run_cells ?progress ~jobs cells =
  match progress with
  | None -> Parallel.map ~jobs (fun f -> f ()) cells
  | Some report ->
      let m = Mutex.create () in
      Parallel.map ~jobs
        (fun f ->
          let cell, label = f () in
          Mutex.lock m;
          (try report label with e -> Mutex.unlock m; raise e);
          Mutex.unlock m;
          (cell, label))
        cells

let sweep_cells ?progress ~jobs p =
  let one set concurrency () =
    let config =
      p.sw_config |> with_opts set |> with_trace_events p.sw_events
    in
    let cfg = { p.sw_mixer with Tpc.Mixer.concurrency } in
    let tree = Workload.mixer_tree ~n:p.sw_n ~opts:set () in
    let agg, w = Tpc.Mixer.run ~config ~scratch:(scratch_engine ()) cfg tree in
    let stats = Simkernel.Engine.stats w.Tpc.Run.engine in
    let line =
      Tpc.Json.to_string
        (with_meta
           (with_blocking p.sw_blocking w.Tpc.Run.registry
              (Tpc.Metrics.Agg.to_json_value agg))
           stats)
    in
    let events =
      if p.sw_events then
        Tpc.Json.to_string
          (Tpc.Json.Obj
             [
               ("type", Tpc.Json.String "cell");
               ("label", Tpc.Json.String agg.Tpc.Metrics.Agg.label);
               ("concurrency", Tpc.Json.Int concurrency);
               ("seed", Tpc.Json.Int cfg.Tpc.Mixer.seed);
             ])
        ^ "\n"
        ^ Tpc.Telemetry.events_to_jsonl w.Tpc.Run.trace
      else ""
    in
    let cell =
      {
        sc_label = agg.Tpc.Metrics.Agg.label;
        sc_concurrency = concurrency;
        sc_line = line;
        sc_events = events;
        sc_stats = stats;
      }
    in
    ((cell, w.Tpc.Run.registry), Printf.sprintf "%s c=%d" cell.sc_label concurrency)
  in
  let thunks =
    List.concat_map
      (fun set -> List.map (fun c -> one set c) p.sw_concurrencies)
      p.sw_sets
  in
  let results = run_cells ?progress ~jobs thunks in
  (* fan-in in input order: the merged registry is deterministic too *)
  let global = Obs.Registry.create () in
  let cells =
    List.map
      (fun ((cell, reg), _label) ->
        Obs.Registry.merge ~into:global reg;
        cell)
      results
  in
  (cells, global)

type chaos_params = {
  ch_config : Tpc.Types.config;
  ch_tree : Tpc.Types.tree;
  ch_mixer : Tpc.Mixer.cfg;
  ch_seed0 : int;
  ch_seeds : int;
  ch_gen : Faultlab.gen_cfg;
  ch_plan : Faultlab.plan option;
  ch_broken : bool;
  ch_shrink : bool;
  ch_protocol_flag : string;
  ch_n : int;
  ch_adversary : bool;
  ch_blocking : bool;
}

type chaos_cell = {
  cc_seed : int;
  cc_violated : bool;
  cc_line : string;
  cc_repro : string option;
  cc_stats : Simkernel.Engine.stats;
  cc_accounting : Faultlab.accounting option;
  cc_cert_refusals : int;
  cc_corrupted : int;
}

let chaos_cells ?progress ~jobs p =
  let nodes = Faultlab.tree_nodes p.ch_tree in
  let config = p.ch_config |> with_trace_events false in
  (* Adversary mode is explicit (--adversary generated plans) or inferred
     from a fixed plan's content, so a pasted adversarial repro replays
     under the same classified audit that produced it. *)
  let adversary =
    p.ch_adversary
    ||
    match p.ch_plan with
    | Some plan -> Faultlab.is_adversarial plan
    | None -> false
  in
  (* Under a certified protocol the adversarial tolerance is conditional:
     atomicity violations are "the measurement" only above the quorum
     threshold.  With at most [f] corrupted replicas the certificate rule
     guarantees atomicity outright, so any violation there is a failed
     guarantee, not a data point. *)
  let certified =
    (Tpc.Protocol.resolve config.Tpc.Types.protocol).Tpc.Protocol.p_certify
    <> None
  in
  let bft_f = max 0 config.Tpc.Types.bft_f in
  let bft_gate plan (acc : Faultlab.accounting) =
    certified
    && Faultlab.corrupted_replicas plan <= bft_f
    && acc.Faultlab.a_atomicity > 0
  in
  let one seed () =
    let cfg = { p.ch_mixer with Tpc.Mixer.seed } in
    let plan =
      match p.ch_plan with
      | Some plan -> plan
      | None -> Faultlab.gen ~seed ~nodes p.ch_gen
    in
    let scratch = scratch_engine () in
    let agg, v, acc_opt, w =
      if adversary then
        let agg, v, acc, w =
          Faultlab.run_case_adversarial ~config ~broken_recovery:p.ch_broken
            ~scratch cfg p.ch_tree plan
        in
        (agg, v, Some acc, w)
      else
        let agg, v, w =
          Faultlab.run_case_full ~config ~broken_recovery:p.ch_broken ~scratch
            cfg p.ch_tree plan
        in
        (agg, v, None, w)
    in
    let violated =
      match acc_opt with
      | Some acc -> (not (Faultlab.adversarial_ok v acc)) || bft_gate plan acc
      | None -> not (Faultlab.ok v)
    in
    let cert_refusals =
      if certified then
        List.fold_left
          (fun n node ->
            n + Tpc.Participant.rejected_certs (Tpc.Run.participant w node))
          0 nodes
      else 0
    in
    let minimized =
      if violated && p.ch_shrink then begin
        let check candidate =
          if adversary then
            let _, v', acc', _ =
              Faultlab.run_case_adversarial ~config
                ~broken_recovery:p.ch_broken cfg p.ch_tree candidate
            in
            (not (Faultlab.adversarial_ok v' acc')) || bft_gate candidate acc'
          else
            let _, v' =
              Faultlab.run_case ~config ~broken_recovery:p.ch_broken cfg
                p.ch_tree candidate
            in
            not (Faultlab.ok v')
        in
        Some (Faultlab.shrink ~check plan)
      end
      else None
    in
    let repro =
      Option.map
        (fun small ->
          Printf.sprintf
            "tpc_sim chaos: seed %d VIOLATION; minimized to %d event(s); \
             replay with:\n\
            \  tpc_sim chaos --protocol %s -n %d --seed %d --seeds 1 --txns \
             %d -c %d%s%s%s --plan '%s'\n"
            seed (List.length small) p.ch_protocol_flag p.ch_n seed
            cfg.Tpc.Mixer.txns cfg.Tpc.Mixer.concurrency
            (if p.ch_broken then " --broken-recovery" else "")
            (if adversary then " --adversary" else "")
            (if certified then Printf.sprintf " --f %d" bft_f else "")
            (Faultlab.to_string small))
        minimized
    in
    let line =
      Tpc.Json.Obj
        ([
           ("seed", Tpc.Json.Int seed);
           ("protocol", Tpc.Json.String p.ch_protocol_flag);
           ("plan", Tpc.Json.String (Faultlab.to_string plan));
           ("ok", Tpc.Json.Bool (not violated));
           ("committed", Tpc.Json.Int agg.Tpc.Metrics.Agg.committed);
           ("aborted", Tpc.Json.Int agg.Tpc.Metrics.Agg.aborted);
         ]
        @ List.map
            (fun (k, c) -> (k, Tpc.Json.Int c))
            (Faultlab.verdict_fields v)
        @ (match acc_opt with
          | Some acc ->
              List.map
                (fun (k, c) -> (k, Tpc.Json.Int c))
                (Faultlab.accounting_fields acc)
          | None -> [])
        @ (if certified then
             [
               ("f", Tpc.Json.Int bft_f);
               ( "corrupted_replicas",
                 Tpc.Json.Int (Faultlab.corrupted_replicas plan) );
               ("cert_refusals", Tpc.Json.Int cert_refusals);
             ]
           else [])
        @ (if p.ch_blocking then
             [ ("blocking", Faultlab.blocking_json w.Tpc.Run.registry) ]
           else [])
        @
        match minimized with
        | Some small ->
            [ ("minimized", Tpc.Json.String (Faultlab.to_string small)) ]
        | None -> [])
    in
    let cell =
      {
        cc_seed = seed;
        cc_violated = violated;
        cc_line = Tpc.Json.to_string line;
        cc_repro = repro;
        cc_stats = Simkernel.Engine.stats w.Tpc.Run.engine;
        cc_accounting = acc_opt;
        cc_cert_refusals = cert_refusals;
        cc_corrupted = Faultlab.corrupted_replicas plan;
      }
    in
    ((cell, w.Tpc.Run.registry), Printf.sprintf "seed %d" seed)
  in
  let thunks = List.init p.ch_seeds (fun i -> one (p.ch_seed0 + i)) in
  let results = run_cells ?progress ~jobs thunks in
  let global = Obs.Registry.create () in
  let cells =
    List.map
      (fun ((cell, reg), _label) ->
        Obs.Registry.merge ~into:global reg;
        cell)
      results
  in
  (cells, global)
