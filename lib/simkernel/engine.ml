exception Negative_delay of float

(* The agenda orders events by (time, seq).  The [seq] tiebreak gives FIFO
   semantics for same-time events, which is what makes runs deterministic.

   Two interchangeable agenda structures implement that order:

   - [Wheel] (default): a calendar queue.  Pending events hash into
     fixed-width time buckets; the imminent bucket is materialized into a
     sorted run ([cur]) and consumed in order, far-future events sit in a
     small overflow heap until the wheel window slides over them.
     Schedule, cancel and pop are O(1) at the near-future horizons typical
     of 2PC timers (message latencies, retransmit intervals, group-commit
     timeouts); only events beyond the wheel horizon pay an O(log n)
     overflow hop.

   - [Heap]: the original binary min-heap, kept as the differential-testing
     oracle (select with [~agenda:`Heap] or TPC_AGENDA=heap).  Both
     structures order events by exactly the same total key, so every run
     is byte-identical whichever agenda is active.

   Events themselves live in a flat arena of parallel arrays (time, seq,
   kind, three int argument slots, optional thunk) rather than one closure
   record per event: scheduling is the hottest allocation site in the whole
   simulator, and the dominant event classes (network deliveries, WAL I/O
   completions, arrival timers) carry int-coded kinds dispatched through a
   per-engine handler table, so their schedule/fire cycle allocates
   nothing.  The closure path ([schedule]) remains for rare cold events.

   An [event] handle packs (generation stamp, arena slot) into one int, so
   handles are allocation-free too and a handle outliving its slot (fired,
   cancelled, or the slot recycled) is detected by the stamp and cancels
   nothing. *)

let no_thunk () = ()

type event = int

type handler = int -> int -> int -> (unit -> unit) -> unit
type kind = int

(* arena slot states, stored in [ev_kind]: *)
let k_free = -2
let k_cancelled = -1
let k_closure = 0
(* registered flat kinds are >= 1 *)

let slot_bits = 28
let slot_mask = (1 lsl slot_bits) - 1

(* wheel geometry: 4096 buckets of width 0.5 cover a 2048-time-unit
   horizon, comfortably past every protocol timer (latencies are O(1..32),
   retransmit intervals O(25), lock timeouts O(120)).  Only pre-scheduled
   far-future work (open-loop arrival tails, fault plans) overflows. *)
let wheel_nb = 4096
let wheel_mask = wheel_nb - 1
let inv_width = 2.0 (* 1 / bucket width *)
let occ_words = wheel_nb lsr 5 (* 32 occupancy bits per word *)

type stats = {
  events_processed : int;
  events_scheduled : int;
  events_cancelled : int;
  max_queue_depth : int;
  wall_seconds : float;
}

type agenda = Wheel | Heap

type t = {
  mutable clock : float;
  impl : agenda;
  (* event arena: parallel arrays indexed by slot *)
  mutable cap : int;
  mutable ev_time : float array;
  mutable ev_seq : int array;
  mutable ev_kind : int array;
  mutable ev_a0 : int array;
  mutable ev_a1 : int array;
  mutable ev_a2 : int array;
  mutable ev_thunk : (unit -> unit) array;
  mutable ev_next : int array; (* bucket chain / freelist link *)
  mutable ev_stamp : int array; (* bumped when the slot is freed *)
  mutable free_head : int;
  (* flat-kind dispatch table; index 0 is the closure pseudo-kind *)
  mutable handlers : handler array;
  mutable kind_names : string array;
  mutable n_kinds : int;
  (* heap agenda *)
  mutable hp : int array;
  mutable hp_len : int;
  (* wheel agenda *)
  wh_buckets : int array; (* ring: head slot of chain, -1 = empty *)
  wh_occ : int array; (* occupancy bitmap over ring indices *)
  mutable wh_mat : int; (* highest materialized absolute bucket *)
  mutable wh_cur : int array; (* sorted imminent run *)
  mutable wh_cur_pos : int;
  mutable wh_cur_len : int;
  mutable ovf : int array; (* min-heap of far-future slots *)
  mutable ovf_len : int;
  (* profiling counters: purely observational *)
  mutable next_seq : int;
  mutable live : int;
  mutable processed : int;
  mutable cancelled : int;
  mutable queue_hwm : int;
  mutable wall : float;
}

let default_agenda =
  match Sys.getenv_opt "TPC_AGENDA" with
  | Some ("heap" | "HEAP") -> Heap
  | _ -> Wheel

let dummy_handler (_ : int) (_ : int) (_ : int) (_ : unit -> unit) = ()

let initial_cap = 256

let create ?agenda () =
  let impl =
    match agenda with
    | Some `Heap -> Heap
    | Some `Wheel -> Wheel
    | None -> default_agenda
  in
  let cap = initial_cap in
  let ev_next = Array.init cap (fun i -> i + 1) in
  ev_next.(cap - 1) <- -1;
  {
    clock = 0.0;
    impl;
    cap;
    ev_time = Array.make cap 0.0;
    ev_seq = Array.make cap 0;
    ev_kind = Array.make cap k_free;
    ev_a0 = Array.make cap 0;
    ev_a1 = Array.make cap 0;
    ev_a2 = Array.make cap 0;
    ev_thunk = Array.make cap no_thunk;
    ev_next;
    ev_stamp = Array.make cap 0;
    free_head = 0;
    handlers = Array.make 8 dummy_handler;
    kind_names = Array.make 8 "closure";
    n_kinds = 1;
    hp = Array.make 64 0;
    hp_len = 0;
    wh_buckets = Array.make wheel_nb (-1);
    wh_occ = Array.make occ_words 0;
    wh_mat = -1;
    wh_cur = Array.make 64 0;
    wh_cur_pos = 0;
    wh_cur_len = 0;
    ovf = Array.make 64 0;
    ovf_len = 0;
    next_seq = 0;
    live = 0;
    processed = 0;
    cancelled = 0;
    queue_hwm = 0;
    wall = 0.0;
  }

let agenda t = match t.impl with Wheel -> `Wheel | Heap -> `Heap
let agenda_name t = match t.impl with Wheel -> "wheel" | Heap -> "heap"
let arena_capacity t = t.cap

let stats t =
  {
    events_processed = t.processed;
    events_scheduled = t.next_seq;
    events_cancelled = t.cancelled;
    max_queue_depth = t.queue_hwm;
    wall_seconds = t.wall;
  }

let now t = t.clock

(* ------------------------------------------------------------------ *)
(* Arena                                                               *)
(* ------------------------------------------------------------------ *)

let grow_arena t =
  let cap = t.cap in
  let ncap = 2 * cap in
  let copy_i a = Array.append a (Array.make cap 0) in
  t.ev_time <- Array.append t.ev_time (Array.make cap 0.0);
  t.ev_seq <- copy_i t.ev_seq;
  t.ev_kind <- Array.append t.ev_kind (Array.make cap k_free);
  t.ev_a0 <- copy_i t.ev_a0;
  t.ev_a1 <- copy_i t.ev_a1;
  t.ev_a2 <- copy_i t.ev_a2;
  t.ev_thunk <- Array.append t.ev_thunk (Array.make cap no_thunk);
  t.ev_next <- copy_i t.ev_next;
  t.ev_stamp <- copy_i t.ev_stamp;
  for s = cap to ncap - 1 do
    t.ev_next.(s) <- s + 1
  done;
  t.ev_next.(ncap - 1) <- t.free_head;
  t.free_head <- cap;
  t.cap <- ncap

let alloc_slot t =
  if t.free_head = -1 then grow_arena t;
  let s = t.free_head in
  t.free_head <- Array.unsafe_get t.ev_next s;
  s

let free_slot t s =
  Array.unsafe_set t.ev_kind s k_free;
  Array.unsafe_set t.ev_thunk s no_thunk;
  Array.unsafe_set t.ev_stamp s (Array.unsafe_get t.ev_stamp s + 1);
  Array.unsafe_set t.ev_next s t.free_head;
  t.free_head <- s

(* total order on pending events: (time, seq) lexicographic *)
let slot_lt t a b =
  let ta = Array.unsafe_get t.ev_time a and tb = Array.unsafe_get t.ev_time b in
  ta < tb
  || (ta = tb && Array.unsafe_get t.ev_seq a < Array.unsafe_get t.ev_seq b)

(* ------------------------------------------------------------------ *)
(* Heap agenda (oracle)                                                *)
(* ------------------------------------------------------------------ *)

let hp_push t s =
  if t.hp_len = Array.length t.hp then
    t.hp <- Array.append t.hp (Array.make t.hp_len 0);
  t.hp.(t.hp_len) <- s;
  t.hp_len <- t.hp_len + 1;
  let rec up i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if slot_lt t t.hp.(i) t.hp.(parent) then begin
        let tmp = t.hp.(i) in
        t.hp.(i) <- t.hp.(parent);
        t.hp.(parent) <- tmp;
        up parent
      end
    end
  in
  up (t.hp_len - 1)

let hp_pop t =
  let top = t.hp.(0) in
  t.hp_len <- t.hp_len - 1;
  t.hp.(0) <- t.hp.(t.hp_len);
  if t.hp_len > 0 then begin
    let rec down i =
      let l = (2 * i) + 1 in
      let r = l + 1 in
      let s = if l < t.hp_len && slot_lt t t.hp.(l) t.hp.(i) then l else i in
      let s = if r < t.hp_len && slot_lt t t.hp.(r) t.hp.(s) then r else s in
      if s <> i then begin
        let tmp = t.hp.(i) in
        t.hp.(i) <- t.hp.(s);
        t.hp.(s) <- tmp;
        down s
      end
    in
    down 0
  end;
  top

(* ------------------------------------------------------------------ *)
(* Wheel agenda                                                        *)
(* ------------------------------------------------------------------ *)

(* Bucket of a timestamp.  The mapping only partitions events — ordering is
   enforced by the sorted [cur] run — so all that matters is monotonicity,
   which float multiply + truncate gives for the non-negative times the
   engine admits. *)
let bidx time = int_of_float (time *. inv_width)

let occ_set t rb =
  let w = rb lsr 5 in
  t.wh_occ.(w) <- t.wh_occ.(w) lor (1 lsl (rb land 31))

let occ_clear t rb =
  let w = rb lsr 5 in
  t.wh_occ.(w) <- t.wh_occ.(w) land lnot (1 lsl (rb land 31))

let lowest_bit v =
  let rec go v i = if v land 1 = 1 then i else go (v asr 1) (i + 1) in
  go v 0

(* first occupied ring index at or after [rb0], scanning the whole ring
   with wrap; -1 when the ring is empty *)
let occ_next t rb0 =
  let w0 = rb0 lsr 5 in
  let b0 = rb0 land 31 in
  let masked = t.wh_occ.(w0) land ((-1) lsl b0) in
  if masked <> 0 then (w0 lsl 5) + lowest_bit masked
  else begin
    let rec go i remaining =
      if remaining = 0 then -1
      else
        let wi = i land (occ_words - 1) in
        let v = t.wh_occ.(wi) in
        if v <> 0 then (wi lsl 5) + lowest_bit v else go (i + 1) (remaining - 1)
    in
    go (w0 + 1) occ_words
  end

let ring_push t s b =
  let rb = b land wheel_mask in
  Array.unsafe_set t.ev_next s t.wh_buckets.(rb);
  t.wh_buckets.(rb) <- s;
  occ_set t rb

let ovf_push t s =
  if t.ovf_len = Array.length t.ovf then
    t.ovf <- Array.append t.ovf (Array.make t.ovf_len 0);
  t.ovf.(t.ovf_len) <- s;
  t.ovf_len <- t.ovf_len + 1;
  let rec up i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if slot_lt t t.ovf.(i) t.ovf.(parent) then begin
        let tmp = t.ovf.(i) in
        t.ovf.(i) <- t.ovf.(parent);
        t.ovf.(parent) <- tmp;
        up parent
      end
    end
  in
  up (t.ovf_len - 1)

let ovf_pop t =
  let top = t.ovf.(0) in
  t.ovf_len <- t.ovf_len - 1;
  t.ovf.(0) <- t.ovf.(t.ovf_len);
  if t.ovf_len > 0 then begin
    let rec down i =
      let l = (2 * i) + 1 in
      let r = l + 1 in
      let s = if l < t.ovf_len && slot_lt t t.ovf.(l) t.ovf.(i) then l else i in
      let s = if r < t.ovf_len && slot_lt t t.ovf.(r) t.ovf.(s) then r else s in
      if s <> i then begin
        let tmp = t.ovf.(i) in
        t.ovf.(i) <- t.ovf.(s);
        t.ovf.(s) <- tmp;
        down s
      end
    in
    down 0
  end;
  top

(* slide the wheel window after [wh_mat] moved: far-future events whose
   bucket is now inside the ring move out of the overflow heap *)
let migrate_overflow t =
  let horizon = t.wh_mat + wheel_nb in
  while t.ovf_len > 0 && bidx t.ev_time.(t.ovf.(0)) <= horizon do
    let s = ovf_pop t in
    ring_push t s (bidx t.ev_time.(s))
  done

(* in-place sort of cur[lo..hi) by (time, seq); insertion sort for short
   runs, median-of-3 quicksort above.  Keys are unique, so any correct
   sort yields the one deterministic order. *)
let rec sort_run t a lo hi =
  let n = hi - lo in
  if n <= 24 then
    for i = lo + 1 to hi - 1 do
      let s = a.(i) in
      let j = ref (i - 1) in
      while !j >= lo && slot_lt t s a.(!j) do
        a.(!j + 1) <- a.(!j);
        decr j
      done;
      a.(!j + 1) <- s
    done
  else begin
    let mid = lo + (n / 2) in
    let a0 = a.(lo) and a1 = a.(mid) and a2 = a.(hi - 1) in
    let pivot =
      if slot_lt t a0 a1 then
        if slot_lt t a1 a2 then a1 else if slot_lt t a0 a2 then a2 else a0
      else if slot_lt t a0 a2 then a0
      else if slot_lt t a1 a2 then a2
      else a1
    in
    let i = ref lo and j = ref (hi - 1) in
    while !i <= !j do
      while slot_lt t a.(!i) pivot do
        incr i
      done;
      while slot_lt t pivot a.(!j) do
        decr j
      done;
      if !i <= !j then begin
        let tmp = a.(!i) in
        a.(!i) <- a.(!j);
        a.(!j) <- tmp;
        incr i;
        decr j
      end
    done;
    sort_run t a lo (!j + 1);
    sort_run t a !i hi
  end

(* pull ring bucket [b] into a fresh sorted [cur] run *)
let materialize t b =
  let rb = b land wheel_mask in
  occ_clear t rb;
  let rec count s n = if s = -1 then n else count t.ev_next.(s) (n + 1) in
  let n = count t.wh_buckets.(rb) 0 in
  if n > Array.length t.wh_cur then
    t.wh_cur <- Array.make (max n (2 * Array.length t.wh_cur)) 0;
  let rec fill s i =
    if s <> -1 then begin
      t.wh_cur.(i) <- s;
      fill t.ev_next.(s) (i + 1)
    end
  in
  fill t.wh_buckets.(rb) 0;
  t.wh_buckets.(rb) <- -1;
  sort_run t t.wh_cur 0 n;
  t.wh_cur_pos <- 0;
  t.wh_cur_len <- n;
  t.wh_mat <- b;
  migrate_overflow t

(* make cur hold the next pending event; false when the agenda is empty *)
let rec wheel_ensure t =
  if t.wh_cur_pos < t.wh_cur_len then true
  else begin
    let rb0 = (t.wh_mat + 1) land wheel_mask in
    let rb = occ_next t rb0 in
    if rb >= 0 then begin
      (* ring index back to the absolute bucket inside the window *)
      let b = t.wh_mat + 1 + ((rb - rb0) land wheel_mask) in
      materialize t b;
      true
    end
    else if t.ovf_len = 0 then false
    else begin
      (* ring empty: jump the window to the earliest far-future bucket *)
      t.wh_mat <- bidx t.ev_time.(t.ovf.(0)) - 1;
      migrate_overflow t;
      wheel_ensure t
    end
  end

(* insert into the already-materialized sorted run (bucket <= wh_mat):
   binary search for the insertion point among the not-yet-fired suffix *)
let cur_insert t s =
  if t.wh_cur_len = Array.length t.wh_cur then begin
    if t.wh_cur_pos > 0 then begin
      (* compact the fired prefix away instead of growing *)
      Array.blit t.wh_cur t.wh_cur_pos t.wh_cur 0 (t.wh_cur_len - t.wh_cur_pos);
      t.wh_cur_len <- t.wh_cur_len - t.wh_cur_pos;
      t.wh_cur_pos <- 0
    end
    else
      t.wh_cur <- Array.append t.wh_cur (Array.make (Array.length t.wh_cur) 0)
  end;
  let lo = ref t.wh_cur_pos and hi = ref t.wh_cur_len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if slot_lt t s t.wh_cur.(mid) then hi := mid else lo := mid + 1
  done;
  Array.blit t.wh_cur !lo t.wh_cur (!lo + 1) (t.wh_cur_len - !lo);
  t.wh_cur.(!lo) <- s;
  t.wh_cur_len <- t.wh_cur_len + 1

let wheel_insert t s =
  let b = bidx t.ev_time.(s) in
  if b <= t.wh_mat then cur_insert t s
  else if b - t.wh_mat <= wheel_nb then ring_push t s b
  else ovf_push t s

(* ------------------------------------------------------------------ *)
(* Unified agenda ops                                                  *)
(* ------------------------------------------------------------------ *)

let agenda_insert t s =
  match t.impl with Wheel -> wheel_insert t s | Heap -> hp_push t s

(* next pending slot without removing it; -1 when empty *)
let agenda_peek t =
  match t.impl with
  | Wheel -> if wheel_ensure t then t.wh_cur.(t.wh_cur_pos) else -1
  | Heap -> if t.hp_len > 0 then t.hp.(0) else -1

let agenda_pop t =
  match t.impl with
  | Wheel ->
      if wheel_ensure t then begin
        let s = Array.unsafe_get t.wh_cur t.wh_cur_pos in
        t.wh_cur_pos <- t.wh_cur_pos + 1;
        s
      end
      else -1
  | Heap -> if t.hp_len > 0 then hp_pop t else -1

(* ------------------------------------------------------------------ *)
(* Scheduling                                                          *)
(* ------------------------------------------------------------------ *)

let schedule_slot t ~time ~kind ~a0 ~a1 ~a2 f =
  let s = alloc_slot t in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Array.unsafe_set t.ev_time s time;
  Array.unsafe_set t.ev_seq s seq;
  Array.unsafe_set t.ev_kind s kind;
  Array.unsafe_set t.ev_a0 s a0;
  Array.unsafe_set t.ev_a1 s a1;
  Array.unsafe_set t.ev_a2 s a2;
  Array.unsafe_set t.ev_thunk s f;
  agenda_insert t s;
  t.live <- t.live + 1;
  if t.live > t.queue_hwm then t.queue_hwm <- t.live;
  (Array.unsafe_get t.ev_stamp s lsl slot_bits) lor s

let schedule_at t ~time f =
  if time < t.clock then raise (Negative_delay (time -. t.clock));
  schedule_slot t ~time ~kind:k_closure ~a0:0 ~a1:0 ~a2:0 f

let schedule t ~delay f =
  if delay < 0.0 then raise (Negative_delay delay);
  schedule_slot t ~time:(t.clock +. delay) ~kind:k_closure ~a0:0 ~a1:0 ~a2:0 f

let register_kind t ~name f =
  let k = t.n_kinds in
  if k = Array.length t.handlers then begin
    t.handlers <- Array.append t.handlers (Array.make k dummy_handler);
    t.kind_names <- Array.append t.kind_names (Array.make k "")
  end;
  t.handlers.(k) <- f;
  t.kind_names.(k) <- name;
  t.n_kinds <- k + 1;
  k

let kind_names t = Array.to_list (Array.sub t.kind_names 0 t.n_kinds)

let schedule_flat t ~delay ~kind ~a0 ~a1 ~a2 =
  if delay < 0.0 then raise (Negative_delay delay);
  schedule_slot t ~time:(t.clock +. delay) ~kind ~a0 ~a1 ~a2 no_thunk

let schedule_flat_at t ~time ~kind ~a0 ~a1 ~a2 =
  if time < t.clock then raise (Negative_delay (time -. t.clock));
  schedule_slot t ~time ~kind ~a0 ~a1 ~a2 no_thunk

(* flat kind + closure payload: the registered handler receives the thunk
   as its fourth argument.  Saves the wrapper closure at guarded-timer
   call sites (the guard data rides in the int slots). *)
let schedule_flat_fn t ~delay ~kind ~a0 f =
  if delay < 0.0 then raise (Negative_delay delay);
  schedule_slot t ~time:(t.clock +. delay) ~kind ~a0 ~a1:0 ~a2:0 f

(* ------------------------------------------------------------------ *)
(* Cancellation                                                        *)
(* ------------------------------------------------------------------ *)

(* Lazy cancel: mark the slot and let the agenda discard it when it
   surfaces.  The stamp check makes cancelling a fired, already-cancelled
   or recycled handle a no-op. *)
let cancel t (h : event) =
  let s = h land slot_mask in
  if
    s < t.cap
    && Array.unsafe_get t.ev_stamp s = h lsr slot_bits
    && Array.unsafe_get t.ev_kind s <> k_cancelled
  then begin
    Array.unsafe_set t.ev_kind s k_cancelled;
    Array.unsafe_set t.ev_thunk s no_thunk;
    t.live <- t.live - 1;
    t.cancelled <- t.cancelled + 1
  end

let pending t = t.live

(* ------------------------------------------------------------------ *)
(* Firing                                                              *)
(* ------------------------------------------------------------------ *)

let step t =
  let s = agenda_pop t in
  if s < 0 then false
  else begin
    let kind = Array.unsafe_get t.ev_kind s in
    if kind = k_cancelled then begin
      free_slot t s;
      true
    end
    else begin
      let time = Array.unsafe_get t.ev_time s in
      let a0 = Array.unsafe_get t.ev_a0 s in
      let a1 = Array.unsafe_get t.ev_a1 s in
      let a2 = Array.unsafe_get t.ev_a2 s in
      let f = Array.unsafe_get t.ev_thunk s in
      (* free before firing: a late cancel of this handle is a no-op, and
         the handler may recycle the slot immediately *)
      free_slot t s;
      t.live <- t.live - 1;
      t.clock <- time;
      t.processed <- t.processed + 1;
      if kind = k_closure then f () else t.handlers.(kind) a0 a1 a2 f;
      true
    end
  end

(* One monotonic timestamp pair per [run]/[run_until] call — not per event
   batch — keeps the profiling overhead off the event hot path, and the
   monotonic clock keeps wall_seconds immune to NTP steps. *)
let run t =
  let t0 = Monotonic.now_ns () in
  let rec loop () = if step t then loop () in
  loop ();
  t.wall <- t.wall +. Monotonic.elapsed_seconds ~since:t0

let run_until t horizon =
  let t0 = Monotonic.now_ns () in
  let rec loop () =
    let s = agenda_peek t in
    if s >= 0 && t.ev_time.(s) <= horizon then begin
      ignore (step t);
      loop ()
    end
    else if t.clock < horizon then t.clock <- horizon
  in
  loop ();
  t.wall <- t.wall +. Monotonic.elapsed_seconds ~since:t0

(* ------------------------------------------------------------------ *)
(* Reuse                                                               *)
(* ------------------------------------------------------------------ *)

(* Return the engine to the fresh-create state while keeping every arena
   at its high-water capacity: the driver recycles one engine per domain
   across sweep/chaos cells, so small cells stop paying allocation and
   warm-up costs per cell.  Stamps are bumped so handles from the previous
   life cannot cancel events of the next one. *)
let reset t =
  t.clock <- 0.0;
  t.next_seq <- 0;
  t.live <- 0;
  t.processed <- 0;
  t.cancelled <- 0;
  t.queue_hwm <- 0;
  t.wall <- 0.0;
  t.n_kinds <- 1;
  for s = 0 to t.cap - 1 do
    t.ev_kind.(s) <- k_free;
    t.ev_thunk.(s) <- no_thunk;
    t.ev_stamp.(s) <- t.ev_stamp.(s) + 1;
    t.ev_next.(s) <- s + 1
  done;
  t.ev_next.(t.cap - 1) <- -1;
  t.free_head <- 0;
  t.hp_len <- 0;
  Array.fill t.wh_buckets 0 wheel_nb (-1);
  Array.fill t.wh_occ 0 occ_words 0;
  t.wh_mat <- -1;
  t.wh_cur_pos <- 0;
  t.wh_cur_len <- 0;
  t.ovf_len <- 0
