exception Negative_delay of float

type event = { id : int; etime : float }

(* The agenda is a binary min-heap ordered by (time, id).  The [id] tiebreak
   gives FIFO semantics for same-time events, which is what makes runs
   deterministic. *)
type cell = { time : float; seq : int; mutable thunk : (unit -> unit) option }

type t = {
  mutable clock : float;
  mutable heap : cell array;
  mutable size : int;
  mutable next_seq : int;
  mutable live : int; (* non-cancelled entries in the heap *)
}

let dummy_cell = { time = 0.0; seq = -1; thunk = None }

let create () =
  { clock = 0.0; heap = Array.make 64 dummy_cell; size = 0; next_seq = 0; live = 0 }

let now t = t.clock

let cell_lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if cell_lt t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && cell_lt t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && cell_lt t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let grow t =
  let bigger = Array.make (2 * Array.length t.heap) dummy_cell in
  Array.blit t.heap 0 bigger 0 t.size;
  t.heap <- bigger

let push t cell =
  if t.size = Array.length t.heap then grow t;
  t.heap.(t.size) <- cell;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  let top = t.heap.(0) in
  t.size <- t.size - 1;
  t.heap.(0) <- t.heap.(t.size);
  t.heap.(t.size) <- dummy_cell;
  if t.size > 0 then sift_down t 0;
  top

let schedule_at t ~time f =
  if time < t.clock then raise (Negative_delay (time -. t.clock));
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  push t { time; seq; thunk = Some f };
  t.live <- t.live + 1;
  { id = seq; etime = time }

let schedule t ~delay f =
  if delay < 0.0 then raise (Negative_delay delay);
  schedule_at t ~time:(t.clock +. delay) f

(* Cancellation marks the cell; the heap entry is discarded lazily when it
   reaches the top.  O(n) scan avoided; we find the cell by (time, id). *)
let cancel t ev =
  let found = ref false in
  for i = 0 to t.size - 1 do
    let c = t.heap.(i) in
    if (not !found) && c.seq = ev.id && c.time = ev.etime && c.thunk <> None
    then begin
      c.thunk <- None;
      found := true
    end
  done;
  if !found then t.live <- t.live - 1

let pending t = t.live

let step t =
  if t.size = 0 then false
  else begin
    let cell = pop t in
    (match cell.thunk with
    | None -> () (* cancelled *)
    | Some f ->
        t.live <- t.live - 1;
        t.clock <- cell.time;
        f ());
    true
  end

let rec run t = if step t then run t

let rec run_until t horizon =
  if t.size > 0 && t.heap.(0).time <= horizon then begin
    ignore (step t);
    run_until t horizon
  end
  else if t.clock < horizon then t.clock <- horizon
