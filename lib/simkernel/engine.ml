exception Negative_delay of float

(* The agenda is a binary min-heap ordered by (time, seq).  The [seq]
   tiebreak gives FIFO semantics for same-time events, which is what makes
   runs deterministic. *)

(* A fired or cancelled cell holds [no_thunk] (compared physically) rather
   than an option: scheduling is the hottest allocation site in the whole
   simulator, and the sentinel saves one [Some] box per event. *)
let no_thunk () = ()

type cell = { time : float; seq : int; mutable thunk : unit -> unit }

(* The handle IS the heap cell, so cancellation is O(1): clear the thunk
   and let [step] discard the dead cell when it surfaces. *)
type event = cell

(* Profiling counters: cheap enough to maintain unconditionally, and purely
   observational — nothing in the simulation reads them back, so determinism
   is untouched.  [wall_seconds] is host time spent firing events, the only
   non-virtual quantity in the whole simulator. *)
type stats = {
  events_processed : int;
  events_scheduled : int;
  events_cancelled : int;
  max_queue_depth : int;
  wall_seconds : float;
}

type t = {
  mutable clock : float;
  mutable heap : cell array;
  mutable size : int;
  mutable next_seq : int;
  mutable live : int; (* non-cancelled entries in the heap *)
  mutable processed : int;
  mutable cancelled : int;
  mutable queue_hwm : int; (* high-water mark of live entries *)
  mutable wall : float;
}

let dummy_cell = { time = 0.0; seq = -1; thunk = no_thunk }

let create () =
  {
    clock = 0.0;
    heap = Array.make 64 dummy_cell;
    size = 0;
    next_seq = 0;
    live = 0;
    processed = 0;
    cancelled = 0;
    queue_hwm = 0;
    wall = 0.0;
  }

let stats t =
  {
    events_processed = t.processed;
    events_scheduled = t.next_seq;
    events_cancelled = t.cancelled;
    max_queue_depth = t.queue_hwm;
    wall_seconds = t.wall;
  }

let now t = t.clock

let cell_lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if cell_lt t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

(* no [ref] scratch cell: this runs once per pop, on the hot path *)
let rec sift_down t i =
  let l = (2 * i) + 1 in
  let r = l + 1 in
  let s = if l < t.size && cell_lt t.heap.(l) t.heap.(i) then l else i in
  let s = if r < t.size && cell_lt t.heap.(r) t.heap.(s) then r else s in
  if s <> i then begin
    swap t i s;
    sift_down t s
  end

let grow t =
  let bigger = Array.make (2 * Array.length t.heap) dummy_cell in
  Array.blit t.heap 0 bigger 0 t.size;
  t.heap <- bigger

let push t cell =
  if t.size = Array.length t.heap then grow t;
  t.heap.(t.size) <- cell;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  let top = t.heap.(0) in
  t.size <- t.size - 1;
  t.heap.(0) <- t.heap.(t.size);
  t.heap.(t.size) <- dummy_cell;
  if t.size > 0 then sift_down t 0;
  top

let schedule_at t ~time f =
  if time < t.clock then raise (Negative_delay (time -. t.clock));
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let cell = { time; seq; thunk = f } in
  push t cell;
  t.live <- t.live + 1;
  if t.live > t.queue_hwm then t.queue_hwm <- t.live;
  cell

let schedule t ~delay f =
  if delay < 0.0 then raise (Negative_delay delay);
  schedule_at t ~time:(t.clock +. delay) f

(* Cancellation clears the handle's thunk; the dead heap entry is discarded
   lazily when it reaches the top.  Cancelling a fired or already-cancelled
   event is a no-op ([step] clears the thunk before firing). *)
let cancel t (c : event) =
  if c.thunk != no_thunk then begin
    c.thunk <- no_thunk;
    t.live <- t.live - 1;
    t.cancelled <- t.cancelled + 1
  end

let pending t = t.live

let step t =
  if t.size = 0 then false
  else begin
    let cell = pop t in
    let f = cell.thunk in
    if f != no_thunk then begin
      cell.thunk <- no_thunk (* a late cancel of this handle is a no-op *);
      t.live <- t.live - 1;
      t.clock <- cell.time;
      t.processed <- t.processed + 1;
      f ()
    end;
    true
  end

(* One monotonic timestamp pair per [run]/[run_until] call — not per event
   batch — keeps the profiling overhead off the event hot path, and the
   monotonic clock keeps wall_seconds immune to NTP steps. *)
let run t =
  let t0 = Monotonic.now_ns () in
  let rec loop () = if step t then loop () in
  loop ();
  t.wall <- t.wall +. Monotonic.elapsed_seconds ~since:t0

let run_until t horizon =
  let t0 = Monotonic.now_ns () in
  let rec loop () =
    if t.size > 0 && t.heap.(0).time <= horizon then begin
      ignore (step t);
      loop ()
    end
    else if t.clock < horizon then t.clock <- horizon
  in
  loop ();
  t.wall <- t.wall +. Monotonic.elapsed_seconds ~since:t0
