external now_ns : unit -> int64 = "tpc_monotonic_now_ns"

let elapsed_seconds ~since =
  Int64.to_float (Int64.sub (now_ns ()) since) /. 1e9
