(** Monotonic host clock for profiling.

    [Unix.gettimeofday] is wall time and jumps when NTP steps the clock;
    every elapsed-time measurement in the simulator goes through this
    module instead ([clock_gettime(CLOCK_MONOTONIC)] underneath). *)

val now_ns : unit -> int64
(** Nanoseconds from an arbitrary fixed origin; strictly non-decreasing
    within a process. *)

val elapsed_seconds : since:int64 -> float
(** Seconds elapsed since a [now_ns] reading. *)
