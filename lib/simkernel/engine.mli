(** Deterministic discrete-event simulation engine.

    All components of the reproduction (network, write-ahead log, protocol
    participants) run on top of a single virtual clock owned by an engine.
    Events scheduled for the same instant fire in scheduling order, which
    makes every simulation run fully deterministic and allows the test suite
    to assert exact message and log-write counts. *)

type t

(** A handle to a scheduled event, usable for cancellation. *)
type event

val create : unit -> t
(** A fresh engine with the clock at [0.0] and an empty agenda. *)

val now : t -> float
(** Current virtual time. *)

val schedule : t -> delay:float -> (unit -> unit) -> event
(** [schedule t ~delay f] runs [f] at [now t +. delay].  [delay] must be
    non-negative; same-time events run in FIFO scheduling order. *)

val schedule_at : t -> time:float -> (unit -> unit) -> event
(** Absolute-time variant of {!schedule}.  [time] must not be in the past. *)

val cancel : t -> event -> unit
(** Cancel a pending event.  Cancelling an already-fired or already-cancelled
    event is a no-op. *)

val pending : t -> int
(** Number of events still on the agenda (cancelled events excluded). *)

val run : t -> unit
(** Run events in time order until the agenda is empty. *)

val run_until : t -> float -> unit
(** [run_until t horizon] runs events with timestamp [<= horizon], then
    advances the clock to [horizon] (if it is ahead of the last event). *)

val step : t -> bool
(** Fire the single next event.  Returns [false] if the agenda was empty. *)

(** {2 Profiling}

    Observational counters maintained by the engine itself; nothing in the
    simulation reads them back, so determinism is untouched. *)

type stats = {
  events_processed : int;  (** thunks actually fired *)
  events_scheduled : int;  (** {!schedule}/{!schedule_at} calls *)
  events_cancelled : int;  (** {!cancel} calls that hit a pending event *)
  max_queue_depth : int;  (** high-water mark of pending (live) events *)
  wall_seconds : float;
      (** host time spent inside {!run} and {!run_until} — the only
          non-virtual quantity in the simulator.  Measured on the
          monotonic clock (one timestamp pair per call), so it never
          jumps under NTP adjustment. *)
}

val stats : t -> stats

exception Negative_delay of float
(** Raised by {!schedule} on a negative delay and by {!schedule_at} on a
    time before [now]. *)
