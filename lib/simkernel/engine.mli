(** Deterministic discrete-event simulation engine.

    All components of the reproduction (network, write-ahead log, protocol
    participants) run on top of a single virtual clock owned by an engine.
    Events scheduled for the same instant fire in scheduling order, which
    makes every simulation run fully deterministic and allows the test suite
    to assert exact message and log-write counts.

    Internally events live in a flat slot arena (no per-event closure
    record for the hot classes) ordered by one of two agenda structures:
    a calendar-queue timing wheel (the default: O(1) schedule/cancel/pop
    at near-future horizons, sorted overflow for far-future events) or
    the original binary min-heap, retained as the differential-testing
    oracle.  Both enforce the identical (time, seq) total order, so the
    choice never changes a run's results — only its speed.
    See DESIGN.md §11 for the internals. *)

type t

(** A handle to a scheduled event, usable for cancellation.  Handles are
    unboxed ints (slot + generation stamp), so holding one allocates
    nothing and a handle that outlives its event safely cancels nothing. *)
type event

val create : ?agenda:[ `Wheel | `Heap ] -> unit -> t
(** A fresh engine with the clock at [0.0] and an empty agenda.  [agenda]
    picks the ordering structure; the default is [`Wheel] unless the
    [TPC_AGENDA] environment variable says [heap]. *)

val reset : t -> unit
(** Return the engine to the fresh-create state — clock zero, empty
    agenda, zeroed counters, no registered kinds — while keeping every
    internal array at its high-water capacity.  Lets a driver recycle one
    engine across many small simulation worlds without re-paying
    allocation warm-up; a world built on a reset engine is byte-identical
    to one built on a fresh engine.  Outstanding {!event} handles from
    before the reset are defused (cancelling them is a no-op). *)

val now : t -> float
(** Current virtual time. *)

val schedule : t -> delay:float -> (unit -> unit) -> event
(** [schedule t ~delay f] runs [f] at [now t +. delay].  [delay] must be
    non-negative; same-time events run in FIFO scheduling order. *)

val schedule_at : t -> time:float -> (unit -> unit) -> event
(** Absolute-time variant of {!schedule}.  [time] must not be in the past. *)

val cancel : t -> event -> unit
(** Cancel a pending event.  Cancelling an already-fired or already-cancelled
    event is a no-op. *)

val pending : t -> int
(** Number of events still on the agenda (cancelled events excluded). *)

val run : t -> unit
(** Run events in time order until the agenda is empty. *)

val run_until : t -> float -> unit
(** [run_until t horizon] runs events with timestamp [<= horizon], then
    advances the clock to [horizon] (if it is ahead of the last event). *)

val step : t -> bool
(** Fire the single next event.  Returns [false] if the agenda was empty. *)

(** {2 Flat events}

    The dominant event classes (network delivery, WAL I/O completion,
    arrival timers) schedule an int-coded kind plus three unboxed int
    argument slots instead of a closure: the whole schedule/fire cycle
    allocates nothing.  A component registers its handler once per engine
    and passes the returned {!kind} at every schedule site; payloads that
    are not ints live in the component's own slot arenas, indexed by an
    argument slot. *)

type kind
(** An int-coded event class, valid for the engine that registered it
    (until the next {!reset}). *)

type handler = int -> int -> int -> (unit -> unit) -> unit
(** [handler a0 a1 a2 thunk] receives the three int argument slots and the
    optional closure payload ({!Stdlib.ignore} it for pure flat events). *)

val register_kind : t -> name:string -> handler -> kind
(** Install a handler for a new event kind.  [name] is observational only
    (profiling output). *)

val kind_names : t -> string list
(** Names of the registered kinds, index order, "closure" first. *)

val schedule_flat : t -> delay:float -> kind:kind -> a0:int -> a1:int -> a2:int -> event
(** Allocation-free {!schedule}: at [now +. delay] the kind's handler runs
    with the given argument slots. *)

val schedule_flat_at : t -> time:float -> kind:kind -> a0:int -> a1:int -> a2:int -> event
(** Absolute-time variant of {!schedule_flat}. *)

val schedule_flat_fn : t -> delay:float -> kind:kind -> a0:int -> (unit -> unit) -> event
(** Flat kind with a closure payload: the handler receives [a0] and the
    closure.  One allocation (the closure itself) instead of two — used
    for guarded timers whose guard data rides in [a0]. *)

(** {2 Profiling}

    Observational counters maintained by the engine itself; nothing in the
    simulation reads them back, so determinism is untouched. *)

type stats = {
  events_processed : int;  (** thunks actually fired *)
  events_scheduled : int;  (** {!schedule}/{!schedule_at} calls *)
  events_cancelled : int;  (** {!cancel} calls that hit a pending event *)
  max_queue_depth : int;  (** high-water mark of pending (live) events *)
  wall_seconds : float;
      (** host time spent inside {!run} and {!run_until} — the only
          non-virtual quantity in the simulator.  Measured on the
          monotonic clock (one timestamp pair per call), so it never
          jumps under NTP adjustment. *)
}

val stats : t -> stats

val agenda : t -> [ `Wheel | `Heap ]
(** Which agenda structure this engine runs on. *)

val agenda_name : t -> string
(** ["wheel"] or ["heap"], for profiling output. *)

val arena_capacity : t -> int
(** Current event-arena capacity in slots (grow-only; kept by {!reset}). *)

exception Negative_delay of float
(** Raised by {!schedule} on a negative delay and by {!schedule_at} on a
    time before [now]. *)
