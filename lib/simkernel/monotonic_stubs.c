/* Monotonic wall-clock for engine profiling.

   CLOCK_MONOTONIC never jumps under NTP adjustment, unlike
   gettimeofday(); the engine's wall_seconds counters must measure real
   elapsed host time even on machines with stepping clocks. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value tpc_monotonic_now_ns(value unit)
{
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + ts.tv_nsec);
}
