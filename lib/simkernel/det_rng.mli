(** Deterministic pseudo-random number generator (splitmix64).

    The simulation never consults the global [Random] state so that the same
    seed always yields the same run regardless of library initialization
    order. *)

type t

val create : seed:int -> t

val split : t -> t
(** An independent stream derived from [t]; both streams stay deterministic. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).  [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean (for inter-arrival
    times in workload generators). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
