(** Concurrent multi-transaction throughput engine.

    Drives N overlapping transactions through one {!Run.world} as an
    open-loop arrival process on the shared {!Simkernel.Engine}: commit
    trees per transaction drawn from a deterministic seeded RNG, keys from
    a contended keyspace so {!Lockmgr} waits and timeout aborts actually
    happen, group commit batching force I/Os across transactions, and
    long-locks/implied acknowledgments piggybacking on genuinely-next
    transactions ({!Participant.flush_piggybacks}) instead of the synthetic
    think-time timer. *)

open Types
module E = Simkernel.Engine

type op = Op_update of { key : string } | Op_read of { key : string }
type item = { it_node : string; it_op : op }

type cfg = {
  concurrency : int;  (** open-loop arrival-rate multiplier *)
  txns : int;  (** transactions to submit *)
  keyspace : int;  (** keys per member: smaller = more contention *)
  update_prob : float;  (** per member: P(update one key) *)
  read_prob : float;  (** per member: P(read one key); rest = idle *)
  base_interarrival : float;
      (** mean inter-arrival at concurrency 1; the effective mean is
          [base_interarrival /. concurrency] *)
  lock_timeout : float;  (** give up waiting for locks after this long *)
  seed : int;
}

let default_cfg =
  {
    concurrency = 1;
    txns = 100;
    keyspace = 8;
    update_prob = 0.6;
    read_prob = 0.25;
    base_interarrival = 30.0;
    lock_timeout = 120.0;
    seed = 1;
  }

(* Per-transaction bookkeeping on the mixer side. *)
type txn_rec = {
  x_txn : string;
  x_arrival : float;
  x_items : item list;  (** tree order: locks are acquired in this order *)
  mutable x_commit_started : float option;
  mutable x_completed : float option;
  mutable x_outcome : outcome option;
  mutable x_timed_out : bool;  (** gave up waiting for locks *)
  mutable x_timer : E.event option;
  mutable x_waits : int;
  mutable x_wait_time : float;
}

(* What the driver knew about one transaction when the run went quiet:
   enough for a fault-aware audit to reconstruct ground truth without
   reaching back into the mixer's internal bookkeeping. *)
type txn_summary = {
  ts_txn : string;
  ts_items : item list;
  ts_outcome : outcome option;
      (** what the root reported to the driver; [None] = never reported
          (possible when faults killed the coordinator) *)
  ts_commit_started : bool;
  ts_timed_out : bool;
  ts_arrival : float;
  ts_completed : float option;
      (** when the driver learned the outcome; [None] = never resolved *)
}

let txn_value txn = "v:" ^ txn
let value_owner v =
  if String.length v > 2 && String.sub v 0 2 = "v:" then
    Some (String.sub v 2 (String.length v - 2))
  else None

let label_of_opts opts =
  match opts_to_list opts with
  | [] -> "baseline"
  | l -> String.concat "+" (List.map opt_to_string l)

let node_has_work x name =
  List.exists (fun it -> it.it_node = name) x.x_items

(* ------------------------------------------------------------------ *)
(* End-of-run consistency audit                                        *)
(* ------------------------------------------------------------------ *)

(* Atomicity/consistency are checked at quiescence rather than per
   completion: with vote-reliable implied acks or early acks the root can
   report a commit before subordinates have applied it.

   The audit is fault-aware.  Under injected crashes and partitions the
   driver's view ([ts_outcome]) is not ground truth: the coordinator may
   have made a decision durable and died before reporting it.  Ground
   truth is therefore derived from the durable evidence (any TM [Committed]
   or RM [Rm_committed] record commits the transaction; no such record
   anywhere means it aborted or never decided), and a member is excused
   from the committed-everywhere obligation only while it is {e down} or
   legitimately {e in doubt} - never merely slow, because the audit runs at
   engine quiescence. *)
module Audit = struct
  type breakdown = {
    committed_missing : int;
        (** committed txn not applied at an up, not-in-doubt updated member *)
    aborted_applied : int;
        (** abort/undecided txn durably applied, or its value visible *)
    bad_value : int;
        (** a committed binding not owned by a committed writer of that key *)
  }

  let total b = b.committed_missing + b.aborted_applied + b.bad_value

  (* one pass over each physical log builds the commit-evidence indexes;
     scanning per transaction would be quadratic in the run length *)
  let commit_evidence w =
    let rm_commits = Hashtbl.create 1024 in
    let decided_commit = Hashtbl.create 256 in
    List.iter
      (fun wal ->
        List.iter
          (fun (r : Wal.Log_record.t) ->
            match r.kind with
            | Wal.Log_record.Rm_committed ->
                Hashtbl.replace rm_commits (r.node, r.txn) ();
                Hashtbl.replace decided_commit r.txn ()
            | Wal.Log_record.Committed | Wal.Log_record.Heuristic_commit ->
                Hashtbl.replace decided_commit r.txn ()
            | _ -> ())
          (Wal.Log.all_records wal))
      (Run.all_wals w);
    (rm_commits, decided_commit)

  (* A member is excused from having applied an outcome while the
     transaction is in doubt there: blocked awaiting its coordinator
     (live state), rebuilt in-doubt by crash recovery (KV state), or
     awaiting a delegated decision. *)
  let in_doubt_at (n : Run.node) txn =
    List.mem txn (Kvstore.in_doubt n.Run.kv)
    || List.mem txn (Participant.in_doubt_txns n.Run.participant)

  let breakdown w summaries =
    let rm_commits, decided_commit = commit_evidence w in
    let rm_committed (n : Run.node) txn =
      Hashtbl.mem rm_commits (n.Run.profile.p_name ^ ".rm", txn)
    in
    let truth x =
      match x.ts_outcome with
      | Some o -> Some o
      | None ->
          (* unreported: the durable record is the decision *)
          if Hashtbl.mem decided_commit x.ts_txn then Some Committed else None
    in
    let committed_missing = ref 0 in
    let aborted_applied = ref 0 in
    let bad_value = ref 0 in
    List.iter
      (fun x ->
        let tr = truth x in
        List.iter
          (fun it ->
            match it.it_op with
            | Op_read _ -> ()
            | Op_update { key } -> (
                let n = Run.node w it.it_node in
                match tr with
                | Some Committed ->
                    (* every member the txn updated must have applied it,
                       unless it is down or still legitimately blocked *)
                    if
                      (not (rm_committed n x.ts_txn))
                      && Net.is_up w.Run.net it.it_node
                      && not (in_doubt_at n x.ts_txn)
                    then incr committed_missing
                | Some Aborted | None ->
                    (* no member may have applied any part of it *)
                    if rm_committed n x.ts_txn then incr aborted_applied;
                    if
                      Kvstore.committed_value n.Run.kv key
                      = Some (txn_value x.ts_txn)
                    then incr aborted_applied))
          x.ts_items)
      summaries;
    (* every committed binding must belong to a committed transaction that
       actually wrote it there *)
    let by_txn = Hashtbl.create 64 in
    List.iter (fun x -> Hashtbl.replace by_txn x.ts_txn x) summaries;
    List.iter
      (fun (name, n) ->
        List.iter
          (fun (key, v) ->
            match value_owner v with
            | None -> ()  (* pre-loaded or foreign value *)
            | Some owner -> (
                match Hashtbl.find_opt by_txn owner with
                | Some x
                  when truth x = Some Committed
                       && List.exists
                            (fun it ->
                              it.it_node = name
                              && match it.it_op with
                                 | Op_update { key = k } -> k = key
                                 | Op_read _ -> false)
                            x.ts_items ->
                    ()
                | _ -> incr bad_value))
          (Kvstore.committed_bindings n.Run.kv))
      w.Run.nodes;
    {
      committed_missing = !committed_missing;
      aborted_applied = !aborted_applied;
      bad_value = !bad_value;
    }
end

(* ------------------------------------------------------------------ *)
(* The engine                                                          *)
(* ------------------------------------------------------------------ *)

let run_full ?(config = default_config) ?inject ?(causal = Obs.Causal.Off)
    ?scratch cfg tree =
  if cfg.txns <= 0 then invalid_arg "Mixer.run: txns must be positive";
  let w = Run.setup ~config ?scratch tree in
  let engine = w.Run.engine in
  let reg = w.Run.registry in
  Obs.Causal.set_mode w.Run.causal causal;
  (* Driver-side causal events live on the root's process chain: the
     arrival, every lock grant and the commit trigger precede the root
     participant's own first event there, so each transaction's graph is
     connected from arrival to terminal. *)
  let crecord ?terminal ?link_from ?(who = w.Run.root) x seg label =
    let c = w.Run.causal in
    if Obs.Causal.enabled c then
      Obs.Causal.record ?terminal ?link_from c ~txn:x.x_txn ~who
        ~time:(E.now engine) ~seg (label ())
  in
  (* Latency distributions stream into bounded log-bucketed histograms as
     transactions finish: memory stays proportional to the dynamic range of
     the data, not to [cfg.txns], so multi-million-transaction sweeps are
     safe.  [Metrics.percentile] remains the exact reference these
     approximate (within one bucket). *)
  let h_commit = Obs.Registry.histogram reg "mixer/commit_latency" in
  let h_hold = Obs.Registry.histogram reg "mixer/lock_hold" in
  let h_wait = Obs.Registry.histogram reg "mixer/lock_wait" in
  let rng = Simkernel.Det_rng.create ~seed:cfg.seed in
  let records : (string, txn_rec) Hashtbl.t = Hashtbl.create cfg.txns in
  let order = ref [] in  (* arrival order, newest first *)
  let outstanding = ref 0 in
  let arrived = ref 0 in
  (* child -> parent, for the leave-out / unsolicited bookkeeping *)
  let parents = Hashtbl.create 16 in
  let rec index_parents (Tree (p, children)) =
    List.iter
      (fun (Tree (cp, _) as c) ->
        Hashtbl.replace parents cp.p_name p.p_name;
        index_parents c)
      children
  in
  index_parents w.Run.tree;
  (* deferred long-locks / last-agent acks ride the next real arrival *)
  let flush_all () =
    List.iter
      (fun (_, n) -> Participant.flush_piggybacks n.Run.participant)
      w.Run.nodes
  in
  let maybe_done () =
    if !arrived = cfg.txns && !outstanding = 0 then
      (* nothing genuinely-next is coming: release the stragglers *)
      flush_all ()
  in
  let finish x outcome =
    if x.x_completed = None then begin
      x.x_completed <- Some (E.now engine);
      x.x_outcome <- Some outcome;
      crecord ~terminal:true x
        (if x.x_timed_out then Obs.Causal.Lock_wait else Obs.Causal.Compute)
        (fun () ->
          Printf.sprintf "application notified: %s%s"
            (outcome_to_string outcome)
            (if x.x_timed_out then " (lock-wait timeout)" else ""));
      (match (outcome, x.x_commit_started) with
      | Committed, Some s -> Obs.Histogram.record h_commit (E.now engine -. s)
      | _ -> ());
      Participant.clear_idle_children (Run.participant w w.Run.root) ~txn:x.x_txn;
      decr outstanding;
      maybe_done ()
    end
  in
  Participant.set_on_root_complete
    (Run.participant w w.Run.root)
    (fun ~txn outcome ~pending:_ ->
      match Hashtbl.find_opt records txn with
      | Some x -> finish x outcome
      | None -> ());
  (* -- work plans -------------------------------------------------- *)
  let plan () =
    List.filter_map
      (fun (name, _) ->
        let u = Simkernel.Det_rng.float rng 1.0 in
        if u < cfg.update_prob then
          let key = "k" ^ string_of_int (Simkernel.Det_rng.int rng cfg.keyspace) in
          Some { it_node = name; it_op = Op_update { key } }
        else if u < cfg.update_prob +. cfg.read_prob then
          let key = "k" ^ string_of_int (Simkernel.Det_rng.int rng cfg.keyspace) in
          Some { it_node = name; it_op = Op_read { key } }
        else None)
      w.Run.nodes
  in
  let rec subtree_idle x (Tree (p, children)) =
    (not (node_has_work x p.p_name)) && List.for_all (subtree_idle x) children
  in
  (* tell each parent which child subtrees gave it nothing this txn *)
  let mark_idle x =
    let rec mark (Tree (p, children)) =
      let parent = Run.participant w p.p_name in
      List.iter
        (fun (Tree (cp, _) as child) ->
          if subtree_idle x child then
            Participant.note_idle_child parent ~txn:x.x_txn ~child:cp.p_name;
          mark child)
        children
    in
    mark w.Run.tree
  in
  (* A node its parent will leave out must not receive an unsolicited-vote
     trigger; every other unsolicited member must, or the vote timer will
     presume NO from it. *)
  let left_out x name =
    config.opts.leave_out
    &&
    match Hashtbl.find_opt parents name with
    | None -> false
    | Some parent_name ->
        let rec find (Tree (p, _) as t') =
          if p.p_name = name then Some t'
          else
            let (Tree (_, children)) = t' in
            List.find_map find children
        in
        (match find w.Run.tree with
        | Some subtree ->
            subtree_idle x subtree
            && Participant.is_suspended
                 (Run.participant w parent_name)
                 ~child:name
        | None -> false)
  in
  let trigger_unsolicited x =
    if config.opts.unsolicited_vote then
      List.iter
        (fun (name, n) ->
          if n.Run.profile.p_unsolicited && not (left_out x name) then
            ignore
              (E.schedule engine ~delay:0.0 (fun () ->
                   crecord ~link_from:w.Run.root ~who:name x Obs.Causal.Compute
                     (fun () -> "unsolicited vote trigger");
                   Participant.begin_unsolicited n.Run.participant ~txn:x.x_txn)))
        w.Run.nodes
  in
  (* -- abort before commit: lock-wait timeout or node crash -------- *)
  let release_everywhere x =
    List.iter
      (fun it ->
        (* a down member has no volatile state to release (its lock table
           died with it); sending it work would only pollute its log *)
        if Net.is_up w.Run.net it.it_node then
          Kvstore.abort (Run.kv w it.it_node) ~txn:x.x_txn (fun () -> ()))
      x.x_items
  in
  (* Fail a transaction that has not yet entered the commit protocol:
     lock-wait timeout, a needed member crashing under it, or a dead
     coordinator.  Transactions already inside 2PC are the protocol's
     problem, not the driver's. *)
  let fail_txn x =
    if x.x_commit_started = None && x.x_completed = None then begin
      (match x.x_timer with
      | Some ev ->
          E.cancel engine ev;
          x.x_timer <- None
      | None -> ());
      x.x_timed_out <- true;
      release_everywhere x;
      finish x Aborted
    end
  in
  (* Arrivals and lock-wait timeouts are the driver's two per-transaction
     event classes; both schedule flat (kind + txn index) so the steady-state
     workload allocates no event closures.  [by_idx] maps the index back. *)
  let by_idx : txn_rec option array = Array.make (cfg.txns + 1) None in
  let timeout_kind =
    E.register_kind engine ~name:"mixer.lock_timeout" (fun i _ _ _ ->
        match by_idx.(i) with Some x -> fail_txn x | None -> ())
  in
  (* Branch abandonment (fault runs only): a member that entered a commit's
     write phase but was never asked to vote - its coordinator died or was
     cut off before Prepare reached it - would hold its locks forever,
     because no protocol state exists there to drive a resolution.  Before
     voting an RM is free to abort unilaterally (Section 2), so a watchdog
     reaps such branches: still up, not blocked in any protocol state, yet
     still holding work for the transaction.  A member that voted is in
     doubt (or otherwise unresolved) and is deliberately left alone. *)
  let reap x () =
    List.iter
      (fun it ->
        let name = it.it_node in
        if Net.is_up w.Run.net name then begin
          let n = Run.node w name in
          let kv = n.Run.kv in
          let blocked =
            List.mem x.x_txn (Kvstore.in_doubt kv)
            || List.mem_assoc x.x_txn
                 (Participant.unresolved_txns n.Run.participant)
          in
          let holding =
            Kvstore.is_updated kv ~txn:x.x_txn
            || List.mem x.x_txn (Lockmgr.holding_txns (Kvstore.locks kv))
          in
          if (not blocked) && holding then
            Kvstore.abandon kv ~txn:x.x_txn (fun () -> ())
        end)
      x.x_items
  in
  (* A crash fails every pre-commit transaction that touched (or was about
     to touch) the dead node: its write set and lock grants are gone, so
     letting the commit proceed would silently lose the update. *)
  List.iter
    (fun (name, n) ->
      Participant.set_on_crash n.Run.participant (fun () ->
          Hashtbl.iter
            (fun _ x -> if node_has_work x name then fail_txn x)
            records))
    w.Run.nodes;
  (* -- commit ------------------------------------------------------ *)
  let start_commit x =
    (match x.x_timer with
    | Some ev ->
        E.cancel engine ev;
        x.x_timer <- None
    | None -> ());
    if not x.x_timed_out then begin
      if Participant.is_crashed (Run.participant w w.Run.root) then
        (* nobody is alive to coordinate *)
        fail_txn x
      else begin
        x.x_commit_started <- Some (E.now engine);
        crecord x Obs.Causal.Compute (fun () -> "commit requested");
        mark_idle x;
        trigger_unsolicited x;
        Participant.begin_commit (Run.participant w w.Run.root) ~txn:x.x_txn;
        if inject <> None then
          ignore (E.schedule engine ~delay:cfg.lock_timeout (reap x))
      end
    end
  in
  (* -- lock acquisition, one item at a time in tree order ---------- *)
  let rec acquire x items =
    match items with
    | [] -> start_commit x
    | { it_node; it_op } :: rest ->
        if not (Net.is_up w.Run.net it_node) then
          (* the member is down right now: fail fast rather than doing work
             a restart would silently forget *)
          fail_txn x
        else begin
          let kv = Run.kv w it_node in
          let requested = E.now engine in
          let after_grant () =
            let waited = E.now engine -. requested in
            if waited > 1e-9 then begin
              x.x_waits <- x.x_waits + 1;
              x.x_wait_time <- x.x_wait_time +. waited;
              Obs.Histogram.record h_wait waited
            end;
            crecord x
              (if waited > 1e-9 then Obs.Causal.Lock_wait
               else Obs.Causal.Compute)
              (fun () ->
                let key =
                  match it_op with
                  | Op_update { key } | Op_read { key } -> key
                in
                Printf.sprintf "lock granted: %s@%s" key it_node);
            if x.x_timed_out then
              (* granted after we gave up: let it go again *)
              Kvstore.abort kv ~txn:x.x_txn (fun () -> ())
            else acquire x rest
          in
          match it_op with
          | Op_update { key } ->
              Kvstore.put_async kv ~txn:x.x_txn ~key ~value:(txn_value x.x_txn)
                ~granted:after_grant
          | Op_read { key } ->
              Kvstore.get_async kv ~txn:x.x_txn ~key ~granted:(fun _ ->
                  after_grant ())
        end
  in
  (* -- arrivals ---------------------------------------------------- *)
  let arrive i =
    (* this transaction's data exchange carries any deferred acks: the
       "genuinely-next transaction" of the long-locks design *)
    flush_all ();
    let txn = Printf.sprintf "mx-%d" i in
    let x =
      {
        x_txn = txn;
        x_arrival = E.now engine;
        x_items = plan ();
        x_commit_started = None;
        x_completed = None;
        x_outcome = None;
        x_timed_out = false;
        x_timer = None;
        x_waits = 0;
        x_wait_time = 0.0;
      }
    in
    Hashtbl.replace records txn x;
    by_idx.(i) <- Some x;
    order := txn :: !order;
    incr arrived;
    incr outstanding;
    crecord x Obs.Causal.Compute (fun () -> "arrival");
    x.x_timer <-
      Some
        (E.schedule_flat engine ~delay:cfg.lock_timeout ~kind:timeout_kind
           ~a0:i ~a1:0 ~a2:0);
    acquire x x.x_items
  in
  let arrive_kind =
    E.register_kind engine ~name:"mixer.arrive" (fun i _ _ _ -> arrive i)
  in
  let mean =
    cfg.base_interarrival /. float_of_int (max 1 cfg.concurrency)
  in
  let at = ref 0.0 in
  for i = 1 to cfg.txns do
    ignore (E.schedule_flat engine ~delay:!at ~kind:arrive_kind ~a0:i ~a1:0 ~a2:0);
    at := !at +. Simkernel.Det_rng.exponential rng ~mean
  done;
  (* the fault plan (if any) schedules its crashes, partitions, drops and
     jitter activations onto the same engine before anything runs *)
  (match inject with Some f -> f w | None -> ());
  E.run engine;
  (* -- aggregate --------------------------------------------------- *)
  let all = List.rev_map (Hashtbl.find records) !order in
  let summaries =
    List.map
      (fun x ->
        {
          ts_txn = x.x_txn;
          ts_items = x.x_items;
          ts_outcome = x.x_outcome;
          ts_commit_started = x.x_commit_started <> None;
          ts_timed_out = x.x_timed_out;
          ts_arrival = x.x_arrival;
          ts_completed = x.x_completed;
        })
      all
  in
  let committed_recs =
    List.filter (fun x -> x.x_outcome = Some Committed) all
  in
  let committed = List.length committed_recs in
  let aborted =
    List.length (List.filter (fun x -> x.x_outcome = Some Aborted) all)
  in
  (* lock holds are only known once the lock manager has seen the releases:
     stream them into the histogram here rather than collecting a list *)
  List.iter
    (fun x ->
      if x.x_outcome = Some Committed then
        let nodes =
          List.sort_uniq compare (List.map (fun it -> it.it_node) x.x_items)
        in
        match nodes with
        | [] -> ()
        | _ ->
            Obs.Histogram.record h_hold
              (List.fold_left
                 (fun acc name ->
                   acc
                   +. Lockmgr.txn_lock_time
                        (Kvstore.locks (Run.kv w name))
                        ~txn:x.x_txn)
                 0.0 nodes))
    all;
  let last_completion =
    List.fold_left
      (fun acc x -> match x.x_completed with Some c -> max acc c | None -> acc)
      0.0 all
  in
  let duration = last_completion in
  let flows = Trace.flows w.Run.trace in
  let data_flows = Trace.data_flows w.Run.trace in
  let force_ios =
    List.fold_left
      (fun acc wal -> acc + (Wal.Log.stats wal).Wal.Log.force_ios)
      0 (Run.all_wals w)
  in
  let total_waits = List.fold_left (fun acc x -> acc + x.x_waits) 0 all in
  let total_wait_time =
    List.fold_left (fun acc x -> acc +. x.x_wait_time) 0.0 all
  in
  let q h p = if Obs.Histogram.count h = 0 then 0.0 else Obs.Histogram.quantile h p in
  let hist_mean h = if Obs.Histogram.count h = 0 then 0.0 else Obs.Histogram.mean h in
  let phase_latency =
    List.filter_map
      (fun (name, h) ->
        let prefix = "phase/" in
        let pl = String.length prefix in
        if String.length name > pl && String.sub name 0 pl = prefix then
          Some (String.sub name pl (String.length name - pl), Obs.Histogram.summary h)
        else None)
      (Obs.Registry.histograms reg)
  in
  let ratio = Metrics.Agg.ratio in
  let agg =
    {
      Metrics.Agg.label = label_of_opts config.opts;
      concurrency = cfg.concurrency;
      txns = cfg.txns;
      committed;
      aborted;
      duration;
      throughput = (if duration > 0.0 then ratio (float_of_int committed) 1 /. duration else 0.0);
      abort_rate = ratio (float_of_int aborted) cfg.txns;
      commit_latency_p50 = q h_commit 50.0;
      commit_latency_p95 = q h_commit 95.0;
      commit_latency_p99 = q h_commit 99.0;
      commit_latency_mean = hist_mean h_commit;
      lock_hold_p50 = q h_hold 50.0;
      lock_hold_p95 = q h_hold 95.0;
      lock_hold_p99 = q h_hold 99.0;
      lock_wait_mean = ratio total_wait_time cfg.txns;
      lock_waits = total_waits;
      flows;
      data_flows;
      flows_per_commit = ratio (float_of_int flows) committed;
      tm_writes = Trace.tm_writes w.Run.trace;
      tm_forced = Trace.tm_forced_writes w.Run.trace;
      force_ios;
      force_ios_per_commit = ratio (float_of_int force_ios) committed;
      consistency_violations = Audit.total (Audit.breakdown w summaries);
      phase_latency;
    }
  in
  (agg, w, summaries)

let run ?config ?scratch cfg tree =
  let agg, w, _ = run_full ?config ?scratch cfg tree in
  (agg, w)
