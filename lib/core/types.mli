(** Shared vocabulary of the 2PC protocol engine. *)

(** Which commit protocol family a run uses (Sections 2 and 3 of the paper). *)
type protocol =
  | Basic  (** the baseline 2PC of Figure 1 *)
  | Presumed_abort  (** PA: no information at coordinator means abort *)
  | Presumed_nothing
      (** PN: coordinator force-logs commit-pending before Prepare and owns
          recovery and heuristic-damage reporting *)
  | Custom of string
      (** a protocol registered under this name in the {!Protocol} registry
          (the extension point for commit protocols beyond the paper);
          {!protocol_to_string} returns the name verbatim *)

type outcome = Committed | Aborted

(** A subordinate's vote.  [reliable] and [leave_out_ok] are the protected
    variables carried on a YES vote (Sections 4 "Vote Reliable" and
    "Leaving Inactive Partners Out"). *)
type vote =
  | Vote_yes of { reliable : bool; leave_out_ok : bool }
  | Vote_read_only
  | Vote_no

type ack_policy =
  | Early_ack  (** ack as soon as locally committed, propagation in progress *)
  | Late_ack  (** ack only after the whole subtree acknowledged *)

(** Optimization switches for a run.  Each switch corresponds to one
    optimization of Section 4; they compose freely.

    Prefer {!opts_of_list} over building this record directly: the list API
    is what the CLI, bench and tests share, and new code should not spell
    out nine fields to flip one. *)
type opts = {
  read_only : bool;  (** allow read-only votes and phase-2 exclusion *)
  last_agent : bool;  (** delegate the decision to the last subordinate *)
  unsolicited_vote : bool;  (** self-prepared servers vote without Prepare *)
  leave_out : bool;  (** exclude suspended OK-TO-LEAVE-OUT subtrees *)
  shared_log : bool;  (** colocated LRM members skip their own forces *)
  long_locks : bool;  (** ack piggybacks on next-transaction data *)
  ack : ack_policy;
  vote_reliable : bool;  (** reliable voters use implied acks *)
  wait_for_outcome : bool;  (** one recovery attempt, then "outcome pending" *)
}

val no_opts : opts

(** One optimization switch, by name.  [`Early_ack] selects the
    {!Early_ack} acknowledgment policy; every other case sets the
    corresponding boolean field of {!opts}. *)
type opt =
  [ `Read_only
  | `Last_agent
  | `Unsolicited_vote
  | `Leave_out
  | `Shared_log
  | `Long_locks
  | `Early_ack
  | `Vote_reliable
  | `Wait_for_outcome ]

val all_opts : opt list
(** Every switch, in a stable display order. *)

val opt_to_string : opt -> string
(** Canonical CLI spelling, e.g. ["read-only"], ["shared-log"]. *)

val opt_of_string : string -> opt option
(** Inverse of {!opt_to_string}; also accepts underscore spellings and a few
    aliases (["readonly"], ["unsolicited-vote"], ["reliable"]).
    Case-insensitive. *)

val opts_of_list : opt list -> opts
(** Fold a list of switches into an {!opts} record, starting from
    {!no_opts}. *)

val opts_to_list : opts -> opt list
(** The switches enabled in [o], in {!all_opts} order.
    [opts_of_list (opts_to_list o) = o]. *)

val opt_enabled : opts -> opt -> bool

(** When an in-doubt participant loses patience (Section 1: heuristic
    decisions are "a practical necessity in the commercial environment"). *)
type heuristic_policy =
  | Heuristic_never
  | Heuristic_commit_after of float
  | Heuristic_abort_after of float

(** Crash-injection points inside the commit protocol, named from the
    perspective of the crashing node. *)
type crash_point =
  | Cp_on_prepare  (** subordinate: Prepare received, nothing logged *)
  | Cp_after_prepared_log  (** subordinate: Prepared durable, vote not sent *)
  | Cp_after_vote  (** subordinate: in doubt *)
  | Cp_before_decision_log  (** coordinator: decided, nothing durable *)
  | Cp_after_decision_log  (** coordinator: outcome durable, nothing sent *)
  | Cp_after_decision_received
      (** subordinate: outcome known, not yet durable *)
  | Cp_before_ack  (** subordinate: locally finished, ack unsent *)
  | Cp_after_commit_pending  (** PN coordinator: commit-pending durable *)

type fault = {
  f_node : string;
  f_point : crash_point;
  f_restart_after : float option;  (** [None] = stays down forever *)
}

(** Static description of one commit-tree member. *)
type profile = {
  p_name : string;
  p_updated : bool;  (** performed updates: not eligible for read-only *)
  p_reliable : bool;  (** LRM declares heuristics vanishingly unlikely *)
  p_leave_out_ok : bool;  (** pure server: may be suspended and left out *)
  p_left_out : bool;  (** this transaction: did no work, gets left out *)
  p_unsolicited : bool;  (** votes without waiting for Prepare *)
  p_vote_no : bool;  (** forced NO vote (abort-path testing) *)
  p_shares_parent_log : bool;  (** colocated LRM member (shared-log opt) *)
  p_long_locks : bool;  (** defers its ack onto next-transaction data *)
  p_heuristic : heuristic_policy;
}

val member :
  ?updated:bool ->
  ?reliable:bool ->
  ?leave_out_ok:bool ->
  ?left_out:bool ->
  ?unsolicited:bool ->
  ?vote_no:bool ->
  ?shares_parent_log:bool ->
  ?long_locks:bool ->
  ?heuristic:heuristic_policy ->
  string ->
  profile
(** Smart constructor; every flag defaults to the plain updating member. *)

(** Commit tree: root is the commit coordinator. *)
type tree = Tree of profile * tree list

val tree_size : tree -> int
val tree_members : tree -> profile list
val tree_profile : tree -> profile

(** Per-run protocol configuration.

    Direct field construction ([{ default_config with ... }]) is deprecated
    in new code: use {!default_config} with the [with_*] builders below so
    call sites survive field additions. *)
type config = {
  protocol : protocol;
  opts : opts;
  latency : float;  (** default network latency between members *)
  io_latency : float;  (** one physical log force *)
  group_commit : Wal.Log.group option;
  faults : fault list;
  retry_interval : float;  (** decision/ack retransmission period *)
  max_retries : int;  (** bound on automatic retransmissions *)
  prepare_retries : int;
      (** Prepare re-sends to silent voters before presuming NO; [0]
          (default) aborts on the first vote timeout as before *)
  retry_backoff : float;
      (** retransmission backoff multiplier, capped exponential;
          [1.0] (default) keeps the classic fixed period *)
  implied_ack_delay : float;
      (** think time before the "next transaction" data message that carries
          implied and long-locks acknowledgments in single-transaction runs *)
  trace_events : bool;
      (** keep the full event timeline in the trace ([true] by default);
          [false] maintains only the O(1) aggregate counters — the mode
          for high-volume sweeps where nothing reads the timeline *)
  bft_f : int;
      (** fault tolerance of the BFT commit variant ([1] by default): the
          coordinator is replicated 2f+1 ways and decisions need f+1
          matching endorsements; ignored by every other protocol *)
}

val default_config : config

val with_protocol : protocol -> config -> config
val with_opts : opt list -> config -> config
(** Replaces the whole [opts] field with [opts_of_list l]. *)

val with_faults : fault list -> config -> config
val with_latency : float -> config -> config
val with_io_latency : float -> config -> config
val with_trace_events : bool -> config -> config
val with_group_commit : size:int -> timeout:float -> config -> config
val without_group_commit : config -> config
val with_retries : interval:float -> max:int -> config -> config
val with_prepare_retries : int -> config -> config
val with_retry_backoff : float -> config -> config
val with_implied_ack_delay : float -> config -> config
val with_bft_f : int -> config -> config

val protocol_to_string : protocol -> string
val outcome_to_string : outcome -> string
val vote_to_string : vote -> string
