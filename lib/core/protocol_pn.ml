(** Presumed Nothing (the paper's Figure 3) expressed through
    {!Protocol_intf}: the coordinator force-logs commit-pending before any
    Prepare flows and therefore owns recovery - subordinates never
    inquire, damage reports travel to the root, and a restarted
    coordinator that finds a dangling commit-pending record aborts and
    drives its subordinates itself. *)

open Types

let protocol : Protocol_intf.t =
  {
    p_id = Presumed_nothing;
    p_flag = "pn";
    p_aliases = [];
    p_description =
      "presumed nothing: coordinator-owned recovery via commit-pending";
    (* The coordinator must remember its subordinates before any Prepare
       leaves the node; a cascaded coordinator with no children of its own
       has nothing to remember (it is a plain voter). *)
    p_begin_commit =
      (fun ops ~txn ~root ~has_children ~k ->
        if root then
          ops.op_force ~txn Wal.Log_record.Commit_pending (fun () ->
              if not (ops.op_crash_at Cp_after_commit_pending) then k ())
        else if has_children then
          ops.op_force ~txn Wal.Log_record.Commit_pending k
        else k ());
    (* subordinates durably record their acknowledgment obligation (the
       agent record) in addition to the prepared record: Table 2 charges
       them four writes, three forced *)
    p_voter_log = [ Wal.Log_record.Agent; Wal.Log_record.Prepared ];
    (* commit-pending (with the buffered RM records) is already the
       delegating coordinator's durability point *)
    p_delegation_log = [];
    p_decision_log =
      (function
      | Committed -> Protocol_intf.Log_force Wal.Log_record.Committed
      | Aborted -> Protocol_intf.Log_force Wal.Log_record.Aborted);
    p_subordinate_decision_log =
      (function
      | Committed -> Protocol_intf.Log_force Wal.Log_record.Committed
      | Aborted -> Protocol_intf.Log_force Wal.Log_record.Aborted);
    p_ack_on_abort = true;
    (* a silent member may be crashed holding a forced prepare whose vote
       never reached us; PN has no presumption it could fall back on, so
       the abort must be delivered and acknowledged (PA and basic members
       resolve this themselves by inquiring) *)
    p_abort_ack_required =
      (fun ~vote ~presumed_no ->
        presumed_no || match vote with Some Vote_no -> false | _ -> true);
    p_damage_to_root = true;
    p_indoubt_tick =
      (fun ops ~txn:_ ~targets:_ ->
        ops.op_note "in doubt: awaiting coordinator recovery (PN)");
    p_indoubt_restart = (fun _ops ~txn:_ ~targets:_ -> ());
    p_recover =
      (fun kinds ->
        let has k = List.mem k kinds in
        if has Wal.Log_record.End then Protocol_intf.Rec_none
        else if has Wal.Log_record.Committed then
          Protocol_intf.Rec_redrive Committed
        else if has Wal.Log_record.Aborted then
          Protocol_intf.Rec_redrive Aborted
        else if has Wal.Log_record.Prepared then Protocol_intf.Rec_in_doubt
        else if has Wal.Log_record.Commit_pending then
          (* coordinator interrupted before deciding: abort and drive the
             subordinates (coordinator-initiated recovery) *)
          Protocol_intf.Rec_decide
            {
              outcome = Aborted;
              note = "PN recovery: commit-pending without outcome - aborting";
            }
        else Protocol_intf.Rec_none);
    (* PN subordinates never inquire (recovery is coordinator-owned), so
       any Inquiry is a protocol violation PN can reject outright; the
       shared topology/known-outcome checks cover the rest *)
    p_admissible =
      (fun ~cfg:_ ~src ~role ~known payload ->
        match payload with
        | Msg.Inquiry _ ->
            Some
              (Printf.sprintf
                 "rejecting inquiry from %s: PN recovery is coordinator-owned"
                 src)
        | _ -> Protocol_intf.standard_admissible ~src ~role ~known payload);
    p_certify = None;
  }
