(** Orchestration: build a simulated transaction-processing complex for a
    commit tree, give every member work, run two-phase commits to
    quiescence and summarize the results. *)

(** One member's runtime pieces. *)
type node = {
  participant : Participant.t;
  wal : Wal.Log.t;
  kv : Kvstore.t;
  profile : Types.profile;
}

(** A built complex: engine, network, shared trace and all members. *)
type world = {
  engine : Simkernel.Engine.t;
  net : Net.t;
  trace : Trace.t;
  registry : Obs.Registry.t;
      (** telemetry registry shared by every member: per-phase residence
          histograms ("phase/voting", ...), blocking-window histograms
          ("blocking/..."), plus whatever the driver adds *)
  causal : Obs.Causal.t;
      (** causal event recorder shared by every member; created with mode
          [Off] — flip it with {!Obs.Causal.set_mode} before committing to
          collect the per-transaction event graph *)
  cfg : Types.config;
  tree : Types.tree;
  nodes : (string * node) list;  (** tree order, root first *)
  root : string;
  mutable outcome : Types.outcome option;
      (** what the root reported to its application, once it has *)
  mutable pending : bool;
      (** wait-for-outcome: completion carried "outcome pending" *)
}

val setup : ?config:Types.config -> ?scratch:Simkernel.Engine.t -> Types.tree -> world
(** Build the complex: one participant, write-ahead log and key-value
    resource manager per member.  With the shared-log optimization enabled,
    members flagged [p_shares_parent_log] reuse their parent's log.

    [scratch] recycles an engine from a previous world via
    {!Simkernel.Engine.reset} instead of allocating a fresh one: the
    per-world setup cost is amortized across a driver's many small cells.
    A world built on a recycled engine behaves byte-identically to one
    built on a fresh engine; the caller must no longer drive the previous
    world that used it. *)

val node : world -> string -> node
val participant : world -> string -> Participant.t
val kv : world -> string -> Kvstore.t
val root_node : world -> node
val all_wals : world -> Wal.Log.t list

val perform_work : world -> txn:string -> unit
(** Default workload: every updated member writes one record (holding an
    exclusive lock until the commit releases it); read-only members read
    one; left-out members touch nothing. *)

val commit : ?txn:string -> world -> Metrics.t
(** [commit w] performs the default work, triggers unsolicited voters,
    starts commit processing at the root and runs the engine to
    quiescence.  [txn] defaults to ["txn-1"]. *)

val commit_tree :
  ?config:Types.config -> ?txn:string -> Types.tree -> Metrics.t * world
(** [setup] + [commit] in one step. *)

(** What one member does during one transaction of a sequence. *)
type work = Work_update | Work_read | Work_none

val commit_sequence :
  ?config:Types.config ->
  work:(txn:string -> node:string -> work) ->
  txns:string list ->
  Types.tree ->
  (string * Metrics.t) list * world
(** Run several transactions through the same complex under a per-member,
    per-transaction work assignment.  This is where the dynamic
    OK-TO-LEAVE-OUT protocol operates: a member whose committed YES carried
    the leave-out flag is suspended, and when the workload gives its whole
    subtree nothing to do in a later transaction, its parent leaves it out
    of that commit.  The shared trace is cleared between transactions, so
    each returned {!Metrics.t} covers exactly one commit. *)

val committed_states : world -> (string * (string * string) list) list
(** Committed key/value bindings per member (sorted), for atomicity
    checks. *)

val consistent : world -> txn:string -> outcome:Types.outcome -> bool
(** True when every updated member's data reflects [outcome]: the update
    visible after a commit, absent after an abort. *)
