(** Canned runs that regenerate the paper's figures as message-sequence
    traces, plus the failure/heuristic situations the text describes. *)

open Types

type t = {
  sc_id : string;
  sc_title : string;
  sc_description : string;
  sc_nodes : string list;  (** column order for the sequence diagram *)
  sc_trace : Trace.t;
  sc_metrics : Metrics.t option;
}

let run_scenario ~id ~title ~description ~nodes ?config tree =
  let metrics, w = Run.commit_tree ?config tree in
  {
    sc_id = id;
    sc_title = title;
    sc_description = description;
    sc_nodes = nodes;
    sc_trace = w.Run.trace;
    sc_metrics = Some metrics;
  }

(** Figure 1: simple two-phase commit, one coordinator and one subordinate. *)
let figure1 () =
  run_scenario ~id:"figure-1" ~title:"Simple Two-Phase Commit Processing"
    ~description:
      "Prepare / Vote YES / Commit / Ack with the subordinate forcing \
       prepared and committed records and the coordinator forcing the \
       commit record."
    ~nodes:[ "coordinator"; "subordinate" ]
    ~config:(default_config |> with_protocol Basic)
    (Tree (member "coordinator", [ Tree (member "subordinate", []) ]))

(** Figure 2: 2PC with a cascaded (intermediate) coordinator. *)
let figure2 () =
  run_scenario ~id:"figure-2" ~title:"Two-Phase Commit with Cascaded Coordinator"
    ~description:
      "A three-deep commit tree: the intermediate propagates Prepare \
       downstream and collects votes/acks for its subtree."
    ~nodes:[ "coordinator"; "cascaded"; "subordinate" ]
    ~config:(default_config |> with_protocol Basic)
    (Tree
       ( member "coordinator",
         [ Tree (member "cascaded", [ Tree (member "subordinate", []) ]) ] ))

(** Figure 3: Presumed Nothing with an intermediate coordinator.  Both the
    root and the cascaded coordinator force commit-pending records before
    sending Prepare. *)
let figure3 () =
  run_scenario ~id:"figure-3"
    ~title:"Presumed Nothing Commit Processing with Intermediate Coordinator"
    ~description:
      "PN forces a commit-pending record at the (cascaded) coordinator \
       before any Prepare is sent, so recovery can reach subordinates and \
       collect heuristic-damage reports."
    ~nodes:[ "coordinator"; "cascaded"; "subordinate" ]
    ~config:(default_config |> with_protocol Presumed_nothing)
    (Tree
       ( member "coordinator",
         [ Tree (member "cascaded", [ Tree (member "subordinate", []) ]) ] ))

(** Figure 4: partial read-only - one subordinate updated, the other only
    read; the read-only voter drops out of phase two with no log writes. *)
let figure4 () =
  run_scenario ~id:"figure-4" ~title:"Partial Read-Only Commit Processing"
    ~description:
      "The read-only subordinate votes read-only, releases its locks \
       immediately, writes nothing and is left out of the decision phase."
    ~nodes:[ "coordinator"; "updater"; "reader" ]
    ~config:(default_config |> with_opts [ `Read_only ])
    (Tree
       ( member "coordinator",
         [ Tree (member "updater", []); Tree (member ~updated:false "reader", []) ] ))

(** Figure 5: the hazard behind the restricted leave-out rule.  Two
    programs independently initiate commit processing for the same
    transaction; the common subordinate detects two would-be coordinators
    and the transaction aborts. *)
let figure5 () =
  let engine = Simkernel.Engine.create () in
  let net = Net.create engine ~default_latency:1.0 () in
  let trace = Trace.create () in
  let cfg = default_config in
  let wal_cfg = { Wal.Log.io_latency = cfg.io_latency; group = None } in
  let mk_node ?(children = []) ~parent name =
    let wal = Wal.Log.create engine ~node:name ~config:wal_cfg () in
    let kv = Kvstore.create engine ~name:(name ^ ".rm") ~wal () in
    let p =
      Participant.create ~engine ~net ~trace ~cfg ~profile:(member name)
        ~parent ~child_profiles:children ~wal ~kv
    in
    Participant.attach p;
    (p, kv)
  in
  (* Pa sits between two subtrees; Pd and Pe each believe they coordinate *)
  let pa, kv_a = mk_node ~parent:(Some "Pd") "Pa" in
  ignore pa;
  let pd, kv_d = mk_node ~children:[ member "Pa" ] ~parent:None "Pd" in
  let pe, kv_e = mk_node ~children:[ member "Pa" ] ~parent:None "Pe" in
  let txn = "txn-1" in
  ignore (Kvstore.put kv_a ~txn ~key:"shared" ~value:"v");
  ignore (Kvstore.put kv_d ~txn ~key:"d" ~value:"v");
  ignore (Kvstore.put kv_e ~txn ~key:"e" ~value:"v");
  Participant.begin_commit pd ~txn;
  Participant.begin_commit pe ~txn;
  Simkernel.Engine.run engine;
  {
    sc_id = "figure-5";
    sc_title = "Transaction Tree Partitioned Because of Left Out Partners";
    sc_description =
      "Pd and Pe both initiate commit processing for the same transaction \
       (as can happen when a shared partner was naively left out by both \
       sides).  Two TMs would own the commit decision, so the transaction \
       aborts - the reason PN only allows leaving out suspended pure-server \
       subtrees.";
    sc_nodes = [ "Pd"; "Pa"; "Pe" ];
    sc_trace = trace;
    sc_metrics = None;
  }

(** Figure 6: last-agent commit processing. *)
let figure6 () =
  run_scenario ~id:"figure-6" ~title:"Last-Agent Commit Processing"
    ~description:
      "The coordinator prepares itself, force-writes a prepared record and \
       sends its YES vote to the last agent, which decides and replies with \
       the outcome; the acknowledgment is implied by the next data sent."
    ~nodes:[ "coordinator"; "last-agent" ]
    ~config:(default_config |> with_opts [ `Last_agent ])
    (Tree (member "coordinator", [ Tree (member "last-agent", []) ]))

(** Figure 7: long locks committing chained transactions; the subordinate
    buffers the commit acknowledgment into the message beginning the next
    transaction. *)
let figure7 () =
  let res = Stream.run_chain Stream.Chain_long_locks ~r:2 in
  {
    sc_id = "figure-7";
    sc_title = "Example of Long Locks committing one transaction";
    sc_description =
      "Two chained transactions under the long-locks variation: each \
       commit acknowledgment rides the data message that begins the next \
       transaction, reducing protocol flows from 4 to 3 per transaction at \
       the cost of the coordinator's resources staying locked longer.";
    sc_nodes = [ "C"; "S" ];
    sc_trace = res.Stream.trace;
    sc_metrics = None;
  }

(** Figure 8: all resources voted reliable - the cascaded coordinator uses
    early acknowledgment and the reliable subordinate's ack is implied. *)
let figure8 () =
  run_scenario ~id:"figure-8"
    ~title:"Two-Phase Commit Processing, All Resources Voted Reliable"
    ~description:
      "Every resource declares heuristic decisions vanishingly unlikely; \
       intermediates may acknowledge early and the reliable members' \
       explicit acknowledgments are elided."
    ~nodes:[ "coordinator"; "cascaded"; "subordinate" ]
    ~config:(default_config |> with_opts [ `Vote_reliable ])
    (Tree
       ( member "coordinator",
         [
           Tree
             ( member ~reliable:true "cascaded",
               [ Tree (member ~reliable:true "subordinate", []) ] );
         ] ))

let all () =
  [
    figure1 ();
    figure2 ();
    figure3 ();
    figure4 ();
    figure5 ();
    figure6 ();
    figure7 ();
    figure8 ();
  ]

let render sc =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "=== %s: %s ===\n%s\n\n" sc.sc_id sc.sc_title sc.sc_description);
  Buffer.add_string buf (Trace.sequence_diagram sc.sc_trace ~nodes:sc.sc_nodes);
  (match sc.sc_metrics with
  | Some m ->
      Buffer.add_string buf
        (Printf.sprintf "\n%s\n" (Format.asprintf "%a" Metrics.pp m))
  | None -> ());
  Buffer.contents buf
