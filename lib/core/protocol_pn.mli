(** Presumed Nothing (the paper's Figure 3) expressed through
    {!Protocol_intf}. *)

val protocol : Protocol_intf.t
