(** Presumed Abort (the paper's Figure 2) expressed through
    {!Protocol_intf}. *)

val protocol : Protocol_intf.t
