(** Concurrent multi-transaction throughput engine.

    Where {!Run.commit_sequence} runs transactions strictly one at a time,
    the mixer drives N {e overlapping} transactions through one
    {!Run.world} as an open-loop arrival process on the shared event
    engine.  That makes the phenomena the paper argues about in Section 4
    actually visible: group commit batches force I/Os {e across}
    concurrent transactions, long-locks and implied acknowledgments
    piggyback on genuinely-next transactions
    ({!Participant.flush_piggybacks}), and a contended keyspace produces
    real {!Lockmgr} queue waits and timeout aborts.

    Everything is deterministic: arrivals and work plans come from a
    {!Simkernel.Det_rng} seeded from [cfg.seed], so the same
    configuration always yields bit-identical aggregates. *)

type op = Op_update of { key : string } | Op_read of { key : string }
type item = { it_node : string; it_op : op }

type cfg = {
  concurrency : int;  (** open-loop arrival-rate multiplier *)
  txns : int;  (** transactions to submit *)
  keyspace : int;  (** keys per member: smaller = more contention *)
  update_prob : float;  (** per member: P(update one key) *)
  read_prob : float;  (** per member: P(read one key); rest = idle *)
  base_interarrival : float;
      (** mean inter-arrival at concurrency 1; the effective mean is
          [base_interarrival /. concurrency] *)
  lock_timeout : float;  (** give up waiting for locks after this long *)
  seed : int;
}

val default_cfg : cfg
(** concurrency 1, 100 txns, keyspace 8, 60% update / 25% read,
    base inter-arrival 30.0, lock timeout 120.0, seed 1. *)

(** The driver's view of one transaction at quiescence, for external
    audits (the chaos harness's fault-aware acceptance check). *)
type txn_summary = {
  ts_txn : string;
  ts_items : item list;
  ts_outcome : Types.outcome option;
      (** what the root reported; [None] when faults silenced it *)
  ts_commit_started : bool;
  ts_timed_out : bool;
  ts_arrival : float;
  ts_completed : float option;
      (** when the driver learned the outcome; [None] = never resolved *)
}

val txn_value : string -> string
(** The value transaction [txn] writes under every key it updates. *)

val value_owner : string -> string option
(** Inverse of {!txn_value}: which transaction wrote this value. *)

(** Fault-aware end-of-run atomicity/consistency audit.  Ground truth per
    transaction is the root's report when present, else the durable commit
    evidence in the logs; a member is excused from the committed-everywhere
    obligation only while down or legitimately in doubt.  On a fault-free
    run this reduces exactly to the strict audit the mixer always ran. *)
module Audit : sig
  type breakdown = {
    committed_missing : int;
        (** committed txn not applied at an up, not-in-doubt updated member *)
    aborted_applied : int;
        (** aborted/undecided txn durably applied, or its value visible *)
    bad_value : int;
        (** committed binding not owned by a committed writer of that key *)
  }

  val total : breakdown -> int
  val breakdown : Run.world -> txn_summary list -> breakdown
end

val run_full :
  ?config:Types.config ->
  ?inject:(Run.world -> unit) ->
  ?causal:Obs.Causal.mode ->
  ?scratch:Simkernel.Engine.t ->
  cfg ->
  Types.tree ->
  Metrics.Agg.t * Run.world * txn_summary list
(** Like {!run}, additionally returning per-transaction summaries for
    external audits.  [inject] runs after the world is built and every
    arrival is scheduled, but before the engine starts: a fault plan uses
    it to schedule crashes, partitions, message drops and jitter onto the
    same virtual clock.  [causal] (default [Off]) sets the mode of the
    world's {!Obs.Causal} recorder: with [Graph], every transaction's
    commit becomes a causal event graph reachable from
    [world.Run.causal] — arrivals, lock grants and the commit trigger are
    recorded on the root's chain so each graph is connected from arrival
    to the application-notified terminal.  [scratch] is forwarded to
    {!Run.setup}: the world is built on a recycled engine instead of a
    fresh one. *)

val run :
  ?config:Types.config ->
  ?scratch:Simkernel.Engine.t ->
  cfg ->
  Types.tree ->
  Metrics.Agg.t * Run.world
(** Submit [cfg.txns] transactions against a fresh world built from [tree]
    under [config], run the engine to quiescence and aggregate.

    Per arrival the mixer: flushes deferred piggybacked acknowledgments
    (the arrival {e is} the next transaction's data exchange), draws a work
    plan (each member independently updates, reads or sits out), acquires
    the needed locks in global tree order (ordered acquisition: no
    deadlock), and on full acquisition starts a 2PC at the root.  A
    transaction that cannot get its locks within [cfg.lock_timeout] aborts
    and releases everything it holds.

    The returned aggregate includes an end-of-run atomicity/consistency
    audit ([consistency_violations = 0] on a correct run): committed
    transactions applied at every member they updated, aborted ones applied
    nowhere, and every committed binding owned by the committed transaction
    that wrote it. *)
