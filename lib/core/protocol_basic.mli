(** Baseline two-phase commit (the paper's Figure 1) expressed through
    {!Protocol_intf}. *)

val protocol : Protocol_intf.t
