(** The simulated network carrying 2PC payload bundles. *)

module Payload = struct
  type t = Msg.payload
end

include Netsim.Make (Payload)
