(** The simulated network carrying 2PC payload bundles. *)

include Netsim.Make (struct
  type t = Msg.payload
end)
