(** Event trace of a simulation run.

    The trace is the single source of truth for the quantities the paper
    tabulates: protocol message flows, log writes and forced log writes
    (transaction-manager records only, per the paper's counting convention),
    plus the timeline needed to render the figures as ASCII sequence
    diagrams. *)

type event =
  | Send of {
      time : float;
      src : string;
      dst : string;
      label : string;
      protocol : bool;
          (** false for application data (implied acks, next-transaction
              data): those messages are not 2PC flows *)
    }
  | Deliver of { time : float; src : string; dst : string; label : string }
  | Log_write of {
      time : float;
      node : string;
      kind : Wal.Log_record.kind;
      forced : bool;
      rm : bool;  (** resource-manager record (excluded from paper counts) *)
    }
  | Decide of { time : float; node : string; outcome : Types.outcome }
  | Complete of {
      time : float;
      node : string;
      outcome : Types.outcome;
      pending : bool;  (** wait-for-outcome: "outcome pending" indication *)
    }
  | Heuristic of { time : float; node : string; action : Types.outcome }
  | Damage_detected of {
      time : float;
      node : string;  (** damaged participant *)
      reported_to : string;  (** "" when the report is lost *)
    }
  | Locks_released of { time : float; node : string }
  | Crash of { time : float; node : string }
  | Restart of { time : float; node : string }
  | Note of { time : float; node : string; text : string }

(* The aggregate counters the paper tabulates are maintained incrementally
   on every [record]: the throughput engines read them once per run, and
   with [keep_events = false] they are the only thing a trace costs — no
   list cell per event, which is the dominant allocation of a sweep cell
   once the engine itself stops boxing thunks. *)
type t = {
  keep_events : bool;
  mutable events : event list; (* newest first; [] when not kept *)
  mutable n_flows : int;
  mutable n_data_flows : int;
  mutable n_tm_writes : int;
  mutable n_tm_forced : int;
}

let create ?(keep_events = true) () =
  {
    keep_events;
    events = [];
    n_flows = 0;
    n_data_flows = 0;
    n_tm_writes = 0;
    n_tm_forced = 0;
  }

let keeps_events t = t.keep_events

let record t e =
  (match e with
  | Send { protocol = true; _ } -> t.n_flows <- t.n_flows + 1
  | Send { protocol = false; _ } -> t.n_data_flows <- t.n_data_flows + 1
  | Log_write { rm = false; forced; _ } ->
      t.n_tm_writes <- t.n_tm_writes + 1;
      if forced then t.n_tm_forced <- t.n_tm_forced + 1
  | _ -> ());
  if t.keep_events then t.events <- e :: t.events

let events t = List.rev t.events

let clear t =
  t.events <- [];
  t.n_flows <- 0;
  t.n_data_flows <- 0;
  t.n_tm_writes <- 0;
  t.n_tm_forced <- 0

let event_time = function
  | Send { time; _ }
  | Deliver { time; _ }
  | Log_write { time; _ }
  | Decide { time; _ }
  | Complete { time; _ }
  | Heuristic { time; _ }
  | Damage_detected { time; _ }
  | Locks_released { time; _ }
  | Crash { time; _ }
  | Restart { time; _ }
  | Note { time; _ } ->
      time

(* ------------------------------------------------------------------ *)
(* Paper-convention counting                                           *)
(* ------------------------------------------------------------------ *)

let flows t = t.n_flows
let data_flows t = t.n_data_flows

let count_log_writes ?(include_rm = false) ?(forced_only = false) t =
  List.length
    (List.filter
       (function
         | Log_write { rm; forced; _ } ->
             (include_rm || not rm) && ((not forced_only) || forced)
         | _ -> false)
       t.events)

let tm_writes t = t.n_tm_writes
let tm_forced_writes t = t.n_tm_forced

let node_flows t node =
  List.length
    (List.filter
       (function
         | Send { protocol = true; src; _ } -> src = node
         | _ -> false)
       t.events)

let node_writes ?(forced_only = false) t node =
  List.length
    (List.filter
       (function
         | Log_write { rm = false; node = n; forced; _ } ->
             n = node && ((not forced_only) || forced)
         | _ -> false)
       t.events)

let heuristic_count t =
  List.length (List.filter (function Heuristic _ -> true | _ -> false) t.events)

let damage_reports t =
  List.filter_map
    (function
      | Damage_detected { node; reported_to; _ } -> Some (node, reported_to)
      | _ -> None)
    (events t)

(* Pair each delivery with the oldest unmatched send of the same
   (src, dst, label) channel — FIFO, which is exactly the simulated
   network's per-link delivery order.  Sends that were dropped (or still
   in flight at quiescence) simply never pair.  The result feeds Perfetto
   flow arrows, so each pair carries a stable id. *)
let matched_flows t =
  let pending : (string * string * string, (int * float) list) Hashtbl.t =
    Hashtbl.create 64
  in
  let next = ref 0 in
  let pairs =
    List.filter_map
      (function
        | Send { time; src; dst; label; _ } ->
            let key = (src, dst, label) in
            let id = !next in
            incr next;
            let q = Option.value ~default:[] (Hashtbl.find_opt pending key) in
            Hashtbl.replace pending key (q @ [ (id, time) ]);
            None
        | Deliver { time; src; dst; label } -> (
            let key = (src, dst, label) in
            match Hashtbl.find_opt pending key with
            | Some ((id, sent) :: rest) ->
                Hashtbl.replace pending key rest;
                Some (id, src, dst, label, sent, time)
            | _ -> None)
        | _ -> None)
      (events t)
  in
  pairs

let completion_time t node =
  List.find_map
    (function
      | Complete { time; node = n; _ } when n = node -> Some time
      | _ -> None)
    (events t)

let locks_released_time t node =
  List.find_map
    (function
      | Locks_released { time; node = n } when n = node -> Some time
      | _ -> None)
    (events t)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let event_to_string e =
  let f = Printf.sprintf in
  match e with
  | Send { time; src; dst; label; protocol } ->
      f "%8.2f  %s --> %s : %s%s" time src dst label
        (if protocol then "" else "  [data]")
  | Deliver { time; src; dst; label } ->
      f "%8.2f  %s <-- %s : %s (delivered)" time dst src label
  | Log_write { time; node; kind; forced; rm } ->
      f "%8.2f  %s %s log %s%s" time node
        (if forced then "*FORCES*" else "writes")
        (Wal.Log_record.kind_to_string kind)
        (if rm then " [rm]" else "")
  | Decide { time; node; outcome } ->
      f "%8.2f  %s decides %s" time node (Types.outcome_to_string outcome)
  | Complete { time; node; outcome; pending } ->
      f "%8.2f  %s completes: %s%s" time node
        (Types.outcome_to_string outcome)
        (if pending then " (outcome pending)" else "")
  | Heuristic { time; node; action } ->
      f "%8.2f  %s HEURISTIC %s" time node (Types.outcome_to_string action)
  | Damage_detected { time; node; reported_to } ->
      f "%8.2f  heuristic damage at %s reported to %s" time node
        (if reported_to = "" then "(nobody: report lost)" else reported_to)
  | Locks_released { time; node } -> f "%8.2f  %s releases locks" time node
  | Crash { time; node } -> f "%8.2f  %s CRASHES" time node
  | Restart { time; node } -> f "%8.2f  %s restarts" time node
  | Note { time; node; text } -> f "%8.2f  %s: %s" time node text

let to_string t = String.concat "\n" (List.map event_to_string (events t))

(** Render a message-sequence chart in the style of the paper's figures:
    one column per node (in [nodes] order), message arrows between columns,
    log forces marked beside the writing node. *)
let sequence_diagram ?(width = 16) t ~nodes =
  let buf = Buffer.create 1024 in
  let ncols = List.length nodes in
  let col name =
    let rec idx i = function
      | [] -> None
      | x :: _ when x = name -> Some i
      | _ :: rest -> idx (i + 1) rest
    in
    idx 0 nodes
  in
  let line_width = (ncols * width) + width in
  let header =
    String.concat ""
      (List.map (fun n -> Printf.sprintf "%-*s" width n) nodes)
  in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (String.make (String.length header) '-');
  Buffer.add_char buf '\n';
  let centered_row () = Bytes.make line_width ' ' in
  let put_vertical_bars row =
    List.iteri
      (fun i _ ->
        let pos = (i * width) + (width / 4) in
        if pos < Bytes.length row && Bytes.get row pos = ' ' then
          Bytes.set row pos '|')
      nodes
  in
  let emit_row row =
    put_vertical_bars row;
    let s = Bytes.to_string row in
    (* trim trailing spaces *)
    let len = ref (String.length s) in
    while !len > 0 && s.[!len - 1] = ' ' do
      decr len
    done;
    Buffer.add_string buf (String.sub s 0 !len);
    Buffer.add_char buf '\n'
  in
  let write_at row pos text =
    String.iteri
      (fun i c ->
        let p = pos + i in
        if p >= 0 && p < Bytes.length row then Bytes.set row p c)
      text
  in
  let arrow_row src dst label =
    match (col src, col dst) with
    | Some a, Some b ->
        let row = centered_row () in
        let pa = (a * width) + (width / 4)
        and pb = (b * width) + (width / 4) in
        let lo = min pa pb and hi = max pa pb in
        for p = lo + 1 to hi - 1 do
          Bytes.set row p '-'
        done;
        if pa < pb then Bytes.set row (hi - 1) '>' else Bytes.set row (lo + 1) '<';
        let mid = ((lo + hi) / 2) - (String.length label / 2) in
        write_at row (max (lo + 2) mid) label;
        emit_row row
    | _ -> ()
  in
  let side_note node text =
    match col node with
    | Some c ->
        let row = centered_row () in
        write_at row ((c * width) + (width / 4) + 2) text;
        emit_row row
    | None -> ()
  in
  let handle = function
    | Send { src; dst; label; protocol; _ } ->
        arrow_row src dst (if protocol then label else label ^ " [data]")
    | Log_write { node; kind; forced; rm = false; _ } ->
        side_note node
          (Printf.sprintf "%s%s"
             (if forced then "*log " else "log ")
             (Wal.Log_record.kind_to_string kind))
    | Log_write { rm = true; _ } | Deliver _ -> ()
    | Decide { node; outcome; _ } ->
        side_note node ("decides " ^ Types.outcome_to_string outcome)
    | Complete { node; outcome; pending; _ } ->
        side_note node
          (Printf.sprintf "done:%s%s"
             (Types.outcome_to_string outcome)
             (if pending then "(pending)" else ""))
    | Heuristic { node; action; _ } ->
        side_note node ("HEURISTIC " ^ Types.outcome_to_string action)
    | Damage_detected { node; reported_to; _ } ->
        side_note node
          ("damage->" ^ if reported_to = "" then "lost" else reported_to)
    | Locks_released { node; _ } -> side_note node "unlocks"
    | Crash { node; _ } -> side_note node "CRASH"
    | Restart { node; _ } -> side_note node "RESTART"
    | Note { node; text; _ } -> side_note node text
  in
  List.iter handle (events t);
  Buffer.contents buf
