(** Byzantine-fault-tolerant commit variant: 2f+1 coordinator replicas,
    decisions actionable only under a certificate of f+1 matching
    endorsements ({!Msg.certificate_valid}), vote signatures checked, and
    restart recovery re-validating certificates from the WAL.  Registered
    as ["bft"]; [f] comes from {!Types.config.bft_f}.  DESIGN.md section
    10 documents the quorum/certificate model and the f-threshold
    semantics of the chaos gate. *)

val quorum_flows : f:int -> int
(** Extra message flows one certified decision costs (2 * 2f: request and
    endorsement for each of the other replicas). *)

val quorum_forces : f:int -> int
(** Extra forced log writes one certified decision costs (one endorsement
    force at each of the 2f other replicas). *)

val quorum_delay : cfg:Types.config -> f:int -> float
(** Latency the endorsement round adds to a decision: one replica round
    trip plus one overlapped force; [0] when [f = 0]. *)

val protocol : Protocol_intf.t
