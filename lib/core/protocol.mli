(** The commit-protocol registry: the pluggable-protocol extension point.

    A protocol is a {!Protocol_intf.t} value - a record of the transition
    policies where commit-protocol families differ (pre-vote logging,
    decision log discipline, abort acknowledgment, damage routing,
    in-doubt behaviour, restart recovery).  The paper's three families are
    pre-registered; {!register} admits new ones, which {!Participant} (and
    therefore every harness above it: {!Mixer}, {!Run}, Faultlab chaos,
    the parallel driver, the CLI) picks up through
    [Types.Custom "name"] with no further wiring.

    Registration happens at module-initialization time from the main
    domain; afterwards the registry is only read, so sharing it read-only
    across the parallel driver's domains is safe (the invariant documented
    in driver.ml). *)

include module type of struct
  include Protocol_intf
end

val register : t -> unit
(** Make a protocol resolvable under its canonical name
    ([Types.protocol_to_string p.p_id]), its [p_flag] and each of its
    [p_aliases], case-insensitively.  Re-registering the same value is a
    no-op; claiming a name already held by a different protocol raises
    [Invalid_argument].  Call it from the main domain before any world is
    built. *)

val find : string -> t option
(** Look a protocol up by any registered spelling, case-insensitively. *)

val all : unit -> t list
(** Every registered protocol, in registration order (the paper's three
    families first). *)

val resolve : Types.protocol -> t
(** The implementation behind a {!Types.config} protocol choice; raises
    [Invalid_argument] for a [Custom] name nothing registered. *)

val of_string : string -> Types.protocol option
(** Parse a protocol name into the {!Types.config} value selecting it:
    the CLI's [--protocol] parser.  Accepts every spelling {!find}
    accepts. *)

val flag : Types.protocol -> string
(** Short CLI spelling ([basic], [pa], [pn], or a custom protocol's flag):
    what sweep/chaos JSONL lines and replay hints print. *)

val flags : unit -> string list
(** The short spelling of every registered protocol, registration order -
    for CLI documentation and error messages. *)
