(* Minimal JSON emitted/parsed without external dependencies.  Used by the
   sweep subcommand and the metrics serializers; the parser exists so tests
   can round-trip what we emit (and reject malformed output), not to accept
   arbitrary documents from the wild. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ---- printing ---- *)

let escape_to buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let float_repr f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    (* keep a decimal point so the value parses back as a float *)
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s ->
      Buffer.add_char buf '"';
      escape_to buf s;
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          write buf v)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape_to buf k;
          Buffer.add_string buf "\":";
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* ---- parsing ---- *)

type cursor = { s : string; mutable pos : int }

let fail c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))
let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.s
    && match c.s.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | _ -> fail c (Printf.sprintf "expected '%c'" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.s && String.sub c.s c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c (Printf.sprintf "expected '%s'" word)

let parse_string_body c =
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' ->
        c.pos <- c.pos + 1;
        (match peek c with
        | Some '"' -> Buffer.add_char buf '"'
        | Some '\\' -> Buffer.add_char buf '\\'
        | Some '/' -> Buffer.add_char buf '/'
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some 'r' -> Buffer.add_char buf '\r'
        | Some 't' -> Buffer.add_char buf '\t'
        | Some 'b' -> Buffer.add_char buf '\b'
        | Some 'f' -> Buffer.add_char buf '\012'
        | Some 'u' ->
            if c.pos + 4 >= String.length c.s then fail c "bad \\u escape";
            let hex = String.sub c.s (c.pos + 1) 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail c "bad \\u escape"
            in
            (* we only ever emit \u00xx control characters *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else Buffer.add_char buf '?';
            c.pos <- c.pos + 4
        | _ -> fail c "bad escape");
        c.pos <- c.pos + 1;
        loop ()
    | Some ch ->
        Buffer.add_char buf ch;
        c.pos <- c.pos + 1;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_float = ref false in
  let continue () =
    match peek c with
    | Some ('0' .. '9' | '-' | '+') -> true
    | Some ('.' | 'e' | 'E') ->
        is_float := true;
        true
    | _ -> false
  in
  while continue () do
    c.pos <- c.pos + 1
  done;
  let text = String.sub c.s start (c.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail c "bad number"
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> fail c "bad number"

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' ->
      c.pos <- c.pos + 1;
      String (parse_string_body c)
  | Some '[' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some ']' then begin
        c.pos <- c.pos + 1;
        List []
      end
      else begin
        let items = ref [ parse_value c ] in
        skip_ws c;
        while peek c = Some ',' do
          c.pos <- c.pos + 1;
          items := parse_value c :: !items;
          skip_ws c
        done;
        expect c ']';
        List (List.rev !items)
      end
  | Some '{' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some '}' then begin
        c.pos <- c.pos + 1;
        Obj []
      end
      else begin
        let field () =
          skip_ws c;
          expect c '"';
          let k = parse_string_body c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws c;
        while peek c = Some ',' do
          c.pos <- c.pos + 1;
          fields := field () :: !fields;
          skip_ws c
        done;
        expect c '}';
        Obj (List.rev !fields)
      end
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c (Printf.sprintf "unexpected character '%c'" ch)

let parse s =
  let c = { s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then fail c "trailing garbage";
  v

let parse_opt s = try Some (parse s) with Parse_error _ -> None

(* ---- accessors ---- *)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
