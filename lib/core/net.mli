(** The simulated network carrying 2PC payload bundles: {!Netsim.Make}
    instantiated at {!Msg.payload}.  See netsim.mli for the delivery
    model (per-pair FIFO, partitions, crash drops, jitter hooks) and the
    flow-counting statistics. *)

module Payload : sig
  type t = Msg.payload
end

include module type of Netsim.Make (Payload)
