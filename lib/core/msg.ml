(** Wire protocol of the commit engine.

    One network message (one {e flow} in the paper's accounting) carries a
    list of payloads: piggybacking is how the implied-acknowledgment,
    long-locks and chained-transaction optimizations avoid flows. *)

type damage_report = {
  d_node : string;            (** where the heuristic decision was taken *)
  d_action : Types.outcome;   (** what it unilaterally did *)
  d_outcome : Types.outcome;  (** what the transaction actually decided *)
}

(* --- BFT decision certificates ---------------------------------------

   The BFT commit variant replicates the coordinator over 2f+1 replicas
   and only treats a decision as valid when it carries a certificate of
   at least f+1 matching endorsements.  Signatures are simulated with a
   deterministic digest: an honest node can recompute and check any
   signature, while the adversary can only produce signatures for the
   replicas it has corrupted - exactly the asymmetry real signatures
   give, without any crypto dependency. *)

(* FNV-1a over the signed text, truncated to 30 bits so the arithmetic is
   portable across int widths; collisions are irrelevant here because the
   adversary model is "knows the key or not", not "searches for
   collisions". *)
let digest s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := ((!h lxor Char.code c) * 0x01000193) land 0x3FFFFFFF)
    s;
  Printf.sprintf "%08x" !h

type endorsement = {
  e_replica : int;  (** replica index in [0, 2f] *)
  e_outcome : Types.outcome;
  e_votes : string;  (** digest of the vote set the replica endorsed *)
  e_sig : string;  (** simulated signature binding all of the above *)
}

type certificate = { c_endorsements : endorsement list }

let sign_endorsement ~replica ~txn ~outcome ~votes =
  digest
    (Printf.sprintf "endorse|%d|%s|%s|%s" replica txn
       (Types.outcome_to_string outcome)
       votes)

let endorse ~replica ~txn ~outcome ~votes =
  {
    e_replica = replica;
    e_outcome = outcome;
    e_votes = votes;
    e_sig = sign_endorsement ~replica ~txn ~outcome ~votes;
  }

let certificate_valid ~f ~txn ~outcome cert =
  let quorum = f + 1 in
  let votes_agree =
    match cert.c_endorsements with
    | [] -> false
    | e :: rest -> List.for_all (fun e' -> e'.e_votes = e.e_votes) rest
  in
  let good =
    List.filter
      (fun e ->
        e.e_replica >= 0
        && e.e_replica <= 2 * f
        && e.e_outcome = outcome
        && e.e_sig
           = sign_endorsement ~replica:e.e_replica ~txn ~outcome
               ~votes:e.e_votes)
      cert.c_endorsements
  in
  let distinct = List.sort_uniq compare (List.map (fun e -> e.e_replica) good) in
  votes_agree && List.length distinct >= quorum

(* A subordinate's vote is signed too, so a BFT coordinator can detect a
   vote flipped in flight (the tag no longer matches the carried vote). *)
let vote_tag ~src ~txn vote =
  digest (Printf.sprintf "vote|%s|%s|%s" src txn (Types.vote_to_string vote))

(* WAL payload encoding: one endorsement per ';'-separated group, fields
   ','-separated.  Round-trips exactly; [cert_of_string] returns [None]
   on any malformed input (a restarting node treats that as no
   certificate and re-validation fails). *)
let cert_to_string cert =
  String.concat ";"
    (List.map
       (fun e ->
         Printf.sprintf "%d,%s,%s,%s" e.e_replica
           (Types.outcome_to_string e.e_outcome)
           e.e_votes e.e_sig)
       cert.c_endorsements)

let cert_of_string s =
  if s = "" then None
  else
    let parse_one part =
      match String.split_on_char ',' part with
      | [ r; o; votes; sg ] -> (
          match (int_of_string_opt r, o) with
          | Some r, "commit" ->
              Some
                { e_replica = r; e_outcome = Types.Committed; e_votes = votes;
                  e_sig = sg }
          | Some r, "abort" ->
              Some
                { e_replica = r; e_outcome = Types.Aborted; e_votes = votes;
                  e_sig = sg }
          | _ -> None)
      | _ -> None
    in
    let parts = String.split_on_char ';' s in
    let es = List.filter_map parse_one parts in
    if List.length es = List.length parts then Some { c_endorsements = es }
    else None

type payload =
  | Prepare of {
      txn : string;
      long_locks : bool;  (** coordinator requests deferred acknowledgment *)
    }
  | Vote_msg of {
      txn : string;
      vote : Types.vote;
      delegation : bool;
          (** true on the coordinator's own YES sent to a last agent: the
              receiver now owns the commit decision *)
      unsolicited : bool;
      implied_ack : bool;
          (** the voter is a reliable resource whose acknowledgment will be
              implied rather than sent (Vote Reliable, Figure 8) *)
      tag : string;
          (** simulated signature over (voter, txn, vote); [""] under the
              non-BFT protocols, which never check it *)
    }
  | Decision_msg of {
      txn : string;
      outcome : Types.outcome;
      cert : certificate option;
          (** BFT decision certificate; [None] under the paper's
              protocols, whose trust model has no signatures *)
    }
  | Ack_msg of {
      txn : string;
      damage : damage_report list;
      pending : bool;  (** wait-for-outcome: subtree resolution in progress *)
    }
  | Data of { txn : string; info : string }
      (** application data; begins work at the receiver and serves as the
          implied acknowledgment for any outcome the receiver was awaiting *)
  | Inquiry of { txn : string }
      (** PA subordinate-initiated recovery: "what happened to [txn]?" *)
  | Inquiry_reply of {
      txn : string;
      outcome : Types.outcome option;
          (** [None] = no information (PA: presume abort) *)
      cert : certificate option;
          (** certificate backing a [Some] outcome under BFT *)
    }

let payload_txn = function
  | Prepare { txn; _ }
  | Vote_msg { txn; _ }
  | Decision_msg { txn; _ }
  | Ack_msg { txn; _ }
  | Data { txn; _ }
  | Inquiry { txn }
  | Inquiry_reply { txn; _ } ->
      txn

let payload_label = function
  | Prepare { long_locks; _ } ->
      if long_locks then "Prepare(long-locks)" else "Prepare"
  | Vote_msg { vote; delegation; unsolicited; implied_ack; _ } ->
      let base = "Vote " ^ Types.vote_to_string vote in
      let base = if delegation then base ^ " (you decide)" else base in
      let base = if unsolicited then base ^ " (unsolicited)" else base in
      if implied_ack then base ^ " (ack implied)" else base
  | Decision_msg { outcome = Types.Committed; _ } -> "Commit"
  | Decision_msg { outcome = Types.Aborted; _ } -> "Abort"
    (* note: certified and plain decisions share a label on purpose - the
       sequence diagrams and flow accounting predate certificates and must
       not change shape under the legacy protocols *)
  | Ack_msg { damage = []; pending = false; _ } -> "Ack"
  | Ack_msg { damage = []; pending = true; _ } -> "Ack(pending)"
  | Ack_msg { damage; pending; _ } ->
      Printf.sprintf "Ack(%d damaged%s)" (List.length damage)
        (if pending then ",pending" else "")
  | Data { info; _ } -> if info = "" then "Data" else "Data:" ^ info
  | Inquiry _ -> "Inquiry"
  | Inquiry_reply { outcome = None; _ } -> "NoInformation"
  | Inquiry_reply { outcome = Some o; _ } ->
      "Outcome " ^ Types.outcome_to_string o

let bundle_label payloads = String.concat " + " (List.map payload_label payloads)
