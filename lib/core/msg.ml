(** Wire protocol of the commit engine.

    One network message (one {e flow} in the paper's accounting) carries a
    list of payloads: piggybacking is how the implied-acknowledgment,
    long-locks and chained-transaction optimizations avoid flows. *)

type damage_report = {
  d_node : string;            (** where the heuristic decision was taken *)
  d_action : Types.outcome;   (** what it unilaterally did *)
  d_outcome : Types.outcome;  (** what the transaction actually decided *)
}

type payload =
  | Prepare of {
      txn : string;
      long_locks : bool;  (** coordinator requests deferred acknowledgment *)
    }
  | Vote_msg of {
      txn : string;
      vote : Types.vote;
      delegation : bool;
          (** true on the coordinator's own YES sent to a last agent: the
              receiver now owns the commit decision *)
      unsolicited : bool;
      implied_ack : bool;
          (** the voter is a reliable resource whose acknowledgment will be
              implied rather than sent (Vote Reliable, Figure 8) *)
    }
  | Decision_msg of { txn : string; outcome : Types.outcome }
  | Ack_msg of {
      txn : string;
      damage : damage_report list;
      pending : bool;  (** wait-for-outcome: subtree resolution in progress *)
    }
  | Data of { txn : string; info : string }
      (** application data; begins work at the receiver and serves as the
          implied acknowledgment for any outcome the receiver was awaiting *)
  | Inquiry of { txn : string }
      (** PA subordinate-initiated recovery: "what happened to [txn]?" *)
  | Inquiry_reply of { txn : string; outcome : Types.outcome option }
      (** [None] = no information (PA: presume abort) *)

let payload_txn = function
  | Prepare { txn; _ }
  | Vote_msg { txn; _ }
  | Decision_msg { txn; _ }
  | Ack_msg { txn; _ }
  | Data { txn; _ }
  | Inquiry { txn }
  | Inquiry_reply { txn; _ } ->
      txn

let payload_label = function
  | Prepare { long_locks; _ } ->
      if long_locks then "Prepare(long-locks)" else "Prepare"
  | Vote_msg { vote; delegation; unsolicited; implied_ack; _ } ->
      let base = "Vote " ^ Types.vote_to_string vote in
      let base = if delegation then base ^ " (you decide)" else base in
      let base = if unsolicited then base ^ " (unsolicited)" else base in
      if implied_ack then base ^ " (ack implied)" else base
  | Decision_msg { outcome = Types.Committed; _ } -> "Commit"
  | Decision_msg { outcome = Types.Aborted; _ } -> "Abort"
  | Ack_msg { damage = []; pending = false; _ } -> "Ack"
  | Ack_msg { damage = []; pending = true; _ } -> "Ack(pending)"
  | Ack_msg { damage; pending; _ } ->
      Printf.sprintf "Ack(%d damaged%s)" (List.length damage)
        (if pending then ",pending" else "")
  | Data { info; _ } -> if info = "" then "Data" else "Data:" ^ info
  | Inquiry _ -> "Inquiry"
  | Inquiry_reply { outcome = None; _ } -> "NoInformation"
  | Inquiry_reply { outcome = Some o; _ } ->
      "Outcome " ^ Types.outcome_to_string o

let bundle_label payloads = String.concat " + " (List.map payload_label payloads)
