(** Presumed Abort (the paper's Figure 2) expressed through
    {!Protocol_intf}: no information at the coordinator means abort, so
    aborts log nothing at the decision maker, are written lazily at
    subordinates, and are never acknowledged. *)

open Types

let protocol : Protocol_intf.t =
  {
    p_id = Presumed_abort;
    p_flag = "pa";
    p_aliases = [];
    p_description = "presumed abort: aborts unlogged at the decision maker";
    p_begin_commit = (fun _ops ~txn:_ ~root:_ ~has_children:_ ~k -> k ());
    p_voter_log = [ Wal.Log_record.Prepared ];
    p_delegation_log = [ Wal.Log_record.Prepared ];
    p_decision_log =
      (function
      | Committed -> Protocol_intf.Log_force Wal.Log_record.Committed
      (* the presumption carries the abort: a later inquiry finds no
         information and concludes abort *)
      | Aborted -> Protocol_intf.Log_none);
    p_subordinate_decision_log =
      (function
      | Committed -> Protocol_intf.Log_force Wal.Log_record.Committed
      (* no forced abort record before releasing resources *)
      | Aborted -> Protocol_intf.Log_append Wal.Log_record.Aborted);
    p_ack_on_abort = false;
    p_abort_ack_required = (fun ~vote:_ ~presumed_no:_ -> false);
    p_damage_to_root = false;
    p_indoubt_tick = Protocol_intf.send_inquiries;
    p_indoubt_restart = Protocol_intf.send_inquiries;
    p_recover = Protocol_intf.standard_recover;
    p_admissible =
      (fun ~cfg:_ ~src ~role ~known payload ->
        Protocol_intf.standard_admissible ~src ~role ~known payload);
    p_certify = None;
  }
