(** Baseline two-phase commit (the paper's Figure 1) expressed through
    {!Protocol_intf}: every decision is forced at every member, every
    abort is acknowledged, and a coordinator with no information answers
    inquiries with abort only because an unlogged decision cannot have
    committed. *)

open Types

let protocol : Protocol_intf.t =
  {
    p_id = Basic;
    p_flag = "basic";
    p_aliases = [];
    p_description = "baseline 2PC: forced decisions and acks everywhere";
    (* nothing precedes phase one: the coordinator's first write is the
       decision itself *)
    p_begin_commit = (fun _ops ~txn:_ ~root:_ ~has_children:_ ~k -> k ());
    p_voter_log = [ Wal.Log_record.Prepared ];
    p_delegation_log = [ Wal.Log_record.Prepared ];
    p_decision_log =
      (function
      | Committed -> Protocol_intf.Log_force Wal.Log_record.Committed
      | Aborted -> Protocol_intf.Log_force Wal.Log_record.Aborted);
    p_subordinate_decision_log =
      (function
      | Committed -> Protocol_intf.Log_force Wal.Log_record.Committed
      | Aborted -> Protocol_intf.Log_force Wal.Log_record.Aborted);
    p_ack_on_abort = true;
    (* a member that never voted (or said NO) cannot be in doubt: its abort
       notification is fire-and-forget; a YES voter must confirm *)
    p_abort_ack_required =
      (fun ~vote ~presumed_no:_ ->
        match vote with Some (Vote_yes _) -> true | _ -> false);
    p_damage_to_root = false;
    p_indoubt_tick = Protocol_intf.send_inquiries;
    p_indoubt_restart = Protocol_intf.send_inquiries;
    p_recover = Protocol_intf.standard_recover;
    p_admissible =
      (fun ~cfg:_ ~src ~role ~known payload ->
        Protocol_intf.standard_admissible ~src ~role ~known payload);
    p_certify = None;
  }
