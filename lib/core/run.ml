(** Orchestration: build a simulated complex for a commit tree, perform the
    work that gives each member something to commit, run the 2PC to
    quiescence, and summarize the result. *)

open Types

type node = {
  participant : Participant.t;
  wal : Wal.Log.t;
  kv : Kvstore.t;
  profile : profile;
}

type world = {
  engine : Simkernel.Engine.t;
  net : Net.t;
  trace : Trace.t;
  registry : Obs.Registry.t;  (** telemetry: per-phase latency histograms *)
  causal : Obs.Causal.t;  (** causal event graph; mode [Off] unless enabled *)
  cfg : config;
  tree : tree;
  nodes : (string * node) list;  (** tree order, root first *)
  root : string;
  mutable outcome : outcome option;
  mutable pending : bool;
}

let node w name = List.assoc name w.nodes
let participant w name = (node w name).participant
let kv w name = (node w name).kv
let root_node w = node w w.root
(* each physical log once: shared-log members reuse their parent's WAL *)
let all_wals w =
  List.rev
    (List.fold_left
       (fun acc (_, n) -> if List.memq n.wal acc then acc else n.wal :: acc)
       [] w.nodes)

(** Build the simulated complex: one participant, WAL and resource manager
    per tree member.  A member with [p_shares_parent_log] reuses its
    parent's WAL (the shared-log optimization). *)
let setup ?(config = default_config) ?scratch tree =
  let engine =
    match scratch with
    | Some e ->
        (* recycled engine: reset returns it to the fresh-create state while
           keeping its arrays at high-water capacity, so a driver running
           many small worlds per domain stops re-paying allocation warm-up *)
        Simkernel.Engine.reset e;
        e
    | None -> Simkernel.Engine.create ()
  in
  let net = Net.create engine ~default_latency:config.latency () in
  let trace = Trace.create ~keep_events:config.trace_events () in
  let registry = Obs.Registry.create () in
  let causal = Obs.Causal.create () in
  let wal_config =
    { Wal.Log.io_latency = config.io_latency; group = config.group_commit }
  in
  let rec build parent parent_wal (Tree (p, children)) =
    let wal =
      match parent_wal with
      | Some w when config.opts.shared_log && p.p_shares_parent_log -> w
      | _ -> Wal.Log.create engine ~node:p.p_name ~config:wal_config ()
    in
    let kv = Kvstore.create engine ~name:(p.p_name ^ ".rm") ~wal ~reliable:p.p_reliable () in
    let participant =
      Participant.create ~engine ~net ~trace ~cfg:config ~profile:p ~parent
        ~child_profiles:(List.map tree_profile children)
        ~wal ~kv
    in
    Participant.attach participant;
    Participant.set_registry participant registry;
    Participant.set_causal participant causal;
    ((p.p_name, { participant; wal; kv; profile = p }) :: [])
    @ List.concat_map (build (Some p.p_name) (Some wal)) children
  in
  let nodes = build None None tree in
  let root = (tree_profile tree).p_name in
  let w =
    {
      engine;
      net;
      trace;
      registry;
      causal;
      cfg = config;
      tree;
      nodes;
      root;
      outcome = None;
      pending = false;
    }
  in
  Participant.set_on_root_complete (participant w root)
    (fun ~txn:_ outcome ~pending ->
      w.outcome <- Some outcome;
      w.pending <- pending);
  w

(** Give every member work to do under its declared profile: updated
    members write one record (exclusive lock held until the 2PC releases
    it), read-only members read one (shared lock), left-out members stay
    suspended and touch nothing. *)
let perform_work w ~txn =
  List.iter
    (fun (name, n) ->
      if n.profile.p_left_out && w.cfg.opts.leave_out then ()
      else if n.profile.p_updated then
        ignore
          (Kvstore.put n.kv ~txn ~key:("acct-" ^ name)
             ~value:("upd-by-" ^ txn))
      else ignore (Kvstore.get n.kv ~txn ("acct-" ^ name)))
    w.nodes

(** Run one distributed commit to quiescence. *)
let commit ?(txn = "txn-1") w =
  perform_work w ~txn;
  (* unsolicited voters prepare themselves spontaneously *)
  List.iter
    (fun (_, n) ->
      if
        n.profile.p_unsolicited && w.cfg.opts.unsolicited_vote
        && not (n.profile.p_left_out && w.cfg.opts.leave_out)
      then
        ignore
          (Simkernel.Engine.schedule w.engine ~delay:0.0 (fun () ->
               Participant.begin_unsolicited n.participant ~txn)))
    w.nodes;
  Participant.begin_commit (participant w w.root) ~txn;
  Simkernel.Engine.run w.engine;
  Metrics.of_run ~trace:w.trace ~wals:(all_wals w) ~root:w.root
    ~outcome:w.outcome ~pending:w.pending
    ~quiesce_time:(Simkernel.Engine.now w.engine)

(** Convenience: set up and commit in one step. *)
let commit_tree ?config ?txn tree =
  let w = setup ?config tree in
  (commit ?txn w, w)

(** What one member does during one transaction of a sequence. *)
type work = Work_update | Work_read | Work_none

(** Run several transactions through the same complex, with a per-member,
    per-transaction work assignment.  This is where the dynamic
    OK-TO-LEAVE-OUT protocol lives: a member whose committed YES vote
    carried the leave-out flag is suspended, and if the workload gives its
    whole subtree nothing to do in the next transaction, its parent leaves
    it out of that commit entirely.

    Returns per-transaction metrics (the shared trace is cleared between
    transactions so each metrics record covers one commit). *)
let commit_sequence ?config ~work ~txns tree =
  let w = setup ?config tree in
  let run_one txn =
    Trace.clear w.trace;
    List.iter Wal.Log.reset_stats (all_wals w);
    w.outcome <- None;
    w.pending <- false;
    (* perform the assigned work *)
    let rec assign (Tree (p, children)) =
      (match work ~txn ~node:p.p_name with
      | Work_update ->
          ignore
            (Kvstore.put (kv w p.p_name) ~txn ~key:("acct-" ^ p.p_name)
               ~value:("upd-by-" ^ txn))
      | Work_read -> ignore (Kvstore.get (kv w p.p_name) ~txn ("acct-" ^ p.p_name))
      | Work_none -> ());
      List.iter assign children
    in
    assign w.tree;
    (* tell each parent which child subtrees exchanged no data with it *)
    let rec subtree_idle (Tree (p, children)) =
      work ~txn ~node:p.p_name = Work_none && List.for_all subtree_idle children
    in
    let rec mark (Tree (p, children)) =
      let parent = participant w p.p_name in
      Participant.clear_idle_children parent ~txn;
      List.iter
        (fun (Tree (cp, _) as child) ->
          if subtree_idle child then
            Participant.note_idle_child parent ~txn ~child:cp.p_name;
          mark child)
        children
    in
    mark w.tree;
    (* unsolicited voters that actually worked prepare themselves *)
    List.iter
      (fun (name, n) ->
        if
          n.profile.p_unsolicited && w.cfg.opts.unsolicited_vote
          && work ~txn ~node:name <> Work_none
        then
          ignore
            (Simkernel.Engine.schedule w.engine ~delay:0.0 (fun () ->
                 Participant.begin_unsolicited n.participant ~txn)))
      w.nodes;
    Participant.begin_commit (participant w w.root) ~txn;
    Simkernel.Engine.run w.engine;
    ( txn,
      Metrics.of_run ~trace:w.trace ~wals:(all_wals w) ~root:w.root
        ~outcome:w.outcome ~pending:w.pending
        ~quiesce_time:(Simkernel.Engine.now w.engine) )
  in
  (List.map run_one txns, w)

(** All committed key/value state across live members: used by tests to
    check atomicity (every member agrees on the outcome's effects). *)
let committed_states w =
  List.map (fun (name, n) -> (name, Kvstore.committed_bindings n.kv)) w.nodes

(** True when every updated member's data reflects [outcome] (commit: the
    update is visible; abort: it is not). *)
let consistent w ~txn ~outcome =
  List.for_all
    (fun (name, n) ->
      if (not n.profile.p_updated) || (n.profile.p_left_out && w.cfg.opts.leave_out)
      then true
      else
        let v = Kvstore.committed_value n.kv ("acct-" ^ name) in
        match outcome with
        | Committed -> v = Some ("upd-by-" ^ txn)
        | Aborted -> v = None)
    w.nodes
