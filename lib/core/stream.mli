(** Chained-transaction streams: the workloads behind Table 4 (long
    locks), Figure 7, and the group-commit analysis of Section 4.

    Table 4 analyses [r] transactions "with small delays between them"
    between two members; the interesting quantity is how acknowledgment
    piggybacking amortizes flows across consecutive transactions, so this
    module drives the flow/log schedule directly over two write-ahead logs
    rather than through {!Participant} (whose single-transaction machinery
    cannot express cross-transaction piggybacks). *)

(** The three chain schedules of Table 4:
    - {!Chain_basic}: full Prepare / Vote / Commit / Ack per transaction,
      [4r] flows;
    - {!Chain_long_locks}: the subordinate withholds its acknowledgment
      and sends it with the data message beginning the next transaction,
      [3r] protocol flows;
    - {!Chain_long_locks_last_agent} (Figure 7): transactions run in pairs
      with the peer roles alternating, three flows per pair, [3r/2]
      flows for even [r] (an odd tail transaction costs two). *)
type mode = Chain_basic | Chain_long_locks | Chain_long_locks_last_agent

val mode_to_string : mode -> string

type result = {
  transactions : int;
  flows : int;        (** protocol flows *)
  data_flows : int;   (** application-data flows carrying piggybacked acks *)
  writes : int;       (** TM log writes at both members *)
  forced : int;
  force_ios : int;
  duration : float;
  mean_coordinator_lock_time : float;
      (** mean virtual time the initiating side's resources stay locked per
          transaction: the price of long locks (Table 1) *)
  trace : Trace.t;
}

val run_chain :
  ?latency:float ->
  ?io_latency:float ->
  ?group:Wal.Log.group ->
  mode ->
  r:int ->
  result
(** Run [r] chained transactions between two members under the given
    schedule.  Defaults: latency 1.0, one force I/O 0.5, no group commit. *)

(** Group-commit experiment result. *)
type gc_result = {
  gc_transactions : int;
  gc_group_size : int;
  gc_force_requests : int;  (** logical forced writes issued (3 per txn) *)
  gc_force_ios : int;       (** physical force I/Os after batching *)
  gc_saved_ios : int;
  gc_paper_saving : float;  (** the paper's [3n/2m] estimate, for reference *)
  gc_duration : float;
  gc_mean_commit_latency : float;
      (** group commit's cost: commits wait for their batch (Table 1) *)
}

val run_group_commit :
  ?latency:float ->
  ?io_latency:float ->
  ?timeout:float ->
  ?stagger:float ->
  n:int ->
  group_size:int ->
  unit ->
  gc_result
(** [n] concurrent two-member transactions whose coordinator sides share
    one log and whose subordinate sides share another ("only one member of
    each transaction resides at each node"), with the log manager batching
    force requests up to [group_size] or until [timeout] elapses.
    [stagger] (default 0.1) separates transaction start times. *)
