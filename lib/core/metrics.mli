(** Per-run result summary: the paper's three evaluation axes (message
    flows, log writes, resource lock time) plus outcome/heuristic data. *)

type t = {
  outcome : Types.outcome option;  (** [None]: the root never completed *)
  pending : bool;  (** wait-for-outcome: completed with outcome pending *)
  flows : int;  (** protocol message flows (paper convention) *)
  data_flows : int;  (** application-data messages (carry piggybacks) *)
  tm_writes : int;  (** transaction-manager log writes *)
  tm_forced : int;  (** ... of which forced *)
  force_ios : int;  (** physical force I/Os over all logs (group commit) *)
  completion_time : float option;  (** root application told the outcome *)
  quiesce_time : float;  (** last event in the run *)
  mean_lock_release : float option;
      (** mean over members of the time their locks were released *)
  max_lock_release : float option;
  heuristics : int;
  damage_reports : (string * string) list;  (** (damaged node, reported to) *)
}

val of_run :
  trace:Trace.t ->
  wals:Wal.Log.t list ->
  root:string ->
  outcome:Types.outcome option ->
  pending:bool ->
  quiesce_time:float ->
  t

val counts : t -> Cost_model.counts

val percentile : float list -> float -> float
(** [percentile samples p] is the nearest-rank [p]-th percentile of the
    (unsorted) sample list; [nan] on an empty list.  This is the exact
    reference implementation the streaming [Obs.Histogram] approximates.
    For several percentiles of one sample set, use {!percentiles} (or
    {!sorted_samples} + {!percentile_of_sorted}) so the sort is paid
    once. *)

val percentiles : float list -> float list -> float list
(** [percentiles samples ps] sorts once and answers every requested
    percentile. *)

val sorted_samples : float list -> float array
(** Sort once, query many times with {!percentile_of_sorted}. *)

val percentile_of_sorted : float array -> float -> float

val to_json : t -> string
(** Compact single-line JSON object; parses with {!Json.parse}. *)

val pp : Format.formatter -> t -> unit

(** Aggregate results over a concurrent multi-transaction run (the mixer's
    return value): the paper's per-commit axes re-expressed as throughput,
    latency percentiles and per-commit averages. *)
module Agg : sig
  type t = {
    label : string;
        (** optimization-set label, e.g. ["read-only+shared-log"] *)
    concurrency : int;
    txns : int;  (** transactions submitted *)
    committed : int;
    aborted : int;
    duration : float;  (** first arrival to last completion (sim time) *)
    throughput : float;  (** commits per simulated second *)
    abort_rate : float;
    commit_latency_p50 : float;
    commit_latency_p95 : float;
    commit_latency_p99 : float;
    commit_latency_mean : float;
    lock_hold_p50 : float;
    lock_hold_p95 : float;
    lock_hold_p99 : float;
    lock_wait_mean : float;  (** mean lock-queue wait per transaction *)
    lock_waits : int;  (** grants that had to queue *)
    flows : int;
    data_flows : int;
    flows_per_commit : float;
    tm_writes : int;
    tm_forced : int;
    force_ios : int;
    force_ios_per_commit : float;
    consistency_violations : int;
    phase_latency : (string * Obs.Histogram.summary) list;
        (** per 2PC phase (voting, in-doubt, decision, phase-two, ...):
            time-in-phase distribution across all nodes and transactions,
            from the participants' streaming histograms *)
  }

  val ratio : float -> int -> float
  (** [ratio num den] is [num /. den], or [0.] when [den = 0]. *)

  val summary_to_json : Obs.Histogram.summary -> Json.t
  (** NaNs (empty histograms) serialize as [0.0]. *)

  val to_json_value : t -> Json.t
  val to_json : t -> string
  val pp : Format.formatter -> t -> unit
end
