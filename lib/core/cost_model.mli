(** Closed-form cost model: the formulas behind the paper's Tables 1-4.

    Conventions (Section 5, corrected for OCR noise against the prose of
    Section 4 - see DESIGN.md section 3):

    - a commit tree of [n] members has [n-1] edges, each carrying
      Prepare / Vote / Decision / Ack = 4 flows under the baseline protocol;
    - the coordinator writes 2 records (Committed forced, End non-forced);
      every other member writes 3 (Prepared forced, Committed forced, End
      non-forced), so baseline totals are [4(n-1)] flows, [3n-1] writes,
      [2n-1] forced writes;
    - each optimization used by [m] members adjusts those totals by the
      per-member savings stated in Section 4 of the paper.

    The simulator is validated against this model: tests assert that
    {!Run.commit} produces byte-for-byte identical counts. *)

type counts = { flows : int; writes : int; forced : int }

val pp_counts : Format.formatter -> counts -> unit

(** The paper's nine optimizations that have a Table 3 column (group
    commit acts on the log, not the tree, and is modelled separately). *)
type optimization =
  | Read_only_opt
  | Last_agent_opt
  | Unsolicited_vote_opt
  | Leave_out_opt
  | Vote_reliable_opt
  | Wait_for_outcome_opt
  | Shared_log_opt
  | Long_locks_opt

val optimization_to_string : optimization -> string
(** Canonical CLI spelling, e.g. ["read-only"], ["last-agent"]. *)

val all_optimizations : optimization list
(** Every optimization, in Table 3 row order. *)

(** {2 Totals over a commit tree (Table 3)} *)

val basic : n:int -> counts
(** Baseline 2PC totals for an [n]-member commit tree. *)

val presumed_nothing : ?cascaded:int -> n:int -> unit -> counts
(** Presumed Nothing: the coordinator adds one forced commit-pending
    record, every subordinate adds one forced agent record (Table 2 row
    "PN"), and every {e cascaded} coordinator adds its own forced
    commit-pending record before propagating Prepare (Figure 3).
    [cascaded] is the number of internal non-root members (0 in a flat
    tree). *)

val bft : f:int -> n:int -> counts
(** Byzantine-tolerant commit totals for an [n]-member tree tolerating
    [f] traitorous coordinator replicas: baseline plus [4f] flows and
    [2f] forced writes for the [2f+1]-replica endorsement round, plus
    [n] non-forced certificate appends (one per member, hardened by the
    outcome force each precedes).  What Tables 2-4 charge for tolerance. *)

val pa_abort_two_members : counts
(** PA abort case where the lone decision maker hears a NO: no logging
    anywhere, no acks.  Exposed for the Table 2 abort row with n=2. *)

val savings : optimization -> int * int * int
(** Per-member [(flows, writes, forced)] saved by each optimization, as
    stated in Section 4. *)

val with_optimization : optimization -> n:int -> m:int -> counts
(** Table 3 cell: baseline totals for [n] members, minus the savings of
    [m] members following one optimization. *)

(** {2 Table 2: two participants, per-side breakdown} *)

type side = { s_flows : int; s_writes : int; s_forced : int }

type table2_row = {
  t2_label : string;
  coordinator : side;
  subordinate : side;
}

val table2 : table2_row list

(** {2 Tables 3 and 4} *)

val table3 : n:int -> m:int -> (string * counts) list
(** One labelled row per protocol/optimization: baseline first, then
    "PA & <opt>" for each optimization with [m] followers. *)

val table4 : r:int -> (string * counts) list
(** [r] chained two-member transactions under long locks. *)

val long_locks_flows : r:int -> int
(** Chained long-locks transactions without the last-agent optimization:
    per transaction, Prepare / Vote / Decision, with the Ack riding the next
    transaction's opening data message. *)

val long_locks_last_agent_flows : r:int -> int
(** Figure 7 / Table 4: long locks combined with last agent commits two
    transactions in three flows. *)

(** {2 Group commit (Section 4, "Group Commits")} *)

val group_commit_saving : n:int -> m:int -> float
(** The paper's stated average saving in forced writes for [n] transactions
    under group size [m], assuming one member of each transaction per
    node. *)

(** {2 Table 1: qualitative advantages / disadvantages} *)

type table1_row = {
  t1_optimization : string;
  advantages : string list;
  disadvantages : string list;
}

val table1 : table1_row list
