(** Canned runs that regenerate the paper's Figures 1-8 as
    message-sequence traces. *)

type t = {
  sc_id : string;           (** e.g. ["figure-3"] *)
  sc_title : string;        (** the paper's caption *)
  sc_description : string;
  sc_nodes : string list;   (** column order for the sequence diagram *)
  sc_trace : Trace.t;
  sc_metrics : Metrics.t option;  (** present for single-commit scenarios *)
}

val figure1 : unit -> t
(** Simple two-phase commit processing (one coordinator, one subordinate). *)

val figure2 : unit -> t
(** 2PC with a cascaded (intermediate) coordinator. *)

val figure3 : unit -> t
(** Presumed Nothing with an intermediate coordinator: commit-pending
    records forced at the root and the cascaded coordinator. *)

val figure4 : unit -> t
(** Partial read-only: the read-only voter leaves phase two. *)

val figure5 : unit -> t
(** The leave-out hazard: two programs independently initiate commit for
    the same transaction; the common member detects dual coordination and
    the transaction aborts. *)

val figure6 : unit -> t
(** Last-agent commit processing. *)

val figure7 : unit -> t
(** Long locks over chained transactions (two transactions shown). *)

val figure8 : unit -> t
(** All resources voted reliable: early acknowledgment at the cascaded
    coordinator, implied acknowledgment from the reliable leaf. *)

val all : unit -> t list
(** All eight figures, in order. *)

val render : t -> string
(** Title, description, ASCII sequence diagram and (when available) the
    run's metrics. *)
