(** Minimal dependency-free JSON: enough to emit the sweep's machine-readable
    lines and to round-trip them in tests.  Not a general-purpose parser. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string
(** Compact single-line rendering.  NaN and infinities print as [null];
    finite floats always carry a decimal point (or exponent) so they parse
    back as [Float]. *)

val parse : string -> t
(** @raise Parse_error on malformed input or trailing garbage. *)

val parse_opt : string -> t option

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] for other constructors. *)

val to_float_opt : t -> float option
(** [Int] values widen to float. *)

val to_int_opt : t -> int option
val to_string_opt : t -> string option
