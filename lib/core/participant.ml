(** Per-node 2PC state machine: the protocol-agnostic plumbing.

    One participant is a transaction manager plus its local resource manager
    (a {!Kvstore.t}).  This module owns everything the commit protocols
    share - timers, retransmission with backoff, crash/restart/amnesia,
    piggyback deferral, phase telemetry, the Section 4 optimizations -
    driven entirely by network deliveries, log-force completions and timers
    on the shared virtual clock.  Everything protocol-specific (what Basic
    2PC, Presumed Abort and Presumed Nothing do differently) is delegated
    to the {!Protocol_intf.t} resolved from the configuration at {!create}
    time, so a protocol registered with {!Protocol.register} runs on this
    plumbing unchanged.

    The protocol follows the message/logging schedules of the paper's
    figures; DESIGN.md section 3 states the exact counting conventions the
    implementation reproduces. *)

open Types

type phase =
  | Ph_idle
  | Ph_voting        (* collecting local vote and children's votes *)
  | Ph_in_doubt      (* voted YES, awaiting the decision *)
  | Ph_delegated     (* sent YES-with-delegation to the last agent *)
  | Ph_deciding      (* outcome chosen, logging it *)
  | Ph_propagating   (* outcome durable, awaiting acknowledgments *)
  | Ph_ended

type child = {
  ch_profile : profile;
  mutable ch_vote : vote option;
  mutable ch_implied_ack : bool;
      (* the child declared its acknowledgment implied (reliable leaf) *)
  mutable ch_acked : bool;
  mutable ch_presumed_no : bool;
      (* vote timeout presumed NO: the member never actually said NO *)
  mutable ch_last_agent : bool;
  mutable ch_pending : bool;  (* wait-for-outcome: resolution in background *)
  mutable ch_retries : int;
}

type txn_state = {
  txn : string;
  mutable phase : phase;
  mutable phase_since : float;
      (* when [phase] was entered; feeds the per-phase latency histograms *)
  mutable parent : string option;   (* who sent us Prepare / delegation *)
  mutable delegator : string option; (* parent that handed us the decision *)
  mutable children : child list;    (* participating children this txn *)
  mutable local_vote : vote option;
  mutable outcome : outcome option;
  mutable decision_durable : bool;
  mutable long_locks_requested : bool;
  mutable sent_vote_reliable : bool; (* we voted YES+reliable: elide our ack *)
  mutable sent_vote : vote option;   (* the vote we sent up, for duplicate-Prepare re-sends *)
  mutable acked_up : bool;
  mutable damage : Msg.damage_report list;
  mutable pending : bool;
  mutable heuristic_action : outcome option;
  mutable vote_timer : Simkernel.Engine.event option;
  mutable heuristic_timer : Simkernel.Engine.event option;
  mutable indoubt_timer : Simkernel.Engine.event option;
  mutable delegation_timer : Simkernel.Engine.event option;
  mutable awaiting_implied_ack : bool; (* END deferred until next-txn data *)
  mutable logged_tm : bool;
      (* this node wrote a TM record for the txn: answers "does END have
         anything to mark" without rescanning the whole log *)
  mutable indoubt_entered : float option;
      (* when this node last entered Ph_in_doubt and has not yet released
         its locks: feeds the "blocking/blocked_lock" window histogram *)
  mutable heuristic_at : float option;
      (* when a heuristic decision was taken here, until the real outcome
         arrives: feeds the "blocking/heur_exposure" window histogram *)
}

(* An acknowledgment (or last-agent implied ack) waiting to piggyback on the
   next transaction's data exchange.  A concurrent workload driver flushes
   these when a genuinely-next transaction arrives; a fallback timer at
   [implied_ack_delay] simulates the think-time data message when nothing
   else does (the single-transaction behaviour). *)
type deferred = {
  d_dst : string;
  d_payloads : Msg.payload list;
  mutable d_sent : bool;
}

type t = {
  name : string;
  profile : profile;
  cfg : config;
  proto : Protocol_intf.t;  (* resolved from [cfg.protocol] at creation *)
  mutable ops : Protocol_intf.ops option;
      (* the capability record handed to protocol hooks; built lazily
         because its closures need functions defined below [create] *)
  engine : Simkernel.Engine.t;
  net : Net.t;
  log : Wal.Log.t;
  kv : Kvstore.t;
  trace : Trace.t;
  parent_name : string option;
  child_profiles : profile list;  (* static immediate children *)
  txns : (string, txn_state) Hashtbl.t;
  ended : (string, outcome) Hashtbl.t;  (* finished txns, for idempotent replies *)
  faults : (crash_point, fault) Hashtbl.t;
  fired_faults : (crash_point, unit) Hashtbl.t;
  mutable crashed : bool;
  mutable epoch : int;
  mutable on_root_complete : (txn:string -> outcome -> pending:bool -> unit) option;
  mutable on_crash : (unit -> unit) option;
      (* workload-driver hook fired after volatile state is wiped *)
  mutable registry : Obs.Registry.t option;
      (* telemetry sink for per-phase residence times; [None] = no recording *)
  mutable causal : Obs.Causal.t option;
      (* per-transaction causal event graph; recording is gated by the
         recorder's own mode, so a shared [Off] recorder costs nothing *)
  suspended_children : (string, unit) Hashtbl.t;
      (* children whose last committed YES carried OK-TO-LEAVE-OUT: they are
         suspended awaiting data and may be left out of the next transaction *)
  idle_children : (string * string, unit) Hashtbl.t;
      (* (txn, child): the child exchanged no data with us in that
         transaction (set by the workload driver before commit begins) *)
  mutable deferred : deferred list;
  mutable rejected : int;
      (* payloads refused by the protocol's admissibility check (forgeries
         an honest node can detect); survives restarts - the counter models
         the operator's tally, not volatile state *)
  mutable rejected_certs : int;
      (* the subset of refusals that were certificate-rule violations
         (uncertified/mis-certified decisions, bad vote signatures, invalid
         durable certificates found at restart); survives restarts like
         [rejected] *)
  certs : (string, Msg.certificate) Hashtbl.t;
      (* per-txn decision certificate under a certified protocol: built at
         the decision maker ([p_certify]), learned from admissible
         certified payloads elsewhere; volatile - restart re-validates and
         restores from the WAL's [Certificate] records *)
  mutable damage_seen : (string * Msg.damage_report) list;
      (* heuristic-damage reports that reached this node's operator, as
         (txn, report); populated where the protocol says reports stop
         (immediate coordinator for PA/basic, root for PN) *)
  guard_kind : Simkernel.Engine.kind;
      (* flat event kind for epoch-guarded timers: a0 carries the epoch the
         timer was armed under, the closure payload is the callback.  Saves
         the per-timer guard-closure allocation of the old [sched]. *)
}

let create ~engine ~net ~trace ~(cfg : config) ~profile ~parent ~child_profiles
    ~wal ~kv =
  let faults = Hashtbl.create 4 in
  List.iter
    (fun f -> if f.f_node = profile.p_name then Hashtbl.replace faults f.f_point f)
    cfg.faults;
  let tref = ref None in
  let guard_kind =
    Simkernel.Engine.register_kind engine
      ~name:("participant.guard." ^ profile.p_name) (fun ep _ _ f ->
        match !tref with
        | Some t when (not t.crashed) && t.epoch = ep -> f ()
        | _ -> ())
  in
  let t =
    {
    name = profile.p_name;
    profile;
    cfg;
    proto = Protocol.resolve cfg.protocol;
    ops = None;
    engine;
    net;
    log = wal;
    kv;
    trace;
    parent_name = parent;
    child_profiles;
    txns = Hashtbl.create 4;
    ended = Hashtbl.create 4;
    faults;
    fired_faults = Hashtbl.create 4;
    crashed = false;
    epoch = 0;
    on_root_complete = None;
    on_crash = None;
    registry = None;
    causal = None;
    suspended_children = Hashtbl.create 4;
    idle_children = Hashtbl.create 4;
    deferred = [];
    rejected = 0;
    rejected_certs = 0;
      certs = Hashtbl.create 4;
      damage_seen = [];
      guard_kind;
    }
  in
  tref := Some t;
  t

let name t = t.name
let kv t = t.kv
let log t = t.log
let is_crashed t = t.crashed
let set_on_root_complete t f = t.on_root_complete <- Some f
let set_on_crash t f = t.on_crash <- Some f
let set_registry t reg = t.registry <- Some reg
let set_causal t c = t.causal <- Some c

(* The workload driver declares, per transaction, which immediate children
   exchanged no data with this member; a child that is both idle and
   suspended (its previous committed YES said OK-TO-LEAVE-OUT) is left out
   of the commit entirely. *)
let note_idle_child t ~txn ~child = Hashtbl.replace t.idle_children (txn, child) ()

let clear_idle_children t ~txn =
  Hashtbl.iter
    (fun ((tx, _) as k) () -> if tx = txn then Hashtbl.remove t.idle_children k)
    (Hashtbl.copy t.idle_children)

let is_suspended t ~child = Hashtbl.mem t.suspended_children child

let now t = Simkernel.Engine.now t.engine

(* Schedule a callback that is silently dropped if the node crashes (and
   possibly restarts) in the meantime. *)
let sched t ~delay f =
  Simkernel.Engine.schedule_flat_fn t.engine ~delay ~kind:t.guard_kind
    ~a0:t.epoch f

let sched_ t ~delay f = ignore (sched t ~delay f)

let cancel_timer t ev_opt =
  match ev_opt with
  | Some ev -> Simkernel.Engine.cancel t.engine ev
  | None -> ()

(* Retransmission period for the [attempt]-th retry: exponential backoff by
   [retry_backoff], capped at 64x so a misconfigured multiplier cannot push
   the next attempt past any reasonable horizon.  The default multiplier of
   1.0 reproduces the classic fixed-period schedule exactly. *)
let retry_delay (t : t) attempt =
  t.cfg.retry_interval *. (t.cfg.retry_backoff ** float_of_int (min attempt 6))

let trace t ev = Trace.record t.trace ev

(* ------------------------------------------------------------------ *)
(* Causal recording                                                    *)
(* ------------------------------------------------------------------ *)

(* The graph recorder, when one is attached and actually recording.
   Every hook below goes through this, so counter-only harnesses pay a
   single pointer test per potential event. *)
let causal_sink t =
  match t.causal with
  | Some c when Obs.Causal.enabled c -> Some c
  | _ -> None

let causal_record ?(seg = Obs.Causal.Compute) t ~txn label =
  match causal_sink t with
  | Some c ->
      Obs.Causal.record c ~txn ~who:t.name ~time:(Simkernel.Engine.now t.engine)
        ~seg (label ())
  | None -> ()

let observe t name v =
  match t.registry with
  | Some reg -> Obs.Registry.observe reg name v
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Phase telemetry                                                     *)
(* ------------------------------------------------------------------ *)

let phase_name = function
  | Ph_idle -> "idle"
  | Ph_voting -> "voting"
  | Ph_in_doubt -> "in-doubt"
  | Ph_delegated -> "delegated"
  | Ph_deciding -> "decision"
  | Ph_propagating -> "phase-two"
  | Ph_ended -> "ended"

(* Every phase transition goes through here: the residence time of the
   phase being left streams into the registry's "phase/<name>" histogram
   (idle residence is meaningless — states are created on demand). *)
let set_phase t st ph =
  (match t.registry with
  | Some reg when ph <> st.phase && st.phase <> Ph_idle ->
      Obs.Registry.observe reg
        ("phase/" ^ phase_name st.phase)
        (now t -. st.phase_since)
  | _ -> ());
  if ph <> st.phase then begin
    (* Blocking-window accounting: the in-doubt residence is the window
       during which this member can neither commit nor abort (Gray &
       Lamport's blocking window); the lock-hostage window it opens closes
       later, when [apply_local] actually releases the locks. *)
    if st.phase = Ph_in_doubt then
      observe t "blocking/in_doubt" (now t -. st.phase_since);
    if ph = Ph_in_doubt && st.indoubt_entered = None then
      st.indoubt_entered <- Some (now t)
  end;
  st.phase_since <- now t;
  st.phase <- ph

(* ------------------------------------------------------------------ *)
(* Messaging                                                           *)
(* ------------------------------------------------------------------ *)

(* A bundle containing application [Data] is a data flow: anything
   piggybacked on it travels free (implied acks, long-locks acks). *)
let bundle_is_protocol payloads =
  not (List.exists (function Msg.Data _ -> true | _ -> false) payloads)

let send t ~dst payloads =
  trace t
    (Trace.Send
       {
         time = now t;
         src = t.name;
         dst;
         label = Msg.bundle_label payloads;
         protocol = bundle_is_protocol payloads;
       });
  (match (causal_sink t, payloads) with
  | Some c, p :: _ ->
      Obs.Causal.send c ~txn:(Msg.payload_txn p) ~src:t.name ~dst ~time:(now t)
        ~label:(Msg.bundle_label payloads)
  | _ -> ());
  ignore (Net.send t.net ~src:t.name ~dst payloads)

(* ------------------------------------------------------------------ *)
(* Logging                                                             *)
(* ------------------------------------------------------------------ *)

(* Shared-log members write their records into the parent's log without
   forcing: durability rides on the parent TM's forces. *)
let mark_logged t ~txn =
  match Hashtbl.find_opt t.txns txn with
  | Some st -> st.logged_tm <- true
  | None -> ()

let tm_force t ~txn kind k =
  mark_logged t ~txn;
  let record = Wal.Log_record.make ~txn ~node:t.name kind in
  if t.cfg.opts.shared_log && t.profile.p_shares_parent_log then begin
    trace t
      (Trace.Log_write { time = now t; node = t.name; kind; forced = false; rm = false });
    causal_record t ~txn (fun () ->
        "log append " ^ Wal.Log_record.kind_to_string kind ^ " (shared log)");
    Wal.Log.append t.log record;
    k ()
  end
  else begin
    trace t
      (Trace.Log_write { time = now t; node = t.name; kind; forced = true; rm = false });
    causal_record t ~txn (fun () ->
        "force " ^ Wal.Log_record.kind_to_string kind);
    let ep = t.epoch in
    Wal.Log.force t.log record (fun () ->
        if (not t.crashed) && t.epoch = ep then begin
          causal_record t ~txn ~seg:Obs.Causal.Log_wait (fun () ->
              Wal.Log_record.kind_to_string kind ^ " durable");
          k ()
        end)
  end

let tm_append ?payload t ~txn kind =
  mark_logged t ~txn;
  trace t
    (Trace.Log_write { time = now t; node = t.name; kind; forced = false; rm = false });
  causal_record t ~txn (fun () ->
      "log append " ^ Wal.Log_record.kind_to_string kind);
  Wal.Log.append t.log (Wal.Log_record.make ~txn ~node:t.name ?payload kind)

(* Force a protocol-prescribed record sequence in order, then continue:
   how [p_voter_log] and [p_delegation_log] reach the disk. *)
let rec force_records t ~txn records k =
  match records with
  | [] -> k ()
  | kind :: rest -> tm_force t ~txn kind (fun () -> force_records t ~txn rest k)

(* ------------------------------------------------------------------ *)
(* Decision certificates (certified protocols only)                    *)
(* ------------------------------------------------------------------ *)

let cert_for t txn = Hashtbl.find_opt t.certs txn

(* First sight of a certificate for [txn]: cache it and append it to the
   WAL so the next force hardens certificate and outcome together.  Only
   certified payloads that passed admissibility reach here; under the
   paper's protocols no certificate ever arrives and this is a no-op. *)
let note_cert t ~txn cert =
  match cert with
  | Some c when not (Hashtbl.mem t.certs txn) ->
      Hashtbl.replace t.certs txn c;
      tm_append t ~txn ~payload:(Msg.cert_to_string c)
        Wal.Log_record.Certificate
  | _ -> ()

let note_payload_cert t (payload : Msg.payload) =
  match payload with
  | Msg.Decision_msg { txn; cert; _ } | Msg.Inquiry_reply { txn; cert; _ } ->
      note_cert t ~txn cert
  | _ -> ()

(* Canonical digest of the vote set a decision was taken over: what the
   replica ensemble endorses, and what ties every endorsement in one
   certificate to the same evidence. *)
let votes_digest t st =
  let vs =
    (t.name, st.local_vote)
    :: List.map (fun ch -> (ch.ch_profile.p_name, ch.ch_vote)) st.children
  in
  Msg.digest
    (String.concat ";"
       (List.map
          (fun (n, v) ->
            n ^ "="
            ^ match v with Some v -> Types.vote_to_string v | None -> "-")
          (List.sort compare vs)))

(* ------------------------------------------------------------------ *)
(* Crash injection                                                     *)
(* ------------------------------------------------------------------ *)

let rec crash t =
  t.crashed <- true;
  t.epoch <- t.epoch + 1;
  trace t (Trace.Crash { time = now t; node = t.name });
  Net.crash_node t.net t.name;
  Wal.Log.crash t.log;
  Kvstore.crash t.kv;
  Hashtbl.reset t.txns;
  (* the in-memory certificate cache dies with the node; restart rebuilds
     it from the durable [Certificate] records, re-validating each *)
  Hashtbl.reset t.certs;
  (* suspension is conversation state: the sessions died with us, so the
     conservative post-crash behaviour is to re-engage everyone *)
  Hashtbl.reset t.suspended_children;
  Hashtbl.reset t.idle_children;
  (* undelivered piggybacked acks died with the sessions *)
  t.deferred <- [];
  match t.on_crash with Some f -> f () | None -> ()

(* [maybe_crash] returns true when the fault fired: the caller must stop. *)
and maybe_crash t point =
  match Hashtbl.find_opt t.faults point with
  | Some f when not (Hashtbl.mem t.fired_faults point) ->
      Hashtbl.replace t.fired_faults point ();
      crash t;
      (match f.f_restart_after with
      | Some delay ->
          (* restart is scheduled on the raw engine: the node is down, so the
             epoch guard must not apply *)
          ignore
            (Simkernel.Engine.schedule t.engine ~delay (fun () -> restart t))
      | None -> ());
      true
  | _ -> false

(* The capability record protocol hooks act through.  Memoized on first
   use; the closures check crash state and epochs themselves, so one
   record stays valid across restarts. *)
and ops_of t =
  match t.ops with
  | Some o -> o
  | None ->
      let o =
        {
          Protocol_intf.op_send = (fun ~dst payloads -> send t ~dst payloads);
          op_force = (fun ~txn kind k -> tm_force t ~txn kind k);
          op_append = (fun ~txn kind -> tm_append t ~txn kind);
          op_note =
            (fun text ->
              trace t (Trace.Note { time = now t; node = t.name; text }));
          op_crash_at = (fun point -> maybe_crash t point);
          op_now = (fun () -> now t);
          op_after = (fun ~delay f -> sched_ t ~delay f);
          op_charge =
            (fun ~flows ~forces ->
              (* Synthetic cost for protocol machinery the simulation does
                 not model as separate nodes (the BFT replica ensemble).
                 The pseudo-endpoint name is not a registered node, so the
                 sequence diagram skips these arrows while the flow and
                 forced-write counters (and so Tables 2-4) see them. *)
              let replica = t.name ^ "!replica" in
              for _ = 1 to flows do
                trace t
                  (Trace.Send
                     {
                       time = now t;
                       src = t.name;
                       dst = replica;
                       label = "replica-quorum";
                       protocol = true;
                     })
              done;
              for _ = 1 to forces do
                trace t
                  (Trace.Log_write
                     {
                       time = now t;
                       node = replica;
                       kind = Wal.Log_record.Certificate;
                       forced = true;
                       rm = false;
                     })
              done);
        }
      in
      t.ops <- Some o;
      o

(* ------------------------------------------------------------------ *)
(* Transaction state                                                   *)
(* ------------------------------------------------------------------ *)

and new_txn_state t txn =
  let st =
    {
      txn;
      phase = Ph_idle;
      phase_since = now t;
      parent = None;
      delegator = None;
      children = [];
      local_vote = None;
      outcome = None;
      decision_durable = false;
      long_locks_requested = false;
      sent_vote_reliable = false;
      sent_vote = None;
      acked_up = false;
      damage = [];
      pending = false;
      heuristic_action = None;
      vote_timer = None;
      heuristic_timer = None;
      indoubt_timer = None;
      delegation_timer = None;
      awaiting_implied_ack = false;
      logged_tm = false;
      indoubt_entered = None;
      heuristic_at = None;
    }
  in
  Hashtbl.replace t.txns txn st;
  st

and get_txn t txn = Hashtbl.find_opt t.txns txn

and get_or_new_txn t txn =
  match get_txn t txn with Some st -> st | None -> new_txn_state t txn

(* Children that take part in this transaction: left-out members are
   excluded entirely when the optimization is enabled. *)
and participating_children t ~txn =
  List.filter_map
    (fun p ->
      if
        t.cfg.opts.leave_out
        && (p.p_left_out
           || (Hashtbl.mem t.suspended_children p.p_name
              && Hashtbl.mem t.idle_children (txn, p.p_name)))
      then begin
        trace t
          (Trace.Note
             {
               time = now t;
               node = t.name;
               text = Printf.sprintf "leaves out suspended server %s" p.p_name;
             });
        None
      end
      else
        Some
          {
            ch_profile = p;
            ch_vote = None;
            ch_implied_ack = false;
            ch_acked = false;
            ch_presumed_no = false;
            ch_last_agent = false;
            ch_pending = false;
            ch_retries = 0;
          })
    t.child_profiles

(* ------------------------------------------------------------------ *)
(* Voting phase                                                        *)
(* ------------------------------------------------------------------ *)

(* Entry point at the root coordinator. *)
and begin_commit t ~txn =
  let st = get_or_new_txn t txn in
  set_phase t st Ph_voting;
  st.children <- participating_children t ~txn;
  t.proto.p_begin_commit (ops_of t) ~txn ~root:true
    ~has_children:(st.children <> [])
    ~k:(fun () -> start_phase1 t st)

and designate_last_agent t st =
  (* Pick the final participating child as the last agent; Run orders
     children so the highest-latency member comes last. *)
  if t.cfg.opts.last_agent then
    match List.rev st.children with
    | last :: _
      when (not (t.cfg.opts.unsolicited_vote && last.ch_profile.p_unsolicited))
           && not last.ch_profile.p_shares_parent_log ->
        last.ch_last_agent <- true
    | _ -> ()

and start_phase1 t st =
  (* any member we engage is no longer suspended *)
  List.iter
    (fun ch -> Hashtbl.remove t.suspended_children ch.ch_profile.p_name)
    st.children;
  designate_last_agent t st;
  (* Prepare flows to everyone except the last agent (contacted after all
     other votes are in) and unsolicited voters (they contact us). *)
  List.iter
    (fun ch ->
      if
        (not ch.ch_last_agent)
        && not (t.cfg.opts.unsolicited_vote && ch.ch_profile.p_unsolicited)
      then
        send t ~dst:ch.ch_profile.p_name
          [
            Msg.Prepare
              {
                txn = st.txn;
                long_locks = t.cfg.opts.long_locks && ch.ch_profile.p_long_locks;
              };
          ])
    st.children;
  start_vote_timer t st;
  local_prepare t st

and start_vote_timer ?(attempt = 0) t st =
  st.vote_timer <-
    Some
      (sched t ~delay:(retry_delay t attempt) (fun () ->
           if st.phase = Ph_voting then
             if attempt < t.cfg.prepare_retries then begin
               (* re-send Prepare to the silent voters before giving up: a
                  lost Prepare (or lost vote) need not abort the transaction
                  when the configuration allows retransmission *)
               trace t
                 (Trace.Note
                    {
                      time = now t;
                      node = t.name;
                      text = "vote timeout: re-sending Prepare to silent members";
                    });
               causal_record t ~txn:st.txn ~seg:Obs.Causal.In_doubt (fun () ->
                   "vote timeout: retransmitting Prepare");
               List.iter
                 (fun ch ->
                   if
                     ch.ch_vote = None
                     && (not ch.ch_last_agent)
                     && not
                          (t.cfg.opts.unsolicited_vote
                          && ch.ch_profile.p_unsolicited)
                   then
                     send t ~dst:ch.ch_profile.p_name
                       [
                         Msg.Prepare
                           {
                             txn = st.txn;
                             long_locks =
                               t.cfg.opts.long_locks
                               && ch.ch_profile.p_long_locks;
                           };
                       ])
                 st.children;
               start_vote_timer ~attempt:(attempt + 1) t st
             end
             else begin
               (* missing votes are treated as NO *)
               trace t
                 (Trace.Note
                    {
                      time = now t;
                      node = t.name;
                      text = "vote timeout: presuming NO from silent members";
                    });
               causal_record t ~txn:st.txn ~seg:Obs.Causal.In_doubt (fun () ->
                   "vote timeout: presuming NO from silent members");
               List.iter
                 (fun ch ->
                   if ch.ch_vote = None && not ch.ch_last_agent then begin
                     ch.ch_vote <- Some Vote_no;
                     ch.ch_presumed_no <- true
                   end)
                 st.children;
               maybe_all_votes_in t st
             end))

(* The local resource manager's vote.  The RM's own records are non-forced:
   their durability rides on the TM's forced Prepared/Committed record in
   the same log. *)
and local_prepare t st =
  Kvstore.prepare t.kv ~txn:st.txn ~force:false (fun kv_vote ->
      let v =
        if t.profile.p_vote_no then Vote_no
        else
          match kv_vote with
          | Kvstore.Vote_no -> Vote_no
          | Kvstore.Vote_read_only when t.cfg.opts.read_only -> Vote_read_only
          | Kvstore.Vote_read_only | Kvstore.Vote_yes ->
              Vote_yes
                {
                  reliable = t.profile.p_reliable;
                  leave_out_ok = t.profile.p_leave_out_ok;
                }
      in
      (* a dual-coordinator detection may already have pinned a NO *)
      if st.local_vote = None then begin
        st.local_vote <- Some v;
        maybe_all_votes_in t st
      end)

and votes_missing st =
  st.local_vote = None
  || List.exists
       (fun ch -> ch.ch_vote = None && not ch.ch_last_agent)
       st.children

and maybe_all_votes_in t st =
  (* one NO suffices: abort without waiting for the stragglers *)
  let known_no =
    st.local_vote = Some Vote_no
    || List.exists (fun ch -> ch.ch_vote = Some Vote_no) st.children
  in
  if st.phase = Ph_voting && known_no then begin
    cancel_timer t st.vote_timer;
    st.vote_timer <- None;
    on_voted_no t st
  end
  else if st.phase = Ph_voting && not (votes_missing st) then begin
    cancel_timer t st.vote_timer;
    st.vote_timer <- None;
    let votes =
      Option.get st.local_vote
      :: List.filter_map (fun ch -> if ch.ch_last_agent then None else ch.ch_vote)
           st.children
    in
    let any_no = List.mem Vote_no votes in
    let all_read_only =
      List.for_all (function Vote_read_only -> true | _ -> false) votes
    in
    if any_no then on_voted_no t st
    else if st.delegator <> None then
      (* a delegation receiver owns the decision: even with an all-read-only
         subtree it must decide durably and report to its delegator *)
      on_all_yes t st
    else if all_read_only && st.parent <> None then vote_up_read_only t st
    else if all_read_only && st.parent = None then
      (* the whole tree is read-only: no second phase, nothing logged *)
      complete_read_only_root t st
    else on_all_yes t st
  end

(* A subordinate subtree that did nothing but read: vote read-only, write
   nothing, release locks, and drop out of phase two. *)
and vote_up_read_only t st =
  trace t (Trace.Locks_released { time = now t; node = t.name });
  send t ~dst:(Option.get st.parent)
    [
      Msg.Vote_msg
        {
          txn = st.txn;
          vote = Vote_read_only;
          delegation = false;
          unsolicited = false;
          implied_ack = false;
          tag = Msg.vote_tag ~src:t.name ~txn:st.txn Vote_read_only;
        };
    ];
  end_txn t st Committed

and complete_read_only_root t st =
  st.outcome <- Some Committed;
  trace t (Trace.Decide { time = now t; node = t.name; outcome = Committed });
  trace t (Trace.Locks_released { time = now t; node = t.name });
  root_complete t st Committed;
  end_txn t st Committed

and on_voted_no t st =
  (* Tell the coordinator, then abort without waiting for anyone: a NO
     voter owns its own abort. *)
  (match st.parent with
  | Some parent ->
      send t ~dst:parent
        [
          Msg.Vote_msg
            {
              txn = st.txn;
              vote = Vote_no;
              delegation = false;
              unsolicited = false;
              implied_ack = false;
              tag = Msg.vote_tag ~src:t.name ~txn:st.txn Vote_no;
            };
        ]
  | None -> ());
  decide t st Aborted

and on_all_yes t st =
  let last_agent = List.find_opt (fun ch -> ch.ch_last_agent) st.children in
  match (st.parent, st.delegator, last_agent) with
  | None, None, None -> decide t st Committed (* plain root: decide *)
  | _, _, Some agent ->
      (* delegate the decision to the last agent (Figure 6) *)
      delegate_to_last_agent t st agent
  | Some parent, None, None -> vote_yes_up t st parent
  | _, Some _, None ->
      (* we are a last agent that received the delegation: we decide *)
      decide t st Committed

(* A lost delegation message (or a lost decision report from the agent)
   would otherwise stall the delegator forever: it is not in doubt in the
   RM sense, just waiting.  Re-send the delegation until the agent's
   decision arrives; the agent side is idempotent (a duplicate delegation
   for an ended transaction repeats the outcome). *)
and start_delegation_timer ?(attempt = 0) t st send_delegation =
  if attempt < t.cfg.max_retries then
    st.delegation_timer <-
      Some
        (sched t ~delay:(retry_delay t attempt) (fun () ->
             if st.phase = Ph_delegated then begin
               trace t
                 (Trace.Note
                    {
                      time = now t;
                      node = t.name;
                      text = "delegation unanswered: re-sending to last agent";
                    });
               causal_record t ~txn:st.txn ~seg:Obs.Causal.In_doubt (fun () ->
                   "delegation unanswered: retransmitting");
               send_delegation ();
               start_delegation_timer ~attempt:(attempt + 1) t st
                 send_delegation
             end))

and delegate_to_last_agent t st agent =
  let proceed () =
    set_phase t st Ph_delegated;
    let reliable =
      t.profile.p_reliable
      && List.for_all
           (fun ch ->
             ch.ch_last_agent
             ||
             match ch.ch_vote with
             | Some (Vote_yes { reliable; _ }) -> reliable
             | Some Vote_read_only -> true
             | _ -> false)
           st.children
    in
    let send_delegation () =
      let vote = Vote_yes { reliable; leave_out_ok = false } in
      send t ~dst:agent.ch_profile.p_name
        [
          Msg.Vote_msg
            {
              txn = st.txn;
              vote;
              delegation = true;
              unsolicited = false;
              implied_ack = false;
              tag = Msg.vote_tag ~src:t.name ~txn:st.txn vote;
            };
        ]
    in
    send_delegation ();
    start_delegation_timer t st send_delegation
  in
  (* The delegating node must be durably prepared before giving the decision
     away; the protocol says which records make it so (PN: none - its
     commit-pending force already was the durability point). *)
  force_records t ~txn:st.txn t.proto.p_delegation_log proceed

and vote_yes_up t st parent =
  let reliable =
    t.profile.p_reliable
    && List.for_all
         (fun ch ->
           match ch.ch_vote with
           | Some (Vote_yes { reliable; _ }) -> reliable
           | Some Vote_read_only -> true
           | _ -> false)
         st.children
  in
  let leave_out_ok =
    t.profile.p_leave_out_ok
    && List.for_all
         (fun ch ->
           match ch.ch_vote with
           | Some (Vote_yes { leave_out_ok; _ }) -> leave_out_ok
           | Some Vote_read_only -> true
           | _ -> false)
         st.children
  in
  (* A reliable *leaf* resource elides its acknowledgment entirely (its ack
     is implied); a reliable cascaded coordinator still acknowledges, merely
     early (Figure 8 shows both behaviours). *)
  let elide_ack =
    t.cfg.opts.vote_reliable && t.profile.p_reliable && st.children = []
  in
  let send_vote () =
    if st.phase <> Ph_voting then ()
      (* the transaction was resolved while the force was in flight
         (e.g. a dual-initiation abort): do not send a stale YES *)
    else if maybe_crash t Cp_after_prepared_log then ()
    else begin
      set_phase t st Ph_in_doubt;
      st.sent_vote_reliable <- elide_ack;
      st.sent_vote <- Some (Vote_yes { reliable; leave_out_ok });
      let vote = Vote_yes { reliable; leave_out_ok } in
      send t ~dst:parent
        [
          Msg.Vote_msg
            {
              txn = st.txn;
              vote;
              delegation = false;
              unsolicited = false;
              implied_ack = elide_ack;
              tag = Msg.vote_tag ~src:t.name ~txn:st.txn vote;
            };
        ];
      if maybe_crash t Cp_after_vote then ()
      else begin
        start_heuristic_timer t st;
        start_indoubt_timer t st
      end
    end
  in
  (* The protocol prescribes what a YES voter forces before the vote may
     leave the node (PN adds its agent ack-obligation record: Table 2
     charges its subordinates four writes, three forced). *)
  force_records t ~txn:st.txn t.proto.p_voter_log send_vote

(* Unsolicited vote (leaf server that knows it is finished): prepare
   spontaneously and send YES without waiting for Prepare. *)
and begin_unsolicited t ~txn =
  match t.parent_name with
  | None -> invalid_arg "unsolicited vote requires a parent"
  | Some parent ->
      let st = get_or_new_txn t txn in
      st.parent <- Some parent;
      set_phase t st Ph_voting;
      st.children <- [];
      let elide_ack = t.cfg.opts.vote_reliable && t.profile.p_reliable in
      Kvstore.prepare t.kv ~txn ~force:false (fun _kv_vote ->
          tm_force t ~txn Wal.Log_record.Prepared (fun () ->
              set_phase t st Ph_in_doubt;
              st.sent_vote_reliable <- elide_ack;
              st.local_vote <-
                Some (Vote_yes { reliable = t.profile.p_reliable; leave_out_ok = false });
              st.sent_vote <- st.local_vote;
              let vote =
                Vote_yes { reliable = t.profile.p_reliable; leave_out_ok = false }
              in
              send t ~dst:parent
                [
                  Msg.Vote_msg
                    {
                      txn;
                      vote;
                      delegation = false;
                      unsolicited = true;
                      implied_ack = elide_ack;
                      tag = Msg.vote_tag ~src:t.name ~txn vote;
                    };
                ];
              start_heuristic_timer t st;
              start_indoubt_timer t st))

(* ------------------------------------------------------------------ *)
(* Decision phase                                                      *)
(* ------------------------------------------------------------------ *)

and decide t st outcome =
  set_phase t st Ph_deciding;
  st.outcome <- Some outcome;
  trace t (Trace.Decide { time = now t; node = t.name; outcome });
  causal_record t ~txn:st.txn (fun () ->
      "decides " ^ outcome_to_string outcome);
  if maybe_crash t Cp_before_decision_log then ()
  else
    let log_decision () =
      match t.proto.p_decision_log outcome with
      | Protocol_intf.Log_force kind ->
          tm_force t ~txn:st.txn kind (fun () ->
              st.decision_durable <- true;
              if not (maybe_crash t Cp_after_decision_log) then
                after_decision_durable t st)
      | Protocol_intf.Log_append kind ->
          tm_append t ~txn:st.txn kind;
          st.decision_durable <- true;
          after_decision_durable t st
      | Protocol_intf.Log_none ->
          (* nothing durable: the presumption carries the outcome (PA abort) *)
          st.decision_durable <- true;
          after_decision_durable t st
    in
    match t.proto.p_certify with
    | Some certify when not (Hashtbl.mem t.certs st.txn) ->
        (* certified protocol: gather the endorsement quorum first, append
           the certificate, then log the outcome - the outcome force
           hardens both, so no one ever sees a certificate whose decision
           is not durable *)
        certify (ops_of t) ~cfg:t.cfg ~txn:st.txn ~outcome
          ~votes:(votes_digest t st)
          ~k:(fun cert ->
            Hashtbl.replace t.certs st.txn cert;
            tm_append t ~txn:st.txn ~payload:(Msg.cert_to_string cert)
              Wal.Log_record.Certificate;
            log_decision ())
    | _ -> log_decision ()

and after_decision_durable t st =
  let outcome = Option.get st.outcome in
  (* apply locally *)
  apply_local t st outcome (fun () ->
      propagate_decision t st outcome;
      (* a last agent reports the decision back to its delegator *)
      (match st.delegator with
      | Some up ->
          send t ~dst:up
            [
              Msg.Decision_msg
                { txn = st.txn; outcome; cert = cert_for t st.txn };
            ];
          st.awaiting_implied_ack <- true
      | None -> ());
      maybe_finished t st)

and apply_local t st outcome k =
  let released () =
    trace t (Trace.Locks_released { time = now t; node = t.name });
    causal_record t ~txn:st.txn (fun () -> "releases locks");
    (* the lock-hostage window a blocked member held its data for: from
       entering in-doubt to the locks actually coming off *)
    (match st.indoubt_entered with
    | Some t0 ->
        observe t "blocking/blocked_lock" (now t -. t0);
        st.indoubt_entered <- None
    | None -> ());
    k ()
  in
  match outcome with
  | Committed -> Kvstore.commit t.kv ~txn:st.txn ~force:false released
  | Aborted -> Kvstore.abort t.kv ~txn:st.txn released

and decision_recipients st =
  (* Commits flow to YES voters only: read-only voters left phase two, a
     delegated last agent decided the outcome itself.  Aborts additionally
     flow to members that never voted or voted NO (Table 2 charges the PA
     abort-case coordinator two flows), releasing their resources. *)
  List.filter
    (fun ch ->
      match Option.get st.outcome with
      | Committed -> (
          (not ch.ch_last_agent)
          && match ch.ch_vote with Some (Vote_yes _) -> true | _ -> false)
      | Aborted -> (
          match ch.ch_vote with
          | Some Vote_read_only -> false
          | Some (Vote_yes _) | Some Vote_no | None -> true))
    st.children

and ack_expected_from t ch =
  ignore t;
  match Option.get ch.ch_vote with
  | Vote_yes _ -> not ch.ch_implied_ack (* reliable leaf: its ack is implied *)
  | Vote_read_only | Vote_no -> false

and propagate_decision t st outcome =
  let recipients = decision_recipients st in
  List.iter
    (fun ch ->
      send t ~dst:ch.ch_profile.p_name
        [ Msg.Decision_msg { txn = st.txn; outcome; cert = cert_for t st.txn } ];
      (match Option.get st.outcome with
      | Committed ->
          if ack_expected_from t ch then start_ack_retry t st ch
          else ch.ch_acked <- true
      | Aborted ->
          (* the protocol says which abort notifications must be confirmed
             (PA: none; PN: all but a real NO voter; basic: YES voters) *)
          if
            t.proto.p_abort_ack_required ~vote:ch.ch_vote
              ~presumed_no:ch.ch_presumed_no
          then start_ack_retry t st ch
          else ch.ch_acked <- true))
    recipients;
  set_phase t st Ph_propagating;
  (* early acknowledgment upstream, if the policy allows it *)
  if st.parent <> None && not st.acked_up then begin
    let all_children_reliable =
      List.for_all
        (fun ch ->
          ch.ch_last_agent
          ||
          match ch.ch_vote with
          | Some (Vote_yes { reliable; _ }) -> reliable
          | Some Vote_read_only -> true
          | Some Vote_no | None -> false)
        st.children
    in
    if
      t.cfg.opts.ack = Early_ack
      || (t.cfg.opts.vote_reliable && all_children_reliable
         && st.children <> [])
    then send_ack_up t st
  end

and start_ack_retry t st ch =
  sched_ t ~delay:(retry_delay t ch.ch_retries) (fun () -> retry_child t st ch)

and retry_child t st ch =
  if (not ch.ch_acked) && st.phase = Ph_propagating then begin
    ch.ch_retries <- ch.ch_retries + 1;
    if t.cfg.opts.wait_for_outcome && ch.ch_retries >= 1 && not ch.ch_pending
    then begin
      (* one attempt made: stop blocking, resolve in the background *)
      ch.ch_pending <- true;
      st.pending <- true;
      trace t
        (Trace.Note
           {
             time = now t;
             node = t.name;
             text =
               Printf.sprintf "outcome pending: %s unreachable, recovery in background"
                 ch.ch_profile.p_name;
           });
      maybe_finished t st
    end;
    if ch.ch_retries <= t.cfg.max_retries then begin
      causal_record t ~txn:st.txn ~seg:Obs.Causal.In_doubt (fun () ->
          "ack overdue: retransmitting decision to " ^ ch.ch_profile.p_name);
      send t ~dst:ch.ch_profile.p_name
        [
          Msg.Decision_msg
            {
              txn = st.txn;
              outcome = Option.get st.outcome;
              cert = cert_for t st.txn;
            };
        ];
      start_ack_retry t st ch
    end
    else if ch.ch_presumed_no && not ch.ch_pending then begin
      (* retransmissions to a member that never voted are exhausted: it is
         either gone for good or will abort unilaterally / inquire on
         restart.  Stop blocking the application; the decision stays durable
         and the transaction open (no END), so a recovering member can still
         learn the outcome by inquiry.  Completion carries the pending
         indication. *)
      ch.ch_pending <- true;
      st.pending <- true;
      trace t
        (Trace.Note
           {
             time = now t;
             node = t.name;
             text =
               Printf.sprintf
                 "acknowledgment retries exhausted: %s unresolved, decision \
                  retained"
                 ch.ch_profile.p_name;
           });
      maybe_finished t st
    end
  end

(* ------------------------------------------------------------------ *)
(* Completion                                                          *)
(* ------------------------------------------------------------------ *)

and acks_outstanding t st =
  ignore t;
  List.exists
    (fun ch -> (not ch.ch_acked) && not ch.ch_pending)
    (decision_recipients st)

and maybe_finished t st =
  if st.phase = Ph_propagating && not (acks_outstanding t st) then begin
    let outcome = Option.get st.outcome in
    (* wait-for-outcome: children marked pending let the commit complete,
       but the transaction stays open so background retries can still
       resolve them (the END record waits for the real acknowledgments) *)
    let background_pending =
      List.exists
        (fun ch -> ch.ch_pending && not ch.ch_acked)
        (decision_recipients st)
    in
    match (st.parent, st.delegator) with
    | None, None ->
        (* root: tell the application, then forget *)
        if not st.acked_up then begin
          (* acked_up doubles as the "application informed" latch at the
             root, which has nobody to acknowledge to *)
          st.acked_up <- true;
          root_complete t st outcome
        end;
        if not background_pending then finish_with_end t st
    | _, Some _ ->
        (* last agent: wait for the implied acknowledgment before END *)
        if not st.awaiting_implied_ack then finish_with_end t st
    | Some _, None ->
        if st.acked_up then begin
          if not background_pending then finish_with_end t st
        end
        else if st.long_locks_requested then defer_ack_long_locks t st
        else if st.sent_vote_reliable && outcome = Committed then begin
          (* our parent elided our ack: forget immediately *)
          finish_with_end t st
        end
        else if outcome = Aborted && not t.proto.p_ack_on_abort && st.damage = []
        then
          (* the presumption stands in for the acknowledgment (PA) - but
             only when there is nothing to report: heuristic damage must
             reach an operator, so a damage-bearing abort is acknowledged
             even under PA *)
          end_txn t st outcome
        else begin
          if not (maybe_crash t Cp_before_ack) then begin
            send_ack_up t st;
            if not background_pending then finish_with_end t st
          end
        end
  end

and send_ack_up t st =
  match st.parent with
  | None -> ()
  | Some parent ->
      if not st.acked_up then begin
        st.acked_up <- true;
        (* Damage reporting: PN propagates subtree damage to the root;
           PA reports only to the immediate coordinator, so the subtree
           damage list was consumed where it was received and only damage
           originating here travels up. *)
        send t ~dst:parent
          [ Msg.Ack_msg { txn = st.txn; damage = st.damage; pending = st.pending } ]
      end

(* Register a payload bundle that wants to ride the next transaction's data
   exchange.  [flush_piggybacks] (called by a concurrent workload driver when
   a genuinely-next transaction arrives) sends it early; otherwise the
   fallback timer fires after the configured think time, reproducing the
   single-transaction behaviour exactly. *)
and defer_piggyback t ~dst payloads =
  let d = { d_dst = dst; d_payloads = payloads; d_sent = false } in
  t.deferred <- d :: List.filter (fun x -> not x.d_sent) t.deferred;
  sched_ t ~delay:t.cfg.implied_ack_delay (fun () -> fire_deferred t d)

and fire_deferred t d =
  if not d.d_sent then begin
    d.d_sent <- true;
    send t ~dst:d.d_dst d.d_payloads
  end

and defer_ack_long_locks t st =
  (* Long locks: hold the acknowledgment and piggyback it on the data
     message that begins the next transaction (Figure 7).  In a
     single-transaction run that data message is simulated after a think
     time; in chained runs Stream provides the real one. *)
  if not st.acked_up then begin
    st.acked_up <- true;
    trace t
      (Trace.Note
         {
           time = now t;
           node = t.name;
           text = "long locks: ack deferred to next-transaction data";
         });
    let parent = Option.get st.parent in
    defer_piggyback t ~dst:parent
      [
        Msg.Data { txn = st.txn; info = "next-txn" };
        Msg.Ack_msg { txn = st.txn; damage = st.damage; pending = st.pending };
      ];
    finish_with_end t st
  end

and root_complete t st outcome =
  trace t
    (Trace.Complete { time = now t; node = t.name; outcome; pending = st.pending });
  causal_record t ~txn:st.txn (fun () ->
      "completes: " ^ outcome_to_string outcome);
  List.iter
    (fun (d : Msg.damage_report) ->
      t.damage_seen <- (st.txn, d) :: t.damage_seen;
      trace t
        (Trace.Damage_detected { time = now t; node = d.d_node; reported_to = t.name }))
    st.damage;
  match t.on_root_complete with
  | Some f -> f ~txn:st.txn outcome ~pending:st.pending
  | None -> ()

and finish_with_end t st =
  (* The END record marks earlier state as forgettable; a presumed-abort
     participant that logged nothing (PA abort case) has nothing to mark. *)
  (* the tracked bit answers in O(1); the log scan remains only for states
     rebuilt by crash recovery, where the bit was lost with the state *)
  let logged_anything =
    st.logged_tm
    || List.exists
         (fun (r : Wal.Log_record.t) ->
           r.txn = st.txn && r.node = t.name && Wal.Log_record.is_tm_record r)
         (Wal.Log.all_records t.log)
  in
  if logged_anything then tm_append t ~txn:st.txn Wal.Log_record.End;
  (* anyone who delegated the decision owes the last agent an implied
     acknowledgment: the next transaction's data message releases its END *)
  List.iter
    (fun ch ->
      if ch.ch_last_agent && Option.get st.outcome = Committed then
        defer_piggyback t ~dst:ch.ch_profile.p_name
          [ Msg.Data { txn = st.txn; info = "next-txn" } ])
    st.children;
  end_txn t st (Option.get st.outcome)

and end_txn t st outcome =
  set_phase t st Ph_ended;
  cancel_timer t st.vote_timer;
  cancel_timer t st.heuristic_timer;
  cancel_timer t st.indoubt_timer;
  cancel_timer t st.delegation_timer;
  (* OK-TO-LEAVE-OUT is a protected variable: it takes effect only if the
     transaction commits.  A child whose YES carried the flag is now
     suspended until we next send it work. *)
  if outcome = Committed then
    List.iter
      (fun ch ->
        match ch.ch_vote with
        | Some (Vote_yes { leave_out_ok = true; _ }) ->
            Hashtbl.replace t.suspended_children ch.ch_profile.p_name ()
        | _ -> ())
      st.children;
  Hashtbl.replace t.ended st.txn outcome;
  Hashtbl.remove t.txns st.txn

(* ------------------------------------------------------------------ *)
(* Heuristic decisions                                                 *)
(* ------------------------------------------------------------------ *)

and start_heuristic_timer t st =
  match t.profile.p_heuristic with
  | Heuristic_never -> ()
  | Heuristic_commit_after d -> arm_heuristic t st d Committed
  | Heuristic_abort_after d -> arm_heuristic t st d Aborted

and arm_heuristic t st delay action =
  st.heuristic_timer <-
    Some
      (sched t ~delay (fun () ->
           if st.phase = Ph_in_doubt && st.heuristic_action = None then begin
             st.heuristic_action <- Some action;
             st.heuristic_at <- Some (now t);
             trace t (Trace.Heuristic { time = now t; node = t.name; action });
             causal_record t ~txn:st.txn ~seg:Obs.Causal.In_doubt (fun () ->
                 "HEURISTIC " ^ outcome_to_string action);
             let kind =
               match action with
               | Committed -> Wal.Log_record.Heuristic_commit
               | Aborted -> Wal.Log_record.Heuristic_abort
             in
             tm_force t ~txn:st.txn kind (fun () ->
                 apply_local t st action (fun () -> ()))
           end))

(* The subordinate side of recovery when the coordinator goes silent:
   PA subordinates inquire (the coordinator may have no memory of the
   transaction); PN subordinates wait for the coordinator to contact them. *)
and start_indoubt_timer ?(attempt = 0) t st =
  (* Who can resolve our doubt?  A subordinate asks its parent.  A
     parentless node in doubt with a recorded transaction parent accepted a
     Prepare from outside the static tree (dual initiation, or a forged
     ghost Prepare): whoever claimed the coordinator role owns the outcome,
     so ask exactly them - an honest claimant answers, and a forger's
     no-information reply lets the presumption resolve the doubt instead of
     blocking the whole subtree forever.  A parentless node with no
     transaction parent delegated its decision (the only other way a root
     forces Prepared): the outcome lives at a child, so inquire all of
     them - only positive knowledge resolves. *)
  let targets =
    match t.parent_name with
    | Some parent -> [ parent ]
    | None -> (
        match st.parent with
        | Some claimed -> [ claimed ]
        | None -> List.map (fun ch -> ch.ch_profile.p_name) st.children)
  in
  if targets = [] then ()
  else if attempt > t.cfg.max_retries then
    trace t
      (Trace.Note
         {
           time = now t;
           node = t.name;
           text = "in doubt: recovery attempts exhausted, still blocked";
         })
  else
    st.indoubt_timer <-
      Some
        (sched t ~delay:(retry_delay t attempt) (fun () ->
             let still_current =
               match get_txn t st.txn with
               | Some current -> current == st
               | None -> false
             in
             if st.phase = Ph_in_doubt && still_current then begin
               causal_record t ~txn:st.txn ~seg:Obs.Causal.In_doubt (fun () ->
                   "in doubt: recovery tick");
               t.proto.p_indoubt_tick (ops_of t) ~txn:st.txn ~targets;
               start_indoubt_timer ~attempt:(attempt + 1) t st
             end))

(* ------------------------------------------------------------------ *)
(* Message handling                                                    *)
(* ------------------------------------------------------------------ *)

and handle_prepare t ~src ~txn ~long_locks =
  if Hashtbl.mem t.ended txn then
    (* duplicate from a recovering coordinator: repeat our forgotten state *)
    send t ~dst:src
      [
        Msg.Vote_msg
          {
            txn;
            vote = Vote_no;
            delegation = false;
            unsolicited = false;
            implied_ack = false;
            tag = Msg.vote_tag ~src:t.name ~txn Vote_no;
          };
      ]
  else begin
    let st = get_or_new_txn t txn in
    if st.phase = Ph_idle then begin
      st.parent <- Some src;
      st.long_locks_requested <- long_locks;
      set_phase t st Ph_voting;
      (* keep votes that arrived before the Prepare (unsolicited voters) *)
      let early = st.children in
      st.children <-
        List.map
          (fun ch ->
            match
              List.find_opt
                (fun e -> e.ch_profile.p_name = ch.ch_profile.p_name)
                early
            with
            | Some e -> e
            | None -> ch)
          (participating_children t ~txn);
      if maybe_crash t Cp_on_prepare then ()
      else
        (* a cascaded coordinator runs the protocol's pre-voting logging
           too (PN logs commit-pending before propagating Prepare) *)
        t.proto.p_begin_commit (ops_of t) ~txn ~root:false
          ~has_children:(st.children <> [])
          ~k:(fun () -> start_phase1 t st)
    end
    else if st.parent <> Some src then begin
      (* Two participants initiated commit processing independently for the
         same transaction: two TMs would own the decision, so the
         transaction aborts (Section 3, PN design; the hazard behind the
         restricted leave-out rule of Figure 5). *)
      trace t
        (Trace.Note
           {
             time = now t;
             node = t.name;
             text =
               Printf.sprintf
                 "dual commit initiation detected (%s and %s): aborting"
                 (match st.parent with Some p -> p | None -> t.name)
                 src;
           });
      send t ~dst:src
        [
          Msg.Vote_msg
            {
            txn;
            vote = Vote_no;
            delegation = false;
            unsolicited = false;
            implied_ack = false;
            tag = Msg.vote_tag ~src:t.name ~txn Vote_no;
          };
        ];
      if st.phase = Ph_voting then begin
        st.local_vote <- Some Vote_no;
        maybe_all_votes_in t st
      end
    end
    else if st.phase = Ph_in_doubt then begin
      (* duplicate Prepare from our own coordinator: our YES was lost (or
         the coordinator is retransmitting); repeat the vote we sent *)
      match st.sent_vote with
      | Some vote ->
          send t ~dst:src
            [
              Msg.Vote_msg
                {
                  txn;
                  vote;
                  delegation = false;
                  unsolicited = false;
                  implied_ack = st.sent_vote_reliable;
                  tag = Msg.vote_tag ~src:t.name ~txn vote;
                };
            ]
      | None -> ()
    end
  end

and handle_vote t ~src ~txn vote ~delegation ~unsolicited ~implied_ack =
  ignore unsolicited;
  if delegation then handle_delegation t ~src ~txn vote
  else if Hashtbl.mem t.ended txn then
    (* a straggling (reordered or retransmitted) vote for a transaction we
       already finished: do not resurrect state for it *)
    ()
  else
    let st = get_or_new_txn t txn in
    (match List.find_opt (fun ch -> ch.ch_profile.p_name = src) st.children with
    | Some ch ->
        ch.ch_vote <- Some vote;
        ch.ch_implied_ack <- implied_ack
    | None ->
        (* an unsolicited vote can arrive before we even know the
           transaction (our own Prepare is still on its way to us):
           remember it by materializing the child entry *)
        (match List.find_opt (fun p -> p.p_name = src) t.child_profiles with
        | Some p ->
            st.children <-
              {
                ch_profile = p;
                ch_vote = Some vote;
                ch_implied_ack = implied_ack;
                ch_acked = false;
            ch_presumed_no = false;
                ch_last_agent = false;
                ch_pending = false;
                ch_retries = 0;
              }
              :: st.children
        | None -> () (* vote from a stranger: drop *)));
    maybe_all_votes_in t st

(* Receiving the coordinator's own YES vote with the decision delegated to
   us: we are the last agent.  Run our own voting phase (we may have
   subordinates and may delegate further), then decide. *)
and handle_delegation t ~src ~txn vote =
  match vote with
  | Vote_no | Vote_read_only ->
      (* a delegating coordinator always votes YES *)
      ()
  | Vote_yes _ ->
      if Hashtbl.mem t.ended txn then
        (* duplicate delegation: repeat the outcome *)
        send t ~dst:src
          [
            Msg.Decision_msg
              {
                txn;
                outcome = Hashtbl.find t.ended txn;
                cert = cert_for t txn;
              };
          ]
      else begin
        let st = get_or_new_txn t txn in
        if st.phase = Ph_idle then begin
          st.delegator <- Some src;
          set_phase t st Ph_voting;
          st.children <- participating_children t ~txn;
          start_phase1 t st
        end
      end

and handle_decision t ~src ~txn outcome =
  match get_txn t txn with
  | None ->
      (* Either we finished already (coordinator retransmission) or we never
         voted (an abort reaching a not-yet-prepared member, or recovery
         contacting every static child). *)
      let first_time = not (Hashtbl.mem t.ended txn) in
      if first_time then Hashtbl.replace t.ended txn outcome;
      if first_time && outcome = Aborted then
        (* roll back any uncommitted work and release its locks *)
        Kvstore.abort t.kv ~txn (fun () -> ());
      (* unacknowledged aborts ride the presumption (PA); everything else
         is confirmed so that a retrying coordinator can forget the txn *)
      if outcome = Committed || t.proto.p_ack_on_abort then
        send t ~dst:src [ Msg.Ack_msg { txn; damage = []; pending = false } ]
  | Some st -> (
      match st.phase with
      | Ph_in_doubt | Ph_voting -> subordinate_decision t st outcome
      | Ph_delegated -> delegator_decision t st outcome
      | Ph_propagating | Ph_deciding | Ph_ended | Ph_idle -> ())

(* A subordinate learns the outcome. *)
and subordinate_decision t st outcome =
  cancel_timer t st.heuristic_timer;
  cancel_timer t st.indoubt_timer;
  cancel_timer t st.vote_timer;
  st.outcome <- Some outcome;
  match st.heuristic_action with
  | Some action ->
      (* the decision arrived after we lost patience *)
      resolve_heuristic t st ~action ~outcome
  | None ->
      if maybe_crash t Cp_after_decision_received then ()
      else begin
        set_phase t st Ph_deciding;
        (match t.proto.p_subordinate_decision_log outcome with
        | Protocol_intf.Log_force kind ->
            tm_force t ~txn:st.txn kind (fun () ->
                st.decision_durable <- true;
                subordinate_apply t st outcome)
        | Protocol_intf.Log_append kind ->
            (* no forced record before acknowledging (PA abort) *)
            tm_append t ~txn:st.txn kind;
            st.decision_durable <- true;
            subordinate_apply t st outcome
        | Protocol_intf.Log_none ->
            st.decision_durable <- true;
            subordinate_apply t st outcome)
      end

and subordinate_apply t st outcome =
  apply_local t st outcome (fun () ->
      propagate_decision t st outcome;
      maybe_finished t st)

and resolve_heuristic t st ~action ~outcome =
  (match st.heuristic_at with
  | Some t0 ->
      observe t "blocking/heur_exposure" (now t -. t0);
      st.heuristic_at <- None
  | None -> ());
  if action <> outcome then begin
    let report =
      { Msg.d_node = t.name; d_action = action; d_outcome = outcome }
    in
    st.damage <- report :: st.damage;
    (* the local operator console learns of the mismatch the moment it is
       detected; damage is silent only when no console anywhere hears *)
    t.damage_seen <- (st.txn, report) :: t.damage_seen;
    if st.sent_vote_reliable then
      (* Table 1's vote-reliable disadvantage: with the ack elided there is
         no channel to report the damage; it is lost *)
      trace t
        (Trace.Damage_detected { time = now t; node = t.name; reported_to = "" })
  end;
  tm_append t ~txn:st.txn
    (match outcome with
    | Committed -> Wal.Log_record.Committed
    | Aborted -> Wal.Log_record.Aborted);
  st.decision_durable <- true;
  set_phase t st Ph_propagating;
  (* local state already (heuristically) resolved; propagate the real
     outcome so the subtree converges and damage reports surface *)
  propagate_decision t st outcome;
  maybe_finished t st

(* The delegating coordinator hears the outcome from its last agent. *)
and delegator_decision t st outcome =
  cancel_timer t st.delegation_timer;
  st.delegation_timer <- None;
  st.outcome <- Some outcome;
  trace t (Trace.Decide { time = now t; node = t.name; outcome });
  causal_record t ~txn:st.txn (fun () ->
      "adopts delegated outcome " ^ outcome_to_string outcome);
  set_phase t st Ph_deciding;
  match t.proto.p_decision_log outcome with
  | Protocol_intf.Log_force kind ->
      tm_force t ~txn:st.txn kind (fun () ->
          st.decision_durable <- true;
          delegator_apply t st outcome)
  | Protocol_intf.Log_append kind ->
      tm_append t ~txn:st.txn kind;
      st.decision_durable <- true;
      delegator_apply t st outcome
  | Protocol_intf.Log_none ->
      st.decision_durable <- true;
      delegator_apply t st outcome

and delegator_apply t st outcome =
  apply_local t st outcome (fun () ->
      propagate_decision t st outcome;
      (match st.delegator with
      | Some up ->
          (* we were a last agent ourselves: pass the outcome up the
             delegation chain *)
          send t ~dst:up
            [
              Msg.Decision_msg
                { txn = st.txn; outcome; cert = cert_for t st.txn };
            ];
          st.awaiting_implied_ack <- true
      | None -> ());
      maybe_finished t st)

and handle_ack t ~src ~txn ~damage ~pending =
  match get_txn t txn with
  | None ->
      (* the transaction is already forgotten here (a PA coordinator ends
         an abort immediately), but a damage report arriving on a late
         acknowledgment must still reach this operator *)
      List.iter
        (fun (d : Msg.damage_report) ->
          t.damage_seen <- (txn, d) :: t.damage_seen;
          trace t
            (Trace.Damage_detected
               { time = now t; node = d.d_node; reported_to = t.name }))
        damage
  | Some st -> (
      match List.find_opt (fun ch -> ch.ch_profile.p_name = src) st.children with
      | None -> ()
      | Some ch ->
          if not ch.ch_acked then begin
            ch.ch_acked <- true;
            if ch.ch_pending && not pending then
              trace t
                (Trace.Note
                   {
                     time = now t;
                     node = t.name;
                     text =
                       Printf.sprintf "background recovery with %s resolved"
                         ch.ch_profile.p_name;
                   });
            if pending then st.pending <- true;
            (match damage with
            | [] -> ()
            | reports when t.proto.p_damage_to_root ->
                (* forward damage up toward the root (PN) *)
                st.damage <- reports @ st.damage
            | reports ->
                (* damage is reported to the immediate coordinator (and
                   its operator) only (PA, basic) *)
                List.iter
                  (fun (d : Msg.damage_report) ->
                    t.damage_seen <- (txn, d) :: t.damage_seen;
                    trace t
                      (Trace.Damage_detected
                         { time = now t; node = d.d_node; reported_to = t.name }))
                  reports);
            maybe_finished t st
          end)

(* Application data beginning the next piece of work doubles as the implied
   acknowledgment for whatever outcome the receiver still remembers. *)
and handle_data t ~src ~txn ~info =
  ignore src;
  ignore info;
  match get_txn t txn with
  | None -> ()
  | Some st ->
      if st.awaiting_implied_ack then begin
        st.awaiting_implied_ack <- false;
        if st.phase = Ph_propagating && not (acks_outstanding t st) then
          finish_with_end t st
      end

and handle_inquiry t ~src ~txn =
  let reply outcome =
    (* a positive answer under a certified protocol carries its proof *)
    let cert =
      match outcome with Some _ -> cert_for t txn | None -> None
    in
    send t ~dst:src [ Msg.Inquiry_reply { txn; outcome; cert } ]
  in
  match get_txn t txn with
  | Some st -> (
      match st.outcome with
      | Some o when st.decision_durable -> reply (Some o)
      | _ ->
          (* still deciding: the normal flow will reach them - except when
             the inquirer is the very node we record as this transaction's
             coordinator.  It is asking about a decision only it (or its
             ancestors) could own: a recovered delegator polling its
             children, or a root tricked by a forged Prepare into treating
             one of its own subordinates as coordinator.  We have no
             information for it, and saying so breaks the inquiry cycle -
             the forged-Prepare victim's presumption resolves the whole
             subtree, while a delegator ignores no-information replies by
             design. *)
          if st.parent = Some src then reply None)
  | None -> (
      match Hashtbl.find_opt t.ended txn with
      | Some o -> reply (Some o)
      | None -> (
          (* consult the durable log *)
          let records = Wal.Log.records_for t.log ~txn in
          let has k =
            List.exists (fun (r : Wal.Log_record.t) -> r.kind = k && r.node = t.name) records
          in
          if has Wal.Log_record.Committed then reply (Some Committed)
          else if has Wal.Log_record.Aborted then reply (Some Aborted)
          else
            (* no information: PA presumes abort; basic 2PC's recovery answer
               for an unlogged coordinator is abort as well; PN aborts too
               because an interrupted commit-pending coordinator aborts *)
            reply None))

and handle_inquiry_reply t ~txn outcome =
  match get_txn t txn with
  | None -> ()
  | Some st ->
      if st.phase = Ph_in_doubt then begin
        match outcome with
        | None when st.parent = None ->
            (* we are a recovered delegator inquiring our children: a child
               with no information cannot absolve us - only the last agent's
               positive answer (or its own eventual decision) can.  Keep
               waiting. *)
            ()
        | _ ->
            let o = match outcome with Some o -> o | None -> Aborted in
            trace t
              (Trace.Note
                 {
                   time = now t;
                   node = t.name;
                   text =
                     (match outcome with
                     | Some _ -> "recovery: outcome learned by inquiry"
                     | None -> "recovery: no information - presuming abort");
                 });
            subordinate_decision t st o
      end

and handle_payload t ~src = function
  | Msg.Prepare { txn; long_locks } -> handle_prepare t ~src ~txn ~long_locks
  | Msg.Vote_msg { txn; vote; delegation; unsolicited; implied_ack; _ } ->
      handle_vote t ~src ~txn vote ~delegation ~unsolicited ~implied_ack
  | Msg.Decision_msg { txn; outcome; _ } -> handle_decision t ~src ~txn outcome
  | Msg.Ack_msg { txn; damage; pending } -> handle_ack t ~src ~txn ~damage ~pending
  | Msg.Data { txn; info } -> handle_data t ~src ~txn ~info
  | Msg.Inquiry { txn } -> handle_inquiry t ~src ~txn
  | Msg.Inquiry_reply { txn; outcome; _ } -> handle_inquiry_reply t ~txn outcome

(* The honest-node defense: before acting on a payload, ask the protocol
   whether an honest peer could have sent it, given who [src] is in our
   static tree and what we durably know about the transaction.  A benign
   run never trips this (CI holds chaos output byte-identical); a rejection
   is counted and traced so the adversarial audit can report how many
   forgeries the protocol caught. *)
and admissible t ~src payload =
  let role =
    if t.parent_name = Some src then Protocol_intf.From_parent
    else if List.exists (fun (p : profile) -> p.p_name = src) t.child_profiles
    then Protocol_intf.From_child
    else Protocol_intf.From_stranger
  in
  let txn = Msg.payload_txn payload in
  let known =
    match Hashtbl.find_opt t.ended txn with
    | Some o -> Some o
    | None -> (
        match get_txn t txn with
        | Some st when st.decision_durable -> st.outcome
        | _ -> None)
  in
  t.proto.p_admissible ~cfg:t.cfg ~src ~role ~known payload

and handler t ~src payloads =
  if not t.crashed then begin
    trace t
      (Trace.Deliver
         {
           time = now t;
           src;
           dst = t.name;
           label = Msg.bundle_label payloads;
         });
    (match (causal_sink t, payloads) with
    | Some c, p :: _ ->
        Obs.Causal.deliver c ~txn:(Msg.payload_txn p) ~src ~dst:t.name
          ~time:(now t) ~label:(Msg.bundle_label payloads)
    | _ -> ());
    List.iter
      (fun payload ->
        match admissible t ~src payload with
        | None ->
            note_payload_cert t payload;
            handle_payload t ~src payload
        | Some reason ->
            t.rejected <- t.rejected + 1;
            if String.length reason >= 5 && String.sub reason 0 5 = "cert:"
            then t.rejected_certs <- t.rejected_certs + 1;
            trace t (Trace.Note { time = now t; node = t.name; text = reason }))
      payloads
  end

(* ------------------------------------------------------------------ *)
(* Restart and log-driven recovery                                     *)
(* ------------------------------------------------------------------ *)

and restart t =
  t.crashed <- false;
  t.epoch <- t.epoch + 1;
  trace t (Trace.Restart { time = now t; node = t.name });
  Net.restart_node t.net t.name;
  Kvstore.recover t.kv;
  (* Reconstruct protocol obligations from the durable log. *)
  let mine =
    List.filter
      (fun (r : Wal.Log_record.t) -> r.node = t.name && Wal.Log_record.is_tm_record r)
      (Wal.Log.durable t.log)
  in
  let by_txn = Hashtbl.create 8 in
  List.iter
    (fun (r : Wal.Log_record.t) ->
      let l = try Hashtbl.find by_txn r.txn with Not_found -> [] in
      Hashtbl.replace by_txn r.txn (r.kind :: l))
    mine;
  (* Under a certified protocol, re-validate every durable decision
     certificate before trusting it again: a record that does not parse or
     whose endorsement quorum no longer checks out is refused (counted like
     a certificate-violating message), so recovery re-drives decisions only
     with proof in hand.  This runs before [recover_txn] so re-driven
     decisions carry their certificates. *)
  if t.proto.p_certify <> None then
    List.iter
      (fun (r : Wal.Log_record.t) ->
        if r.kind = Wal.Log_record.Certificate then
          let valid =
            match Msg.cert_of_string r.payload with
            | Some ({ Msg.c_endorsements = e :: _ } as c)
              when Msg.certificate_valid ~f:(max 0 t.cfg.bft_f) ~txn:r.txn
                     ~outcome:e.Msg.e_outcome c ->
                Hashtbl.replace t.certs r.txn c;
                true
            | _ -> false
          in
          if not valid then begin
            t.rejected_certs <- t.rejected_certs + 1;
            trace t
              (Trace.Note
                 {
                   time = now t;
                   node = t.name;
                   text =
                     Printf.sprintf
                       "cert: recovery refuses invalid durable certificate \
                        for %s"
                       r.txn;
                 })
          end)
      mine;
  Hashtbl.iter (fun txn kinds -> recover_txn t ~txn ~kinds) by_txn

and recover_txn t ~txn ~kinds =
  match t.proto.p_recover kinds with
  | Protocol_intf.Rec_none -> ()
      (* fully finished, or heuristic state already resolved locally *)
  | Protocol_intf.Rec_redrive outcome -> resume_propagation t ~txn outcome
  | Protocol_intf.Rec_in_doubt -> resume_in_doubt t ~txn
  | Protocol_intf.Rec_decide { outcome; note } ->
      resume_decide t ~txn ~outcome ~note

(* An outcome is durable but END is missing: some subordinate may not have
   heard it.  Re-drive phase two toward every static child. *)
and resume_propagation t ~txn outcome =
  let st = new_txn_state t txn in
  set_phase t st Ph_propagating;
  st.outcome <- Some outcome;
  st.decision_durable <- true;
  st.parent <- t.parent_name;
  st.children <-
    List.map
      (fun p ->
        {
          ch_profile = p;
          (* votes were lost with volatile state; assume YES so that every
             child is re-contacted and acknowledgments are re-collected *)
          ch_vote = Some (Vote_yes { reliable = false; leave_out_ok = false });
          ch_implied_ack = false;
          ch_acked = false;
            ch_presumed_no = false;
          ch_last_agent = false;
          ch_pending = false;
          ch_retries = 0;
        })
      t.child_profiles;
  trace t
    (Trace.Note
       {
         time = now t;
         node = t.name;
         text =
           Printf.sprintf "recovery: re-driving %s of %s"
             (outcome_to_string outcome) txn;
       });
  (* Local resource state was rebuilt by Kvstore.recover; if this node's RM
     is still in doubt it must be resolved with the known outcome. *)
  if List.mem txn (Kvstore.in_doubt t.kv) then
    apply_local t st outcome (fun () -> ())
  ;
  if st.children = [] then begin
    (* leaf: only the upstream acknowledgment is owed *)
    if st.parent <> None then begin
      send_ack_up t st;
      finish_with_end t st
    end
    else finish_with_end t st
  end
  else begin
    propagate_decision t st outcome;
    maybe_finished t st
  end

and resume_in_doubt t ~txn =
  let st = new_txn_state t txn in
  set_phase t st Ph_in_doubt;
  st.parent <- t.parent_name;
  (* a durable heuristic record survives the crash: the operator's override
     is still in force, and the eventual real outcome must be checked
     against it - and any damage reported - exactly as if we had never
     crashed.  (This also keeps the restarted heuristic timer from firing
     a second decision: {!arm_heuristic} is a no-op once an action is
     recorded.) *)
  List.iter
    (fun (r : Wal.Log_record.t) ->
      if r.node = t.name then
        match r.kind with
        | Wal.Log_record.Heuristic_commit ->
            st.heuristic_action <- Some Committed
        | Wal.Log_record.Heuristic_abort -> st.heuristic_action <- Some Aborted
        | _ -> ())
    (Wal.Log.records_for t.log ~txn);
  (* assume every static child voted YES so that the eventual decision is
     re-propagated through us *)
  st.children <-
    List.map
      (fun p ->
        {
          ch_profile = p;
          ch_vote = Some (Vote_yes { reliable = false; leave_out_ok = false });
          ch_implied_ack = false;
          ch_acked = false;
            ch_presumed_no = false;
          ch_last_agent = false;
          ch_pending = false;
          ch_retries = 0;
        })
      t.child_profiles;
  trace t
    (Trace.Note
       { time = now t; node = t.name; text = "recovery: in doubt after restart" });
  (* Who can resolve our doubt?  A subordinate asks its parent.  A
     parentless node with a durable Prepared record delegated its decision
     before crashing: the outcome belongs to the last agent.  Presuming
     abort here could contradict a commit the agent already made durable,
     so the targets are the children instead (the in-doubt timer keeps
     retrying).  Whether anyone is actually asked is the protocol's call
     (PN waits for its coordinator). *)
  let targets =
    match t.parent_name with
    | Some parent -> [ parent ]
    | None -> List.map (fun ch -> ch.ch_profile.p_name) st.children
  in
  t.proto.p_indoubt_restart (ops_of t) ~txn ~targets;
  start_heuristic_timer t st;
  start_indoubt_timer t st

(* The protocol knows the outcome without anyone to ask (PN's interrupted
   commit-pending coordinator aborts): decide it now and drive the
   subordinates (coordinator-initiated recovery). *)
and resume_decide t ~txn ~outcome ~note =
  trace t (Trace.Note { time = now t; node = t.name; text = note });
  let st = new_txn_state t txn in
  set_phase t st Ph_deciding;
  st.parent <- t.parent_name;
  st.children <-
    List.map
      (fun p ->
        {
          ch_profile = p;
          ch_vote = Some (Vote_yes { reliable = false; leave_out_ok = false });
          ch_implied_ack = false;
          ch_acked = false;
            ch_presumed_no = false;
          ch_last_agent = false;
          ch_pending = false;
          ch_retries = 0;
        })
      t.child_profiles;
  decide t st outcome

let attach t = Net.add_node t.net t.name (fun ~src payloads -> handler t ~src payloads)

let force_crash t = crash t
let force_restart t = restart t

(* Deliberately-broken restart for chaos-harness self-tests: the node comes
   back up (network-wise) but performs neither KV recovery nor log-driven
   protocol recovery, as if the recovery code were skipped entirely.  The
   fault-aware audit must catch the resulting divergence. *)
let force_restart_amnesia t =
  t.crashed <- false;
  t.epoch <- t.epoch + 1;
  trace t (Trace.Restart { time = now t; node = t.name });
  Net.restart_node t.net t.name

let unresolved_txns t =
  Hashtbl.fold (fun txn st acc -> (txn, phase_name st.phase) :: acc) t.txns []
  |> List.sort compare

let in_doubt_txns t =
  Hashtbl.fold
    (fun txn st acc ->
      match st.phase with
      | Ph_in_doubt | Ph_delegated -> txn :: acc
      | Ph_idle | Ph_voting | Ph_deciding | Ph_propagating | Ph_ended -> acc)
    t.txns []
  |> List.sort compare

(* The concurrent workload driver calls this when a genuinely-next
   transaction arrives (or at the end of the run): every acknowledgment
   still waiting for its think-time timer rides the real data exchange
   instead. *)
let flush_piggybacks t =
  if not t.crashed then begin
    List.iter (fun d -> fire_deferred t d) (List.rev t.deferred);
    t.deferred <- []
  end

let has_piggybacks t = List.exists (fun d -> not d.d_sent) t.deferred

(* Adversarial injection: resolve an in-doubt transaction heuristically
   right now, as if an impatient operator overrode the protocol at this
   node.  A no-op unless the transaction is genuinely in doubt here with
   no heuristic decision yet - the injector may race the real decision
   arriving, and losing that race is the correct outcome.  Mirrors the
   timer-driven path in [arm_heuristic] so the damage-reporting machinery
   (resolve_heuristic, ack-borne reports) treats both identically. *)
let force_heuristic t ~txn action =
  if not t.crashed then
    match get_txn t txn with
    | Some st when st.phase = Ph_in_doubt && st.heuristic_action = None ->
        st.heuristic_action <- Some action;
        st.heuristic_at <- Some (now t);
        trace t (Trace.Heuristic { time = now t; node = t.name; action });
        causal_record t ~txn:st.txn ~seg:Obs.Causal.In_doubt (fun () ->
            "HEURISTIC " ^ outcome_to_string action ^ " (injected)");
        let kind =
          match action with
          | Committed -> Wal.Log_record.Heuristic_commit
          | Aborted -> Wal.Log_record.Heuristic_abort
        in
        tm_force t ~txn:st.txn kind (fun () ->
            apply_local t st action (fun () -> ()))
    | _ -> ()

let rejected_forgeries t = t.rejected
let rejected_certs t = t.rejected_certs

let damage_seen t = List.rev t.damage_seen
