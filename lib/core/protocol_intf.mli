(** The commit-protocol interface: what distinguishes one protocol family
    from another, expressed as a record of transition policies.

    {!Participant} owns everything the paper calls "the environment" -
    timers, retransmission with backoff, crash/restart/amnesia, piggyback
    deferral, telemetry spans, lock handling - and consults a {!t} at
    exactly the points where Basic 2PC, Presumed Abort and Presumed Nothing
    diverge.  A new protocol is a value of this type registered with
    {!Protocol.register}; it inherits the sweep, chaos, shrinking and
    telemetry harness unchanged.  DESIGN.md "Plugging in a protocol"
    documents the contract field by field. *)

(** Capabilities the plumbing hands a protocol hook.  Every effect a hook
    may have on the world goes through one of these, which is what keeps
    implementations runnable under the deterministic simulation, the crash
    injector and the trace at once. *)
type ops = {
  op_send : dst:string -> Msg.payload list -> unit;
      (** send one message (one flow in the paper's accounting) *)
  op_force : txn:string -> Wal.Log_record.kind -> (unit -> unit) -> unit;
      (** force a TM record; the continuation runs when it is durable
          (immediately for shared-log members riding the parent's forces) *)
  op_append : txn:string -> Wal.Log_record.kind -> unit;
      (** write a TM record without forcing *)
  op_note : string -> unit;  (** free-form trace note at this node *)
  op_crash_at : Types.crash_point -> bool;
      (** fire a configured crash fault at this point; [true] means the
          node just crashed and the hook must stop *)
  op_now : unit -> float;  (** virtual clock *)
  op_after : delay:float -> (unit -> unit) -> unit;
      (** run a continuation after [delay] virtual time units; cancelled
          (never run) if the node crashes first *)
  op_charge : flows:int -> forces:int -> unit;
      (** charge synthetic protocol cost (message flows / forced writes
          happening on unmodelled hardware, e.g. the BFT replica ensemble)
          to this node's trace counters *)
}

(** How a decision reaches the log at one role. *)
type log_discipline =
  | Log_force of Wal.Log_record.kind  (** forced write, wait for the disk *)
  | Log_append of Wal.Log_record.kind  (** non-forced write, continue *)
  | Log_none  (** write nothing (the presumption carries the outcome) *)

(** What a restarted node does with the record kinds it finds for one
    transaction in its durable log. *)
type recovery_action =
  | Rec_none  (** nothing to drive (finished, or resolved heuristically) *)
  | Rec_redrive of Types.outcome
      (** outcome durable but END missing: re-drive phase two *)
  | Rec_in_doubt  (** prepared without outcome: resume in doubt *)
  | Rec_decide of { outcome : Types.outcome; note : string }
      (** decide [outcome] now, tracing [note] first (PN's interrupted
          commit-pending coordinator aborts) *)

(** Where a delivered payload claims to come from, relative to the
    receiving node's static position in the commit tree.  Honest nodes know
    their parent and immediate children; that topology plus their own
    durable state is all the evidence they have against forged messages -
    there are no signatures in 2PC. *)
type sender_role = From_parent | From_child | From_stranger

type t = {
  p_id : Types.protocol;
      (** the {!Types.config} value selecting this protocol *)
  p_flag : string;  (** short CLI spelling, e.g. ["pa"] *)
  p_aliases : string list;  (** further accepted spellings *)
  p_description : string;
  p_begin_commit :
    ops -> txn:string -> root:bool -> has_children:bool -> k:(unit -> unit) -> unit;
      (** called when this node starts acting as a (root or cascaded)
          coordinator, before any Prepare flows; the protocol performs its
          pre-voting logging and calls [k] to launch phase one *)
  p_voter_log : Wal.Log_record.kind list;
      (** records a YES voter forces, in order, before its vote may leave
          the node (PN: agent then prepared; others: prepared) *)
  p_delegation_log : Wal.Log_record.kind list;
      (** records a delegating coordinator forces before handing the
          decision to its last agent (PN already forced commit-pending) *)
  p_decision_log : Types.outcome -> log_discipline;
      (** logging at the decision maker (root, last agent, delegator) *)
  p_subordinate_decision_log : Types.outcome -> log_discipline;
      (** logging at a subordinate that hears the outcome from above *)
  p_ack_on_abort : bool;
      (** do subordinates acknowledge aborts?  (PA: no - the presumption
          makes the abort forgettable without them) *)
  p_abort_ack_required : vote:Types.vote option -> presumed_no:bool -> bool;
      (** coordinator side of the same question, per child: must this
          child's abort notification be retried until acknowledged?
          [vote] is the child's recorded vote ([None] = never voted);
          [presumed_no] marks a vote timeout rather than a real NO *)
  p_damage_to_root : bool;
      (** heuristic-damage reports travel up to the root (PN) rather than
          stopping at the immediate coordinator (PA, basic) *)
  p_indoubt_tick : ops -> txn:string -> targets:string list -> unit;
      (** periodic action while in doubt: PA/basic inquire [targets]; PN
          waits for the coordinator to contact it *)
  p_indoubt_restart : ops -> txn:string -> targets:string list -> unit;
      (** same question right after restart rebuilds an in-doubt state *)
  p_recover : Wal.Log_record.kind list -> recovery_action;
      (** restart-time policy over the TM record kinds found for one txn *)
  p_admissible :
    cfg:Types.config ->
    src:string ->
    role:sender_role ->
    known:Types.outcome option ->
    Msg.payload ->
    string option;
      (** Validation an honest node runs on every delivered payload before
          acting on it: [None] admits the payload, [Some reason] rejects it
          (the plumbing counts the rejection toward
          {!Participant.rejected_forgeries} and traces [reason]; a reason
          starting with ["cert:"] is additionally counted toward
          {!Participant.rejected_certs}).  [known] is the receiver's
          durable outcome for the payload's transaction, if any.  [cfg] is
          the run configuration (the BFT check needs its [bft_f]).  The
          checks live in the protocol, not the network, because what
          counts as a protocol-violating message differs per family (PN
          subordinates never inquire, so PN rejects every Inquiry);
          implementations must never reject anything a benign run can
          deliver — dual commit initiation (Figure 5) makes
          Prepare-from-a-stranger legal, for example.  Start from
          {!standard_admissible}. *)
  p_certify :
    (ops ->
    cfg:Types.config ->
    txn:string ->
    outcome:Types.outcome ->
    votes:string ->
    k:(Msg.certificate -> unit) ->
    unit)
    option;
      (** [Some] makes this a certified-decision protocol (see
          {!Protocol_bft}): called at the decision maker after the outcome
          is chosen but before it is logged or propagated; the hook
          gathers its endorsement quorum (charging quorum cost and latency
          through [ops]) and passes the certificate to [k].  The plumbing
          logs the certificate next to the outcome, attaches it to every
          outgoing [Decision_msg]/[Inquiry_reply], and restores and
          re-validates it from the WAL at restart.  [None] for all the
          paper's protocols. *)
}

val send_inquiries : ops -> txn:string -> targets:string list -> unit
(** Send an {!Msg.Inquiry} for [txn] to every target: the subordinate-
    initiated recovery action shared by the presuming protocols. *)

val standard_recover : Wal.Log_record.kind list -> recovery_action
(** The recovery priority shared by all three paper protocols: END means
    finished; a durable outcome is re-driven; a dangling prepare means in
    doubt; anything else (including heuristic records, which were resolved
    locally when written) needs no driving. *)

val standard_admissible :
  src:string ->
  role:sender_role ->
  known:Types.outcome option ->
  Msg.payload ->
  string option
(** The txn-id/topology validation shared by the paper's three families.
    Rejects: decisions contradicting the receiver's durable outcome
    (honest coordinators never flip a decision); decisions for unknown
    transactions from topology strangers; votes, data, inquiries and
    inquiry replies from strangers; acknowledgments from anyone but a
    subordinate; non-delegation votes arriving from the receiver's own
    parent (votes flow upward - a downward one is the echo of a forged
    Prepare the receiver's parent was tricked into cascading).
    Deliberately admits: Prepare from anyone (dual commit
    initiation, Figure 5, is legal and handled by the state machine), a
    stranger's decision confirming what the receiver already decided, and
    everything from the real parent or children - a forgery from the
    coordinator's own address is indistinguishable from the genuine
    message, which is exactly the trust assumption the adversarial chaos
    matrix measures. *)
