(** Chained-transaction streams: the workloads behind Table 4 (long locks),
    Figure 7, and the group-commit analysis of Section 4.

    Table 4 analyses [r] transactions "with small delays between them"
    between two members.  The interesting quantity is how acknowledgment
    piggybacking amortizes flows across consecutive transactions, so this
    module drives the flow/log schedule directly (two write-ahead logs, a
    latency-delayed message step, and the trace used for counting) rather
    than through {!Participant}, whose single-transaction machinery cannot
    express cross-transaction piggybacks.

    Three chain modes:

    - {e basic}: every transaction pays the full Prepare / Vote / Commit /
      Ack cycle: [4r] flows.
    - {e long locks}: the subordinate withholds its acknowledgment and sends
      it with the data message that begins the next transaction: [3r]
      protocol flows (plus [r] data flows that would be sent anyway).
    - {e long locks + last agent} (Figure 7): transactions run in pairs with
      the peer roles alternating; each pair costs three flows
      (Vote(t1); Commit(t1)+Vote(t2); Commit(t2)+ack(t1), with the dangling
      acknowledgments riding the next pair's opener): [3r/2] flows. *)

type mode = Chain_basic | Chain_long_locks | Chain_long_locks_last_agent

let mode_to_string = function
  | Chain_basic -> "basic"
  | Chain_long_locks -> "long-locks"
  | Chain_long_locks_last_agent -> "long-locks+last-agent"

type result = {
  transactions : int;
  flows : int;        (** protocol flows *)
  data_flows : int;
  writes : int;       (** TM log writes at both members *)
  forced : int;
  force_ios : int;
  duration : float;   (** virtual time from first flow to quiescence *)
  mean_coordinator_lock_time : float;
      (** virtual time the initiating side's resources stay locked per
          transaction (long locks holds them longer at the coordinator) *)
  trace : Trace.t;
}

type ctx = {
  engine : Simkernel.Engine.t;
  trace : Trace.t;
  wal_c : Wal.Log.t;
  wal_s : Wal.Log.t;
  latency : float;
  mutable lock_time_acc : float;
  mutable lock_samples : int;
}

let make_ctx ?(latency = 1.0) ?(io_latency = 0.5) ?group () =
  let engine = Simkernel.Engine.create () in
  let wal_config = { Wal.Log.io_latency; group } in
  {
    engine;
    trace = Trace.create ();
    wal_c = Wal.Log.create engine ~node:"C" ~config:wal_config ();
    wal_s = Wal.Log.create engine ~node:"S" ~config:wal_config ();
    latency;
    lock_time_acc = 0.0;
    lock_samples = 0;
  }

let now ctx = Simkernel.Engine.now ctx.engine

let send ctx ~src ~dst ~label ~protocol k =
  Trace.record ctx.trace
    (Trace.Send { time = now ctx; src; dst; label; protocol });
  ignore (Simkernel.Engine.schedule ctx.engine ~delay:ctx.latency (fun () -> k ()))

let force ctx wal ~txn kind k =
  let node = Wal.Log.node wal in
  Trace.record ctx.trace
    (Trace.Log_write { time = now ctx; node; kind; forced = true; rm = false });
  Wal.Log.force wal (Wal.Log_record.make ~txn ~node kind) k

let append ctx wal ~txn kind =
  let node = Wal.Log.node wal in
  Trace.record ctx.trace
    (Trace.Log_write { time = now ctx; node; kind; forced = false; rm = false });
  Wal.Log.append wal (Wal.Log_record.make ~txn ~node kind)

let note_lock_span ctx ~since =
  ctx.lock_time_acc <- ctx.lock_time_acc +. (now ctx -. since);
  ctx.lock_samples <- ctx.lock_samples + 1

(* ------------------------------------------------------------------ *)
(* Basic chain: 4 flows per transaction                                *)
(* ------------------------------------------------------------------ *)

let rec basic_txn ctx i r k =
  if i > r then k ()
  else begin
    let txn = Printf.sprintf "t%d" i in
    let locked_at = now ctx in
    send ctx ~src:"C" ~dst:"S" ~label:"Prepare" ~protocol:true (fun () ->
        force ctx ctx.wal_s ~txn Wal.Log_record.Prepared (fun () ->
            send ctx ~src:"S" ~dst:"C" ~label:"Vote YES" ~protocol:true (fun () ->
                force ctx ctx.wal_c ~txn Wal.Log_record.Committed (fun () ->
                    send ctx ~src:"C" ~dst:"S" ~label:"Commit" ~protocol:true
                      (fun () ->
                        force ctx ctx.wal_s ~txn Wal.Log_record.Committed
                          (fun () ->
                            append ctx ctx.wal_s ~txn Wal.Log_record.End;
                            send ctx ~src:"S" ~dst:"C" ~label:"Ack"
                              ~protocol:true (fun () ->
                                append ctx ctx.wal_c ~txn Wal.Log_record.End;
                                note_lock_span ctx ~since:locked_at;
                                basic_txn ctx (i + 1) r k)))))))
  end

(* ------------------------------------------------------------------ *)
(* Long locks: 3 flows per transaction, ack rides next-txn data        *)
(* ------------------------------------------------------------------ *)

let rec long_locks_txn ctx i r k =
  if i > r then k ()
  else begin
    let txn = Printf.sprintf "t%d" i in
    let locked_at = now ctx in
    send ctx ~src:"C" ~dst:"S" ~label:"Prepare(long-locks)" ~protocol:true
      (fun () ->
        force ctx ctx.wal_s ~txn Wal.Log_record.Prepared (fun () ->
            send ctx ~src:"S" ~dst:"C" ~label:"Vote YES" ~protocol:true
              (fun () ->
                force ctx ctx.wal_c ~txn Wal.Log_record.Committed (fun () ->
                    send ctx ~src:"C" ~dst:"S" ~label:"Commit" ~protocol:true
                      (fun () ->
                        force ctx ctx.wal_s ~txn Wal.Log_record.Committed
                          (fun () ->
                            append ctx ctx.wal_s ~txn Wal.Log_record.End;
                            (* the ack is withheld until the subordinate
                               begins the next transaction: a think-time gap
                               during which the coordinator's resources stay
                               locked *)
                            ignore
                              (Simkernel.Engine.schedule ctx.engine
                                 ~delay:1.0 (fun () ->
                                   send ctx ~src:"S" ~dst:"C"
                                     ~label:"Data(next txn) + Ack"
                                     ~protocol:false (fun () ->
                                       append ctx ctx.wal_c ~txn
                                         Wal.Log_record.End;
                                       (* coordinator-side resources stayed
                                          locked until the piggybacked ack
                                          arrived *)
                                       note_lock_span ctx ~since:locked_at;
                                       long_locks_txn ctx (i + 1) r k)))))))))
  end

(* ------------------------------------------------------------------ *)
(* Long locks + last agent: pairs of transactions in three flows       *)
(* (Figure 7: "commit two transactions in three steps")                *)
(* ------------------------------------------------------------------ *)

(* Within a pair the peers swap roles: the pair initiator [a] delegates t_i
   to [b]; [b] commits t_i, immediately opens t_{i+1} as its coordinator and
   delegates it back to [a] in the same flow; [a]'s commit of t_{i+1} rides
   the third flow together with the implied acknowledgment of t_i.  The
   acknowledgment [b] owes for t_{i+1} rides the next pair's opening flow. *)
let rec ll_last_agent_pair ctx i r ~initiator_is_c k =
  if i > r then k ()
  else begin
    let t1 = Printf.sprintf "t%d" i in
    let t2 = if i + 1 <= r then Some (Printf.sprintf "t%d" (i + 1)) else None in
    let a, wal_a, b, wal_b =
      if initiator_is_c then ("C", ctx.wal_c, "S", ctx.wal_s)
      else ("S", ctx.wal_s, "C", ctx.wal_c)
    in
    let locked_at = now ctx in
    (* flow 1: a prepares itself and hands b the decision for t1 *)
    force ctx wal_a ~txn:t1 Wal.Log_record.Prepared (fun () ->
        send ctx ~src:a ~dst:b ~label:"Vote YES (you decide)" ~protocol:true
          (fun () ->
            (* b decides t1 and, if there is a t2, opens it and delegates it
               back to a in the same flow *)
            force ctx wal_b ~txn:t1 Wal.Log_record.Committed (fun () ->
                match t2 with
                | None ->
                    (* odd tail: only Commit(t1) flows back *)
                    send ctx ~src:b ~dst:a ~label:"Commit" ~protocol:true
                      (fun () ->
                        force ctx wal_a ~txn:t1 Wal.Log_record.Committed
                          (fun () ->
                            append ctx wal_a ~txn:t1 Wal.Log_record.End;
                            (* implied ack for b's commit record *)
                            send ctx ~src:a ~dst:b ~label:"Data + implied Ack"
                              ~protocol:false (fun () ->
                                append ctx wal_b ~txn:t1 Wal.Log_record.End;
                                note_lock_span ctx ~since:locked_at;
                                k ())))
                | Some t2 ->
                    force ctx wal_b ~txn:t2 Wal.Log_record.Prepared (fun () ->
                        (* flow 2: Commit(t1) + Vote YES(t2, you decide) *)
                        send ctx ~src:b ~dst:a
                          ~label:"Commit(t1) + Vote YES(t2, you decide)"
                          ~protocol:true (fun () ->
                            force ctx wal_a ~txn:t1 Wal.Log_record.Committed
                              (fun () ->
                                append ctx wal_a ~txn:t1 Wal.Log_record.End;
                                (* a decides t2 *)
                                force ctx wal_a ~txn:t2
                                  Wal.Log_record.Committed (fun () ->
                                    append ctx wal_a ~txn:t2 Wal.Log_record.End;
                                    (* flow 3: Commit(t2) + implied ack(t1) *)
                                    send ctx ~src:a ~dst:b
                                      ~label:"Commit(t2) + implied Ack(t1)"
                                      ~protocol:true (fun () ->
                                        append ctx wal_b ~txn:t1
                                          Wal.Log_record.End;
                                        force ctx wal_b ~txn:t2
                                          Wal.Log_record.Committed (fun () ->
                                            append ctx wal_b ~txn:t2
                                              Wal.Log_record.End;
                                            note_lock_span ctx ~since:locked_at;
                                            (* b's ack of t2 rides the next
                                               pair's opener (or a trailing
                                               data message at the end) *)
                                            if i + 2 > r then
                                              send ctx ~src:b ~dst:a
                                                ~label:"Data + implied Ack(t2)"
                                                ~protocol:false k
                                            else
                                              ll_last_agent_pair ctx (i + 2) r
                                                ~initiator_is_c:
                                                  (not initiator_is_c)
                                                k)))))))))
  end

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let finish ctx ~r =
  Simkernel.Engine.run ctx.engine;
  let stats_c = Wal.Log.stats ctx.wal_c and stats_s = Wal.Log.stats ctx.wal_s in
  let events = Trace.events ctx.trace in
  let data_flows =
    List.length
      (List.filter
         (function Trace.Send { protocol = false; _ } -> true | _ -> false)
         events)
  in
  {
    transactions = r;
    flows = Trace.flows ctx.trace;
    data_flows;
    writes = Trace.tm_writes ctx.trace;
    forced = Trace.tm_forced_writes ctx.trace;
    force_ios = stats_c.Wal.Log.force_ios + stats_s.Wal.Log.force_ios;
    duration = now ctx;
    mean_coordinator_lock_time =
      (if ctx.lock_samples = 0 then 0.0
       else ctx.lock_time_acc /. float_of_int ctx.lock_samples);
    trace = ctx.trace;
  }

let run_chain ?latency ?io_latency ?group mode ~r =
  let ctx = make_ctx ?latency ?io_latency ?group () in
  (match mode with
  | Chain_basic -> basic_txn ctx 1 r (fun () -> ())
  | Chain_long_locks -> long_locks_txn ctx 1 r (fun () -> ())
  | Chain_long_locks_last_agent ->
      ll_last_agent_pair ctx 1 r ~initiator_is_c:true (fun () -> ()));
  finish ctx ~r

(* ------------------------------------------------------------------ *)
(* Group commit                                                        *)
(* ------------------------------------------------------------------ *)

type gc_result = {
  gc_transactions : int;
  gc_group_size : int;
  gc_force_requests : int;  (** logical forced writes issued *)
  gc_force_ios : int;       (** physical force I/Os after batching *)
  gc_saved_ios : int;
  gc_paper_saving : float;  (** the paper's 3n/2m estimate *)
  gc_duration : float;
  gc_mean_commit_latency : float;
      (** group commit's cost: commits wait for their batch *)
}

(** [n] concurrent two-member transactions whose coordinator sides share
    one log and whose subordinate sides share another (the paper's
    "only one member of each transaction resides at each node").  Each
    transaction issues three forced writes (subordinate Prepared,
    coordinator Committed, subordinate Committed); the group-commit log
    manager batches them. *)
let run_group_commit ?(latency = 1.0) ?(io_latency = 0.5) ?(timeout = 5.0)
    ?(stagger = 0.1) ~n ~group_size () =
  let group =
    if group_size <= 1 then None
    else Some { Wal.Log.size = group_size; timeout }
  in
  let ctx = make_ctx ~latency ~io_latency ?group () in
  let completed = ref 0 in
  let latency_acc = ref 0.0 in
  let one_txn i =
    let txn = Printf.sprintf "g%d" i in
    let started = now ctx in
    send ctx ~src:"C" ~dst:"S" ~label:"Prepare" ~protocol:true (fun () ->
        force ctx ctx.wal_s ~txn Wal.Log_record.Prepared (fun () ->
            send ctx ~src:"S" ~dst:"C" ~label:"Vote YES" ~protocol:true (fun () ->
                force ctx ctx.wal_c ~txn Wal.Log_record.Committed (fun () ->
                    send ctx ~src:"C" ~dst:"S" ~label:"Commit" ~protocol:true
                      (fun () ->
                        force ctx ctx.wal_s ~txn Wal.Log_record.Committed
                          (fun () ->
                            append ctx ctx.wal_s ~txn Wal.Log_record.End;
                            send ctx ~src:"S" ~dst:"C" ~label:"Ack"
                              ~protocol:true (fun () ->
                                append ctx ctx.wal_c ~txn Wal.Log_record.End;
                                incr completed;
                                latency_acc :=
                                  !latency_acc +. (now ctx -. started))))))))
  in
  for i = 1 to n do
    ignore
      (Simkernel.Engine.schedule ctx.engine
         ~delay:(float_of_int (i - 1) *. stagger)
         (fun () -> one_txn i))
  done;
  Simkernel.Engine.run ctx.engine;
  let stats_c = Wal.Log.stats ctx.wal_c and stats_s = Wal.Log.stats ctx.wal_s in
  let requests = stats_c.Wal.Log.forced_writes + stats_s.Wal.Log.forced_writes in
  let ios = stats_c.Wal.Log.force_ios + stats_s.Wal.Log.force_ios in
  {
    gc_transactions = n;
    gc_group_size = max 1 group_size;
    gc_force_requests = requests;
    gc_force_ios = ios;
    gc_saved_ios = requests - ios;
    gc_paper_saving = Cost_model.group_commit_saving ~n ~m:(max 1 group_size);
    gc_duration = now ctx;
    gc_mean_commit_latency =
      (if !completed = 0 then 0.0 else !latency_acc /. float_of_int !completed);
  }
