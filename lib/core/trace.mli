(** Event trace of a simulation run.

    The trace is the single source of truth for the quantities the paper
    tabulates: protocol message flows, log writes and forced log writes
    (transaction-manager records only, per the paper's counting convention),
    plus the timeline needed to render the figures as ASCII sequence
    diagrams.

    The event vocabulary stays public — consumers pattern-match on it — but
    the container is abstract, so the representation can grow (indexes,
    counters) without breaking them. *)

type event =
  | Send of {
      time : float;
      src : string;
      dst : string;
      label : string;
      protocol : bool;
          (** false for application data (implied acks, next-transaction
              data): those messages are not 2PC flows *)
    }
  | Deliver of { time : float; src : string; dst : string; label : string }
  | Log_write of {
      time : float;
      node : string;
      kind : Wal.Log_record.kind;
      forced : bool;
      rm : bool;  (** resource-manager record (excluded from paper counts) *)
    }
  | Decide of { time : float; node : string; outcome : Types.outcome }
  | Complete of {
      time : float;
      node : string;
      outcome : Types.outcome;
      pending : bool;  (** wait-for-outcome: "outcome pending" indication *)
    }
  | Heuristic of { time : float; node : string; action : Types.outcome }
  | Damage_detected of {
      time : float;
      node : string;  (** damaged participant *)
      reported_to : string;  (** "" when the report is lost *)
    }
  | Locks_released of { time : float; node : string }
  | Crash of { time : float; node : string }
  | Restart of { time : float; node : string }
  | Note of { time : float; node : string; text : string }

type t

val create : ?keep_events:bool -> unit -> t
(** [keep_events] (default [true]): whether {!record} retains the event
    itself.  With [keep_events:false] only the O(1) aggregate counters
    ({!flows}, {!data_flows}, {!tm_writes}, {!tm_forced_writes}) are
    maintained and {!events} stays empty — the mode for high-volume runs
    (sweeps, chaos) where no consumer ever reads the timeline, saving one
    list cell per event. *)

val record : t -> event -> unit

val keeps_events : t -> bool

val events : t -> event list
(** Oldest first; [[]] when the trace was created with
    [keep_events:false]. *)

val clear : t -> unit
(** Drops retained events and resets every aggregate counter. *)

val event_time : event -> float

(** {2 Paper-convention counting}

    {!flows}, {!data_flows}, {!tm_writes} and {!tm_forced_writes} are
    incremental counters — O(1), available in both trace modes.  The
    remaining counts scan the retained events and report 0/[None] under
    [keep_events:false]. *)

val flows : t -> int
(** Protocol message flows ([Send] with [protocol = true]). *)

val data_flows : t -> int
(** Application-data messages ([Send] with [protocol = false]). *)

val count_log_writes : ?include_rm:bool -> ?forced_only:bool -> t -> int
val tm_writes : t -> int
val tm_forced_writes : t -> int
val node_flows : t -> string -> int
val node_writes : ?forced_only:bool -> t -> string -> int
val heuristic_count : t -> int

val damage_reports : t -> (string * string) list
(** [(damaged node, reported to)] pairs, oldest first. *)

val matched_flows : t -> (int * string * string * string * float * float) list
(** Send/deliver pairs [(id, src, dst, label, sent, delivered)], oldest
    send first.  Each delivery is matched FIFO to the oldest unmatched
    send of its [(src, dst, label)] channel — the simulated network's
    per-link order — so dropped or still-in-flight sends never pair.
    Ids are deterministic (assigned in send order); they become Perfetto
    flow ids. *)

val completion_time : t -> string -> float option
val locks_released_time : t -> string -> float option

(** {2 Rendering} *)

val event_to_string : event -> string
val to_string : t -> string

val sequence_diagram : ?width:int -> t -> nodes:string list -> string
(** Render a message-sequence chart in the style of the paper's figures:
    one column per node (in [nodes] order), message arrows between columns,
    log forces marked beside the writing node. *)
