(** The commit-protocol interface: what distinguishes one protocol family
    from another, expressed as a record of transition policies.

    {!Participant} owns everything the paper calls "the environment" -
    timers, retransmission with backoff, crash/restart/amnesia, piggyback
    deferral, telemetry spans, lock handling - and consults a {!t} at
    exactly the points where Basic 2PC, Presumed Abort and Presumed Nothing
    diverge: what to log before voting begins, how decisions reach the
    disk, which aborts need acknowledgment, where damage reports travel,
    and what a restarted node does with its log.  A new protocol (Paxos
    Commit, logless 1PC, ...) is a value of this type registered with
    {!Protocol.register}; it inherits the sweep, chaos, shrinking and
    telemetry harness unchanged. *)

open Types

(** Capabilities the plumbing hands a protocol hook.  Every effect a hook
    may have on the world goes through one of these, which is what keeps
    implementations runnable under the deterministic simulation, the crash
    injector and the trace at once. *)
type ops = {
  op_send : dst:string -> Msg.payload list -> unit;
      (** send one message (one flow in the paper's accounting) *)
  op_force : txn:string -> Wal.Log_record.kind -> (unit -> unit) -> unit;
      (** force a TM record; the continuation runs when it is durable
          (immediately for shared-log members riding the parent's forces) *)
  op_append : txn:string -> Wal.Log_record.kind -> unit;
      (** write a TM record without forcing *)
  op_note : string -> unit;  (** free-form trace note at this node *)
  op_crash_at : crash_point -> bool;
      (** fire a configured crash fault at this point; [true] means the
          node just crashed and the hook must stop *)
  op_now : unit -> float;  (** virtual clock *)
  op_after : delay:float -> (unit -> unit) -> unit;
      (** run a continuation after [delay] virtual time units; cancelled
          (never run) if the node crashes first - protocol hooks use this
          to model rounds the simulated network does not carry, like the
          BFT coordinator's endorsement round trip *)
  op_charge : flows:int -> forces:int -> unit;
      (** charge synthetic protocol cost to this node's trace: [flows]
          message flows and [forces] forced log writes that happen on
          hardware the simulation does not model as separate nodes (the
          BFT replica ensemble).  Shows up in the paper-style flow/write
          accounting so sweeps price the protocol honestly. *)
}

(** How a decision reaches the log at one role. *)
type log_discipline =
  | Log_force of Wal.Log_record.kind  (** forced write, wait for the disk *)
  | Log_append of Wal.Log_record.kind  (** non-forced write, continue *)
  | Log_none  (** write nothing (the presumption carries the outcome) *)

(** What a restarted node does with the record kinds it finds for one
    transaction in its durable log. *)
type recovery_action =
  | Rec_none  (** nothing to drive (finished, or resolved heuristically) *)
  | Rec_redrive of outcome
      (** outcome durable but END missing: re-drive phase two *)
  | Rec_in_doubt  (** prepared without outcome: resume in doubt *)
  | Rec_decide of { outcome : outcome; note : string }
      (** decide [outcome] now, tracing [note] first (PN's interrupted
          commit-pending coordinator aborts) *)

(** Where a delivered payload claims to come from, relative to this node's
    static position in the commit tree.  Honest nodes know their parent and
    immediate children; that topology (plus their own durable state) is all
    the evidence they have against forged messages - there are no
    signatures in 2PC. *)
type sender_role = From_parent | From_child | From_stranger

type t = {
  p_id : protocol;  (** the {!Types.config} value selecting this protocol *)
  p_flag : string;  (** short CLI spelling, e.g. ["pa"] *)
  p_aliases : string list;  (** further accepted spellings *)
  p_description : string;
  (* --- vote phase ------------------------------------------------- *)
  p_begin_commit :
    ops -> txn:string -> root:bool -> has_children:bool -> k:(unit -> unit) -> unit;
      (** called when this node starts acting as a (root or cascaded)
          coordinator, before any Prepare flows; the protocol performs its
          pre-voting logging and calls [k] to launch phase one *)
  p_voter_log : Wal.Log_record.kind list;
      (** records a YES voter forces, in order, before its vote may leave
          the node (PN: agent then prepared; others: prepared) *)
  p_delegation_log : Wal.Log_record.kind list;
      (** records a delegating coordinator forces before handing the
          decision to its last agent (PN already forced commit-pending) *)
  (* --- decision phase --------------------------------------------- *)
  p_decision_log : outcome -> log_discipline;
      (** logging at the decision maker (root, last agent, delegator) *)
  p_subordinate_decision_log : outcome -> log_discipline;
      (** logging at a subordinate that hears the outcome from above *)
  (* --- acknowledgment --------------------------------------------- *)
  p_ack_on_abort : bool;
      (** do subordinates acknowledge aborts?  (PA: no - the presumption
          makes the abort forgettable without them) *)
  p_abort_ack_required : vote:vote option -> presumed_no:bool -> bool;
      (** coordinator side of the same question, per child: must this
          child's abort notification be retried until acknowledged?
          [vote] is the child's recorded vote ([None] = never voted);
          [presumed_no] marks a vote timeout rather than a real NO *)
  p_damage_to_root : bool;
      (** heuristic-damage reports travel up to the root (PN) rather than
          stopping at the immediate coordinator (PA, basic) *)
  (* --- recovery ---------------------------------------------------- *)
  p_indoubt_tick : ops -> txn:string -> targets:string list -> unit;
      (** periodic action while in doubt: PA/basic inquire [targets]; PN
          waits for the coordinator to contact it *)
  p_indoubt_restart : ops -> txn:string -> targets:string list -> unit;
      (** same question right after restart rebuilds an in-doubt state *)
  p_recover : Wal.Log_record.kind list -> recovery_action;
      (** restart-time policy over the TM record kinds found for one txn *)
  (* --- adversary hardening ----------------------------------------- *)
  p_admissible :
    cfg:config ->
    src:string ->
    role:sender_role ->
    known:outcome option ->
    Msg.payload ->
    string option;
      (** Validation an honest node runs on every delivered payload before
          acting on it: [None] admits the payload, [Some reason] rejects it
          (the plumbing counts the rejection and traces [reason]; a reason
          starting with ["cert:"] is additionally counted as a certificate
          refusal).  [known] is this node's durable outcome for the
          payload's transaction, if any.  The checks are protocol-level
          because what counts as a protocol-violating message differs per
          family (PN subordinates never inquire); they must never reject
          anything a benign run can deliver.  See {!standard_admissible}. *)
  p_certify :
    (ops ->
    cfg:config ->
    txn:string ->
    outcome:outcome ->
    votes:string ->
    k:(Msg.certificate -> unit) ->
    unit)
    option;
      (** [Some] makes this a certified-decision protocol: called at the
          decision maker after the outcome is chosen but before it is
          logged or propagated; the hook gathers its endorsement quorum
          (charging cost and latency through [ops]) and passes the
          certificate to [k].  The plumbing then logs the certificate
          next to the outcome, attaches it to every outgoing
          [Decision_msg] and [Inquiry_reply], and restores it from the
          WAL at restart.  [None] (all paper protocols) skips the whole
          machinery. *)
}

(** Send an {!Msg.Inquiry} for [txn] to every target: the subordinate-
    initiated recovery action shared by the presuming protocols. *)
let send_inquiries ops ~txn ~targets =
  List.iter (fun dst -> ops.op_send ~dst [ Msg.Inquiry { txn } ]) targets

(** The recovery priority shared by all three paper protocols: END means
    finished; a durable outcome is re-driven; a dangling prepare means in
    doubt; anything else (including heuristic records, which were resolved
    locally when written) needs no driving. *)
let standard_recover kinds =
  let has k = List.mem k kinds in
  if has Wal.Log_record.End then Rec_none
  else if has Wal.Log_record.Committed then Rec_redrive Committed
  else if has Wal.Log_record.Aborted then Rec_redrive Aborted
  else if has Wal.Log_record.Prepared then Rec_in_doubt
  else Rec_none

(** The txn-id/topology validation shared by the paper's three families.
    What an honest node {e can} detect without signatures:
    - a decision that contradicts its own durable outcome for that
      transaction (an equivocating or forged retransmission: honest
      coordinators never flip a decision);
    - a decision for a transaction it knows nothing about, from a node
      that is neither its coordinator nor one of its subordinates;
    - votes, acknowledgments, application data, inquiries and inquiry
      replies from topology strangers (acknowledgments additionally must
      come from a subordinate);
    - a non-delegation vote arriving from its own parent: votes flow
      upward, and the only downward vote is a delegation handoff.

    What it deliberately does {e not} reject:
    - Prepare from anyone: dual commit initiation (Figure 5) is legal and
      the state machine itself detects and aborts it, so topology cannot
      condemn a Prepare;
    - a stranger's decision that merely confirms what we already decided
      (the idempotent tail of Figure 5's dual abort);
    - anything from our real parent or children - a forged decision from
      the coordinator's own address is indistinguishable from a real one,
      which is exactly the trust assumption the adversarial chaos matrix
      measures. *)
let standard_admissible ~src ~role ~known payload =
  let reject fmt = Printf.ksprintf Option.some fmt in
  let label = Msg.payload_label payload in
  match (payload : Msg.payload) with
  | Msg.Prepare _ -> None
  | Msg.Decision_msg { outcome; _ } -> (
      match known with
      | Some o when o <> outcome ->
          reject "rejecting %s from %s: contradicts our durable %s (forgery?)"
            label src (outcome_to_string o)
      | Some _ -> None
      | None -> (
          match role with
          | From_parent | From_child -> None
          | From_stranger ->
              reject "rejecting %s from stranger %s: not our coordinator"
                label src))
  | Msg.Ack_msg _ -> (
      match role with
      | From_child -> None
      | From_parent | From_stranger ->
          reject "rejecting %s from %s: acknowledgments come from subordinates"
            label src)
  | Msg.Vote_msg { delegation; _ } -> (
      match role with
      | From_child -> None
      | From_parent ->
          (* the only vote that legally travels downward is a delegation
             (the coordinator handing its last agent the decision); a plain
             vote from our parent is the echo of a forged Prepare we were
             tricked into cascading, and acting on it would materialize
             ghost transaction state here *)
          if delegation then None
          else
            reject "rejecting %s from %s: only delegation votes flow downward"
              label src
      | From_stranger ->
          reject "rejecting %s from stranger %s: outside the commit tree"
            label src)
  | Msg.Data _ | Msg.Inquiry _ | Msg.Inquiry_reply _ -> (
      match role with
      | From_parent | From_child -> None
      | From_stranger ->
          reject "rejecting %s from stranger %s: outside the commit tree"
            label src)
