(** Commit-protocol registry; see protocol.mli for the contract. *)

include Protocol_intf

(* Lookup is by every spelling of every registered protocol, lowercased;
   [order] remembers registration order so listings are deterministic. *)
let table : (string, t) Hashtbl.t = Hashtbl.create 16
let order : t list ref = ref []

let canonical_name p = Types.protocol_to_string p.p_id

let names_of p =
  List.sort_uniq compare
    (List.map String.lowercase_ascii
       (canonical_name p :: p.p_flag :: p.p_aliases))

let register p =
  let keys = names_of p in
  List.iter
    (fun k ->
      match Hashtbl.find_opt table k with
      | Some q when q != p ->
          invalid_arg ("Protocol.register: name already taken: " ^ k)
      | _ -> ())
    keys;
  if not (List.memq p !order) then order := !order @ [ p ];
  List.iter (fun k -> Hashtbl.replace table k p) keys

let find name = Hashtbl.find_opt table (String.lowercase_ascii name)
let all () = !order

(* The paper's three families and the BFT variant are always available:
   registering them here, by direct reference, also guarantees the linker
   keeps their modules. *)
let () =
  List.iter register
    [
      Protocol_basic.protocol;
      Protocol_pa.protocol;
      Protocol_pn.protocol;
      Protocol_bft.protocol;
    ]

let resolve proto =
  let name = Types.protocol_to_string proto in
  match find name with
  | Some impl -> impl
  | None ->
      invalid_arg
        (Printf.sprintf "Protocol.resolve: no implementation registered for %S"
           name)

let of_string s = Option.map (fun impl -> impl.p_id) (find s)
let flag proto = (resolve proto).p_flag
let flags () = List.map (fun p -> p.p_flag) (all ())
