(** Per-node two-phase-commit state machine.

    A participant is one member of the commit tree: a transaction manager
    plus its local resource manager.  It implements the baseline protocol,
    Presumed Abort and Presumed Nothing, and all of the paper's
    optimizations, reacting to network deliveries, log-force completions
    and timers on the shared virtual clock.

    Most users drive participants through {!Run}; the functions here are
    the building blocks for custom topologies (see {!Scenarios.figure5}
    for a hand-wired example). *)

type t

val create :
  engine:Simkernel.Engine.t ->
  net:Net.t ->
  trace:Trace.t ->
  cfg:Types.config ->
  profile:Types.profile ->
  parent:string option ->
  child_profiles:Types.profile list ->
  wal:Wal.Log.t ->
  kv:Kvstore.t ->
  t
(** Build a participant.  [parent] is the statically expected coordinator
    (used by subordinate-initiated recovery); [child_profiles] are the
    immediate children in the commit tree. *)

val attach : t -> unit
(** Register the participant's message handler with the network.  Must be
    called exactly once per participant before any commit begins. *)

val name : t -> string
val kv : t -> Kvstore.t
val log : t -> Wal.Log.t
val is_crashed : t -> bool

val set_on_root_complete :
  t -> (txn:string -> Types.outcome -> pending:bool -> unit) -> unit
(** Callback fired when this participant, acting as root coordinator,
    reports the outcome of [txn] to its application ([pending] is the
    wait-for-outcome "recovery still in progress" indication). *)

val set_on_crash : t -> (unit -> unit) -> unit
(** Callback fired at the end of every crash (fault-injected or forced),
    after volatile state is wiped.  A concurrent workload driver uses it to
    fail transactions that depended on this node and had not yet entered
    the commit protocol. *)

val set_registry : t -> Obs.Registry.t -> unit
(** Attach a telemetry registry: every protocol phase transition then
    streams the residence time of the phase being left into the
    registry's ["phase/<name>"] histogram (names: [voting], [in-doubt],
    [delegated], [decision], [phase-two], [ended]), and the blocking
    windows into ["blocking/in_doubt"], ["blocking/blocked_lock"] and
    ["blocking/heur_exposure"].  Without a registry the participant
    records nothing. *)

val set_causal : t -> Obs.Causal.t -> unit
(** Attach a causal recorder: protocol steps (log appends and forces,
    message sends and deliveries, decisions, retransmissions, heuristic
    overrides, lock releases) are then recorded as per-transaction causal
    events whenever the recorder's mode is not [Off].  With the recorder
    absent or [Off] every hook is an O(1) no-op. *)

val begin_commit : t -> txn:string -> unit
(** Initiate commit processing for [txn] with this participant as the
    (root) coordinator.  Under Presumed Nothing this forces the
    commit-pending record before any Prepare flows. *)

val begin_unsolicited : t -> txn:string -> unit
(** Unsolicited-vote entry point: the participant prepares itself and
    sends an unsolicited YES to its parent without waiting for a Prepare.
    Raises [Invalid_argument] on a participant with no parent. *)

val note_idle_child : t -> txn:string -> child:string -> unit
(** Declare that [child] exchanged no data with this member during
    transaction [txn].  Together with a suspension recorded from the
    child's previous committed OK-TO-LEAVE-OUT vote, this lets
    the participant leave the child out of that commit (the dynamic
    leave-out protocol; see {!Run.commit_sequence}).  The marks are
    per-transaction so concurrent transactions cannot clobber each
    other's declarations. *)

val clear_idle_children : t -> txn:string -> unit
val is_suspended : t -> child:string -> bool

val flush_piggybacks : t -> unit
(** Send every acknowledgment still deferred onto "next-transaction data"
    (long-locks acks, last-agent implied acks) right now.  A concurrent
    workload driver calls this when a genuinely-next transaction arrives, so
    the piggyback rides real data instead of the synthetic
    [implied_ack_delay] think-time timer; left alone, the timer preserves
    the single-transaction behaviour.  No-op while crashed. *)

val has_piggybacks : t -> bool
(** True when at least one deferred acknowledgment has not yet been sent. *)

val force_crash : t -> unit
(** Crash the node immediately: volatile log tail, resource-manager cache
    and all in-memory protocol state are lost; inbound messages drop. *)

val force_restart : t -> unit
(** Restart after a crash: recover the resource manager from the durable
    log and resume protocol obligations (re-drive logged outcomes, inquire
    about in-doubt transactions under PA, abort dangling PN
    commit-pending coordinations). *)

val force_restart_amnesia : t -> unit
(** Test-only deliberately-broken restart: the node rejoins the network but
    skips both resource-manager recovery and log-driven protocol recovery.
    Exists so the chaos harness can prove its fault-aware audit catches a
    recovery that forgets durable decisions.  Never use outside tests. *)

val unresolved_txns : t -> (string * string) list
(** Sorted [(txn, phase)] pairs for every transaction whose in-memory state
    has not reached END on this node.  Phase names are those of
    {!set_registry}'s histograms. *)

val in_doubt_txns : t -> string list
(** Sorted transactions currently blocked on an outcome here: in-doubt
    voters awaiting their coordinator and delegators awaiting their last
    agent.  Complements {!Kvstore.in_doubt}, which only covers states
    rebuilt by crash recovery. *)

val force_heuristic : t -> txn:string -> Types.outcome -> unit
(** Adversarial injection: resolve [txn] heuristically as [action] right
    now, as if an impatient operator overrode the protocol at this node.
    A no-op unless the transaction is in doubt here with no heuristic
    decision yet (the injector may race the real decision arriving, and
    losing that race is the correct outcome).  Takes the same path as the
    heuristic timeout, so damage detection and reporting behave
    identically. *)

val rejected_forgeries : t -> int
(** Payloads this node refused under the protocol's
    {!Protocol_intf.t.p_admissible} check: forgeries an honest node can
    detect from topology and its own durable state.  Always zero in a
    benign run. *)

val rejected_certs : t -> int
(** The subset of refusals that violated certificate rules (an
    admissibility reason starting with ["cert:"]: uncertified or
    mis-certified decisions, vote-signature mismatches), plus durable
    certificates that failed re-validation at restart.  Always zero under
    the paper's uncertified protocols. *)

val damage_seen : t -> (string * Msg.damage_report) list
(** Heuristic-damage reports that reached this node's operator, oldest
    first, as [(txn, report)] pairs.  The damaged member itself records the
    mismatch the moment {e it} detects it (its own console is an operator
    too), and ack-borne copies surface where the protocol says they stop:
    at the immediate coordinator for PA/basic, at the root for PN.  The
    adversarial audit uses this to distinguish reported from silent
    heuristic damage. *)
