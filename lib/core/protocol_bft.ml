(** Byzantine-fault-tolerant commit (after Zhao, "A Byzantine Fault
    Tolerant Distributed Commit Protocol") expressed through
    {!Protocol_intf}: the coordinator is replicated over 2f+1 replicas and
    a decision only becomes actionable when carried by a {e decision
    certificate} of at least f+1 matching endorsements over the same vote
    set.  Participants refuse uncertified or mis-certified decisions and
    votes whose signature does not match, routing them to the
    rejected-forgeries console instead of acting; restart recovery
    re-validates certificates from the WAL.

    The replica ensemble is not modelled as separate simulation nodes: the
    endorsement round is synthesized at the decision maker, which charges
    its message flows and forced writes through [op_charge] and its
    round-trip latency through [op_after], so sweeps and the paper-style
    Tables 2-4 accounting price what tolerance costs.  The adversary's
    power over the ensemble is the chaos plan's [corrupt@] events: the
    injector can only forge endorsements for corrupted replicas, so
    certificates stay unforgeable while at most f replicas are corrupt -
    the sub-threshold guarantee the chaos harness gates on. *)

open Types

(* Cost of one certified decision, beyond what the node itself logs: the
   coordinator exchanges request/endorsement with each of the 2f other
   replicas (2 * 2f flows) and each of those replicas forces its
   endorsement record (2f forced writes).  The round trip overlaps the
   replica forces, so latency is one round trip plus one force. *)
let quorum_flows ~f = 4 * f
let quorum_forces ~f = 2 * f
let quorum_delay ~cfg ~f =
  if f = 0 then 0.0 else (2.0 *. cfg.latency) +. cfg.io_latency

let certify ops ~cfg ~txn ~outcome ~votes ~k =
  let f = max 0 cfg.bft_f in
  let cert =
    {
      Msg.c_endorsements =
        List.init (f + 1) (fun r -> Msg.endorse ~replica:r ~txn ~outcome ~votes);
    }
  in
  if f = 0 then k cert
  else begin
    ops.Protocol_intf.op_note
      (Printf.sprintf "gathering decision certificate (f=%d, quorum=%d)" f
         (f + 1));
    ops.Protocol_intf.op_charge ~flows:(quorum_flows ~f)
      ~forces:(quorum_forces ~f);
    ops.Protocol_intf.op_after ~delay:(quorum_delay ~cfg ~f) (fun () -> k cert)
  end

(* Everything the standard topology check catches still applies; on top of
   it, decisions and outcome-bearing inquiry replies must carry a valid
   certificate and votes must carry a matching signature.  Certificate
   reasons start with "cert:" so the plumbing can count them separately. *)
let admissible ~cfg ~src ~role ~known payload =
  let f = max 0 cfg.bft_f in
  let reject fmt = Printf.ksprintf Option.some fmt in
  let standard () =
    Protocol_intf.standard_admissible ~src ~role ~known payload
  in
  match (payload : Msg.payload) with
  | Msg.Decision_msg { txn; outcome; cert } -> (
      match cert with
      | None ->
          reject "cert: rejecting uncertified %s from %s"
            (Msg.payload_label payload) src
      | Some c ->
          if not (Msg.certificate_valid ~f ~txn ~outcome c) then
            reject
              "cert: rejecting %s from %s: certificate below the f+1=%d \
               quorum or inconsistent"
              (Msg.payload_label payload) src (f + 1)
          else standard ())
  | Msg.Inquiry_reply { txn; outcome = Some o; cert } -> (
      match cert with
      | None -> reject "cert: rejecting uncertified outcome reply from %s" src
      | Some c ->
          if not (Msg.certificate_valid ~f ~txn ~outcome:o c) then
            reject "cert: rejecting outcome reply from %s: invalid certificate"
              src
          else standard ())
  | Msg.Vote_msg { txn; vote; tag; _ } ->
      if not (String.equal tag (Msg.vote_tag ~src ~txn vote)) then
        reject "cert: rejecting %s from %s: vote signature mismatch"
          (Msg.payload_label payload) src
      else standard ()
  | _ -> standard ()

let protocol : Protocol_intf.t =
  {
    p_id = Custom "bft";
    p_flag = "bft";
    p_aliases = [ "byzantine"; "bft-2pc" ];
    p_description =
      "Byzantine-tolerant 2PC: 2f+1 coordinator replicas, decisions valid \
       only under an f+1 endorsement certificate";
    p_begin_commit = (fun _ops ~txn:_ ~root:_ ~has_children:_ ~k -> k ());
    p_voter_log = [ Wal.Log_record.Prepared ];
    p_delegation_log = [ Wal.Log_record.Prepared ];
    (* no presumption in either direction: both outcomes are forced
       everywhere, so an inquiry answered "no information" really does
       mean no decision was ever certified *)
    p_decision_log =
      (function
      | Committed -> Protocol_intf.Log_force Wal.Log_record.Committed
      | Aborted -> Protocol_intf.Log_force Wal.Log_record.Aborted);
    p_subordinate_decision_log =
      (function
      | Committed -> Protocol_intf.Log_force Wal.Log_record.Committed
      | Aborted -> Protocol_intf.Log_force Wal.Log_record.Aborted);
    p_ack_on_abort = true;
    p_abort_ack_required =
      (fun ~vote ~presumed_no:_ ->
        match vote with Some (Vote_yes _) -> true | _ -> false);
    p_damage_to_root = false;
    (* subordinate-initiated recovery as under PA: in-doubt members inquire
       and act only on certified replies *)
    p_indoubt_tick = Protocol_intf.send_inquiries;
    p_indoubt_restart = Protocol_intf.send_inquiries;
    p_recover = Protocol_intf.standard_recover;
    p_admissible = admissible;
    p_certify = Some certify;
  }
