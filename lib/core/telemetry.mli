(** Span-based telemetry derived from the event trace.

    Turns a {!Trace.t} into (a) per-node 2PC phase spans with parent
    links mirroring the commit tree, exported as Chrome trace-event JSON
    that Perfetto / [chrome://tracing] open directly, and (b) structured
    JSONL event lines for offline analysis.

    Span derivation is anchor-based and total: any node that appears in
    the trace gets all five phase spans ([prepare], [voting],
    [decision], [phase-two], [ack]); phases the run skipped come out
    with zero duration.  Because trace events carry no transaction id,
    spans are meaningful for single-transaction runs (the [run]
    subcommand); concurrent mixes get per-phase latencies from the
    registry histograms instead. *)

val phase_names : string list
(** The five span names, in protocol order:
    [["prepare"; "voting"; "decision"; "phase-two"; "ack"]]. *)

val spans : Trace.t -> tree:Types.tree -> Obs.Span.t list
(** All phase spans, nodes in depth-first tree order.  Each span's
    [sp_parent] is the node's parent in the commit tree (root: [None]). *)

val node_spans :
  ?parent:string -> Trace.event list -> string -> Obs.Span.t list option
(** Spans for a single node from a raw event list; [None] when the node
    never appears (e.g. left out of the commit). *)

val default_time_scale : float
(** Simulation-time units to Chrome-trace microseconds (1000.0: one sim
    unit renders as one millisecond). *)

val chrome_trace : ?time_scale:float -> Trace.t -> tree:Types.tree -> Json.t
(** Chrome trace-event JSON: [{"traceEvents": [...], "displayTimeUnit":
    "ms"}] with one "X" (complete) event per phase span, "M" metadata
    naming the process and one thread per node, and "i" instant events
    for decisions, completions, heuristics, crashes and restarts. *)

val event_to_json : Trace.event -> Json.t
(** One structured-event object.  Every object has ["type"] and ["time"];
    the rest is type-specific (see EXPERIMENTS.md for the full schema). *)

val events_to_jsonl : Trace.t -> string
(** The whole trace as JSONL: one {!event_to_json} line per event, oldest
    first, trailing newline ([""] for an empty trace). *)
