(** Per-run result summary: the paper's three evaluation axes (message
    flows, log writes, resource lock time) plus outcome/heuristic data. *)

type t = {
  outcome : Types.outcome option;  (** [None]: the root never completed *)
  pending : bool;      (** wait-for-outcome: completed with outcome pending *)
  flows : int;         (** protocol message flows (paper convention) *)
  data_flows : int;    (** application-data messages (carry piggybacks) *)
  tm_writes : int;     (** transaction-manager log writes *)
  tm_forced : int;     (** ... of which forced *)
  force_ios : int;     (** physical force I/Os over all logs (group commit) *)
  completion_time : float option;  (** root application told the outcome *)
  quiesce_time : float;            (** last event in the run *)
  mean_lock_release : float option;
      (** mean over members of the time their locks were released *)
  max_lock_release : float option;
  heuristics : int;
  damage_reports : (string * string) list;  (** (damaged node, reported to) *)
}

let of_run ~trace ~wals ~root ~outcome ~pending ~quiesce_time =
  let events = Trace.events trace in
  (* the engine may drain harmless no-op retry timers long after the last
     real action: report the last traced event instead *)
  let quiesce_time =
    List.fold_left
      (fun acc e -> max acc (Trace.event_time e))
      (if events = [] then quiesce_time else 0.0)
      events
  in
  let data_flows =
    List.length
      (List.filter
         (function Trace.Send { protocol = false; _ } -> true | _ -> false)
         events)
  in
  let release_times =
    List.filter_map
      (function Trace.Locks_released { time; _ } -> Some time | _ -> None)
      events
  in
  let mean l =
    match l with
    | [] -> None
    | _ -> Some (List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l))
  in
  let maxi l =
    match l with [] -> None | x :: rest -> Some (List.fold_left max x rest)
  in
  let force_ios =
    List.fold_left (fun acc w -> acc + (Wal.Log.stats w).Wal.Log.force_ios) 0 wals
  in
  {
    outcome;
    pending;
    flows = Trace.flows trace;
    data_flows;
    tm_writes = Trace.tm_writes trace;
    tm_forced = Trace.tm_forced_writes trace;
    force_ios;
    completion_time = Trace.completion_time trace root;
    quiesce_time;
    mean_lock_release = mean release_times;
    max_lock_release = maxi release_times;
    heuristics = Trace.heuristic_count trace;
    damage_reports = Trace.damage_reports trace;
  }

let counts t : Cost_model.counts =
  { Cost_model.flows = t.flows; writes = t.tm_writes; forced = t.tm_forced }

(* Nearest-rank percentiles.  The sort is paid once per sample set: callers
   that need several percentiles go through [sorted_samples] +
   [percentile_of_sorted] (or [percentiles]) instead of re-sorting per
   query.  This stays the exact reference implementation the streaming
   [Obs.Histogram] is tested against. *)

let sorted_samples samples =
  let a = Array.of_list samples in
  Array.sort compare a;
  a

let percentile_of_sorted sorted p =
  let n = Array.length sorted in
  if n = 0 then nan
  else
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    sorted.(min (n - 1) (max 0 (rank - 1)))

let percentile samples p = percentile_of_sorted (sorted_samples samples) p

let percentiles samples ps =
  let sorted = sorted_samples samples in
  List.map (percentile_of_sorted sorted) ps

let json_of_float_opt = function
  | None -> Json.Null
  | Some f -> Json.Float f

let to_json t =
  Json.to_string
    (Json.Obj
       [
         ( "outcome",
           match t.outcome with
           | None -> Json.Null
           | Some o -> Json.String (Types.outcome_to_string o) );
         ("pending", Json.Bool t.pending);
         ("flows", Json.Int t.flows);
         ("data_flows", Json.Int t.data_flows);
         ("tm_writes", Json.Int t.tm_writes);
         ("tm_forced", Json.Int t.tm_forced);
         ("force_ios", Json.Int t.force_ios);
         ("completion_time", json_of_float_opt t.completion_time);
         ("quiesce_time", Json.Float t.quiesce_time);
         ("mean_lock_release", json_of_float_opt t.mean_lock_release);
         ("max_lock_release", json_of_float_opt t.max_lock_release);
         ("heuristics", Json.Int t.heuristics);
         ( "damage_reports",
           Json.List
             (List.map
                (fun (node, to_) ->
                  Json.Obj
                    [
                      ("node", Json.String node); ("reported_to", Json.String to_);
                    ])
                t.damage_reports) );
       ])

(** Aggregate results over a concurrent multi-transaction run (the mixer's
    return value): the paper's per-commit axes re-expressed as throughput,
    latency percentiles and per-commit averages. *)
module Agg = struct
  type t = {
    label : string;  (** optimization-set label, e.g. ["read-only+shared-log"] *)
    concurrency : int;
    txns : int;  (** transactions submitted *)
    committed : int;
    aborted : int;
    duration : float;  (** first arrival to last completion (sim time) *)
    throughput : float;  (** commits per simulated second *)
    abort_rate : float;
    commit_latency_p50 : float;
    commit_latency_p95 : float;
    commit_latency_p99 : float;
    commit_latency_mean : float;
    lock_hold_p50 : float;
    lock_hold_p95 : float;
    lock_hold_p99 : float;
    lock_wait_mean : float;  (** mean lock-queue wait per transaction *)
    lock_waits : int;  (** grants that had to queue *)
    flows : int;
    data_flows : int;
    flows_per_commit : float;
    tm_writes : int;
    tm_forced : int;
    force_ios : int;
    force_ios_per_commit : float;
    consistency_violations : int;
    phase_latency : (string * Obs.Histogram.summary) list;
        (** per 2PC phase (voting, in-doubt, decision, phase-two, ...):
            time-in-phase distribution across all nodes and transactions,
            from the participants' streaming histograms *)
  }

  let ratio num den = if den = 0 then 0.0 else num /. float_of_int den

  let finite f = if Float.is_nan f then 0.0 else f

  let summary_to_json (s : Obs.Histogram.summary) =
    Json.Obj
      [
        ("count", Json.Int s.s_count);
        ("mean", Json.Float (finite s.s_mean));
        ("min", Json.Float (finite s.s_min));
        ("max", Json.Float (finite s.s_max));
        ("p50", Json.Float (finite s.s_p50));
        ("p95", Json.Float (finite s.s_p95));
        ("p99", Json.Float (finite s.s_p99));
      ]

  let to_json_value t =
    Json.Obj
      [
        ("label", Json.String t.label);
        ("concurrency", Json.Int t.concurrency);
        ("txns", Json.Int t.txns);
        ("committed", Json.Int t.committed);
        ("aborted", Json.Int t.aborted);
        ("duration", Json.Float t.duration);
        ("throughput", Json.Float t.throughput);
        ("abort_rate", Json.Float t.abort_rate);
        ("commit_latency_p50", Json.Float t.commit_latency_p50);
        ("commit_latency_p95", Json.Float t.commit_latency_p95);
        ("commit_latency_p99", Json.Float t.commit_latency_p99);
        ("commit_latency_mean", Json.Float t.commit_latency_mean);
        ("lock_hold_p50", Json.Float t.lock_hold_p50);
        ("lock_hold_p95", Json.Float t.lock_hold_p95);
        ("lock_hold_p99", Json.Float t.lock_hold_p99);
        ("lock_wait_mean", Json.Float t.lock_wait_mean);
        ("lock_waits", Json.Int t.lock_waits);
        ("flows", Json.Int t.flows);
        ("data_flows", Json.Int t.data_flows);
        ("flows_per_commit", Json.Float t.flows_per_commit);
        ("tm_writes", Json.Int t.tm_writes);
        ("tm_forced", Json.Int t.tm_forced);
        ("force_ios", Json.Int t.force_ios);
        ("force_ios_per_commit", Json.Float t.force_ios_per_commit);
        ("consistency_violations", Json.Int t.consistency_violations);
        ( "phase_latency",
          Json.Obj
            (List.map (fun (ph, s) -> (ph, summary_to_json s)) t.phase_latency)
        );
      ]

  let to_json t = Json.to_string (to_json_value t)

  let pp ppf t =
    Format.fprintf ppf
      "@[<v>%s x%d: %d txns, %d committed, %d aborted@,\
       throughput: %.4f commits/s, abort rate: %.3f@,\
       commit latency p50/p95/p99: %.2f / %.2f / %.2f@,\
       lock hold p50/p95/p99: %.2f / %.2f / %.2f@,\
       flows/commit: %.2f, force I/Os/commit: %.2f@,\
       consistency violations: %d@]"
      t.label t.concurrency t.txns t.committed t.aborted t.throughput
      t.abort_rate t.commit_latency_p50 t.commit_latency_p95
      t.commit_latency_p99 t.lock_hold_p50 t.lock_hold_p95 t.lock_hold_p99
      t.flows_per_commit t.force_ios_per_commit t.consistency_violations
end

let pp ppf t =
  Format.fprintf ppf
    "@[<v>outcome: %s%s@,\
     flows: %d (+%d data)@,\
     log writes: %d (%d forced), %d force I/Os@,\
     completion: %s, quiesce: %.2f@,\
     lock release (mean/max): %s / %s@,\
     heuristics: %d, damage reports: %d@]"
    (match t.outcome with
    | Some o -> Types.outcome_to_string o
    | None -> "(never completed)")
    (if t.pending then " (outcome pending)" else "")
    t.flows t.data_flows t.tm_writes t.tm_forced t.force_ios
    (match t.completion_time with
    | Some c -> Printf.sprintf "%.2f" c
    | None -> "-")
    t.quiesce_time
    (match t.mean_lock_release with
    | Some v -> Printf.sprintf "%.2f" v
    | None -> "-")
    (match t.max_lock_release with
    | Some v -> Printf.sprintf "%.2f" v
    | None -> "-")
    t.heuristics
    (List.length t.damage_reports)
