(** Per-run result summary: the paper's three evaluation axes (message
    flows, log writes, resource lock time) plus outcome/heuristic data. *)

type t = {
  outcome : Types.outcome option;  (** [None]: the root never completed *)
  pending : bool;      (** wait-for-outcome: completed with outcome pending *)
  flows : int;         (** protocol message flows (paper convention) *)
  data_flows : int;    (** application-data messages (carry piggybacks) *)
  tm_writes : int;     (** transaction-manager log writes *)
  tm_forced : int;     (** ... of which forced *)
  force_ios : int;     (** physical force I/Os over all logs (group commit) *)
  completion_time : float option;  (** root application told the outcome *)
  quiesce_time : float;            (** last event in the run *)
  mean_lock_release : float option;
      (** mean over members of the time their locks were released *)
  max_lock_release : float option;
  heuristics : int;
  damage_reports : (string * string) list;  (** (damaged node, reported to) *)
}

let of_run ~trace ~wals ~root ~outcome ~pending ~quiesce_time =
  let events = Trace.events trace in
  (* the engine may drain harmless no-op retry timers long after the last
     real action: report the last traced event instead *)
  let quiesce_time =
    List.fold_left
      (fun acc e -> max acc (Trace.event_time e))
      (if events = [] then quiesce_time else 0.0)
      events
  in
  let data_flows =
    List.length
      (List.filter
         (function Trace.Send { protocol = false; _ } -> true | _ -> false)
         events)
  in
  let release_times =
    List.filter_map
      (function Trace.Locks_released { time; _ } -> Some time | _ -> None)
      events
  in
  let mean l =
    match l with
    | [] -> None
    | _ -> Some (List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l))
  in
  let maxi l =
    match l with [] -> None | x :: rest -> Some (List.fold_left max x rest)
  in
  let force_ios =
    List.fold_left (fun acc w -> acc + (Wal.Log.stats w).Wal.Log.force_ios) 0 wals
  in
  {
    outcome;
    pending;
    flows = Trace.flows trace;
    data_flows;
    tm_writes = Trace.tm_writes trace;
    tm_forced = Trace.tm_forced_writes trace;
    force_ios;
    completion_time = Trace.completion_time trace root;
    quiesce_time;
    mean_lock_release = mean release_times;
    max_lock_release = maxi release_times;
    heuristics = Trace.heuristic_count trace;
    damage_reports = Trace.damage_reports trace;
  }

let counts t : Cost_model.counts =
  { Cost_model.flows = t.flows; writes = t.tm_writes; forced = t.tm_forced }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>outcome: %s%s@,\
     flows: %d (+%d data)@,\
     log writes: %d (%d forced), %d force I/Os@,\
     completion: %s, quiesce: %.2f@,\
     lock release (mean/max): %s / %s@,\
     heuristics: %d, damage reports: %d@]"
    (match t.outcome with
    | Some o -> Types.outcome_to_string o
    | None -> "(never completed)")
    (if t.pending then " (outcome pending)" else "")
    t.flows t.data_flows t.tm_writes t.tm_forced t.force_ios
    (match t.completion_time with
    | Some c -> Printf.sprintf "%.2f" c
    | None -> "-")
    t.quiesce_time
    (match t.mean_lock_release with
    | Some v -> Printf.sprintf "%.2f" v
    | None -> "-")
    (match t.max_lock_release with
    | Some v -> Printf.sprintf "%.2f" v
    | None -> "-")
    t.heuristics
    (List.length t.damage_reports)
