(** Shared vocabulary of the 2PC protocol engine. *)

(** Which commit protocol family a run uses (Sections 2 and 3 of the paper). *)
type protocol =
  | Basic  (** the baseline 2PC of Figure 1 *)
  | Presumed_abort  (** PA: no information at coordinator means abort *)
  | Presumed_nothing
      (** PN: coordinator force-logs commit-pending before Prepare and owns
          recovery and heuristic-damage reporting *)
  | Custom of string
      (** a protocol registered under this name in the [Protocol] registry
          (the extension point for commit protocols beyond the paper) *)

type outcome = Committed | Aborted

(** A subordinate's vote.  [reliable] and [leave_out_ok] are the protected
    variables carried on a YES vote (Sections 4 "Vote Reliable" and
    "Leaving Inactive Partners Out"). *)
type vote =
  | Vote_yes of { reliable : bool; leave_out_ok : bool }
  | Vote_read_only
  | Vote_no

type ack_policy =
  | Early_ack  (** ack as soon as locally committed, propagation in progress *)
  | Late_ack   (** ack only after the whole subtree acknowledged *)

(** Optimization switches for a run.  Each switch corresponds to one
    optimization of Section 4; they compose freely. *)
type opts = {
  read_only : bool;       (** allow read-only votes and phase-2 exclusion *)
  last_agent : bool;      (** delegate the decision to the last subordinate *)
  unsolicited_vote : bool;(** self-prepared servers vote without Prepare *)
  leave_out : bool;       (** exclude suspended OK-TO-LEAVE-OUT subtrees *)
  shared_log : bool;      (** colocated LRM members skip their own forces *)
  long_locks : bool;      (** ack piggybacks on next-transaction data *)
  ack : ack_policy;
  vote_reliable : bool;   (** reliable voters use implied acks *)
  wait_for_outcome : bool;(** one recovery attempt, then "outcome pending" *)
}

let no_opts =
  {
    read_only = false;
    last_agent = false;
    unsolicited_vote = false;
    leave_out = false;
    shared_log = false;
    long_locks = false;
    ack = Late_ack;
    vote_reliable = false;
    wait_for_outcome = false;
  }

(** When an in-doubt participant loses patience (Section 1: heuristic
    decisions are "a practical necessity in the commercial environment"). *)
type heuristic_policy =
  | Heuristic_never
  | Heuristic_commit_after of float
  | Heuristic_abort_after of float

(** Crash-injection points inside the commit protocol, named from the
    perspective of the crashing node. *)
type crash_point =
  | Cp_on_prepare          (** subordinate: Prepare received, nothing logged *)
  | Cp_after_prepared_log  (** subordinate: Prepared durable, vote not sent *)
  | Cp_after_vote          (** subordinate: in doubt *)
  | Cp_before_decision_log (** coordinator: decided, nothing durable *)
  | Cp_after_decision_log  (** coordinator: outcome durable, nothing sent *)
  | Cp_after_decision_received (** subordinate: outcome known, not yet durable *)
  | Cp_before_ack          (** subordinate: locally finished, ack unsent *)
  | Cp_after_commit_pending (** PN coordinator: commit-pending durable *)

type fault = {
  f_node : string;
  f_point : crash_point;
  f_restart_after : float option;  (** [None] = stays down forever *)
}

(** Static description of one commit-tree member. *)
type profile = {
  p_name : string;
  p_updated : bool;       (** performed updates: not eligible for read-only *)
  p_reliable : bool;      (** LRM declares heuristics vanishingly unlikely *)
  p_leave_out_ok : bool;  (** pure server: may be suspended and left out *)
  p_left_out : bool;      (** this transaction: did no work, gets left out *)
  p_unsolicited : bool;   (** votes without waiting for Prepare *)
  p_vote_no : bool;       (** forced NO vote (abort-path testing) *)
  p_shares_parent_log : bool; (** colocated LRM member (shared-log opt) *)
  p_long_locks : bool;    (** defers its ack onto next-transaction data *)
  p_heuristic : heuristic_policy;
}

let member ?(updated = true) ?(reliable = false) ?(leave_out_ok = false)
    ?(left_out = false) ?(unsolicited = false) ?(vote_no = false)
    ?(shares_parent_log = false) ?(long_locks = false)
    ?(heuristic = Heuristic_never) name =
  {
    p_name = name;
    p_updated = updated;
    p_reliable = reliable;
    p_leave_out_ok = leave_out_ok;
    p_left_out = left_out;
    p_unsolicited = unsolicited;
    p_vote_no = vote_no;
    p_shares_parent_log = shares_parent_log;
    p_long_locks = long_locks;
    p_heuristic = heuristic;
  }

(** Commit tree: root is the commit coordinator. *)
type tree = Tree of profile * tree list

let rec tree_size (Tree (_, children)) =
  1 + List.fold_left (fun acc c -> acc + tree_size c) 0 children

let rec tree_members (Tree (p, children)) =
  p :: List.concat_map tree_members children

let tree_profile (Tree (p, _)) = p

(** Per-run protocol configuration. *)
type config = {
  protocol : protocol;
  opts : opts;
  latency : float;          (** default network latency between members *)
  io_latency : float;       (** one physical log force *)
  group_commit : Wal.Log.group option;
  faults : fault list;
  retry_interval : float;   (** decision/ack retransmission period *)
  max_retries : int;        (** bound on automatic retransmissions *)
  prepare_retries : int;
      (** how many times a coordinator re-sends Prepare to silent voters
          before presuming NO; [0] (the default) preserves the classic
          behavior of aborting on the first vote timeout *)
  retry_backoff : float;
      (** multiplier applied to [retry_interval] between successive
          retransmissions (exponential backoff, capped); [1.0] keeps the
          classic fixed-period retransmission *)
  implied_ack_delay : float;
      (** think time before the "next transaction" data message that carries
          implied and long-locks acknowledgments in single-transaction runs *)
  trace_events : bool;
      (** keep the full event timeline in the trace; [false] maintains
          only the aggregate counters (high-volume sweeps with no
          timeline consumer) *)
  bft_f : int;
      (** fault tolerance of the BFT commit variant: the coordinator is
          replicated 2f+1 ways and decisions need f+1 matching
          endorsements; ignored by every other protocol *)
}

let default_config =
  {
    protocol = Presumed_abort;
    opts = no_opts;
    latency = 1.0;
    io_latency = 0.5;
    group_commit = None;
    faults = [];
    (* generous relative to the default latencies so that retransmission and
       in-doubt inquiry never fire during a healthy commit, even over deep
       delegation chains *)
    retry_interval = 150.0;
    max_retries = 40;
    prepare_retries = 0;
    retry_backoff = 1.0;
    implied_ack_delay = 2.0;
    trace_events = true;
    bft_f = 1;
  }

(** {2 List-based options API}

    The preferred way to build an {!opts} value: name the optimizations you
    want and let {!opts_of_list} fold them into the record.  The string forms
    accepted by {!opt_of_string} are the ones the CLI and bench use, so the
    three can't drift. *)

type opt =
  [ `Read_only
  | `Last_agent
  | `Unsolicited_vote
  | `Leave_out
  | `Shared_log
  | `Long_locks
  | `Early_ack
  | `Vote_reliable
  | `Wait_for_outcome ]

let all_opts : opt list =
  [
    `Read_only;
    `Last_agent;
    `Unsolicited_vote;
    `Leave_out;
    `Shared_log;
    `Long_locks;
    `Early_ack;
    `Vote_reliable;
    `Wait_for_outcome;
  ]

let opt_to_string : opt -> string = function
  | `Read_only -> "read-only"
  | `Last_agent -> "last-agent"
  | `Unsolicited_vote -> "unsolicited"
  | `Leave_out -> "leave-out"
  | `Shared_log -> "shared-log"
  | `Long_locks -> "long-locks"
  | `Early_ack -> "early-ack"
  | `Vote_reliable -> "vote-reliable"
  | `Wait_for_outcome -> "wait-for-outcome"

let opt_of_string s : opt option =
  match String.lowercase_ascii s with
  | "read-only" | "readonly" -> Some `Read_only
  | "last-agent" | "last_agent" -> Some `Last_agent
  | "unsolicited" | "unsolicited-vote" -> Some `Unsolicited_vote
  | "leave-out" | "leave_out" -> Some `Leave_out
  | "shared-log" | "shared_log" -> Some `Shared_log
  | "long-locks" | "long_locks" -> Some `Long_locks
  | "early-ack" | "early_ack" -> Some `Early_ack
  | "vote-reliable" | "vote_reliable" | "reliable" -> Some `Vote_reliable
  | "wait-for-outcome" | "wait_for_outcome" -> Some `Wait_for_outcome
  | _ -> None

let apply_opt acc : opt -> opts = function
  | `Read_only -> { acc with read_only = true }
  | `Last_agent -> { acc with last_agent = true }
  | `Unsolicited_vote -> { acc with unsolicited_vote = true }
  | `Leave_out -> { acc with leave_out = true }
  | `Shared_log -> { acc with shared_log = true }
  | `Long_locks -> { acc with long_locks = true }
  | `Early_ack -> { acc with ack = Early_ack }
  | `Vote_reliable -> { acc with vote_reliable = true }
  | `Wait_for_outcome -> { acc with wait_for_outcome = true }

let opts_of_list l = List.fold_left apply_opt no_opts l

let opt_enabled o : opt -> bool = function
  | `Read_only -> o.read_only
  | `Last_agent -> o.last_agent
  | `Unsolicited_vote -> o.unsolicited_vote
  | `Leave_out -> o.leave_out
  | `Shared_log -> o.shared_log
  | `Long_locks -> o.long_locks
  | `Early_ack -> o.ack = Early_ack
  | `Vote_reliable -> o.vote_reliable
  | `Wait_for_outcome -> o.wait_for_outcome

let opts_to_list o = List.filter (opt_enabled o) all_opts

(** {2 Config builders}

    Pipeline-style helpers, e.g.
    [default_config |> with_protocol Basic |> with_opts [ `Read_only ]]. *)

let with_protocol protocol cfg = { cfg with protocol }
let with_opts l cfg = { cfg with opts = opts_of_list l }
let with_faults faults cfg = { cfg with faults }
let with_latency latency cfg = { cfg with latency }
let with_io_latency io_latency cfg = { cfg with io_latency }
let with_trace_events trace_events cfg = { cfg with trace_events }

let with_group_commit ~size ~timeout cfg =
  { cfg with group_commit = Some { Wal.Log.size; timeout } }

let without_group_commit cfg = { cfg with group_commit = None }

let with_retries ~interval ~max cfg =
  { cfg with retry_interval = interval; max_retries = max }

let with_prepare_retries prepare_retries cfg = { cfg with prepare_retries }
let with_retry_backoff retry_backoff cfg = { cfg with retry_backoff }

let with_implied_ack_delay implied_ack_delay cfg = { cfg with implied_ack_delay }
let with_bft_f bft_f cfg = { cfg with bft_f }

let protocol_to_string = function
  | Basic -> "basic-2pc"
  | Presumed_abort -> "presumed-abort"
  | Presumed_nothing -> "presumed-nothing"
  | Custom name -> name

let outcome_to_string = function Committed -> "commit" | Aborted -> "abort"

let vote_to_string = function
  | Vote_yes { reliable; leave_out_ok } ->
      Printf.sprintf "yes%s%s"
        (if reliable then "+reliable" else "")
        (if leave_out_ok then "+leave-out-ok" else "")
  | Vote_read_only -> "read-only"
  | Vote_no -> "no"
