(** Wire protocol of the commit engine.

    One network message (one {e flow} in the paper's accounting) carries a
    list of payloads: piggybacking is how the implied-acknowledgment,
    long-locks and chained-transaction optimizations avoid flows. *)

(** A heuristic decision that turned out to contradict the real outcome,
    reported upward on the acknowledgment path. *)
type damage_report = {
  d_node : string;  (** where the heuristic decision was taken *)
  d_action : Types.outcome;  (** what it unilaterally did *)
  d_outcome : Types.outcome;  (** what the transaction actually decided *)
}

type payload =
  | Prepare of {
      txn : string;
      long_locks : bool;  (** coordinator requests deferred acknowledgment *)
    }
  | Vote_msg of {
      txn : string;
      vote : Types.vote;
      delegation : bool;
          (** true on the coordinator's own YES sent to a last agent: the
              receiver now owns the commit decision *)
      unsolicited : bool;
      implied_ack : bool;
          (** the voter is a reliable resource whose acknowledgment will be
              implied rather than sent (Vote Reliable, Figure 8) *)
    }
  | Decision_msg of { txn : string; outcome : Types.outcome }
  | Ack_msg of {
      txn : string;
      damage : damage_report list;
      pending : bool;  (** wait-for-outcome: subtree resolution in progress *)
    }
  | Data of { txn : string; info : string }
      (** application data; begins work at the receiver and serves as the
          implied acknowledgment for any outcome the receiver was awaiting *)
  | Inquiry of { txn : string }
      (** PA subordinate-initiated recovery: "what happened to [txn]?" *)
  | Inquiry_reply of { txn : string; outcome : Types.outcome option }
      (** [None] = no information (PA: presume abort) *)

val payload_txn : payload -> string
(** The transaction a payload belongs to. *)

val payload_label : payload -> string
(** Human-readable label, e.g. ["Prepare(long-locks)"], ["Vote YES"] - the
    vocabulary of traces and sequence diagrams. *)

val bundle_label : payload list -> string
(** Labels of a piggybacked bundle joined with [" + "]. *)
