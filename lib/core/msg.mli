(** Wire protocol of the commit engine.

    One network message (one {e flow} in the paper's accounting) carries a
    list of payloads: piggybacking is how the implied-acknowledgment,
    long-locks and chained-transaction optimizations avoid flows. *)

(** A heuristic decision that turned out to contradict the real outcome,
    reported upward on the acknowledgment path. *)
type damage_report = {
  d_node : string;  (** where the heuristic decision was taken *)
  d_action : Types.outcome;  (** what it unilaterally did *)
  d_outcome : Types.outcome;  (** what the transaction actually decided *)
}

(** {2 BFT decision certificates}

    The BFT commit variant ({!Protocol_bft}) replicates the coordinator
    over 2f+1 replicas; a decision is only actionable when carried by a
    certificate of at least f+1 matching endorsements over the same vote
    set.  Signatures are simulated with a deterministic digest: honest
    nodes recompute and check them, and the chaos adversary can only
    produce them for replicas it has corrupted. *)

type endorsement = {
  e_replica : int;  (** replica index in [0, 2f] *)
  e_outcome : Types.outcome;
  e_votes : string;  (** digest of the vote set the replica endorsed *)
  e_sig : string;  (** simulated signature binding replica/txn/outcome/votes *)
}

type certificate = { c_endorsements : endorsement list }

val digest : string -> string
(** Deterministic 30-bit FNV-1a digest, hex-printed. *)

val endorse :
  replica:int -> txn:string -> outcome:Types.outcome -> votes:string ->
  endorsement
(** Build one replica's endorsement, correctly signed. *)

val certificate_valid :
  f:int -> txn:string -> outcome:Types.outcome -> certificate -> bool
(** True iff the certificate carries at least f+1 endorsements from
    distinct replicas in [0, 2f], every signature recomputes, every
    endorsement names [outcome], and all endorsements cover the same vote
    set. *)

val vote_tag : src:string -> txn:string -> Types.vote -> string
(** Simulated voter signature over (voter, txn, vote); lets a BFT
    coordinator detect votes flipped in flight. *)

val cert_to_string : certificate -> string
(** WAL payload encoding; round-trips through {!cert_of_string}. *)

val cert_of_string : string -> certificate option
(** [None] on the empty string or any malformed input. *)

type payload =
  | Prepare of {
      txn : string;
      long_locks : bool;  (** coordinator requests deferred acknowledgment *)
    }
  | Vote_msg of {
      txn : string;
      vote : Types.vote;
      delegation : bool;
          (** true on the coordinator's own YES sent to a last agent: the
              receiver now owns the commit decision *)
      unsolicited : bool;
      implied_ack : bool;
          (** the voter is a reliable resource whose acknowledgment will be
              implied rather than sent (Vote Reliable, Figure 8) *)
      tag : string;
          (** simulated voter signature ({!vote_tag}); [""] under the
              non-BFT protocols, which never check it *)
    }
  | Decision_msg of {
      txn : string;
      outcome : Types.outcome;
      cert : certificate option;
          (** BFT decision certificate; [None] under the paper's protocols *)
    }
  | Ack_msg of {
      txn : string;
      damage : damage_report list;
      pending : bool;  (** wait-for-outcome: subtree resolution in progress *)
    }
  | Data of { txn : string; info : string }
      (** application data; begins work at the receiver and serves as the
          implied acknowledgment for any outcome the receiver was awaiting *)
  | Inquiry of { txn : string }
      (** PA subordinate-initiated recovery: "what happened to [txn]?" *)
  | Inquiry_reply of {
      txn : string;
      outcome : Types.outcome option;
          (** [None] = no information (PA: presume abort) *)
      cert : certificate option;
          (** certificate backing a [Some] outcome under BFT *)
    }

val payload_txn : payload -> string
(** The transaction a payload belongs to. *)

val payload_label : payload -> string
(** Human-readable label, e.g. ["Prepare(long-locks)"], ["Vote YES"] - the
    vocabulary of traces and sequence diagrams. *)

val bundle_label : payload list -> string
(** Labels of a piggybacked bundle joined with [" + "]. *)
