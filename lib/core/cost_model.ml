(** Closed-form cost model: the formulas behind the paper's Tables 2, 3, 4.

    Conventions (Section 5, corrected for OCR noise against the prose of
    Section 4 - see DESIGN.md section 3):

    - a commit tree of [n] members has [n-1] edges, each carrying
      Prepare / Vote / Decision / Ack = 4 flows under the baseline protocol;
    - the coordinator writes 2 records (Committed forced, End non-forced);
      every other member writes 3 (Prepared forced, Committed forced, End
      non-forced), so baseline totals are [4(n-1)] flows, [3n-1] writes,
      [2n-1] forced writes;
    - each optimization used by [m] members adjusts those totals by the
      per-member savings stated in Section 4 of the paper.

    The simulator is validated against this model: tests assert that
    {!Run.commit} produces byte-for-byte identical counts. *)

type counts = { flows : int; writes : int; forced : int }

let pp_counts ppf { flows; writes; forced } =
  Format.fprintf ppf "(%d flows, %d writes, %d forced)" flows writes forced

type optimization =
  | Read_only_opt
  | Last_agent_opt
  | Unsolicited_vote_opt
  | Leave_out_opt
  | Vote_reliable_opt
  | Wait_for_outcome_opt
  | Shared_log_opt
  | Long_locks_opt

let optimization_to_string = function
  | Read_only_opt -> "read-only"
  | Last_agent_opt -> "last-agent"
  | Unsolicited_vote_opt -> "unsolicited-vote"
  | Leave_out_opt -> "leave-out"
  | Vote_reliable_opt -> "vote-reliable"
  | Wait_for_outcome_opt -> "wait-for-outcome"
  | Shared_log_opt -> "shared-log"
  | Long_locks_opt -> "long-locks"

let all_optimizations =
  [
    Read_only_opt;
    Last_agent_opt;
    Unsolicited_vote_opt;
    Leave_out_opt;
    Vote_reliable_opt;
    Wait_for_outcome_opt;
    Shared_log_opt;
    Long_locks_opt;
  ]

(* ------------------------------------------------------------------ *)
(* Totals over a commit tree (Table 3)                                 *)
(* ------------------------------------------------------------------ *)

let basic ~n =
  { flows = 4 * (n - 1); writes = (3 * n) - 1; forced = (2 * n) - 1 }

(** Presumed Nothing: the coordinator adds one forced commit-pending
    record, every subordinate adds one forced agent record (Table 2 row
    "PN"), and every {e cascaded} coordinator adds its own forced
    commit-pending record before propagating Prepare (Figure 3).
    [cascaded] is the number of internal non-root members (0 in a flat
    tree). *)
let presumed_nothing ?(cascaded = 0) ~n () =
  let b = basic ~n in
  {
    flows = b.flows;
    writes = b.writes + n + cascaded;
    forced = b.forced + n + cascaded;
  }

(** PA abort case where the lone decision maker hears a NO: no logging
    anywhere, no acks (per abort-voting member one flow is saved and the
    Ack flow disappears).  Exposed for the Table 2 abort row with n=2. *)
let pa_abort_two_members = { flows = 3; writes = 0; forced = 0 }

(** Byzantine-tolerant commit: on top of the baseline tree cost, the
    decision maker runs a [2f+1]-replica endorsement round (4 flows and 2
    forced writes per extra replica - request/endorse both ways and each
    replica's forced endorsement record, charged to the ensemble) and
    every member appends one certificate record that hardens with the
    outcome force it precedes ([n] non-forced writes).  With [f = 0] the
    certificate degenerates to a self-endorsement and only the appends
    remain. *)
let bft ~f ~n =
  let b = basic ~n in
  let f = max 0 f in
  {
    flows = b.flows + (4 * f);
    writes = b.writes + (2 * f) + n;
    forced = b.forced + (2 * f);
  }

(** Per-member savings of each optimization, as stated in Section 4. *)
let savings = function
  | Read_only_opt -> (2, 3, 2) (* flows, writes, forced saved per member *)
  | Last_agent_opt -> (2, 0, 0)
  | Unsolicited_vote_opt -> (1, 0, 0)
  | Leave_out_opt -> (4, 3, 2)
  | Vote_reliable_opt -> (1, 0, 0)
  | Wait_for_outcome_opt -> (0, 0, 0)
  | Shared_log_opt -> (0, 0, 2)
  | Long_locks_opt -> (1, 0, 0)

let with_optimization opt ~n ~m =
  let b = basic ~n in
  let df, dw, dforced = savings opt in
  {
    flows = b.flows - (df * m);
    writes = b.writes - (dw * m);
    forced = b.forced - (dforced * m);
  }

(* ------------------------------------------------------------------ *)
(* Table 2: two participants, per-side breakdown                       *)
(* ------------------------------------------------------------------ *)

type side = { s_flows : int; s_writes : int; s_forced : int }

type table2_row = {
  t2_label : string;
  coordinator : side;
  subordinate : side;
}

let table2 : table2_row list =
  let side f w fo = { s_flows = f; s_writes = w; s_forced = fo } in
  [
    { t2_label = "Basic 2PC"; coordinator = side 2 2 1; subordinate = side 2 3 2 };
    { t2_label = "PN"; coordinator = side 2 3 2; subordinate = side 2 4 3 };
    {
      t2_label = "PA, Commit case";
      coordinator = side 2 2 1;
      subordinate = side 2 3 2;
    };
    {
      t2_label = "PA, Abort case";
      coordinator = side 2 0 0;
      subordinate = side 1 0 0;
    };
    {
      t2_label = "PA, Read-Only case";
      coordinator = side 1 0 0;
      subordinate = side 1 0 0;
    };
    {
      t2_label = "PA & Last-Agent";
      coordinator = side 1 3 2;
      subordinate = side 1 2 1;
    };
    {
      t2_label = "PA & Unsolicited Vote";
      coordinator = side 1 2 1;
      subordinate = side 2 3 2;
    };
    {
      t2_label = "PA & Leave-Out";
      coordinator = side 0 0 0;
      subordinate = side 0 0 0;
    };
    {
      t2_label = "PA & Vote Reliable";
      coordinator = side 2 2 1;
      subordinate = side 1 3 2;
    };
    {
      t2_label = "PA & Wait For Outcome";
      coordinator = side 2 2 1;
      subordinate = side 2 3 2;
    };
    {
      t2_label = "PA & Shared Logs";
      coordinator = side 2 2 1;
      subordinate = side 2 3 0;
    };
    {
      t2_label = "PA & Long Locks";
      coordinator = side 2 2 1;
      subordinate = side 1 3 2;
    };
  ]

(* ------------------------------------------------------------------ *)
(* Table 3: n members, m of them using one optimization                *)
(* ------------------------------------------------------------------ *)

let table3 ~n ~m =
  ("Basic 2PC", basic ~n)
  :: List.map
       (fun opt ->
         ("PA & " ^ optimization_to_string opt, with_optimization opt ~n ~m))
       all_optimizations

(* ------------------------------------------------------------------ *)
(* Table 4: r chained two-member transactions under long locks         *)
(* ------------------------------------------------------------------ *)

let table4 ~r =
  [
    ("Basic 2PC", { flows = 4 * r; writes = 5 * r; forced = 3 * r });
    ( "PA & Long Locks (not last agent)",
      { flows = 3 * r; writes = 5 * r; forced = 3 * r } );
    ( "PA & Long Locks (last agent)",
      { flows = 3 * r / 2; writes = 5 * r; forced = 3 * r } );
  ]

(** Chained long-locks transactions without the last-agent optimization:
    per transaction, Prepare / Vote / Decision, with the Ack riding the next
    transaction's opening data message. *)
let long_locks_flows ~r = 3 * r

(** Figure 7 / Table 4: long locks combined with last agent commits two
    transactions in three flows. *)
let long_locks_last_agent_flows ~r = 3 * r / 2

(* ------------------------------------------------------------------ *)
(* Group commit (Section 4, "Group Commits")                           *)
(* ------------------------------------------------------------------ *)

(** The paper's stated average saving in forced writes for [n] transactions
    under group size [m], assuming one member of each transaction per node. *)
let group_commit_saving ~n ~m = 3.0 *. float_of_int n /. (2.0 *. float_of_int m)

(* ------------------------------------------------------------------ *)
(* Table 1: qualitative advantages / disadvantages                     *)
(* ------------------------------------------------------------------ *)

type table1_row = {
  t1_optimization : string;
  advantages : string list;
  disadvantages : string list;
}

let table1 : table1_row list =
  [
    {
      t1_optimization = "Read Only";
      advantages =
        [ "fewer messages"; "fewer log writes"; "early release of locks" ];
      disadvantages =
        [
          "no knowledge of the outcome of a transaction";
          "potential serializability problems";
        ];
    };
    {
      t1_optimization = "Last Agent";
      advantages = [ "fewer messages"; "early release of locks" ];
      disadvantages = [ "one extra forced write possible" ];
    };
    {
      t1_optimization = "Unsolicited Vote";
      advantages = [ "fewer messages"; "early release of locks" ];
      disadvantages = [ "application specific" ];
    };
    {
      t1_optimization = "OK To Leave Out";
      advantages = [ "no log writes"; "no messages" ];
      disadvantages = [];
    };
    {
      t1_optimization = "Vote Reliable";
      advantages = [ "fewer message flows" ];
      disadvantages =
        [
          "damage reporting to root coordinator lost if reliable resource \
           does take a heuristic decision";
        ];
    };
    {
      t1_optimization = "Wait For Outcome";
      advantages = [ "2PC doesn't block for most network partitions" ];
      disadvantages =
        [ "complete outcome of transaction may not be known by coordinator" ];
    };
    {
      t1_optimization = "Long Locks";
      advantages = [ "fewer network flows" ];
      disadvantages =
        [
          "commit decision can be delayed and locks held longer if combined \
           with last-agent optimization, and no messages flow for the next \
           transaction (application design problem)";
        ];
    };
    {
      t1_optimization = "Shared Logs";
      advantages = [ "fewer forced writes" ];
      disadvantages =
        [
          "independence of resource manager and transaction manager sacrificed";
        ];
    };
    {
      t1_optimization = "Group Commit";
      advantages =
        [ "fewer forced writes"; "overall system throughput maximized" ];
      disadvantages = [ "longer lock holding times for individual transactions" ];
    };
  ]
