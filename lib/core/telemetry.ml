(** Span-based telemetry derived from the event trace.

    Two exportable views of a {!Trace.t}:

    - {b Phase spans}: per-node intervals for the 2PC phases ([prepare],
      [voting], [decision], [phase-two], [ack]), derived from the trace's
      message, log and decision events, with parent links mirroring the
      commit tree.  {!chrome_trace} renders them as Chrome trace-event
      JSON — the [traceEvents] format Perfetto and [chrome://tracing]
      open directly.
    - {b Structured events}: one JSON object per trace event
      ({!event_to_json}), streamed as JSONL by the CLI's [--events].

    Span derivation is anchor-based and total: every boundary falls back
    to the previous one, so a node that appears in the trace at all gets
    all five phase spans (degenerate phases have zero duration), whatever
    protocol variant or optimization set produced the trace. *)

let phase_names = [ "prepare"; "voting"; "decision"; "phase-two"; "ack" ]

(* ------------------------------------------------------------------ *)
(* Span derivation                                                     *)
(* ------------------------------------------------------------------ *)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let is_prepare l = contains l "Prepare"
let is_vote l = contains l "Vote"
let is_decision l = contains l "Commit" || contains l "Abort" || contains l "Outcome"
let is_ack l = contains l "Ack"

(* Does the event involve [node] as the acting member? *)
let involves node = function
  | Trace.Send { src; _ } -> src = node
  | Trace.Deliver { dst; _ } -> dst = node
  | Trace.Log_write { node = n; _ }
  | Trace.Decide { node = n; _ }
  | Trace.Complete { node = n; _ }
  | Trace.Heuristic { node = n; _ }
  | Trace.Locks_released { node = n; _ }
  | Trace.Crash { node = n; _ }
  | Trace.Restart { node = n; _ }
  | Trace.Note { node = n; _ } ->
      n = node
  | Trace.Damage_detected { node = n; reported_to; _ } ->
      n = node || reported_to = node

(* First event satisfying [p], optionally at or after [after]. *)
let first_time ?(after = neg_infinity) events p =
  List.find_map
    (fun e ->
      let time = Trace.event_time e in
      if time >= after && p e then Some time else None)
    events

let last_time events p =
  List.fold_left
    (fun acc e -> if p e then Some (Trace.event_time e) else acc)
    None events

(** Derive the five phase spans for one node.  [None] when the node never
    appears in the trace (e.g. left out of the commit entirely). *)
let node_spans ?parent events node =
  match first_time events (involves node) with
  | None -> None
  | Some enter ->
      let dflt d o = Option.value ~default:d o in
      let send_l p = function
        | Trace.Send { src; label; _ } -> src = node && p label
        | _ -> false
      in
      let deliver_l p = function
        | Trace.Deliver { dst; label; _ } -> dst = node && p label
        | _ -> false
      in
      let log_k ks = function
        | Trace.Log_write { node = n; kind; rm = false; _ } ->
            n = node && List.mem kind ks
        | _ -> false
      in
      let decide = function Trace.Decide { node = n; _ } -> n = node | _ -> false in
      let complete = function Trace.Complete { node = n; _ } -> n = node | _ -> false in
      let released = function
        | Trace.Locks_released { node = n; _ } -> n = node
        | _ -> false
      in
      (* prepare: learning of the commit / disseminating Prepare downward *)
      let prep_end =
        dflt enter
          (match last_time events (send_l is_prepare) with
          | Some t -> Some t
          | None -> (
              match first_time events (log_k [ Wal.Log_record.Prepared ]) with
              | Some t -> Some t
              | None -> first_time events (send_l is_vote)))
      in
      let prep_end = Float.max enter prep_end in
      (* voting: until the vote leaves (subordinate) or the decision is
         reached (coordinator / delegate) *)
      let vote_end =
        dflt prep_end
          (match first_time events decide with
          | Some t -> Some t
          | None -> (
              match first_time events (send_l is_vote) with
              | Some t -> Some t
              | None -> first_time events (deliver_l is_decision)))
      in
      let vote_end = Float.max prep_end vote_end in
      (* decision: outcome known -> outcome durable and locks released *)
      let dec_start =
        dflt vote_end
          (match first_time events decide with
          | Some t -> Some t
          | None -> first_time events (deliver_l is_decision))
      in
      let dec_start = Float.max vote_end dec_start in
      let dec_end =
        dflt dec_start
          (match first_time ~after:dec_start events released with
          | Some t -> Some t
          | None ->
              first_time ~after:dec_start events
                (log_k
                   Wal.Log_record.
                     [ Committed; Aborted; Heuristic_commit; Heuristic_abort ]))
      in
      let dec_end = Float.max dec_start dec_end in
      (* phase-two: propagating the outcome / waiting for acknowledgments *)
      let p2_end =
        dflt dec_end
          (match last_time events (deliver_l is_ack) with
          | Some t -> Some t
          | None -> (
              match first_time ~after:dec_end events (send_l is_ack) with
              | Some t -> Some t
              | None -> first_time events complete))
      in
      let p2_end = Float.max dec_end p2_end in
      (* ack/forget: the END record and application notification *)
      let node_end =
        Float.max p2_end
          (dflt p2_end
             (last_time events (fun e ->
                  log_k [ Wal.Log_record.End ] e || complete e)))
      in
      let mk name start stop =
        Obs.Span.make ?parent ~node ~start ~stop name
      in
      Some
        [
          mk "prepare" enter prep_end;
          mk "voting" prep_end vote_end;
          mk "decision" dec_start dec_end;
          mk "phase-two" dec_end p2_end;
          mk "ack" p2_end node_end;
        ]

let spans_for trace ~nodes =
  let events = Trace.events trace in
  List.concat_map
    (fun (node, parent) ->
      Option.value ~default:[] (node_spans ?parent events node))
    nodes

(* depth-first member list with each member's parent *)
let rec tree_nodes ?parent (Types.Tree (p, children)) =
  (p.Types.p_name, parent)
  :: List.concat_map (tree_nodes ~parent:p.Types.p_name) children

let spans trace ~tree = spans_for trace ~nodes:(tree_nodes tree)

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export                                           *)
(* ------------------------------------------------------------------ *)

(* One simulation time unit renders as one millisecond: Perfetto expects
   [ts]/[dur] in microseconds. *)
let default_time_scale = 1000.0

let chrome_span ~scale ~tid (s : Obs.Span.t) =
  Json.Obj
    [
      ("name", Json.String s.Obs.Span.sp_name);
      ("cat", Json.String s.Obs.Span.sp_cat);
      ("ph", Json.String "X");
      ("ts", Json.Float (s.Obs.Span.sp_start *. scale));
      ("dur", Json.Float (s.Obs.Span.sp_dur *. scale));
      ("pid", Json.Int 0);
      ("tid", Json.Int tid);
      ( "args",
        Json.Obj
          (("node", Json.String s.Obs.Span.sp_node)
          :: (match s.Obs.Span.sp_parent with
             | Some p -> [ ("parent", Json.String p) ]
             | None -> [])
          @ List.map
              (fun (k, v) -> (k, Json.String v))
              s.Obs.Span.sp_args) );
    ]

let chrome_instant ~scale ~tid ~time name =
  Json.Obj
    [
      ("name", Json.String name);
      ("cat", Json.String "event");
      ("ph", Json.String "i");
      ("ts", Json.Float (time *. scale));
      ("pid", Json.Int 0);
      ("tid", Json.Int tid);
      ("s", Json.String "t");
    ]

let thread_meta ~tid name =
  Json.Obj
    [
      ("name", Json.String "thread_name");
      ("ph", Json.String "M");
      ("pid", Json.Int 0);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("name", Json.String name) ]);
    ]

let chrome_trace ?(time_scale = default_time_scale) trace ~tree =
  let nodes = tree_nodes tree in
  let tid_of =
    let tbl = Hashtbl.create 8 in
    List.iteri (fun i (n, _) -> Hashtbl.replace tbl n i) nodes;
    fun n -> Option.value ~default:(List.length nodes) (Hashtbl.find_opt tbl n)
  in
  let meta =
    Json.Obj
      [
        ("name", Json.String "process_name");
        ("ph", Json.String "M");
        ("pid", Json.Int 0);
        ("args", Json.Obj [ ("name", Json.String "tpc_sim") ]);
      ]
    :: List.mapi (fun i (n, _) -> thread_meta ~tid:i n) nodes
  in
  let span_events =
    List.map
      (fun (s : Obs.Span.t) ->
        chrome_span ~scale:time_scale ~tid:(tid_of s.Obs.Span.sp_node) s)
      (spans_for trace ~nodes)
  in
  let instants =
    List.filter_map
      (fun e ->
        let inst node name time =
          Some (chrome_instant ~scale:time_scale ~tid:(tid_of node) ~time name)
        in
        match e with
        | Trace.Decide { time; node; outcome } ->
            inst node ("decide " ^ Types.outcome_to_string outcome) time
        | Trace.Complete { time; node; outcome; pending } ->
            inst node
              (Printf.sprintf "complete %s%s"
                 (Types.outcome_to_string outcome)
                 (if pending then " (pending)" else ""))
              time
        | Trace.Heuristic { time; node; action } ->
            inst node ("HEURISTIC " ^ Types.outcome_to_string action) time
        | Trace.Crash { time; node } -> inst node "CRASH" time
        | Trace.Restart { time; node } -> inst node "restart" time
        | Trace.Damage_detected { time; node; _ } -> inst node "damage" time
        | _ -> None)
      (Trace.events trace)
  in
  (* Message propagation as Perfetto flow arrows: an "s" event on the
     sender's track paired with a binding-point "f" on the receiver's,
     sharing the flow id trace.ml assigned when it matched the send to
     its delivery. *)
  let flow_events =
    List.concat_map
      (fun (id, src, dst, label, sent, delivered) ->
        let common ph tid time =
          [
            ("name", Json.String label);
            ("cat", Json.String "msg");
            ("ph", Json.String ph);
            ("id", Json.Int id);
            ("ts", Json.Float (time *. time_scale));
            ("pid", Json.Int 0);
            ("tid", Json.Int tid);
          ]
        in
        [
          Json.Obj (common "s" (tid_of src) sent);
          Json.Obj (common "f" (tid_of dst) delivered @ [ ("bp", Json.String "e") ]);
        ])
      (Trace.matched_flows trace)
  in
  Json.Obj
    [
      ("traceEvents", Json.List (meta @ span_events @ instants @ flow_events));
      ("displayTimeUnit", Json.String "ms");
    ]

(* ------------------------------------------------------------------ *)
(* Structured events (JSONL)                                           *)
(* ------------------------------------------------------------------ *)

(* Schema: every line is an object with "type" and "time"; the remaining
   fields are type-specific and documented in EXPERIMENTS.md. *)
let event_to_json e =
  let f x = Json.Float x and s x = Json.String x and b x = Json.Bool x in
  let obj ty time rest = Json.Obj (("type", s ty) :: ("time", f time) :: rest) in
  match e with
  | Trace.Send { time; src; dst; label; protocol } ->
      obj "send" time
        [ ("src", s src); ("dst", s dst); ("label", s label); ("protocol", b protocol) ]
  | Trace.Deliver { time; src; dst; label } ->
      obj "deliver" time [ ("src", s src); ("dst", s dst); ("label", s label) ]
  | Trace.Log_write { time; node; kind; forced; rm } ->
      obj "log_write" time
        [
          ("node", s node);
          ("kind", s (Wal.Log_record.kind_to_string kind));
          ("forced", b forced);
          ("rm", b rm);
        ]
  | Trace.Decide { time; node; outcome } ->
      obj "decide" time
        [ ("node", s node); ("outcome", s (Types.outcome_to_string outcome)) ]
  | Trace.Complete { time; node; outcome; pending } ->
      obj "complete" time
        [
          ("node", s node);
          ("outcome", s (Types.outcome_to_string outcome));
          ("pending", b pending);
        ]
  | Trace.Heuristic { time; node; action } ->
      obj "heuristic" time
        [ ("node", s node); ("action", s (Types.outcome_to_string action)) ]
  | Trace.Damage_detected { time; node; reported_to } ->
      obj "damage_detected" time
        [ ("node", s node); ("reported_to", s reported_to) ]
  | Trace.Locks_released { time; node } ->
      obj "locks_released" time [ ("node", s node) ]
  | Trace.Crash { time; node } -> obj "crash" time [ ("node", s node) ]
  | Trace.Restart { time; node } -> obj "restart" time [ ("node", s node) ]
  | Trace.Note { time; node; text } ->
      obj "note" time [ ("node", s node); ("text", s text) ]

let events_to_jsonl trace =
  match Trace.events trace with
  | [] -> ""
  | events ->
      String.concat "\n"
        (List.map (fun e -> Json.to_string (event_to_json e)) events)
      ^ "\n"
