module Make (P : sig
  type t
end) =
struct
  type handler = src:string -> P.t list -> unit

  type node_state = {
    name : string;
    mutable handler : handler;
    mutable up : bool;
    mutable sent : int;
    mutable received : int;
  }

  type t = {
    engine : Simkernel.Engine.t;
    default_latency : float;
    nodes : (string, int) Hashtbl.t; (* name -> index into node_arr *)
    mutable node_arr : node_state array;
    mutable n_nodes : int;
    latencies : (string * string, float) Hashtbl.t;
    directed_latencies : (string * string, float) Hashtbl.t;
    partitions : (string * string, unit) Hashtbl.t;
    directed_sent : (string * string, int ref) Hashtbl.t;
    drops : (string * string, int list ref) Hashtbl.t;
    mutable jitter : (src:string -> dst:string -> float) option;
    mutable mutator : (src:string -> dst:string -> P.t list -> P.t list) option;
    mutable total_flows : int;
    (* In-flight payload bundles live in a freelist-chained slot arena so a
       delivery schedules as a flat event (kind + int slots), not a closure.
       [inflight_next.(s)] chains free slots; [-1] terminates. *)
    deliver : Simkernel.Engine.kind;
    mutable inflight : P.t list array;
    mutable inflight_next : int array;
    mutable inflight_free : int;
  }

  let no_node =
    {
      name = "";
      handler = (fun ~src:_ _ -> ());
      up = false;
      sent = 0;
      received = 0;
    }

  (* Fired by the engine for every delivery: a0 = payload slot, a1 = dst
     index, a2 = src index.  The slot is released before the handler runs so
     re-entrant sends can reuse it. *)
  let deliver_flat t slot dst src =
    let payloads = t.inflight.(slot) in
    t.inflight.(slot) <- [];
    t.inflight_next.(slot) <- t.inflight_free;
    t.inflight_free <- slot;
    let d = t.node_arr.(dst) in
    if d.up then begin
      d.received <- d.received + 1;
      d.handler ~src:t.node_arr.(src).name payloads
    end

  let create engine ?(default_latency = 1.0) () =
    let cap = 64 in
    let tref = ref None in
    let deliver =
      Simkernel.Engine.register_kind engine ~name:"net.deliver"
        (fun a0 a1 a2 _ ->
          match !tref with Some t -> deliver_flat t a0 a1 a2 | None -> ())
    in
    let t =
      {
        engine;
        default_latency;
        nodes = Hashtbl.create 16;
        node_arr = Array.make 8 no_node;
        n_nodes = 0;
        latencies = Hashtbl.create 16;
        directed_latencies = Hashtbl.create 4;
        partitions = Hashtbl.create 4;
        directed_sent = Hashtbl.create 16;
        drops = Hashtbl.create 4;
        jitter = None;
        mutator = None;
        total_flows = 0;
        deliver;
        inflight = Array.make cap [];
        inflight_next = Array.init cap (fun i -> if i = cap - 1 then -1 else i + 1);
        inflight_free = 0;
      }
    in
    tref := Some t;
    t

  let engine t = t.engine

  let inflight_alloc t payloads =
    if t.inflight_free = -1 then begin
      let cap = Array.length t.inflight in
      let cap' = 2 * cap in
      let inflight = Array.make cap' [] in
      Array.blit t.inflight 0 inflight 0 cap;
      let next = Array.init cap' (fun i -> if i = cap' - 1 then -1 else i + 1) in
      Array.blit t.inflight_next 0 next 0 cap;
      t.inflight <- inflight;
      t.inflight_next <- next;
      t.inflight_free <- cap
    end;
    let s = t.inflight_free in
    t.inflight_free <- t.inflight_next.(s);
    t.inflight.(s) <- payloads;
    s

  let node_index t name =
    match Hashtbl.find_opt t.nodes name with
    | Some i -> i
    | None -> invalid_arg (Printf.sprintf "netsim: unknown node %S" name)

  let node_state t name = t.node_arr.(node_index t name)

  let add_node t name handler =
    if Hashtbl.mem t.nodes name then
      invalid_arg (Printf.sprintf "netsim: duplicate node %S" name);
    if t.n_nodes = Array.length t.node_arr then begin
      let bigger = Array.make (2 * t.n_nodes) no_node in
      Array.blit t.node_arr 0 bigger 0 t.n_nodes;
      t.node_arr <- bigger
    end;
    t.node_arr.(t.n_nodes) <- { name; handler; up = true; sent = 0; received = 0 };
    Hashtbl.replace t.nodes name t.n_nodes;
    t.n_nodes <- t.n_nodes + 1

  let set_handler t name handler = (node_state t name).handler <- handler

  let pair a b = if a <= b then (a, b) else (b, a)

  let set_latency t a b l = Hashtbl.replace t.latencies (pair a b) l

  let set_latency_directed t ~src ~dst l =
    Hashtbl.replace t.directed_latencies (src, dst) l

  let latency t a b =
    match Hashtbl.find_opt t.directed_latencies (a, b) with
    | Some l -> l
    | None -> (
        match Hashtbl.find_opt t.latencies (pair a b) with
        | Some l -> l
        | None -> t.default_latency)

  let set_jitter t f = t.jitter <- f
  let set_mutator t f = t.mutator <- f

  let partition t a b = Hashtbl.replace t.partitions (pair a b) ()
  let heal t a b = Hashtbl.remove t.partitions (pair a b)
  let partitioned t a b = Hashtbl.mem t.partitions (pair a b)

  let cell tbl key init =
    match Hashtbl.find_opt tbl key with
    | Some r -> r
    | None ->
        let r = ref init in
        Hashtbl.replace tbl key r;
        r

  let drop_nth t ~src ~dst ~nth =
    if nth < 1 then invalid_arg "netsim: drop_nth expects nth >= 1";
    let sent = !(cell t.directed_sent (src, dst) 0) in
    let drops = cell t.drops (src, dst) [] in
    drops := (sent + nth) :: !drops

  let crash_node t name = (node_state t name).up <- false
  let restart_node t name = (node_state t name).up <- true
  let is_up t name = (node_state t name).up

  let send t ~src ~dst payloads =
    let si = node_index t src in
    let di = node_index t dst in
    let s = t.node_arr.(si) in
    if (not s.up) || partitioned t src dst then false
    else begin
      (* The message left the source: it is a flow whether or not it arrives. *)
      t.total_flows <- t.total_flows + 1;
      s.sent <- s.sent + 1;
      let seq = cell t.directed_sent (src, dst) 0 in
      incr seq;
      let lost =
        match Hashtbl.find_opt t.drops (src, dst) with
        | Some drops when List.mem !seq !drops ->
            drops := List.filter (fun n -> n <> !seq) !drops;
            true
        | _ -> false
      in
      if not lost then begin
        (* adversarial relay: a mutator may rewrite the payload bundle in
           flight (equivocation, vote flipping).  The sender's trace already
           recorded what it believes it sent. *)
        let payloads =
          match t.mutator with
          | None -> payloads
          | Some f -> f ~src ~dst payloads
        in
        let l =
          latency t src dst
          +.
          match t.jitter with
          | None -> 0.0
          | Some f -> Float.max 0.0 (f ~src ~dst)
        in
        let slot = inflight_alloc t payloads in
        ignore
          (Simkernel.Engine.schedule_flat t.engine ~delay:l ~kind:t.deliver
             ~a0:slot ~a1:di ~a2:si)
      end;
      true
    end

  (* A fabricated message: it never left [src] (no sent counter, no flow,
     no drop bookkeeping) but arrives at [dst] claiming to be from [src]
     after the link's base latency.  Partitions do not stop it - the
     adversary is on the wire, not at the (possibly partitioned) source. *)
  let inject t ~src ~dst payloads =
    let di = node_index t dst in
    let l = latency t src dst in
    match Hashtbl.find_opt t.nodes src with
    | Some si ->
        let slot = inflight_alloc t payloads in
        ignore
          (Simkernel.Engine.schedule_flat t.engine ~delay:l ~kind:t.deliver
             ~a0:slot ~a1:di ~a2:si)
    | None ->
        (* a forged sender need not be a registered node; the claimed name
           travels in a closure instead of the flat src index *)
        let d = t.node_arr.(di) in
        ignore
          (Simkernel.Engine.schedule t.engine ~delay:l (fun () ->
               if d.up then begin
                 d.received <- d.received + 1;
                 d.handler ~src payloads
               end))

  let flows t = t.total_flows
  let sent_by t name = (node_state t name).sent
  let received_by t name = (node_state t name).received

  let reset_stats t =
    t.total_flows <- 0;
    for i = 0 to t.n_nodes - 1 do
      let s = t.node_arr.(i) in
      s.sent <- 0;
      s.received <- 0
    done
end
