module Make (P : sig
  type t
end) =
struct
  type handler = src:string -> P.t list -> unit

  type node_state = {
    mutable handler : handler;
    mutable up : bool;
    mutable sent : int;
    mutable received : int;
  }

  type t = {
    engine : Simkernel.Engine.t;
    default_latency : float;
    nodes : (string, node_state) Hashtbl.t;
    latencies : (string * string, float) Hashtbl.t;
    directed_latencies : (string * string, float) Hashtbl.t;
    partitions : (string * string, unit) Hashtbl.t;
    directed_sent : (string * string, int ref) Hashtbl.t;
    drops : (string * string, int list ref) Hashtbl.t;
    mutable jitter : (src:string -> dst:string -> float) option;
    mutable mutator : (src:string -> dst:string -> P.t list -> P.t list) option;
    mutable total_flows : int;
  }

  let create engine ?(default_latency = 1.0) () =
    {
      engine;
      default_latency;
      nodes = Hashtbl.create 16;
      latencies = Hashtbl.create 16;
      directed_latencies = Hashtbl.create 4;
      partitions = Hashtbl.create 4;
      directed_sent = Hashtbl.create 16;
      drops = Hashtbl.create 4;
      jitter = None;
      mutator = None;
      total_flows = 0;
    }

  let engine t = t.engine

  let node_state t name =
    match Hashtbl.find_opt t.nodes name with
    | Some s -> s
    | None -> invalid_arg (Printf.sprintf "netsim: unknown node %S" name)

  let add_node t name handler =
    if Hashtbl.mem t.nodes name then
      invalid_arg (Printf.sprintf "netsim: duplicate node %S" name);
    Hashtbl.replace t.nodes name { handler; up = true; sent = 0; received = 0 }

  let set_handler t name handler = (node_state t name).handler <- handler

  let pair a b = if a <= b then (a, b) else (b, a)

  let set_latency t a b l = Hashtbl.replace t.latencies (pair a b) l

  let set_latency_directed t ~src ~dst l =
    Hashtbl.replace t.directed_latencies (src, dst) l

  let latency t a b =
    match Hashtbl.find_opt t.directed_latencies (a, b) with
    | Some l -> l
    | None -> (
        match Hashtbl.find_opt t.latencies (pair a b) with
        | Some l -> l
        | None -> t.default_latency)

  let set_jitter t f = t.jitter <- f
  let set_mutator t f = t.mutator <- f

  let partition t a b = Hashtbl.replace t.partitions (pair a b) ()
  let heal t a b = Hashtbl.remove t.partitions (pair a b)
  let partitioned t a b = Hashtbl.mem t.partitions (pair a b)

  let cell tbl key init =
    match Hashtbl.find_opt tbl key with
    | Some r -> r
    | None ->
        let r = ref init in
        Hashtbl.replace tbl key r;
        r

  let drop_nth t ~src ~dst ~nth =
    if nth < 1 then invalid_arg "netsim: drop_nth expects nth >= 1";
    let sent = !(cell t.directed_sent (src, dst) 0) in
    let drops = cell t.drops (src, dst) [] in
    drops := (sent + nth) :: !drops

  let crash_node t name = (node_state t name).up <- false
  let restart_node t name = (node_state t name).up <- true
  let is_up t name = (node_state t name).up

  let send t ~src ~dst payloads =
    let s = node_state t src in
    let d = node_state t dst in
    if (not s.up) || partitioned t src dst then false
    else begin
      (* The message left the source: it is a flow whether or not it arrives. *)
      t.total_flows <- t.total_flows + 1;
      s.sent <- s.sent + 1;
      let seq = cell t.directed_sent (src, dst) 0 in
      incr seq;
      let lost =
        match Hashtbl.find_opt t.drops (src, dst) with
        | Some drops when List.mem !seq !drops ->
            drops := List.filter (fun n -> n <> !seq) !drops;
            true
        | _ -> false
      in
      if not lost then begin
        (* adversarial relay: a mutator may rewrite the payload bundle in
           flight (equivocation, vote flipping).  The sender's trace already
           recorded what it believes it sent. *)
        let payloads =
          match t.mutator with
          | None -> payloads
          | Some f -> f ~src ~dst payloads
        in
        let l =
          latency t src dst
          +.
          match t.jitter with
          | None -> 0.0
          | Some f -> Float.max 0.0 (f ~src ~dst)
        in
        ignore
          (Simkernel.Engine.schedule t.engine ~delay:l (fun () ->
               if d.up then begin
                 d.received <- d.received + 1;
                 d.handler ~src payloads
               end))
      end;
      true
    end

  (* A fabricated message: it never left [src] (no sent counter, no flow,
     no drop bookkeeping) but arrives at [dst] claiming to be from [src]
     after the link's base latency.  Partitions do not stop it - the
     adversary is on the wire, not at the (possibly partitioned) source. *)
  let inject t ~src ~dst payloads =
    let d = node_state t dst in
    let l = latency t src dst in
    ignore
      (Simkernel.Engine.schedule t.engine ~delay:l (fun () ->
           if d.up then begin
             d.received <- d.received + 1;
             d.handler ~src payloads
           end))

  let flows t = t.total_flows
  let sent_by t name = (node_state t name).sent
  let received_by t name = (node_state t name).received

  let reset_stats t =
    t.total_flows <- 0;
    Hashtbl.iter
      (fun _ s ->
        s.sent <- 0;
        s.received <- 0)
      t.nodes
end
