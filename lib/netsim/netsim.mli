(** Virtual network for the discrete-event simulation.

    The network is functorized over the payload type so the protocol library
    defines its own message vocabulary.  A {e flow} in the paper's sense is
    one network message; a single flow may carry several piggybacked protocol
    payloads (implied acknowledgments, long-locks acknowledgments, chained
    next-transaction data), which is why [send] takes a payload {e list} and
    counts one flow.

    Delivery model: per ordered pair of nodes, messages are FIFO with a
    constant per-pair latency (default if unset).  Partitions are checked at
    send time (the sender's session breaks); a message in flight to a node
    that crashes before delivery is dropped at delivery time. *)

module Make (P : sig
  type t
end) : sig
  type t

  type handler = src:string -> P.t list -> unit

  val create : Simkernel.Engine.t -> ?default_latency:float -> unit -> t
  (** Default latency is [1.0] virtual seconds. *)

  val engine : t -> Simkernel.Engine.t

  val add_node : t -> string -> handler -> unit
  (** Register a node and its delivery handler.  Raises [Invalid_argument]
      on duplicate registration. *)

  val set_handler : t -> string -> handler -> unit
  (** Replace a node's handler (used when a node restarts with fresh state). *)

  val set_latency : t -> string -> string -> float -> unit
  (** Symmetric per-pair latency override. *)

  val set_latency_directed : t -> src:string -> dst:string -> float -> unit
  (** Per-direction latency override for the [src -> dst] link.  Takes
      precedence over the symmetric override; the reverse direction is
      unaffected (it keeps the symmetric/default value unless overridden
      itself).  Models asymmetric links such as satellite up/downlinks. *)

  val latency : t -> string -> string -> float
  (** Effective base latency from first to second node: directed override,
      else symmetric override, else default. *)

  val set_jitter : t -> (src:string -> dst:string -> float) option -> unit
  (** Install (or clear) a delay-jitter hook.  When set, the hook is called
      once per delivered message and its result (clamped at [0.0]) is added
      to the link's base latency.  A deterministic hook — e.g. one drawing
      from {!Simkernel.Det_rng} — keeps runs reproducible.  Note that
      variable jitter can reorder messages on a link, so the per-pair FIFO
      guarantee no longer holds while a jitter hook is installed. *)

  val set_mutator :
    t -> (src:string -> dst:string -> P.t list -> P.t list) option -> unit
  (** Install (or clear) a per-link message-mutation hook: the adversarial
      counterpart of {!set_jitter} and {!drop_nth}.  When set, every bundle
      that passes the drop check is handed to the hook before delivery is
      scheduled, and whatever the hook returns is what arrives.  The hook
      models a Byzantine relay (equivocating outcomes, flipped votes); the
      sender's own statistics and trace are untouched - it believes it sent
      the original bundle.  A pure, deterministic hook keeps runs
      reproducible.  [None] (the default) delivers bundles verbatim. *)

  val inject : t -> src:string -> dst:string -> P.t list -> unit
  (** Fabricate a delivery: [dst] receives [payloads] after the link's base
      latency with [src] as the claimed sender, but no real send happened -
      the source's sent counter, the flow count and the drop/jitter
      bookkeeping are all bypassed.  Partitions do not block it (the forger
      sits on the wire, not at the source); a crashed destination still
      drops it at delivery time.  This is how faultlab forges stale or
      wrong-transaction prepare/decision retransmissions. *)

  val send : t -> src:string -> dst:string -> P.t list -> bool
  (** Send one message (one flow) carrying the given payload bundle.
      Returns [false] if the message was lost: source or destination crashed,
      or the pair partitioned, at send time.  Lost sends still count as flows
      only when they actually left the source (partitioned/crashed-source
      sends are not counted). *)

  val partition : t -> string -> string -> unit
  val heal : t -> string -> string -> unit
  val partitioned : t -> string -> string -> bool

  val drop_nth : t -> src:string -> dst:string -> nth:int -> unit
  (** Lose the [nth] message (1-based, counted from now) sent from [src] to
      [dst]: it leaves the source (and is counted as a flow) but is never
      delivered.  Used to test retransmission and presumption logic under
      lossy links. *)

  val crash_node : t -> string -> unit
  (** Mark a node down: its in-flight inbound messages are dropped at
      delivery time; subsequent sends to or from it are lost. *)

  val restart_node : t -> string -> unit

  val is_up : t -> string -> bool

  (** {2 Statistics} *)

  val flows : t -> int
  (** Total messages that left a source since the last [reset_stats]. *)

  val sent_by : t -> string -> int
  val received_by : t -> string -> int
  val reset_stats : t -> unit
end
