(** Virtual network for the discrete-event simulation.

    The network is functorized over the payload type so the protocol library
    defines its own message vocabulary.  A {e flow} in the paper's sense is
    one network message; a single flow may carry several piggybacked protocol
    payloads (implied acknowledgments, long-locks acknowledgments, chained
    next-transaction data), which is why [send] takes a payload {e list} and
    counts one flow.

    Delivery model: per ordered pair of nodes, messages are FIFO with a
    constant per-pair latency (default if unset).  Partitions are checked at
    send time (the sender's session breaks); a message in flight to a node
    that crashes before delivery is dropped at delivery time. *)

module Make (P : sig
  type t
end) : sig
  type t

  type handler = src:string -> P.t list -> unit

  val create : Simkernel.Engine.t -> ?default_latency:float -> unit -> t
  (** Default latency is [1.0] virtual seconds. *)

  val engine : t -> Simkernel.Engine.t

  val add_node : t -> string -> handler -> unit
  (** Register a node and its delivery handler.  Raises [Invalid_argument]
      on duplicate registration. *)

  val set_handler : t -> string -> handler -> unit
  (** Replace a node's handler (used when a node restarts with fresh state). *)

  val set_latency : t -> string -> string -> float -> unit
  (** Symmetric per-pair latency override. *)

  val latency : t -> string -> string -> float

  val send : t -> src:string -> dst:string -> P.t list -> bool
  (** Send one message (one flow) carrying the given payload bundle.
      Returns [false] if the message was lost: source or destination crashed,
      or the pair partitioned, at send time.  Lost sends still count as flows
      only when they actually left the source (partitioned/crashed-source
      sends are not counted). *)

  val partition : t -> string -> string -> unit
  val heal : t -> string -> string -> unit
  val partitioned : t -> string -> string -> bool

  val drop_nth : t -> src:string -> dst:string -> nth:int -> unit
  (** Lose the [nth] message (1-based, counted from now) sent from [src] to
      [dst]: it leaves the source (and is counted as a flow) but is never
      delivered.  Used to test retransmission and presumption logic under
      lossy links. *)

  val crash_node : t -> string -> unit
  (** Mark a node down: its in-flight inbound messages are dropped at
      delivery time; subsequent sends to or from it are lost. *)

  val restart_node : t -> string -> unit

  val is_up : t -> string -> bool

  (** {2 Statistics} *)

  val flows : t -> int
  (** Total messages that left a source since the last [reset_stats]. *)

  val sent_by : t -> string -> int
  val received_by : t -> string -> int
  val reset_stats : t -> unit
end
