(* Fixed-size domain pool; see parallel.mli for the contract.

   The pool hands out item indices under a mutex.  Work items here are
   whole simulations (milliseconds to seconds each), so a mutex-protected
   claim loop costs nothing measurable and keeps the logic obviously
   correct: no atomics, no lock-free queue, one generation counter to let
   sleeping workers distinguish "new batch" from "spurious wakeup". *)

let recommended_jobs () = Domain.recommended_domain_count ()

type pool = {
  n_jobs : int;
  mutex : Mutex.t;
  work_ready : Condition.t;  (* new batch published, or shutdown *)
  batch_done : Condition.t;  (* last item of the current batch completed *)
  mutable body : int -> unit;  (* current batch body *)
  mutable generation : int;  (* bumped when a batch is published *)
  mutable next : int;  (* next index to claim *)
  mutable limit : int;  (* items in the current batch *)
  mutable completed : int;  (* items finished in the current batch *)
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
}

let jobs p = p.n_jobs

let no_body (_ : int) = ()

(* Claim-and-run until the batch [gen] is exhausted.  Called with the mutex
   held; returns with it held. *)
let drain_batch p gen =
  let rec claim () =
    if p.generation = gen && p.next < p.limit then begin
      let i = p.next in
      p.next <- i + 1;
      let body = p.body in
      Mutex.unlock p.mutex;
      body i;
      Mutex.lock p.mutex;
      p.completed <- p.completed + 1;
      if p.completed = p.limit then Condition.broadcast p.batch_done;
      claim ()
    end
  in
  claim ()

let worker p =
  Mutex.lock p.mutex;
  let rec live seen_gen =
    while (not p.stopping) && p.generation = seen_gen do
      Condition.wait p.work_ready p.mutex
    done;
    if not p.stopping then begin
      let gen = p.generation in
      drain_batch p gen;
      live gen
    end
  in
  live 0;
  Mutex.unlock p.mutex

let create ~jobs =
  let n_jobs = max 1 jobs in
  let p =
    {
      n_jobs;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      batch_done = Condition.create ();
      body = no_body;
      generation = 0;
      next = 0;
      limit = 0;
      completed = 0;
      stopping = false;
      domains = [];
    }
  in
  (* the submitting domain is the n-th worker *)
  p.domains <- List.init (n_jobs - 1) (fun _ -> Domain.spawn (fun () -> worker p));
  p

let shutdown p =
  Mutex.lock p.mutex;
  p.stopping <- true;
  Condition.broadcast p.work_ready;
  Mutex.unlock p.mutex;
  List.iter Domain.join p.domains;
  p.domains <- []

(* Fan-in: re-raise the lowest-index exception, else unwrap in order. *)
let collect results =
  Array.iter
    (function
      | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
      | Some (Ok _) | None -> ())
    results;
  Array.to_list
    (Array.map
       (function Some (Ok v) -> v | Some (Error _) | None -> assert false)
       results)

let map_pool p f xs =
  match xs with
  | [] -> []
  | xs ->
      let items = Array.of_list xs in
      let n = Array.length items in
      let results = Array.make n None in
      let body i =
        let r =
          try Ok (f items.(i))
          with e -> Error (e, Printexc.get_raw_backtrace ())
        in
        results.(i) <- Some r
      in
      if p.n_jobs = 1 || n = 1 then
        (* calling-domain fallback: no pool traffic at all *)
        for i = 0 to n - 1 do
          body i
        done
      else begin
        Mutex.lock p.mutex;
        p.body <- body;
        p.next <- 0;
        p.limit <- n;
        p.completed <- 0;
        p.generation <- p.generation + 1;
        Condition.broadcast p.work_ready;
        drain_batch p p.generation;
        while p.completed < p.limit do
          Condition.wait p.batch_done p.mutex
        done;
        p.body <- no_body;
        Mutex.unlock p.mutex
      end;
      collect results

let map ~jobs f xs =
  let jobs = max 1 jobs in
  if jobs = 1 then
    (* exact List.map semantics, calling domain, nothing spawned *)
    collect
      (Array.map
         (fun x ->
           Some (try Ok (f x) with e -> Error (e, Printexc.get_raw_backtrace ())))
         (Array.of_list xs))
  else
    let p = create ~jobs in
    Fun.protect ~finally:(fun () -> shutdown p) (fun () -> map_pool p f xs)
