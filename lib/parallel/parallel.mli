(** Fixed-size domain pool with an ordered fan-out/fan-in combinator.

    Built for the experiment runners: each work item owns an independent
    simulation world (engine, RNG streams, registry), so items never share
    mutable state and the only synchronization needed is handing out
    indices and collecting results.  Results are always delivered in input
    order, which is what makes [--jobs N] output byte-identical to
    [--jobs 1].

    Domain-safety invariant: the worker body must not touch module-level
    mutable state or shared channels.  The libraries under [lib/] keep all
    run state inside per-world values (audited: the cost_model/scenarios
    lookup tables are immutable lists built once at module initialization,
    in the main domain, before any pool exists — sharing them read-only
    across domains is safe).  Printing belongs to the caller, at fan-in. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()]: the default for [--jobs]. *)

type pool
(** A fixed-size pool of worker domains.  A pool with [jobs = n] uses
    [n - 1] spawned domains plus the submitting domain itself, so
    [jobs = 1] spawns nothing and runs everything in the caller. *)

val create : jobs:int -> pool
(** Spawn the pool.  [jobs] is clamped to at least 1. *)

val jobs : pool -> int

val map_pool : pool -> ('a -> 'b) -> 'a list -> 'b list
(** [map_pool pool f xs] applies [f] to every element, fanning the work out
    across the pool, and returns the results in the order of [xs].

    If one or more applications raise, the exception raised for the {e
    lowest} input index is re-raised in the caller (with its backtrace)
    once the whole batch has drained — deterministic regardless of worker
    scheduling.

    Not reentrant: one batch at a time per pool, and [f] must not itself
    call into the same pool. *)

val shutdown : pool -> unit
(** Join the worker domains.  The pool is unusable afterwards. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** One-shot convenience: create a pool, run the batch, shut it down.
    [map ~jobs:1 f xs] degenerates to [List.map f xs] in the calling
    domain (no domain is spawned). *)
