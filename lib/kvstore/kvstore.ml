type vote = Vote_yes | Vote_read_only | Vote_no

type op = Put of string * string | Delete of string

type t = {
  engine : Simkernel.Engine.t;
  rm_name : string;
  log : Wal.Log.t;
  lock_table : Lockmgr.t;
  reliable : bool;
  store : (string, string) Hashtbl.t; (* committed values *)
  wsets : (string, op list ref) Hashtbl.t; (* txn -> reversed op list *)
  mutable in_doubt_txns : string list;
  lost_txns : (string, unit) Hashtbl.t;
      (* txns whose unprepared updates were wiped by a crash: a later
         Prepare must vote NO, not read-only *)
}

let create engine ~name ~wal ?locks ?(reliable = false) () =
  let lock_table = match locks with Some l -> l | None -> Lockmgr.create engine in
  {
    engine;
    rm_name = name;
    log = wal;
    lock_table;
    reliable;
    store = Hashtbl.create 64;
    wsets = Hashtbl.create 8;
    in_doubt_txns = [];
    lost_txns = Hashtbl.create 4;
  }

let name t = t.rm_name
let wal t = t.log
let locks t = t.lock_table
let is_reliable t = t.reliable

(* --- undo/redo payload encoding (length-prefixed, crash-safe) ------------ *)

let encode_op = function
  | Put (k, v) -> Printf.sprintf "P%d:%s%d:%s" (String.length k) k (String.length v) v
  | Delete k -> Printf.sprintf "D%d:%s" (String.length k) k

let decode_field s pos =
  let colon = String.index_from s pos ':' in
  let len = int_of_string (String.sub s pos (colon - pos)) in
  (String.sub s (colon + 1) len, colon + 1 + len)

let decode_op s =
  match s.[0] with
  | 'P' ->
      let k, pos = decode_field s 1 in
      let v, _ = decode_field s pos in
      Put (k, v)
  | 'D' ->
      let k, _ = decode_field s 1 in
      Delete k
  | _ -> invalid_arg "kvstore: corrupt rm-update payload"

(* --- transaction-time operations ----------------------------------------- *)

let wset t txn =
  match Hashtbl.find_opt t.wsets txn with
  | Some r -> r
  | None ->
      let r = ref [] in
      Hashtbl.replace t.wsets txn r;
      r

let lock_name t key = t.rm_name ^ "/" ^ key

let can_lock t ~txn ~key mode =
  match Lockmgr.holds t.lock_table ~txn ~key:(lock_name t key) with
  | Some Lockmgr.Exclusive -> true
  | Some Lockmgr.Shared when mode = Lockmgr.Shared -> true
  | Some Lockmgr.Shared | None ->
      (* probe without acquiring: only exact state check available is
         try_acquire, so emulate by checking current holders *)
      let holders = Lockmgr.holders t.lock_table ~key:(lock_name t key) in
      List.for_all
        (fun (h, m) ->
          h = txn
          || match (mode, m) with
             | Lockmgr.Shared, Lockmgr.Shared -> true
             | _ -> false)
        holders

let uncommitted_view t ~txn key =
  (* newest op for [key] in the txn's write set, if any *)
  let ops = match Hashtbl.find_opt t.wsets txn with Some r -> !r | None -> [] in
  List.find_map
    (function
      | Put (k, v) when k = key -> Some (Some v)
      | Delete k when k = key -> Some None
      | Put _ | Delete _ -> None)
    ops

let get t ~txn key =
  if not (Lockmgr.try_acquire t.lock_table ~txn ~key:(lock_name t key) Lockmgr.Shared)
  then None
  else
    match uncommitted_view t ~txn key with
    | Some v -> v
    | None -> Hashtbl.find_opt t.store key

let log_update t ~txn op =
  Wal.Log.append t.log
    (Wal.Log_record.make ~txn ~node:t.rm_name ~payload:(encode_op op) Wal.Log_record.Rm_update)

let put t ~txn ~key ~value =
  if Lockmgr.try_acquire t.lock_table ~txn ~key:(lock_name t key) Lockmgr.Exclusive
  then begin
    let ws = wset t txn in
    let op = Put (key, value) in
    ws := op :: !ws;
    log_update t ~txn op;
    true
  end
  else false

let delete t ~txn ~key =
  if Lockmgr.try_acquire t.lock_table ~txn ~key:(lock_name t key) Lockmgr.Exclusive
  then begin
    let ws = wset t txn in
    let op = Delete key in
    ws := op :: !ws;
    log_update t ~txn op;
    true
  end
  else false

let put_async t ~txn ~key ~value ~granted =
  Lockmgr.acquire t.lock_table ~txn ~key:(lock_name t key) Lockmgr.Exclusive
    ~granted:(fun () ->
      let ws = wset t txn in
      let op = Put (key, value) in
      ws := op :: !ws;
      log_update t ~txn op;
      granted ())

let get_async t ~txn ~key ~granted =
  Lockmgr.acquire t.lock_table ~txn ~key:(lock_name t key) Lockmgr.Shared
    ~granted:(fun () ->
      let v =
        match uncommitted_view t ~txn key with
        | Some v -> v
        | None -> Hashtbl.find_opt t.store key
      in
      granted v)

let is_updated t ~txn =
  match Hashtbl.find_opt t.wsets txn with Some r -> !r <> [] | None -> false

(* --- commit protocol ------------------------------------------------------ *)

let apply_ops t ops =
  List.iter
    (function
      | Put (k, v) -> Hashtbl.replace t.store k v
      | Delete k -> Hashtbl.remove t.store k)
    (List.rev ops)

let finish t ~txn =
  Hashtbl.remove t.wsets txn;
  Hashtbl.remove t.lost_txns txn;
  t.in_doubt_txns <- List.filter (fun x -> x <> txn) t.in_doubt_txns;
  Lockmgr.release_all t.lock_table ~txn

let prepare t ~txn ~force k =
  if Hashtbl.mem t.lost_txns txn then
    (* we performed updates for this transaction but a crash wiped the
       unprepared write set: "no updates" here means "work lost", so the
       only safe vote is NO *)
    k Vote_no
  else if not (is_updated t ~txn) then begin
    (* read-only: no log write, release read locks now *)
    Lockmgr.release_all t.lock_table ~txn;
    Hashtbl.remove t.wsets txn;
    k Vote_read_only
  end
  else begin
    let record = Wal.Log_record.make ~txn ~node:t.rm_name Wal.Log_record.Rm_prepared in
    if force then Wal.Log.force t.log record (fun () -> k Vote_yes)
    else begin
      (* shared-log optimization: buffered; hardens with the TM's force *)
      Wal.Log.append t.log record;
      k Vote_yes
    end
  end

let commit t ~txn ~force k =
  let ops = match Hashtbl.find_opt t.wsets txn with Some r -> !r | None -> [] in
  apply_ops t ops;
  let record = Wal.Log_record.make ~txn ~node:t.rm_name Wal.Log_record.Rm_committed in
  let continue () =
    finish t ~txn;
    k ()
  in
  if force then Wal.Log.force t.log record continue
  else begin
    Wal.Log.append t.log record;
    continue ()
  end

let abort t ~txn k =
  Wal.Log.append t.log (Wal.Log_record.make ~txn ~node:t.rm_name Wal.Log_record.Rm_aborted);
  finish t ~txn;
  k ()

let abandon t ~txn k =
  Wal.Log.append t.log (Wal.Log_record.make ~txn ~node:t.rm_name Wal.Log_record.Rm_aborted);
  finish t ~txn;
  (* remember the unilateral abort: a Prepare that straggles in afterwards
     (delayed, or retransmitted by a recovering coordinator) must draw
     Vote_no, not a read-only vote for work we just threw away *)
  Hashtbl.replace t.lost_txns txn ();
  k ()

(* --- introspection, crash, recovery -------------------------------------- *)

let committed_value t key = Hashtbl.find_opt t.store key

let committed_bindings t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.store []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let in_doubt t = t.in_doubt_txns

let crash t =
  Hashtbl.reset t.store;
  Hashtbl.reset t.wsets;
  t.in_doubt_txns <- [];
  (* the lock table is volatile state too: crashing reclaims every grant a
     dead transaction was holding (waiters' continuations died with us) *)
  Lockmgr.clear t.lock_table

(* --- checkpointing -------------------------------------------------------- *)

let encode_snapshot t =
  let buf = Buffer.create 256 in
  Hashtbl.iter
    (fun k v ->
      Buffer.add_string buf
        (Printf.sprintf "%d:%s%d:%s" (String.length k) k (String.length v) v))
    t.store;
  Buffer.contents buf

let decode_snapshot s =
  let bindings = ref [] in
  let pos = ref 0 in
  while !pos < String.length s do
    let k, p = decode_field s !pos in
    let v, p = decode_field s p in
    bindings := (k, v) :: !bindings;
    pos := p
  done;
  !bindings

let checkpoint t k =
  let record =
    Wal.Log_record.make ~txn:"(checkpoint)" ~node:t.rm_name
      ~payload:(encode_snapshot t) Wal.Log_record.Checkpoint
  in
  Wal.Log.force t.log record (fun () ->
      (* compact: drop this RM's records older than the checkpoint, except
         those of transactions still holding a write set (in flight or in
         doubt) *)
      let live txn = Hashtbl.mem t.wsets txn in
      (* find the newest durable checkpoint of this RM: everything of ours
         before it is superseded, unless it belongs to a live transaction *)
      let newest =
        List.fold_left
          (fun acc (r : Wal.Log_record.t) ->
            if r.node = t.rm_name && r.kind = Wal.Log_record.Checkpoint then
              Some r
            else acc)
          None (Wal.Log.durable t.log)
      in
      let past_newest = ref false in
      ignore
      @@ Wal.Log.compact t.log ~keep:(fun (r : Wal.Log_record.t) ->
             if (match newest with Some c -> r == c | None -> false) then begin
               past_newest := true;
               true
             end
             else if r.node <> t.rm_name then true
             else !past_newest || live r.txn);
      k ())

let replay_bindings records ~node =
  let store : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let pending : (string, op list ref) Hashtbl.t = Hashtbl.create 8 in
  let apply ops =
    List.iter
      (function
        | Put (k, v) -> Hashtbl.replace store k v
        | Delete k -> Hashtbl.remove store k)
      (List.rev ops)
  in
  List.iter
    (fun (r : Wal.Log_record.t) ->
      if r.node = node then
        match r.kind with
        | Wal.Log_record.Checkpoint ->
            Hashtbl.reset store;
            List.iter (fun (k, v) -> Hashtbl.replace store k v)
              (decode_snapshot r.payload)
        | Wal.Log_record.Rm_update ->
            let ops =
              match Hashtbl.find_opt pending r.txn with
              | Some l -> l
              | None ->
                  let l = ref [] in
                  Hashtbl.replace pending r.txn l;
                  l
            in
            ops := decode_op r.payload :: !ops
        | Wal.Log_record.Rm_committed ->
            (match Hashtbl.find_opt pending r.txn with
            | Some ops -> apply !ops
            | None -> ());
            Hashtbl.remove pending r.txn
        | Wal.Log_record.Rm_aborted -> Hashtbl.remove pending r.txn
        | Wal.Log_record.Rm_prepared | Wal.Log_record.Commit_pending
        | Wal.Log_record.Prepared | Wal.Log_record.Committed
        | Wal.Log_record.Aborted | Wal.Log_record.End | Wal.Log_record.Agent
        | Wal.Log_record.Heuristic_commit | Wal.Log_record.Heuristic_abort
        | Wal.Log_record.Certificate ->
            ())
    records;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) store []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let recover t =
  Hashtbl.reset t.store;
  Hashtbl.reset t.wsets;
  t.in_doubt_txns <- [];
  Hashtbl.reset t.lost_txns;
  let pending : (string, op list ref) Hashtbl.t = Hashtbl.create 8 in
  let prepared : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let scan (r : Wal.Log_record.t) =
    if r.node = t.rm_name then
      match r.kind with
      | Wal.Log_record.Checkpoint ->
          (* a checkpoint resets the store to its snapshot; later records
             replay on top *)
          Hashtbl.reset t.store;
          List.iter (fun (k, v) -> Hashtbl.replace t.store k v)
            (decode_snapshot r.payload)
      | Wal.Log_record.Rm_update ->
          let ops =
            match Hashtbl.find_opt pending r.txn with
            | Some l -> l
            | None ->
                let l = ref [] in
                Hashtbl.replace pending r.txn l;
                l
          in
          ops := decode_op r.payload :: !ops
      | Wal.Log_record.Rm_prepared -> Hashtbl.replace prepared r.txn ()
      | Wal.Log_record.Rm_committed ->
          (match Hashtbl.find_opt pending r.txn with
          | Some ops -> apply_ops t !ops
          | None -> ());
          Hashtbl.remove pending r.txn;
          Hashtbl.remove prepared r.txn
      | Wal.Log_record.Rm_aborted ->
          Hashtbl.remove pending r.txn;
          Hashtbl.remove prepared r.txn
      | Wal.Log_record.Commit_pending | Wal.Log_record.Prepared
      | Wal.Log_record.Committed | Wal.Log_record.Aborted | Wal.Log_record.End
      | Wal.Log_record.Agent | Wal.Log_record.Heuristic_commit
      | Wal.Log_record.Heuristic_abort | Wal.Log_record.Certificate ->
          ()
  in
  List.iter scan (Wal.Log.durable t.log);
  (* prepared-but-undecided transactions stay in doubt, write set retained,
     and their exclusive locks are re-acquired so new work cannot read or
     overwrite data whose fate is still unknown (the paper's blocking
     window) *)
  Hashtbl.iter
    (fun txn () ->
      t.in_doubt_txns <- txn :: t.in_doubt_txns;
      let ops =
        match Hashtbl.find_opt pending txn with
        | Some ops -> ops
        | None -> ref []
      in
      Hashtbl.replace t.wsets txn ops;
      List.iter
        (fun op ->
          let key = match op with Put (k, _) -> k | Delete k -> k in
          ignore
            (Lockmgr.try_acquire t.lock_table ~txn ~key:(lock_name t key)
               Lockmgr.Exclusive))
        !ops)
    prepared;
  (* updates logged but never prepared: the in-memory write set died with
     the crash, so a retransmitted Prepare must not mistake this for a
     read-only transaction *)
  Hashtbl.iter
    (fun txn _ops ->
      if not (Hashtbl.mem prepared txn) then Hashtbl.replace t.lost_txns txn ())
    pending
