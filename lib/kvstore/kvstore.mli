(** Key-value local resource manager (LRM).

    Plays the role the paper assigns to "local resource managers, such as
    database and file managers": it owns data, takes locks, writes undo/redo
    information to a write-ahead log, and answers Prepare / Commit / Abort
    from its transaction manager.  It supports the LRM-side properties the
    optimizations depend on: read-only detection (no updates performed),
    the {e reliable} declaration for Vote Reliable, and non-forced logging
    when sharing the TM's log.

    Crash/recovery: [crash] wipes volatile state (committed cache and write
    sets); [recover] rebuilds from the durable log - committed transactions
    are redone, transactions with a durable [Rm_prepared] but no outcome
    record become {e in-doubt} and await their TM's instruction. *)

type t

type vote = Vote_yes | Vote_read_only | Vote_no

val create :
  Simkernel.Engine.t ->
  name:string ->
  wal:Wal.Log.t ->
  ?locks:Lockmgr.t ->
  ?reliable:bool ->
  unit ->
  t
(** [locks] defaults to a private lock table; pass a shared one to observe
    cross-transaction contention.  [reliable] (default [false]) is the
    Vote-Reliable declaration. *)

val name : t -> string
val wal : t -> Wal.Log.t
val locks : t -> Lockmgr.t
val is_reliable : t -> bool

(** {2 Transaction-time operations} *)

val get : t -> txn:string -> string -> string option
(** Read under a shared lock; sees the transaction's own uncommitted writes.
    Returns [None] also when the lock is unavailable - use [can_lock] to
    distinguish. *)

val put : t -> txn:string -> key:string -> value:string -> bool
(** Write under an exclusive lock, logging an undo/redo record (non-forced;
    durability comes from the prepare force).  [false] if the lock is held
    by another transaction. *)

val delete : t -> txn:string -> key:string -> bool

val put_async :
  t -> txn:string -> key:string -> value:string -> granted:(unit -> unit) -> unit
(** Queued write: waits (FIFO) for the exclusive lock instead of failing.
    [granted] fires once the lock is held and the write is buffered -
    possibly immediately.  Used by contention experiments where a
    transaction must block behind the commit protocol's lock release. *)

val get_async :
  t -> txn:string -> key:string -> granted:(string option -> unit) -> unit
(** Queued read: waits (FIFO) for the shared lock instead of failing.
    [granted] fires with the visible value once the lock is held - possibly
    immediately. *)

val can_lock : t -> txn:string -> key:string -> Lockmgr.mode -> bool

val is_updated : t -> txn:string -> bool
(** Has this transaction performed any update here?  (Read-only detection.) *)

(** {2 Commit protocol entry points} *)

val prepare : t -> txn:string -> force:bool -> (vote -> unit) -> unit
(** Vote.  A transaction with no updates votes [Vote_read_only] immediately
    (no log write) and releases its read locks.  Otherwise an [Rm_prepared]
    record is written ([force:false] = shared-log optimization: the record is
    buffered and hardens with the TM's next force) and the vote is
    [Vote_yes].  Exception: a transaction whose unprepared write set was
    wiped by a crash (see {!recover}) votes [Vote_no], never read-only -
    "no updates in memory" means "work lost" for it. *)

val commit : t -> txn:string -> force:bool -> (unit -> unit) -> unit
(** Apply the write set, write [Rm_committed] (forced or not), release
    locks. *)

val abort : t -> txn:string -> (unit -> unit) -> unit
(** Discard the write set, write a non-forced [Rm_aborted], release locks. *)

val abandon : t -> txn:string -> (unit -> unit) -> unit
(** Unilateral branch abort for a transaction that was never asked to
    vote (its coordinator died or was cut off before sending Prepare):
    {!abort}, plus the transaction is remembered so a straggling Prepare
    draws [Vote_no].  Before the vote an RM is always free to abort - the
    paper's Section 2 ground rule this leans on. *)

(** {2 Introspection, crash, recovery} *)

val committed_value : t -> string -> string option
(** The committed (post-crash-visible) value of a key. *)

val committed_bindings : t -> (string * string) list
(** All committed key/value pairs, sorted by key. *)

val in_doubt : t -> string list
(** Transactions prepared here with no durable outcome (post-[recover]). *)

val crash : t -> unit
(** Wipe volatile state: committed cache, write sets, in-doubt list, and the
    lock table (crash reclaims every grant; queued waiters are dropped
    without being woken). *)

val recover : t -> unit
(** Rebuild from the durable log.  Committed transactions are redone;
    prepared-but-undecided transactions become in-doubt with their write
    sets retained and their exclusive locks re-acquired, so post-restart
    work blocks behind them exactly as the paper's in-doubt window
    requires.  Transactions with durable updates but no prepare record lost
    their write set in the crash: they are remembered so a late
    (retransmitted) Prepare draws [Vote_no] instead of a bogus read-only
    vote. *)

val replay_bindings :
  Wal.Log_record.t list -> node:string -> (string * string) list
(** Pure replay: the committed key/value pairs (sorted) that [records]
    imply for resource manager [node], using the same
    checkpoint/redo/discard rules as {!recover}.  The chaos audit compares
    this against {!committed_bindings} to catch recoveries that diverge
    from their own log. *)

val checkpoint : t -> (unit -> unit) -> unit
(** Write a forced checkpoint record carrying a snapshot of the committed
    store, then compact the log: records older than the checkpoint are
    dropped except those belonging to still-active (in-flight or in-doubt)
    transactions.  [recover] starts from the most recent durable
    checkpoint, bounding recovery work and log growth. *)
