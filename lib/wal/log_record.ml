type kind =
  | Commit_pending
  | Prepared
  | Committed
  | Aborted
  | End
  | Agent
  | Heuristic_commit
  | Heuristic_abort
  | Rm_update
  | Rm_prepared
  | Rm_committed
  | Rm_aborted
  | Checkpoint
  | Certificate

type t = { txn : string; node : string; kind : kind; payload : string }

let make ~txn ~node ?(payload = "") kind = { txn; node; kind; payload }

let kind_to_string = function
  | Commit_pending -> "commit-pending"
  | Prepared -> "prepared"
  | Committed -> "committed"
  | Aborted -> "aborted"
  | End -> "end"
  | Agent -> "agent"
  | Heuristic_commit -> "heuristic-commit"
  | Heuristic_abort -> "heuristic-abort"
  | Rm_update -> "rm-update"
  | Rm_prepared -> "rm-prepared"
  | Rm_committed -> "rm-committed"
  | Rm_aborted -> "rm-aborted"
  | Checkpoint -> "checkpoint"
  | Certificate -> "certificate"

let pp ppf t =
  Format.fprintf ppf "[%s@%s %s%s]" t.txn t.node (kind_to_string t.kind)
    (if t.payload = "" then "" else " " ^ t.payload)

let is_tm_record t =
  match t.kind with
  | Rm_update | Rm_prepared | Rm_committed | Rm_aborted | Checkpoint -> false
  | Commit_pending | Prepared | Committed | Aborted | End | Agent
  | Heuristic_commit | Heuristic_abort | Certificate ->
      true
