(** Per-node write-ahead log with forced / non-forced semantics.

    Semantics follow Section 2 of the paper:

    - a {e non-forced} write appends the record to a volatile buffer; it
      becomes durable when a later force happens (or is lost in a crash);
    - a {e forced} write appends the record and suspends the caller (the
      continuation is invoked only once the record - and every earlier
      buffered record - is on stable storage).

    Group commit (Section 4, "Group Commits") is a property of the log
    manager: force requests are batched until either [size] requests are
    pending or [timeout] virtual seconds elapse, and one physical I/O then
    hardens the whole batch.

    Statistics distinguish {e forced writes} (records written with force
    semantics - the quantity in the paper's Tables 2 and 3) from {e physical
    force I/Os} (the quantity group commit reduces). *)

type t

type group = { size : int; timeout : float }

type config = {
  io_latency : float;  (** virtual time for one physical force I/O *)
  group : group option;
}

type stats = {
  writes : int;         (** records appended, forced or not *)
  forced_writes : int;  (** records appended with force semantics *)
  force_ios : int;      (** physical force I/O operations performed *)
}

val default_config : config
(** [{ io_latency = 0.5; group = None }]. *)

val create : Simkernel.Engine.t -> node:string -> ?config:config -> unit -> t

val node : t -> string
val config : t -> config

val append : t -> Log_record.t -> unit
(** Non-forced write. *)

val force : t -> Log_record.t -> (unit -> unit) -> unit
(** Forced write; the continuation runs when the record is durable. *)

val flush : t -> (unit -> unit) -> unit
(** Force the current buffer contents without appending a record (used by the
    shared-log optimization tests); counts one physical I/O if anything was
    volatile. *)

val compact : t -> keep:(Log_record.t -> bool) -> int
(** Drop durable records for which [keep] is false (checkpoint-driven log
    truncation).  Only already-durable records are considered; the volatile
    tail is untouched.  Returns the number of records dropped. *)

val crash : t -> unit
(** Lose the volatile buffer and drop pending force continuations (their
    callers are dead). *)

val durable : t -> Log_record.t list
(** Records on stable storage, oldest first: what recovery sees. *)

val all_records : t -> Log_record.t list
(** Durable plus still-volatile records, oldest first. *)

val stats : t -> stats
val reset_stats : t -> unit

val records_for : t -> txn:string -> Log_record.t list
(** Durable records of one transaction, oldest first. *)
