type group = { size : int; timeout : float }
type config = { io_latency : float; group : group option }

type stats = { writes : int; forced_writes : int; force_ios : int }

type t = {
  engine : Simkernel.Engine.t;
  node_name : string;
  cfg : config;
  mutable records : Log_record.t array; (* grow-only arena *)
  mutable len : int;
  mutable durable_upto : int; (* records.(0 .. durable_upto-1) are durable *)
  mutable writes : int;
  mutable forced_writes : int;
  mutable force_ios : int;
  (* group-commit state *)
  mutable batch : (int * (unit -> unit)) list; (* high-water mark, continuation *)
  mutable batch_timer : Simkernel.Engine.event option;
  mutable epoch : int; (* bumped on crash so in-flight I/O completions are ignored *)
}

let default_config = { io_latency = 0.5; group = None }

let create engine ~node ?(config = default_config) () =
  {
    engine;
    node_name = node;
    cfg = config;
    records = Array.make 32 (Log_record.make ~txn:"" ~node:"" Log_record.End);
    len = 0;
    durable_upto = 0;
    writes = 0;
    forced_writes = 0;
    force_ios = 0;
    batch = [];
    batch_timer = None;
    epoch = 0;
  }

let node t = t.node_name
let config t = t.cfg

let push t r =
  if t.len = Array.length t.records then begin
    let bigger = Array.make (2 * t.len) r in
    Array.blit t.records 0 bigger 0 t.len;
    t.records <- bigger
  end;
  t.records.(t.len) <- r;
  t.len <- t.len + 1

let append t r =
  push t r;
  t.writes <- t.writes + 1

(* One physical I/O hardening everything up to [upto]; continuations in
   [conts] fire after the I/O latency, unless a crash bumped the epoch. *)
let physical_force t ~upto conts =
  t.force_ios <- t.force_ios + 1;
  let epoch = t.epoch in
  ignore
    (Simkernel.Engine.schedule t.engine ~delay:t.cfg.io_latency (fun () ->
         if t.epoch = epoch then begin
           if upto > t.durable_upto then t.durable_upto <- upto;
           List.iter (fun k -> k ()) conts
         end))

let flush_batch t =
  (match t.batch_timer with
  | Some ev ->
      Simkernel.Engine.cancel t.engine ev;
      t.batch_timer <- None
  | None -> ());
  match t.batch with
  | [] -> ()
  | batch ->
      t.batch <- [];
      let upto = List.fold_left (fun acc (hw, _) -> max acc hw) 0 batch in
      let conts = List.rev_map snd batch in
      physical_force t ~upto conts

let enqueue_force t k =
  match t.cfg.group with
  | None -> physical_force t ~upto:t.len [ k ]
  | Some g ->
      t.batch <- (t.len, k) :: t.batch;
      if List.length t.batch >= g.size then flush_batch t
      else if t.batch_timer = None then
        t.batch_timer <-
          Some
            (Simkernel.Engine.schedule t.engine ~delay:g.timeout (fun () ->
                 t.batch_timer <- None;
                 flush_batch t))

let force t r k =
  push t r;
  t.writes <- t.writes + 1;
  t.forced_writes <- t.forced_writes + 1;
  enqueue_force t k

let flush t k =
  if t.durable_upto = t.len && t.batch = [] then k ()
  else enqueue_force t k

let compact t ~keep =
  let kept = ref [] in
  let dropped = ref 0 in
  for i = 0 to t.durable_upto - 1 do
    if keep t.records.(i) then kept := t.records.(i) :: !kept
    else incr dropped
  done;
  let kept = Array.of_list (List.rev !kept) in
  let tail = Array.sub t.records t.durable_upto (t.len - t.durable_upto) in
  let data = Array.append kept tail in
  let capacity = max 32 (Array.length t.records) in
  let arena =
    Array.make capacity (Log_record.make ~txn:"" ~node:"" Log_record.End)
  in
  Array.blit data 0 arena 0 (Array.length data);
  t.records <- arena;
  t.durable_upto <- Array.length kept;
  t.len <- Array.length data;
  !dropped

let crash t =
  t.epoch <- t.epoch + 1;
  t.len <- t.durable_upto;
  t.batch <- [];
  match t.batch_timer with
  | Some ev ->
      Simkernel.Engine.cancel t.engine ev;
      t.batch_timer <- None
  | None -> ()

let slice t n = Array.to_list (Array.sub t.records 0 n)
let durable t = slice t t.durable_upto
let all_records t = slice t t.len

let stats t =
  { writes = t.writes; forced_writes = t.forced_writes; force_ios = t.force_ios }

let reset_stats t =
  t.writes <- 0;
  t.forced_writes <- 0;
  t.force_ios <- 0

let records_for t ~txn =
  List.filter (fun (r : Log_record.t) -> r.txn = txn) (durable t)
