type group = { size : int; timeout : float }
type config = { io_latency : float; group : group option }

type stats = { writes : int; forced_writes : int; force_ios : int }

type t = {
  engine : Simkernel.Engine.t;
  node_name : string;
  cfg : config;
  mutable records : Log_record.t array; (* grow-only arena *)
  mutable len : int;
  mutable durable_upto : int; (* records.(0 .. durable_upto-1) are durable *)
  mutable writes : int;
  mutable forced_writes : int;
  mutable force_ios : int;
  (* group-commit state *)
  mutable batch : (int * (unit -> unit)) list; (* high-water mark, continuation *)
  mutable batch_timer : Simkernel.Engine.event option;
  mutable epoch : int; (* bumped on crash so in-flight I/O completions are ignored *)
  (* An I/O completion schedules as a flat event: a0 indexes the pending
     continuation list in this freelist-chained arena, a1 is the high-water
     mark, a2 the epoch the force was issued under. *)
  io_kind : Simkernel.Engine.kind;
  batch_kind : Simkernel.Engine.kind;
  mutable io_conts : (unit -> unit) list array;
  mutable io_next : int array;
  mutable io_free : int;
}

let default_config = { io_latency = 0.5; group = None }

(* forward reference: the batch-timer kind fires [flush_batch], which is
   defined below [create] *)
let batch_fire : (t -> unit) ref = ref (fun _ -> ())

let io_complete t slot upto epoch =
  let conts = t.io_conts.(slot) in
  t.io_conts.(slot) <- [];
  t.io_next.(slot) <- t.io_free;
  t.io_free <- slot;
  if t.epoch = epoch then begin
    if upto > t.durable_upto then t.durable_upto <- upto;
    List.iter (fun k -> k ()) conts
  end

let create engine ~node ?(config = default_config) () =
  let tref = ref None in
  let with_t f a0 a1 a2 _ =
    match !tref with Some t -> f t a0 a1 a2 | None -> ()
  in
  let io_kind =
    Simkernel.Engine.register_kind engine ~name:"wal.io" (with_t io_complete)
  in
  let batch_kind =
    Simkernel.Engine.register_kind engine ~name:"wal.batch"
      (with_t (fun t _ _ _ ->
           t.batch_timer <- None;
           !batch_fire t))
  in
  let cap = 8 in
  let t =
    {
      engine;
      node_name = node;
      cfg = config;
      records = Array.make 32 (Log_record.make ~txn:"" ~node:"" Log_record.End);
      len = 0;
      durable_upto = 0;
      writes = 0;
      forced_writes = 0;
      force_ios = 0;
      batch = [];
      batch_timer = None;
      epoch = 0;
      io_kind;
      batch_kind;
      io_conts = Array.make cap [];
      io_next = Array.init cap (fun i -> if i = cap - 1 then -1 else i + 1);
      io_free = 0;
    }
  in
  tref := Some t;
  t

let node t = t.node_name
let config t = t.cfg

let push t r =
  if t.len = Array.length t.records then begin
    let bigger = Array.make (2 * t.len) r in
    Array.blit t.records 0 bigger 0 t.len;
    t.records <- bigger
  end;
  t.records.(t.len) <- r;
  t.len <- t.len + 1

let append t r =
  push t r;
  t.writes <- t.writes + 1

(* One physical I/O hardening everything up to [upto]; continuations in
   [conts] fire after the I/O latency, unless a crash bumped the epoch. *)
let physical_force t ~upto conts =
  t.force_ios <- t.force_ios + 1;
  if t.io_free = -1 then begin
    let cap = Array.length t.io_conts in
    let cap' = 2 * cap in
    let io_conts = Array.make cap' [] in
    Array.blit t.io_conts 0 io_conts 0 cap;
    let next = Array.init cap' (fun i -> if i = cap' - 1 then -1 else i + 1) in
    Array.blit t.io_next 0 next 0 cap;
    t.io_conts <- io_conts;
    t.io_next <- next;
    t.io_free <- cap
  end;
  let slot = t.io_free in
  t.io_free <- t.io_next.(slot);
  t.io_conts.(slot) <- conts;
  ignore
    (Simkernel.Engine.schedule_flat t.engine ~delay:t.cfg.io_latency
       ~kind:t.io_kind ~a0:slot ~a1:upto ~a2:t.epoch)

let flush_batch t =
  (match t.batch_timer with
  | Some ev ->
      Simkernel.Engine.cancel t.engine ev;
      t.batch_timer <- None
  | None -> ());
  match t.batch with
  | [] -> ()
  | batch ->
      t.batch <- [];
      let upto = List.fold_left (fun acc (hw, _) -> max acc hw) 0 batch in
      let conts = List.rev_map snd batch in
      physical_force t ~upto conts

let () = batch_fire := flush_batch

let enqueue_force t k =
  match t.cfg.group with
  | None -> physical_force t ~upto:t.len [ k ]
  | Some g ->
      t.batch <- (t.len, k) :: t.batch;
      if List.length t.batch >= g.size then flush_batch t
      else if t.batch_timer = None then
        t.batch_timer <-
          Some
            (Simkernel.Engine.schedule_flat t.engine ~delay:g.timeout
               ~kind:t.batch_kind ~a0:0 ~a1:0 ~a2:0)

let force t r k =
  push t r;
  t.writes <- t.writes + 1;
  t.forced_writes <- t.forced_writes + 1;
  enqueue_force t k

let flush t k =
  if t.durable_upto = t.len && t.batch = [] then k ()
  else enqueue_force t k

let compact t ~keep =
  let kept = ref [] in
  let dropped = ref 0 in
  for i = 0 to t.durable_upto - 1 do
    if keep t.records.(i) then kept := t.records.(i) :: !kept
    else incr dropped
  done;
  let kept = Array.of_list (List.rev !kept) in
  let tail = Array.sub t.records t.durable_upto (t.len - t.durable_upto) in
  let data = Array.append kept tail in
  let capacity = max 32 (Array.length t.records) in
  let arena =
    Array.make capacity (Log_record.make ~txn:"" ~node:"" Log_record.End)
  in
  Array.blit data 0 arena 0 (Array.length data);
  t.records <- arena;
  t.durable_upto <- Array.length kept;
  t.len <- Array.length data;
  !dropped

let crash t =
  t.epoch <- t.epoch + 1;
  t.len <- t.durable_upto;
  t.batch <- [];
  match t.batch_timer with
  | Some ev ->
      Simkernel.Engine.cancel t.engine ev;
      t.batch_timer <- None
  | None -> ()

let slice t n = Array.to_list (Array.sub t.records 0 n)
let durable t = slice t t.durable_upto
let all_records t = slice t t.len

let stats t =
  { writes = t.writes; forced_writes = t.forced_writes; force_ios = t.force_ios }

let reset_stats t =
  t.writes <- 0;
  t.forced_writes <- 0;
  t.force_ios <- 0

let records_for t ~txn =
  List.filter (fun (r : Log_record.t) -> r.txn = txn) (durable t)
