(** Log record vocabulary for the transaction managers and resource managers.

    The record kinds follow the paper's Figures 1-3 and 8: [Commit_pending]
    is PN's extra coordinator record; [Agent] is PN's subordinate-side
    obligation record (the paper's Table 2 charges the PN subordinate four
    writes, three forced); [Rm_*] records belong to local resource managers
    (undo/redo payloads for the key-value store). *)

type kind =
  | Commit_pending  (** PN coordinator, forced before any Prepare is sent *)
  | Prepared        (** subordinate vote YES durability point *)
  | Committed
  | Aborted
  | End             (** outcome forgotten; never forced *)
  | Agent           (** PN subordinate ack-obligation record *)
  | Heuristic_commit
  | Heuristic_abort
  | Rm_update       (** resource-manager undo/redo payload *)
  | Rm_prepared
  | Rm_committed
  | Rm_aborted
  | Checkpoint      (** resource-manager store snapshot; bounds recovery *)
  | Certificate
      (** BFT decision certificate (serialized endorsement quorum); appended
          just before the outcome force so both harden together *)

type t = {
  txn : string;        (** transaction identifier *)
  node : string;       (** writing node *)
  kind : kind;
  payload : string;    (** opaque payload (RM undo/redo data, participant lists) *)
}

val make : txn:string -> node:string -> ?payload:string -> kind -> t

val kind_to_string : kind -> string
val pp : Format.formatter -> t -> unit

val is_tm_record : t -> bool
(** True for transaction-manager records (not [Rm_*]). *)
