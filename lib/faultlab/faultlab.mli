(** Deterministic chaos engine for the concurrent 2PC mixer.

    A {e fault plan} is a list of timed events - crashes with optional
    restarts, partitions with optional heals, nth-message drops and
    per-link delay jitter - compiled from a seed and executed against a
    live {!Tpc.Mixer.run_full} on the same virtual clock as the workload.
    Everything is deterministic: the same seed and plan replay the same
    interleaving bit for bit, which is what makes the {!shrink}er's
    minimized repros and the CI smoke sweep meaningful.

    The acceptance check ({!audit}) is fault-aware: it demands atomicity
    (committed everywhere / aborted nowhere, with members excused only
    while down or legitimately in doubt), agreement (no transaction with
    both durable commit and abort evidence), recovery faithful to the log
    (each up member's store equals a pure replay of its records), no
    leaked locks and engine quiescence. *)

(** {2 Fault plans} *)

(** What a forged message claims to be. *)
type forge_kind = Forge_prepare | Forge_commit | Forge_abort

type event =
  | Crash of { at : float; node : string; restart_after : float option }
      (** crash [node] at [at]; restart (with full recovery) after
          [restart_after] if given, else stay down forever *)
  | Partition of {
      at : float;
      a : string;
      b : string;
      heal_after : float option;
    }
  | Drop of { at : float; src : string; dst : string; nth : int }
      (** lose the [nth] message (1-based, counted from [at]) on the
          [src -> dst] link *)
  | Jitter of { at : float; src : string; dst : string; amp : float }
      (** from [at] on, add uniform [0, amp) delay jitter to the link *)
  | Equivocate of { at : float; node : string; count : int }
      (** from [at] on, the next [count] decision payloads [node] sends
          have their outcome flipped in flight: different members hear
          different decisions from the same coordinator *)
  | Flip_vote of { at : float; src : string; dst : string; nth : int }
      (** flip the [nth] vote payload (1-based, counted from [at]) on the
          [src -> dst] link: YES becomes NO, NO becomes a plain YES *)
  | Forge of { at : float; src : string; dst : string; kind : forge_kind }
      (** at [at], [dst] receives a fabricated message claiming to be from
          [src]: a prepare for a ghost transaction ([Forge_prepare]), or a
          decision targeting whatever [dst] is currently blocked on (a
          ghost transaction if nothing is in doubt) *)
  | Force_heuristic of { at : float; node : string; action : Tpc.Types.outcome }
      (** at [at], every transaction in doubt at [node] is resolved
          heuristically as [action], as if an impatient operator overrode
          the protocol *)
  | Replay of { at : float; src : string; dst : string; count : int }
      (** at [at], re-deliver the last bundle that genuinely crossed the
          [src -> dst] link, [count] times - stale duplicated history, not
          forged content ([forge@] fabricates payloads that never existed).
          A no-op if the link has carried nothing yet. *)
  | Corrupt_replica of { at : float; replica : int }
      (** from [at] on, the adversary holds the signing key of BFT
          coordinator replica [replica]; with f+1 distinct corrupted
          replicas it can mint valid decision certificates, below that
          threshold its forgeries and equivocations stay uncertifiable *)

type plan = event list

val is_adversarial_event : event -> bool

val is_adversarial : plan -> bool
(** True iff the plan contains at least one adversarial event
    (equivocation, vote flip, forgery, forced heuristic, replay or replica
    corruption); such plans get the damage-accounting audit instead of the
    benign pass/fail check. *)

val corrupted_replicas : plan -> int
(** Distinct BFT coordinator replicas the plan corrupts; the chaos gate
    compares this against the configured [f] ("corrupted <= f implies zero
    atomicity violations"). *)

val event_to_string : event -> string
(** Compact one-token form: [crash@T:node:+D] (or [:-] for no restart),
    [part@T:a|b:+D] (or [:-]), [drop@T:src>dst:n], [jit@T:src>dst:amp],
    [equiv@T:node:k], [flip@T:src>dst:n], [forge@T:src>dst:kind] (kind one
    of [prepare]/[commit]/[abort]), [heur@T:node:commit|abort],
    [replay@T:src>dst:k], [corrupt@T:idx:-]. *)

val to_string : plan -> string
(** Events joined with [","]; the empty plan is [""]. *)

val of_string : string -> plan
(** Inverse of {!to_string}.  Raises [Invalid_argument] on malformed
    input.  Round-trips exactly: generated times are quantized so the
    printed form replays the identical schedule. *)

(** {2 Seeded generation} *)

type gen_cfg = {
  crashes : int;
  partitions : int;
  drops : int;
  jitters : int;
  horizon : float;  (** events are drawn uniformly over [0, horizon) *)
  restart_prob : float;  (** P(a crash restarts / a partition heals) *)
  mean_downtime : float;  (** mean restart delay (exponential) *)
  mean_partition : float;  (** mean heal delay (exponential) *)
  jitter_amp : float;  (** max per-link jitter amplitude *)
  equivocations : int;  (** adversarial counts; all zero in [default_gen] *)
  vote_flips : int;
  forgeries : int;
  forced_heuristics : int;
  replays : int;  (** second adversarial wave; zero in [default_gen] *)
  corruptions : int;
      (** distinct BFT replicas to corrupt, capped at [corrupt_domain] *)
  corrupt_domain : int;
      (** replica index space ([2f+1] for the target tolerance [f]); 3 in
          [default_gen] *)
  gc_align : float option;
      (** when set, every adversarial event time is snapped to the nearest
          multiple of this group-commit flush window after all draws, so
          faults land exactly at the batched-force boundary.  Pure
          post-draw retiming: it consumes no RNG draws, so the un-aligned
          plan for the same seed is unchanged.  [None] in [default_gen]. *)
}

val default_gen : gen_cfg

val gen : seed:int -> nodes:string list -> gen_cfg -> plan
(** Compile a fault plan from [seed], sorted by time.  Partition, drop,
    jitter, vote-flip, forgery and replay events need at least two nodes
    and are skipped otherwise.  Adversarial draws come strictly after
    every benign draw (and the replay/corruption wave strictly after the
    first adversarial wave), so with the adversarial counts at zero the
    generated plan is byte-identical to the pre-adversary generator's for
    the same seed.  Raises [Invalid_argument] on an empty node list. *)

val tree_nodes : Tpc.Types.tree -> string list
(** Member names of a commit tree, root first - the node universe for
    {!gen}. *)

(** {2 Execution} *)

val inject :
  ?broken_recovery:bool -> ?jitter_seed:int -> plan -> Tpc.Run.world -> unit
(** Schedule every event of the plan onto the world's engine; pass as the
    [?inject] argument of {!Tpc.Mixer.run_full}.  Crash/restart events are
    guarded (a down node is not re-crashed, an up node not re-restarted) so
    overlapping plans stay well-formed.  [broken_recovery] substitutes
    {!Tpc.Participant.force_restart_amnesia} for every restart - the
    deliberately broken recovery the audit must catch.  Jitter draws come
    from a dedicated {!Simkernel.Det_rng} seeded with [jitter_seed]
    (default fixed), so identical plans replay identical delays. *)

(** {2 Fault-aware acceptance check} *)

type verdict = {
  v_committed_missing : int;
      (** committed txn absent at an up, not-in-doubt updated member *)
  v_aborted_applied : int;  (** aborted/undecided txn durably applied *)
  v_bad_value : int;  (** committed binding not owned by a committed writer *)
  v_divergence : int;
      (** txns with both durable commit and abort evidence *)
  v_wal_divergence : int;
      (** up members whose store differs from a pure replay of their log *)
  v_leaked_locks : int;
      (** grants at up members held by txns no longer blocked there *)
  v_engine_pending : int;  (** events still queued after quiescence *)
  v_unresolved : int;  (** informational: txn states short of END at up members *)
  v_in_doubt : int;  (** informational: blocked txn/member pairs *)
}

val audit : Tpc.Run.world -> Tpc.Mixer.txn_summary list -> verdict

val ok : verdict -> bool
(** True iff every violation counter (everything except the two
    informational fields) is zero. *)

val verdict_fields : verdict -> (string * int) list
(** Field-name/value pairs, declaration order - for JSON emission. *)

val run_case :
  ?config:Tpc.Types.config ->
  ?broken_recovery:bool ->
  ?jitter_seed:int ->
  Tpc.Mixer.cfg ->
  Tpc.Types.tree ->
  plan ->
  Tpc.Metrics.Agg.t * verdict
(** Build the world, inject the plan, run to quiescence, audit. *)

val run_case_full :
  ?config:Tpc.Types.config ->
  ?broken_recovery:bool ->
  ?jitter_seed:int ->
  ?scratch:Simkernel.Engine.t ->
  Tpc.Mixer.cfg ->
  Tpc.Types.tree ->
  plan ->
  Tpc.Metrics.Agg.t * verdict * Tpc.Run.world
(** {!run_case}, also exposing the quiesced world — the parallel driver
    reads its engine stats and folds its telemetry registry into a
    sweep-wide one.  [scratch] recycles an engine from a previous world
    (see {!Tpc.Run.setup}). *)

(** {2 Damage accounting (adversarial audit)} *)

type accounting = {
  a_atomicity : int;
      (** transactions where some node's strong (non-heuristic) durable
          outcome contradicts the decision the protocol really reached -
          two halves of the tree durably disagreeing, or an equivocation
          victim durably believing the flipped decision *)
  a_heur_reported : int;
      (** heuristic decisions that contradicted the real outcome and whose
          damage report reached an operator console - the damaged member's
          own (it records the mismatch the moment it detects it) or a
          coordinator's, via acks *)
  a_heur_silent : int;
      (** damaged heuristic decisions no console anywhere recorded, at an
          up member that resolved or forgot the transaction - the lost-
          report bug class, and the one count that must stay zero even
          under an adversary.  A damaged member still in doubt has not yet
          learned the real outcome (counted {!a_blocked}; its report is
          owed at resolution), and a down member reports at recovery - the
          same excuses the benign {!audit} grants. *)
  a_blocked : int;
      (** txn/member pairs still in doubt at quiescence (blocked, e.g. a
          PN member holding a forged ghost prepare) *)
  a_rejected : int;
      (** forged payloads refused by honest nodes' admissibility checks *)
}

val account : Tpc.Run.world -> Tpc.Mixer.txn_summary list -> accounting
(** Classify every divergence in the quiesced world.  Ground truth per
    transaction is the root's announced outcome when there is one, else
    non-heuristic durable evidence, else the outcome a member resolved its
    heuristic against (a presumed abort can leave no durable record, but
    its damage report names it); a transaction with none of these was
    never decided at all - a forged ghost - and a heuristic on it is not
    yet damage, its member counting as blocked instead.  RM evidence at a
    node that reached that state heuristically does not count as honest
    knowledge; a TM outcome record always does (a damaged node logs the
    outcome it was told when it learns it - under an equivocator that can
    be a lie, in which case the member's heuristic mismatch is invisible
    to every honest party and the divergence is classified as the
    atomicity violation it durably is, not as heuristic damage). *)

val accounting_fields : accounting -> (string * int) list
(** Field-name/value pairs, declaration order - for JSON emission. *)

val blocking_windows : string list
(** The blocking-window histogram names the participants stream under the
    ["blocking/"] registry prefix: [in_doubt] (time a member sat in the
    in-doubt phase), [blocked_lock] (in-doubt entry until its locks were
    released) and [heur_exposure] (a heuristic decision until the real
    outcome arrived). *)

val blocking_json : Obs.Registry.t -> Tpc.Json.t
(** Per-window [{"count"; "p50"; "p99"}] summaries read from a world (or
    merged) registry — the JSONL ["blocking"] block.  A window with no
    samples reports zeros, so the block's shape is schema-stable. *)

val adversarial_ok : verdict -> accounting -> bool
(** The pass criterion under an adversary: atomicity violations and
    reported heuristic damage are the measurement, not a failure; what
    must never happen is silent damage or a broken world (store/log
    divergence, leaked locks, a wedged engine). *)

val run_case_adversarial :
  ?config:Tpc.Types.config ->
  ?broken_recovery:bool ->
  ?jitter_seed:int ->
  ?scratch:Simkernel.Engine.t ->
  Tpc.Mixer.cfg ->
  Tpc.Types.tree ->
  plan ->
  Tpc.Metrics.Agg.t * verdict * accounting * Tpc.Run.world
(** {!run_case_full} plus the damage accounting. *)

(** {2 Schedule shrinking} *)

val shrink : check:(plan -> bool) -> plan -> plan
(** Greedy delta-debugging: repeatedly drop single events while [check]
    (does this plan still reproduce the violation?) holds, until no single
    removal reproduces.  Returns the input unchanged when [check] fails on
    it.  [check] is called O(n{^ 2}) times. *)
