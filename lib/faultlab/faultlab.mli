(** Deterministic chaos engine for the concurrent 2PC mixer.

    A {e fault plan} is a list of timed events - crashes with optional
    restarts, partitions with optional heals, nth-message drops and
    per-link delay jitter - compiled from a seed and executed against a
    live {!Tpc.Mixer.run_full} on the same virtual clock as the workload.
    Everything is deterministic: the same seed and plan replay the same
    interleaving bit for bit, which is what makes the {!shrink}er's
    minimized repros and the CI smoke sweep meaningful.

    The acceptance check ({!audit}) is fault-aware: it demands atomicity
    (committed everywhere / aborted nowhere, with members excused only
    while down or legitimately in doubt), agreement (no transaction with
    both durable commit and abort evidence), recovery faithful to the log
    (each up member's store equals a pure replay of its records), no
    leaked locks and engine quiescence. *)

(** {2 Fault plans} *)

type event =
  | Crash of { at : float; node : string; restart_after : float option }
      (** crash [node] at [at]; restart (with full recovery) after
          [restart_after] if given, else stay down forever *)
  | Partition of {
      at : float;
      a : string;
      b : string;
      heal_after : float option;
    }
  | Drop of { at : float; src : string; dst : string; nth : int }
      (** lose the [nth] message (1-based, counted from [at]) on the
          [src -> dst] link *)
  | Jitter of { at : float; src : string; dst : string; amp : float }
      (** from [at] on, add uniform [0, amp) delay jitter to the link *)

type plan = event list

val event_to_string : event -> string
(** Compact one-token form: [crash@T:node:+D] (or [:-] for no restart),
    [part@T:a|b:+D] (or [:-]), [drop@T:src>dst:n], [jit@T:src>dst:amp]. *)

val to_string : plan -> string
(** Events joined with [","]; the empty plan is [""]. *)

val of_string : string -> plan
(** Inverse of {!to_string}.  Raises [Invalid_argument] on malformed
    input.  Round-trips exactly: generated times are quantized so the
    printed form replays the identical schedule. *)

(** {2 Seeded generation} *)

type gen_cfg = {
  crashes : int;
  partitions : int;
  drops : int;
  jitters : int;
  horizon : float;  (** events are drawn uniformly over [0, horizon) *)
  restart_prob : float;  (** P(a crash restarts / a partition heals) *)
  mean_downtime : float;  (** mean restart delay (exponential) *)
  mean_partition : float;  (** mean heal delay (exponential) *)
  jitter_amp : float;  (** max per-link jitter amplitude *)
}

val default_gen : gen_cfg

val gen : seed:int -> nodes:string list -> gen_cfg -> plan
(** Compile a fault plan from [seed], sorted by time.  Partition, drop and
    jitter events need at least two nodes and are skipped otherwise.
    Raises [Invalid_argument] on an empty node list. *)

val tree_nodes : Tpc.Types.tree -> string list
(** Member names of a commit tree, root first - the node universe for
    {!gen}. *)

(** {2 Execution} *)

val inject :
  ?broken_recovery:bool -> ?jitter_seed:int -> plan -> Tpc.Run.world -> unit
(** Schedule every event of the plan onto the world's engine; pass as the
    [?inject] argument of {!Tpc.Mixer.run_full}.  Crash/restart events are
    guarded (a down node is not re-crashed, an up node not re-restarted) so
    overlapping plans stay well-formed.  [broken_recovery] substitutes
    {!Tpc.Participant.force_restart_amnesia} for every restart - the
    deliberately broken recovery the audit must catch.  Jitter draws come
    from a dedicated {!Simkernel.Det_rng} seeded with [jitter_seed]
    (default fixed), so identical plans replay identical delays. *)

(** {2 Fault-aware acceptance check} *)

type verdict = {
  v_committed_missing : int;
      (** committed txn absent at an up, not-in-doubt updated member *)
  v_aborted_applied : int;  (** aborted/undecided txn durably applied *)
  v_bad_value : int;  (** committed binding not owned by a committed writer *)
  v_divergence : int;
      (** txns with both durable commit and abort evidence *)
  v_wal_divergence : int;
      (** up members whose store differs from a pure replay of their log *)
  v_leaked_locks : int;
      (** grants at up members held by txns no longer blocked there *)
  v_engine_pending : int;  (** events still queued after quiescence *)
  v_unresolved : int;  (** informational: txn states short of END at up members *)
  v_in_doubt : int;  (** informational: blocked txn/member pairs *)
}

val audit : Tpc.Run.world -> Tpc.Mixer.txn_summary list -> verdict

val ok : verdict -> bool
(** True iff every violation counter (everything except the two
    informational fields) is zero. *)

val verdict_fields : verdict -> (string * int) list
(** Field-name/value pairs, declaration order - for JSON emission. *)

val run_case :
  ?config:Tpc.Types.config ->
  ?broken_recovery:bool ->
  ?jitter_seed:int ->
  Tpc.Mixer.cfg ->
  Tpc.Types.tree ->
  plan ->
  Tpc.Metrics.Agg.t * verdict
(** Build the world, inject the plan, run to quiescence, audit. *)

val run_case_full :
  ?config:Tpc.Types.config ->
  ?broken_recovery:bool ->
  ?jitter_seed:int ->
  Tpc.Mixer.cfg ->
  Tpc.Types.tree ->
  plan ->
  Tpc.Metrics.Agg.t * verdict * Tpc.Run.world
(** {!run_case}, also exposing the quiesced world — the parallel driver
    reads its engine stats and folds its telemetry registry into a
    sweep-wide one. *)

(** {2 Schedule shrinking} *)

val shrink : check:(plan -> bool) -> plan -> plan
(** Greedy delta-debugging: repeatedly drop single events while [check]
    (does this plan still reproduce the violation?) holds, until no single
    removal reproduces.  Returns the input unchanged when [check] fails on
    it.  [check] is called O(n{^ 2}) times. *)
