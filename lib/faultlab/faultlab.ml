(* Deterministic chaos engine: seeded fault plans, execution against a
   live mixer world, fault-aware acceptance audit, greedy schedule
   shrinking.  See faultlab.mli for the contract. *)

type event =
  | Crash of { at : float; node : string; restart_after : float option }
  | Partition of {
      at : float;
      a : string;
      b : string;
      heal_after : float option;
    }
  | Drop of { at : float; src : string; dst : string; nth : int }
  | Jitter of { at : float; src : string; dst : string; amp : float }

type plan = event list

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

(* Generated times are quantized to 1ms (see [norm]), so %.12g prints them
   exactly and the printed plan replays the identical schedule. *)
let fl x = Printf.sprintf "%.12g" x

let opt_delay = function Some d -> "+" ^ fl d | None -> "-"

let event_to_string = function
  | Crash { at; node; restart_after } ->
      Printf.sprintf "crash@%s:%s:%s" (fl at) node (opt_delay restart_after)
  | Partition { at; a; b; heal_after } ->
      Printf.sprintf "part@%s:%s|%s:%s" (fl at) a b (opt_delay heal_after)
  | Drop { at; src; dst; nth } ->
      Printf.sprintf "drop@%s:%s>%s:%d" (fl at) src dst nth
  | Jitter { at; src; dst; amp } ->
      Printf.sprintf "jit@%s:%s>%s:%s" (fl at) src dst (fl amp)

let to_string plan = String.concat "," (List.map event_to_string plan)

let bad s = invalid_arg (Printf.sprintf "Faultlab.of_string: malformed %S" s)

let parse_float s tok = match float_of_string_opt s with
  | Some f -> f
  | None -> bad tok

let parse_delay s tok =
  if s = "-" then None
  else if String.length s > 1 && s.[0] = '+' then
    Some (parse_float (String.sub s 1 (String.length s - 1)) tok)
  else bad tok

let split2 sep s tok =
  match String.index_opt s sep with
  | Some i ->
      (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  | None -> bad tok

let parse_event tok =
  let kind, rest = split2 '@' tok tok in
  match String.split_on_char ':' rest with
  | [ at; spec; arg ] -> (
      let at = parse_float at tok in
      match kind with
      | "crash" -> Crash { at; node = spec; restart_after = parse_delay arg tok }
      | "part" ->
          let a, b = split2 '|' spec tok in
          Partition { at; a; b; heal_after = parse_delay arg tok }
      | "drop" ->
          let src, dst = split2 '>' spec tok in
          let nth = match int_of_string_opt arg with
            | Some n when n >= 1 -> n
            | _ -> bad tok
          in
          Drop { at; src; dst; nth }
      | "jit" ->
          let src, dst = split2 '>' spec tok in
          Jitter { at; src; dst; amp = parse_float arg tok }
      | _ -> bad tok)
  | _ -> bad tok

let of_string s =
  if s = "" then []
  else List.map parse_event (String.split_on_char ',' s)

(* ------------------------------------------------------------------ *)
(* Seeded generation                                                   *)
(* ------------------------------------------------------------------ *)

type gen_cfg = {
  crashes : int;
  partitions : int;
  drops : int;
  jitters : int;
  horizon : float;
  restart_prob : float;
  mean_downtime : float;
  mean_partition : float;
  jitter_amp : float;
}

let default_gen =
  {
    crashes = 2;
    partitions = 1;
    drops = 3;
    jitters = 2;
    horizon = 2000.0;
    restart_prob = 0.8;
    mean_downtime = 150.0;
    mean_partition = 120.0;
    jitter_amp = 4.0;
  }

let norm x = Float.round (x *. 1000.0) /. 1000.0

let event_time = function
  | Crash { at; _ } | Partition { at; _ } | Drop { at; _ } | Jitter { at; _ }
    ->
      at

let sort_plan plan =
  List.sort
    (fun a b ->
      match compare (event_time a) (event_time b) with
      | 0 -> compare (event_to_string a) (event_to_string b)
      | c -> c)
    plan

let gen ~seed ~nodes cfg =
  if nodes = [] then invalid_arg "Faultlab.gen: empty node list";
  let rng = Simkernel.Det_rng.create ~seed in
  let arr = Array.of_list nodes in
  let pick () = Simkernel.Det_rng.pick rng arr in
  let pick_pair () =
    (* distinct endpoints; the caller guarantees >= 2 nodes *)
    let a = pick () in
    let rec other () =
      let b = pick () in
      if b = a then other () else b
    in
    (a, other ())
  in
  let at () = norm (Simkernel.Det_rng.float rng cfg.horizon) in
  let delay ~mean =
    if Simkernel.Det_rng.float rng 1.0 < cfg.restart_prob then
      Some (norm (1.0 +. Simkernel.Det_rng.exponential rng ~mean))
    else None
  in
  let evs = ref [] in
  let push e = evs := e :: !evs in
  for _ = 1 to cfg.crashes do
    push
      (Crash
         {
           at = at ();
           node = pick ();
           restart_after = delay ~mean:cfg.mean_downtime;
         })
  done;
  if Array.length arr >= 2 then begin
    for _ = 1 to cfg.partitions do
      let a, b = pick_pair () in
      push (Partition { at = at (); a; b; heal_after = delay ~mean:cfg.mean_partition })
    done;
    for _ = 1 to cfg.drops do
      let src, dst = pick_pair () in
      push (Drop { at = at (); src; dst; nth = 1 + Simkernel.Det_rng.int rng 4 })
    done;
    for _ = 1 to cfg.jitters do
      let src, dst = pick_pair () in
      let amp = norm (0.5 +. Simkernel.Det_rng.float rng (Float.max 0.0 (cfg.jitter_amp -. 0.5))) in
      push (Jitter { at = at (); src; dst; amp })
    done
  end;
  sort_plan !evs

let tree_nodes tree =
  List.map (fun (p : Tpc.Types.profile) -> p.p_name) (Tpc.Types.tree_members tree)

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let inject ?(broken_recovery = false) ?(jitter_seed = 0x5eed) plan
    (w : Tpc.Run.world) =
  let engine = w.Tpc.Run.engine in
  let net = w.Tpc.Run.net in
  let sched_at ~at f = ignore (Simkernel.Engine.schedule_at engine ~time:at f) in
  let sched_after ~delay f =
    ignore (Simkernel.Engine.schedule engine ~delay f)
  in
  let known name = List.mem_assoc name w.Tpc.Run.nodes in
  let jit_amps : (string * string, float) Hashtbl.t = Hashtbl.create 4 in
  if List.exists (function Jitter _ -> true | _ -> false) plan then begin
    let jrng = Simkernel.Det_rng.create ~seed:jitter_seed in
    Tpc.Net.set_jitter net
      (Some
         (fun ~src ~dst ->
           match Hashtbl.find_opt jit_amps (src, dst) with
           | Some amp -> Simkernel.Det_rng.float jrng amp
           | None -> 0.0))
  end;
  List.iter
    (function
      | Crash { at; node; restart_after } ->
          if known node then
            sched_at ~at (fun () ->
                let p = Tpc.Run.participant w node in
                if not (Tpc.Participant.is_crashed p) then begin
                  Tpc.Participant.force_crash p;
                  match restart_after with
                  | None -> ()
                  | Some d ->
                      sched_after ~delay:d (fun () ->
                          if Tpc.Participant.is_crashed p then
                            if broken_recovery then
                              Tpc.Participant.force_restart_amnesia p
                            else Tpc.Participant.force_restart p)
                end)
      | Partition { at; a; b; heal_after } ->
          if known a && known b && a <> b then
            sched_at ~at (fun () ->
                Tpc.Net.partition net a b;
                match heal_after with
                | None -> ()
                | Some d -> sched_after ~delay:d (fun () -> Tpc.Net.heal net a b))
      | Drop { at; src; dst; nth } ->
          if known src && known dst && src <> dst then
            sched_at ~at (fun () -> Tpc.Net.drop_nth net ~src ~dst ~nth)
      | Jitter { at; src; dst; amp } ->
          sched_at ~at (fun () -> Hashtbl.replace jit_amps (src, dst) amp))
    plan

(* ------------------------------------------------------------------ *)
(* Fault-aware acceptance check                                        *)
(* ------------------------------------------------------------------ *)

type verdict = {
  v_committed_missing : int;
  v_aborted_applied : int;
  v_bad_value : int;
  v_divergence : int;
  v_wal_divergence : int;
  v_leaked_locks : int;
  v_engine_pending : int;
  v_unresolved : int;
  v_in_doubt : int;
}

let ok v =
  v.v_committed_missing = 0 && v.v_aborted_applied = 0 && v.v_bad_value = 0
  && v.v_divergence = 0 && v.v_wal_divergence = 0 && v.v_leaked_locks = 0
  && v.v_engine_pending = 0

let verdict_fields v =
  [
    ("committed_missing", v.v_committed_missing);
    ("aborted_applied", v.v_aborted_applied);
    ("bad_value", v.v_bad_value);
    ("divergence", v.v_divergence);
    ("wal_divergence", v.v_wal_divergence);
    ("leaked_locks", v.v_leaked_locks);
    ("engine_pending", v.v_engine_pending);
    ("unresolved", v.v_unresolved);
    ("in_doubt", v.v_in_doubt);
  ]

let audit (w : Tpc.Run.world) summaries =
  let b = Tpc.Mixer.Audit.breakdown w summaries in
  let net = w.Tpc.Run.net in
  (* agreement: no transaction may carry both commit and abort evidence
     anywhere in the complex's logs (heuristic records included: the chaos
     profiles never arm heuristics, so any conflict is a protocol bug) *)
  let commit_ev : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let abort_ev : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun wal ->
      List.iter
        (fun (r : Wal.Log_record.t) ->
          match r.kind with
          | Wal.Log_record.Rm_committed | Wal.Log_record.Committed
          | Wal.Log_record.Heuristic_commit ->
              Hashtbl.replace commit_ev r.txn ()
          | Wal.Log_record.Rm_aborted | Wal.Log_record.Aborted
          | Wal.Log_record.Heuristic_abort ->
              Hashtbl.replace abort_ev r.txn ()
          | Wal.Log_record.Rm_update | Wal.Log_record.Rm_prepared
          | Wal.Log_record.Checkpoint | Wal.Log_record.Commit_pending
          | Wal.Log_record.Prepared | Wal.Log_record.End
          | Wal.Log_record.Agent ->
              ())
        (Wal.Log.all_records wal))
    (Tpc.Run.all_wals w);
  let divergence =
    Hashtbl.fold
      (fun txn () acc -> if Hashtbl.mem abort_ev txn then acc + 1 else acc)
      commit_ev 0
  in
  let wal_divergence = ref 0 in
  let leaked = ref 0 in
  let unresolved_count = ref 0 in
  let in_doubt_count = ref 0 in
  List.iter
    (fun (name, (n : Tpc.Run.node)) ->
      if Tpc.Net.is_up net name then begin
        let kv = n.Tpc.Run.kv in
        let p = n.Tpc.Run.participant in
        (* recovery faithful to the log: the store must equal a pure replay
           of this member's records (catches recoveries that forget durable
           decisions, e.g. force_restart_amnesia) *)
        let expected =
          Kvstore.replay_bindings
            (Wal.Log.all_records n.Tpc.Run.wal)
            ~node:(Kvstore.name kv)
        in
        if Kvstore.committed_bindings kv <> expected then incr wal_divergence;
        (* lock hygiene: a grant still held here is legitimate only while
           its transaction is still blocked on this member (in doubt, or
           otherwise short of END in the protocol state) *)
        let unresolved = Tpc.Participant.unresolved_txns p in
        let in_doubt = Kvstore.in_doubt kv in
        unresolved_count := !unresolved_count + List.length unresolved;
        in_doubt_count :=
          !in_doubt_count
          + List.length (Tpc.Participant.in_doubt_txns p)
          + List.length in_doubt;
        List.iter
          (fun txn ->
            if
              (not (List.mem txn in_doubt))
              && not (List.mem_assoc txn unresolved)
            then incr leaked)
          (Lockmgr.holding_txns (Kvstore.locks kv))
      end)
    w.Tpc.Run.nodes;
  {
    v_committed_missing = b.Tpc.Mixer.Audit.committed_missing;
    v_aborted_applied = b.Tpc.Mixer.Audit.aborted_applied;
    v_bad_value = b.Tpc.Mixer.Audit.bad_value;
    v_divergence = divergence;
    v_wal_divergence = !wal_divergence;
    v_leaked_locks = !leaked;
    v_engine_pending = Simkernel.Engine.pending w.Tpc.Run.engine;
    v_unresolved = !unresolved_count;
    v_in_doubt = !in_doubt_count;
  }

let run_case_full ?config ?(broken_recovery = false) ?jitter_seed mix tree plan
    =
  let agg, w, summaries =
    Tpc.Mixer.run_full ?config
      ~inject:(inject ~broken_recovery ?jitter_seed plan)
      mix tree
  in
  (agg, audit w summaries, w)

let run_case ?config ?broken_recovery ?jitter_seed mix tree plan =
  let agg, v, _w = run_case_full ?config ?broken_recovery ?jitter_seed mix tree plan in
  (agg, v)

(* ------------------------------------------------------------------ *)
(* Schedule shrinking                                                  *)
(* ------------------------------------------------------------------ *)

let shrink ~check plan =
  if not (check plan) then plan
  else
    let rec pass p =
      let rec try_each before = function
        | [] -> None
        | e :: rest ->
            let candidate = List.rev_append before rest in
            if check candidate then Some candidate
            else try_each (e :: before) rest
      in
      match try_each [] p with Some smaller -> pass smaller | None -> p
    in
    pass plan
