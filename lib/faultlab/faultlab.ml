(* Deterministic chaos engine: seeded fault plans, execution against a
   live mixer world, fault-aware acceptance audit, greedy schedule
   shrinking.  See faultlab.mli for the contract. *)

type forge_kind = Forge_prepare | Forge_commit | Forge_abort

type event =
  | Crash of { at : float; node : string; restart_after : float option }
  | Partition of {
      at : float;
      a : string;
      b : string;
      heal_after : float option;
    }
  | Drop of { at : float; src : string; dst : string; nth : int }
  | Jitter of { at : float; src : string; dst : string; amp : float }
  (* adversarial vocabulary: a Byzantine relay and a rogue operator *)
  | Equivocate of { at : float; node : string; count : int }
  | Flip_vote of { at : float; src : string; dst : string; nth : int }
  | Forge of { at : float; src : string; dst : string; kind : forge_kind }
  | Force_heuristic of { at : float; node : string; action : Tpc.Types.outcome }
  | Replay of { at : float; src : string; dst : string; count : int }
  (* corrupt one coordinator replica of the BFT ensemble: from [at] on, the
     adversary holds that replica's signing key.  Only with f+1 distinct
     corrupted replicas can it mint a valid decision certificate. *)
  | Corrupt_replica of { at : float; replica : int }

type plan = event list

let is_adversarial_event = function
  | Equivocate _ | Flip_vote _ | Forge _ | Force_heuristic _ | Replay _
  | Corrupt_replica _ ->
      true
  | Crash _ | Partition _ | Drop _ | Jitter _ -> false

let is_adversarial plan = List.exists is_adversarial_event plan

(* Distinct BFT coordinator replicas this plan corrupts: the [f]-threshold
   comparison the chaos gate runs ("corrupted <= f implies zero atomicity
   violations") is against this static count. *)
let corrupted_replicas plan =
  List.length
    (List.sort_uniq compare
       (List.filter_map
          (function Corrupt_replica { replica; _ } -> Some replica | _ -> None)
          plan))

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

(* Generated times are quantized to 1ms (see [norm]), so %.12g prints them
   exactly and the printed plan replays the identical schedule. *)
let fl x = Printf.sprintf "%.12g" x

let opt_delay = function Some d -> "+" ^ fl d | None -> "-"

let forge_kind_to_string = function
  | Forge_prepare -> "prepare"
  | Forge_commit -> "commit"
  | Forge_abort -> "abort"

let action_to_string = function
  | Tpc.Types.Committed -> "commit"
  | Tpc.Types.Aborted -> "abort"

let event_to_string = function
  | Crash { at; node; restart_after } ->
      Printf.sprintf "crash@%s:%s:%s" (fl at) node (opt_delay restart_after)
  | Partition { at; a; b; heal_after } ->
      Printf.sprintf "part@%s:%s|%s:%s" (fl at) a b (opt_delay heal_after)
  | Drop { at; src; dst; nth } ->
      Printf.sprintf "drop@%s:%s>%s:%d" (fl at) src dst nth
  | Jitter { at; src; dst; amp } ->
      Printf.sprintf "jit@%s:%s>%s:%s" (fl at) src dst (fl amp)
  | Equivocate { at; node; count } ->
      Printf.sprintf "equiv@%s:%s:%d" (fl at) node count
  | Flip_vote { at; src; dst; nth } ->
      Printf.sprintf "flip@%s:%s>%s:%d" (fl at) src dst nth
  | Forge { at; src; dst; kind } ->
      Printf.sprintf "forge@%s:%s>%s:%s" (fl at) src dst
        (forge_kind_to_string kind)
  | Force_heuristic { at; node; action } ->
      Printf.sprintf "heur@%s:%s:%s" (fl at) node (action_to_string action)
  | Replay { at; src; dst; count } ->
      Printf.sprintf "replay@%s:%s>%s:%d" (fl at) src dst count
  | Corrupt_replica { at; replica } ->
      Printf.sprintf "corrupt@%s:%d:-" (fl at) replica

let to_string plan = String.concat "," (List.map event_to_string plan)

let bad s = invalid_arg (Printf.sprintf "Faultlab.of_string: malformed %S" s)

let parse_float s tok = match float_of_string_opt s with
  | Some f -> f
  | None -> bad tok

let parse_delay s tok =
  if s = "-" then None
  else if String.length s > 1 && s.[0] = '+' then
    Some (parse_float (String.sub s 1 (String.length s - 1)) tok)
  else bad tok

let split2 sep s tok =
  match String.index_opt s sep with
  | Some i ->
      (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  | None -> bad tok

let parse_event tok =
  let kind, rest = split2 '@' tok tok in
  match String.split_on_char ':' rest with
  | [ at; spec; arg ] -> (
      let at = parse_float at tok in
      match kind with
      | "crash" -> Crash { at; node = spec; restart_after = parse_delay arg tok }
      | "part" ->
          let a, b = split2 '|' spec tok in
          Partition { at; a; b; heal_after = parse_delay arg tok }
      | "drop" ->
          let src, dst = split2 '>' spec tok in
          let nth = match int_of_string_opt arg with
            | Some n when n >= 1 -> n
            | _ -> bad tok
          in
          Drop { at; src; dst; nth }
      | "jit" ->
          let src, dst = split2 '>' spec tok in
          Jitter { at; src; dst; amp = parse_float arg tok }
      | "equiv" ->
          let count = match int_of_string_opt arg with
            | Some n when n >= 1 -> n
            | _ -> bad tok
          in
          Equivocate { at; node = spec; count }
      | "flip" ->
          let src, dst = split2 '>' spec tok in
          let nth = match int_of_string_opt arg with
            | Some n when n >= 1 -> n
            | _ -> bad tok
          in
          Flip_vote { at; src; dst; nth }
      | "forge" ->
          let src, dst = split2 '>' spec tok in
          let kind = match arg with
            | "prepare" -> Forge_prepare
            | "commit" -> Forge_commit
            | "abort" -> Forge_abort
            | _ -> bad tok
          in
          Forge { at; src; dst; kind }
      | "heur" ->
          let action = match arg with
            | "commit" -> Tpc.Types.Committed
            | "abort" -> Tpc.Types.Aborted
            | _ -> bad tok
          in
          Force_heuristic { at; node = spec; action }
      | "replay" ->
          let src, dst = split2 '>' spec tok in
          let count = match int_of_string_opt arg with
            | Some n when n >= 1 -> n
            | _ -> bad tok
          in
          Replay { at; src; dst; count }
      | "corrupt" ->
          if arg <> "-" then bad tok;
          let replica = match int_of_string_opt spec with
            | Some n when n >= 0 -> n
            | _ -> bad tok
          in
          Corrupt_replica { at; replica }
      | _ -> bad tok)
  | _ -> bad tok

let of_string s =
  if s = "" then []
  else List.map parse_event (String.split_on_char ',' s)

(* ------------------------------------------------------------------ *)
(* Seeded generation                                                   *)
(* ------------------------------------------------------------------ *)

type gen_cfg = {
  crashes : int;
  partitions : int;
  drops : int;
  jitters : int;
  horizon : float;
  restart_prob : float;
  mean_downtime : float;
  mean_partition : float;
  jitter_amp : float;
  (* adversarial event counts; all default 0, and their draws come after
     every benign draw, so benign plans are byte-identical to pre-adversary
     faultlab for the same seed *)
  equivocations : int;
  vote_flips : int;
  forgeries : int;
  forced_heuristics : int;
  (* the second adversarial generation wave, drawn strictly after the
     first so plans generated with these at zero/None stay byte-identical
     to earlier faultlab for the same seed *)
  replays : int;
  corruptions : int;  (* distinct BFT replicas to corrupt, capped at domain *)
  corrupt_domain : int;  (* replica index space: 2f+1 for the target f *)
  gc_align : float option;
      (* targeted schedule: snap every adversarial event time to the
         nearest multiple of this group-commit flush window, so faults
         land exactly at the batched-force boundary.  Pure post-draw
         retiming - zero RNG draws consumed *)
}

let default_gen =
  {
    crashes = 2;
    partitions = 1;
    drops = 3;
    jitters = 2;
    horizon = 2000.0;
    restart_prob = 0.8;
    mean_downtime = 150.0;
    mean_partition = 120.0;
    jitter_amp = 4.0;
    equivocations = 0;
    vote_flips = 0;
    forgeries = 0;
    forced_heuristics = 0;
    replays = 0;
    corruptions = 0;
    corrupt_domain = 3;
    gc_align = None;
  }

let norm x = Float.round (x *. 1000.0) /. 1000.0

let event_time = function
  | Crash { at; _ } | Partition { at; _ } | Drop { at; _ } | Jitter { at; _ }
  | Equivocate { at; _ } | Flip_vote { at; _ } | Forge { at; _ }
  | Force_heuristic { at; _ } | Replay { at; _ } | Corrupt_replica { at; _ } ->
      at

let sort_plan plan =
  List.sort
    (fun a b ->
      match compare (event_time a) (event_time b) with
      | 0 -> compare (event_to_string a) (event_to_string b)
      | c -> c)
    plan

let gen ~seed ~nodes cfg =
  if nodes = [] then invalid_arg "Faultlab.gen: empty node list";
  let rng = Simkernel.Det_rng.create ~seed in
  let arr = Array.of_list nodes in
  let pick () = Simkernel.Det_rng.pick rng arr in
  let pick_pair () =
    (* distinct endpoints; the caller guarantees >= 2 nodes *)
    let a = pick () in
    let rec other () =
      let b = pick () in
      if b = a then other () else b
    in
    (a, other ())
  in
  let at () = norm (Simkernel.Det_rng.float rng cfg.horizon) in
  let delay ~mean =
    if Simkernel.Det_rng.float rng 1.0 < cfg.restart_prob then
      Some (norm (1.0 +. Simkernel.Det_rng.exponential rng ~mean))
    else None
  in
  let evs = ref [] in
  let push e = evs := e :: !evs in
  for _ = 1 to cfg.crashes do
    push
      (Crash
         {
           at = at ();
           node = pick ();
           restart_after = delay ~mean:cfg.mean_downtime;
         })
  done;
  if Array.length arr >= 2 then begin
    for _ = 1 to cfg.partitions do
      let a, b = pick_pair () in
      push (Partition { at = at (); a; b; heal_after = delay ~mean:cfg.mean_partition })
    done;
    for _ = 1 to cfg.drops do
      let src, dst = pick_pair () in
      push (Drop { at = at (); src; dst; nth = 1 + Simkernel.Det_rng.int rng 4 })
    done;
    for _ = 1 to cfg.jitters do
      let src, dst = pick_pair () in
      let amp = norm (0.5 +. Simkernel.Det_rng.float rng (Float.max 0.0 (cfg.jitter_amp -. 0.5))) in
      push (Jitter { at = at (); src; dst; amp })
    done
  end;
  (* adversarial draws strictly after every benign draw: a plan generated
     with all adversarial counts at zero consumes the identical RNG prefix
     and is byte-identical to one from the pre-adversary generator *)
  for _ = 1 to cfg.equivocations do
    push
      (Equivocate
         { at = at (); node = pick (); count = 1 + Simkernel.Det_rng.int rng 3 })
  done;
  if Array.length arr >= 2 then begin
    for _ = 1 to cfg.vote_flips do
      let src, dst = pick_pair () in
      push (Flip_vote { at = at (); src; dst; nth = 1 + Simkernel.Det_rng.int rng 3 })
    done;
    for _ = 1 to cfg.forgeries do
      let src, dst = pick_pair () in
      let kind =
        match Simkernel.Det_rng.int rng 3 with
        | 0 -> Forge_prepare
        | 1 -> Forge_commit
        | _ -> Forge_abort
      in
      push (Forge { at = at (); src; dst; kind })
    done
  end;
  for _ = 1 to cfg.forced_heuristics do
    let action =
      if Simkernel.Det_rng.int rng 2 = 0 then Tpc.Types.Committed
      else Tpc.Types.Aborted
    in
    push (Force_heuristic { at = at (); node = pick (); action })
  done;
  (* second adversarial wave: replays, then replica corruptions - again
     strictly after every earlier draw, so PR7-era adversarial plans stay
     byte-identical for the same seed when these counts are zero *)
  if Array.length arr >= 2 then
    for _ = 1 to cfg.replays do
      let src, dst = pick_pair () in
      push (Replay { at = at (); src; dst; count = 1 + Simkernel.Det_rng.int rng 2 })
    done;
  let domain = max 1 cfg.corrupt_domain in
  let chosen : (int, unit) Hashtbl.t = Hashtbl.create 4 in
  for _ = 1 to min cfg.corruptions domain do
    let when_ = at () in
    let rec fresh () =
      let r = Simkernel.Det_rng.int rng domain in
      if Hashtbl.mem chosen r then fresh () else r
    in
    let r = fresh () in
    Hashtbl.replace chosen r ();
    push (Corrupt_replica { at = when_; replica = r })
  done;
  (* targeted scheduling: retime adversarial events onto the group-commit
     flush boundary.  Post-draw, so alignment never perturbs the RNG
     stream; benign events keep their natural times. *)
  let aligned =
    match cfg.gc_align with
    | Some w when w > 0.0 ->
        let snap at = norm (Float.max w (Float.round (at /. w) *. w)) in
        List.map
          (fun e ->
            if not (is_adversarial_event e) then e
            else
              match e with
              | Equivocate r -> Equivocate { r with at = snap r.at }
              | Flip_vote r -> Flip_vote { r with at = snap r.at }
              | Forge r -> Forge { r with at = snap r.at }
              | Force_heuristic r -> Force_heuristic { r with at = snap r.at }
              | Replay r -> Replay { r with at = snap r.at }
              | Corrupt_replica r -> Corrupt_replica { r with at = snap r.at }
              | Crash _ | Partition _ | Drop _ | Jitter _ -> e)
          !evs
    | _ -> !evs
  in
  sort_plan aligned

let tree_nodes tree =
  List.map (fun (p : Tpc.Types.profile) -> p.p_name) (Tpc.Types.tree_members tree)

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let flip_outcome = function
  | Tpc.Types.Committed -> Tpc.Types.Aborted
  | Tpc.Types.Aborted -> Tpc.Types.Committed

let flip_vote = function
  | Tpc.Types.Vote_yes _ -> Tpc.Types.Vote_no
  | Tpc.Types.Vote_no -> Tpc.Types.Vote_yes { reliable = false; leave_out_ok = false }
  | Tpc.Types.Vote_read_only -> Tpc.Types.Vote_read_only

let cell tbl key init =
  match Hashtbl.find_opt tbl key with
  | Some r -> r
  | None ->
      let r = ref init in
      Hashtbl.replace tbl key r;
      r

let inject ?(broken_recovery = false) ?(jitter_seed = 0x5eed) plan
    (w : Tpc.Run.world) =
  let engine = w.Tpc.Run.engine in
  let net = w.Tpc.Run.net in
  let sched_at ~at f = ignore (Simkernel.Engine.schedule_at engine ~time:at f) in
  let sched_after ~delay f =
    ignore (Simkernel.Engine.schedule engine ~delay f)
  in
  let known name = List.mem_assoc name w.Tpc.Run.nodes in
  let jit_amps : (string * string, float) Hashtbl.t = Hashtbl.create 4 in
  if List.exists (function Jitter _ -> true | _ -> false) plan then begin
    let jrng = Simkernel.Det_rng.create ~seed:jitter_seed in
    Tpc.Net.set_jitter net
      (Some
         (fun ~src ~dst ->
           match Hashtbl.find_opt jit_amps (src, dst) with
           | Some amp -> Simkernel.Det_rng.float jrng amp
           | None -> 0.0))
  end;
  (* BFT replica corruption: the set of coordinator-replica signing keys
     the adversary holds right now, filled in by [Corrupt_replica] events
     as they fire.  Only with a full f+1 quorum of corrupted replicas can
     it mint a certificate that validates - below that threshold every
     forged or equivocated decision is uncertifiable and honest BFT
     members refuse it. *)
  let corrupted : (int, unit) Hashtbl.t = Hashtbl.create 4 in
  let f = max 0 w.Tpc.Run.cfg.Tpc.Types.bft_f in
  let forged_cert ~txn ~outcome =
    if Hashtbl.length corrupted < f + 1 then None
    else
      let replicas =
        List.filteri
          (fun i _ -> i <= f)
          (List.sort compare
             (Hashtbl.fold (fun r () acc -> r :: acc) corrupted []))
      in
      Some
        {
          Tpc.Msg.c_endorsements =
            List.map
              (fun replica ->
                Tpc.Msg.endorse ~replica ~txn ~outcome ~votes:"forged")
              replicas;
        }
  in
  (* The Byzantine relay: one netsim mutator serves equivocation (flip the
     next [count] outcomes this node announces, so different members hear
     different decisions), in-flight vote flipping (the [nth] vote on a
     link, counted like [drop_nth], turns YES into NO or NO into YES) and
     the replay tap (remember the last bundle seen per link so [Replay]
     can re-deliver genuine stale traffic).  Installed only when the plan
     needs it, so benign plans leave the network untouched.  A flipped
     vote keeps its stale signature tag and an equivocated decision keeps
     its stale certificate unless the adversary can re-sign - exactly the
     power a real Byzantine relay has. *)
  let equiv_left : (string, int ref) Hashtbl.t = Hashtbl.create 4 in
  let votes_seen : (string * string, int ref) Hashtbl.t = Hashtbl.create 4 in
  let flip_targets : (string * string, int list ref) Hashtbl.t =
    Hashtbl.create 4
  in
  let last_bundle : (string * string, Tpc.Msg.payload list) Hashtbl.t =
    Hashtbl.create 8
  in
  let wants_replay =
    List.exists (function Replay _ -> true | _ -> false) plan
  in
  if
    List.exists
      (function Equivocate _ | Flip_vote _ | Replay _ -> true | _ -> false)
      plan
  then
    Tpc.Net.set_mutator net
      (Some
         (fun ~src ~dst payloads ->
           let out =
             List.map
               (fun (p : Tpc.Msg.payload) ->
                 match p with
                 | Tpc.Msg.Decision_msg { txn; outcome; cert } -> (
                     match Hashtbl.find_opt equiv_left src with
                     | Some n when !n > 0 ->
                         decr n;
                         let outcome = flip_outcome outcome in
                         let cert =
                           match forged_cert ~txn ~outcome with
                           | Some c -> Some c
                           | None -> cert
                         in
                         Tpc.Msg.Decision_msg { txn; outcome; cert }
                     | _ -> p)
                 | Tpc.Msg.Vote_msg v ->
                     let seen = cell votes_seen (src, dst) 0 in
                     incr seen;
                     let targets = cell flip_targets (src, dst) [] in
                     if List.mem !seen !targets then begin
                       targets := List.filter (fun n -> n <> !seen) !targets;
                       Tpc.Msg.Vote_msg { v with vote = flip_vote v.vote }
                     end
                     else p
                 | _ -> p)
               payloads
           in
           if wants_replay then Hashtbl.replace last_bundle (src, dst) out;
           out))
  else ();
  let forge_seq = ref 0 in
  List.iter
    (function
      | Crash { at; node; restart_after } ->
          if known node then
            sched_at ~at (fun () ->
                let p = Tpc.Run.participant w node in
                if not (Tpc.Participant.is_crashed p) then begin
                  Tpc.Participant.force_crash p;
                  match restart_after with
                  | None -> ()
                  | Some d ->
                      sched_after ~delay:d (fun () ->
                          if Tpc.Participant.is_crashed p then
                            if broken_recovery then
                              Tpc.Participant.force_restart_amnesia p
                            else Tpc.Participant.force_restart p)
                end)
      | Partition { at; a; b; heal_after } ->
          if known a && known b && a <> b then
            sched_at ~at (fun () ->
                Tpc.Net.partition net a b;
                match heal_after with
                | None -> ()
                | Some d -> sched_after ~delay:d (fun () -> Tpc.Net.heal net a b))
      | Drop { at; src; dst; nth } ->
          if known src && known dst && src <> dst then
            sched_at ~at (fun () -> Tpc.Net.drop_nth net ~src ~dst ~nth)
      | Jitter { at; src; dst; amp } ->
          sched_at ~at (fun () -> Hashtbl.replace jit_amps (src, dst) amp)
      | Equivocate { at; node; count } ->
          if known node then
            sched_at ~at (fun () ->
                let c = cell equiv_left node 0 in
                c := !c + count)
      | Flip_vote { at; src; dst; nth } ->
          if known src && known dst && src <> dst then
            sched_at ~at (fun () ->
                (* like [drop_nth]: the nth vote counted from activation *)
                let seen = !(cell votes_seen (src, dst) 0) in
                let targets = cell flip_targets (src, dst) [] in
                targets := (seen + nth) :: !targets)
      | Forge { at; src; dst; kind } ->
          if known src && known dst && src <> dst then begin
            (* ghost ids are assigned in plan order at scheduling time, so
               the same plan string always forges the same transactions *)
            let ghost = Printf.sprintf "forged-%d" !forge_seq in
            incr forge_seq;
            sched_at ~at (fun () ->
                let payload =
                  match kind with
                  | Forge_prepare ->
                      (* a stale/wrong-txn-id prepare retransmission *)
                      Tpc.Msg.Prepare { txn = ghost; long_locks = false }
                  | Forge_commit | Forge_abort ->
                      (* a forged decision targets whatever the victim is
                         actually blocked on - the adversary reads the
                         wire, so it knows which transactions are in
                         doubt; with nothing in doubt it replays a stale
                         decision for a ghost transaction *)
                      let txn =
                        let n = List.assoc dst w.Tpc.Run.nodes in
                        match
                          Tpc.Participant.in_doubt_txns n.Tpc.Run.participant
                        with
                        | t :: _ -> t
                        | [] -> (
                            match
                              List.sort compare (Kvstore.in_doubt n.Tpc.Run.kv)
                            with
                            | t :: _ -> t
                            | [] -> ghost)
                      in
                      let outcome =
                        match kind with
                        | Forge_commit -> Tpc.Types.Committed
                        | _ -> Tpc.Types.Aborted
                      in
                      (* the forgery carries a valid certificate exactly
                         when the adversary holds an f+1 quorum of replica
                         keys; below the threshold it is uncertified and
                         BFT members refuse it *)
                      Tpc.Msg.Decision_msg
                        { txn; outcome; cert = forged_cert ~txn ~outcome }
                in
                Tpc.Net.inject net ~src ~dst [ payload ])
          end
      | Force_heuristic { at; node; action } ->
          if known node then
            sched_at ~at (fun () ->
                let p = Tpc.Run.participant w node in
                List.iter
                  (fun txn -> Tpc.Participant.force_heuristic p ~txn action)
                  (Tpc.Participant.in_doubt_txns p))
      | Replay { at; src; dst; count } ->
          (* genuine stale re-delivery: whatever bundle last crossed this
             link is injected again, verbatim - no forged content, just
             duplicated history.  Honest protocols must absorb duplicates
             idempotently; nothing to replay (quiet link) is a no-op. *)
          if known src && known dst && src <> dst then
            sched_at ~at (fun () ->
                match Hashtbl.find_opt last_bundle (src, dst) with
                | Some payloads ->
                    for _ = 1 to count do
                      Tpc.Net.inject net ~src ~dst payloads
                    done
                | None -> ())
      | Corrupt_replica { at; replica } ->
          sched_at ~at (fun () -> Hashtbl.replace corrupted replica ()))
    plan

(* ------------------------------------------------------------------ *)
(* Fault-aware acceptance check                                        *)
(* ------------------------------------------------------------------ *)

type verdict = {
  v_committed_missing : int;
  v_aborted_applied : int;
  v_bad_value : int;
  v_divergence : int;
  v_wal_divergence : int;
  v_leaked_locks : int;
  v_engine_pending : int;
  v_unresolved : int;
  v_in_doubt : int;
}

let ok v =
  v.v_committed_missing = 0 && v.v_aborted_applied = 0 && v.v_bad_value = 0
  && v.v_divergence = 0 && v.v_wal_divergence = 0 && v.v_leaked_locks = 0
  && v.v_engine_pending = 0

let verdict_fields v =
  [
    ("committed_missing", v.v_committed_missing);
    ("aborted_applied", v.v_aborted_applied);
    ("bad_value", v.v_bad_value);
    ("divergence", v.v_divergence);
    ("wal_divergence", v.v_wal_divergence);
    ("leaked_locks", v.v_leaked_locks);
    ("engine_pending", v.v_engine_pending);
    ("unresolved", v.v_unresolved);
    ("in_doubt", v.v_in_doubt);
  ]

let audit (w : Tpc.Run.world) summaries =
  let b = Tpc.Mixer.Audit.breakdown w summaries in
  let net = w.Tpc.Run.net in
  (* agreement: no transaction may carry both commit and abort evidence
     anywhere in the complex's logs (heuristic records included: the chaos
     profiles never arm heuristics, so any conflict is a protocol bug) *)
  let commit_ev : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let abort_ev : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun wal ->
      List.iter
        (fun (r : Wal.Log_record.t) ->
          match r.kind with
          | Wal.Log_record.Rm_committed | Wal.Log_record.Committed
          | Wal.Log_record.Heuristic_commit ->
              Hashtbl.replace commit_ev r.txn ()
          | Wal.Log_record.Rm_aborted | Wal.Log_record.Aborted
          | Wal.Log_record.Heuristic_abort ->
              Hashtbl.replace abort_ev r.txn ()
          | Wal.Log_record.Rm_update | Wal.Log_record.Rm_prepared
          | Wal.Log_record.Checkpoint | Wal.Log_record.Commit_pending
          | Wal.Log_record.Prepared | Wal.Log_record.End
          | Wal.Log_record.Agent | Wal.Log_record.Certificate ->
              ())
        (Wal.Log.all_records wal))
    (Tpc.Run.all_wals w);
  let divergence =
    Hashtbl.fold
      (fun txn () acc -> if Hashtbl.mem abort_ev txn then acc + 1 else acc)
      commit_ev 0
  in
  let wal_divergence = ref 0 in
  let leaked = ref 0 in
  let unresolved_count = ref 0 in
  let in_doubt_count = ref 0 in
  List.iter
    (fun (name, (n : Tpc.Run.node)) ->
      if Tpc.Net.is_up net name then begin
        let kv = n.Tpc.Run.kv in
        let p = n.Tpc.Run.participant in
        (* recovery faithful to the log: the store must equal a pure replay
           of this member's records (catches recoveries that forget durable
           decisions, e.g. force_restart_amnesia) *)
        let expected =
          Kvstore.replay_bindings
            (Wal.Log.all_records n.Tpc.Run.wal)
            ~node:(Kvstore.name kv)
        in
        if Kvstore.committed_bindings kv <> expected then incr wal_divergence;
        (* lock hygiene: a grant still held here is legitimate only while
           its transaction is still blocked on this member (in doubt, or
           otherwise short of END in the protocol state) *)
        let unresolved = Tpc.Participant.unresolved_txns p in
        let in_doubt = Kvstore.in_doubt kv in
        unresolved_count := !unresolved_count + List.length unresolved;
        in_doubt_count :=
          !in_doubt_count
          + List.length (Tpc.Participant.in_doubt_txns p)
          + List.length in_doubt;
        List.iter
          (fun txn ->
            if
              (not (List.mem txn in_doubt))
              && not (List.mem_assoc txn unresolved)
            then incr leaked)
          (Lockmgr.holding_txns (Kvstore.locks kv))
      end)
    w.Tpc.Run.nodes;
  {
    v_committed_missing = b.Tpc.Mixer.Audit.committed_missing;
    v_aborted_applied = b.Tpc.Mixer.Audit.aborted_applied;
    v_bad_value = b.Tpc.Mixer.Audit.bad_value;
    v_divergence = divergence;
    v_wal_divergence = !wal_divergence;
    v_leaked_locks = !leaked;
    v_engine_pending = Simkernel.Engine.pending w.Tpc.Run.engine;
    v_unresolved = !unresolved_count;
    v_in_doubt = !in_doubt_count;
  }

(* ------------------------------------------------------------------ *)
(* Damage accounting (adversarial audit)                               *)
(* ------------------------------------------------------------------ *)

type accounting = {
  a_atomicity : int;
  a_heur_reported : int;
  a_heur_silent : int;
  a_blocked : int;
  a_rejected : int;
}

let accounting_fields a =
  [
    ("atomicity_violations", a.a_atomicity);
    ("heur_damage_reported", a.a_heur_reported);
    ("heur_damage_silent", a.a_heur_silent);
    ("blocked", a.a_blocked);
    ("rejected_forgeries", a.a_rejected);
  ]

(* ------------------------------------------------------------------ *)
(* Blocking windows                                                    *)
(* ------------------------------------------------------------------ *)

let blocking_windows = [ "in_doubt"; "blocked_lock"; "heur_exposure" ]

let blocking_json reg =
  Tpc.Json.Obj
    (List.map
       (fun name ->
         let fields =
           match Obs.Registry.find_histogram reg ("blocking/" ^ name) with
           | Some h when Obs.Histogram.count h > 0 ->
               [
                 ("count", Tpc.Json.Int (Obs.Histogram.count h));
                 ("p50", Tpc.Json.Float (Obs.Histogram.quantile h 50.0));
                 ("p99", Tpc.Json.Float (Obs.Histogram.quantile h 99.0));
               ]
           | _ ->
               [
                 ("count", Tpc.Json.Int 0);
                 ("p50", Tpc.Json.Float 0.0);
                 ("p99", Tpc.Json.Float 0.0);
               ]
         in
         (name, Tpc.Json.Obj fields))
       blocking_windows)

(* RM records are logged under "<member>.rm"; map them back to the member
   so heuristic-tainted RM evidence can be told apart from honest RM
   evidence. *)
let strip_rm n =
  if Filename.check_suffix n ".rm" then Filename.chop_suffix n ".rm" else n

let account (w : Tpc.Run.world) (summaries : Tpc.Mixer.txn_summary list) =
  let net = w.Tpc.Run.net in
  let wals = Tpc.Run.all_wals w in
  (* pass 1: where were heuristic decisions taken, and which way? *)
  let heur : (string * string, Tpc.Types.outcome) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun wal ->
      List.iter
        (fun (r : Wal.Log_record.t) ->
          match r.kind with
          | Wal.Log_record.Heuristic_commit ->
              Hashtbl.replace heur (r.node, r.txn) Tpc.Types.Committed
          | Wal.Log_record.Heuristic_abort ->
              Hashtbl.replace heur (r.node, r.txn) Tpc.Types.Aborted
          | _ -> ())
        (Wal.Log.all_records wal))
    wals;
  (* pass 2: per-transaction "strong" (non-heuristic) evidence.  A TM
     outcome record is always honest knowledge (resolve_heuristic appends
     the real outcome even at a damaged node); an RM record counts only
     when its member did not reach that state heuristically. *)
  let commit_strong : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let abort_strong : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  (* what each node was durably told the outcome was - under an
     equivocating coordinator this can be a lie, which is how heuristic
     damage gets concealed from its own member *)
  let told : (string * string, Tpc.Types.outcome) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun wal ->
      List.iter
        (fun (r : Wal.Log_record.t) ->
          match r.kind with
          | Wal.Log_record.Committed ->
              Hashtbl.replace told (r.node, r.txn) Tpc.Types.Committed;
              Hashtbl.replace commit_strong r.txn ()
          | Wal.Log_record.Aborted ->
              Hashtbl.replace told (r.node, r.txn) Tpc.Types.Aborted;
              Hashtbl.replace abort_strong r.txn ()
          | Wal.Log_record.Rm_committed ->
              if
                Hashtbl.find_opt heur (strip_rm r.node, r.txn)
                <> Some Tpc.Types.Committed
              then Hashtbl.replace commit_strong r.txn ()
          | Wal.Log_record.Rm_aborted ->
              if
                Hashtbl.find_opt heur (strip_rm r.node, r.txn)
                <> Some Tpc.Types.Aborted
              then Hashtbl.replace abort_strong r.txn ()
          | _ -> ())
        (Wal.Log.all_records wal))
    wals;
  (* which damage reports reached an operator console (the damaged member
     records its own detection; ack-borne copies land at coordinators) *)
  let seen : (string * string * Tpc.Types.outcome, unit) Hashtbl.t =
    Hashtbl.create 16
  in
  let report_truth : (string, Tpc.Types.outcome) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun (_, (n : Tpc.Run.node)) ->
      List.iter
        (fun (txn, (d : Tpc.Msg.damage_report)) ->
          Hashtbl.replace seen (txn, d.Tpc.Msg.d_node, d.Tpc.Msg.d_action) ();
          Hashtbl.replace report_truth txn d.Tpc.Msg.d_outcome)
        (Tpc.Participant.damage_seen n.Tpc.Run.participant))
    w.Tpc.Run.nodes;
  (* ground truth per transaction: the root's announced outcome when there
     is one (a vote flipped to YES makes the root commit - that commit IS
     the decision the protocol reached; the flipped voter's unilateral
     abort is the violation), else strong durable evidence, else the
     outcome some member resolved its heuristic against (a presumed abort
     can leave no durable record, but its damage report names it).  [None]
     means nobody ever decided - a ghost transaction the adversary forged
     into existence; a heuristic on it is not (yet) damage, because there
     is no decision to contradict, and its member stays blocked. *)
  let announced : (string, Tpc.Types.outcome) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (s : Tpc.Mixer.txn_summary) ->
      match s.Tpc.Mixer.ts_outcome with
      | Some o -> Hashtbl.replace announced s.Tpc.Mixer.ts_txn o
      | None -> ())
    summaries;
  let real_outcome txn =
    match Hashtbl.find_opt announced txn with
    | Some o -> Some o
    | None ->
        if Hashtbl.mem commit_strong txn then Some Tpc.Types.Committed
        else if Hashtbl.mem abort_strong txn then Some Tpc.Types.Aborted
        else Hashtbl.find_opt report_truth txn
  in
  (* atomicity violation: some node durably landed on the opposite of the
     decision the protocol really reached - two coordinations durably
     disagreeing, or an equivocation victim durably believing the flipped
     decision (PA aborts leave no durable record at honest members, so the
     real outcome, not abort-side evidence, anchors the test).  Divergence
     where the contradicting side is heuristic-only is heuristic damage,
     not an atomicity violation - the protocol did not disagree with
     itself, an operator overrode it. *)
  let strong_txns : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter (fun txn () -> Hashtbl.replace strong_txns txn ()) commit_strong;
  Hashtbl.iter (fun txn () -> Hashtbl.replace strong_txns txn ()) abort_strong;
  let atomicity =
    Hashtbl.fold
      (fun txn () acc ->
        match real_outcome txn with
        | Some Tpc.Types.Committed when Hashtbl.mem abort_strong txn -> acc + 1
        | Some Tpc.Types.Aborted when Hashtbl.mem commit_strong txn -> acc + 1
        | _ -> acc)
      strong_txns 0
  in
  let blocked = ref 0 in
  let rejected = ref 0 in
  let in_doubt_at : (string * string, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (name, (n : Tpc.Run.node)) ->
      let p = n.Tpc.Run.participant in
      rejected := !rejected + Tpc.Participant.rejected_forgeries p;
      List.iter
        (fun txn -> Hashtbl.replace in_doubt_at (name, txn) ())
        (Tpc.Participant.in_doubt_txns p);
      if Tpc.Net.is_up net name then
        blocked :=
          !blocked
          + List.length (Tpc.Participant.in_doubt_txns p)
          + List.length (Kvstore.in_doubt n.Tpc.Run.kv))
    w.Tpc.Run.nodes;
  (* Classify each heuristic decision.  Damage exists only against a real
     outcome; a damaged member still in doubt has not yet learned that
     outcome (it is counted blocked, and its report is owed at
     resolution), and a damaged member that is down reports at recovery -
     the same excuses the benign audit grants.  What remains silent is the
     auditable bug class: an up member that resolved (or forgot) a
     contradicting heuristic with no operator console anywhere recording
     it. *)
  let reported = ref 0 and silent = ref 0 in
  Hashtbl.iter
    (fun (node, txn) action ->
      match real_outcome txn with
      | None -> ()
      | Some o when action = o -> ()
      | Some _ ->
          if Hashtbl.find_opt told (node, txn) = Some action then
            (* the member was durably told its heuristic matched - an
               equivocator flipped the resolving decision in flight, so no
               honest party can see damage here.  The divergence is real
               and counted: the member's durable outcome contradicts the
               protocol's, an atomicity violation. *)
            ()
          else if Hashtbl.mem seen (txn, node, action) then incr reported
          else if
            Tpc.Net.is_up net node && not (Hashtbl.mem in_doubt_at (node, txn))
          then incr silent)
    heur;
  {
    a_atomicity = atomicity;
    a_heur_reported = !reported;
    a_heur_silent = !silent;
    a_blocked = !blocked;
    a_rejected = !rejected;
  }

(* Under an adversary, atomicity violations and reported heuristic damage
   are the measurement, not a harness failure; what must never happen is
   damage nobody heard about, or a broken world (store diverging from its
   log, leaked locks, a wedged engine). *)
let adversarial_ok (v : verdict) (a : accounting) =
  a.a_heur_silent = 0 && v.v_wal_divergence = 0 && v.v_leaked_locks = 0
  && v.v_engine_pending = 0

let run_case_full ?config ?(broken_recovery = false) ?jitter_seed ?scratch mix
    tree plan =
  let agg, w, summaries =
    Tpc.Mixer.run_full ?config
      ~inject:(inject ~broken_recovery ?jitter_seed plan)
      ?scratch mix tree
  in
  (agg, audit w summaries, w)

let run_case ?config ?broken_recovery ?jitter_seed mix tree plan =
  let agg, v, _w = run_case_full ?config ?broken_recovery ?jitter_seed mix tree plan in
  (agg, v)

let run_case_adversarial ?config ?(broken_recovery = false) ?jitter_seed
    ?scratch mix tree plan =
  let agg, w, summaries =
    Tpc.Mixer.run_full ?config
      ~inject:(inject ~broken_recovery ?jitter_seed plan)
      ?scratch mix tree
  in
  (agg, audit w summaries, account w summaries, w)

(* ------------------------------------------------------------------ *)
(* Schedule shrinking                                                  *)
(* ------------------------------------------------------------------ *)

let shrink ~check plan =
  if not (check plan) then plan
  else
    let rec pass p =
      let rec try_each before = function
        | [] -> None
        | e :: rest ->
            let candidate = List.rev_append before rest in
            if check candidate then Some candidate
            else try_each (e :: before) rest
      in
      match try_each [] p with Some smaller -> pass smaller | None -> p
    in
    pass plan
