(** Workload generators: commit-tree shapes and member-property mixes for
    the benches and the randomized tests.

    Table 3 of the paper analyses a transaction with [n] members of which
    [m] follow one optimization; these helpers build such trees in the
    shapes the analysis assumes and in the shapes the peer-to-peer
    discussion motivates. *)

val flat :
  ?decorate:(int -> Tpc.Types.profile -> Tpc.Types.profile) ->
  n:int ->
  unit ->
  Tpc.Types.tree
(** Coordinator with [n-1] leaf subordinates; [decorate i p] may adjust the
    profile of subordinate [i] (0-based).  Raises [Invalid_argument] when
    [n < 1]. *)

val chain :
  ?decorate:(int -> Tpc.Types.profile -> Tpc.Types.profile) ->
  n:int ->
  unit ->
  Tpc.Types.tree
(** A chain of cascaded coordinators of total size [n]. *)

val flat_with_delegation_chain : n:int -> m:int -> unit -> Tpc.Types.tree
(** Flat tree whose final [m] members form a delegation chain off the
    coordinator: the Table 3 shape for the last-agent row (each last agent
    picks one of its subordinates as its own last agent).  Requires
    [m < n]. *)

val random_tree : ?fanout:int -> seed:int -> n:int -> unit -> Tpc.Types.tree
(** Uniform random tree over [n] members with maximum [fanout] (default 4);
    deterministic in [seed]. *)

(** {2 Property mixes}

    Decorations marking the first [m] subordinates of a flat tree as
    followers of one optimization. *)

val read_only_mix : m:int -> int -> Tpc.Types.profile -> Tpc.Types.profile
val reliable_mix : m:int -> int -> Tpc.Types.profile -> Tpc.Types.profile
val unsolicited_mix : m:int -> int -> Tpc.Types.profile -> Tpc.Types.profile
val leave_out_mix : m:int -> int -> Tpc.Types.profile -> Tpc.Types.profile
val shared_log_mix : m:int -> int -> Tpc.Types.profile -> Tpc.Types.profile
val long_locks_mix : m:int -> int -> Tpc.Types.profile -> Tpc.Types.profile

(** {2 Table 3 experiment} *)

val table3_tree : Tpc.Cost_model.optimization -> n:int -> m:int -> Tpc.Types.tree
(** The commit tree for one Table 3 row: flat with [m] members following
    the optimization (a delegation chain for the last-agent row). *)

val table3_opt_variant : Tpc.Cost_model.optimization -> Tpc.Types.opt
(** The {!Tpc.Types.opt} switch for one Table 3 optimization. *)

val table3_opts : Tpc.Cost_model.optimization -> Tpc.Types.opts
(** The protocol switches that activate one optimization. *)

val run_table3 :
  ?protocol:Tpc.Types.protocol ->
  Tpc.Cost_model.optimization ->
  n:int ->
  m:int ->
  Tpc.Cost_model.counts
(** Run the Table 3 experiment for one optimization and return the
    simulated (flows, writes, forced) counts.  With [m = 0] the
    optimization is switched off entirely. *)

(** {2 Mixer sweeps} *)

val mixer_tree : ?n:int -> opts:Tpc.Types.opt list -> unit -> Tpc.Types.tree
(** Flat [n]-member tree for a {!Tpc.Mixer} run: the member-property side of
    each listed optimization (shared logs, long locks, reliable votes,
    unsolicited votes, suspendable servers) is applied to every
    subordinate.  Defaults to [n = 4]. *)

(** {2 Lock-contention experiment}

    Section 1's throughput claim: "a faster commit protocol can improve
    transaction throughput ... by causing locks to be released sooner,
    reducing the wait time of other transactions."  The experiment runs one
    distributed transaction and a stream of local intruder transactions at
    one member that want the key the distributed transaction holds; it
    measures how long the intruders wait for the lock under a given
    configuration. *)

type contention_result = {
  ct_intruders : int;          (** intruders that eventually got the lock *)
  ct_mean_wait : float;
  ct_max_wait : float;
  ct_commit_outcome : Tpc.Types.outcome option;
}

val contention_experiment :
  ?config:Tpc.Types.config ->
  ?arrivals:float list ->
  victim:string ->
  Tpc.Types.tree ->
  contention_result
(** Run one commit over [tree] while intruder transactions arrive at member
    [victim] (at the given virtual times, default [[0.5; 1.0; 1.5]]) wanting
    the exact key the distributed transaction locks there.  Each intruder
    commits as soon as its lock is granted, releasing it for the next. *)
