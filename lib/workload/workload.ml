(** Workload generators: commit-tree shapes and member-property mixes for the
    benches and the randomized tests.

    The paper's Table 3 analyses a transaction with [n] members of which [m]
    follow one optimization; these helpers build such trees in the shapes
    the analysis assumes (flat: every member a direct subordinate of the
    coordinator) and in the shapes the peer-to-peer discussion motivates
    (chains of cascaded coordinators, bushy random trees). *)

open Tpc.Types

(* ------------------------------------------------------------------ *)
(* Deterministic tree shapes                                           *)
(* ------------------------------------------------------------------ *)

(** Flat commit tree: a coordinator with [n-1] leaf subordinates.
    [decorate i p] may adjust the profile of subordinate [i] (0-based). *)
let flat ?(decorate = fun _ p -> p) ~n () =
  if n < 1 then invalid_arg "Workload.flat: n must be at least 1";
  Tree
    ( member "coord",
      List.init (n - 1) (fun i ->
          Tree (decorate i (member (Printf.sprintf "sub%d" i)), [])) )

(** Chain of cascaded coordinators: coord -> c1 -> c2 -> ... -> c[n-1]. *)
let chain ?(decorate = fun _ p -> p) ~n () =
  if n < 1 then invalid_arg "Workload.chain: n must be at least 1";
  let rec build i =
    if i >= n then []
    else [ Tree (decorate i (member (Printf.sprintf "c%d" i)), build (i + 1)) ]
  in
  Tree (member "coord", build 1)

(** Flat tree whose last [m] subordinates form a delegation chain hanging
    off the coordinator: the Table 3 shape for the last-agent row (each
    last agent picks one of its subordinates as its own last agent). *)
let flat_with_delegation_chain ~n ~m () =
  if m >= n then invalid_arg "Workload.flat_with_delegation_chain: m < n required";
  let rec agents i =
    if i >= m then []
    else [ Tree (member (Printf.sprintf "agent%d" i), agents (i + 1)) ]
  in
  let leaves =
    List.init (n - 1 - m) (fun i -> Tree (member (Printf.sprintf "sub%d" i), []))
  in
  Tree (member "coord", leaves @ agents 0)

(** Uniform random tree over [n] members with maximum fanout [fanout];
    deterministic in [seed]. *)
let random_tree ?(fanout = 4) ~seed ~n () =
  if n < 1 then invalid_arg "Workload.random_tree: n must be at least 1";
  let rng = Simkernel.Det_rng.create ~seed in
  (* attach each new member under a uniformly chosen existing member that
     still has fanout room *)
  let children = Array.make n [] in
  let counts = Array.make n 0 in
  for i = 1 to n - 1 do
    let rec pick () =
      let j = Simkernel.Det_rng.int rng i in
      if counts.(j) < fanout then j else pick ()
    in
    let parent = pick () in
    counts.(parent) <- counts.(parent) + 1;
    children.(parent) <- i :: children.(parent)
  done;
  let name i = if i = 0 then "coord" else Printf.sprintf "m%d" i in
  let rec build i =
    Tree (member (name i), List.map build (List.rev children.(i)))
  in
  build 0

(* ------------------------------------------------------------------ *)
(* Property mixes (the "m members follow the optimization" decorations) *)
(* ------------------------------------------------------------------ *)

let first_m ~m f i p = if i < m then f p else p

let read_only_mix ~m = first_m ~m (fun p -> { p with p_updated = false })
let reliable_mix ~m = first_m ~m (fun p -> { p with p_reliable = true })
let unsolicited_mix ~m = first_m ~m (fun p -> { p with p_unsolicited = true })

let leave_out_mix ~m =
  first_m ~m (fun p -> { p with p_left_out = true; p_leave_out_ok = true })

let shared_log_mix ~m = first_m ~m (fun p -> { p with p_shares_parent_log = true })
let long_locks_mix ~m = first_m ~m (fun p -> { p with p_long_locks = true })

(** The Table 3 tree for one optimization: n members, m of them using it. *)
let table3_tree (opt : Tpc.Cost_model.optimization) ~n ~m =
  match opt with
  | Tpc.Cost_model.Read_only_opt -> flat ~decorate:(read_only_mix ~m) ~n ()
  | Tpc.Cost_model.Last_agent_opt -> flat_with_delegation_chain ~n ~m ()
  | Tpc.Cost_model.Unsolicited_vote_opt ->
      flat ~decorate:(unsolicited_mix ~m) ~n ()
  | Tpc.Cost_model.Leave_out_opt -> flat ~decorate:(leave_out_mix ~m) ~n ()
  | Tpc.Cost_model.Vote_reliable_opt -> flat ~decorate:(reliable_mix ~m) ~n ()
  | Tpc.Cost_model.Wait_for_outcome_opt -> flat ~n ()
  | Tpc.Cost_model.Shared_log_opt -> flat ~decorate:(shared_log_mix ~m) ~n ()
  | Tpc.Cost_model.Long_locks_opt -> flat ~decorate:(long_locks_mix ~m) ~n ()

(** The protocol switch that activates one Table 3 optimization. *)
let table3_opt_variant (opt : Tpc.Cost_model.optimization) : opt =
  match opt with
  | Tpc.Cost_model.Read_only_opt -> `Read_only
  | Tpc.Cost_model.Last_agent_opt -> `Last_agent
  | Tpc.Cost_model.Unsolicited_vote_opt -> `Unsolicited_vote
  | Tpc.Cost_model.Leave_out_opt -> `Leave_out
  | Tpc.Cost_model.Vote_reliable_opt -> `Vote_reliable
  | Tpc.Cost_model.Wait_for_outcome_opt -> `Wait_for_outcome
  | Tpc.Cost_model.Shared_log_opt -> `Shared_log
  | Tpc.Cost_model.Long_locks_opt -> `Long_locks

(** The protocol options that activate one optimization. *)
let table3_opts opt = opts_of_list [ table3_opt_variant opt ]

(** Run the Table 3 experiment for one optimization and return the
    simulated counts. *)
let run_table3 ?(protocol = Presumed_abort) opt ~n ~m =
  (* with m=0 nobody follows the optimization: switch it off entirely (the
     last-agent switch would otherwise delegate to an arbitrary member) *)
  let opts = if m = 0 then [] else [ table3_opt_variant opt ] in
  let config = default_config |> with_protocol protocol |> with_opts opts in
  let metrics, _w = Tpc.Run.commit_tree ~config (table3_tree opt ~n ~m) in
  Tpc.Metrics.counts metrics

(* ------------------------------------------------------------------ *)
(* Mixer sweeps                                                        *)
(* ------------------------------------------------------------------ *)

(** Flat commit tree for a {!Tpc.Mixer} sweep: the member-property side of
    each requested optimization is applied to every subordinate (shared
    logs, long locks, reliable votes, unsolicited votes, suspendable
    servers); switches without a member property are ignored here and act
    through {!Tpc.Types.opts_of_list} alone. *)
let mixer_tree ?(n = 4) ~opts () =
  let decorate _ p =
    List.fold_left
      (fun p o ->
        match (o : opt) with
        | `Unsolicited_vote -> { p with p_unsolicited = true }
        | `Leave_out -> { p with p_leave_out_ok = true }
        | `Shared_log -> { p with p_shares_parent_log = true }
        | `Long_locks -> { p with p_long_locks = true }
        | `Vote_reliable -> { p with p_reliable = true }
        | `Read_only | `Last_agent | `Early_ack | `Wait_for_outcome -> p)
      p opts
  in
  flat ~decorate ~n ()

(* ------------------------------------------------------------------ *)
(* Lock-contention experiment                                          *)
(* ------------------------------------------------------------------ *)

type contention_result = {
  ct_intruders : int;
  ct_mean_wait : float;
  ct_max_wait : float;
  ct_commit_outcome : outcome option;
}

let contention_experiment ?(config = default_config)
    ?(arrivals = [ 0.5; 1.0; 1.5 ]) ~victim tree =
  let w = Tpc.Run.setup ~config tree in
  let engine = w.Tpc.Run.engine in
  let kv = Tpc.Run.kv w victim in
  let key = "acct-" ^ victim in
  let waits = ref [] in
  List.iteri
    (fun i arrival ->
      let txn = Printf.sprintf "intruder-%d" i in
      ignore
        (Simkernel.Engine.schedule engine ~delay:arrival (fun () ->
             let requested = Simkernel.Engine.now engine in
             Kvstore.put_async kv ~txn ~key ~value:("intr-" ^ txn)
               ~granted:(fun () ->
                 waits := (Simkernel.Engine.now engine -. requested) :: !waits;
                 (* release immediately so the next intruder can proceed *)
                 Kvstore.commit kv ~txn ~force:false (fun () -> ())))))
    arrivals;
  Tpc.Run.perform_work w ~txn:"txn-1";
  Tpc.Participant.begin_commit (Tpc.Run.participant w w.Tpc.Run.root)
    ~txn:"txn-1";
  Simkernel.Engine.run engine;
  let served = List.length !waits in
  {
    ct_intruders = served;
    ct_mean_wait =
      (if served = 0 then 0.0
       else List.fold_left ( +. ) 0.0 !waits /. float_of_int served);
    ct_max_wait = List.fold_left max 0.0 !waits;
    ct_commit_outcome = w.Tpc.Run.outcome;
  }
