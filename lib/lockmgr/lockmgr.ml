type mode = Shared | Exclusive

type hold_stats = {
  acquisitions : int;
  total_hold_time : float;
  max_hold_time : float;
}

type grant = { g_txn : string; mutable g_mode : mode; g_since : float }
type wait = { w_txn : string; w_mode : mode; w_granted : unit -> unit }

type entry = { mutable grants : grant list; mutable queue : wait list (* FIFO, head first *) }

type t = {
  engine : Simkernel.Engine.t;
  table : (string, entry) Hashtbl.t;
  txn_keys : (string, string list ref) Hashtbl.t; (* txn -> keys it holds *)
  txn_time : (string, float ref) Hashtbl.t; (* accumulated released hold time *)
  mutable acquisitions : int;
  mutable total_hold : float;
  mutable max_hold : float;
  mutable nwaiting : int;
}

let create engine =
  {
    engine;
    table = Hashtbl.create 64;
    txn_keys = Hashtbl.create 16;
    txn_time = Hashtbl.create 16;
    acquisitions = 0;
    total_hold = 0.0;
    max_hold = 0.0;
    nwaiting = 0;
  }

let entry t key =
  match Hashtbl.find_opt t.table key with
  | Some e -> e
  | None ->
      let e = { grants = []; queue = [] } in
      Hashtbl.replace t.table key e;
      e

let compatible mode grants ~txn =
  List.for_all
    (fun g ->
      g.g_txn = txn
      || match (mode, g.g_mode) with
         | Shared, Shared -> true
         | Shared, Exclusive | Exclusive, Shared | Exclusive, Exclusive -> false)
    grants

let note_key t ~txn ~key =
  let keys =
    match Hashtbl.find_opt t.txn_keys txn with
    | Some l -> l
    | None ->
        let l = ref [] in
        Hashtbl.replace t.txn_keys txn l;
        l
  in
  if not (List.mem key !keys) then keys := key :: !keys

let grant_now t e ~txn ~key mode =
  (match List.find_opt (fun g -> g.g_txn = txn) e.grants with
  | Some g ->
      (* re-acquire / upgrade: keep the original grant timestamp *)
      if mode = Exclusive then g.g_mode <- Exclusive
  | None ->
      e.grants <-
        { g_txn = txn; g_mode = mode; g_since = Simkernel.Engine.now t.engine }
        :: e.grants;
      t.acquisitions <- t.acquisitions + 1);
  note_key t ~txn ~key

let can_grant e ~txn mode =
  match List.find_opt (fun g -> g.g_txn = txn) e.grants with
  | Some g ->
      (* held already: same/weaker always ok; upgrade needs sole ownership *)
      (match (mode, g.g_mode) with
      | Shared, _ | Exclusive, Exclusive -> true
      | Exclusive, Shared -> List.for_all (fun o -> o.g_txn = txn) e.grants)
  | None -> compatible mode e.grants ~txn

let try_acquire t ~txn ~key mode =
  let e = entry t key in
  (* respect FIFO fairness: a free-but-queued lock is not barged *)
  if e.queue <> [] && not (List.exists (fun g -> g.g_txn = txn) e.grants) then false
  else if can_grant e ~txn mode then begin
    grant_now t e ~txn ~key mode;
    true
  end
  else false

let acquire t ~txn ~key mode ~granted =
  if try_acquire t ~txn ~key mode then granted ()
  else begin
    let e = entry t key in
    e.queue <- e.queue @ [ { w_txn = txn; w_mode = mode; w_granted = granted } ];
    t.nwaiting <- t.nwaiting + 1
  end

let pump t key e =
  (* grant from the head of the queue while compatible *)
  let rec loop () =
    match e.queue with
    | [] -> ()
    | w :: rest ->
        if can_grant e ~txn:w.w_txn w.w_mode then begin
          e.queue <- rest;
          t.nwaiting <- t.nwaiting - 1;
          grant_now t e ~txn:w.w_txn ~key w.w_mode;
          w.w_granted ();
          loop ()
        end
  in
  loop ()

let release_all t ~txn =
  match Hashtbl.find_opt t.txn_keys txn with
  | None -> ()
  | Some keys ->
      Hashtbl.remove t.txn_keys txn;
      let now = Simkernel.Engine.now t.engine in
      let acc =
        match Hashtbl.find_opt t.txn_time txn with
        | Some r -> r
        | None ->
            let r = ref 0.0 in
            Hashtbl.replace t.txn_time txn r;
            r
      in
      let release_key key =
        match Hashtbl.find_opt t.table key with
        | None -> ()
        | Some e ->
            let mine, others = List.partition (fun g -> g.g_txn = txn) e.grants in
            e.grants <- others;
            let count_hold g =
              let held = now -. g.g_since in
              t.total_hold <- t.total_hold +. held;
              acc := !acc +. held;
              if held > t.max_hold then t.max_hold <- held
            in
            List.iter count_hold mine;
            pump t key e
      in
      List.iter release_key !keys

let holding_txns t =
  Hashtbl.fold (fun txn _keys acc -> txn :: acc) t.txn_keys []
  |> List.sort_uniq compare

let clear t =
  (* Crash reclamation: the node lost its volatile state, so every grant and
     every queued request vanishes without waking continuations (the waiters
     died with the node).  Hold-time statistics for already-released locks
     survive; in-flight holds are simply forgotten. *)
  Hashtbl.reset t.table;
  Hashtbl.reset t.txn_keys;
  t.nwaiting <- 0

let holds t ~txn ~key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some e ->
      Option.map (fun g -> g.g_mode) (List.find_opt (fun g -> g.g_txn = txn) e.grants)

let holders t ~key =
  match Hashtbl.find_opt t.table key with
  | None -> []
  | Some e -> List.map (fun g -> (g.g_txn, g.g_mode)) e.grants

let waiting t = t.nwaiting

let wait_for_cycles t =
  (* edges: waiter -> each current holder of the key it waits on *)
  let edges = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _key e ->
      List.iter
        (fun w ->
          List.iter
            (fun g ->
              if g.g_txn <> w.w_txn then
                Hashtbl.replace edges (w.w_txn, g.g_txn) ())
            e.grants)
        e.queue)
    t.table;
  let succs n =
    Hashtbl.fold (fun (a, b) () acc -> if a = n then b :: acc else acc) edges []
  in
  let nodes =
    Hashtbl.fold (fun (a, b) () acc -> a :: b :: acc) edges []
    |> List.sort_uniq compare
  in
  (* DFS cycle detection, reporting each cycle once by smallest member *)
  let cycles = ref [] in
  let report path n =
    let rec take acc = function
      | [] -> acc
      | x :: _ when x = n -> n :: acc
      | x :: rest -> take (x :: acc) rest
    in
    let cyc = take [] path in
    let rotated =
      let m = List.fold_left min (List.hd cyc) cyc in
      let rec rot = function
        | x :: rest when x <> m -> rot (rest @ [ x ])
        | l -> l
      in
      rot cyc
    in
    if not (List.mem rotated !cycles) then cycles := rotated :: !cycles
  in
  let visiting = Hashtbl.create 16 in
  let done_ = Hashtbl.create 16 in
  let rec dfs path n =
    if Hashtbl.mem done_ n then ()
    else if Hashtbl.mem visiting n then report path n
    else begin
      Hashtbl.replace visiting n ();
      List.iter (dfs (n :: path)) (succs n);
      Hashtbl.remove visiting n;
      Hashtbl.replace done_ n ()
    end
  in
  List.iter (dfs []) nodes;
  !cycles

let stats t =
  {
    acquisitions = t.acquisitions;
    total_hold_time = t.total_hold;
    max_hold_time = t.max_hold;
  }

let txn_lock_time t ~txn =
  match Hashtbl.find_opt t.txn_time txn with Some r -> !r | None -> 0.0

let reset_stats t =
  t.acquisitions <- 0;
  t.total_hold <- 0.0;
  t.max_hold <- 0.0;
  Hashtbl.reset t.txn_time
