(** Lock manager: shared/exclusive locks with FIFO wait queues, wait-for-graph
    deadlock detection, and hold-time statistics.

    The paper's third evaluation axis is {e resource lock time}: how long an
    optimization keeps locks held at each participant.  The lock manager
    timestamps acquisition and release on the virtual clock so runs can
    report exact lock hold times per transaction. *)

type mode = Shared | Exclusive

type t

type hold_stats = {
  acquisitions : int;
  total_hold_time : float;  (** sum over released locks of (release - grant) *)
  max_hold_time : float;
}

val create : Simkernel.Engine.t -> t

val try_acquire : t -> txn:string -> key:string -> mode -> bool
(** Immediate attempt; never queues.  Re-acquiring a held lock (same or
    weaker mode) succeeds; an upgrade from [Shared] to [Exclusive] succeeds
    only if [txn] is the sole holder. *)

val acquire : t -> txn:string -> key:string -> mode -> granted:(unit -> unit) -> unit
(** Queueing acquire: [granted] fires immediately if the lock is free for
    [txn], otherwise when earlier holders release.  Queue order is FIFO. *)

val release_all : t -> txn:string -> unit
(** Release every lock held by [txn] (commit/abort time), waking compatible
    waiters in FIFO order. *)

val holding_txns : t -> string list
(** Sorted list of transactions currently holding at least one grant.
    Used by the chaos harness's leaked-lock audit. *)

val clear : t -> unit
(** Crash reclamation: drop every grant, every queued request and every
    txn->keys binding {e without} firing [granted] continuations — the
    waiters' closures died with the node's volatile state.  Cumulative
    hold-time statistics are kept. *)

val holds : t -> txn:string -> key:string -> mode option

val holders : t -> key:string -> (string * mode) list

val waiting : t -> int
(** Number of queued (ungranted) requests. *)

val wait_for_cycles : t -> string list list
(** Cycles in the wait-for graph (each cycle as a list of transaction ids);
    empty when no deadlock exists. *)

val stats : t -> hold_stats
val txn_lock_time : t -> txn:string -> float
(** Total hold time accumulated by a transaction's released locks. *)

val reset_stats : t -> unit
