(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 5 plus the per-optimization claims of Section 4) from
   the simulator, prints simulated-vs-paper numbers side by side, and runs
   Bechamel micro-benchmarks of the simulator itself (one Test.make per
   table/figure regeneration).

   Run with: dune exec bench/main.exe *)

open Tpc.Types
module C = Tpc.Cost_model

let section title =
  Format.printf "@.%s@.%s@.@." title (String.make (String.length title) '=')

let check_mark ok = if ok then "ok" else "MISMATCH"

(* ------------------------------------------------------------------ *)
(* Table 1: qualitative advantages / disadvantages                     *)
(* ------------------------------------------------------------------ *)

let table1 () =
  section "Table 1. Advantages and Disadvantages of 2PC Optimizations";
  List.iter
    (fun r ->
      Format.printf "%-18s@." r.C.t1_optimization;
      List.iter (Format.printf "    + %s@.") r.C.advantages;
      List.iter (Format.printf "    - %s@.") r.C.disadvantages)
    C.table1

(* ------------------------------------------------------------------ *)
(* Table 2: two participants, per-side flows and log writes            *)
(* ------------------------------------------------------------------ *)

let two ?(c = member "C") ?(s = member "S") () = Tree (c, [ Tree (s, []) ])

let table2_scenarios =
  [
    ("Basic 2PC", default_config |> with_protocol Basic, two ());
    ("PN", default_config |> with_protocol Presumed_nothing, two ());
    ("PA, Commit case", default_config, two ());
    ("PA, Abort case", default_config, two ~s:(member ~vote_no:true "S") ());
    ( "PA, Read-Only case",
      default_config |> with_opts [ `Read_only ],
      two ~c:(member ~updated:false "C") ~s:(member ~updated:false "S") () );
    ("PA & Last-Agent", default_config |> with_opts [ `Last_agent ], two ());
    ( "PA & Unsolicited Vote",
      default_config |> with_opts [ `Unsolicited_vote ],
      two ~s:(member ~unsolicited:true "S") () );
    ( "PA & Leave-Out",
      default_config |> with_opts [ `Leave_out; `Read_only ],
      two
        ~c:(member ~updated:false "C")
        ~s:(member ~left_out:true ~leave_out_ok:true "S")
        () );
    ( "PA & Vote Reliable",
      default_config |> with_opts [ `Vote_reliable ],
      two ~s:(member ~reliable:true "S") () );
    ( "PA & Wait For Outcome",
      default_config |> with_opts [ `Wait_for_outcome ],
      two () );
    ( "PA & Shared Logs",
      default_config |> with_opts [ `Shared_log ],
      two ~s:(member ~shares_parent_log:true "S") () );
    ( "PA & Long Locks",
      default_config |> with_opts [ `Long_locks ],
      two ~s:(member ~long_locks:true "S") () );
  ]

let run_table2_row (label, config, tree) =
  let _m, w = Tpc.Run.commit_tree ~config tree in
  let side node =
    ( Tpc.Trace.node_flows w.Tpc.Run.trace node,
      Tpc.Trace.node_writes w.Tpc.Run.trace node,
      Tpc.Trace.node_writes ~forced_only:true w.Tpc.Run.trace node )
  in
  (label, side "C", side "S")

let table2 () =
  section "Table 2. Logging and network traffic of 2PC optimizations";
  Format.printf "%-24s | %-26s | %-26s | %s@." ""
    "coordinator (sim / paper)" "subordinate (sim / paper)" "";
  List.iter
    (fun ((label, config, tree) as scenario) ->
      let _, (cf, cw, cfo), (sf, sw, sfo) = run_table2_row scenario in
      ignore config;
      ignore tree;
      let row = List.find (fun r -> r.C.t2_label = label) C.table2 in
      let pc = row.C.coordinator and ps = row.C.subordinate in
      let ok =
        (cf, cw, cfo) = (pc.C.s_flows, pc.C.s_writes, pc.C.s_forced)
        && (sf, sw, sfo) = (ps.C.s_flows, ps.C.s_writes, ps.C.s_forced)
      in
      Format.printf
        "%-24s | %d flows %d logs %df / %d,%d,%df | %d flows %d logs %df / \
         %d,%d,%df | %s@."
        label cf cw cfo pc.C.s_flows pc.C.s_writes pc.C.s_forced sf sw sfo
        ps.C.s_flows ps.C.s_writes ps.C.s_forced (check_mark ok))
    table2_scenarios

(* ------------------------------------------------------------------ *)
(* Table 3: n = 11 members, m = 4 following each optimization          *)
(* ------------------------------------------------------------------ *)

let table3 ?(n = 11) ?(m = 4) () =
  section
    (Printf.sprintf
       "Table 3. Logging and Message Costs for Optimizations (n = %d, m = %d)"
       n m);
  Format.printf "%-24s %-26s %-26s %s@." "2PC type" "simulated (f,w,fw)"
    "paper formula (f,w,fw)" "";
  let basic_sim, _ = Tpc.Run.commit_tree (Workload.flat ~n ()) in
  let basic_model = C.basic ~n in
  Format.printf "%-24s %-26s %-26s %s@." "Basic 2PC"
    (Format.asprintf "%a" C.pp_counts (Tpc.Metrics.counts basic_sim))
    (Format.asprintf "%a" C.pp_counts basic_model)
    (check_mark (Tpc.Metrics.counts basic_sim = basic_model));
  List.iter
    (fun opt ->
      let sim = Workload.run_table3 opt ~n ~m in
      let model = C.with_optimization opt ~n ~m in
      Format.printf "%-24s %-26s %-26s %s@."
        ("PA & " ^ C.optimization_to_string opt)
        (Format.asprintf "%a" C.pp_counts sim)
        (Format.asprintf "%a" C.pp_counts model)
        (check_mark (sim = model)))
    C.all_optimizations

(* ------------------------------------------------------------------ *)
(* Table 4: long locks over r = 12 chained transactions                *)
(* ------------------------------------------------------------------ *)

let table4 ?(r = 12) () =
  section
    (Printf.sprintf
       "Table 4. Logging and Message Costs for Long-Locks (r = %d chained \
        transactions, 2 members)"
       r);
  let model = C.table4 ~r in
  Format.printf "%-36s %-26s %-26s %-14s %-10s %s@." "2PC type"
    "simulated (f,w,fw)" "paper (f,w,fw)" "lock-time/txn" "txn/100t" "";
  let row label mode model_label =
    let res = Tpc.Stream.run_chain mode ~r in
    let m = List.assoc model_label model in
    let sim =
      { C.flows = res.Tpc.Stream.flows; writes = res.Tpc.Stream.writes;
        forced = res.Tpc.Stream.forced }
    in
    Format.printf "%-36s %-26s %-26s %-14.1f %-10.1f %s@." label
      (Format.asprintf "%a" C.pp_counts sim)
      (Format.asprintf "%a" C.pp_counts m)
      res.Tpc.Stream.mean_coordinator_lock_time
      (100.0 *. float_of_int r /. res.Tpc.Stream.duration)
      (check_mark (sim = m))
  in
  row "Basic 2PC" Tpc.Stream.Chain_basic "Basic 2PC";
  row "PA & Long Locks (not last agent)" Tpc.Stream.Chain_long_locks
    "PA & Long Locks (not last agent)";
  row "PA & Long Locks (last agent)" Tpc.Stream.Chain_long_locks_last_agent
    "PA & Long Locks (last agent)"

(* ------------------------------------------------------------------ *)
(* Figures 1-8                                                         *)
(* ------------------------------------------------------------------ *)

let figures () =
  section "Figures 1-8 (message-sequence traces)";
  List.iter
    (fun sc -> Format.printf "%s@." (Tpc.Scenarios.render sc))
    (Tpc.Scenarios.all ())

(* ------------------------------------------------------------------ *)
(* Group commit (Section 4): forced-I/O saving vs group size           *)
(* ------------------------------------------------------------------ *)

let group_commit ?(n = 96) () =
  section
    (Printf.sprintf
       "Group Commit (Section 4): %d concurrent transactions, group size swept"
       n);
  Format.printf "%-10s %-14s %-12s %-12s %-18s %s@." "group" "force reqs"
    "force I/Os" "saved I/Os" "paper 3n/2m" "mean commit latency";
  List.iter
    (fun m ->
      let r = Tpc.Stream.run_group_commit ~n ~group_size:m () in
      Format.printf "%-10d %-14d %-12d %-12d %-18.1f %.2f@." m
        r.Tpc.Stream.gc_force_requests r.Tpc.Stream.gc_force_ios
        r.Tpc.Stream.gc_saved_ios r.Tpc.Stream.gc_paper_saving
        r.Tpc.Stream.gc_mean_commit_latency)
    [ 1; 2; 4; 8; 16; 32 ];
  Format.printf
    "@.Shape check: saved I/Os grow with the group size while individual \
     commit latency grows - the Table 1 tradeoff.@."

(* ------------------------------------------------------------------ *)
(* Lock time (Section 5's third metric)                                *)
(* ------------------------------------------------------------------ *)

let mixed_tree =
  Tree
    ( member "C",
      [
        Tree (member "U1", []);
        Tree (member "U2", []);
        Tree (member ~updated:false "R1", []);
        Tree (member ~updated:false "R2", []);
      ] )

let lock_time () =
  section "Resource lock time: mean/max lock-release time by optimization";
  Format.printf "%-26s %-10s %-14s %-14s@." "variant" "latency" "mean release"
    "max release";
  let run label latency opts =
    let config = default_config |> with_latency latency |> with_opts opts in
    let m, _w = Tpc.Run.commit_tree ~config mixed_tree in
    Format.printf "%-26s %-10.0f %-14.2f %-14.2f@." label latency
      (Option.value ~default:nan m.Tpc.Metrics.mean_lock_release)
      (Option.value ~default:nan m.Tpc.Metrics.max_lock_release)
  in
  List.iter
    (fun latency ->
      run "baseline" latency [];
      run "read-only" latency [ `Read_only ];
      run "early ack" latency [ `Early_ack ];
      run "last agent" latency [ `Last_agent ])
    [ 1.0; 5.0; 20.0 ];
  Format.printf
    "@.Shape check: read-only releases earliest (voters unlock in phase \
     one); higher network latency widens every gap.@."

(* ------------------------------------------------------------------ *)
(* Commit share (Section 1's motivation)                               *)
(* ------------------------------------------------------------------ *)

let commit_share () =
  section
    "Commit cost share (Section 1): commit processing as a fraction of the \
     transaction";
  Format.printf "%-10s %-16s %-16s %-10s@." "latency" "work time" "commit time"
    "share";
  (* the paper: updating one record, commit is ~1/3 of the local transaction;
     distribution makes the relative cost higher.  Model: work phase = read +
     write + think (fixed), commit phase = measured by the simulator. *)
  let work_time = 11.0 in
  List.iter
    (fun latency ->
      let config = default_config |> with_latency latency in
      let m, _w = Tpc.Run.commit_tree ~config (two ()) in
      let commit_time = Option.value ~default:nan m.Tpc.Metrics.completion_time in
      Format.printf "%-10.1f %-16.1f %-16.1f %.0f%%@." latency work_time
        commit_time
        (100.0 *. commit_time /. (work_time +. commit_time)))
    [ 0.1; 1.0; 5.0; 20.0 ];
  Format.printf
    "@.Shape check: at local-system latencies the commit is roughly a third \
     of the transaction; as members move apart the commit dominates - the \
     paper's case for optimizing the normal path.@."

(* ------------------------------------------------------------------ *)
(* Lock contention (Section 1): earlier release -> shorter waits       *)
(* ------------------------------------------------------------------ *)

let contention () =
  section
    "Lock contention: intruder transactions wanting a key the distributed \
     transaction holds at a subordinate";
  Format.printf "%-34s %-12s %-12s@." "configuration" "mean wait" "max wait";
  let run label ?(updated = true) opts latency =
    let tree =
      Tree (member "C", [ Tree (member ~updated "S", []) ])
    in
    let config = default_config |> with_opts opts |> with_latency latency in
    let r = Workload.contention_experiment ~config ~victim:"S" tree in
    Format.printf "%-34s %-12.2f %-12.2f@." label r.Workload.ct_mean_wait
      r.Workload.ct_max_wait
  in
  run "baseline, latency 1" [] 1.0;
  run "read-only voter, latency 1" ~updated:false [ `Read_only ] 1.0;
  run "baseline, latency 5" [] 5.0;
  run "read-only voter, latency 5" ~updated:false [ `Read_only ] 5.0;
  Format.printf
    "@.Shape check: the read-only voter releases its locks at the vote, so \
     intruders barely wait; under the baseline they wait out the whole \
     decision phase, and distribution (higher latency) amplifies the gap - \
     Section 1's 'reducing the wait time of other transactions'.@."

(* ------------------------------------------------------------------ *)
(* Last-agent crossover (Section 4): serialization vs parallelism      *)
(* ------------------------------------------------------------------ *)

(* "the last-agent optimization that reduces message flows to one agent
   conflicts with the optimization inherent in preparing multiple agents
   concurrently" - delegation serializes the far partner's round trip
   after everyone else's phase one.  With a slow far partner delegation
   wins; with symmetric latencies the parallel baseline can finish sooner.
   Sweep the far partner's latency and find the crossover. *)
let last_agent_crossover () =
  section
    "Last-agent crossover: completion time vs far-partner latency (3 local \
     members + 1 far member)";
  let tree =
    Tree
      ( member "C",
        [
          Tree (member "L1", []);
          Tree (member "L2", []);
          Tree (member "far", []);
        ] )
  in
  let completion opts far_latency =
    let config = default_config |> with_opts opts in
    let w = Tpc.Run.setup ~config tree in
    Tpc.Net.set_latency w.Tpc.Run.net "C" "far" far_latency;
    let m = Tpc.Run.commit w in
    Option.value ~default:nan m.Tpc.Metrics.completion_time
  in
  Format.printf "%-14s %-16s %-16s %s@." "far latency" "baseline done"
    "last-agent done" "winner";
  List.iter
    (fun far ->
      let base = completion [] far in
      let la = completion [ `Last_agent ] far in
      Format.printf "%-14.1f %-16.1f %-16.1f %s@." far base la
        (if la < base then "last agent"
         else if la > base then "baseline"
         else "tie"))
    [ 0.5; 1.0; 2.0; 4.0; 8.0; 16.0; 32.0 ];
  Format.printf
    "@.Shape check: with a fast far partner the serialized delegation \
     costs more than it saves; past the crossover the single slow round \
     trip dominates and the last agent wins - exactly the paper's guidance \
     to 'prepare the closest located partners first'.@."

(* ------------------------------------------------------------------ *)
(* Failure cases: recovery latency and blocking windows                *)
(* ------------------------------------------------------------------ *)

let failure_cases () =
  section
    "Failure cases: time until every member reaches the outcome (coordinator \
     crashes, restarts after 40)";
  let run_case label protocol point wfo =
    let config =
      default_config
      |> with_protocol protocol
      |> with_opts (if wfo then [ `Wait_for_outcome ] else [])
      |> with_retries ~interval:20.0 ~max:default_config.max_retries
      |> with_faults
           [ { f_node = "C"; f_point = point; f_restart_after = Some 40.0 } ]
    in
    let m, _w = Tpc.Run.commit_tree ~config (two ()) in
    Format.printf "%-44s outcome=%-8s app-done=%-8s all-quiet=%.1f@." label
      (match m.Tpc.Metrics.outcome with
      | Some o -> outcome_to_string o
      | None -> "blocked")
      (match m.Tpc.Metrics.completion_time with
      | Some t -> Printf.sprintf "%.1f" t
      | None -> "-")
      m.Tpc.Metrics.quiesce_time
  in
  run_case "PA, crash before decision logged" Presumed_abort
    Cp_before_decision_log false;
  run_case "PN, crash before decision logged" Presumed_nothing
    Cp_before_decision_log false;
  run_case "basic, crash before decision logged" Basic Cp_before_decision_log
    false;
  run_case "PA, crash after commit logged" Presumed_abort Cp_after_decision_log
    false;
  run_case "PN, crash after commit logged" Presumed_nothing
    Cp_after_decision_log false;
  Format.printf
    "@.Shape check: under PA the coordinator that logged nothing simply \
     forgets (subordinates abort by presumption; the root application \
     never completes), while PN's commit-pending record lets the recovered \
     coordinator finish the protocol and report - the paper's reliability \
     tradeoff between the two families.@."

(* ------------------------------------------------------------------ *)
(* Ablation: each optimization alone on one mixed tree                 *)
(* ------------------------------------------------------------------ *)

let ablation_tree =
  Tree
    ( member "C",
      [
        Tree (member ~updated:false "R", []);
        Tree (member ~unsolicited:true "U", []);
        Tree (member ~reliable:true "V", []);
        Tree (member ~left_out:true ~leave_out_ok:true "O", []);
        Tree (member ~shares_parent_log:true "G", []);
        Tree (member ~long_locks:true "L", []);
        Tree (member "LA", []);
      ] )

let ablation () =
  section "Ablation: one 8-member mixed tree, optimizations toggled one at a time";
  Format.printf "%-26s %-28s %-12s@." "enabled" "counts (f,w,fw)" "completion";
  let run label opts =
    let config = default_config |> with_opts opts in
    let m, _w = Tpc.Run.commit_tree ~config ablation_tree in
    Format.printf "%-26s %-28s %-12.1f@." label
      (Format.asprintf "%a" C.pp_counts (Tpc.Metrics.counts m))
      (Option.value ~default:nan m.Tpc.Metrics.completion_time)
  in
  run "none (baseline)" [];
  run "read-only" [ `Read_only ];
  run "last-agent" [ `Last_agent ];
  run "unsolicited-vote" [ `Unsolicited_vote ];
  run "leave-out" [ `Leave_out ];
  run "vote-reliable" [ `Vote_reliable ];
  run "shared-log" [ `Shared_log ];
  run "long-locks" [ `Long_locks ];
  run "all together" (List.filter (fun o -> o <> `Early_ack) all_opts)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: the cost of regenerating each experiment *)
(* ------------------------------------------------------------------ *)

let bechamel_suite () =
  section "Bechamel micro-benchmarks (wall-clock cost of each regeneration)";
  let open Bechamel in
  let tests =
    Test.make_grouped ~name:"tpc"
      [
        Test.make ~name:"table2-row-basic"
          (Staged.stage (fun () ->
               ignore (Tpc.Run.commit_tree (two ()))));
        Test.make ~name:"table3-point"
          (Staged.stage (fun () ->
               ignore (Workload.run_table3 C.Read_only_opt ~n:11 ~m:4)));
        Test.make ~name:"table4-chain-r12"
          (Staged.stage (fun () ->
               ignore (Tpc.Stream.run_chain Tpc.Stream.Chain_long_locks ~r:12)));
        Test.make ~name:"figure3-pn-trace"
          (Staged.stage (fun () -> ignore (Tpc.Scenarios.figure3 ())));
        Test.make ~name:"group-commit-n96"
          (Staged.stage (fun () ->
               ignore (Tpc.Stream.run_group_commit ~n:96 ~group_size:8 ())));
        Test.make ~name:"commit-11-members"
          (Staged.stage (fun () ->
               ignore (Tpc.Run.commit_tree (Workload.flat ~n:11 ()))));
        Test.make ~name:"crash-recovery-run"
          (Staged.stage (fun () ->
               let config =
                 default_config
                 |> with_retries ~interval:25.0 ~max:default_config.max_retries
                 |> with_faults
                      [
                        {
                          f_node = "S";
                          f_point = Cp_after_vote;
                          f_restart_after = Some 10.0;
                        };
                      ]
               in
               ignore (Tpc.Run.commit_tree ~config (two ()))));
      ]
  in
  let benchmark () =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = [ Toolkit.Instance.monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
    in
    let raw = Benchmark.all cfg instances tests in
    Analyze.all ols Toolkit.Instance.monotonic_clock raw
  in
  let results = benchmark () in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (x :: _) -> x
          | _ -> nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  Format.printf "%-28s %16s@." "benchmark" "time per run";
  List.iter
    (fun (name, ns) ->
      let pretty =
        if ns > 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
        else Printf.sprintf "%8.0f ns" ns
      in
      Format.printf "%-28s %16s@." name pretty)
    rows

(* ------------------------------------------------------------------ *)
(* Parallel experiment runner: wall-clock at --jobs 1 vs --jobs N      *)
(* ------------------------------------------------------------------ *)

(* Each scenario is one full driver fan-out (the same code path as
   `tpc_sim sweep` / `tpc_sim chaos`).  It runs twice — sequentially and
   on the domain pool — and the harness asserts the rendered cell lines
   are byte-identical before reporting the speedup. *)

type parallel_result = {
  pr_name : string;
  pr_cells : int;
  pr_events : int;  (** total sim-kernel events processed, jobs=1 run *)
  pr_wall_jobs1 : float;
  pr_wall : float;
  pr_identical : bool;
}

let sweep_scenario () =
  let params =
    {
      Driver.sw_config = default_config;
      sw_sets =
        [ []; [ `Read_only ]; [ `Last_agent ]; [ `Read_only; `Early_ack ] ];
      sw_concurrencies = [ 1; 2; 4; 8 ];
      sw_n = 4;
      sw_mixer = { Tpc.Mixer.default_cfg with Tpc.Mixer.txns = 300 };
      sw_events = false;
      sw_blocking = false;
    }
  in
  fun ~jobs ->
    let cells, _reg = Driver.sweep_cells ~jobs params in
    let lines = List.map (fun c -> c.Driver.sc_line) cells in
    let events =
      List.fold_left
        (fun acc c ->
          acc + c.Driver.sc_stats.Simkernel.Engine.events_processed)
        0 cells
    in
    (lines, events)

let chaos_scenario () =
  let n = 4 and txns = 60 and concurrency = 6 in
  let config =
    default_config
    |> with_retries ~interval:25.0 ~max:8
    |> with_prepare_retries 2 |> with_retry_backoff 2.0
  in
  let horizon =
    float_of_int txns
    *. Tpc.Mixer.default_cfg.Tpc.Mixer.base_interarrival
    /. float_of_int concurrency
  in
  let params =
    {
      Driver.ch_config = config;
      ch_tree = Workload.mixer_tree ~n ~opts:[] ();
      ch_mixer = { Tpc.Mixer.default_cfg with Tpc.Mixer.txns; concurrency };
      ch_seed0 = 1;
      ch_seeds = 50;
      ch_gen = { Faultlab.default_gen with Faultlab.horizon };
      ch_plan = None;
      ch_broken = false;
      ch_shrink = true;
      ch_protocol_flag = "pa";
      ch_n = n;
      ch_adversary = false;
      ch_blocking = false;
    }
  in
  fun ~jobs ->
    let cells, _reg = Driver.chaos_cells ~jobs params in
    let lines = List.map (fun c -> c.Driver.cc_line) cells in
    let events =
      List.fold_left
        (fun acc c ->
          acc + c.Driver.cc_stats.Simkernel.Engine.events_processed)
        0 cells
    in
    (lines, events)

let time_run f =
  let t0 = Simkernel.Monotonic.now_ns () in
  let r = f () in
  (r, Simkernel.Monotonic.elapsed_seconds ~since:t0)

let run_parallel_scenario ~jobs (name, scenario) =
  let run = scenario () in
  let (lines1, events), wall1 = time_run (fun () -> run ~jobs:1) in
  let (lines_n, _), wall_n = time_run (fun () -> run ~jobs) in
  {
    pr_name = name;
    pr_cells = List.length lines1;
    pr_events = events;
    pr_wall_jobs1 = wall1;
    pr_wall = wall_n;
    pr_identical = lines1 = lines_n;
  }

let speedup r =
  if r.pr_wall > 0.0 then r.pr_wall_jobs1 /. r.pr_wall else nan

let parallel_result_json ~jobs r =
  Tpc.Json.Obj
    [
      ("name", Tpc.Json.String r.pr_name);
      ("cells", Tpc.Json.Int r.pr_cells);
      ("events", Tpc.Json.Int r.pr_events);
      ("jobs", Tpc.Json.Int jobs);
      ("wall_seconds_jobs1", Tpc.Json.Float r.pr_wall_jobs1);
      ("wall_seconds", Tpc.Json.Float r.pr_wall);
      ("speedup_vs_jobs1", Tpc.Json.Float (speedup r));
      ( "events_per_second",
        Tpc.Json.Float
          (if r.pr_wall > 0.0 then float_of_int r.pr_events /. r.pr_wall
           else nan) );
      ("identical_to_jobs1", Tpc.Json.Bool r.pr_identical);
    ]

(* ------------------------------------------------------------------ *)
(* Kernel microbench: raw agenda throughput, counter-only              *)
(* ------------------------------------------------------------------ *)

(* A population of self-rescheduling timers with near-future delays
   (0.5..4.0 virtual units, the horizon typical of 2PC timers), counting
   fires until a target is reached.  No protocol, no allocation in the
   flat variant: this isolates the schedule/fire cycle of the agenda.
   Three variants bound the design space: the timing wheel driving flat
   events (the new hot path), the wheel driving closures, and the binary
   heap driving closures (the old kernel, kept as the oracle). *)

type micro_result = {
  mb_name : string;
  mb_agenda : string;
  mb_flat : bool;
  mb_processed : int;
  mb_wall : float;
}

let micro_events_per_second r =
  if r.mb_wall > 0.0 then float_of_int r.mb_processed /. r.mb_wall else nan

let kernel_microbench ~agenda ~flat ~events =
  let module E = Simkernel.Engine in
  let e = E.create ~agenda () in
  let n = ref 0 in
  let pop = 64 in
  let delay i = 0.5 *. float_of_int ((i land 7) + 1) in
  if flat then begin
    let kind_ref = ref None in
    let kind =
      E.register_kind e ~name:"bench.tick" (fun a0 _ _ _ ->
          incr n;
          if !n <= events - pop then
            match !kind_ref with
            | Some k ->
                ignore
                  (E.schedule_flat e ~delay:(delay a0) ~kind:k ~a0:(a0 + 1)
                     ~a1:0 ~a2:0)
            | None -> ())
    in
    kind_ref := Some kind;
    for i = 0 to pop - 1 do
      ignore (E.schedule_flat e ~delay:(delay i) ~kind ~a0:i ~a1:0 ~a2:0)
    done
  end
  else begin
    let rec tick i () =
      incr n;
      if !n <= events - pop then ignore (E.schedule e ~delay:(delay i) (tick (i + 1)))
    in
    for i = 0 to pop - 1 do
      ignore (E.schedule e ~delay:(delay i) (tick i))
    done
  end;
  E.run e;
  let s = E.stats e in
  {
    mb_name =
      Printf.sprintf "%s-%s" (E.agenda_name e)
        (if flat then "flat" else "closure");
    mb_agenda = E.agenda_name e;
    mb_flat = flat;
    mb_processed = s.E.events_processed;
    mb_wall = s.E.wall_seconds;
  }

let micro_variants = [ (`Wheel, true); (`Wheel, false); (`Heap, false) ]

let run_microbench ?(events = 2_000_000) () =
  (* one warm-up pass per variant, then best-of-3 measured passes: the
     fastest pass is the one least disturbed by the host scheduler, which
     is what a cross-run regression gate should compare *)
  List.map
    (fun (agenda, flat) ->
      ignore (kernel_microbench ~agenda ~flat ~events:(events / 10));
      let passes =
        List.init 3 (fun _ -> kernel_microbench ~agenda ~flat ~events)
      in
      List.fold_left
        (fun best r -> if r.mb_wall < best.mb_wall then r else best)
        (List.hd passes) (List.tl passes))
    micro_variants

let micro_json results =
  let headline =
    match List.find_opt (fun r -> r.mb_agenda = "wheel" && r.mb_flat) results with
    | Some r -> micro_events_per_second r
    | None -> nan
  in
  Tpc.Json.Obj
    [
      ( "variants",
        Tpc.Json.List
          (List.map
             (fun r ->
               Tpc.Json.Obj
                 [
                   ("name", Tpc.Json.String r.mb_name);
                   ("agenda", Tpc.Json.String r.mb_agenda);
                   ("flat", Tpc.Json.Bool r.mb_flat);
                   ("events_processed", Tpc.Json.Int r.mb_processed);
                   ("wall_seconds", Tpc.Json.Float r.mb_wall);
                   ( "events_per_second",
                     Tpc.Json.Float (micro_events_per_second r) );
                 ])
             results) );
      (* the number the --check regression gate compares *)
      ("headline_events_per_second", Tpc.Json.Float headline);
    ]

let micro_table results =
  section "Kernel microbench (counter-only, single core)";
  Format.printf "%-16s %-12s %-12s %s@." "variant" "events" "wall (s)"
    "events/sec";
  List.iter
    (fun r ->
      Format.printf "%-16s %-12d %-12.4f %.3e@." r.mb_name r.mb_processed
        r.mb_wall (micro_events_per_second r))
    results;
  Format.printf
    "@.Shape check: wheel-flat is the production hot path; heap-closure is \
     the pre-wheel kernel kept as the differential oracle.@."

(* ------------------------------------------------------------------ *)
(* Speedup vs jobs: the same chaos fan-out at every domain count       *)
(* ------------------------------------------------------------------ *)

type speedup_level = {
  sl_jobs : int;
  sl_wall : float;
  sl_identical : bool;
}

let run_speedup_vs_jobs ~jobs () =
  let run = chaos_scenario () in
  let (lines1, events), wall1 = time_run (fun () -> run ~jobs:1) in
  let levels =
    List.map
      (fun j ->
        if j = 1 then { sl_jobs = 1; sl_wall = wall1; sl_identical = true }
        else
          let (lines_j, _), wall_j = time_run (fun () -> run ~jobs:j) in
          { sl_jobs = j; sl_wall = wall_j; sl_identical = lines_j = lines1 })
      (List.init (max 1 jobs) (fun i -> i + 1))
  in
  (events, wall1, levels)

let speedup_vs_jobs_json (events, wall1, levels) =
  Tpc.Json.Obj
    [
      ("scenario", Tpc.Json.String "chaos-50-seeds");
      ("events", Tpc.Json.Int events);
      ( "levels",
        Tpc.Json.List
          (List.map
             (fun l ->
               Tpc.Json.Obj
                 [
                   ("jobs", Tpc.Json.Int l.sl_jobs);
                   ("wall_seconds", Tpc.Json.Float l.sl_wall);
                   ( "speedup",
                     Tpc.Json.Float
                       (if l.sl_wall > 0.0 then wall1 /. l.sl_wall else nan) );
                   ("identical_to_jobs1", Tpc.Json.Bool l.sl_identical);
                 ])
             levels) );
    ]

let speedup_vs_jobs_table (events, wall1, levels) =
  section "Speedup vs jobs (chaos fan-out, 50 seeds)";
  Format.printf "events per run: %d@." events;
  Format.printf "%-7s %-12s %-9s %s@." "jobs" "wall (s)" "speedup" "identical";
  List.iter
    (fun l ->
      Format.printf "%-7d %-12.3f %-9.2f %s@." l.sl_jobs l.sl_wall
        (if l.sl_wall > 0.0 then wall1 /. l.sl_wall else nan)
        (if l.sl_identical then "yes" else "NO"))
    levels;
  if List.exists (fun l -> not l.sl_identical) levels then begin
    Format.printf
      "@.FAILURE: parallel output differs from the sequential run.@.";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Regression gate: --check BASELINE.json                              *)
(* ------------------------------------------------------------------ *)

(* Re-measure the microbench headline and fail (exit 1) when it fell more
   than [tolerance] below the baseline's recorded figure.  Cross-host
   variance is real, so the default tolerance is generous (20%); CI runs
   this against the artifact the same host just generated when it wants a
   tight gate. *)
let check_against ~tolerance path =
  let baseline =
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Tpc.Json.parse s
  in
  let recorded =
    match
      Option.bind
        (Tpc.Json.member "microbench" baseline)
        (fun m ->
          Option.bind
            (Tpc.Json.member "headline_events_per_second" m)
            Tpc.Json.to_float_opt)
    with
    | Some v when v > 0.0 -> v
    | _ ->
        Format.printf
          "bench --check: %s has no microbench.headline_events_per_second \
           (schema tpc-bench-parallel/2 required)@."
          path;
        exit 2
  in
  let results = run_microbench () in
  micro_table results;
  let current =
    match List.find_opt (fun r -> r.mb_agenda = "wheel" && r.mb_flat) results with
    | Some r -> micro_events_per_second r
    | None -> 0.0
  in
  let floor_ = recorded *. (1.0 -. tolerance) in
  Format.printf
    "@.check: current %.3e events/sec vs baseline %.3e (floor at %.0f%%: \
     %.3e)@."
    current recorded
    ((1.0 -. tolerance) *. 100.0)
    floor_;
  if current < floor_ then begin
    Format.printf "FAILURE: kernel throughput regressed past the tolerance.@.";
    exit 1
  end;
  Format.printf "ok: within tolerance.@."

let parallel_bench ~jobs ~json_out () =
  let micro = run_microbench () in
  micro_table micro;
  let sp = run_speedup_vs_jobs ~jobs () in
  speedup_vs_jobs_table sp;
  section
    (Printf.sprintf
       "Parallel experiment runner (jobs=%d, recommended=%d, cores=%d)" jobs
       (Parallel.recommended_jobs ())
       (Domain.recommended_domain_count ()));
  let results =
    List.map
      (run_parallel_scenario ~jobs)
      [ ("sweep-grid-16", sweep_scenario); ("chaos-50-seeds", chaos_scenario) ]
  in
  Format.printf "%-18s %-7s %-10s %-12s %-12s %-9s %s@." "scenario" "cells"
    "events" "jobs=1 wall" "jobs=N wall" "speedup" "identical";
  List.iter
    (fun r ->
      Format.printf "%-18s %-7d %-10d %-12.3f %-12.3f %-9.2f %s@." r.pr_name
        r.pr_cells r.pr_events r.pr_wall_jobs1 r.pr_wall (speedup r)
        (if r.pr_identical then "yes" else "NO"))
    results;
  if List.exists (fun r -> not r.pr_identical) results then begin
    Format.printf
      "@.FAILURE: parallel output differs from the sequential run.@.";
    exit 1
  end;
  (match json_out with
  | None -> ()
  | Some path ->
      let report =
        Tpc.Json.Obj
          [
            ("schema", Tpc.Json.String "tpc-bench-parallel/2");
            ("jobs", Tpc.Json.Int jobs);
            ( "recommended_jobs",
              Tpc.Json.Int (Parallel.recommended_jobs ()) );
            ("cores", Tpc.Json.Int (Domain.recommended_domain_count ()));
            (* A single-core host can only time the domain-pool overhead,
               never a real speedup — mark such reports so nobody quotes
               their numbers as multicore scaling results.  The microbench
               section is valid on any host: it is single-core by design. *)
            ( "provisional",
              Tpc.Json.Bool (Domain.recommended_domain_count () < 2) );
            ( "provisional_reason",
              Tpc.Json.String
                (if Domain.recommended_domain_count () < 2 then
                   "speedup sections measured on a 1-core host: they reflect \
                    pool overhead only; regenerate on a multicore machine \
                    (the microbench section is host-independent)"
                 else "") );
            ("microbench", micro_json micro);
            ("speedup_vs_jobs", speedup_vs_jobs_json sp);
            ( "scenarios",
              Tpc.Json.List (List.map (parallel_result_json ~jobs) results) );
          ]
      in
      let oc = open_out path in
      output_string oc (Tpc.Json.to_string report ^ "\n");
      close_out oc;
      Format.printf "@.Wrote %s@." path);
  Format.printf
    "@.Shape check: identical cell lines whatever the job count — the pool \
     only reorders the work, never the results.@."

let () =
  let json_out = ref None in
  let jobs = ref (Parallel.recommended_jobs ()) in
  let parallel_only = ref false in
  let check = ref None in
  let check_tolerance = ref 0.20 in
  Arg.parse
    [
      ( "--json",
        Arg.String (fun s -> json_out := Some s),
        "FILE Write the parallel-runner report as JSON (schema \
         tpc-bench-parallel/2)." );
      ( "--jobs",
        Arg.Set_int jobs,
        "N Domains for the parallel scenarios (default: recommended)." );
      ( "--parallel-only",
        Arg.Set parallel_only,
        " Skip the paper tables and micro-benchmarks; run only the parallel \
         runner scenarios." );
      ( "--check",
        Arg.String (fun s -> check := Some s),
        "FILE Re-run the kernel microbench and exit nonzero if \
         events/sec fell more than the tolerance below FILE's recorded \
         headline." );
      ( "--check-tolerance",
        Arg.Set_float check_tolerance,
        "F Allowed fractional regression for --check (default 0.20)." );
    ]
    (fun anon -> raise (Arg.Bad ("unexpected argument: " ^ anon)))
    "dune exec bench/main.exe -- [--parallel-only] [--jobs N] [--json FILE] \
     [--check BASELINE.json]";
  (match !check with
  | Some path ->
      check_against ~tolerance:!check_tolerance path;
      exit 0
  | None -> ());
  if not !parallel_only then begin
    Format.printf
      "Reproduction of: Samaras, Britton, Citron, Mohan - 'Two-Phase Commit \
       Optimizations and Tradeoffs in the Commercial Environment' (ICDE \
       1993)@.";
    table1 ();
    table2 ();
    table3 ();
    table4 ();
    group_commit ();
    lock_time ();
    commit_share ();
    contention ();
    last_agent_crossover ();
    failure_cases ();
    ablation ();
    figures ()
  end;
  parallel_bench ~jobs:!jobs ~json_out:!json_out ();
  if not !parallel_only then bechamel_suite ()
