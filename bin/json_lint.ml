(* json_lint: validate tpc_sim JSON artifacts.

   Usage: json_lint FILE...

   Files ending in .jsonl are checked line by line (every non-empty line
   must parse); anything else must parse as one JSON document.  All
   parsing goes through Tpc.Json.parse — the same parser the test suite
   round-trips through — so CI catches any drift between what the
   simulator emits and what the tooling can read.  Exits 1 on the first
   malformed input. *)

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let check_jsonl path =
  let lines = String.split_on_char '\n' (read_file path) in
  let checked = ref 0 in
  List.iteri
    (fun i line ->
      if String.trim line <> "" then begin
        (try ignore (Tpc.Json.parse line)
         with Tpc.Json.Parse_error msg ->
           fail "%s:%d: JSON parse error: %s" path (i + 1) msg);
        incr checked
      end)
    lines;
  Printf.printf "%s: OK (%d lines)\n" path !checked

let check_json path =
  (try ignore (Tpc.Json.parse (read_file path))
   with Tpc.Json.Parse_error msg -> fail "%s: JSON parse error: %s" path msg);
  Printf.printf "%s: OK\n" path

let () =
  let paths = List.tl (Array.to_list Sys.argv) in
  if paths = [] then fail "usage: json_lint FILE...";
  List.iter
    (fun path ->
      if not (Sys.file_exists path) then fail "%s: no such file" path;
      if Filename.check_suffix path ".jsonl" then check_jsonl path
      else check_json path)
    paths
