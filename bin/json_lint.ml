(* json_lint: validate tpc_sim JSON artifacts.

   Usage: json_lint FILE...

   Files ending in .jsonl are checked line by line (every non-empty line
   must parse); anything else must parse as one JSON document.  All
   parsing goes through Tpc.Json.parse — the same parser the test suite
   round-trips through — so CI catches any drift between what the
   simulator emits and what the tooling can read.

   Chaos verdict lines (those carrying both "plan" and "seed") get a
   schema check on top of well-formedness: every benign verdict counter
   must be present as a non-negative integer, and the adversarial
   damage-classification fields — emitted only under `--adversary` — must
   appear as a complete non-negative block whenever any one of them
   appears; the same all-or-none rule applies to the certified-protocol
   fields (f, corrupted_replicas, cert_refusals) a `--protocol bft` line
   carries.  Any line carrying a "blocking" block (emitted under
   `--blocking` by sweep and chaos) must have all three windows
   (in_doubt, blocked_lock, heur_exposure), each with a non-negative
   integer count and non-negative p50/p99.  Exits 1 on the first
   malformed input. *)

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

(* the benign verdict counters every chaos line carries *)
let verdict_fields =
  [
    "committed_missing";
    "aborted_applied";
    "bad_value";
    "divergence";
    "wal_divergence";
    "leaked_locks";
    "engine_pending";
    "unresolved";
    "in_doubt";
  ]

(* the damage-classification block emitted under --adversary *)
let accounting_fields =
  [
    "atomicity_violations";
    "heur_damage_reported";
    "heur_damage_silent";
    "blocked";
    "rejected_forgeries";
  ]

(* the certified-protocol block emitted when the protocol carries
   decision certificates (--protocol bft) *)
let certificate_fields = [ "f"; "corrupted_replicas"; "cert_refusals" ]

(* the per-window summaries inside a "blocking" block (--blocking) *)
let blocking_windows = [ "in_doubt"; "blocked_lock"; "heur_exposure" ]

let check_blocking path lineno json =
  match Tpc.Json.member "blocking" json with
  | None -> ()
  | Some block ->
      List.iter
        (fun w ->
          match Tpc.Json.member w block with
          | None ->
              fail "%s:%d: blocking block missing window %S" path lineno w
          | Some win ->
              (match Tpc.Json.member "count" win with
              | Some v
                when (match Tpc.Json.to_int_opt v with
                     | Some n -> n >= 0
                     | None -> false) ->
                  ()
              | _ ->
                  fail
                    "%s:%d: blocking window %S needs a non-negative integer \
                     \"count\""
                    path lineno w);
              List.iter
                (fun q ->
                  match Tpc.Json.member q win with
                  | Some v
                    when (match Tpc.Json.to_float_opt v with
                         | Some x -> x >= 0.0
                         | None -> false) ->
                      ()
                  | _ ->
                      fail
                        "%s:%d: blocking window %S needs a non-negative \
                         number %S"
                        path lineno w q)
                [ "p50"; "p99" ])
        blocking_windows

let nonneg_int where path lineno json field =
  match Tpc.Json.member field json with
  | None -> fail "%s:%d: chaos verdict missing %s field %S" path lineno where field
  | Some v -> (
      match Tpc.Json.to_int_opt v with
      | Some n when n >= 0 -> ()
      | _ ->
          fail "%s:%d: chaos verdict field %S must be a non-negative integer"
            path lineno field)

let check_chaos_line path lineno json =
  match (Tpc.Json.member "plan" json, Tpc.Json.member "seed" json) with
  | Some _, Some _ ->
      List.iter (nonneg_int "benign" path lineno json) verdict_fields;
      if List.exists (fun f -> Tpc.Json.member f json <> None) accounting_fields
      then
        List.iter (nonneg_int "adversarial" path lineno json) accounting_fields;
      if
        List.exists (fun f -> Tpc.Json.member f json <> None) certificate_fields
      then
        List.iter (nonneg_int "certificate" path lineno json) certificate_fields
  | _ -> ()

let check_line path lineno json =
  check_chaos_line path lineno json;
  (* any line may carry a blocking block (sweep cells and chaos verdicts) *)
  check_blocking path lineno json

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let check_jsonl path =
  let lines = String.split_on_char '\n' (read_file path) in
  let checked = ref 0 in
  List.iteri
    (fun i line ->
      if String.trim line <> "" then begin
        (try
           let json = Tpc.Json.parse line in
           check_line path (i + 1) json
         with Tpc.Json.Parse_error msg ->
           fail "%s:%d: JSON parse error: %s" path (i + 1) msg);
        incr checked
      end)
    lines;
  Printf.printf "%s: OK (%d lines)\n" path !checked

let check_json path =
  (try ignore (Tpc.Json.parse (read_file path))
   with Tpc.Json.Parse_error msg -> fail "%s: JSON parse error: %s" path msg);
  Printf.printf "%s: OK\n" path

let () =
  let paths = List.tl (Array.to_list Sys.argv) in
  if paths = [] then fail "usage: json_lint FILE...";
  List.iter
    (fun path ->
      if not (Sys.file_exists path) then fail "%s: no such file" path;
      if Filename.check_suffix path ".jsonl" then check_jsonl path
      else check_json path)
    paths
