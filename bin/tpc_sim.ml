(* tpc_sim: command-line driver for the 2PC simulator.

   Subcommands:
     run       - one distributed commit over a chosen tree/protocol/options
     tables    - regenerate the paper's Tables 2, 3 and 4
     figures   - render the paper's figures as sequence diagrams
     chain     - Table 4 style chained-transaction streams
     group     - group-commit sweep
     crash     - a commit with an injected crash, showing recovery
     sweep     - concurrent throughput sweep (one JSON line per cell)
     explain   - causal narrative + critical-path latency attribution for
                 one transaction of a deterministic mixer run
     chaos     - seeded fault-schedule sweep with fault-aware audit and
                 schedule shrinking (one JSONL verdict per seed) *)

open Cmdliner
open Tpc.Types

(* --- shared argument parsing ---------------------------------------- *)

(* Parsing goes through the protocol registry, so a protocol registered
   with [Tpc.Protocol.register] is immediately selectable by name. *)
let protocol_conv =
  let parse s =
    match Tpc.Protocol.of_string s with
    | Some p -> Ok p
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown protocol %S (%s)" s
               (String.concat "|" (Tpc.Protocol.flags ()))))
  in
  let print ppf p = Format.pp_print_string ppf (protocol_to_string p) in
  Arg.conv (parse, print)

let protocol_arg =
  let doc =
    "Commit protocol: basic, pa (presumed abort), pn (presumed nothing), or \
     the name of any registered protocol."
  in
  Arg.(value & opt protocol_conv Presumed_abort & info [ "p"; "protocol" ] ~doc)

let opt_names = List.map opt_to_string all_opts

let opts_arg =
  let doc =
    "Enable an optimization (repeatable): "
    ^ String.concat ", " opt_names ^ "."
  in
  Arg.(value & opt_all string [] & info [ "O"; "enable" ] ~doc)

(* The single source of truth for optimization names is
   Types.opt_of_string: the CLI, bench and tests all parse through it. *)
let parse_opt_names ~on_unknown names =
  List.filter_map
    (fun name ->
      match opt_of_string name with
      | Some o -> Some o
      | None ->
          on_unknown name;
          None)
    names

let build_opts names =
  parse_opt_names names ~on_unknown:(fun name ->
      Printf.eprintf "warning: unknown optimization %S ignored\n" name)

let n_arg =
  let doc = "Number of members in the commit tree." in
  Arg.(value & opt int 5 & info [ "n"; "members" ] ~doc)

let f_arg =
  let doc =
    "Replica fault tolerance for certified protocols (bft): the decision \
     maker runs 2f+1 coordinator replicas and a decision is only valid \
     with a certificate of at least f+1 matching endorsements.  Ignored \
     by the paper's three (uncertified) families."
  in
  Arg.(value & opt int 1 & info [ "f" ] ~doc ~docv:"F")

let m_arg =
  let doc = "Number of members following the enabled optimization." in
  Arg.(value & opt int 0 & info [ "m" ] ~doc)

let shape_arg =
  let doc = "Tree shape: flat, chain or random." in
  Arg.(value & opt string "flat" & info [ "shape" ] ~doc)

let seed_arg =
  let doc = "Random seed (random tree shape)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~doc)

let latency_arg =
  let doc = "Network latency between members (virtual time units)." in
  Arg.(value & opt float 1.0 & info [ "latency" ] ~doc)

let trace_arg =
  let doc = "Print the full event trace." in
  Arg.(value & flag & info [ "trace" ] ~doc)

let trace_out_arg =
  let doc =
    "Write the run as Chrome trace-event JSON (openable in Perfetto or \
     chrome://tracing): one track per node, one span per 2PC phase."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~doc ~docv:"FILE")

let events_arg =
  let doc =
    "Write every trace event as one JSON object per line (JSONL); see \
     EXPERIMENTS.md for the schema."
  in
  Arg.(value & opt (some string) None & info [ "events" ] ~doc ~docv:"FILE")

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let diagram_arg =
  let doc = "Render the message-sequence diagram." in
  Arg.(value & flag & info [ "diagram" ] ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the experiment runner (default: the machine's \
     recommended domain count).  Results are collected per-cell and \
     emitted in canonical order, so the output is byte-identical to \
     --jobs 1."
  in
  Arg.(
    value
    & opt int (Parallel.recommended_jobs ())
    & info [ "j"; "jobs" ] ~doc ~docv:"N")

let blocking_arg =
  let doc =
    "Append a \"blocking\" block to every JSON line: count/p50/p99 of the \
     in-doubt residence, blocked-lock hold and heuristic-exposure windows \
     observed in that cell (deterministic, byte-identical across --jobs)."
  in
  Arg.(value & flag & info [ "blocking" ] ~doc)

(* --- run -------------------------------------------------------------- *)

let write_telemetry ~tree world trace_out events_out =
  (match trace_out with
  | Some path ->
      write_file path
        (Tpc.Json.to_string
           (Tpc.Telemetry.chrome_trace world.Tpc.Run.trace ~tree));
      Printf.eprintf "wrote Chrome trace to %s (open in https://ui.perfetto.dev)\n"
        path
  | None -> ());
  match events_out with
  | Some path ->
      write_file path (Tpc.Telemetry.events_to_jsonl world.Tpc.Run.trace);
      Printf.eprintf "wrote event JSONL to %s\n" path
  | None -> ()

let make_tree shape seed n opt m =
  match (shape, opt) with
  | "chain", _ -> Workload.chain ~n ()
  | "random", _ -> Workload.random_tree ~seed ~n ()
  | _, Some o when m > 0 -> Workload.table3_tree o ~n ~m
  | _, _ -> Workload.flat ~n ()

let pick_cost_opt opts =
  let on o = List.mem (o : opt) opts in
  if on `Read_only then Some Tpc.Cost_model.Read_only_opt
  else if on `Last_agent then Some Tpc.Cost_model.Last_agent_opt
  else if on `Unsolicited_vote then Some Tpc.Cost_model.Unsolicited_vote_opt
  else if on `Leave_out then Some Tpc.Cost_model.Leave_out_opt
  else if on `Shared_log then Some Tpc.Cost_model.Shared_log_opt
  else if on `Long_locks then Some Tpc.Cost_model.Long_locks_opt
  else if on `Vote_reliable then Some Tpc.Cost_model.Vote_reliable_opt
  else if on `Wait_for_outcome then Some Tpc.Cost_model.Wait_for_outcome_opt
  else None

let run_cmd protocol opt_names n m f shape seed latency show_trace show_diagram
    trace_out events_out =
  if n < 1 then (
    Printf.eprintf "tpc_sim: -n must be at least 1\n";
    exit 2);
  if m < 0 || m >= n then
    if m <> 0 then (
      Printf.eprintf "tpc_sim: -m must satisfy 0 <= m < n\n";
      exit 2);
  if f < 0 then (
    Printf.eprintf "tpc_sim: --f must be non-negative\n";
    exit 2);
  let opts = build_opts opt_names in
  let config =
    default_config |> with_protocol protocol |> with_opts opts
    |> with_latency latency |> with_bft_f f
  in
  let tree = make_tree shape seed n (pick_cost_opt opts) m in
  let metrics, world = Tpc.Run.commit_tree ~config tree in
  Format.printf "%a@." Tpc.Metrics.pp metrics;
  if show_diagram then begin
    let nodes = List.map (fun p -> p.p_name) (tree_members tree) in
    Format.printf "@.%s@." (Tpc.Trace.sequence_diagram world.Tpc.Run.trace ~nodes)
  end;
  if show_trace then
    Format.printf "@.%s@." (Tpc.Trace.to_string world.Tpc.Run.trace);
  write_telemetry ~tree world trace_out events_out

let run_term =
  Term.(
    const run_cmd $ protocol_arg $ opts_arg $ n_arg $ m_arg $ f_arg $ shape_arg
    $ seed_arg $ latency_arg $ trace_arg $ diagram_arg $ trace_out_arg
    $ events_arg)

(* --- tables ------------------------------------------------------------ *)

let tables_cmd n m f r =
  Format.printf "Table 3 (n=%d, m=%d): simulated = paper formula@.@." n m;
  List.iter
    (fun (label, counts) ->
      Format.printf "  %-28s %a@." label Tpc.Cost_model.pp_counts counts)
    (Tpc.Cost_model.table3 ~n ~m);
  Format.printf "@.Simulated:@.";
  List.iter
    (fun opt ->
      Format.printf "  PA & %-24s %a@."
        (Tpc.Cost_model.optimization_to_string opt)
        Tpc.Cost_model.pp_counts
        (Workload.run_table3 opt ~n ~m))
    Tpc.Cost_model.all_optimizations;
  Format.printf "@.Table 4 (r=%d):@." r;
  List.iter
    (fun (label, counts) ->
      Format.printf "  %-36s %a@." label Tpc.Cost_model.pp_counts counts)
    (Tpc.Cost_model.table4 ~r);
  (* the resilience-vs-cost frontier: what certified (Byzantine-tolerant)
     commit adds on top of the same tree, closed form next to simulation *)
  Format.printf "@.Byzantine tolerance (n=%d): simulated = paper formula@." n;
  List.iter
    (fun f ->
      Format.printf "  %-28s %a@."
        (Printf.sprintf "BFT commit (f=%d)" f)
        Tpc.Cost_model.pp_counts (Tpc.Cost_model.bft ~f ~n))
    (List.sort_uniq compare [ 0; 1; max 0 f ]);
  (match Tpc.Protocol.of_string "bft" with
  | None -> ()
  | Some p ->
      let config = default_config |> with_protocol p |> with_bft_f f in
      let metrics, _w = Tpc.Run.commit_tree ~config (Workload.flat ~n ()) in
      Format.printf "@.Simulated:@.  %-28s %a@."
        (Printf.sprintf "BFT commit (f=%d)" f)
        Tpc.Cost_model.pp_counts
        (Tpc.Metrics.counts metrics))

let tables_term =
  let r_arg =
    Arg.(value & opt int 12 & info [ "r" ] ~doc:"Chained transactions (Table 4).")
  in
  Term.(const tables_cmd $ n_arg $ m_arg $ f_arg $ r_arg)

(* --- figures ------------------------------------------------------------ *)

let figures_cmd which =
  let all = Tpc.Scenarios.all () in
  let selected =
    match which with
    | None -> all
    | Some id ->
        List.filter (fun sc -> sc.Tpc.Scenarios.sc_id = "figure-" ^ id) all
  in
  if selected = [] then (
    Printf.eprintf "tpc_sim: no such figure (use 1-8)\n";
    exit 2)
  else List.iter (fun sc -> print_string (Tpc.Scenarios.render sc)) selected

let figures_term =
  let which =
    Arg.(
      value
      & opt (some string) None
      & info [ "f"; "figure" ] ~doc:"Figure number (1-8); default: all.")
  in
  Term.(const figures_cmd $ which)

(* --- chain --------------------------------------------------------------- *)

let chain_cmd mode r latency =
  let mode =
    match mode with
    | "basic" -> Tpc.Stream.Chain_basic
    | "long-locks" -> Tpc.Stream.Chain_long_locks
    | _ -> Tpc.Stream.Chain_long_locks_last_agent
  in
  let res = Tpc.Stream.run_chain ~latency mode ~r in
  Format.printf
    "%s: r=%d  flows=%d (+%d data)  writes=%d  forced=%d  duration=%.1f  \
     lock-time/txn=%.1f@."
    (Tpc.Stream.mode_to_string mode)
    r res.Tpc.Stream.flows res.Tpc.Stream.data_flows res.Tpc.Stream.writes
    res.Tpc.Stream.forced res.Tpc.Stream.duration
    res.Tpc.Stream.mean_coordinator_lock_time

let chain_term =
  let mode =
    Arg.(
      value & opt string "long-locks"
      & info [ "mode" ] ~doc:"basic, long-locks or long-locks-last-agent.")
  in
  let r = Arg.(value & opt int 12 & info [ "r" ] ~doc:"Transactions.") in
  Term.(const chain_cmd $ mode $ r $ latency_arg)

(* --- group commit --------------------------------------------------------- *)

let group_cmd n sizes =
  Format.printf "%-8s %-12s %-12s %-10s %-14s@." "group" "requests" "I/Os"
    "saved" "paper 3n/2m";
  List.iter
    (fun m ->
      let r = Tpc.Stream.run_group_commit ~n ~group_size:m () in
      Format.printf "%-8d %-12d %-12d %-10d %-14.1f@." m
        r.Tpc.Stream.gc_force_requests r.Tpc.Stream.gc_force_ios
        r.Tpc.Stream.gc_saved_ios r.Tpc.Stream.gc_paper_saving)
    sizes

let group_term =
  let n = Arg.(value & opt int 96 & info [ "n" ] ~doc:"Concurrent transactions.") in
  let sizes =
    Arg.(
      value
      & opt (list int) [ 1; 2; 4; 8; 16; 32 ]
      & info [ "sizes" ] ~doc:"Group sizes to sweep.")
  in
  Term.(const group_cmd $ n $ sizes)

(* --- sweep ------------------------------------------------------------------ *)

(* Concurrency x optimization-set sweep over the concurrent workload engine.
   Emits one JSON line per cell so future runs can be tracked as a
   machine-readable trajectory (BENCH_mixer.json).  Cells fan out across
   --jobs worker domains and fan in by index, so stdout and the events
   file are byte-identical whatever the job count; the wall-clock engine
   profile (nondeterministic by nature) only ever goes to stderr. *)
let sweep_cmd protocol opt_sets concurrencies n f txns keyspace update_prob
    read_prob interarrival lock_timeout seed group events_out blocking progress
    jobs =
  if n < 2 then (
    Printf.eprintf "tpc_sim sweep: -n must be at least 2\n";
    exit 2);
  if txns < 1 then (
    Printf.eprintf "tpc_sim sweep: --txns must be at least 1\n";
    exit 2);
  if List.exists (fun c -> c < 1) concurrencies then (
    Printf.eprintf "tpc_sim sweep: concurrency must be >= 1\n";
    exit 2);
  let parse_set s =
    String.split_on_char ',' s
    |> List.filter (fun x -> x <> "")
    |> parse_opt_names ~on_unknown:(fun name ->
           Printf.eprintf
             "tpc_sim sweep: unknown optimization %S (one of %s)\n" name
             (String.concat ", " opt_names);
           exit 2)
  in
  (* baseline first, then each requested set (a set may be a comma-separated
     combination, e.g. -O read-only,shared-log) *)
  let sets = [] :: List.map parse_set opt_sets in
  let total_cells = List.length sets * List.length concurrencies in
  let cells_done = ref 0 in
  let started = Simkernel.Monotonic.now_ns () in
  let params =
    {
      Driver.sw_config =
        (default_config |> with_protocol protocol |> with_bft_f f
        |> (match group with
           | Some (size, timeout) -> with_group_commit ~size ~timeout
           | None -> Fun.id)
        (* let deferred acks fall back no earlier than a typical
           inter-arrival gap: real arrivals carry them first *)
        |> with_implied_ack_delay
             (Float.max default_config.implied_ack_delay interarrival));
      sw_sets = sets;
      sw_concurrencies = concurrencies;
      sw_n = n;
      sw_mixer =
        {
          Tpc.Mixer.concurrency = 1;
          txns;
          keyspace;
          update_prob;
          read_prob;
          base_interarrival = interarrival;
          lock_timeout;
          seed;
        };
      sw_events = events_out <> None;
      sw_blocking = blocking;
    }
  in
  let progress_fn =
    if progress then
      Some
        (fun label ->
          incr cells_done;
          Printf.eprintf "sweep: %d/%d cells done (%s) %.1fs elapsed\n%!"
            !cells_done total_cells label
            (Simkernel.Monotonic.elapsed_seconds ~since:started))
    else None
  in
  let cells, _registry = Driver.sweep_cells ?progress:progress_fn ~jobs params in
  let events_chan = Option.map open_out events_out in
  List.iter
    (fun (cell : Driver.sweep_cell) ->
      print_endline cell.Driver.sc_line;
      Option.iter
        (fun oc -> output_string oc cell.Driver.sc_events)
        events_chan)
    cells;
  Option.iter close_out events_chan

let sweep_term =
  let concurrencies =
    Arg.(
      value
      & opt (list int) [ 1; 4; 16 ]
      & info [ "c"; "concurrency" ]
          ~doc:"Concurrency levels to sweep (comma-separated).")
  in
  let txns =
    Arg.(value & opt int 100 & info [ "txns" ] ~doc:"Transactions per cell.")
  in
  let keyspace =
    Arg.(
      value & opt int 8
      & info [ "keyspace" ] ~doc:"Keys per member (smaller = more contention).")
  in
  let update_prob =
    Arg.(
      value & opt float 0.6
      & info [ "update-prob" ] ~doc:"Per member: probability of one update.")
  in
  let read_prob =
    Arg.(
      value & opt float 0.25
      & info [ "read-prob" ] ~doc:"Per member: probability of one read.")
  in
  let interarrival =
    Arg.(
      value & opt float 30.0
      & info [ "interarrival" ]
          ~doc:"Mean inter-arrival time at concurrency 1.")
  in
  let lock_timeout =
    Arg.(
      value & opt float 120.0
      & info [ "lock-timeout" ] ~doc:"Abort after waiting this long for locks.")
  in
  let group =
    Arg.(
      value
      & opt (some (pair int float)) None
      & info [ "group" ]
          ~doc:"Group commit as SIZE,TIMEOUT (e.g. --group 16,2.0).")
  in
  let progress =
    Arg.(
      value & flag
      & info [ "progress" ]
          ~doc:
            "Report sweep progress on stderr: one line per completed cell \
             with cells done / total and elapsed wall time.")
  in
  Term.(
    const sweep_cmd $ protocol_arg $ opts_arg $ concurrencies $ n_arg $ f_arg
    $ txns $ keyspace $ update_prob $ read_prob $ interarrival $ lock_timeout
    $ seed_arg $ group $ events_arg $ blocking_arg $ progress $ jobs_arg)

(* --- explain ---------------------------------------------------------------- *)

(* Re-run one deterministic mixer workload with the causal recorder on and
   walk one transaction's event graph: the full narrative, the critical
   path (every hop annotated with the wait class of the interval it ends),
   and the per-class attribution whose buckets sum - exactly - to the
   transaction's end-to-end latency. *)
let explain_cmd protocol opt_names n txns concurrency seed txn_id =
  if n < 2 then (
    Printf.eprintf "tpc_sim explain: -n must be at least 2\n";
    exit 2);
  let opts = build_opts opt_names in
  let config =
    default_config |> with_protocol protocol |> with_opts opts
    |> with_trace_events false
  in
  let cfg = { Tpc.Mixer.default_cfg with txns; concurrency; seed } in
  let tree = Workload.mixer_tree ~n ~opts () in
  let _agg, w, summaries =
    Tpc.Mixer.run_full ~config ~causal:Obs.Causal.Graph cfg tree
  in
  let causal = w.Tpc.Run.causal in
  match List.find_opt (fun s -> s.Tpc.Mixer.ts_txn = txn_id) summaries with
  | None ->
      Printf.eprintf
        "tpc_sim explain: no transaction %S in this run (transactions are \
         mx-1 .. mx-%d)\n"
        txn_id txns;
      exit 1
  | Some s ->
      let outcome =
        match s.Tpc.Mixer.ts_outcome with
        | Some o -> outcome_to_string o
        | None -> "unresolved"
      in
      Printf.printf "transaction %s: %s%s\n" txn_id outcome
        (if s.Tpc.Mixer.ts_timed_out then " (lock-wait timeout)" else "");
      let e2e =
        Option.map
          (fun c -> c -. s.Tpc.Mixer.ts_arrival)
          s.Tpc.Mixer.ts_completed
      in
      (match e2e with
      | Some d ->
          Printf.printf
            "  arrival %.2f   completion %.2f   end-to-end latency %.2f\n"
            s.Tpc.Mixer.ts_arrival
            (Option.get s.Tpc.Mixer.ts_completed)
            d
      | None -> Printf.printf "  arrival %.2f   never completed\n" s.Tpc.Mixer.ts_arrival);
      let nodes = Obs.Causal.txn_nodes causal ~txn:txn_id in
      Printf.printf "\ncausal narrative (%d events):\n" (List.length nodes);
      List.iter
        (fun (cn : Obs.Causal.node) ->
          Printf.printf "  %8.2f  %-10s %s\n" cn.Obs.Causal.cn_time
            cn.Obs.Causal.cn_who cn.Obs.Causal.cn_label)
        nodes;
      (match Obs.Causal.critical_path causal ~txn:txn_id with
      | None -> Printf.printf "\nno causal events recorded for %s\n" txn_id
      | Some hops ->
          Printf.printf "\ncritical path (%d hops, binding cause at each step):\n"
            (List.length hops);
          List.iter
            (fun { Obs.Causal.h_node = cn; h_dt } ->
              Printf.printf "  +%8.2f  [%-9s] %-10s %s\n" h_dt
                (Obs.Causal.seg_name cn.Obs.Causal.cn_seg)
                cn.Obs.Causal.cn_who cn.Obs.Causal.cn_label)
            hops;
          let segs = Obs.Causal.path_segments hops in
          let total = Obs.Causal.segments_total segs in
          Printf.printf "\ncritical-path attribution:\n";
          List.iter
            (fun (name, v) ->
              Printf.printf "  %-10s %10.2f  %5.1f%%\n" name v
                (if total > 0.0 then 100.0 *. v /. total else 0.0))
            (Obs.Causal.segments_list segs);
          Printf.printf "  %-10s %10.2f" "total" total;
          (match e2e with
          | Some d -> Printf.printf "  (end-to-end %.2f)\n" d
          | None -> Printf.printf "\n"))

let explain_term =
  let txns =
    Arg.(value & opt int 100 & info [ "txns" ] ~doc:"Transactions to run.")
  in
  let concurrency =
    Arg.(value & opt int 8 & info [ "c"; "concurrency" ] ~doc:"Concurrency level.")
  in
  let txn_id =
    Arg.(
      value & opt string "mx-1"
      & info [ "txn" ] ~docv:"ID"
          ~doc:"Transaction to explain (mx-1 .. mx-TXNS).")
  in
  Term.(
    const explain_cmd $ protocol_arg $ opts_arg $ n_arg $ txns $ concurrency
    $ seed_arg $ txn_id)

(* --- stats ------------------------------------------------------------------ *)

(* Sim-kernel profiling: run one mixer cell and report what the discrete-event
   engine did (events processed/scheduled/cancelled, queue-depth high-water
   mark, wall-clock time). *)
let stats_cmd protocol opt_names n txns concurrency seed =
  if n < 2 then (
    Printf.eprintf "tpc_sim stats: -n must be at least 2\n";
    exit 2);
  let opts = build_opts opt_names in
  let config = default_config |> with_protocol protocol |> with_opts opts in
  let cfg = { Tpc.Mixer.default_cfg with txns; concurrency; seed } in
  let tree = Workload.mixer_tree ~n ~opts () in
  let agg, w = Tpc.Mixer.run ~config cfg tree in
  let s = Simkernel.Engine.stats w.Tpc.Run.engine in
  let open Simkernel.Engine in
  Format.printf
    "mixer: label=%s n=%d txns=%d concurrency=%d committed=%d aborted=%d@."
    agg.Tpc.Metrics.Agg.label n txns concurrency
    agg.Tpc.Metrics.Agg.committed agg.Tpc.Metrics.Agg.aborted;
  Format.printf "engine:@.";
  Format.printf "  agenda             %s@."
    (agenda_name w.Tpc.Run.engine);
  Format.printf "  arena capacity     %d slots@."
    (arena_capacity w.Tpc.Run.engine);
  Format.printf "  event kinds        %s@."
    (String.concat ", " (kind_names w.Tpc.Run.engine));
  Format.printf "  events processed   %d@." s.events_processed;
  Format.printf "  events scheduled   %d@." s.events_scheduled;
  Format.printf "  events cancelled   %d@." s.events_cancelled;
  Format.printf "  max queue depth    %d@." s.max_queue_depth;
  Format.printf "  wall seconds       %.6f@." s.wall_seconds;
  Format.printf "  events/second      %.0f@."
    (if s.wall_seconds > 0.0 then
       float_of_int s.events_processed /. s.wall_seconds
     else 0.0)

let stats_term =
  let txns =
    Arg.(value & opt int 1000 & info [ "txns" ] ~doc:"Transactions to run.")
  in
  let concurrency =
    Arg.(value & opt int 8 & info [ "c"; "concurrency" ] ~doc:"Concurrency level.")
  in
  Term.(
    const stats_cmd $ protocol_arg $ opts_arg $ n_arg $ txns $ concurrency
    $ seed_arg)

(* --- crash ----------------------------------------------------------------- *)

let point_conv =
  let table =
    [
      ("on-prepare", Cp_on_prepare);
      ("after-prepared", Cp_after_prepared_log);
      ("after-vote", Cp_after_vote);
      ("before-decision-log", Cp_before_decision_log);
      ("after-decision-log", Cp_after_decision_log);
      ("after-decision-received", Cp_after_decision_received);
      ("before-ack", Cp_before_ack);
      ("after-commit-pending", Cp_after_commit_pending);
    ]
  in
  let parse s =
    match List.assoc_opt s table with
    | Some p -> Ok p
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown crash point %S (%s)" s
               (String.concat "|" (List.map fst table))))
  in
  let print ppf p =
    Format.pp_print_string ppf
      (fst (List.find (fun (_, q) -> q = p) table))
  in
  Arg.conv (parse, print)

(* Post-run recovery validation: when the crashed node restarts, recovery
   must fully resolve the transaction - no member may stay in doubt, no
   member's data may contradict the root's reported outcome, and the logs
   must not carry both commit and abort evidence.  Violations exit 1 so
   scripts and CI can gate on `tpc_sim crash`. *)
let check_crash_recovery ~restarted (world : Tpc.Run.world) =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  if restarted then
    List.iter
      (fun (name, (n : Tpc.Run.node)) ->
        if Tpc.Net.is_up world.Tpc.Run.net name then begin
          (match Kvstore.in_doubt n.Tpc.Run.kv with
          | [] -> ()
          | txns ->
              fail "%s: still in doubt after recovery (%s)" name
                (String.concat ", " txns));
          match Tpc.Participant.in_doubt_txns n.Tpc.Run.participant with
          | [] -> ()
          | txns ->
              fail "%s: protocol state still blocked (%s)" name
                (String.concat ", " txns)
        end)
      world.Tpc.Run.nodes;
  (match world.Tpc.Run.outcome with
  | Some o when restarted ->
      if not (Tpc.Run.consistent world ~txn:"txn-1" ~outcome:o) then
        fail "member state contradicts the root's %s report"
          (outcome_to_string o)
  | Some _ | None -> ());
  let has kind =
    List.exists
      (fun wal ->
        List.exists
          (fun (r : Wal.Log_record.t) -> r.kind = kind)
          (Wal.Log.all_records wal))
      (Tpc.Run.all_wals world)
  in
  let commit_ev = has Wal.Log_record.Committed || has Wal.Log_record.Rm_committed in
  let abort_ev = has Wal.Log_record.Aborted || has Wal.Log_record.Rm_aborted in
  if commit_ev && abort_ev then
    fail "divergence: both commit and abort evidence in the logs";
  !failures

let crash_cmd protocol node point restart trace_out events_out =
  if not (List.mem node [ "coord"; "c1"; "c2" ]) then (
    Printf.eprintf
      "tpc_sim: --node must be one of coord, c1, c2 (the three-member chain)\n";
    exit 2);
  let config =
    default_config |> with_protocol protocol
    |> with_retries ~interval:25.0 ~max:default_config.max_retries
    |> with_faults [ { f_node = node; f_point = point; f_restart_after = restart } ]
  in
  let tree = Workload.chain ~n:3 () in
  let metrics, world = Tpc.Run.commit_tree ~config tree in
  Format.printf "%a@.@.%s@." Tpc.Metrics.pp metrics
    (Tpc.Trace.to_string world.Tpc.Run.trace);
  write_telemetry ~tree world trace_out events_out;
  match check_crash_recovery ~restarted:(restart <> None) world with
  | [] -> ()
  | failures ->
      List.iter (Printf.eprintf "tpc_sim crash: BAD RECOVERY: %s\n")
        (List.rev failures);
      exit 1

let crash_term =
  let node =
    Arg.(value & opt string "c1" & info [ "node" ] ~doc:"Node to crash (coord, c1, c2).")
  in
  let point =
    Arg.(
      value & opt point_conv Cp_after_vote
      & info [ "at" ] ~doc:"Crash point in the protocol.")
  in
  let restart =
    Arg.(
      value
      & opt (some float) (Some 30.0)
      & info [ "restart-after" ] ~doc:"Restart delay; omit for a permanent crash.")
  in
  Term.(
    const crash_cmd $ protocol_arg $ node $ point $ restart $ trace_out_arg
    $ events_arg)

(* --- chaos ------------------------------------------------------------------ *)

let chaos_cmd protocol opt_names n f seeds seed0 txns concurrency crashes
    partitions drops jitters horizon adversary equivocations vote_flips
    forgeries forced_heuristics replays corruptions group gc_target plan_str
    broken no_shrink out blocking jobs =
  if n < 2 then (
    Printf.eprintf "tpc_sim chaos: -n must be at least 2\n";
    exit 2);
  if seeds < 1 then (
    Printf.eprintf "tpc_sim chaos: --seeds must be at least 1\n";
    exit 2);
  if f < 0 then (
    Printf.eprintf "tpc_sim chaos: --f must be non-negative\n";
    exit 2);
  if gc_target && group = None then (
    Printf.eprintf "tpc_sim chaos: --gc-target needs --group SIZE,TIMEOUT\n";
    exit 2);
  let opts = build_opts opt_names in
  let config =
    default_config |> with_protocol protocol |> with_opts opts
    |> with_bft_f f
    |> (match group with
       | Some (size, timeout) -> with_group_commit ~size ~timeout
       | None -> Fun.id)
    |> with_retries ~interval:25.0 ~max:8
    |> with_prepare_retries 2 |> with_retry_backoff 2.0
  in
  let tree = Workload.mixer_tree ~n ~opts () in
  let horizon =
    if horizon > 0.0 then horizon
    else
      (* cover the arrival window: faults beyond it hit a drained complex *)
      float_of_int txns
      *. Tpc.Mixer.default_cfg.Tpc.Mixer.base_interarrival
      /. float_of_int concurrency
  in
  (* any explicit adversarial count implies --adversary; bare --adversary
     gets a default mix of two of each adversarial kind *)
  let adversary =
    adversary || equivocations > 0 || vote_flips > 0 || forgeries > 0
    || forced_heuristics > 0 || replays > 0 || corruptions > 0
  in
  let gen_cfg =
    { Faultlab.default_gen with crashes; partitions; drops; jitters; horizon }
  in
  let gen_cfg =
    if not adversary then gen_cfg
    else if
      equivocations + vote_flips + forgeries + forced_heuristics + replays
      + corruptions
      = 0
    then
      (* the PR7 default mix, byte-identical plans: replays and replica
         corruptions only appear when asked for explicitly *)
      {
        gen_cfg with
        Faultlab.equivocations = 2;
        vote_flips = 2;
        forgeries = 2;
        forced_heuristics = 2;
      }
    else
      {
        gen_cfg with
        Faultlab.equivocations = equivocations;
        vote_flips;
        forgeries;
        forced_heuristics;
        replays;
        corruptions;
      }
  in
  let gen_cfg =
    {
      gen_cfg with
      Faultlab.corrupt_domain = (2 * f) + 1;
      gc_align =
        (if gc_target then Option.map (fun (_, timeout) -> timeout) group
         else None);
    }
  in
  let fixed_plan =
    match plan_str with
    | Some s -> (
        try Some (Faultlab.of_string s)
        with Invalid_argument msg ->
          Printf.eprintf "tpc_sim chaos: %s\n" msg;
          exit 2)
    | None -> None
  in
  let params =
    {
      Driver.ch_config = config;
      ch_tree = tree;
      ch_mixer = { Tpc.Mixer.default_cfg with txns; concurrency; seed = seed0 };
      ch_seed0 = seed0;
      ch_seeds = seeds;
      ch_gen = gen_cfg;
      ch_plan = fixed_plan;
      ch_broken = broken;
      ch_shrink = not no_shrink;
      ch_protocol_flag = Tpc.Protocol.flag protocol;
      ch_n = n;
      ch_adversary = adversary;
      ch_blocking = blocking;
    }
  in
  let cells, _registry = Driver.chaos_cells ~jobs params in
  (* fan-in renders in seed order: stdout/stderr match --jobs 1 exactly *)
  let out_chan = match out with Some path -> open_out path | None -> stdout in
  let violations = ref 0 in
  List.iter
    (fun (cell : Driver.chaos_cell) ->
      if cell.Driver.cc_violated then incr violations;
      Option.iter (Printf.eprintf "%s") cell.Driver.cc_repro;
      output_string out_chan (cell.Driver.cc_line ^ "\n");
      flush out_chan)
    cells;
  if out <> None then close_out out_chan;
  Printf.eprintf "tpc_sim chaos: %d/%d seeds clean (%s, n=%d, txns=%d, c=%d)\n"
    (seeds - !violations) seeds (Tpc.Protocol.flag protocol) n txns concurrency;
  (* the per-protocol row of the damage matrix: what the adversary
     achieved across the sweep, and what the honest nodes caught *)
  List.fold_left
    (fun acc (cell : Driver.chaos_cell) ->
      match (acc, cell.Driver.cc_accounting) with
      | None, a -> a
      | Some t, Some a ->
          Some
            Faultlab.
              {
                a_atomicity = t.a_atomicity + a.a_atomicity;
                a_heur_reported = t.a_heur_reported + a.a_heur_reported;
                a_heur_silent = t.a_heur_silent + a.a_heur_silent;
                a_blocked = t.a_blocked + a.a_blocked;
                a_rejected = t.a_rejected + a.a_rejected;
              }
      | Some _, None -> acc)
    None cells
  |> Option.iter (fun (t : Faultlab.accounting) ->
         let certified =
           (Tpc.Protocol.resolve protocol).Tpc.Protocol.p_certify <> None
         in
         let cert_refusals =
           List.fold_left
             (fun acc (cell : Driver.chaos_cell) ->
               acc + cell.Driver.cc_cert_refusals)
             0 cells
         in
         let corrupted =
           List.fold_left
             (fun acc (cell : Driver.chaos_cell) ->
               acc + cell.Driver.cc_corrupted)
             0 cells
         in
         Printf.eprintf
           "tpc_sim chaos: adversary damage (%s, %d seeds): \
            atomicity=%d heur_reported=%d heur_silent=%d blocked=%d \
            rejected_forgeries=%d%s\n"
           (Tpc.Protocol.flag protocol) seeds t.Faultlab.a_atomicity
           t.Faultlab.a_heur_reported t.Faultlab.a_heur_silent
           t.Faultlab.a_blocked t.Faultlab.a_rejected
           (if certified then
              Printf.sprintf " cert_refusals=%d corrupted_replicas=%d f=%d"
                cert_refusals corrupted f
            else ""));
  if !violations > 0 then exit 1

let chaos_term =
  let seeds =
    Arg.(value & opt int 20 & info [ "seeds" ] ~doc:"Number of seeds to sweep.")
  in
  let txns =
    Arg.(value & opt int 150 & info [ "txns" ] ~doc:"Transactions per seed.")
  in
  let concurrency =
    Arg.(value & opt int 8 & info [ "c"; "concurrency" ] ~doc:"Concurrency level.")
  in
  let crashes =
    Arg.(value & opt int 2 & info [ "crashes" ] ~doc:"Crash events per plan.")
  in
  let partitions =
    Arg.(
      value & opt int 1 & info [ "partitions" ] ~doc:"Partition events per plan.")
  in
  let drops =
    Arg.(
      value & opt int 3
      & info [ "drops" ] ~doc:"Nth-message drop events per plan.")
  in
  let jitters =
    Arg.(
      value & opt int 2
      & info [ "jitters" ] ~doc:"Per-link delay-jitter events per plan.")
  in
  let horizon =
    Arg.(
      value & opt float 0.0
      & info [ "horizon" ]
          ~doc:
            "Fault-schedule horizon (virtual time); 0 = cover the arrival \
             window.")
  in
  let adversary =
    Arg.(
      value & flag
      & info [ "adversary" ]
          ~doc:
            "Generate adversarial events too (default two each of \
             equivocations, vote flips, forgeries and forced heuristics \
             unless overridden), emit the damage-accounting classification \
             on every verdict line, and gate on silent damage instead of \
             the benign pass/fail.")
  in
  let equivocations =
    Arg.(
      value & opt int 0
      & info [ "equivocations" ]
          ~doc:"Equivocating-coordinator events per plan (implies --adversary).")
  in
  let vote_flips =
    Arg.(
      value & opt int 0
      & info [ "vote-flips" ]
          ~doc:"In-flight vote-flip events per plan (implies --adversary).")
  in
  let forgeries =
    Arg.(
      value & opt int 0
      & info [ "forgeries" ]
          ~doc:
            "Forged prepare/decision injections per plan (implies \
             --adversary).")
  in
  let forced_heuristics =
    Arg.(
      value & opt int 0
      & info [ "forced-heuristics" ]
          ~doc:
            "Scheduled heuristic-damage events per plan (implies \
             --adversary).")
  in
  let replays =
    Arg.(
      value & opt int 0
      & info [ "replays" ]
          ~doc:
            "Stale-payload replay events per plan: re-deliver a genuine \
             earlier bundle on a live link, unmodified (implies \
             --adversary).")
  in
  let corruptions =
    Arg.(
      value & opt int 0
      & info [ "corrupt-replicas" ]
          ~doc:
            "Coordinator-replica corruption events per plan, over a \
             2f+1-replica domain: each hands the adversary one replica's \
             endorsement key.  With more than --f of them it can forge \
             decision certificates (implies --adversary).")
  in
  let group =
    Arg.(
      value
      & opt (some (pair int float)) None
      & info [ "group" ]
          ~doc:"Group commit as SIZE,TIMEOUT (e.g. --group 16,2.0).")
  in
  let gc_target =
    Arg.(
      value & flag
      & info [ "gc-target" ]
          ~doc:
            "Align every generated adversarial event to the group-commit \
             batched-force boundary (multiples of the --group TIMEOUT), so \
             faults land exactly when a batch of decisions is being \
             hardened.")
  in
  let plan =
    Arg.(
      value
      & opt (some string) None
      & info [ "plan" ]
          ~doc:
            "Replay this exact fault plan (the compact form printed in \
             verdicts) instead of generating one per seed.")
  in
  let broken =
    Arg.(
      value & flag
      & info [ "broken-recovery" ]
          ~doc:
            "Substitute the deliberately broken amnesia restart for every \
             recovery: the audit must catch it (self-test of the harness).")
  in
  let no_shrink =
    Arg.(
      value & flag
      & info [ "no-shrink" ] ~doc:"Skip schedule shrinking on violation.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Write JSONL verdicts here instead of stdout.")
  in
  Term.(
    const chaos_cmd $ protocol_arg $ opts_arg $ n_arg $ f_arg $ seeds
    $ seed_arg $ txns $ concurrency $ crashes $ partitions $ drops $ jitters
    $ horizon $ adversary $ equivocations $ vote_flips $ forgeries
    $ forced_heuristics $ replays $ corruptions $ group $ gc_target $ plan
    $ broken $ no_shrink $ out $ blocking_arg $ jobs_arg)

(* --- command tree ------------------------------------------------------------- *)

let cmd name term doc = Cmd.v (Cmd.info name ~doc) term

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    Cmd.info "tpc_sim" ~version:"1.0.0"
      ~doc:
        "Simulator for two-phase commit optimizations (Samaras, Britton, \
         Citron, Mohan; ICDE 1993)"
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            cmd "run" run_term "Run one distributed commit.";
            cmd "tables" tables_term "Regenerate the paper's cost tables.";
            cmd "figures" figures_term "Render the paper's figures.";
            cmd "chain" chain_term "Chained-transaction streams (Table 4).";
            cmd "group" group_term "Group-commit sweep.";
            cmd "crash" crash_term "Commit with an injected crash and recovery.";
            cmd "sweep" sweep_term
              "Concurrent throughput sweep: concurrency x optimization sets, \
               one JSON line per cell.";
            cmd "explain" explain_term
              "Causal explanation of one transaction: event narrative, \
               critical path, and latency attribution (log-wait, msg-wait, \
               lock-wait, in-doubt, compute) summing to its end-to-end \
               latency.";
            cmd "stats" stats_term
              "Sim-kernel profiling: run one mixer cell and report engine \
               statistics.";
            cmd "chaos" chaos_term
              "Seeded fault-schedule sweep: crashes, partitions, drops and \
               jitter against the concurrent mixer, fault-aware audit per \
               seed (JSONL), greedy schedule shrinking on violation.";
          ]))
